//go:build race

package main

// raceEnabled reports whether the race detector is compiled in. The
// allocation gates in bench_test.go skip under -race: instrumentation
// adds its own allocations, so the counts are not meaningful there.
const raceEnabled = true

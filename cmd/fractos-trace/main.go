// Command fractos-trace dumps a message-level trace of one
// face-verification request on either the FractOS or the baseline
// stack — the raw material behind Figure 2's traffic analysis.
//
// Usage:
//
//	fractos-trace             # trace the FractOS pipeline
//	fractos-trace -baseline   # trace the NFS+NVMe-oF+rCUDA stack
//	fractos-trace -batch 8    # request batch size
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fractos/internal/app/faceverify"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

func main() {
	useBaseline := flag.Bool("baseline", false, "trace the baseline stack instead of FractOS")
	batch := flag.Int("batch", 8, "request batch size")
	flag.Parse()

	cl := core.NewCluster(core.ClusterConfig{Nodes: 4})
	cfg := faceverify.Config{Batch: *batch, Files: 1, Slots: 1}

	done := false
	cl.K.Spawn("trace-main", func(tk *sim.Task) {
		defer func() { done = true }()
		var verify func(*sim.Task, *faceverify.Request) ([]byte, error)
		var db *faceverify.DB
		if *useBaseline {
			app, err := faceverify.SetupBaseline(tk, cl, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "setup:", err)
				return
			}
			verify, db = app.VerifyBatch, app.DB
		} else {
			app, err := faceverify.SetupFractOS(tk, cl, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "setup:", err)
				return
			}
			verify, db = app.VerifyBatch, app.DB
		}

		name := func(id fabric.EndpointID) string {
			if ep, ok := cl.Net.Lookup(id); ok {
				return fmt.Sprintf("%s(%v)", ep.Name, ep.Loc)
			}
			return fmt.Sprintf("ep%d", id)
		}
		sys := "FractOS"
		if *useBaseline {
			sys = "baseline"
		}
		fmt.Printf("=== one face-verification request, batch %d, %s ===\n", *batch, sys)
		fmt.Printf("%-12s %-9s %-7s %8s  %s\n", "time", "kind", "class", "bytes", "path")
		n := 0
		cl.Net.SetTrace(func(e fabric.TraceEvent) {
			kind := fmt.Sprintf("msg:%d", e.Type)
			if e.RDMA {
				kind = "rdma"
			}
			class := "ctrl"
			if e.Class == wire.Data {
				class = "DATA"
			}
			n++
			fmt.Printf("%-12v %-9s %-7s %8d  %s -> %s\n", e.At, kind, class, e.Bytes, name(e.From), name(e.To))
		})

		req := faceverify.MakeRequest(db, 0, *batch, rand.New(rand.NewSource(1)))
		before := cl.Net.Stats()
		out, err := verify(tk, req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "request:", err)
			return
		}
		cl.Net.SetTrace(nil)
		d := cl.Net.Stats().Sub(before)
		fmt.Printf("\nverdicts ok: %v\n", req.CheckResults(out))
		fmt.Printf("totals: %d messages (%d control, %d data), %d bytes on the wire, %d cross-node\n",
			d.TotalMsgs(), d.ControlMsgs, d.DataMsgs, d.TotalBytes(), d.CrossNodeMsgs)
		if !*useBaseline {
			fmt.Println("\ncontroller counters:")
			for _, ctrl := range cl.Ctrls {
				fmt.Printf("  ctrl%d@%v: %v\n", ctrl.ID(), ctrl.Loc(), ctrl.Metrics())
				fp := ctrl.Footprint()
				fmt.Printf("    footprint: %.1f MB total (%.0f MB proc queues, %.0f MB peer queues, %d B caps, %d B objects)\n",
					float64(fp.Total())/1e6, float64(fp.ProcQueueBytes)/1e6,
					float64(fp.PeerQueueBytes)/1e6, fp.CapSpaceBytes, fp.ObjectBytes)
			}
		}
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		fmt.Fprintln(os.Stderr, "trace did not complete")
		os.Exit(1)
	}
}

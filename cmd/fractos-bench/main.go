// Command fractos-bench regenerates the paper's evaluation: every
// table and figure of §6 plus the DESIGN.md ablations, printed as text
// tables from deterministic simulations.
//
// Usage:
//
//	fractos-bench            # run everything
//	fractos-bench -list      # list experiment ids
//	fractos-bench -run fig5  # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fractos/internal/exp"
)

var csvDir = flag.String("csv", "", "also write each table as CSV into this directory")

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "run a single experiment by id")
	flag.Parse()

	if *list {
		for _, s := range exp.All() {
			fmt.Printf("%-14s %s\n", s.ID, s.Title)
		}
		return
	}
	if *run != "" {
		s, ok := exp.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "fractos-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		runOne(s)
		return
	}
	fmt.Println("FractOS evaluation — regenerating every table and figure (virtual-time simulation)")
	for _, s := range exp.All() {
		runOne(s)
	}
}

func runOne(s exp.Spec) {
	start := time.Now()
	t := s.Run()
	t.Print(os.Stdout)
	fmt.Printf("  [%s regenerated in %.1fs wall time]\n", s.ID, time.Since(start).Seconds())
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fractos-bench:", err)
			return
		}
		path := filepath.Join(*csvDir, s.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fractos-bench:", err)
			return
		}
		t.WriteCSV(f)
		f.Close()
	}
}

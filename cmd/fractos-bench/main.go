// Command fractos-bench regenerates the paper's evaluation: every
// table and figure of §6 plus the DESIGN.md ablations, printed as text
// tables from deterministic simulations.
//
// Usage:
//
//	fractos-bench               # run everything
//	fractos-bench -list         # list experiment ids
//	fractos-bench -run fig5     # run one experiment
//	fractos-bench -json         # run the perf suite, emit JSON (the BENCH_PR*.json reports)
//	fractos-bench -bench kernel/dispatch  # run one perf benchmark (text)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fractos/internal/exp"
	"fractos/internal/perf"
)

var csvDir = flag.String("csv", "", "also write each table as CSV into this directory")

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "run a single experiment by id")
	jsonOut := flag.Bool("json", false, "run the wall-clock perf suite and emit JSON to stdout")
	bench := flag.String("bench", "", "run only the named perf benchmarks (comma-separated; implies the perf suite, text output unless -json)")
	flag.Parse()

	if *list {
		for _, s := range exp.All() {
			fmt.Printf("%-14s %s\n", s.ID, s.Title)
		}
		fmt.Println()
		for _, c := range perf.Cases() {
			fmt.Printf("%-20s (perf benchmark; -bench/-json)\n", c.Name)
		}
		return
	}
	if *jsonOut || *bench != "" {
		runPerf(*jsonOut, *bench)
		return
	}
	if *run != "" {
		s, ok := exp.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "fractos-bench: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		runOne(s)
		return
	}
	fmt.Println("FractOS evaluation — regenerating every table and figure (virtual-time simulation)")
	for _, s := range exp.All() {
		runOne(s)
	}
}

// runPerf runs the wall-clock benchmark suite (internal/perf) and
// writes either the JSON report consumed by CI and the BENCH_PR*.json
// trajectory files, or an aligned text table.
func runPerf(jsonOut bool, names string) {
	var only []string
	if names != "" {
		for _, n := range strings.Split(names, ",") {
			if n = strings.TrimSpace(n); n != "" {
				only = append(only, n)
			}
		}
	}
	if !jsonOut {
		fmt.Fprintln(os.Stderr, "fractos-bench: running wall-clock perf suite (~1s per benchmark)")
	}
	results, err := perf.RunAll(only...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-bench:", err)
		os.Exit(1)
	}
	if jsonOut {
		// The tracked report also carries the chaos-fv availability
		// metrics (goodput dip, error rate, MTTR) and the scaling-route
		// routing metrics (per-policy tails, shed fractions, autoscaler
		// MTTR): they are deterministic virtual-time numbers, so any
		// drift across PRs is a real behavior change, not benchmark
		// noise.
		var experiments map[string]float64
		if len(only) == 0 {
			experiments = map[string]float64{}
			for _, id := range []string{"chaos-fv", "scaling-route"} {
				if s, ok := exp.Find(id); ok {
					for k, v := range s.Run().Metrics {
						experiments[k] = v
					}
				}
			}
		}
		if err := perf.WriteJSON(os.Stdout, results, experiments); err != nil {
			fmt.Fprintln(os.Stderr, "fractos-bench:", err)
			os.Exit(1)
		}
		return
	}
	perf.WriteText(os.Stdout, results)
}

func runOne(s exp.Spec) {
	start := time.Now()
	t := s.Run()
	t.Print(os.Stdout)
	fmt.Printf("  [%s regenerated in %.1fs wall time]\n", s.ID, time.Since(start).Seconds())
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fractos-bench:", err)
			return
		}
		path := filepath.Join(*csvDir, s.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fractos-bench:", err)
			return
		}
		t.WriteCSV(f)
		f.Close()
	}
}

// Command fractos-vet runs the repository's custom static analyzers
// (tools/analyzers/...) over the module: capability-validation order
// (capcheck), epoch fencing of peer handlers (epochguard), simulator
// determinism (simdet), wire.Status hygiene and completion protocol
// (statuscheck), Net.Send delivery-failure hygiene (sendcheck),
// registry Register/Deregister error hygiene (regcheck), the
// no-panic policy (panicfree), pooled-resource lifecycle (poolcheck),
// and hot-path allocation freedom (allocfree). The last two are
// interprocedural: they share a module-wide call graph built once per
// run (tools/analyzers/callgraph).
//
// Usage:
//
//	fractos-vet [-only name[,name...]] [-json] [package ...]
//
// With no package arguments the whole module is analyzed, including
// the analyzers themselves. Packages load serially (the loader is not
// concurrency-safe), then every (package, analyzer) pass runs in
// parallel. Findings are printed as file:line:col: [analyzer] message
// — or as a JSON array with -json — and the exit status is 1 if there
// were any, 2 on usage or load errors. Wall-clock totals go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fractos/tools/analyzers/allocfree"
	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/capcheck"
	"fractos/tools/analyzers/epochguard"
	"fractos/tools/analyzers/loader"
	"fractos/tools/analyzers/panicfree"
	"fractos/tools/analyzers/poolcheck"
	"fractos/tools/analyzers/regcheck"
	"fractos/tools/analyzers/sendcheck"
	"fractos/tools/analyzers/simdet"
	"fractos/tools/analyzers/statuscheck"
)

// all is the fractos-vet suite, in reporting order.
var all = []*analysis.Analyzer{
	allocfree.Analyzer,
	capcheck.Analyzer,
	epochguard.Analyzer,
	panicfree.Analyzer,
	poolcheck.Analyzer,
	regcheck.Analyzer,
	sendcheck.Analyzer,
	simdet.Analyzer,
	statuscheck.Analyzer,
}

type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

// jsonFinding is the -json serialization of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fractos-vet [-only name[,name...]] [-json] [package ...]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}
	modPath, modDir, err := loader.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}
	l := &loader.Loader{ModulePath: modPath, ModuleDir: modDir}

	loadStart := time.Now()
	var pkgs []*loader.Package
	if args := flag.Args(); len(args) > 0 {
		pkgs, err = l.Load(qualify(args, modPath)...)
	} else {
		pkgs, err = l.LoadModule()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	// The module view spans everything the loader materialized — the
	// requested packages plus their in-module dependencies — so the
	// interprocedural analyzers see call targets outside the analyzed
	// package set.
	module := &analysis.Module{Fset: l.Fset}
	for _, pkg := range l.Loaded() {
		module.Packages = append(module.Packages, &analysis.ModulePackage{
			Pkg: pkg.Types, Files: pkg.Files, TypesInfo: pkg.TypesInfo,
		})
	}

	analyzeStart := time.Now()
	findings, errs := runPasses(pkgs, suite, module)
	analyzeTime := time.Since(analyzeStart)
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "fractos-vet:", e)
		}
		os.Exit(2)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     relPath(modDir, f.pos.Filename),
				Line:     f.pos.Line,
				Col:      f.pos.Column,
				Analyzer: f.analyzer,
				Message:  f.message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fractos-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relPath(modDir, f.pos.Filename), f.pos.Line, f.pos.Column, f.analyzer, f.message)
		}
	}

	fmt.Fprintf(os.Stderr, "fractos-vet: %d packages × %d analyzers: load %s, analyze %s (%d workers)\n",
		len(pkgs), len(suite), loadTime.Round(time.Millisecond), analyzeTime.Round(time.Millisecond), workers())
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fractos-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func workers() int {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// runPasses executes every (package, analyzer) pair on a worker pool.
// Loading is already done; passes only read type-checked syntax (plus
// the mutex-guarded module fact cache), so they parallelize freely.
func runPasses(pkgs []*loader.Package, suite []*analysis.Analyzer, module *analysis.Module) ([]finding, []error) {
	type job struct {
		pkg *loader.Package
		a   *analysis.Analyzer
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var findings []finding
	var errs []error
	var wg sync.WaitGroup
	for i := 0; i < workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				var local []finding
				pass := &analysis.Pass{
					Analyzer:  j.a,
					Fset:      j.pkg.Fset,
					Files:     j.pkg.Files,
					Pkg:       j.pkg.Types,
					TypesInfo: j.pkg.TypesInfo,
					Module:    module,
				}
				name := j.a.Name
				pass.Report = func(d analysis.Diagnostic) {
					local = append(local, finding{
						pos:      j.pkg.Fset.Position(d.Pos),
						analyzer: name,
						message:  d.Message,
					})
				}
				_, err := j.a.Run(pass)
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("%s: %s: %v", j.a.Name, j.pkg.PkgPath, err))
				}
				findings = append(findings, local...)
				mu.Unlock()
			}
		}()
	}
	for _, pkg := range pkgs {
		for _, a := range suite {
			jobs <- job{pkg: pkg, a: a}
		}
	}
	close(jobs)
	wg.Wait()
	return findings, errs
}

func relPath(modDir, file string) string {
	if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// selectAnalyzers filters the suite by the -only flag.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

// qualify turns bare package arguments into module-qualified import
// paths: "internal/core" and "./internal/core" both mean
// "<module>/internal/core"; fully qualified paths pass through.
func qualify(args []string, modPath string) []string {
	out := make([]string, 0, len(args))
	for _, a := range args {
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			out = append(out, modPath)
			continue
		}
		if a == modPath || strings.HasPrefix(a, modPath+"/") {
			out = append(out, a)
			continue
		}
		out = append(out, modPath+"/"+a)
	}
	return out
}

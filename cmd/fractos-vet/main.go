// Command fractos-vet runs the repository's custom static analyzers
// (tools/analyzers/...) over the module: capability-validation order
// (capcheck), epoch fencing of peer handlers (epochguard), simulator
// determinism (simdet), wire.Status hygiene and completion protocol
// (statuscheck), Net.Send delivery-failure hygiene (sendcheck), and
// the no-panic policy (panicfree).
//
// Usage:
//
//	fractos-vet [-only name[,name...]] [package ...]
//
// With no package arguments the whole module is analyzed. Findings are
// printed as file:line:col: [analyzer] message, and the exit status is
// 1 if there were any, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/capcheck"
	"fractos/tools/analyzers/epochguard"
	"fractos/tools/analyzers/loader"
	"fractos/tools/analyzers/panicfree"
	"fractos/tools/analyzers/sendcheck"
	"fractos/tools/analyzers/simdet"
	"fractos/tools/analyzers/statuscheck"
)

// all is the fractos-vet suite, in reporting order.
var all = []*analysis.Analyzer{
	capcheck.Analyzer,
	epochguard.Analyzer,
	panicfree.Analyzer,
	sendcheck.Analyzer,
	simdet.Analyzer,
	statuscheck.Analyzer,
}

type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fractos-vet [-only name[,name...]] [package ...]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}
	modPath, modDir, err := loader.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}
	l := &loader.Loader{ModulePath: modPath, ModuleDir: modDir}

	var pkgs []*loader.Package
	if args := flag.Args(); len(args) > 0 {
		pkgs, err = l.Load(qualify(args, modPath)...)
	} else {
		pkgs, err = l.LoadModule()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fractos-vet:", err)
		os.Exit(2)
	}

	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{
					pos:      pkg.Fset.Position(d.Pos),
					analyzer: name,
					message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "fractos-vet: %s: %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		file := f.pos.Filename
		if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", file, f.pos.Line, f.pos.Column, f.analyzer, f.message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fractos-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectAnalyzers filters the suite by the -only flag.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

// qualify turns bare package arguments into module-qualified import
// paths: "internal/core" and "./internal/core" both mean
// "<module>/internal/core"; fully qualified paths pass through.
func qualify(args []string, modPath string) []string {
	out := make([]string, 0, len(args))
	for _, a := range args {
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			out = append(out, modPath)
			continue
		}
		if a == modPath || strings.HasPrefix(a, modPath+"/") {
			out = append(out, a)
			continue
		}
		out = append(out, modPath+"/"+a)
	}
	return out
}

// Storage: the two-tier storage stack of §5 — an extent-based FS
// service over an NVMe block-device adaptor — in its two modes:
//
//   - FS mode: every byte is staged through the FS Process (two
//     network transfers per operation);
//   - DAX mode: the FS delegates revocable block-device leases,
//     diminished by open mode, and the client drives the device
//     directly (one transfer) — composition across the service
//     boundary without breaking encapsulation.
//
// The demo writes a file, reads it back both ways, shows the DAX
// speedup, proves that a read-only DAX open cannot write, and that
// closing the file revokes the leases immediately.
//
// Run with: go run ./examples/storage
package main

import (
	"bytes"
	"fmt"
	"log"

	"fractos/internal/cap"
	"fractos/internal/fs"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

func main() {
	// Declarative deployment: the NVMe SSD + adaptor on node 2, the FS
	// service on node 1 wired to it; the testbed builds the kernel,
	// fabric, and Controllers and deploys both before the demo runs.
	nv := &stacks.NVMe{Node: 2}
	fsvc := &stacks.FS{Node: 1, Backend: nv}
	spec := testbed.Spec{Nodes: 3, Services: []testbed.Service{nv, fsvc}}
	testbed.Run(spec, func(t *sim.Task, tb *testbed.Deployment) {
		svc := fsvc.Svc
		// Node 0: the client.
		client := tb.Attach(0, "client", 2<<20)
		open, err := proc.GrantCap(svc.P, svc.Open, client)
		if err != nil {
			log.Fatal(err)
		}
		closeReq, err := proc.GrantCap(svc.P, svc.Close, client)
		if err != nil {
			log.Fatal(err)
		}

		const n = 256 << 10
		payload := bytes.Repeat([]byte("fractos-storage."), n/16)

		// Create and fill the file through the FS.
		f, err := fs.OpenFile(t, client, open, "demo.bin", fs.OpenRead|fs.OpenWrite|fs.OpenCreate, n)
		if err != nil {
			log.Fatal(err)
		}
		copy(client.Arena(), payload)
		buf, err := client.MemoryCreate(t, 0, n, cap.MemRights)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.WriteAt(t, 0, n, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d KiB through the FS service\n", n>>10)

		// Read back in FS mode.
		out, err := client.MemoryCreate(t, 1<<20, n, cap.MemRights)
		if err != nil {
			log.Fatal(err)
		}
		start := t.Now()
		if err := f.ReadAt(t, 0, n, out); err != nil {
			log.Fatal(err)
		}
		fsTime := t.Now() - start
		if !bytes.Equal(client.Arena()[1<<20:(1<<20)+n], payload) {
			log.Fatal("FS read corrupted data")
		}
		fmt.Printf("FS-mode read:  %v (SSD -> FS node -> client)\n", fsTime)

		// Read back in DAX mode: direct block access via leases.
		dax, err := fs.OpenFile(t, client, open, "demo.bin", fs.OpenRead|fs.OpenDAX, 0)
		if err != nil {
			log.Fatal(err)
		}
		start = t.Now()
		if err := dax.ReadAt(t, 0, n, out); err != nil {
			log.Fatal(err)
		}
		daxTime := t.Now() - start
		if !bytes.Equal(client.Arena()[1<<20:(1<<20)+n], payload) {
			log.Fatal("DAX read corrupted data")
		}
		fmt.Printf("DAX-mode read: %v (SSD -> client, %.2fx faster)\n",
			daxTime, float64(fsTime)/float64(daxTime))

		// The read-only lease cannot write.
		if err := dax.WriteAt(t, 0, n, buf); err != nil {
			fmt.Printf("read-only DAX open cannot write: %v\n", err)
		} else {
			log.Fatal("read-only DAX lease allowed a write!")
		}

		// Closing revokes the leases at the block device immediately.
		if err := dax.Close(t, closeReq); err != nil {
			log.Fatal(err)
		}
		fmt.Println("closed the DAX handle: its block leases are revoked at the owner")
	})
}

// Faceverify: the paper's end-to-end application (§5, §6.5) run on
// both stacks over identical devices and workloads:
//
//   - FractOS: the frontend presets a request graph; database images
//     flow SSD -> GPU directly, the kernel's continuation notifies the
//     frontend — the green ring of Figure 2.
//   - Baseline: NFS (over NVMe-oF) brings the images to the frontend,
//     rCUDA ships them to the GPU and back — the red star.
//
// The demo runs the same batch of verification requests on each and
// prints latency and network traffic; verdicts are checked against
// ground truth.
//
// Run with: go run ./examples/faceverify
package main

import (
	"fmt"
	"log"

	"fractos/internal/app/faceverify"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

func main() {
	cfg := faceverify.Config{Batch: 32, Files: 4, Slots: 2}
	const nRequests = 4

	type result struct {
		lat   sim.Time
		msgs  int64
		bytes int64
	}
	run := func(useBaseline bool) result {
		fv := &stacks.FaceVerify{Cfg: cfg, Baseline: useBaseline}
		var res result
		testbed.Run(testbed.Spec{Nodes: 4, Services: []testbed.Service{fv}},
			func(t *sim.Task, tb *testbed.Deployment) {
				rng := testbed.Rand(11)
				before := tb.Net().Stats()
				start := t.Now()
				for i := 0; i < nRequests; i++ {
					req := faceverify.MakeRequest(fv.DB, i, cfg.Batch, rng)
					out, err := fv.Verify(t, req)
					if err != nil {
						log.Fatal(err)
					}
					if !req.CheckResults(out) {
						log.Fatal("verification verdicts disagree with ground truth")
					}
				}
				d := tb.Net().Stats().Sub(before)
				res.lat = (t.Now() - start) / nRequests
				res.msgs = d.CrossNodeMsgs / nRequests
				res.bytes = d.CrossNodeBytes / nRequests
			})
		return res
	}

	fmt.Printf("face verification, batch %d, %d requests, fresh DB file per request\n\n", cfg.Batch, nRequests)
	fr := run(false)
	bl := run(true)
	fmt.Printf("%-22s %12s %18s %14s\n", "system", "latency/req", "cross-node msgs", "KB on wire")
	fmt.Printf("%-22s %12v %18d %14.1f\n", "FractOS (distributed)", fr.lat, fr.msgs, float64(fr.bytes)/1024)
	fmt.Printf("%-22s %12v %18d %14.1f\n", "NFS+NVMe-oF+rCUDA", bl.lat, bl.msgs, float64(bl.bytes)/1024)
	fmt.Printf("\nFractOS: %.0f%% faster, %.1fx less traffic (paper: 47%% faster, 3x less traffic)\n",
		100*(float64(bl.lat)/float64(fr.lat)-1), float64(bl.bytes)/float64(fr.bytes))
}

// Chaos: the whole robustness stack of docs/FAULTS.md on one cluster.
//
// The fabric drops and duplicates frames the entire time; on top of it
// the demo walks through two phases:
//
//  1. steady state — every client call succeeds untouched because the
//     Controllers' retransmission protocol re-sends lost frames and the
//     at-most-once dedup cache absorbs the duplicates;
//  2. outage — the service node is partitioned away. The heartbeat
//     failure detector (monitoring from node 0, the majority side)
//     suspects, fences, and reboots the unreachable Controller; the
//     fabric heals on a schedule; the monitor observes the recovery and
//     redeploys the service under the new epoch. Throughout, the client
//     keeps issuing requests under a proc.Retry policy with a circuit
//     breaker: failures stay bounded (never a hang), the breaker fails
//     fast mid-outage, and service resumes without the client ever
//     being restarted.
//
// Every drop, probe, fence, reboot, and retry lands at the same virtual
// instant on every run — the demo is deterministic.
//
// Run with: go run ./examples/chaos
package main

import (
	"errors"
	"fmt"
	"log"

	"fractos/internal/fabric"
	"fractos/internal/proc"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

const ms = sim.Time(1000 * 1000)

// rig is one generation of the echo service (node 1) plus the client's
// capability to it. The client Process itself survives redeployments —
// only the service side is rebuilt after a Controller reboot.
type rig struct {
	svcP *proc.Process
	creq proc.Cap
}

func deploy(tk *sim.Task, d *testbed.Deployment, client *proc.Process, gen int) *rig {
	r := &rig{}
	r.svcP = d.Attach(1, fmt.Sprintf("echo-g%d", gen), 4096)
	svcReq, err := r.svcP.RequestCreate(tk, 1, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	d.Spawn("echo-loop", func(st *sim.Task) {
		for {
			del, ok := r.svcP.Receive(st)
			if !ok {
				return // our Controller crashed; this generation is dead
			}
			if rep, okc := del.Cap(0); okc {
				//fractos:status-ok echo reply failure surfaces as the client's timeout
				r.svcP.Invoke(st, rep, []wire.ImmArg{proc.BytesArg(0, del.Imms)}, nil)
			}
			del.Done()
		}
	})
	if r.creq, err = proc.GrantCap(r.svcP, svcReq, client); err != nil {
		log.Fatal(err)
	}
	return r
}

// call is a bounded echo round trip: it can fail (lost to the outage,
// aborted by an epoch bump, timed out) but can never hang past the
// deadline — both the invoke completion and the reply are waited on
// asynchronously with a timeout, so an attempt issued into a partition
// returns to the retry policy promptly instead of blocking inside the
// Controllers' retransmission window.
func call(tk *sim.Task, client *proc.Process, r *rig, payload string, deadline sim.Time) error {
	reply, tag, err := client.ReplyRequest(tk)
	if err != nil {
		return err
	}
	fRep := client.WaitTag(tag)
	fInv := client.InvokeAsync(r.creq,
		[]wire.ImmArg{proc.BytesArg(0, []byte(payload))},
		[]proc.Arg{{Slot: 0, Cap: reply}})
	comp, err := fInv.WaitTimeout(tk, deadline)
	if err != nil {
		client.Drop(tk, reply)
		return err
	}
	if comp.Status != wire.StatusOK {
		client.Drop(tk, reply)
		return comp.Status.Err()
	}
	del, err := fRep.WaitTimeout(tk, deadline)
	client.Drop(tk, reply)
	if err != nil {
		return err
	}
	del.Done()
	if string(del.Imms) != payload {
		return fmt.Errorf("echo corrupted: %q != %q", del.Imms, payload)
	}
	return nil
}

func main() {
	// Shared with the heartbeat monitor's OnEvent callback below; the
	// simulation is single-threaded, so plain variables are safe.
	var (
		tb     *testbed.Deployment
		client *proc.Process
		cur    *rig
	)

	hb := &services.WatchConfig{
		Every:       3 * ms,
		Suspect:     2,
		RebootAfter: 6 * ms,
		Node:        0, // monitor from the majority side of the partition
		OnEvent: func(e services.WatchEvent) {
			fmt.Printf("  watch @%sms: %s ctrl=%d", testbed.Ms(e.At), e.Kind, e.Ctrl)
			if e.Kind == services.WatchRecovered {
				fmt.Printf(" epoch=%d", e.Epoch)
			}
			fmt.Println()
			if e.Kind == services.WatchRecovered {
				// The fenced Controller is back under a fresh epoch:
				// everything minted before the fence is stale, so stand
				// up a new service generation and swap the client over.
				tb.Spawn("redeploy", func(st *sim.Task) {
					cur = deploy(st, tb, client, 1)
					fmt.Printf("  service redeployed under epoch %d @%sms\n",
						e.Epoch, testbed.Ms(st.Now()))
				})
			}
		},
	}

	spec := testbed.Spec{
		Nodes:     3,
		Chaos:     fabric.Faults{Drop: 0.05, Dup: 0.02, Seed: 7},
		Heartbeat: hb,
	}
	testbed.Run(spec, func(t *sim.Task, d *testbed.Deployment) {
		tb = d
		client = d.Attach(0, "client", 8192)
		cur = deploy(t, d, client, 0)

		// --- phase 1: loss masked below the application ---
		fmt.Println("phase 1: 30 calls over a fabric dropping 5% and duplicating 2% of frames")
		for i := 0; i < 30; i++ {
			if err := call(t, client, cur, fmt.Sprintf("c-%d", i), 500*ms); err != nil {
				log.Fatalf("call %d failed under loss: %v", i, err)
			}
			t.Sleep(ms / 2)
		}
		fs := d.Net().FaultStats()
		m0, m1 := d.Cl.CtrlFor(0).Metrics(), d.Cl.CtrlFor(1).Metrics()
		fmt.Printf("  all 30 served: %d frames dropped, %d duplicated — "+
			"%d retransmits, %d dedup hits, 0 application errors\n",
			fs.Dropped, fs.Duplicated,
			m0.Retransmits+m1.Retransmits, m0.DedupHits+m1.DedupHits)

		// --- phase 2: partition + fence + reboot + heal + redeploy ---
		fmt.Println("\nphase 2: partitioning the service node (heals in 40ms); client keeps calling")
		d.Net().PartitionNodes([]int{1})
		d.K().After(40*ms, func() {
			d.Net().HealPartitions()
			fmt.Printf("  fabric healed @%sms\n", testbed.Ms(d.K().Now()))
		})

		br := &proc.Breaker{Threshold: 4, Cooldown: 6 * ms}
		pol := proc.Retry{
			Max: 2, Base: ms, Cap: 4 * ms, Jitter: 0.5, Seed: 11,
			Breaker: br,
			// The op re-reads cur, so even "permanent" errors (a stale
			// capability after the epoch bump) heal once the monitor
			// redeploys — retry everything and let the breaker meter it.
			Classify: func(err error) bool { return err != nil },
		}
		var served, failed, fastFail int
		lastState := "closed"
		streak := 0
		for i := 0; streak < 3; i++ {
			if i >= 200 {
				log.Fatal("client never recovered after the outage")
			}
			err := pol.Do(t, func(st *sim.Task) error {
				return call(st, client, cur, fmt.Sprintf("r-%d", i), 6*ms)
			})
			switch {
			case err == nil:
				served++
				streak++
			case errors.Is(err, proc.ErrCircuitOpen):
				fastFail++
				streak = 0
			default:
				failed++
				streak = 0
			}
			if s := br.State(t.Now()); s != lastState {
				fmt.Printf("  breaker -> %s @%sms\n", s, testbed.Ms(t.Now()))
				lastState = s
			}
			t.Sleep(2 * ms)
		}
		if ep := d.Cl.CtrlFor(1).Epoch(); ep != 2 {
			log.Fatalf("service Controller epoch = %d after the outage, want 2", ep)
		}
		fmt.Printf("  outage ridden out: %d served, %d failed after retries, "+
			"%d failed fast while the breaker was open\n", served, failed, fastFail)

		m0, m1 = d.Cl.CtrlFor(0).Metrics(), d.Cl.CtrlFor(1).Metrics()
		fs = d.Net().FaultStats()
		fmt.Printf("\ntotals: dropped=%d duplicated=%d cut=%d | retransmits=%d dedup=%d aborted=%d\n",
			fs.Dropped, fs.Duplicated, fs.Cut,
			m0.Retransmits+m1.Retransmits, m0.DedupHits+m1.DedupHits,
			m0.RPCAborted+m1.RPCAborted)
		fmt.Println("client survived the outage without restarting: retry + breaker above, " +
			"retransmit + dedup below, heartbeat fence/reboot on the side")
	})
}

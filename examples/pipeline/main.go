// Pipeline: service composition under the three execution models of
// §6.2 — star (centralized app moves all data and control), fast-star
// (centralized control, direct stage-to-stage data), and chain (fully
// distributed: one continuation graph flows through all stages).
//
// The demo builds a 4-stage pipeline across 5 nodes, pushes a buffer
// through it under each model, verifies the data really visited every
// stage, and reports latency and network traffic side by side.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

const (
	tagXform = 1 // transform in place, reply via slot 0
	tagPush  = 2 // transform, copy to slot-0 Memory, reply via slot 1
	tagChain = 3 // transform, copy to slot-0 Memory, invoke slot-1 Request
)

// stage is one pipeline service: it owns an input buffer and increments
// every byte it processes.
type stage struct {
	p                  *proc.Process
	in                 proc.Cap
	xform, push, chain proc.Cap
}

func newStage(t *sim.Task, cl *core.Cluster, node, size int, name string) *stage {
	s := &stage{p: proc.Attach(cl, node, name, size)}
	mustCap := func(c proc.Cap, err error) proc.Cap {
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	s.in = mustCap(s.p.MemoryCreate(t, 0, uint64(size), cap.MemRights))
	s.xform = mustCap(s.p.RequestCreate(t, tagXform, nil, nil))
	s.push = mustCap(s.p.RequestCreate(t, tagPush, nil, nil))
	s.chain = mustCap(s.p.RequestCreate(t, tagChain, nil, nil))
	cl.K.Spawn(name, func(st *sim.Task) {
		for {
			d, ok := s.p.Receive(st)
			if !ok {
				return
			}
			n := int(d.U64(0))
			buf := s.p.Arena()[:n]
			for i := range buf {
				buf[i]++
			}
			switch d.Tag {
			case tagXform:
				if r, ok := d.Cap(0); ok {
					s.p.Invoke(st, r, nil, nil)
				}
			case tagPush, tagChain:
				dst, _ := d.Cap(0)
				next, _ := d.Cap(1)
				view := mustCap(s.p.MemoryDiminish(st, s.in, 0, uint64(n), 0))
				if err := s.p.MemoryCopy(st, view, dst); err != nil {
					log.Fatal(err)
				}
				s.p.Drop(st, view)
				if d.Tag == tagPush {
					s.p.Invoke(st, next, nil, nil)
				} else {
					s.p.Invoke(st, next, []wire.ImmArg{proc.U64Arg(0, uint64(n))}, nil)
				}
			}
			d.Done()
		}
	})
	return s
}

func main() {
	const (
		nStages = 4
		size    = 16 << 10
	)
	testbed.Run(testbed.Spec{Nodes: nStages + 1}, func(t *sim.Task, tb *testbed.Deployment) {
		cl := tb.Cl
		client := tb.Attach(0, "client", size)
		buf, err := client.MemoryCreate(t, 0, size, cap.MemRights)
		if err != nil {
			log.Fatal(err)
		}

		var in, xform, push, chain []proc.Cap
		for i := 0; i < nStages; i++ {
			s := newStage(t, cl, i+1, size, fmt.Sprintf("stage%d", i))
			_ = s
			grant := func(c proc.Cap) proc.Cap {
				g, err := proc.GrantCap(s.p, c, client)
				if err != nil {
					log.Fatal(err)
				}
				return g
			}
			in = append(in, grant(s.in))
			xform = append(xform, grant(s.xform))
			push = append(push, grant(s.push))
			chain = append(chain, grant(s.chain))
		}

		fill := func() {
			for i := range client.Arena()[:size] {
				client.Arena()[i] = byte(i)
			}
		}
		check := func(model string) {
			for i, b := range client.Arena()[:size] {
				if b != byte(i)+nStages {
					log.Fatalf("%s: data did not pass through all stages", model)
				}
			}
		}
		lenArg := []wire.ImmArg{proc.U64Arg(0, size)}
		report := func(model string, run func() sim.Time) {
			before := cl.Net.Stats()
			fill()
			lat := run()
			check(model)
			d := cl.Net.Stats().Sub(before)
			fmt.Printf("%-10s %10v   %3d cross-node msgs   %7.1f KB on wire\n",
				model, lat, d.CrossNodeMsgs, float64(d.CrossNodeBytes)/1024)
		}

		fmt.Printf("4-stage pipeline, %d KiB payload, one stage per node:\n\n", size>>10)
		report("star", func() sim.Time {
			start := t.Now()
			for i := 0; i < nStages; i++ {
				if err := client.MemoryCopy(t, buf, in[i]); err != nil {
					log.Fatal(err)
				}
				if _, err := client.Call(t, xform[i], lenArg, nil, 0); err != nil {
					log.Fatal(err)
				}
				if err := client.MemoryCopy(t, in[i], buf); err != nil {
					log.Fatal(err)
				}
			}
			return t.Now() - start
		})

		report("fast-star", func() sim.Time {
			start := t.Now()
			if err := client.MemoryCopy(t, buf, in[0]); err != nil {
				log.Fatal(err)
			}
			for i := 0; i < nStages; i++ {
				dst := buf
				if i+1 < nStages {
					dst = in[i+1]
				}
				if _, err := client.Call(t, push[i], lenArg, []proc.Arg{{Slot: 0, Cap: dst}}, 1); err != nil {
					log.Fatal(err)
				}
			}
			return t.Now() - start
		})

		report("chain", func() sim.Time {
			// Build the continuation graph tail-first, then fire once.
			reply, replyTag, err := client.ReplyRequest(t)
			if err != nil {
				log.Fatal(err)
			}
			next := reply
			for i := nStages - 1; i >= 1; i-- {
				dst := buf
				if i+1 < nStages {
					dst = in[i+1]
				}
				if next, err = client.Derive(t, chain[i], nil,
					[]proc.Arg{{Slot: 0, Cap: dst}, {Slot: 1, Cap: next}}); err != nil {
					log.Fatal(err)
				}
			}
			start := t.Now()
			if err := client.MemoryCopy(t, buf, in[0]); err != nil {
				log.Fatal(err)
			}
			f := client.WaitTag(replyTag)
			if err := client.Invoke(t, chain[0], lenArg,
				[]proc.Arg{{Slot: 0, Cap: in[1]}, {Slot: 1, Cap: next}}); err != nil {
				log.Fatal(err)
			}
			d, err := f.Wait(t)
			if err != nil {
				log.Fatal(err)
			}
			d.Done()
			return t.Now() - start
		})

		fmt.Println("\nchain = the paper's fully distributed model: fewest messages, lowest latency")
	})
}

// Quickstart: the smallest complete FractOS program.
//
// It deploys a two-node cluster (one Controller per node), starts a
// tiny "shout" service on node 1, and runs a client on node 0 that:
//
//  1. registers Memory objects and copies data across the network
//     (memory_copy — a third-party transfer through the Controller),
//  2. performs a synchronous RPC through Request objects — the
//     continuation-passing A→B→A' pattern of §3.4,
//  3. revokes a capability and shows that it is dead immediately.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fractos/internal/cap"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

const (
	tagShout  = 1
	slotReply = 0
)

func main() {
	testbed.Run(testbed.Spec{Nodes: 2}, func(t *sim.Task, tb *testbed.Deployment) {
		// --- deploy the service on node 1 ---
		svc := tb.Attach(1, "shout-svc", 4096)
		shout, err := svc.RequestCreate(t, tagShout, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		tb.Spawn("shout-loop", func(st *sim.Task) {
			for {
				d, ok := svc.Receive(st)
				if !ok {
					return
				}
				loud := append([]byte(nil), d.Imms...)
				for i, c := range loud {
					if 'a' <= c && c <= 'z' {
						loud[i] = c - 32
					}
				}
				if reply, ok := d.Cap(slotReply); ok {
					svc.Invoke(st, reply, []wire.ImmArg{proc.BytesArg(0, loud)}, nil)
				}
				d.Done()
			}
		})

		// --- client on node 0 ---
		app := tb.Attach(0, "app", 4096)

		// 1. Memory objects: copy bytes into the service's arena.
		copy(app.Arena(), "hello, disaggregation")
		src, err := app.MemoryCreate(t, 0, 21, cap.MemRights)
		if err != nil {
			log.Fatal(err)
		}
		svcBuf, err := svc.MemoryCreate(t, 100, 21, cap.MemRights)
		if err != nil {
			log.Fatal(err)
		}
		// Hand the service's buffer capability to the app (bootstrap
		// grant; in a full deployment this flows through the registry).
		dst, err := proc.GrantCap(svc, svcBuf, app)
		if err != nil {
			log.Fatal(err)
		}
		start := t.Now()
		if err := app.MemoryCopy(t, src, dst); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("memory_copy: %q landed in the service arena in %v (cross-node)\n",
			string(svc.Arena()[100:121]), t.Now()-start)

		// 2. Request invocation: a synchronous RPC via continuations.
		shoutCap, err := proc.GrantCap(svc, shout, app)
		if err != nil {
			log.Fatal(err)
		}
		start = t.Now()
		d, err := app.Call(t, shoutCap,
			[]wire.ImmArg{proc.BytesArg(0, []byte("whisper"))}, nil, slotReply)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request_invoke: shout(%q) = %q in %v\n", "whisper", d.Imms, t.Now()-start)

		// 3. Revocation is immediate: one message to the owner kills
		// every capability referencing the object.
		if err := svc.Revoke(t, svcBuf); err != nil {
			log.Fatal(err)
		}
		if err := app.MemoryCopy(t, src, dst); err != nil {
			fmt.Printf("cap_revoke: copy via revoked capability correctly fails: %v\n", err)
		} else {
			log.Fatal("revoked capability still worked!")
		}

		st := tb.Net().Stats()
		fmt.Printf("\nfabric totals: %d messages, %d bytes (%d cross-node msgs)\n",
			st.TotalMsgs(), st.TotalBytes(), st.CrossNodeMsgs)
	})
}

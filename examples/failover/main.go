// Failover: the fault-tolerance model of §3.6 — failures are
// translated into capability revocations, observed through the
// monitor_delegate / monitor_receive callbacks.
//
// The demo deploys a service and two clients, then injects failures:
//
//  1. a client dies — the service's monitor_delegate callback fires
//     because the client's leased capability is revoked, so the
//     service can free the resources it held for that client;
//  2. the service's node Controller crashes and reboots — its epoch
//     advances, every capability minted before the crash is stale, and
//     the surviving client's requests fail fast instead of hanging;
//  3. the service re-registers after the reboot and the client
//     re-bootstraps — normal operation resumes.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"fractos/internal/cap"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

const tagWork = 7

func main() {
	testbed.Run(testbed.Spec{Nodes: 3, Watch: true}, func(t *sim.Task, tb *testbed.Deployment) {
		watch := tb.Watch
		// A "GPU-like" service on node 1: it creates one monitored
		// Request per client so it learns when clients disappear.
		svc := tb.Attach(1, "service", 0)
		tb.Spawn("service-loop", func(st *sim.Task) {
			for {
				d, ok := svc.Receive(st)
				if !ok {
					return
				}
				d.Done() // work happens here in a real service
			}
		})

		newClientLease := func(t *sim.Task, svc *proc.Process, name string, client *proc.Process) proc.Cap {
			perClient, err := svc.RequestCreate(t, tagWork, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			if err := svc.MonitorDelegate(t, perClient, func() {
				fmt.Printf("  service: client %q is gone — freeing its resources\n", name)
			}); err != nil {
				log.Fatal(err)
			}
			// Delegate through an invocation (the monitored path): the
			// client hands the service a carrier Request first.
			carrier, err := client.RequestCreate(t, 99, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			carrierSvc, err := proc.GrantCap(client, carrier, svc)
			if err != nil {
				log.Fatal(err)
			}
			if err := svc.Invoke(t, carrierSvc, nil, []proc.Arg{{Slot: 0, Cap: perClient}}); err != nil {
				log.Fatal(err)
			}
			d, _ := client.Receive(t)
			lease, ok := d.Cap(0)
			d.Done()
			if !ok {
				log.Fatal("no lease delivered")
			}
			return lease
		}

		alice := tb.Attach(0, "alice", 0)
		bob := tb.Attach(2, "bob", 0)
		aliceLease := newClientLease(t, svc, "alice", alice)
		bobLease := newClientLease(t, svc, "bob", bob)

		// Bob watches his lease so he learns about service failures.
		if err := bob.MonitorReceive(t, bobLease, func() {
			fmt.Println("  bob: my service capability was revoked — the service failed")
		}); err != nil {
			log.Fatal(err)
		}

		if err := alice.Invoke(t, aliceLease, nil, nil); err != nil {
			log.Fatal(err)
		}
		if err := bob.Invoke(t, bobLease, nil, nil); err != nil {
			log.Fatal(err)
		}
		fmt.Println("both clients served normally")

		// --- failure 1: alice's process dies ---
		fmt.Println("\ninjecting: alice crashes")
		watch.NodeFailed(0, []cap.ProcID{alice.ID()})
		t.Sleep(200_000)

		// Bob is unaffected.
		if err := bob.Invoke(t, bobLease, nil, nil); err != nil {
			log.Fatalf("bob affected by alice's failure: %v", err)
		}
		fmt.Println("bob still served after alice's failure")

		// --- failure 2: the service's Controller crashes ---
		fmt.Println("\ninjecting: controller on the service node crashes and reboots")
		watch.ControllerFailed(1)
		watch.ControllerRecovered(1)
		t.Sleep(200_000)
		if err := bob.Invoke(t, bobLease, nil, nil); err != nil {
			fmt.Printf("  bob: stale-epoch capability rejected fast: %v\n", err)
		} else {
			log.Fatal("stale capability still worked")
		}

		// --- recovery: redeploy the service under the new epoch ---
		svc2 := tb.Attach(1, "service-v2", 0)
		tb.Spawn("service-v2-loop", func(st *sim.Task) {
			for {
				d, ok := svc2.Receive(st)
				if !ok {
					return
				}
				d.Done()
			}
		})
		lease2 := newClientLease(t, svc2, "bob", bob)
		if err := bob.Invoke(t, lease2, nil, nil); err != nil {
			log.Fatalf("post-recovery invoke failed: %v", err)
		}
		fmt.Println("\nservice redeployed, bob re-bootstrapped: back to normal")
	})
}

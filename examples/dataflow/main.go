// Dataflow: §3.4 notes that Requests express "a variety of distributed
// execution patterns, from synchronous RPCs to complex data-flow
// models". This demo runs a small DAG across four nodes with the flow
// package:
//
//	          ┌─> tokenize (node 1) ─┐
//	client ───┤                      ├─> rank (node 3) ─> client
//	          └─> stem     (node 2) ─┘
//
// The two analysis branches execute concurrently (fork), their results
// are joined at the client, and the merged output flows through a
// final chained stage whose continuation returns home. Every arrow is
// a Request invocation; no stage knows what runs before or after it.
//
// Run with: go run ./examples/dataflow
package main

import (
	"fmt"
	"log"
	"strings"

	"fractos/internal/core"
	"fractos/internal/flow"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

// deployStage starts a text-transforming service on a node.
func deployStage(cl *core.Cluster, node int, name string, fn func(string) string) *proc.Process {
	p := proc.Attach(cl, node, name, 0)
	cl.K.Spawn(name+".loop", func(st *sim.Task) {
		for {
			d, ok := p.Receive(st)
			if !ok {
				return
			}
			out := fn(string(d.Imms))
			if cont, ok := d.Cap(0); ok {
				if err := p.Invoke(st, cont, []wire.ImmArg{proc.BytesArg(0, []byte(out))}, nil); err != nil {
					log.Fatal(err)
				}
			}
			d.Done()
		}
	})
	return p
}

func main() {
	testbed.Run(testbed.Spec{Nodes: 4}, func(t *sim.Task, tb *testbed.Deployment) {
		cl := tb.Cl
		client := tb.Attach(0, "client", 0)

		tokenize := deployStage(cl, 1, "tokenize", func(s string) string {
			return fmt.Sprintf("tokens=%d", len(strings.Fields(s)))
		})
		stem := deployStage(cl, 2, "stem", func(s string) string {
			return fmt.Sprintf("stems=%d", strings.Count(strings.ToLower(s), "ing"))
		})
		rank := deployStage(cl, 3, "rank", func(s string) string {
			return "ranked{" + s + "}"
		})

		grant := func(w *proc.Process) proc.Cap {
			req, err := w.RequestCreate(t, 1, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			g, err := proc.GrantCap(w, req, client)
			if err != nil {
				log.Fatal(err)
			}
			return g
		}

		input := "slashing the disaggregation tax by chaining and composing requests"
		fmt.Printf("input: %q\n\n", input)

		// Fork: both analyses run concurrently on their own nodes.
		start := t.Now()
		imms := []wire.ImmArg{proc.BytesArg(0, []byte(input))}
		join, err := flow.Scatter(t, client, []flow.Branch{
			{Req: grant(tokenize), ContSlot: 0, Imms: imms},
			{Req: grant(stem), ContSlot: 0, Imms: imms},
		})
		if err != nil {
			log.Fatal(err)
		}
		results, err := join.Done.Wait(t)
		if err != nil {
			log.Fatal(err)
		}
		var merged []string
		for _, d := range results {
			merged = append(merged, string(d.Imms))
		}
		fmt.Printf("fork/join: %v after %v\n", merged, t.Now()-start)

		// Chain: the merged result flows through the ranking stage and
		// comes back via its continuation.
		entry, done, err := flow.Chain(t, client, []flow.Step{{Req: grant(rank), ContSlot: 0}})
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Invoke(t, entry,
			[]wire.ImmArg{proc.BytesArg(0, []byte(strings.Join(merged, " ")))}, nil); err != nil {
			log.Fatal(err)
		}
		d, err := done.Wait(t)
		if err != nil {
			log.Fatal(err)
		}
		d.Done()
		fmt.Printf("chained:   %s\n", d.Imms)
		fmt.Printf("\ntotal virtual time: %v\n", t.Now())
	})
}

package sendcheck_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/sendcheck"
)

func TestSendcheck(t *testing.T) {
	analysistest.Run(t, "testdata", sendcheck.Analyzer, "sc/sendcheck")
}

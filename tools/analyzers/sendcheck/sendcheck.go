// Package sendcheck is an errcheck for fabric.Net.Send.
//
// Send returns false when the destination endpoint is unknown or torn
// down — the one delivery failure that *is* locally observable (frames
// lost to the chaos layer's drops or partitions still return true;
// docs/FAULTS.md). Discarding the boolean silently swallows the only
// synchronous signal that a peer Controller or Process is gone, which
// is exactly how unaccounted message loss slipped into the Controller
// before PR 4: counters drifted and "sent" completions were never
// delivered. Callers must either branch on the result or count the
// failure (metrics.SendFailed).
//
// A deliberate fire-and-forget needs a `fractos:send-ok <reason>`
// comment on the call's line (e.g. the heartbeat prober, for which a
// torn-down destination is indistinguishable from silence by design).
package sendcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"fractos/tools/analyzers/analysis"
)

// Analyzer is the sendcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "sendcheck",
	Doc:  "fabric.Net.Send results must be checked; false is the only observable delivery failure",
	Run:  run,
}

const suppression = "fractos:send-ok"

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call)
				}
			case *ast.GoStmt:
				report(pass, n.Call)
			case *ast.DeferStmt:
				report(pass, n.Call)
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
					return true
				}
				id, ok := n.Lhs[0].(*ast.Ident)
				if !ok || id.Name != "_" {
					return true
				}
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					report(pass, call)
				}
			}
			return true
		})
	}
	return nil, nil
}

// report flags call if it is fabric.Net.Send (by method set, not
// syntax, so wrappers and embedded fields are covered too).
func report(pass *analysis.Pass, call *ast.CallExpr) {
	if !isNetSend(pass.TypesInfo, call) || pass.Suppressed(call.Pos(), suppression) {
		return
	}
	pass.Reportf(call.Pos(),
		"result of Net.Send is dropped; false means the destination endpoint is gone and is the only observable delivery failure")
}

// isNetSend reports whether the call's callee is the Send method of
// fabric.Net (package path ending in "fabric", receiver *Net or Net,
// returning a single bool).
func isNetSend(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Send" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Results().Len() != 1 {
		return false
	}
	if b, ok := sig.Results().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Bool {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Net" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "fabric" || strings.HasSuffix(pkg.Path(), "/fabric"))
}

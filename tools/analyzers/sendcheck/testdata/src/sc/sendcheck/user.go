// Package user exercises the sendcheck analyzer.
package user

import "fabric"

// Net embeds fabric.Net so method-set resolution (not syntax) is
// exercised.
type wrapped struct{ *fabric.Net }

func drops(n *fabric.Net, w wrapped, a, b fabric.EndpointID) {
	n.Send(a, b, nil)     // want `result of Net.Send is dropped`
	_ = n.Send(a, b, nil) // want `result of Net.Send is dropped`
	go n.Send(a, b, nil)  // want `result of Net.Send is dropped`
	w.Send(a, b, nil)     // want `result of Net.Send is dropped`

	//fractos:send-ok heartbeat probe: a torn-down destination is silence by design
	n.Send(a, b, nil)

	if !n.Send(a, b, nil) {
		return
	}
	ok := n.Send(a, b, nil)
	_ = ok
	n.Broadcast(a, nil) // different method: not flagged
}

// Package fabric mirrors the repo's Net.Send surface for the
// sendcheck testdata.
package fabric

// EndpointID identifies an attached endpoint.
type EndpointID uint32

// Net is the simulated fabric.
type Net struct{}

// Send mirrors the real signature: false iff the destination is gone.
func (n *Net) Send(from, to EndpointID, msg interface{}) bool { return true }

// Broadcast returns a count, not a delivery boolean — not Send.
func (n *Net) Broadcast(from EndpointID, msg interface{}) int { return 0 }

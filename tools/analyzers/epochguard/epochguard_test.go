package epochguard_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/epochguard"
)

func TestEpochguard(t *testing.T) {
	analysistest.Run(t, "testdata", epochguard.Analyzer, "b/internal/core")
}

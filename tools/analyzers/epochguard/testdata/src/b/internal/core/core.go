// Package core is a miniature replica of fractos/internal/core used
// to exercise the epochguard analyzer.
package core

type Status uint8

const (
	StatusOK    Status = 0
	StatusStale Status = 1
)

type Epoch uint32

type Ref struct {
	Ctrl  uint32
	Obj   uint64
	Epoch Epoch
}

type Node struct{ ID uint64 }

type tree struct{}

func (t *tree) Get(obj uint64) (*Node, bool) { return &Node{ID: obj}, true }
func (t *tree) Revoke(obj uint64) []*Node    { return nil }

type msg struct {
	Token uint64
	From  Ref
}

// Controller mirrors the real Controller's peer-handler conventions.
type Controller struct {
	id         uint32
	epoch      Epoch
	tree       *tree
	peerEpochs map[uint32]Epoch
}

func (c *Controller) send(m *msg) {}

// resolveOwned performs the canonical epoch check before touching the
// tree, exactly like the real one.
func (c *Controller) resolveOwned(ref Ref) (*Node, Status) {
	if ref.Epoch != c.epoch {
		return nil, StatusStale
	}
	n, _ := c.tree.Get(ref.Obj)
	return n, StatusOK
}

// peerGuarded delegates to resolveOwned: the epoch check is reached
// transitively, so this is clean.
func (c *Controller) peerGuarded(m *msg) {
	n, st := c.resolveOwned(m.From)
	_, _ = n, st
	c.send(m)
}

// peerDirect consults peerEpochs itself before touching the tree:
// clean.
func (c *Controller) peerDirect(m *msg) {
	if known, ok := c.peerEpochs[m.From.Ctrl]; ok && m.From.Epoch < known {
		return
	}
	c.tree.Revoke(m.From.Obj)
}

// peerUnguarded reaches the tree with no epoch consultation anywhere
// in its call graph: a stale peer could revive revoked state.
func (c *Controller) peerUnguarded(m *msg) { // want `peer handler peerUnguarded reaches the object tree without consulting epoch/peerEpochs`
	c.tree.Revoke(m.From.Obj)
	c.send(m)
}

// peerIndirectUnguarded reaches the tree through a helper that never
// checks epochs: still a bug.
func (c *Controller) peerIndirectUnguarded(m *msg) { // want `peer handler peerIndirectUnguarded reaches the object tree without consulting epoch/peerEpochs`
	c.rawRevoke(m.From)
}

func (c *Controller) rawRevoke(ref Ref) {
	c.tree.Revoke(ref.Obj)
}

// peerNoTree never touches the tree, so it needs no epoch check.
func (c *Controller) peerNoTree(m *msg) {
	c.send(m)
}

// peerSuppressed documents an intentional exception.
//
//fractos:epochguard-ok refs carry exact epochs; purge-by-value is epoch-safe
func (c *Controller) peerSuppressed(m *msg) {
	c.tree.Revoke(m.From.Obj)
}

// Package epochguard enforces FractOS's failure-as-revocation
// discipline (§3.6 of the paper) on the inter-Controller protocol:
// a peer-message handler that touches the capability object tree must
// validate epochs first, because a rebooted Controller's old objects
// are implicitly revoked and a peer speaking under a stale epoch must
// be rejected, not served.
//
// Inside packages matching internal/core, every method of Controller
// named peer* (the dispatchPeer targets) whose call graph reaches the
// object tree (the Controller's tree field) must also reach an epoch
// consultation: a read of the Controller's own epoch or of the
// peerEpochs table. The analysis is transitive over same-package
// calls, so handlers that delegate to resolveOwned — which performs
// the epoch check — are recognized as guarded.
package epochguard

import (
	"go/ast"
	"go/types"
	"strings"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
)

// Analyzer is the epochguard analysis.
var Analyzer = &analysis.Analyzer{
	Name: "epochguard",
	Doc:  "peer-message handlers touching the object tree must consult controller epochs",
	Run:  run,
}

type funcFacts struct {
	decl       *ast.FuncDecl
	epochCheck bool // reads epoch / peerEpochs
	treeTouch  bool // reads the object tree
	callees    []*types.Func
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !strings.Contains(pass.Pkg.Path(), "internal/core") {
		return nil, nil
	}

	facts := make(map[*types.Func]*funcFacts)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &funcFacts{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					switch n.Sel.Name {
					case "epoch", "peerEpochs":
						ff.epochCheck = true
					case "tree":
						ff.treeTouch = true
					}
				case *ast.CallExpr:
					if callee := astq.CalledFunc(pass.TypesInfo, n); callee != nil && callee.Pkg() == pass.Pkg {
						ff.callees = append(ff.callees, callee)
					}
				}
				return true
			})
			facts[obj] = ff
		}
	}

	for obj, ff := range facts {
		name := obj.Name()
		if !strings.HasPrefix(name, "peer") || astq.ReceiverTypeName(ff.decl) != "Controller" {
			continue
		}
		if pass.Suppressed(ff.decl.Pos(), "fractos:epochguard-ok") {
			continue
		}
		touches := reaches(facts, obj, func(f *funcFacts) bool { return f.treeTouch })
		if !touches {
			continue
		}
		checks := reaches(facts, obj, func(f *funcFacts) bool { return f.epochCheck })
		if !checks {
			pass.Reportf(ff.decl.Pos(),
				"peer handler %s reaches the object tree without consulting epoch/peerEpochs (stale-epoch peers must be rejected, §3.6)",
				name)
		}
	}
	return nil, nil
}

// reaches reports whether fn, or anything it transitively calls
// within the package, satisfies pred.
func reaches(facts map[*types.Func]*funcFacts, fn *types.Func, pred func(*funcFacts) bool) bool {
	seen := make(map[*types.Func]bool)
	var walk func(*types.Func) bool
	walk = func(f *types.Func) bool {
		if seen[f] {
			return false
		}
		seen[f] = true
		ff, ok := facts[f]
		if !ok {
			return false
		}
		if pred(ff) {
			return true
		}
		for _, callee := range ff.callees {
			if walk(callee) {
				return true
			}
		}
		return false
	}
	return walk(fn)
}

// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis API surface that the fractos-vet
// analyzers need. The repository is deliberately stdlib-only, so
// rather than vendoring x/tools we mirror the subset we use: an
// Analyzer is a named check with a Run function, a Pass hands it one
// type-checked package, and diagnostics are reported through the Pass.
//
// Analyzers written against this package are source-compatible with
// x/tools' go/analysis for the fields used here, so they could be
// lifted onto the upstream driver unchanged if the dependency policy
// ever relaxes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// fractos-vet command line. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a summary.
	Doc string

	// Run applies the analyzer to a package.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer with the material of one package and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report is invoked for each diagnostic. Set by the driver.
	Report func(Diagnostic)

	// Module, when set by the driver, gives interprocedural analyzers
	// a view of every source package loaded alongside this one, plus a
	// shared fact cache (the stand-in for x/tools' Facts machinery).
	// Analyzers must tolerate a nil Module by degrading to the single
	// package in Files.
	Module *Module

	// suppress maps file -> set of lines carrying a suppression
	// marker, built lazily per pass.
	suppress map[string]map[int][]string
}

// ModulePackage is one source-loaded package of the module view.
type ModulePackage struct {
	Pkg       *types.Package
	Files     []*ast.File
	TypesInfo *types.Info
}

// Module is the whole-module view shared by all passes of one driver
// run: every source package the loader materialized (module packages
// and, under analysistest, testdata packages), one shared FileSet, and
// a compute-once fact cache keyed by string. Fact is safe for
// concurrent use; the first caller builds, later callers reuse.
type Module struct {
	Fset     *token.FileSet
	Packages []*ModulePackage

	mu    sync.Mutex
	facts map[string]interface{}
}

// Fact returns the cached value for key, building it on first use.
// The build function runs at most once per Module; concurrent callers
// block until it completes.
func (m *Module) Fact(key string, build func() interface{}) interface{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.facts[key]; ok {
		return v
	}
	v := build()
	if m.facts == nil {
		m.facts = make(map[string]interface{})
	}
	m.facts[key] = v
	return v
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Suppressed reports whether the line containing pos (or the line
// directly above it) carries a comment containing the given marker,
// e.g. "fractos:nondet-ok". Markers are the escape hatch for findings
// that are understood and intentional; each use should carry a reason
// after the marker.
func (p *Pass) Suppressed(pos token.Pos, marker string) bool {
	if p.suppress == nil {
		p.suppress = make(map[string]map[int][]string)
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					cp := p.Fset.Position(c.Pos())
					m := p.suppress[cp.Filename]
					if m == nil {
						m = make(map[int][]string)
						p.suppress[cp.Filename] = m
					}
					m[cp.Line] = append(m[cp.Line], c.Text)
				}
			}
		}
	}
	at := p.Fset.Position(pos)
	for _, line := range []int{at.Line, at.Line - 1} {
		for _, text := range p.suppress[at.Filename][line] {
			if strings.Contains(text, marker) {
				return true
			}
		}
	}
	return false
}

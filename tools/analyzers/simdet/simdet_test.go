package simdet_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, "testdata", simdet.Analyzer, "simdetdata")
}

// Package simdet polices the determinism contract of the FractOS
// simulation: two runs of the same configuration must produce
// bit-identical event orders and metrics (internal/exp's determinism
// test). Nondeterminism creeps in through four holes, each of which
// this analyzer closes:
//
//  1. Wall-clock reads: time.Now / time.Since / time.Sleep / time.After
//     make virtual-time behavior depend on host speed. The simulator
//     clock (sim.Kernel.Now, Task.Sleep) must be used instead.
//  2. The global math/rand source: it is shared, seeded from entropy
//     (or reseeded by other code), and not replayable. Randomness must
//     come from seeded rand.New(rand.NewSource(seed)) instances, e.g.
//     sim.Kernel.Rand.
//  3. Raw goroutines: a `go` statement escapes the cooperative
//     scheduler, racing against kernel tasks. Only the kernel package
//     itself (internal/sim) may create goroutines — that is the
//     trampoline every Task runs on. Everything else must use
//     sim.Kernel.Spawn.
//  4. Map iteration feeding message or scheduling order: ranging over
//     a map and sending/spawning/completing inside the loop makes
//     delivery order depend on Go's randomized map iteration. Keys
//     must be collected and sorted first (see Controller.sortedPeers).
//
// cmd/* packages are exempt: the CLI drivers legitimately measure
// wall-clock time around whole simulation runs. Individual findings
// can be waived with a `fractos:nondet-ok <reason>` comment on or
// above the offending line (realtime pacing in internal/sim is the
// canonical example).
package simdet

import (
	"go/ast"
	"strings"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
)

// Analyzer is the simdet analysis.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc:  "forbid wall-clock, global rand, raw goroutines, and order-sensitive map iteration in simulator-driven code",
	Run:  run,
}

// suppression is the waiver marker.
const suppression = "fractos:nondet-ok"

// wallClockFuncs are the time package entry points that read or wait
// on the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededRandFuncs are the only math/rand entry points allowed: they
// construct explicitly seeded, private sources.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// orderSinks are call names whose invocation order is observable in
// the simulation: message transmission, task scheduling, completion
// delivery, future resolution. Ranging over a map and calling one of
// these per element publishes Go's randomized map order into the
// event stream.
var orderSinks = map[string]bool{
	"Send": true, "TrySend": true, "Spawn": true, "After": true,
	"call": true, "callF": true, "complete": true, "sendDeliver": true,
	"notifyWatcher": true, "Set": true, "Fail": true, "Signal": true,
	"wakeAfter": true, "Deliver": true, "Invoke": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/") {
		return nil, nil
	}
	inSim := strings.Contains(path, "internal/sim")

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				if !inSim && !pass.Suppressed(n.Pos(), suppression) {
					pass.Reportf(n.Pos(),
						"raw goroutine escapes the deterministic kernel; use sim.Kernel.Spawn (or move the code into internal/sim)")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg := astq.PackageOfCall(pass.TypesInfo, call)
	name := astq.CalleeName(call)
	switch pkg {
	case "time":
		if wallClockFuncs[name] && !pass.Suppressed(call.Pos(), suppression) {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulation code must use the kernel's virtual clock (sim.Task.Now/Sleep)", name)
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[name] && !pass.Suppressed(call.Pos(), suppression) {
			pass.Reportf(call.Pos(),
				"rand.%s uses the global math/rand source; use a seeded rand.New(rand.NewSource(seed)) (e.g. sim.Kernel.Rand)", name)
		}
	}
}

// checkMapRange flags ranging over a map when the loop body invokes
// an order-sensitive sink.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if !astq.IsMap(pass.TypesInfo, rng.X) {
		return
	}
	var sink *ast.CallExpr
	var sinkName string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name := astq.CalleeName(call); orderSinks[name] {
				sink, sinkName = call, name
				return false
			}
		}
		return true
	})
	if sink == nil {
		return
	}
	if pass.Suppressed(rng.Pos(), suppression) || pass.Suppressed(sink.Pos(), suppression) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order feeds %s: delivery/scheduling order becomes nondeterministic; iterate over sorted keys instead", sinkName)
}

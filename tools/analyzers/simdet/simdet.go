// Package simdet polices the determinism contract of the FractOS
// simulation: two runs of the same configuration must produce
// bit-identical event orders and metrics (internal/exp's determinism
// test). Nondeterminism creeps in through four holes, each of which
// this analyzer closes:
//
//  1. Wall-clock reads: time.Now / time.Since / time.Sleep / time.After
//     make virtual-time behavior depend on host speed. The simulator
//     clock (sim.Kernel.Now, Task.Sleep) must be used instead.
//  2. The global math/rand source: it is shared, seeded from entropy
//     (or reseeded by other code), and not replayable. Randomness must
//     come from seeded rand.New(rand.NewSource(seed)) instances, e.g.
//     sim.Kernel.Rand.
//  3. Raw goroutines: a `go` statement escapes the cooperative
//     scheduler, racing against kernel tasks. Only the kernel package
//     itself (internal/sim) may create goroutines — that is the
//     trampoline every Task runs on. Everything else must use
//     sim.Kernel.Spawn.
//  4. Map iteration feeding message or scheduling order: ranging over
//     a map and sending/spawning/completing inside the loop makes
//     delivery order depend on Go's randomized map iteration. Keys
//     must be collected and sorted first (see Controller.sortedPeers).
//
// The partition-parallel engine (sim.Engine) adds two shard-safety
// holes of its own:
//
//  5. Retained kernel RNG: stashing sim.Kernel.Rand() in a struct
//     field or package variable lets the stream leak across shard (or
//     kernel) boundaries, where draws from concurrent windows
//     interleave nondeterministically. Call Rand() where the draw
//     happens, or carry a private seeded source.
//  6. Cross-shard kernel access from task bodies: a task calling
//     scheduling methods on another shard's kernel (the
//     `eng.Shard(i).Spawn(...)` shape) mutates state owned by a
//     possibly concurrent event loop. The only legal cross-shard
//     interaction from simulation context is Kernel.Post; Shard() is
//     for setup code that runs before the engine does.
//
// cmd/* packages are exempt: the CLI drivers legitimately measure
// wall-clock time around whole simulation runs. Individual findings
// can be waived with a `fractos:nondet-ok <reason>` comment on or
// above the offending line (realtime pacing in internal/sim is the
// canonical example).
package simdet

import (
	"go/ast"
	"go/types"
	"strings"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
)

// Analyzer is the simdet analysis.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc:  "forbid wall-clock, global rand, raw goroutines, and order-sensitive map iteration in simulator-driven code",
	Run:  run,
}

// suppression is the waiver marker.
const suppression = "fractos:nondet-ok"

// wallClockFuncs are the time package entry points that read or wait
// on the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededRandFuncs are the only math/rand entry points allowed: they
// construct explicitly seeded, private sources.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// orderSinks are call names whose invocation order is observable in
// the simulation: message transmission, task scheduling, completion
// delivery, future resolution. Ranging over a map and calling one of
// these per element publishes Go's randomized map order into the
// event stream.
var orderSinks = map[string]bool{
	"Send": true, "TrySend": true, "Spawn": true, "After": true,
	"call": true, "callF": true, "complete": true, "sendDeliver": true,
	"notifyWatcher": true, "Set": true, "Fail": true, "Signal": true,
	"wakeAfter": true, "Deliver": true, "Invoke": true,
}

// shardBoundFuncs are kernel methods whose invocation binds to one
// shard's event loop: calling them on another shard's kernel from
// task context races with (or reorders against) that shard's window.
var shardBoundFuncs = map[string]bool{
	"Spawn": true, "After": true, "Now": true, "Rand": true,
	"Stop": true, "Run": true, "RunUntil": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/") {
		return nil, nil
	}
	inSim := strings.Contains(path, "internal/sim")

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.GoStmt:
				if !inSim && !pass.Suppressed(n.Pos(), suppression) {
					pass.Reportf(n.Pos(),
						"raw goroutine escapes the deterministic kernel; use sim.Kernel.Spawn (or move the code into internal/sim)")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.AssignStmt:
				checkRetainedRand(pass, n)
			case *ast.FuncLit:
				checkTaskBodyShardAccess(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// isKernelMethodCall reports whether call is a method invocation named
// name on a value of (pointer to) a type called Kernel.
func isKernelMethodCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Kernel"
}

// checkRetainedRand flags assignments that stash Kernel.Rand() in a
// struct field or package variable (hole 5): the retained stream
// outlives the shard/kernel context the draw order depends on.
func checkRetainedRand(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isKernelMethodCall(pass.TypesInfo, call, "Rand") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		retained := false
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.SelectorExpr:
			retained = true // field (or foreign-package var) assignment
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(lhs); obj != nil && obj.Pkg() != nil &&
				obj.Parent() == obj.Pkg().Scope() {
				retained = true // package-level variable
			}
		}
		if retained && !pass.Suppressed(as.Pos(), suppression) {
			pass.Reportf(as.Pos(),
				"Kernel.Rand() retained beyond its call site; the stream leaks across shard/kernel boundaries — draw at the use site or carry a seeded private source")
		}
	}
}

// checkTaskBodyShardAccess flags Engine.Shard(i).<method> chains inside
// task bodies (function literals taking a *sim.Task), hole 6: from
// simulation context the target shard may be mid-window, and even when
// it is not, the touch orders differently than the sharded schedule.
func checkTaskBodyShardAccess(pass *analysis.Pass, fl *ast.FuncLit) {
	if !hasTaskParam(pass.TypesInfo, fl) {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != fl && hasTaskParam(pass.TypesInfo, inner) {
			return false // nested task body: reported on its own visit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !shardBoundFuncs[sel.Sel.Name] {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok || astq.CalleeName(recv) != "Shard" {
			return true
		}
		if !pass.Suppressed(call.Pos(), suppression) {
			pass.Reportf(call.Pos(),
				"cross-shard kernel access (Shard(i).%s) from a task body; shards interact through Kernel.Post only", sel.Sel.Name)
		}
		return true
	})
}

// hasTaskParam reports whether a function literal takes a parameter of
// (pointer to) a type named Task — the shape of every kernel task body.
func hasTaskParam(info *types.Info, fl *ast.FuncLit) bool {
	for _, field := range fl.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Task" {
			return true
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg := astq.PackageOfCall(pass.TypesInfo, call)
	name := astq.CalleeName(call)
	switch pkg {
	case "time":
		if wallClockFuncs[name] && !pass.Suppressed(call.Pos(), suppression) {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulation code must use the kernel's virtual clock (sim.Task.Now/Sleep)", name)
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[name] && !pass.Suppressed(call.Pos(), suppression) {
			pass.Reportf(call.Pos(),
				"rand.%s uses the global math/rand source; use a seeded rand.New(rand.NewSource(seed)) (e.g. sim.Kernel.Rand)", name)
		}
	}
}

// checkMapRange flags ranging over a map when the loop body invokes
// an order-sensitive sink.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if !astq.IsMap(pass.TypesInfo, rng.X) {
		return
	}
	var sink *ast.CallExpr
	var sinkName string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name := astq.CalleeName(call); orderSinks[name] {
				sink, sinkName = call, name
				return false
			}
		}
		return true
	})
	if sink == nil {
		return
	}
	if pass.Suppressed(rng.Pos(), suppression) || pass.Suppressed(sink.Pos(), suppression) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order feeds %s: delivery/scheduling order becomes nondeterministic; iterate over sorted keys instead", sinkName)
}

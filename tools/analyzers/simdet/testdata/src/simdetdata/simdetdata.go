// Package simdetdata exercises the simdet analyzer: wall-clock reads,
// global math/rand, raw goroutines, and order-sensitive map ranges.
package simdetdata

import (
	"math/rand"
	"sort"
	"time"
)

type net struct{}

func (n *net) Send(to uint32, payload string) {}

type kernel struct{}

func (k *kernel) Spawn(name string, fn func()) {}
func (k *kernel) Now() int64                   { return 0 }

// Kernel/Task/Engine mirror the internal/sim shapes the shard-safety
// checks key on (the analyzer matches by type name).
type Kernel struct{}

func (k *Kernel) Rand() *rand.Rand              { return nil }
func (k *Kernel) Now() int64                    { return 0 }
func (k *Kernel) Spawn(name string, fn func())  {}
func (k *Kernel) After(d int64, fn func())      {}
func (k *Kernel) Post(dst int, d int64, fn any) {}

type Task struct{}

func (t *Task) Kernel() *Kernel { return &Kernel{} }

type Engine struct{}

func (e *Engine) Shard(i int) *Kernel { return &Kernel{} }

// wallClock demonstrates every forbidden time call.
func wallClock(k *kernel) {
	t0 := time.Now()              // want `time.Now reads the wall clock`
	_ = time.Since(t0)            // want `time.Since reads the wall clock`
	time.Sleep(time.Second)       // want `time.Sleep reads the wall clock`
	<-time.After(time.Nanosecond) // want `time.After reads the wall clock`
	_ = k.Now()                   // virtual clock: fine
	_ = time.Duration(5)          // type conversions are fine
}

// pacing shows the documented waiver.
func pacing() {
	//fractos:nondet-ok wall-clock pacing is an explicit opt-in feature
	_ = time.Now()
}

// globalRand demonstrates the global-source ban and the seeded
// alternative.
func globalRand() {
	_ = rand.Intn(10)                  // want `rand.Intn uses the global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle uses the global math/rand source`
	r := rand.New(rand.NewSource(42))  // seeded private source: fine
	_ = r.Intn(10)                     // method on a private source: fine
}

// rawGoroutine escapes the cooperative scheduler.
func rawGoroutine(k *kernel) {
	go func() {}() // want `raw goroutine escapes the deterministic kernel`
	k.Spawn("worker", func() {})
}

// mapOrder publishes map iteration order into the message stream.
func mapOrder(n *net, peers map[uint32]string) {
	for id, p := range peers { // want `map iteration order feeds Send`
		n.Send(id, p)
	}

	// Sorted iteration: fine.
	ids := make([]uint32, 0, len(peers))
	for id := range peers { // collecting keys has no ordered effect
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n.Send(id, peers[id])
	}

	// Commutative mutation inside a map range: fine.
	total := 0
	for _, p := range peers {
		total += len(p)
	}
	_ = total

	//fractos:nondet-ok delivery order irrelevant in this diagnostic dump
	for id, p := range peers {
		n.Send(id, p)
	}
}

// retainer holds a stream across calls — the shape hole 5 forbids.
type retainer struct {
	rng *rand.Rand
}

var globalStream *rand.Rand

// retainedRand demonstrates the kernel-RNG retention ban.
func retainedRand(k *Kernel, r *retainer) {
	r.rng = k.Rand()        // want `Kernel.Rand\(\) retained beyond its call site`
	globalStream = k.Rand() // want `Kernel.Rand\(\) retained beyond its call site`
	local := k.Rand()       // local use at the draw site: fine
	_ = local.Intn(10)
	//fractos:nondet-ok single-kernel harness, stream provably shard-local
	r.rng = k.Rand()
}

// shardAccess demonstrates the cross-shard task-body ban.
func shardAccess(e *Engine, k *Kernel) {
	// Setup context (no *Task in scope): Shard() wiring is fine.
	e.Shard(1).Spawn("w", func() {})

	k.Spawn("driver", func() {})
	taskBody := func(t *Task) {
		e.Shard(1).Spawn("w", func() {})    // want `cross-shard kernel access \(Shard\(i\)\.Spawn\) from a task body`
		_ = e.Shard(2).Now()                // want `cross-shard kernel access \(Shard\(i\)\.Now\) from a task body`
		t.Kernel().Post(1, 1000, func() {}) // the legal interaction
		//fractos:nondet-ok engine is quiescent here by construction
		e.Shard(3).Spawn("w", func() {})

		nested := func(t2 *Task) {
			_ = e.Shard(0).Rand() // want `cross-shard kernel access \(Shard\(i\)\.Rand\) from a task body`
		}
		_ = nested
	}
	_ = taskBody
}

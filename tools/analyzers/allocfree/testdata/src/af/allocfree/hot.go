// Package allocfree exercises the hot-path allocation analyzer.
package allocfree

import "fmt"

var total int

type T struct{ x int }

// ---- clean ----

// cleanHot only does arithmetic through an allocation-free helper.
//
//fractos:hotpath
func cleanHot(a, b int) int {
	return mix(a, b)
}

func mix(a, b int) int { return a*31 + b }

// ---- direct allocation sources ----

//fractos:hotpath
func directMake(n int) {
	s := make([]int, n) // want `hot path directMake: make allocates`
	total += len(s)
}

//fractos:hotpath
func usesFmt(n int) {
	fmt.Println(n) // want `hot path usesFmt: fmt call allocates`
}

//fractos:hotpath
func concat(a, b string) string {
	return a + b // want `hot path concat: string concatenation allocates`
}

//fractos:hotpath
func convert(b []byte) string {
	return string(b) // want `hot path convert: string conversion allocates`
}

//fractos:hotpath
func heapLit() *T {
	return &T{} // want `hot path heapLit: heap composite literal allocates`
}

//fractos:hotpath
func sliceLit() {
	total += len([]int{1, 2, 3}) // want `hot path sliceLit: slice literal allocates`
}

//fractos:hotpath
func closure() {
	f := func() { total++ } // want `hot path closure: function literal \(closure\) allocates`
	f()
}

//fractos:hotpath
func boxes(n int) {
	variadic(n) // want `hot path boxes: interface boxing`
}

func variadic(args ...interface{}) {
	total += len(args)
}

// ---- transitive: the allocation is two calls away ----

//fractos:hotpath
func twoHops() {
	helperA() // want `hot path twoHops: helperA calls helperB has make at`
}

func helperA() { helperB() }

func helperB() {
	s := make([]int, 4)
	total += len(s)
}

// ---- waived ----

//fractos:hotpath
func amortized(b []byte, x byte) []byte {
	return append(b, x) // fractos:alloc-ok growth is amortized; steady state reuses capacity
}

//fractos:hotpath
func coldRefill() {
	if total == 0 {
		refill() // fractos:alloc-ok pool refill is the cold path
	}
}

func refill() {
	chunk := make([]int, 32)
	total += len(chunk)
}

// chainTop calls a hotpath helper whose only allocation is waived.
//
//fractos:hotpath
func chainTop(b []byte, x byte) {
	bs := amortized(b, x)
	total += len(bs)
}

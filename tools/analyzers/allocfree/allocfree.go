// Package allocfree makes "zero allocations on the hot path" a linted
// property instead of prose. A function annotated //fractos:hotpath
// must not contain an allocation source, nor call — through any chain
// of statically resolved same-module calls — a function that does.
// Allocation sources are those summarized by the callgraph layer:
// heap composite literals, slice/map literals, make, new, append
// growth, string concatenation and conversion, closures, fmt calls,
// and interface boxing at variadic ...interface{} call sites.
//
// Deliberate cold-branch allocations (pool refills, error paths,
// amortized growth) are waived with a `fractos:alloc-ok <reason>`
// comment on the allocating line; putting the waiver on a call line
// instead prunes traversal through that call.
//
// The check is may-miss across dynamic dispatch: interface-method and
// function-value calls are not resolved, so allocations behind them
// are not attributed. The AllocsPerRun gates in bench_test.go are the
// runtime backstop for what the static view cannot see.
package allocfree

import (
	"go/ast"
	"go/types"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/callgraph"
)

// Analyzer is the allocfree analysis.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated fractos:hotpath must be allocation-free across same-module calls",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := callgraph.Of(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f := g.Lookup(obj)
			if f == nil || !f.Hotpath {
				continue
			}
			checkHotpath(pass, g, f)
		}
	}
	return nil, nil
}

func checkHotpath(pass *analysis.Pass, g *callgraph.Graph, f *callgraph.Func) {
	name := f.Obj.Name()
	for _, a := range f.Allocs {
		if a.Waived {
			continue
		}
		pass.Reportf(a.Pos, "hot path %s: %s allocates (fractos:alloc-ok with a reason if this branch is deliberately cold)", name, a.Kind)
	}
	for _, e := range f.Calls {
		if e.Waived {
			continue
		}
		if path := g.AllocPath(e.Callee); path != "" {
			pass.Reportf(e.Pos, "hot path %s: %s", name, path)
		}
	}
}

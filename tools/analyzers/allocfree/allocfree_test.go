package allocfree_test

import (
	"testing"

	"fractos/tools/analyzers/allocfree"
	"fractos/tools/analyzers/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "af/allocfree")
}

// Package analysistest runs an analyzer over GOPATH-style testdata
// packages and checks its diagnostics against "// want" comment
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is written on the line it refers to:
//
//	badCall() // want `regexp matching the diagnostic`
//
// Multiple backquoted or double-quoted regexps may follow one want
// marker; each must be matched by a distinct diagnostic on that line.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/loader"
)

// Run loads each pkgpath from testdata/src, applies the analyzer, and
// reports mismatches between diagnostics and want-comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := &loader.Loader{SrcDirs: []string{testdata + "/src"}}
	pkgs, err := ld.Load(pkgpaths...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	// Interprocedural analyzers see every loaded testdata package (the
	// requested ones plus their in-root dependencies) as the module.
	module := &analysis.Module{Fset: ld.Fset}
	for _, pkg := range ld.Loaded() {
		module.Packages = append(module.Packages, &analysis.ModulePackage{
			Pkg: pkg.Types, Files: pkg.Files, TypesInfo: pkg.TypesInfo,
		})
	}
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("testdata package %s has type errors: %v", pkg.PkgPath, pkg.Errors)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Module:    module,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed: %v", pkg.PkgPath, err)
		}
		checkExpectations(t, pkg, a, diags)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// checkExpectations compares diagnostics with want-comments.
func checkExpectations(t *testing.T, pkg *loader.Package, a *analysis.Analyzer, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range parsePatterns(text[idx+len("want "):]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%v: unexpected diagnostic from %s: %s", position(pkg.Fset, d.Pos), a.Name, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.rx)
			}
		}
	}
}

// parsePatterns extracts backquoted or double-quoted regexps.
func parsePatterns(s string) []string {
	var pats []string
	for {
		s = strings.TrimLeft(s, " \t")
		if len(s) == 0 {
			return pats
		}
		quote := s[0]
		if quote != '`' && quote != '"' {
			return pats
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return pats
		}
		pats = append(pats, s[1:1+end])
		s = s[end+2:]
	}
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

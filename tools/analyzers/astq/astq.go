// Package astq holds small AST/type query helpers shared by the
// fractos-vet analyzers.
package astq

import (
	"go/ast"
	"go/types"
)

// CalleeName returns the bare name of a call's function: "f" for
// f(...), "m" for x.m(...). Empty for indirect calls.
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// PackageOfCall returns the import path of the package a selector
// call like pkg.F(...) refers to, or "" if the call is not a direct
// package-qualified call.
func PackageOfCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// ReceiverTypeName returns the name of a method's receiver type
// ("Controller" for func (c *Controller) ...), or "" for plain
// functions.
func ReceiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// IsMap reports whether the expression's type is (or aliases) a map.
func IsMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// IsStatusType reports whether t is the wire.Status result type: a
// named type called "Status" declared in a package named "wire".
func IsStatusType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Status" && obj.Pkg() != nil && obj.Pkg().Name() == "wire"
}

// CalledFunc resolves a call to the *types.Func it statically invokes
// (function or method), or nil for indirect/builtin calls.
func CalledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

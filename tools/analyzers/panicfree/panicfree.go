// Package panicfree polices the repo's failure-handling discipline.
// FractOS treats node failure as capability revocation (§3.6): errors
// on syscall and peer paths travel as wire.Status values so the
// distributed protocol can unwind them. A panic, by contrast, tears
// down the entire simulated data center — controllers, fabric, and
// every co-hosted node at once — which no real deployment would do.
//
// The analyzer therefore forbids direct calls to the builtin panic
// outside internal/assert, the one package allowed to terminate the
// process (its helpers mark genuine programmer-invariant violations
// and print a diagnosable report first). Sites that must panic for
// mechanical reasons — the kernel's kill-signal unwinding, re-panics
// after recover — carry a `fractos:panic-ok <reason>` waiver.
package panicfree

import (
	"go/ast"
	"go/types"
	"strings"

	"fractos/tools/analyzers/analysis"
)

// Analyzer is the panicfree analysis.
var Analyzer = &analysis.Analyzer{
	Name: "panicfree",
	Doc:  "forbid builtin panic outside internal/assert; failures must flow as wire.Status or through assert helpers",
	Run:  run,
}

const suppression = "fractos:panic-ok"

func run(pass *analysis.Pass) (interface{}, error) {
	if strings.Contains(pass.Pkg.Path(), "internal/assert") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if pass.Suppressed(call.Pos(), suppression) {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic tears down the whole simulated data center; return a wire.Status on protocol paths or use internal/assert for invariant violations")
			return true
		})
	}
	return nil, nil
}

// Package pf exercises the panicfree analyzer.
package pf

type killSignal struct{}

func direct() {
	panic("boom") // want `panic tears down the whole simulated data center`
}

func valued(err error) {
	if err != nil {
		panic(err) // want `panic tears down the whole simulated data center`
	}
}

func waived(r interface{}) {
	//fractos:panic-ok re-panic after recover: not ours to swallow
	panic(r)
}

func waivedSameLine() {
	panic(killSignal{}) //fractos:panic-ok cooperative-kill unwinding
}

// panic as an identifier (not the builtin) is fine.
func shadowed() {
	panic := func(v interface{}) {}
	panic("not the builtin")
}

// recover is unrelated and fine.
func recovers() {
	defer func() {
		_ = recover()
	}()
}

package panicfree_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/panicfree"
)

func TestPanicfree(t *testing.T) {
	analysistest.Run(t, "testdata", panicfree.Analyzer, "pf")
}

package capcheck_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/capcheck"
)

func TestCapcheck(t *testing.T) {
	analysistest.Run(t, "testdata", capcheck.Analyzer, "a/internal/core")
}

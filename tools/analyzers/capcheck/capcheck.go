// Package capcheck verifies the capability-validation invariant of
// the FractOS Controller (§3.5 of the paper): a syscall handler may
// only dereference the object tree on behalf of a Process after the
// Process's authority has been established through its capability
// space.
//
// Concretely, inside packages matching internal/core, every method of
// Controller named handle* (the syscall dispatch targets) that calls
// an owner-side dereference — resolveOwned, deriveMemLocal,
// deriveReqLocal, deliverInvoke, revokeLocal, deriveDelegatee — must
// first (in source order) resolve the caller's capability via
// resolveEntry, resolveCapSlots, or a capability-space Lookup. A
// handler that reaches the object tree without consulting the
// capability space is a confused-deputy bug: it would let a Process
// act on objects it holds no capability for.
//
// The slab-backed {index, generation} cid scheme adds two more
// invariants, also enforced here:
//
//   - No raw cid forging: converting an integer to cap.CapID mints a
//     handle without going through Space.Install, bypassing the
//     generation fence that keeps purged cids permanently invalid.
//     Inside internal/core the only legitimate cid sources are
//     Install's return value and values received over the wire (whose
//     decoded fields are already typed). Any CapID(...) conversion is
//     flagged.
//
//   - No Entry retention across yields: Space.Peek returns a pointer
//     into slab storage, valid only until the space next mutates. A
//     handler that parks its task (Sleep/Recv/Wait/Yield) or issues an
//     inter-Controller call can interleave with a drop or purge that
//     recycles the slot, leaving the pointer aimed at an unrelated
//     capability. Peek results used after a potential yield point are
//     flagged; re-Peek after resuming instead.
package capcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
)

// Analyzer is the capcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "capcheck",
	Doc:  "syscall handlers must validate capabilities before dereferencing the object tree",
	Run:  run,
}

// resolvers establish the calling Process's authority.
var resolvers = map[string]bool{
	"resolveEntry":    true,
	"resolveCapSlots": true,
	"Lookup":          true, // ps.space.Lookup
}

// derefs touch the owner's object tree on the Process's behalf.
var derefs = map[string]bool{
	"resolveOwned":    true,
	"deriveMemLocal":  true,
	"deriveReqLocal":  true,
	"deliverInvoke":   true,
	"revokeLocal":     true,
	"deriveDelegatee": true,
}

// yields are calls that can park the task or hand control to another
// Controller before the next statement runs; slab Entry pointers must
// not survive them.
var yields = map[string]bool{
	"Sleep": true,
	"Recv":  true,
	"Wait":  true,
	"Yield": true,
	"call":  true, // inter-Controller RPC (async continuation)
	"callF": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !strings.Contains(pass.Pkg.Path(), "internal/core") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRawCids(pass, fd)
			checkEntryRetention(pass, fd)
			if !strings.HasPrefix(fd.Name.Name, "handle") {
				continue
			}
			if astq.ReceiverTypeName(fd) != "Controller" {
				continue
			}
			checkHandler(pass, fd)
		}
	}
	return nil, nil
}

// checkRawCids flags type conversions to CapID: cids are minted by
// Space.Install (carrying the slot's generation) — a conversion
// forges one from a bare index.
func checkRawCids(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok || named.Obj().Name() != "CapID" {
			return true
		}
		if pass.Suppressed(call.Pos(), "fractos:capcheck-ok") {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s forges a capability id with a raw CapID conversion; cids carry a slot generation and must come from Space.Install or the wire decoder",
			fd.Name.Name)
		return true
	})
}

// checkEntryRetention flags uses of a Space.Peek result after a yield
// point. The check is positional, like checkHandler: a Peek-derived
// variable, a later yield call, and a still-later use of the variable
// form a retention hazard regardless of the branch structure between
// them — the slot can be recycled while the task is parked.
func checkEntryRetention(pass *analysis.Pass, fd *ast.FuncDecl) {
	// entry vars: object -> position of the Peek assignment.
	peeked := map[types.Object]token.Pos{}
	var yieldPos []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || astq.CalleeName(call) != "Peek" {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				peeked[obj] = n.Pos()
			}
		case *ast.CallExpr:
			if yields[astq.CalleeName(n)] {
				yieldPos = append(yieldPos, n.Pos())
			}
		}
		return true
	})
	if len(peeked) == 0 || len(yieldPos) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		from, ok := peeked[obj]
		if !ok || id.Pos() <= from {
			return true
		}
		for _, y := range yieldPos {
			if from < y && y < id.Pos() {
				if !pass.Suppressed(id.Pos(), "fractos:capcheck-ok") {
					pass.Reportf(id.Pos(),
						"%s uses slab Entry pointer %s across a yield point; the slot may have been recycled — re-Peek after resuming",
						fd.Name.Name, id.Name)
				}
				delete(peeked, obj) // one report per variable
				return true
			}
		}
		return true
	})
}

// checkHandler walks the handler body in source order, requiring a
// resolver call before any dereference call. FuncLit bodies
// (continuations of inter-Controller calls, spawned sub-tasks) are
// included: they run strictly after the statements that precede them
// in the source, so positional ordering remains a sound
// approximation of execution order for this linear handler style.
func checkHandler(pass *analysis.Pass, fd *ast.FuncDecl) {
	firstResolve := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := astq.CalleeName(call)
		switch {
		case resolvers[name]:
			if firstResolve == token.NoPos || call.Pos() < firstResolve {
				firstResolve = call.Pos()
			}
		case derefs[name]:
			if firstResolve == token.NoPos || call.Pos() < firstResolve {
				if pass.Suppressed(call.Pos(), "fractos:capcheck-ok") {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s dereferences the object tree via %s before any capability validation (resolveEntry/resolveCapSlots/Lookup)",
					fd.Name.Name, name)
			}
		}
		return true
	})
}

// Package capcheck verifies the capability-validation invariant of
// the FractOS Controller (§3.5 of the paper): a syscall handler may
// only dereference the object tree on behalf of a Process after the
// Process's authority has been established through its capability
// space.
//
// Concretely, inside packages matching internal/core, every method of
// Controller named handle* (the syscall dispatch targets) that calls
// an owner-side dereference — resolveOwned, deriveMemLocal,
// deriveReqLocal, deliverInvoke, revokeLocal, deriveDelegatee — must
// first (in source order) resolve the caller's capability via
// resolveEntry, resolveCapSlots, or a capability-space Lookup. A
// handler that reaches the object tree without consulting the
// capability space is a confused-deputy bug: it would let a Process
// act on objects it holds no capability for.
package capcheck

import (
	"go/ast"
	"go/token"
	"strings"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
)

// Analyzer is the capcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "capcheck",
	Doc:  "syscall handlers must validate capabilities before dereferencing the object tree",
	Run:  run,
}

// resolvers establish the calling Process's authority.
var resolvers = map[string]bool{
	"resolveEntry":    true,
	"resolveCapSlots": true,
	"Lookup":          true, // ps.space.Lookup
}

// derefs touch the owner's object tree on the Process's behalf.
var derefs = map[string]bool{
	"resolveOwned":    true,
	"deriveMemLocal":  true,
	"deriveReqLocal":  true,
	"deliverInvoke":   true,
	"revokeLocal":     true,
	"deriveDelegatee": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !strings.Contains(pass.Pkg.Path(), "internal/core") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "handle") {
				continue
			}
			if astq.ReceiverTypeName(fd) != "Controller" {
				continue
			}
			checkHandler(pass, fd)
		}
	}
	return nil, nil
}

// checkHandler walks the handler body in source order, requiring a
// resolver call before any dereference call. FuncLit bodies
// (continuations of inter-Controller calls, spawned sub-tasks) are
// included: they run strictly after the statements that precede them
// in the source, so positional ordering remains a sound
// approximation of execution order for this linear handler style.
func checkHandler(pass *analysis.Pass, fd *ast.FuncDecl) {
	firstResolve := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := astq.CalleeName(call)
		switch {
		case resolvers[name]:
			if firstResolve == token.NoPos || call.Pos() < firstResolve {
				firstResolve = call.Pos()
			}
		case derefs[name]:
			if firstResolve == token.NoPos || call.Pos() < firstResolve {
				if pass.Suppressed(call.Pos(), "fractos:capcheck-ok") {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s dereferences the object tree via %s before any capability validation (resolveEntry/resolveCapSlots/Lookup)",
					fd.Name.Name, name)
			}
		}
		return true
	})
}

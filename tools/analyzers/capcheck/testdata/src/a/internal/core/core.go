// Package core is a miniature replica of fractos/internal/core used
// to exercise the capcheck analyzer: same method-naming conventions,
// none of the real machinery.
package core

type Status uint8

const StatusOK Status = 0

type Entry struct{ Rights uint8 }

type Node struct{ ID uint64 }

type Ref struct{ Obj uint64 }

type space struct{}

func (s *space) Lookup(cid uint64) (Entry, bool) { return Entry{}, true }

type procState struct{ space *space }

type msg struct {
	Token uint64
	Cid   uint64
}

// Controller mirrors the real Controller's handler conventions.
type Controller struct{}

func (c *Controller) resolveEntry(ps *procState, cid uint64) (Entry, Status) {
	return Entry{}, StatusOK
}

func (c *Controller) resolveCapSlots(ps *procState, cids []uint64) ([]Entry, Status) {
	return nil, StatusOK
}

func (c *Controller) resolveOwned(ref Ref) (*Node, Status) { return nil, StatusOK }

func (c *Controller) revokeLocal(ref Ref) Status { return StatusOK }

func (c *Controller) complete(ps *procState, token uint64, st Status) {}

// handleGood validates the capability before dereferencing: clean.
func (c *Controller) handleGood(ps *procState, m *msg) {
	e, st := c.resolveEntry(ps, m.Cid)
	if st != StatusOK {
		c.complete(ps, m.Token, st)
		return
	}
	_ = e
	n, st := c.resolveOwned(Ref{Obj: m.Cid})
	_, _ = n, st
	c.complete(ps, m.Token, StatusOK)
}

// handleLookupGood uses a raw capability-space lookup, which also
// establishes authority: clean.
func (c *Controller) handleLookupGood(ps *procState, m *msg) {
	if _, ok := ps.space.Lookup(m.Cid); !ok {
		c.complete(ps, m.Token, Status(1))
		return
	}
	st := c.revokeLocal(Ref{Obj: m.Cid})
	c.complete(ps, m.Token, st)
}

// handleBad dereferences the tree with no capability check at all.
func (c *Controller) handleBad(ps *procState, m *msg) {
	n, st := c.resolveOwned(Ref{Obj: m.Cid}) // want `handleBad dereferences the object tree via resolveOwned before any capability validation`
	_, _ = n, st
	c.complete(ps, m.Token, StatusOK)
}

// handleLate validates only after the dereference: still a bug.
func (c *Controller) handleLate(ps *procState, m *msg) {
	st := c.revokeLocal(Ref{Obj: m.Cid}) // want `handleLate dereferences the object tree via revokeLocal before any capability validation`
	if e, st2 := c.resolveEntry(ps, m.Cid); st2 == StatusOK {
		_ = e
	}
	c.complete(ps, m.Token, st)
}

// handleSuppressed documents an intentional exception.
func (c *Controller) handleSuppressed(ps *procState, m *msg) {
	//fractos:capcheck-ok bootstrap path, authority established by the operator
	st := c.revokeLocal(Ref{Obj: m.Cid})
	c.complete(ps, m.Token, st)
}

// notAHandler is exempt: only handle* methods are syscall entry
// points.
func (c *Controller) notAHandler(ref Ref) Status {
	_, st := c.resolveOwned(ref)
	return st
}

// ---- slab cid-scheme cases ----

// CapID mirrors cap.CapID: generation bits over a slot index, minted
// only by Space.Install.
type CapID uint32

func (s *space) Install(e Entry) CapID { return CapID(1) } //fractos:capcheck-ok the real minting site lives in internal/cap; the replica needs one

func (s *space) Peek(cid CapID) *Entry { return nil }

type task struct{}

func (t *task) Sleep(d int64) {}

// handleMint forges a cid from a raw index, bypassing the generation
// fence.
func (c *Controller) handleMint(ps *procState, m *msg) {
	if _, ok := ps.space.Lookup(m.Cid); !ok {
		return
	}
	cid := CapID(m.Cid) // want `handleMint forges a capability id with a raw CapID conversion`
	_ = cid
}

// mintSuppressed documents an intentional conversion.
func (c *Controller) mintSuppressed(raw uint64) CapID {
	return CapID(raw) //fractos:capcheck-ok decoder boundary, raw field is the wire encoding of a minted cid
}

// peekAndYield retains a slab Entry pointer across a task yield: the
// slot can be recycled while parked.
func (c *Controller) peekAndYield(t *task, ps *procState, cid CapID) uint8 {
	e := ps.space.Peek(cid)
	if e == nil {
		return 0
	}
	t.Sleep(100)
	return e.Rights // want `peekAndYield uses slab Entry pointer e across a yield point`
}

// peekNoYield uses the pointer immediately: clean.
func (c *Controller) peekNoYield(t *task, ps *procState, cid CapID) uint8 {
	e := ps.space.Peek(cid)
	if e == nil {
		return 0
	}
	r := e.Rights
	t.Sleep(100)
	return r
}

// peekRefetch re-Peeks after the yield: clean.
func (c *Controller) peekRefetch(t *task, ps *procState, cid CapID) uint8 {
	e := ps.space.Peek(cid)
	if e == nil {
		return 0
	}
	t.Sleep(100)
	e = ps.space.Peek(cid)
	if e == nil {
		return 0
	}
	return e.Rights
}

// Package loader loads and type-checks Go packages for the
// fractos-vet analyzers without depending on golang.org/x/tools.
//
// Three resolution layers are consulted for an import path, in order:
//
//  1. GOPATH-style source roots (SrcDirs): path p maps to <root>/p.
//     This is how analysistest materializes its testdata packages.
//  2. The enclosing module: paths under the module path declared in
//     go.mod map to directories under the module root and are parsed
//     and type-checked from source.
//  3. The standard library, through go/importer's "source" compiler,
//     which type-checks GOROOT sources directly — no pre-built export
//     data is required.
//
// The loader is deliberately simple: no build tags, no cgo, no vendor
// directories — none of which this repository uses.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Errors    []error
}

// Loader loads packages. Configure the fields, then call Load or
// LoadModule.
type Loader struct {
	// Fset receives all parsed positions. Created on demand.
	Fset *token.FileSet

	// SrcDirs are GOPATH-style roots searched before the module.
	SrcDirs []string

	// ModulePath and ModuleDir describe the enclosing module, e.g.
	// "fractos" rooted at the repository. Optional.
	ModulePath string
	ModuleDir  string

	// IncludeTests also parses _test.go files of loaded packages.
	IncludeTests bool

	fallback types.ImporterFrom
	cache    map[string]*entry
}

type entry struct {
	pkg     *Package
	tpkg    *types.Package
	err     error
	loading bool
}

// FindModule locates the enclosing go.mod starting at dir and returns
// the module path and root directory.
func FindModule(dir string) (modPath, modDir string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return strings.TrimSpace(strings.TrimPrefix(line, "module ")), d, nil
				}
			}
			return "", "", fmt.Errorf("loader: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("loader: no go.mod found above %s", abs)
		}
	}
}

func (l *Loader) init() {
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	if l.cache == nil {
		l.cache = make(map[string]*entry)
	}
	if l.fallback == nil {
		l.fallback = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	}
}

// Load loads the given import paths (resolved through SrcDirs and the
// module) and returns them in the given order.
func (l *Loader) Load(paths ...string) ([]*Package, error) {
	l.init()
	var pkgs []*Package
	for _, p := range paths {
		e := l.load(p)
		if e.err != nil {
			return nil, fmt.Errorf("loader: %s: %w", p, e.err)
		}
		if e.pkg == nil {
			return nil, fmt.Errorf("loader: %s resolved outside source roots", p)
		}
		pkgs = append(pkgs, e.pkg)
	}
	return pkgs, nil
}

// LoadModule loads every package of the configured module, walking
// ModuleDir. Directories named "testdata", hidden directories, and
// directories without non-test Go files are skipped.
func (l *Loader) LoadModule() ([]*Package, error) {
	l.init()
	if l.ModuleDir == "" {
		return nil, fmt.Errorf("loader: LoadModule requires ModuleDir")
	}
	var paths []string
	err := filepath.Walk(l.ModuleDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if len(goFilesIn(path, false)) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(l.ModuleDir, path)
		if rerr != nil {
			return rerr
		}
		imp := l.ModulePath
		if rel != "." {
			imp = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, imp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return l.Load(paths...)
}

// Loaded returns every source package materialized so far (requested
// packages and their in-module or in-root dependencies), sorted by
// import path. Standard-library fallback imports are not included —
// they carry no syntax.
func (l *Loader) Loaded() []*Package {
	var pkgs []*Package
	for _, e := range l.cache {
		if e.pkg != nil {
			pkgs = append(pkgs, e.pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs
}

// resolveDir maps an import path to a source directory, or "" if the
// path is not under a source root or the module.
func (l *Loader) resolveDir(path string) string {
	for _, root := range l.SrcDirs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if len(goFilesIn(dir, false)) > 0 {
			return dir
		}
	}
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir
		}
		if strings.HasPrefix(path, l.ModulePath+"/") {
			dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
			if len(goFilesIn(dir, false)) > 0 {
				return dir
			}
		}
	}
	return ""
}

func goFilesIn(dir string, includeTests bool) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files
}

// Import implements types.Importer for packages under our source
// roots, falling back to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	e := l.load(path)
	return e.tpkg, e.err
}

func (l *Loader) load(path string) *entry {
	if e, ok := l.cache[path]; ok {
		if e.loading {
			return &entry{err: fmt.Errorf("import cycle through %q", path)}
		}
		return e
	}
	dir := l.resolveDir(path)
	if dir == "" {
		// Standard library (or anything else outside our roots).
		tpkg, err := l.fallback.Import(path)
		e := &entry{tpkg: tpkg, err: err}
		l.cache[path] = e
		return e
	}
	marker := &entry{loading: true}
	l.cache[path] = marker
	pkg, err := l.check(path, dir)
	e := &entry{pkg: pkg, err: err}
	if pkg != nil {
		e.tpkg = pkg.Types
	}
	l.cache[path] = e
	return e
}

// check parses and type-checks the package in dir.
func (l *Loader) check(path, dir string) (*Package, error) {
	files := goFilesIn(dir, l.IncludeTests)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg := &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.Fset,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, af)
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

package statuscheck_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/statuscheck"
)

func TestStatuscheck(t *testing.T) {
	analysistest.Run(t, "testdata", statuscheck.Analyzer, "sc/internal/core")
}

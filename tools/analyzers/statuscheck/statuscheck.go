// Package statuscheck is an errcheck for wire.Status plus a
// completion-protocol check for the Controller's syscall dispatch:
//
// Rule 1 (everywhere): a call whose results include a wire.Status
// must not discard it. Dropping a Status silently swallows revocation
// (StatusRevoked), stale-epoch rejection (StatusStale), and
// permission failures (StatusPerm) — precisely the signals FractOS's
// failure handling is built on. Statuses may not be dropped as bare
// expression statements nor assigned to the blank identifier; a
// deliberate drop needs a `fractos:status-ok <reason>` comment.
//
// Rule 2 (internal/core): every syscall handler (Controller method
// handle* whose message parameter carries a completion Token) must
// call complete exactly once on every control-flow path. Zero
// completions hang the issuing Process forever; two corrupt its
// token table. The analysis is path-sensitive over if/switch/return
// and follows the package's continuation idiom: a callback passed to
// call/callF is invoked exactly once by the pending-call machinery
// (reply, send failure, or abort), and a function literal handed to
// Spawn or After runs exactly once, so their bodies — and
// same-package functions they call, such as runCopy — count toward
// the handler's completion total.
package statuscheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
)

// Analyzer is the statuscheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "statuscheck",
	Doc:  "wire.Status results must be checked; syscall handlers must complete exactly once per path",
	Run:  run,
}

const suppression = "fractos:status-ok"

func run(pass *analysis.Pass) (interface{}, error) {
	checkDrops(pass)
	if strings.Contains(pass.Pkg.Path(), "internal/core") {
		checkCompletions(pass)
	}
	return nil, nil
}

// ---- Rule 1: dropped statuses ----

func checkDrops(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					reportDroppedStatus(pass, call, -1)
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.GoStmt:
				reportDroppedStatus(pass, n.Call, -1)
			case *ast.DeferStmt:
				reportDroppedStatus(pass, n.Call, -1)
			}
			return true
		})
	}
}

// reportDroppedStatus reports if the call's result (or, when idx >= 0,
// only the idx-th tuple component) is a wire.Status.
func reportDroppedStatus(pass *analysis.Pass, call *ast.CallExpr, idx int) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	found := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if (idx < 0 || idx == i) && astq.IsStatusType(t.At(i).Type()) {
				found = true
			}
		}
	default:
		if idx <= 0 && astq.IsStatusType(tv.Type) {
			found = true
		}
	}
	if !found || pass.Suppressed(call.Pos(), suppression) {
		return
	}
	name := astq.CalleeName(call)
	if name == "" {
		name = "call"
	}
	pass.Reportf(call.Pos(), "result of %s returning wire.Status is dropped; statuses carry revocation/permission failures and must be checked", name)
}

// checkBlankAssign flags wire.Status results assigned to the blank
// identifier.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if len(as.Lhs) == 1 {
			reportDroppedStatus(pass, call, -1)
		} else {
			reportDroppedStatus(pass, call, i)
		}
	}
}

// ---- Rule 2: complete() exactly once per dispatch path ----

// counts is a small lattice: the set of possible completion totals of
// a path, saturated at "2 or more".
type counts uint8

const (
	zero counts = 1 << iota
	one
	many
)

// add is the pointwise sum of two count sets.
func (c counts) add(d counts) counts {
	var out counts
	vals := []struct {
		bit counts
		n   int
	}{{zero, 0}, {one, 1}, {many, 2}}
	for _, a := range vals {
		if c&a.bit == 0 {
			continue
		}
		for _, b := range vals {
			if d&b.bit == 0 {
				continue
			}
			switch a.n + b.n {
			case 0:
				out |= zero
			case 1:
				out |= one
			default:
				out |= many
			}
		}
	}
	return out
}

func (c counts) String() string {
	var parts []string
	if c&zero != 0 {
		parts = append(parts, "0")
	}
	if c&one != 0 {
		parts = append(parts, "1")
	}
	if c&many != 0 {
		parts = append(parts, "2+")
	}
	if len(parts) == 0 {
		return "?"
	}
	return strings.Join(parts, " or ")
}

type checker struct {
	pass      *analysis.Pass
	report    bool // report per-return violations (handler top level)
	reported  bool
	depth     int // >0 inside a function literal
	ends      counts
	summaries map[*types.Func]counts
	inFlight  map[*types.Func]bool
	decls     map[*types.Func]*ast.FuncDecl
}

func checkCompletions(pass *analysis.Pass) {
	c := &checker{
		pass:      pass,
		summaries: make(map[*types.Func]counts),
		inFlight:  make(map[*types.Func]bool),
		decls:     make(map[*types.Func]*ast.FuncDecl),
	}
	var handlers []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
			if strings.HasPrefix(fd.Name.Name, "handle") &&
				astq.ReceiverTypeName(fd) == "Controller" &&
				handlerHasToken(pass, fd) {
				handlers = append(handlers, fd)
			}
		}
	}
	for _, fd := range handlers {
		if pass.Suppressed(fd.Pos(), suppression) {
			continue
		}
		c.report = true
		c.reported = false
		c.ends = 0
		fall, term := c.seq(fd.Body.List, zero)
		all := c.ends
		if !term {
			all |= fall
			if c.report && fall != one && !c.reported {
				c.pass.Reportf(fd.Pos(),
					"syscall handler %s can fall off the end having completed %s times (must be exactly 1)",
					fd.Name.Name, fall)
				c.reported = true
			}
		}
		if all != one && !c.reported {
			c.pass.Reportf(fd.Pos(),
				"syscall handler %s completes %s times on some path; every dispatch path must call complete exactly once",
				fd.Name.Name, all)
		}
	}
}

// handlerHasToken reports whether some parameter of the handler is a
// pointer to a struct carrying a Token field — the marker of a
// syscall that owes the Process a completion.
func handlerHasToken(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, param := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[param.Type]
		if !ok {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		st, ok := ptr.Elem().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == "Token" {
				return true
			}
		}
	}
	return false
}

// seq threads completion counts through a statement list. It returns
// the possible counts of paths falling off the end, and whether no
// path falls through (every path returned or branched away).
// Terminated-path counts accumulate into c.ends.
func (c *checker) seq(stmts []ast.Stmt, in counts) (fall counts, term bool) {
	cur := in
	for _, s := range stmts {
		next, terminated := c.stmt(s, cur)
		if terminated {
			return 0, true
		}
		cur = next
	}
	return cur, false
}

// stmt advances counts across one statement; term means every path
// through it terminates (return/break/continue).
func (c *checker) stmt(s ast.Stmt, in counts) (fall counts, term bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		c.atEnd(s.Pos(), in)
		return 0, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; their counts
		// are not tracked further (loop accumulation is checked
		// separately).
		return 0, true
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, in)
	case *ast.ExprStmt:
		return in.add(c.exprCounts(s.X)), false
	case *ast.AssignStmt:
		out := in
		for _, rhs := range s.Rhs {
			out = out.add(c.exprCounts(rhs))
		}
		return out, false
	case *ast.DeclStmt:
		out := in
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = out.add(c.exprCounts(v))
					}
				}
			}
		}
		return out, false
	case *ast.IfStmt:
		base := in
		if s.Init != nil {
			base, _ = c.stmt(s.Init, base)
		}
		base = base.add(c.exprCounts(s.Cond))
		tFall, tTerm := c.seq(s.Body.List, base)
		eFall, eTerm := base, false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				eFall, eTerm = c.seq(e.List, base)
			case *ast.IfStmt:
				eFall, eTerm = c.stmt(e, base)
			}
		}
		if tTerm && eTerm {
			return 0, true
		}
		if tTerm {
			return eFall, false
		}
		if eTerm {
			return tFall, false
		}
		return tFall | eFall, false
	case *ast.SwitchStmt:
		return c.switchClauses(s.Body, s.Init, in)
	case *ast.TypeSwitchStmt:
		return c.switchClauses(s.Body, s.Init, in)
	case *ast.BlockStmt:
		return c.seq(s.List, in)
	case *ast.ForStmt:
		c.loopCheck(s.Body, in)
		return in, false
	case *ast.RangeStmt:
		c.loopCheck(s.Body, in)
		return in, false
	case *ast.DeferStmt:
		if c.callCounts(s.Call) != zero && c.report &&
			!c.pass.Suppressed(s.Pos(), suppression) {
			c.pass.Reportf(s.Pos(), "completion inside defer is not analyzable; complete on the explicit paths instead")
			c.reported = true
		}
		return in, false
	}
	return in, false
}

// switchClauses merges all case bodies; without a default the
// fall-past path keeps the incoming counts.
func (c *checker) switchClauses(body *ast.BlockStmt, init ast.Stmt, in counts) (counts, bool) {
	base := in
	if init != nil {
		base, _ = c.stmt(init, base)
	}
	if len(body.List) == 0 {
		return base, false
	}
	var fall counts
	hasDefault := false
	allTerm := true
	for _, cc := range body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		f, t := c.seq(clause.Body, base)
		if !t {
			fall |= f
			allTerm = false
		}
	}
	if !hasDefault {
		fall |= base
		allTerm = false
	}
	if allTerm {
		return 0, true
	}
	return fall, false
}

// loopCheck verifies that a loop body cannot accumulate completions
// across iterations: a body path that completes must return, not fall
// through to the next iteration.
func (c *checker) loopCheck(body *ast.BlockStmt, in counts) {
	saved := c.report
	c.report = false // paths ending inside the loop are re-examined below
	fall, term := c.seq(body.List, in)
	c.report = saved
	if !term && fall != in && c.report &&
		!c.pass.Suppressed(body.Pos(), suppression) {
		c.pass.Reportf(body.Pos(), "completion inside a loop may run zero or many times; complete outside the loop or return immediately after completing")
		c.reported = true
	}
}

// atEnd records a terminated path's count and reports it at handler
// top level when it is not exactly one.
func (c *checker) atEnd(pos token.Pos, cur counts) {
	c.ends |= cur
	if c.report && c.depth == 0 && cur != one && !c.reported {
		c.pass.Reportf(pos,
			"this return path has completed %s times (must be exactly 1)", cur)
		c.reported = true
	}
}

// exprCounts returns the completions contributed by evaluating e.
func (c *checker) exprCounts(e ast.Expr) counts {
	out := zero
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A bare literal not handed to a continuation primitive is
			// not executed here.
			return false
		case *ast.CallExpr:
			out = out.add(c.callCounts(n))
			return false
		}
		return true
	})
	return out
}

// callCounts returns the completion contribution of one call.
func (c *checker) callCounts(call *ast.CallExpr) counts {
	switch astq.CalleeName(call) {
	case "complete":
		return one
	case "call", "callF", "Spawn", "After":
		// Continuation primitives: a func-literal argument runs
		// exactly once (on reply, send failure, or abort for
		// call/callF; as a scheduled task for Spawn/After).
		out := zero
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = out.add(c.funcLitCounts(lit))
			}
		}
		return out
	}
	if fn := astq.CalledFunc(c.pass.TypesInfo, call); fn != nil && fn.Pkg() == c.pass.Pkg {
		return c.summary(fn)
	}
	out := zero
	for _, arg := range call.Args {
		out = out.add(c.exprCounts(arg))
	}
	return out
}

// funcLitCounts analyzes a literal that will be invoked exactly once,
// returning the set of its possible completion totals.
func (c *checker) funcLitCounts(lit *ast.FuncLit) counts {
	savedEnds, savedDepth := c.ends, c.depth
	c.ends, c.depth = 0, c.depth+1
	fall, term := c.seq(lit.Body.List, zero)
	all := c.ends
	if !term {
		all |= fall
	}
	c.ends, c.depth = savedEnds, savedDepth
	if all == 0 {
		all = zero
	}
	return all
}

// summary computes (memoized) the possible completion totals of a
// declared same-package function. Recursion is cut at zero.
func (c *checker) summary(fn *types.Func) counts {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if c.inFlight[fn] {
		return zero
	}
	fd, ok := c.decls[fn]
	if !ok || fd.Body == nil {
		return zero
	}
	c.inFlight[fn] = true
	sub := &checker{
		pass:      c.pass,
		report:    false,
		summaries: c.summaries,
		inFlight:  c.inFlight,
		decls:     c.decls,
	}
	fall, term := sub.seq(fd.Body.List, zero)
	s := sub.ends
	if !term {
		s |= fall
	}
	if s == 0 {
		s = zero
	}
	delete(c.inFlight, fn)
	c.summaries[fn] = s
	return s
}

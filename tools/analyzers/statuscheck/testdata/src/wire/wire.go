// Package wire mirrors the repo's message/status vocabulary for the
// statuscheck testdata.
package wire

// Status is the syscall/peer outcome code.
type Status uint8

// Status values.
const (
	StatusOK Status = iota
	StatusPerm
)

// MemCreate is a syscall message carrying a completion Token: the
// handler owes the issuing process exactly one complete().
type MemCreate struct {
	Token uint64
	Bytes uint64
}

// DeliverDone is a notification message with no completion owed.
type DeliverDone struct {
	Seq uint64
}

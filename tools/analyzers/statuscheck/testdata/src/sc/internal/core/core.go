// Package core exercises the statuscheck analyzer: dropped wire.Status
// results (rule 1) and the complete-exactly-once protocol of syscall
// handlers (rule 2).
package core

import "wire"

type proc struct{ id uint32 }

// Controller mimics the dispatch surface of the real internal/core.
type Controller struct{ peers map[uint32]bool }

func (c *Controller) complete(ps *proc, token uint64, st wire.Status) {}

func (c *Controller) call(peer uint32, build func(seq uint64) int, cb func(reply int)) {}

func (c *Controller) Spawn(name string, fn func()) {}

func (c *Controller) resolve(id uint64) (*proc, wire.Status) { return nil, wire.StatusOK }

func (c *Controller) revoke(id uint64) wire.Status { return wire.StatusOK }

// ---- Rule 1: dropped statuses ----

func (c *Controller) drops() {
	c.revoke(1)          // want `result of revoke returning wire.Status is dropped`
	_ = c.revoke(2)      // want `result of revoke returning wire.Status is dropped`
	_, _ = c.resolve(3)  // want `result of resolve returning wire.Status is dropped`
	p, _ := c.resolve(4) // want `result of resolve returning wire.Status is dropped`
	_ = p

	//fractos:status-ok best-effort cleanup; failure is acceptable here
	c.revoke(5)

	if st := c.revoke(6); st != wire.StatusOK {
		return
	}
	if p2, st := c.resolve(7); st == wire.StatusOK {
		_ = p2
	}
}

// ---- Rule 2: complete exactly once per dispatch path ----

// handleGoodBranches completes on both arms.
func (c *Controller) handleGoodBranches(ps *proc, m *wire.MemCreate) {
	if m.Bytes == 0 {
		c.complete(ps, m.Token, wire.StatusPerm)
		return
	}
	c.complete(ps, m.Token, wire.StatusOK)
}

// handleGoodSwitch completes in every case including default.
func (c *Controller) handleGoodSwitch(ps *proc, m *wire.MemCreate) {
	switch m.Bytes {
	case 0:
		c.complete(ps, m.Token, wire.StatusPerm)
	case 1:
		c.complete(ps, m.Token, wire.StatusOK)
	default:
		c.complete(ps, m.Token, wire.StatusOK)
	}
}

// handleGoodCall defers completion to the reply continuation, which
// the pending-call machinery invokes exactly once.
func (c *Controller) handleGoodCall(ps *proc, m *wire.MemCreate) {
	c.call(2, func(seq uint64) int { return int(seq) }, func(reply int) {
		c.complete(ps, m.Token, wire.StatusOK)
	})
}

// handleGoodSpawn hands completion to a spawned task that runs a
// same-package helper completing exactly once.
func (c *Controller) handleGoodSpawn(ps *proc, m *wire.MemCreate) {
	c.Spawn("copy", func() {
		c.runCopy(ps, m.Token)
	})
}

func (c *Controller) runCopy(ps *proc, token uint64) {
	if token == 0 {
		c.complete(ps, token, wire.StatusPerm)
		return
	}
	c.complete(ps, token, wire.StatusOK)
}

// handleDone owes no completion: DeliverDone carries no Token.
func (c *Controller) handleDone(ps *proc, m *wire.DeliverDone) {
	_ = m.Seq
}

//fractos:status-ok completion happens in the fabric layer for this op
func (c *Controller) handleWaived(ps *proc, m *wire.MemCreate) {
	_ = m.Token
}

// handleBadMissing forgets to complete on the fall-through path.
func (c *Controller) handleBadMissing(ps *proc, m *wire.MemCreate) { // want `handleBadMissing can fall off the end having completed 0 times`
	if m.Bytes == 0 {
		c.complete(ps, m.Token, wire.StatusPerm)
		return
	}
}

// handleBadDouble completes twice on the straight-line path.
func (c *Controller) handleBadDouble(ps *proc, m *wire.MemCreate) { // want `handleBadDouble can fall off the end having completed 2\+ times`
	c.complete(ps, m.Token, wire.StatusOK)
	c.complete(ps, m.Token, wire.StatusOK)
}

// handleBadReturn returns early without completing.
func (c *Controller) handleBadReturn(ps *proc, m *wire.MemCreate) {
	if m.Bytes == 0 {
		return // want `this return path has completed 0 times`
	}
	c.complete(ps, m.Token, wire.StatusOK)
}

// handleBadLoop may complete zero or many times across iterations.
func (c *Controller) handleBadLoop(ps *proc, m *wire.MemCreate) {
	for i := uint64(0); i < m.Bytes; i++ { // want `completion inside a loop may run zero or many times`
		if i == m.Token {
			c.complete(ps, m.Token, wire.StatusOK)
		}
	}
}

// handleGoodLoop completes after the loop; the loop body only
// accumulates, so it is fine.
func (c *Controller) handleGoodLoop(ps *proc, m *wire.MemCreate) {
	total := uint64(0)
	for i := uint64(0); i < m.Bytes; i++ {
		total += i
	}
	c.complete(ps, m.Token, wire.StatusOK)
	_ = total
}

// handleBadDefer hides the completion in a defer.
func (c *Controller) handleBadDefer(ps *proc, m *wire.MemCreate) {
	defer c.complete(ps, m.Token, wire.StatusOK) // want `completion inside defer is not analyzable`
}

// Package callgraph builds a module-wide call graph with per-function
// summaries for the interprocedural fractos-vet analyzers (poolcheck,
// allocfree). It is a fact layer, not an analyzer: Of(pass) returns
// the graph for the driver's module view, building it once and caching
// it in the Pass's Module fact cache so every analyzer and package
// shares the same graph.
//
// Per function the graph records:
//
//   - direct call edges resolved through the type checker (indirect
//     calls — interface methods, function values — are not resolved;
//     analyses over the graph are therefore may-miss across dynamic
//     dispatch and say so in their documentation);
//   - allocation sources in the body: heap composite literals, slice
//     and map literals, make, new, append growth, string
//     concatenation, string<->[]byte conversions, function literals
//     (closure capture), calls into package fmt, and interface boxing
//     at variadic ...interface{} call sites;
//   - annotations read from the function's doc comment:
//     //fractos:hotpath        — zero-alloc linted property (allocfree)
//     //fractos:pool-acquire P — returns an owned resource of pool P
//     //fractos:pool-release P — releases its pooled operand back to P
//     //fractos:pool-handoff P — takes ownership of its pooled operand
//
// Allocation sources and call edges whose line (or the line above)
// carries a fractos:alloc-ok comment are marked Waived; the marker is
// the documented escape hatch for deliberate cold-path allocations.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
)

// Markers recognized in doc comments and waiver comments.
const (
	MarkHotpath = "fractos:hotpath"
	MarkAcquire = "fractos:pool-acquire"
	MarkRelease = "fractos:pool-release"
	MarkHandoff = "fractos:pool-handoff"
	MarkAllocOK = "fractos:alloc-ok"
)

// Alloc is one allocation source inside a function body.
type Alloc struct {
	Pos    token.Pos
	Kind   string // "make", "append growth", "fmt call", ...
	Waived bool   // line carries fractos:alloc-ok
}

// Edge is one statically resolved call site.
type Edge struct {
	Pos    token.Pos
	Call   *ast.CallExpr
	Callee *types.Func // origin (generic) function object
	Waived bool        // call line carries fractos:alloc-ok
}

// Func is the summary of one declared function or method.
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *types.Package

	Hotpath bool
	Acquire string // pool name, "" if not an acquire function
	Release string
	Handoff string

	Allocs []Alloc
	Calls  []Edge
}

// Graph is the module-wide call graph.
type Graph struct {
	Fset  *token.FileSet
	Funcs map[*types.Func]*Func

	mu    sync.Mutex
	reach map[*types.Func]string // memoized AllocPath results
}

const factKey = "fractos/callgraph"

// Of returns the call graph for the pass's module view, building and
// caching it on first use. Without a Module the graph covers only the
// pass's own package.
func Of(pass *analysis.Pass) *Graph {
	if pass.Module == nil {
		return build(pass.Fset, []*analysis.ModulePackage{{
			Pkg: pass.Pkg, Files: pass.Files, TypesInfo: pass.TypesInfo,
		}})
	}
	m := pass.Module
	return m.Fact(factKey, func() interface{} {
		return build(m.Fset, m.Packages)
	}).(*Graph)
}

// Lookup returns the summary for fn (normalized to its generic
// origin), or nil for functions outside the module view.
func (g *Graph) Lookup(fn *types.Func) *Func {
	if fn == nil {
		return nil
	}
	return g.Funcs[fn.Origin()]
}

func build(fset *token.FileSet, pkgs []*analysis.ModulePackage) *Graph {
	g := &Graph{
		Fset:  fset,
		Funcs: make(map[*types.Func]*Func),
		reach: make(map[*types.Func]string),
	}
	for _, mp := range pkgs {
		for _, file := range mp.Files {
			waived := waiverLines(fset, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := mp.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: mp.Pkg}
				fn.Hotpath = docHasMarker(fd, MarkHotpath)
				fn.Acquire = docMarkerArg(fd, MarkAcquire)
				fn.Release = docMarkerArg(fd, MarkRelease)
				fn.Handoff = docMarkerArg(fd, MarkHandoff)
				scanBody(fset, mp.TypesInfo, fd.Body, waived, fn)
				g.Funcs[obj] = fn
			}
		}
	}
	return g
}

// waiverLines collects the lines of a file carrying fractos:alloc-ok.
func waiverLines(fset *token.FileSet, file *ast.File) map[int]bool {
	var lines map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, MarkAllocOK) {
				continue
			}
			if lines == nil {
				lines = make(map[int]bool)
			}
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

func isWaived(fset *token.FileSet, waived map[int]bool, pos token.Pos) bool {
	if waived == nil {
		return false
	}
	line := fset.Position(pos).Line
	return waived[line] || waived[line-1]
}

func docHasMarker(fd *ast.FuncDecl, marker string) bool {
	return docMarkerIndex(fd, marker) >= 0
}

// docMarkerArg returns the first field following the marker in the
// doc comment, or "" when the marker is absent. A marker only counts
// when it starts its comment line (the gofmt-blessed "//marker arg"
// directive form) so that prose merely mentioning a marker — such as
// this sentence — does not annotate the function.
func docMarkerArg(fd *ast.FuncDecl, marker string) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, marker) {
			continue
		}
		rest := strings.Fields(text[len(marker):])
		if len(rest) > 0 {
			return rest[0]
		}
		return ""
	}
	return ""
}

func docMarkerIndex(fd *ast.FuncDecl, marker string) int {
	if fd.Doc == nil {
		return -1
	}
	for i, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, marker) {
			return i
		}
	}
	return -1
}

// scanBody records allocation sources and call edges of one body.
// Function literal bodies are not descended into: the literal itself
// is the allocation that happens here; what it does when invoked is
// charged to whoever invokes it.
func scanBody(fset *token.FileSet, info *types.Info, body *ast.BlockStmt, waived map[int]bool, fn *Func) {
	addAlloc := func(pos token.Pos, kind string) {
		fn.Allocs = append(fn.Allocs, Alloc{Pos: pos, Kind: kind, Waived: isWaived(fset, waived, pos)})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			addAlloc(n.Pos(), "function literal (closure)")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					addAlloc(n.Pos(), "heap composite literal")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					addAlloc(n.Pos(), "slice literal")
				case *types.Map:
					addAlloc(n.Pos(), "map literal")
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Type != nil && isStringType(tv.Type) && !isConstExpr(info, n) {
					addAlloc(n.Pos(), "string concatenation")
				}
			}
		case *ast.CallExpr:
			return callNode(fset, info, waived, fn, addAlloc, n)
		}
		return true
	})
}

// callNode classifies one call expression; the return value tells the
// walk whether to descend into the call's children.
func callNode(fset *token.FileSet, info *types.Info, waived map[int]bool, fn *Func, addAlloc func(token.Pos, string), call *ast.CallExpr) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				addAlloc(call.Pos(), "make")
			case "new":
				addAlloc(call.Pos(), "new")
			case "append":
				addAlloc(call.Pos(), "append growth")
			}
			return true
		}
	}
	// Type conversions: only string<->byte/rune-slice forms allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convAllocates(info, tv.Type, call.Args[0]) {
			addAlloc(call.Pos(), "string conversion")
		}
		return true
	}
	if astq.PackageOfCall(info, call) == "fmt" {
		addAlloc(call.Pos(), "fmt call")
		return true
	}
	callee := astq.CalledFunc(info, call)
	if callee != nil {
		callee = callee.Origin()
		fn.Calls = append(fn.Calls, Edge{
			Pos:    call.Pos(),
			Call:   call,
			Callee: callee,
			Waived: isWaived(fset, waived, call.Pos()),
		})
		if boxesVariadicInterface(callee, call) {
			addAlloc(call.Pos(), "interface boxing (variadic ...interface{})")
		}
	}
	return true
}

// convAllocates reports whether the conversion T(arg) copies memory:
// string <-> []byte/[]rune in either direction.
func convAllocates(info *types.Info, dst types.Type, arg ast.Expr) bool {
	src := types.Type(nil)
	if tv, ok := info.Types[arg]; ok {
		src = tv.Type
		if tv.Value != nil {
			return false // constant conversion, folded at compile time
		}
	}
	if src == nil {
		return false
	}
	dstStr, srcStr := isStringType(dst), isStringType(src)
	dstSl, srcSl := isByteOrRuneSlice(dst), isByteOrRuneSlice(src)
	return (dstStr && srcSl) || (dstSl && srcStr)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// boxesVariadicInterface reports whether the call passes loose
// arguments into a ...interface{} parameter (each one is boxed).
func boxesVariadicInterface(callee *types.Func, call *ast.CallExpr) bool {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return false
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	sl, ok := last.Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if _, isIface := sl.Elem().Underlying().(*types.Interface); !isIface {
		return false
	}
	return len(call.Args) >= sig.Params().Len()
}

// AllocPath returns a human-readable description of the first
// allocation reachable from fn through unwaived same-module call
// edges, or "" if fn's closure is allocation-free. Results are
// memoized; recursion is cut optimistically (a cycle member is treated
// as clean while its own computation is in flight).
func (g *Graph) AllocPath(fn *types.Func) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.allocPath(fn.Origin(), make(map[*types.Func]bool))
}

func (g *Graph) allocPath(fn *types.Func, visiting map[*types.Func]bool) string {
	if s, ok := g.reach[fn]; ok {
		return s
	}
	if visiting[fn] {
		return ""
	}
	f := g.Funcs[fn]
	if f == nil {
		return "" // outside the module view: not traversed
	}
	visiting[fn] = true
	result := ""
	for _, a := range f.Allocs {
		if a.Waived {
			continue
		}
		result = fn.Name() + " has " + a.Kind + " at " + g.shortPos(a.Pos)
		break
	}
	if result == "" {
		for _, e := range f.Calls {
			if e.Waived {
				continue
			}
			if sub := g.allocPath(e.Callee, visiting); sub != "" {
				result = fn.Name() + " calls " + sub
				break
			}
		}
	}
	delete(visiting, fn)
	g.reach[fn] = result
	return result
}

func (g *Graph) shortPos(pos token.Pos) string {
	p := g.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

package poolcheck_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, "testdata", poolcheck.Analyzer, "pc/poolcheck")
}

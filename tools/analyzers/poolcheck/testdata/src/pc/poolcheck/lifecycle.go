package poolcheck

// ---- violations ----

func leak() {
	b := Get() // want `pooled b \(pool buf\) acquired here may not be released`
	_ = b.n
}

func leakOnBranch() {
	b := Get() // want `may not be released`
	if cond() {
		b.Put()
	}
}

func double() {
	b := Get()
	b.Put()
	b.Put() // want `released again here`
}

func useAfterRelease() {
	b := Get()
	b.Put()
	_ = b.n // want `use of pooled b \(pool buf\) after it was released`
}

func useAfterHandoff() {
	b := Get()
	hand(b)
	_ = b.n // want `after it was released`
}

func useBorrowAfterRelease() byte {
	b := Get()
	p := b.bytes()
	b.Put()
	return p[0] // want `use of pooled b \(pool buf\) after it was released`
}

func valueCopyIsSafe() int {
	b := Get()
	n := b.n
	b.Put()
	return n + 1 // ok: n is an int copy, not a borrow of pooled storage
}

func releaseInLoop() {
	b := Get()
	for i := 0; i < 3; i++ { // want `released inside this loop`
		b.Put()
	}
}

func discarded() {
	Get() // want `result of Get \(pool buf\) is discarded`
}

func unbound() {
	_ = Get() // want `result of Get \(pool buf\) is not bound to a variable`
}

func retention() {
	b := Get()
	sink = b // want `stored outside the local frame`
	b.Put()
}

type q struct{ items []*Buf }

func (s *q) park() {
	b := Get()
	s.items = append(s.items, b) // want `stored outside the local frame`
	b.Put()
}

func capture() {
	b := Get()
	run(func() { b.Put() }) // want `captured by a function literal`
}

func deferDouble() {
	b := Get() // want `released more than once`
	defer b.Put()
	b.Put()
}

func returnAfterRelease() *Buf {
	b := Get()
	b.Put()
	return b // want `returned after it may already have been released`
}

// ---- clean ----

func cleanStraight() {
	b := Get()
	b.n++
	b.Put()
}

func branchesClean() {
	b := Get()
	if cond() {
		b.Put()
	} else {
		hand(b)
	}
}

func deferClean() {
	b := Get()
	defer b.Put()
	b.n++
}

func transfer() *Buf {
	b := Get()
	return b
}

func handoffClean() {
	b := Get()
	hand(b)
}

func cleanLoopLocal() {
	for i := 0; i < 3; i++ {
		b := Get()
		b.n += i
		b.Put()
	}
}

func switchClean() {
	b := Get()
	switch {
	case cond():
		b.Put()
	default:
		hand(b)
	}
}

// ---- waived ----

func waivedLeak() {
	b := Get() // fractos:pool-ok ownership parks in the registry; the runner releases it
	_ = b.n
}

func (s *q) parkWaived() {
	b := Get()
	s.items = append(s.items, b) // fractos:pool-ok the waker unlinks the waiter before reuse
	b.Put()
}

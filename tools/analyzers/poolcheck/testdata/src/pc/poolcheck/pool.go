// Package poolcheck exercises the pool lifecycle analyzer against a
// miniature buffer pool shaped like wire's Writer pool and the sim
// kernel's event free list.
package poolcheck

type Buf struct {
	n    int
	data []byte
}

// bytes exposes the buffer's backing storage (a borrow).
func (b *Buf) bytes() []byte { return b.data }

var free []*Buf

var sink *Buf

// Get returns an owned buffer from the pool.
//
//fractos:pool-acquire buf
func Get() *Buf {
	if n := len(free); n > 0 {
		b := free[n-1]
		free = free[:n-1]
		return b
	}
	return &Buf{}
}

// Put returns the buffer to the pool.
//
//fractos:pool-release buf
func (b *Buf) Put() {
	free = append(free, b)
}

// hand takes ownership of the buffer (queue push).
//
//fractos:pool-handoff buf
func hand(b *Buf) {
	free = append(free, b)
}

func run(f func()) { f() }

func cond() bool { return len(free) > 0 }

// Package poolcheck enforces the lifecycle of pooled resources:
// values obtained from a function annotated //fractos:pool-acquire
// must be released exactly once on every control-flow path, must not
// be used after release, and must not be retained (stored into fields,
// globals, or closures) past the documented handoff points.
//
// The analysis is path-sensitive in the style of statuscheck: a small
// counts lattice {0, 1, 2+} is threaded over if/switch/return/defer,
// per tracked variable, within the function (or function literal)
// where the resource is acquired. Release events are calls to
// functions annotated //fractos:pool-release or //fractos:pool-handoff
// whose bound operand — the first parameter, or the receiver for
// parameterless methods — is the tracked variable; returning the
// tracked variable transfers ownership to the caller and also counts
// as the path's release. Deferred releases (directly or inside a
// deferred function literal) are credited at every exit.
//
// Limitations, by design: ownership passed through unannotated helper
// calls is not tracked (the call is ignored), borrows are tracked one
// level deep (x := v.Method() marks x as a borrow of v; values derived
// from x are not), and a closure that captures a pooled value outlives
// the analysis — capture is therefore reported and must be waived
// where the surrounding machinery guarantees the lifecycle.
//
// Waiver: a `fractos:pool-ok <reason>` comment on the reported line or
// the line above.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"fractos/tools/analyzers/analysis"
	"fractos/tools/analyzers/astq"
	"fractos/tools/analyzers/callgraph"
)

// Analyzer is the poolcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "pooled resources (fractos:pool-* annotations) must be released exactly once and not used after release",
	Run:  run,
}

const suppression = "fractos:pool-ok"

func run(pass *analysis.Pass) (interface{}, error) {
	g := callgraph.Of(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if f := g.Lookup(obj); f != nil && (f.Acquire != "" || f.Release != "" || f.Handoff != "") {
				// Pool internals (free-list push/pop etc.) are exempt:
				// they implement the lifecycle being checked.
				continue
			}
			checkScope(pass, g, fd.Body)
		}
	}
	return nil, nil
}

// checkScope finds acquire sites in body (not descending into nested
// function literals, which are their own scopes) and runs the
// lifecycle walk for each; then recurses into the nested literals.
func checkScope(pass *analysis.Pass, g *callgraph.Graph, body *ast.BlockStmt) {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.AssignStmt:
			checkAcquireAssign(pass, g, body, n)
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if pool := acquirePool(pass, g, call); pool != "" && !pass.Suppressed(call.Pos(), suppression) {
					pass.Reportf(call.Pos(), "result of %s (pool %s) is discarded; pooled resources must be bound and released exactly once", astq.CalleeName(call), pool)
				}
			}
		}
		return true
	})
	for _, lit := range lits {
		checkScope(pass, g, lit.Body)
	}
}

// checkAcquireAssign begins tracking for `v := acquire()` forms.
func checkAcquireAssign(pass *analysis.Pass, g *callgraph.Graph, body *ast.BlockStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		pool := acquirePool(pass, g, call)
		if pool == "" {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			if !pass.Suppressed(call.Pos(), suppression) {
				pass.Reportf(call.Pos(), "result of %s (pool %s) is not bound to a variable; its release cannot be verified", astq.CalleeName(call), pool)
			}
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		w := &walker{
			pass: pass, g: g, v: obj, pool: pool,
			acquire: as, borrows: make(map[types.Object]bool),
		}
		w.walk(body)
	}
}

// acquirePool returns the pool name if call is an annotated acquire.
func acquirePool(pass *analysis.Pass, g *callgraph.Graph, call *ast.CallExpr) string {
	if f := g.Lookup(astq.CalledFunc(pass.TypesInfo, call)); f != nil {
		return f.Acquire
	}
	return ""
}

// ---- per-variable lifecycle walk ----

// counts is the {0, 1, 2+} possible-release-total lattice.
type counts uint8

const (
	zero counts = 1 << iota
	one
	many
)

func (c counts) add(d counts) counts {
	var out counts
	vals := []struct {
		bit counts
		n   int
	}{{zero, 0}, {one, 1}, {many, 2}}
	for _, a := range vals {
		if c&a.bit == 0 {
			continue
		}
		for _, b := range vals {
			if d&b.bit == 0 {
				continue
			}
			switch a.n + b.n {
			case 0:
				out |= zero
			case 1:
				out |= one
			default:
				out |= many
			}
		}
	}
	return out
}

// state is the per-path lattice: explicit releases so far and releases
// pending in registered defers.
type state struct {
	cnt counts
	def counts
}

func (s state) merge(t state) state { return state{s.cnt | t.cnt, s.def | t.def} }

// total is the release count a path exiting now would end with.
func (s state) total() counts { return s.cnt.add(s.def) }

type walker struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	v       types.Object
	pool    string
	acquire *ast.AssignStmt
	borrows map[types.Object]bool

	active   bool
	lost     bool // v reassigned; tracking abandoned
	done     bool // scope ended
	reported bool // one finding per acquire; follow-on noise suppressed
}

// walk runs the lifecycle analysis over the enclosing body. The
// end-of-scope check fires in seq when the statement list that
// contains the acquire ends (whether that is the function body, an if
// branch, or a loop body).
func (w *walker) walk(body *ast.BlockStmt) {
	w.seq(body.List, state{cnt: zero, def: zero})
}

func (w *walker) name() string { return w.v.Name() }

func (w *walker) reportf(pos token.Pos, format string, args ...interface{}) {
	if w.reported || w.pass.Suppressed(pos, suppression) {
		return
	}
	w.pass.Reportf(pos, format, args...)
	w.reported = true
}

// seq threads the state through a statement list. Activation: when the
// acquire statement is an element of this list, tracking starts after
// it and the end-of-scope check runs when the list ends (the variable
// goes out of scope with it).
func (w *walker) seq(stmts []ast.Stmt, in state) (fall state, term bool) {
	cur := in
	owner := false // acquire statement is directly in this list
	for _, s := range stmts {
		if s == w.acquire {
			w.active = true
			owner = true
			cur = state{cnt: zero, def: zero}
			continue
		}
		if w.lost || w.done {
			return cur, false
		}
		next, terminated := w.stmt(s, cur)
		if terminated {
			if owner {
				w.endScope()
			}
			return state{}, true
		}
		cur = next
	}
	if owner && w.active && !w.lost {
		w.checkExit(w.acquire.Pos(), cur, "scope ends")
		w.endScope()
	}
	return cur, false
}

func (w *walker) endScope() {
	w.active = false
	w.done = true
}

// checkExit validates a path's final release total.
func (w *walker) checkExit(pos token.Pos, s state, how string) {
	t := s.total()
	if t&zero != 0 {
		w.reportf(w.acquire.Pos(), "pooled %s (pool %s) acquired here may not be released on the path where %s", w.name(), w.pool, how)
	} else if t&many != 0 {
		w.reportf(pos, "pooled %s (pool %s) may be released more than once on the path where %s", w.name(), w.pool, how)
	}
}

func (w *walker) stmt(s ast.Stmt, in state) (fall state, term bool) {
	if !w.active {
		// Before activation (or after scope end) only structure is
		// followed, looking for the acquire statement in nested lists.
		switch s := s.(type) {
		case *ast.BlockStmt:
			return w.seq(s.List, in)
		case *ast.IfStmt:
			w.seq(s.Body.List, in)
			if s.Else != nil {
				w.stmt(s.Else, in)
			}
			return in, false
		case *ast.SwitchStmt:
			return w.quietClauses(s.Body, in)
		case *ast.TypeSwitchStmt:
			return w.quietClauses(s.Body, in)
		case *ast.SelectStmt:
			return w.quietClauses(s.Body, in)
		case *ast.ForStmt:
			w.seq(s.Body.List, in)
			return in, false
		case *ast.RangeStmt:
			w.seq(s.Body.List, in)
			return in, false
		case *ast.LabeledStmt:
			return w.stmt(s.Stmt, in)
		}
		return in, false
	}

	switch s := s.(type) {
	case *ast.ReturnStmt:
		w.returnStmt(s, in)
		return state{}, true
	case *ast.BranchStmt:
		return state{}, true
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, in)
	case *ast.BlockStmt:
		return w.seq(s.List, in)
	case *ast.IfStmt:
		base := in
		if s.Init != nil {
			base, _ = w.stmt(s.Init, base)
		}
		base = w.exprStep(s.Cond, base)
		tFall, tTerm := w.seq(s.Body.List, base)
		eFall, eTerm := base, false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				eFall, eTerm = w.seq(e.List, base)
			case *ast.IfStmt:
				eFall, eTerm = w.stmt(e, base)
			}
		}
		if tTerm && eTerm {
			return state{}, true
		}
		if tTerm {
			return eFall, false
		}
		if eTerm {
			return tFall, false
		}
		return tFall.merge(eFall), false
	case *ast.SwitchStmt:
		return w.clauses(s.Body, s.Init, s.Tag, in)
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Body, s.Init, nil, in)
	case *ast.SelectStmt:
		return w.clauses(s.Body, nil, nil, in)
	case *ast.ForStmt:
		return w.loop(s.Body, s.Pos(), in)
	case *ast.RangeStmt:
		return w.loop(s.Body, s.Pos(), in)
	case *ast.DeferStmt:
		return w.deferStmt(s, in), false
	case *ast.GoStmt:
		if mentionsObj(w.pass.TypesInfo, s.Call, w.v) {
			w.reportf(s.Pos(), "pooled %s (pool %s) escapes into a goroutine; lifecycle cannot be verified", w.name(), w.pool)
		}
		return in, false
	case *ast.AssignStmt:
		return w.assign(s, in), false
	case *ast.DeclStmt:
		out := in
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = w.exprStep(v, out)
					}
				}
			}
		}
		return out, false
	case *ast.ExprStmt:
		return w.exprStep(s.X, in), false
	case *ast.IncDecStmt:
		return w.exprStep(s.X, in), false
	case *ast.SendStmt:
		if mentionsObj(w.pass.TypesInfo, s.Value, w.v) {
			w.reportf(s.Pos(), "pooled %s (pool %s) sent on a channel; retention past handoff needs a fractos:pool-ok waiver", w.name(), w.pool)
		}
		return w.exprStep(s.Chan, w.exprStep(s.Value, in)), false
	}
	return in, false
}

// quietClauses follows structure pre-activation.
func (w *walker) quietClauses(body *ast.BlockStmt, in state) (state, bool) {
	for _, cc := range body.List {
		switch cc := cc.(type) {
		case *ast.CaseClause:
			w.seq(cc.Body, in)
		case *ast.CommClause:
			w.seq(cc.Body, in)
		}
	}
	return in, false
}

// clauses merges all case bodies; without a default the fall-past path
// keeps the incoming state.
func (w *walker) clauses(body *ast.BlockStmt, init ast.Stmt, tag ast.Expr, in state) (state, bool) {
	base := in
	if init != nil {
		base, _ = w.stmt(init, base)
	}
	if tag != nil {
		base = w.exprStep(tag, base)
	}
	if len(body.List) == 0 {
		return base, false
	}
	var fall state
	merged := false
	hasDefault := false
	for _, cc := range body.List {
		var stmts []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			stmts = cc.Body
		default:
			continue
		}
		f, t := w.seq(stmts, base)
		if !t {
			if merged {
				fall = fall.merge(f)
			} else {
				fall, merged = f, true
			}
		}
	}
	if !hasDefault {
		if merged {
			fall = fall.merge(base)
		} else {
			fall, merged = base, true
		}
	}
	if !merged {
		return state{}, true
	}
	return fall, false
}

// loop checks that iterations cannot accumulate releases: a body that
// releases and falls through to the next iteration releases again.
func (w *walker) loop(body *ast.BlockStmt, pos token.Pos, in state) (state, bool) {
	fall, term := w.seq(body.List, in)
	if !w.active || w.done {
		// The acquire lives inside the body; each iteration was its
		// own scope and the walk is finished.
		return in, false
	}
	if !term && fall.cnt != in.cnt {
		w.reportf(pos, "pooled %s (pool %s) is released inside this loop and may be released again on the next iteration", w.name(), w.pool)
	}
	if term {
		return in, false
	}
	return in.merge(fall), false
}

// deferStmt credits deferred releases; a deferred closure that touches
// the variable without releasing it is a capture finding.
func (w *walker) deferStmt(s *ast.DeferStmt, in state) state {
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		n := w.countReleasesIn(lit.Body)
		if n > 0 {
			out := in
			for i := 0; i < n; i++ {
				out.def = out.def.add(one)
			}
			return out
		}
		if mentionsObj(w.pass.TypesInfo, lit, w.v) {
			w.reportf(s.Pos(), "pooled %s (pool %s) captured by deferred closure that does not release it", w.name(), w.pool)
		}
		return in
	}
	if w.isReleaseOf(s.Call) {
		out := in
		out.def = out.def.add(one)
		return out
	}
	if mentionsObj(w.pass.TypesInfo, s.Call, w.v) {
		w.reportf(s.Pos(), "pooled %s (pool %s) used in defer without releasing; lifecycle cannot be verified", w.name(), w.pool)
	}
	return in
}

// countReleasesIn counts unconditional release calls in a block
// (deferred-closure bodies are expected to be straight-line).
func (w *walker) countReleasesIn(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok && w.isReleaseOf(call) {
			n++
		}
		return true
	})
	return n
}

// assign handles stores: reassignment of v ends tracking, borrows are
// registered, stores of v into non-local destinations are retention.
func (w *walker) assign(s *ast.AssignStmt, in state) state {
	out := in
	for _, rhs := range s.Rhs {
		out = w.exprStep(rhs, out)
	}
	// Reassignment of the tracked variable.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && objOf(w.pass.TypesInfo, id) == w.v {
			w.lost = true
			return out
		}
	}
	// Borrow registration: x := v.Method() / x := v.Field (single
	// assign) where x has reference semantics, tracked so later
	// use-after-release through the borrow is caught. Value copies
	// (ints, structs) are safe and not tracked.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			if w.isBorrowExpr(s.Rhs[0]) {
				if obj := objOf(w.pass.TypesInfo, id); obj != nil && isRefType(obj.Type()) {
					w.borrows[obj] = true
				}
			}
		}
	}
	// Retention: v stored into a field, element, dereference, or a
	// package-level variable outlives this frame.
	for i, lhs := range s.Lhs {
		retains := false
		switch lhs := lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			retains = true
		case *ast.Ident:
			if obj := objOf(w.pass.TypesInfo, lhs); obj != nil && obj != w.v &&
				obj.Parent() == w.pass.Pkg.Scope() {
				retains = true
			}
		}
		if !retains {
			continue
		}
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs != nil && mentionsObj(w.pass.TypesInfo, rhs, w.v) {
			w.reportf(s.Pos(), "pooled %s (pool %s) stored outside the local frame; retention past handoff needs a fractos:pool-ok waiver", w.name(), w.pool)
		}
	}
	return out
}

// isRefType reports whether values of t alias underlying storage.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// returnStmt handles ownership transfer and exit checking.
func (w *walker) returnStmt(s *ast.ReturnStmt, in state) {
	transfers := false
	for _, res := range s.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && objOf(w.pass.TypesInfo, id) == w.v {
			transfers = true
		} else {
			in = w.exprStep(res, in)
		}
	}
	if transfers {
		if in.cnt&(one|many) != 0 {
			w.reportf(s.Pos(), "pooled %s (pool %s) returned after it may already have been released", w.name(), w.pool)
		} else if in.def&(one|many) != 0 {
			w.reportf(s.Pos(), "pooled %s (pool %s) returned while a deferred call releases it", w.name(), w.pool)
		}
		return
	}
	w.checkExit(s.Pos(), in, "this return is taken")
}

// exprStep advances the state across one expression: releases add to
// the count (reporting definite double releases), other uses after a
// definite release are reported, closures capturing the value are
// retention.
func (w *walker) exprStep(e ast.Expr, in state) state {
	if e == nil {
		return in
	}
	out := in
	var uses []token.Pos
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if mentionsObj(w.pass.TypesInfo, n, w.v) {
				w.reportf(n.Pos(), "pooled %s (pool %s) captured by a function literal; the closure may outlive the release point (fractos:pool-ok if the scheduler guarantees otherwise)", w.name(), w.pool)
			}
			return false
		case *ast.CallExpr:
			if w.isReleaseOf(n) {
				if out.cnt&zero == 0 { // definitely already released
					w.reportf(n.Pos(), "pooled %s (pool %s) released again here", w.name(), w.pool)
				}
				out.cnt = out.cnt.add(one)
				return false
			}
			return true
		case *ast.Ident:
			obj := objOf(w.pass.TypesInfo, n)
			if obj == w.v || (obj != nil && w.borrows[obj]) {
				uses = append(uses, n.Pos())
			}
		}
		return true
	})
	if len(uses) > 0 && in.cnt != 0 && in.cnt&zero == 0 {
		w.reportf(uses[0], "use of pooled %s (pool %s) after it was released", w.name(), w.pool)
	}
	return out
}

// isReleaseOf reports whether call releases or hands off the tracked
// variable: the callee carries a pool-release/pool-handoff annotation
// for the same pool and its bound operand resolves to v.
func (w *walker) isReleaseOf(call *ast.CallExpr) bool {
	callee := astq.CalledFunc(w.pass.TypesInfo, call)
	f := w.g.Lookup(callee)
	if f == nil {
		return false
	}
	pool := f.Release
	if pool == "" {
		pool = f.Handoff
	}
	if pool == "" || pool != w.pool {
		return false
	}
	op := boundOperand(callee, call)
	if op == nil {
		return false
	}
	id, ok := ast.Unparen(op).(*ast.Ident)
	return ok && objOf(w.pass.TypesInfo, id) == w.v
}

// isBorrowExpr reports whether e reads directly off the tracked
// variable: v.Method(...) or v.Field.
func (w *walker) isBorrowExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				return objOf(w.pass.TypesInfo, id) == w.v
			}
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return objOf(w.pass.TypesInfo, id) == w.v
		}
	}
	return false
}

// boundOperand returns the expression a release call releases: the
// first argument, or the receiver for parameterless methods.
func boundOperand(callee *types.Func, call *ast.CallExpr) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Params().Len() >= 1 && len(call.Args) >= 1 {
		return call.Args[0]
	}
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
	}
	return nil
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// mentionsObj reports whether any identifier under n resolves to obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// Package services mirrors the repo's registry Client surface for the
// regcheck testdata.
package services

// Cap stands in for proc.Cap.
type Cap struct{}

// Task stands in for *sim.Task.
type Task struct{}

// Client mirrors the real registry handle.
type Client struct{}

// Register mirrors the real signature: member id plus error.
func (c *Client) Register(t *Task, name string, cp Cap, node int) (uint64, error) {
	return 0, nil
}

// Deregister mirrors the real signature.
func (c *Client) Deregister(t *Task, name string, id uint64) error { return nil }

// Resolve returns no error tuple the analyzer cares about beyond the
// trailing error; it is NOT Register/Deregister and must not be
// flagged.
func (c *Client) Resolve(t *Task, name string) (Cap, error) { return Cap{}, nil }

// Package user exercises the regcheck analyzer.
package user

import "services"

// wrapped embeds *services.Client so method-set resolution (not
// syntax) is exercised.
type wrapped struct{ *services.Client }

func drops(t *services.Task, c *services.Client, w wrapped, cp services.Cap) {
	c.Deregister(t, "svc", 1)          // want `error result of Client.Deregister is dropped`
	_ = c.Deregister(t, "svc", 1)      // want `error result of Client.Deregister is dropped`
	go c.Deregister(t, "svc", 1)       // want `error result of Client.Deregister is dropped`
	defer c.Deregister(t, "svc", 1)    // want `error result of Client.Deregister is dropped`
	w.Deregister(t, "svc", 1)          // want `error result of Client.Deregister is dropped`
	c.Register(t, "svc", cp, 0)        // want `error result of Client.Register is dropped`
	_, _ = c.Register(t, "svc", cp, 0) // want `error result of Client.Register is dropped`

	//fractos:reg-ok retire races the fence; UnknownObj is pruned-first and benign
	c.Deregister(t, "svc", 1)

	if err := c.Deregister(t, "svc", 1); err != nil {
		return
	}
	id, err := c.Register(t, "svc", cp, 0)
	_, _ = id, err
	// The id may be blanked as long as the error is kept.
	_, err2 := c.Register(t, "svc", cp, 0)
	_ = err2
	// Other Client methods are not this analyzer's business.
	c.Resolve(t, "svc")
}

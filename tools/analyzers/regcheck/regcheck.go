// Package regcheck is an errcheck for the service registry's
// membership surface: (*services.Client).Register and
// (*services.Client).Deregister.
//
// A dropped Register error leaves a replica serving without a
// membership entry — invisible to every balancer — while a dropped
// Deregister error is precisely the unbounded-names leak the
// replicated-service layer exists to prevent: the member stays in the
// name's set after the replica is gone, and clients keep routing to a
// corpse until a fence or monitor prunes it (if one ever does; a
// graceful retire is exactly the path those don't cover). Callers must
// branch on the error — tolerating wire.StatusUnknownObj where a
// concurrent fence may have pruned the member first is fine, but that
// decision has to be written down.
//
// A deliberate drop needs a `fractos:reg-ok <reason>` comment on the
// call's line.
package regcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"fractos/tools/analyzers/analysis"
)

// Analyzer is the regcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "regcheck",
	Doc:  "services.Client Register/Deregister errors must be checked; a dropped Deregister leaks registry membership",
	Run:  run,
}

const suppression = "fractos:reg-ok"

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call)
				}
			case *ast.GoStmt:
				report(pass, n.Call)
			case *ast.DeferStmt:
				report(pass, n.Call)
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkBlankAssign flags calls whose error result lands in the blank
// identifier: `_ = c.Deregister(...)` and `_, _ = c.Register(...)`
// (Register's error is the trailing tuple component, so only a blank
// in the last position counts as dropping it).
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	report(pass, call)
}

// report flags call if it is services.Client's Register or Deregister
// (resolved by method set, so wrappers and embedded fields are covered).
func report(pass *analysis.Pass, call *ast.CallExpr) {
	name, ok := isRegistryCall(pass.TypesInfo, call)
	if !ok || pass.Suppressed(call.Pos(), suppression) {
		return
	}
	pass.Reportf(call.Pos(),
		"error result of Client.%s is dropped; an unchecked %s leaks registry membership (route traffic to a corpse or serve unregistered)",
		name, name)
}

// isRegistryCall reports whether the call's callee is the Register or
// Deregister method of services.Client, returning the method name.
func isRegistryCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if name != "Register" && name != "Deregister" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 || !types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type()) {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Client" {
		return "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return "", false
	}
	if pkg.Path() != "services" && !strings.HasSuffix(pkg.Path(), "/services") {
		return "", false
	}
	return name, true
}

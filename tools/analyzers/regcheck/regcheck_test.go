package regcheck_test

import (
	"testing"

	"fractos/tools/analyzers/analysistest"
	"fractos/tools/analyzers/regcheck"
)

func TestRegcheck(t *testing.T) {
	analysistest.Run(t, "testdata", regcheck.Analyzer, "rc/regcheck")
}

// Package repro benchmarks regenerate every table and figure of the
// paper's evaluation (§6). The system under test runs on a
// deterministic virtual clock, so wall-clock ns/op measures simulation
// speed, not system performance; the paper-relevant results are
// emitted as custom metrics (vus = virtual microseconds, MB/s, req/s)
// and as the text tables printed by cmd/fractos-bench.
//
// Every benchmark also reports allocs/op (ReportAllocs) and the
// wall-clock simulation throughput in events/sec, so `go test -bench`
// doubles as a regression gate for the simulator's own speed (see
// docs/PERFORMANCE.md for the methodology and benchstat workflow).
package main

import (
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/exp"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// marshalSink keeps the allocation-gate encode results live so the
// compiler cannot elide the calls under test.
var marshalSink []byte

// validateSink keeps the validation-gate results live so the compiler
// cannot elide the calls under test.
var validateSink *cap.Node

// TestAllocGateKernelDispatch pins the zero-alloc property the
// allocfree analyzer enforces statically on the //fractos:hotpath
// kernel functions: steady-state event dispatch — After(0) chains over
// a warmed event pool and run-queue ring — must not allocate per
// event. The only tolerated allocations are the one deferred
// flush closure each Run call makes (amortized over every event of
// the run) plus measurement noise.
func TestAllocGateKernelDispatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const eventsPerRun = 1000
	k := sim.New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n%eventsPerRun != 0 {
			k.After(0, step)
		}
	}
	// Warm-up run: primes the event pool and grows the ring once.
	k.After(0, step)
	k.Run()
	perRun := testing.AllocsPerRun(20, func() {
		k.After(0, step)
		k.Run()
	})
	if perEvent := perRun / eventsPerRun; perEvent > 0.01 {
		t.Errorf("kernel dispatch allocates %.4f objects/event (%.1f per %d-event run); hot path must be allocation-free",
			perEvent, perRun, eventsPerRun)
	}
}

// TestAllocGateWireMarshal pins the wire codec's allocation contract:
// Marshal performs exactly one allocation (the exact-size buffer), and
// the pooled GetWriter/MarshalTo/Release path performs none at steady
// state.
func TestAllocGateWireMarshal(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := &wire.Completion{Token: 7, Status: wire.StatusOK, Aux: 42}
	if per := testing.AllocsPerRun(100, func() {
		marshalSink = wire.Marshal(m)
	}); per > 1 {
		t.Errorf("wire.Marshal allocates %.1f objects/op, want <= 1 (the exact-size buffer)", per)
	}
	// Warm the writer pool once so the gate measures steady state.
	wire.GetWriter(wire.SizeOf(m)).Release()
	if per := testing.AllocsPerRun(100, func() {
		w := wire.GetWriter(wire.SizeOf(m))
		wire.MarshalTo(w, m)
		w.Release()
	}); per > 0 {
		t.Errorf("pooled MarshalTo path allocates %.1f objects/op, want 0", per)
	}
}

// TestAllocGateCapValidate pins the capability engine's validation
// contract: Controller.Validate — the epoch-fenced revtree probe on
// every syscall's fast path — performs zero allocations, with the
// owning Process's capability space soaked at a million live entries
// so the measurement reflects slab-backed O(1) lookups, not a small
// warm space. This is the CI gate behind the cap-scale acceptance
// criterion (see docs/PERFORMANCE.md).
func TestAllocGateCapValidate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const soak = 1_000_000
	cl := core.NewCluster(core.ClusterConfig{Nodes: 2, Placement: core.CtrlShared, Seed: 31})
	srv := proc.Attach(cl, 0, "srv", 1<<12)
	ctrl := cl.Ctrls[0]
	var ref cap.Ref
	ready := false
	cl.K.Spawn("setup", func(tk *sim.Task) {
		mem, _, err := srv.AllocMemory(tk, 4096, cap.MemRights)
		if err != nil {
			return
		}
		e, ok := ctrl.EntryOf(srv.ID(), mem.ID())
		if !ok {
			return
		}
		ref = e.Ref
		// Soak the space: a million live bystander capabilities, so the
		// gated lookups run against paper-scale occupancy.
		for i := 1; i < soak; i++ {
			if _, ok := ctrl.GrantEntry(srv.ID(), e); !ok {
				return
			}
		}
		ready = true
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !ready {
		t.Fatal("setup did not complete")
	}
	if n, st := ctrl.Validate(ref, cap.Read); n == nil || st != wire.StatusOK {
		t.Fatalf("validate fast path missed: status %v", st)
	}
	if per := testing.AllocsPerRun(1000, func() {
		n, st := ctrl.Validate(ref, cap.Read)
		if n == nil || st != wire.StatusOK {
			t.Fatal("validate fast path missed inside gate")
		}
		validateSink = n
	}); per > 0 {
		t.Errorf("Controller.Validate allocates %.2f objects/op at %d live caps, want 0", per, soak)
	}
}

// runExp drives one experiment through the benchmark loop, reporting
// allocations and the wall-clock event throughput (kernel events
// processed per second of host time) alongside the virtual-time
// metrics. The returned table is from the final iteration.
func runExp(b *testing.B, fn func() *exp.Table) *exp.Table {
	b.Helper()
	b.ReportAllocs()
	var t *exp.Table
	e0 := sim.TotalEvents()
	for i := 0; i < b.N; i++ {
		t = fn()
	}
	if d := b.Elapsed(); d > 0 {
		b.ReportMetric(float64(sim.TotalEvents()-e0)/d.Seconds(), "events/sec")
	}
	return t
}

// reportMetrics forwards an experiment's headline metrics through the
// benchmark framework.
func reportMetrics(b *testing.B, t *exp.Table, metrics map[string]string) {
	b.Helper()
	for key, unit := range metrics {
		v, ok := t.Metrics[key]
		if !ok {
			b.Fatalf("metric %q missing (have %v)", key, t.Metrics)
		}
		b.ReportMetric(v, unit)
	}
}

// BenchmarkTable3NullOp regenerates Table 3 (null-operation latency).
func BenchmarkTable3NullOp(b *testing.B) {
	t := runExp(b, exp.Table3)
	reportMetrics(b, t, map[string]string{
		"table3.null-cpu-us":  "vus-cpu",
		"table3.null-snic-us": "vus-snic",
	})
}

// BenchmarkFigure2Traffic regenerates the Figure 2 traffic analysis.
func BenchmarkFigure2Traffic(b *testing.B) {
	t := runExp(b, exp.Figure2)
	reportMetrics(b, t, map[string]string{
		"fig2.bytes-reduction":   "x-bytes",
		"fig2.datamsg-reduction": "x-datamsgs",
	})
}

// BenchmarkFigure5MemoryCopy regenerates Figure 5 (memory_copy
// throughput vs size).
func BenchmarkFigure5MemoryCopy(b *testing.B) {
	t := runExp(b, exp.Figure5)
	reportMetrics(b, t, map[string]string{
		"fig5.copy1b-cpu-us":     "vus-1B-cpu",
		"fig5.copy256k-cpu-mbps": "MBps-256K",
	})
}

// BenchmarkFigure6Invoke regenerates Figure 6 (RPC latency).
func BenchmarkFigure6Invoke(b *testing.B) {
	t := runExp(b, exp.Figure6)
	reportMetrics(b, t, map[string]string{
		"fig6.rpc8-cpu1x-us": "vus-1x",
		"fig6.rpc8-cpu2x-us": "vus-2x",
	})
}

// BenchmarkFigure7Caps regenerates Figure 7 (delegation/revocation).
func BenchmarkFigure7Caps(b *testing.B) {
	t := runExp(b, exp.Figure7)
	reportMetrics(b, t, map[string]string{
		"fig7.deleg1-cpu-us":         "vus-deleg",
		"fig7.revoke8-shared-us":     "vus-revoke-shared",
		"fig7.revoke8-individual-us": "vus-revoke-each",
	})
}

// BenchmarkFigure8Pipeline regenerates Figure 8 (star / fast-star /
// chain composition).
func BenchmarkFigure8Pipeline(b *testing.B) {
	t := runExp(b, exp.Figure8)
	reportMetrics(b, t, map[string]string{
		"fig8.star-over-fast-64k": "x-64K",
		"fig8.fast-over-chain-4k": "x-4K",
	})
}

// BenchmarkFigure9GPU regenerates Figure 9 (GPU service vs rCUDA).
func BenchmarkFigure9GPU(b *testing.B) {
	t := runExp(b, exp.Figure9)
	reportMetrics(b, t, map[string]string{
		"fig9.lat64-rcuda-over-fractos": "x-latency",
		"fig9.tput4-fractos":            "reqps",
	})
}

// BenchmarkFigure10Storage regenerates Figure 10 (storage latency).
func BenchmarkFigure10Storage(b *testing.B) {
	t := runExp(b, exp.Figure10)
	reportMetrics(b, t, map[string]string{
		"fig10.read4k-dax-us":        "vus-dax-4k",
		"fig10.read256K-dax-speedup": "x-dax-256K",
	})
}

// BenchmarkFigure11StorageTput regenerates Figure 11 (storage
// throughput).
func BenchmarkFigure11StorageTput(b *testing.B) {
	t := runExp(b, exp.Figure11)
	reportMetrics(b, t, map[string]string{
		"fig11.rand-dax-mbps": "MBps-dax",
		"fig11.rand-fs-mbps":  "MBps-fs",
	})
}

// BenchmarkFigure12E2ELatency regenerates Figure 12 (end-to-end
// latency; the paper's 47% headline).
func BenchmarkFigure12E2ELatency(b *testing.B) {
	t := runExp(b, exp.Figure12)
	reportMetrics(b, t, map[string]string{
		"fig12.speedup32":        "x-speedup",
		"fig12.lat32-fractos-ms": "vms-fractos",
	})
}

// BenchmarkFigure13E2ETput regenerates Figure 13 (end-to-end
// throughput).
func BenchmarkFigure13E2ETput(b *testing.B) {
	t := runExp(b, exp.Figure13)
	reportMetrics(b, t, map[string]string{
		"fig13.tput4-fractos":  "reqps",
		"fig13.tput4-baseline": "reqps-base",
	})
}

// BenchmarkAblationDirect measures the mediated/composed/leased
// storage-interface ablation.
func BenchmarkAblationDirect(b *testing.B) {
	t := runExp(b, exp.AblationDirectComposition)
	reportMetrics(b, t, map[string]string{
		"abl-direct.fs-us":     "vus-fs",
		"abl-direct.direct-us": "vus-direct",
		"abl-direct.dax-us":    "vus-dax",
	})
}

// BenchmarkAblationDoubleBuffer measures the double-buffering ablation.
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	t := runExp(b, exp.AblationDoubleBuffer)
	reportMetrics(b, t, map[string]string{"abl-dbuf.gain-1m": "x-gain"})
}

// BenchmarkAblationConcurrentCopies measures §6.1's concurrent-copy
// saturation.
func BenchmarkAblationConcurrentCopies(b *testing.B) {
	t := runExp(b, exp.AblationConcurrentCopies)
	reportMetrics(b, t, map[string]string{
		"abl-conc-copy.cpu4k-1":  "MBps-1",
		"abl-conc-copy.cpu4k-16": "MBps-16",
	})
}

// BenchmarkAblationMessageComplexity measures §2.1's message counts.
func BenchmarkAblationMessageComplexity(b *testing.B) {
	t := runExp(b, exp.AblationMessageComplexity)
	reportMetrics(b, t, map[string]string{
		"abl-msgs.ratio8": "x-star-over-chain",
	})
}

// BenchmarkAblationWindow measures the congestion-window ablation.
func BenchmarkAblationWindow(b *testing.B) {
	t := runExp(b, exp.AblationWindow)
	reportMetrics(b, t, map[string]string{
		"abl-window.w1":  "rpcps-w1",
		"abl-window.w32": "rpcps-w32",
	})
}

// BenchmarkAblationRevtreeDepth measures deep-tree revocation.
func BenchmarkAblationRevtreeDepth(b *testing.B) {
	t := runExp(b, exp.AblationRevtreeDepth)
	reportMetrics(b, t, map[string]string{"abl-revtree.d256-us": "vus-d256"})
}

// BenchmarkAblationPlacement measures controller-placement costs.
func BenchmarkAblationPlacement(b *testing.B) {
	t := runExp(b, exp.AblationPlacement)
	reportMetrics(b, t, map[string]string{"abl-placement.shared-null-us": "vus-shared"})
}

module fractos

go 1.22

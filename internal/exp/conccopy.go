package exp

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
)

// AblationConcurrentCopies reproduces §6.1's aside: "Concurrent copies
// quickly saturate throughput at 4 KB and 32 KB for CPU and sNIC
// Controllers, respectively" — small transfers that individually
// under-utilize the line rate saturate it in aggregate once enough are
// in flight, because the per-copy cost is Controller processing, which
// pipelines across the bounce-buffer pool.
func AblationConcurrentCopies() *Table {
	t := NewTable("abl-conc-copy", "Aggregate memory_copy throughput vs concurrency (MB/s)",
		"inflight", "4K @CPU", "32K @CPU", "4K @sNIC", "32K @sNIC")
	measure := func(p core.Placement, size, inflight int) float64 {
		const perWorker = 16
		var elapsed sim.Time
		runOn(core.ClusterConfig{Nodes: 2, Placement: p}, func(tk *sim.Task, cl *core.Cluster) {
			src := proc.Attach(cl, 0, "src", inflight*size)
			dst := proc.Attach(cl, 1, "dst", inflight*size)
			var wg sim.WaitGroup
			wg.Add(inflight)
			start := tk.Now()
			for w := 0; w < inflight; w++ {
				w := w
				cl.K.Spawn("copier", func(wt *sim.Task) {
					defer wg.Done()
					s, err := src.MemoryCreate(wt, uint64(w*size), uint64(size), cap.MemRights)
					if err != nil {
						assert.NoErr(err, "exp/conccopy")
					}
					dd, err := dst.MemoryCreate(wt, uint64(w*size), uint64(size), cap.MemRights)
					if err != nil {
						assert.NoErr(err, "exp/conccopy")
					}
					d, err := proc.GrantCap(dst, dd, src)
					if err != nil {
						assert.NoErr(err, "exp/conccopy")
					}
					for i := 0; i < perWorker; i++ {
						if err := src.MemoryCopy(wt, s, d); err != nil {
							assert.NoErr(err, "exp/conccopy")
						}
					}
				})
			}
			wg.Wait(tk)
			elapsed = tk.Now() - start
		})
		return mbpsVal(inflight*perWorker*size, elapsed)
	}
	for _, inflight := range []int{1, 2, 4, 8, 16} {
		c4 := measure(core.CtrlOnCPU, 4<<10, inflight)
		c32 := measure(core.CtrlOnCPU, 32<<10, inflight)
		s4 := measure(core.CtrlOnSNIC, 4<<10, inflight)
		s32 := measure(core.CtrlOnSNIC, 32<<10, inflight)
		t.AddRow(fmt.Sprint(inflight),
			fmt.Sprintf("%.0f", c4), fmt.Sprintf("%.0f", c32),
			fmt.Sprintf("%.0f", s4), fmt.Sprintf("%.0f", s32))
		if inflight == 16 {
			t.Metric("cpu4k-16", c4)
			t.Metric("snic32k-16", s32)
		}
		if inflight == 1 {
			t.Metric("cpu4k-1", c4)
		}
	}
	t.Note("paper (§6.1): concurrent copies saturate throughput at 4 KB (CPU) / 32 KB (sNIC)")
	return t
}

package exp

import (
	"fmt"

	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// AblationMessageComplexity verifies §2.1's analysis empirically: for
// an N-service pipeline, the centralized model exchanges ~2N
// steady-state service interactions while the distributed model needs
// ~N+1. We run the Figure 8 pipeline under both models and count
// cross-node messages, split into service-level interactions
// (invocations + deliveries + data transfers) and protocol overhead
// (acks, validations, completions).
func AblationMessageComplexity() *Table {
	t := NewTable("abl-msgs", "Message complexity: centralized vs distributed pipeline",
		"stages", "star svc-msgs", "chain svc-msgs", "measured ratio", "analytic 2N/(N+1)", "star total", "chain total")
	for _, stages := range []int{2, 4, 8} {
		starSvc, starAll := countPipelineMsgs(stages, false)
		chainSvc, chainAll := countPipelineMsgs(stages, true)
		t.AddRow(fmt.Sprint(stages),
			fmt.Sprint(starSvc), fmt.Sprint(chainSvc),
			fmt.Sprintf("%.2fx", float64(starSvc)/float64(chainSvc)),
			fmt.Sprintf("%.2fx", float64(2*stages)/float64(stages+1)),
			fmt.Sprint(starAll), fmt.Sprint(chainAll))
		if stages == 8 {
			t.Metric("star8-svc", float64(starSvc))
			t.Metric("chain8-svc", float64(chainSvc))
			t.Metric("ratio8", float64(starSvc)/float64(chainSvc))
		}
	}
	t.Note("svc-msgs: cross-node data transfers + invocation deliveries (the interactions §2.1 counts);")
	t.Note("total additionally includes protocol acks/validations/completions")
	t.Note("§2.1: the distributed model reduces steady-state messages by up to 2x (from 2N to N+1)")
	return t
}

// countPipelineMsgs runs one pipeline execution and counts cross-node
// traffic. Service messages ≈ data transfers (coalescing RDMA chunks)
// plus CtrlInvoke forwards (the paper's schematic arrows).
func countPipelineMsgs(stages int, chain bool) (svcMsgs, total int) {
	runOn(core.ClusterConfig{Nodes: stages + 1}, func(tk *sim.Task, cl *core.Cluster) {
		pl := newPipeline(tk, cl, stages, 4<<10)
		counting := false
		var last fabric.TraceEvent
		cl.Net.SetTrace(func(e fabric.TraceEvent) {
			if !counting {
				return
			}
			src, _ := cl.Net.Lookup(e.From)
			dst, _ := cl.Net.Lookup(e.To)
			if src == nil || dst == nil || src.Loc.Node == dst.Loc.Node {
				return
			}
			total++
			if e.RDMA {
				if last.RDMA && last.From == e.From && last.To == e.To {
					last = e
					return // chunk continuation of one logical transfer
				}
				svcMsgs++
			} else if e.Type == wire.TCtrlInvoke || e.Type == wire.TDeliver {
				svcMsgs++
			}
			last = e
		})
		counting = true
		if chain {
			pl.runChain(tk)
		} else {
			pl.runStar(tk)
		}
		counting = false
	})
	return
}

package exp

import (
	"fmt"

	"fractos/internal/app/faceverify"
	"fractos/internal/assert"
	"fractos/internal/baseline"
	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/load"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// gpuBatches are the batch sizes swept in Figure 9 (left).
var gpuBatches = []int{1, 16, 64, 256, 1024}

// The FractOS GPU service under test is stacks.GPU: adaptor on node 1,
// client on node 0, one buffer set per in-flight slot.

// rcudaService is the same workload over rCUDA.
type rcudaService struct {
	cli   *baseline.RCUDAClient
	batch int
	slots []baseSlots
	free  *sim.Semaphore
	img   []byte
	probe []byte
}

type baseSlots struct{ imgAddr, probeAddr, outAddr uint64 }

func newRCUDAService(tk *sim.Task, cl *core.Cluster, batch, slots int) *rcudaService {
	dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 96 << 20, LaunchOverhead: gpu.DefaultConfig().LaunchOverhead})
	faceverify.RegisterKernel(dev)
	srv := baseline.NewRCUDAServer(cl.K, cl.Net, 1, dev)
	r := &rcudaService{
		cli:   baseline.NewRCUDAClient(cl.K, cl.Net, 0, srv),
		batch: batch,
		free:  sim.NewSemaphore(slots),
		img:   make([]byte, batch*faceverify.ImgSize),
		probe: make([]byte, batch*faceverify.ProbeSize),
	}
	for i := 0; i < slots; i++ {
		var s baseSlots
		var err error
		if s.imgAddr, err = r.cli.Malloc(tk, len(r.img)); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		if s.probeAddr, err = r.cli.Malloc(tk, len(r.probe)); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		if s.outAddr, err = r.cli.Malloc(tk, batch); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		r.slots = append(r.slots, s)
	}
	return r
}

func (r *rcudaService) oneRequest(tk *sim.Task) {
	r.free.Acquire(tk)
	s := r.slots[len(r.slots)-1]
	r.slots = r.slots[:len(r.slots)-1]
	defer func() {
		r.slots = append(r.slots, s)
		r.free.Release()
	}()
	if err := r.cli.MemcpyH2D(tk, s.imgAddr, r.img); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	if err := r.cli.MemcpyH2D(tk, s.probeAddr, r.probe); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	if err := r.cli.Launch(tk, faceverify.KernelName, s.imgAddr, s.probeAddr, s.outAddr, uint64(r.batch)); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	if _, err := r.cli.MemcpyD2H(tk, s.outAddr, r.batch); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
}

// localGPUTime is the no-network reference: host-GPU DMA plus kernel
// execution on a local device.
func localGPUTime(batch int) sim.Time {
	var lat sim.Time
	runOn(core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 96 << 20, LaunchOverhead: gpu.DefaultConfig().LaunchOverhead})
		faceverify.RegisterKernel(dev)
		mem := make([]byte, batch*(faceverify.ImgSize+faceverify.ProbeSize)+batch)
		bytes := batch * (faceverify.ImgSize + faceverify.ProbeSize)
		start := tk.Now()
		tk.Sleep(sim.Time(float64(bytes) / 6e9 * 1e9)) // PCIe upload
		args := []uint64{0, uint64(batch * faceverify.ImgSize),
			uint64(batch * (faceverify.ImgSize + faceverify.ProbeSize)), uint64(batch)}
		if _, err := dev.Exec(tk, faceverify.KernelName, mem, args); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		lat = tk.Now() - start
	})
	return lat
}

// Figure9 regenerates the GPU service comparison.
func Figure9() *Table {
	t := NewTable("fig9", "GPU service: kernel-execution latency (ms) and throughput (req/s)",
		"batch", "FractOS@CPU", "(xfer/kernel/ovh)", "FractOS@sNIC", "rCUDA", "local GPU")
	ms := func(d sim.Time) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	measureFr := func(p core.Placement, batch int) (lat, xfer, kern sim.Time) {
		g := &stacks.GPU{Batch: batch, Slots: 1}
		testbed.Run(specFor(core.ClusterConfig{Nodes: 2, Placement: p}, g),
			func(tk *sim.Task, d *testbed.Deployment) {
				lat, xfer, kern = g.OneRequestTimed(tk)
			})
		return
	}
	measureRC := func(batch int) sim.Time {
		var lat sim.Time
		runOn(core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
			r := newRCUDAService(tk, cl, batch, 1)
			start := tk.Now()
			r.oneRequest(tk)
			lat = tk.Now() - start
		})
		return lat
	}
	for _, batch := range gpuBatches {
		fc, xfer, kern := measureFr(core.CtrlOnCPU, batch)
		fsn, _, _ := measureFr(core.CtrlOnSNIC, batch)
		rc := measureRC(batch)
		lg := localGPUTime(batch)
		ovh := fc - xfer - kern
		t.AddRow(fmt.Sprint(batch), ms(fc),
			fmt.Sprintf("%s/%s/%s", ms(xfer), ms(kern), ms(ovh)),
			ms(fsn), ms(rc), ms(lg))
		if batch == 64 {
			t.Metric("lat64-fractos-ms", float64(fc)/1e6)
			t.Metric("lat64-rcuda-ms", float64(rc)/1e6)
			t.Metric("lat64-rcuda-over-fractos", float64(rc)/float64(fc))
			t.Metric("lat64-overhead-ms", float64(ovh)/1e6)
		}
	}
	t.Note("xfer/kernel/ovh = data transfers, kernel execution, FractOS request handling (the paper's breakdown)")

	// Throughput: fixed batch 1024 (paper, right panel), closed-loop
	// in-flight sweep driven by the load layer.
	const tputBatch = 1024
	const reqsPerWorker = 4
	frTput := func(inflight int) float64 {
		var tput float64
		g := &stacks.GPU{Batch: tputBatch, Slots: inflight}
		testbed.Run(specFor(core.ClusterConfig{Nodes: 2}, g),
			func(tk *sim.Task, d *testbed.Deployment) {
				st := load.Closed{Clients: inflight, PerClient: reqsPerWorker}.Run(tk,
					func(wt *sim.Task, _, _ int) error {
						g.OneRequest(wt)
						return nil
					})
				tput = st.Throughput()
			})
		return tput
	}
	rcTput := func(inflight int) float64 {
		var tput float64
		runOn(core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
			r := newRCUDAService(tk, cl, tputBatch, inflight)
			st := load.Closed{Clients: inflight, PerClient: reqsPerWorker}.Run(tk,
				func(wt *sim.Task, _, _ int) error {
					r.oneRequest(wt)
					return nil
				})
			tput = st.Throughput()
		})
		return tput
	}
	localIdeal := 1e9 / (float64(gpu.DefaultConfig().LaunchOverhead) + float64(tputBatch)*float64(faceverify.KernelPerImage))
	t.AddRow("", "", "", "", "", "")
	t.AddRow("inflight", "FractOS req/s", "", "", "rCUDA req/s", "ideal GPU req/s")
	for _, inflight := range []int{1, 2, 4, 8} {
		ft := frTput(inflight)
		rt := rcTput(inflight)
		t.AddRow(fmt.Sprint(inflight), fmt.Sprintf("%.0f", ft), "", "", fmt.Sprintf("%.0f", rt),
			fmt.Sprintf("%.0f", localIdeal))
		if inflight == 4 {
			t.Metric("tput4-fractos", ft)
			t.Metric("tput4-rcuda", rt)
			t.Metric("tput4-ideal", localIdeal)
		}
	}
	t.Note("paper: FractOS reaches near-optimal throughput with >1 in-flight request; rCUDA lags")
	return t
}

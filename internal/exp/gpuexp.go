package exp

import (
	"fmt"

	"fractos/internal/app/faceverify"
	"fractos/internal/assert"
	"fractos/internal/baseline"
	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// gpuBatches are the batch sizes swept in Figure 9 (left).
var gpuBatches = []int{1, 16, 64, 256, 1024}

// gpuService wires a GPU adaptor and a client with one buffer set per
// in-flight slot, for the GPU-service micro-benchmark (no storage).
type gpuService struct {
	app    *proc.Process
	dev    *gpu.Device
	invoke proc.Cap
	slots  []gpuSlot
	free   *sim.Semaphore
	batch  int

	lastTransfer sim.Time // upload time of the most recent request
}

type gpuSlot struct {
	imgMem, probeMem            proc.Cap // app-side buffers
	gpuImg, gpuProbe, gpuOut    proc.Cap
	imgAddr, probeAddr, outAddr uint64
	reply                       proc.Cap
	replyTag                    uint64
	imgOff, probeOff            int
}

func newGPUService(tk *sim.Task, cl *core.Cluster, batch, slots int) *gpuService {
	dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 96 << 20, LaunchOverhead: gpu.DefaultConfig().LaunchOverhead})
	faceverify.RegisterKernel(dev)
	ad := gpu.NewAdaptor(cl, 1, "gpu-adaptor", dev)
	if err := ad.Start(tk); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	imgBytes := batch * faceverify.ImgSize
	probeBytes := batch * faceverify.ProbeSize
	slotBytes := imgBytes + probeBytes
	g := &gpuService{dev: dev, batch: batch, free: sim.NewSemaphore(slots)}
	g.app = proc.Attach(cl, 0, "gpu-client", slots*slotBytes+4096)
	ctxInit, err := proc.GrantCap(ad.P, ad.CtxInit, g.app)
	if err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	d, err := g.app.Call(tk, ctxInit, nil, nil, gpu.SlotCont)
	if err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	allocReq, _ := d.Cap(gpu.SlotAlloc)
	loadReq, _ := d.Cap(gpu.SlotLoad)
	name := faceverify.KernelName
	ld, err := g.app.Call(tk, loadReq,
		[]wire.ImmArg{proc.U64Arg(8, uint64(len(name))), proc.BytesArg(16, []byte(name))},
		nil, gpu.SlotCont)
	if err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	g.invoke, _ = ld.Cap(gpu.SlotKernel)

	alloc := func(size int) (proc.Cap, uint64) {
		d, err := g.app.Call(tk, allocReq, []wire.ImmArg{proc.U64Arg(8, uint64(size))}, nil, gpu.SlotCont)
		if err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		if st := d.U64(0); st != gpu.StatusOK {
			assert.Failf("exp/gpuexp: gpu alloc status %d", st)
		}
		c, _ := d.Cap(gpu.SlotBuf)
		return c, d.U64(8)
	}
	for i := 0; i < slots; i++ {
		var s gpuSlot
		s.gpuImg, s.imgAddr = alloc(imgBytes)
		s.gpuProbe, s.probeAddr = alloc(probeBytes)
		s.gpuOut, s.outAddr = alloc(batch)
		s.imgOff = i * slotBytes
		s.probeOff = s.imgOff + imgBytes
		if s.imgMem, err = g.app.MemoryCreate(tk, uint64(s.imgOff), uint64(imgBytes), cap.MemRights); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		if s.probeMem, err = g.app.MemoryCreate(tk, uint64(s.probeOff), uint64(probeBytes), cap.MemRights); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		s.replyTag = g.app.NewTag()
		if s.reply, err = g.app.RequestCreate(tk, s.replyTag, nil, nil); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		g.slots = append(g.slots, s)
	}
	return g
}

// oneRequestTimed runs one request and returns the latency breakdown:
// data-transfer time, kernel-execution time, and everything else
// (FractOS request handling) — the stacked bars of Figure 9 (left).
func (g *gpuService) oneRequestTimed(tk *sim.Task) (total, transfer, kernel sim.Time) {
	start := tk.Now()
	busy0 := g.dev.BusyTime
	g.oneRequest(tk)
	total = tk.Now() - start
	kernel = g.dev.BusyTime - busy0
	transfer = g.lastTransfer
	return
}

// oneRequest uploads the image batch + probes, invokes the kernel, and
// waits for its continuation — the single-round-trip invocation that
// makes FractOS beat rCUDA's per-driver-call interposition (§6.3).
func (g *gpuService) oneRequest(tk *sim.Task) {
	g.free.Acquire(tk)
	s := g.slots[len(g.slots)-1]
	g.slots = g.slots[:len(g.slots)-1]
	defer func() {
		g.slots = append(g.slots, s)
		g.free.Release()
	}()
	xferStart := tk.Now()
	if err := g.app.MemoryCopy(tk, s.imgMem, s.gpuImg); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	if err := g.app.MemoryCopy(tk, s.probeMem, s.gpuProbe); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	g.lastTransfer = tk.Now() - xferStart
	ao := gpu.ArgOffset(len(faceverify.KernelName), 0)
	f := g.app.WaitTag(s.replyTag)
	if err := g.app.Invoke(tk, g.invoke,
		[]wire.ImmArg{
			proc.U64Arg(ao, s.imgAddr), proc.U64Arg(ao+8, s.probeAddr),
			proc.U64Arg(ao+16, s.outAddr), proc.U64Arg(ao+24, uint64(g.batch)),
		},
		[]proc.Arg{{Slot: gpu.SlotSuccess, Cap: s.reply}, {Slot: gpu.SlotError, Cap: s.reply}}); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	d, err := f.Wait(tk)
	if err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	d.Done()
	if st := d.U64(0); st != gpu.StatusOK {
		assert.Failf("exp/gpuexp: gpu pipeline status %d", st)
	}
}

// rcudaService is the same workload over rCUDA.
type rcudaService struct {
	cli   *baseline.RCUDAClient
	batch int
	slots []baseSlots
	free  *sim.Semaphore
	img   []byte
	probe []byte
}

type baseSlots struct{ imgAddr, probeAddr, outAddr uint64 }

func newRCUDAService(tk *sim.Task, cl *core.Cluster, batch, slots int) *rcudaService {
	dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 96 << 20, LaunchOverhead: gpu.DefaultConfig().LaunchOverhead})
	faceverify.RegisterKernel(dev)
	srv := baseline.NewRCUDAServer(cl.K, cl.Net, 1, dev)
	r := &rcudaService{
		cli:   baseline.NewRCUDAClient(cl.K, cl.Net, 0, srv),
		batch: batch,
		free:  sim.NewSemaphore(slots),
		img:   make([]byte, batch*faceverify.ImgSize),
		probe: make([]byte, batch*faceverify.ProbeSize),
	}
	for i := 0; i < slots; i++ {
		var s baseSlots
		var err error
		if s.imgAddr, err = r.cli.Malloc(tk, len(r.img)); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		if s.probeAddr, err = r.cli.Malloc(tk, len(r.probe)); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		if s.outAddr, err = r.cli.Malloc(tk, batch); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		r.slots = append(r.slots, s)
	}
	return r
}

func (r *rcudaService) oneRequest(tk *sim.Task) {
	r.free.Acquire(tk)
	s := r.slots[len(r.slots)-1]
	r.slots = r.slots[:len(r.slots)-1]
	defer func() {
		r.slots = append(r.slots, s)
		r.free.Release()
	}()
	if err := r.cli.MemcpyH2D(tk, s.imgAddr, r.img); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	if err := r.cli.MemcpyH2D(tk, s.probeAddr, r.probe); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	if err := r.cli.Launch(tk, faceverify.KernelName, s.imgAddr, s.probeAddr, s.outAddr, uint64(r.batch)); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
	if _, err := r.cli.MemcpyD2H(tk, s.outAddr, r.batch); err != nil {
		assert.NoErr(err, "exp/gpuexp")
	}
}

// localGPUTime is the no-network reference: host-GPU DMA plus kernel
// execution on a local device.
func localGPUTime(batch int) sim.Time {
	var lat sim.Time
	runOn(core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 96 << 20, LaunchOverhead: gpu.DefaultConfig().LaunchOverhead})
		faceverify.RegisterKernel(dev)
		mem := make([]byte, batch*(faceverify.ImgSize+faceverify.ProbeSize)+batch)
		bytes := batch * (faceverify.ImgSize + faceverify.ProbeSize)
		start := tk.Now()
		tk.Sleep(sim.Time(float64(bytes) / 6e9 * 1e9)) // PCIe upload
		args := []uint64{0, uint64(batch * faceverify.ImgSize),
			uint64(batch * (faceverify.ImgSize + faceverify.ProbeSize)), uint64(batch)}
		if _, err := dev.Exec(tk, faceverify.KernelName, mem, args); err != nil {
			assert.NoErr(err, "exp/gpuexp")
		}
		lat = tk.Now() - start
	})
	return lat
}

// Figure9 regenerates the GPU service comparison.
func Figure9() *Table {
	t := NewTable("fig9", "GPU service: kernel-execution latency (ms) and throughput (req/s)",
		"batch", "FractOS@CPU", "(xfer/kernel/ovh)", "FractOS@sNIC", "rCUDA", "local GPU")
	ms := func(d sim.Time) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	measureFr := func(p core.Placement, batch int) (lat, xfer, kern sim.Time) {
		runOn(core.ClusterConfig{Nodes: 2, Placement: p}, func(tk *sim.Task, cl *core.Cluster) {
			g := newGPUService(tk, cl, batch, 1)
			lat, xfer, kern = g.oneRequestTimed(tk)
		})
		return
	}
	measureRC := func(batch int) sim.Time {
		var lat sim.Time
		runOn(core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
			r := newRCUDAService(tk, cl, batch, 1)
			start := tk.Now()
			r.oneRequest(tk)
			lat = tk.Now() - start
		})
		return lat
	}
	for _, batch := range gpuBatches {
		fc, xfer, kern := measureFr(core.CtrlOnCPU, batch)
		fsn, _, _ := measureFr(core.CtrlOnSNIC, batch)
		rc := measureRC(batch)
		lg := localGPUTime(batch)
		ovh := fc - xfer - kern
		t.AddRow(fmt.Sprint(batch), ms(fc),
			fmt.Sprintf("%s/%s/%s", ms(xfer), ms(kern), ms(ovh)),
			ms(fsn), ms(rc), ms(lg))
		if batch == 64 {
			t.Metric("lat64-fractos-ms", float64(fc)/1e6)
			t.Metric("lat64-rcuda-ms", float64(rc)/1e6)
			t.Metric("lat64-rcuda-over-fractos", float64(rc)/float64(fc))
			t.Metric("lat64-overhead-ms", float64(ovh)/1e6)
		}
	}
	t.Note("xfer/kernel/ovh = data transfers, kernel execution, FractOS request handling (the paper's breakdown)")

	// Throughput: fixed batch 1024 (paper, right panel), in-flight sweep.
	const tputBatch = 1024
	const reqsPerWorker = 4
	tput := func(run func(tk *sim.Task, cl *core.Cluster, inflight int) sim.Time, inflight int) float64 {
		var elapsed sim.Time
		runOn(core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
			elapsed = run(tk, cl, inflight)
		})
		total := inflight * reqsPerWorker
		return float64(total) / (float64(elapsed) / 1e9)
	}
	frRun := func(tk *sim.Task, cl *core.Cluster, inflight int) sim.Time {
		g := newGPUService(tk, cl, tputBatch, inflight)
		var wg sim.WaitGroup
		wg.Add(inflight)
		start := tk.Now()
		for w := 0; w < inflight; w++ {
			cl.K.Spawn("worker", func(wt *sim.Task) {
				for r := 0; r < reqsPerWorker; r++ {
					g.oneRequest(wt)
				}
				wg.Done()
			})
		}
		wg.Wait(tk)
		return tk.Now() - start
	}
	rcRun := func(tk *sim.Task, cl *core.Cluster, inflight int) sim.Time {
		r := newRCUDAService(tk, cl, tputBatch, inflight)
		var wg sim.WaitGroup
		wg.Add(inflight)
		start := tk.Now()
		for w := 0; w < inflight; w++ {
			cl.K.Spawn("worker", func(wt *sim.Task) {
				for q := 0; q < reqsPerWorker; q++ {
					r.oneRequest(wt)
				}
				wg.Done()
			})
		}
		wg.Wait(tk)
		return tk.Now() - start
	}
	localIdeal := 1e9 / (float64(gpu.DefaultConfig().LaunchOverhead) + float64(tputBatch)*float64(faceverify.KernelPerImage))
	t.AddRow("", "", "", "", "", "")
	t.AddRow("inflight", "FractOS req/s", "", "", "rCUDA req/s", "ideal GPU req/s")
	for _, inflight := range []int{1, 2, 4, 8} {
		ft := tput(frRun, inflight)
		rt := tput(rcRun, inflight)
		t.AddRow(fmt.Sprint(inflight), fmt.Sprintf("%.0f", ft), "", "", fmt.Sprintf("%.0f", rt),
			fmt.Sprintf("%.0f", localIdeal))
		if inflight == 4 {
			t.Metric("tput4-fractos", ft)
			t.Metric("tput4-rcuda", rt)
			t.Metric("tput4-ideal", localIdeal)
		}
	}
	t.Note("paper: FractOS reaches near-optimal throughput with >1 in-flight request; rCUDA lags")
	return t
}

// Package exp is the evaluation harness: one generator per table and
// figure of the paper's §6, plus the ablations called out in
// DESIGN.md. Each generator deploys a fresh simulated cluster, runs
// the workload, and returns a Table whose rows mirror what the paper
// plots; Metrics carries the headline numbers for benchmarks and
// regression tests.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"fractos/internal/core"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

// newRand returns a deterministic random source for workload
// generation.
func newRand(seed int64) *rand.Rand { return testbed.Rand(seed) }

// Table is one regenerated table or figure.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics exposes key values ("fig12.speedup", ...) for tests and
	// benchmark reporting.
	Metrics map[string]float64
}

// NewTable creates an empty table.
func NewTable(id, title string, cols ...string) *Table {
	return &Table{ID: id, Title: title, Columns: cols, Metrics: map[string]float64{}}
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Metric records a named headline value.
func (t *Table) Metric(name string, v float64) { t.Metrics[t.ID+"."+name] = v }

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// WriteCSV renders the table as CSV (for plotting).
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
}

// Spec names a runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func() *Table
}

// All lists every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"table3", "Null-operation latency", Table3},
		{"fig2", "Traffic analysis: centralized vs distributed inference pipeline", Figure2},
		{"fig5", "memory_copy throughput vs transfer size", Figure5},
		{"fig6", "Request-invocation (RPC) latency", Figure6},
		{"fig7", "Capability delegation and revocation", Figure7},
		{"fig8", "Service-composition pipeline: star / fast-star / chain", Figure8},
		{"fig9", "GPU service: latency and throughput vs rCUDA", Figure9},
		{"fig10", "Storage latency: FS / DAX / NVMe-oF baseline / local", Figure10},
		{"fig11", "Storage throughput, 1 MiB reads, 4 in flight", Figure11},
		{"fig12", "Face verification end-to-end latency", Figure12},
		{"fig13", "Face verification end-to-end throughput", Figure13},
		{"scaling-fv", "Open-loop face-verification scaling (offered load sweep)", ScalingFaceVerify},
		{"scaling-route", "Replicated-service routing under open-loop overload", ScalingRoute},
		{"chaos-fv", "Availability under injected faults (loss / partition / crash)", ChaosFaceVerify},
		{"abl-direct", "Ablation: mediated vs composed vs leased storage access", AblationDirectComposition},
		{"abl-msgs", "Ablation: message complexity, centralized vs distributed", AblationMessageComplexity},
		{"abl-dbuf", "Ablation: double buffering in memory_copy", AblationDoubleBuffer},
		{"abl-conc-copy", "Ablation: concurrent small memory_copy saturation", AblationConcurrentCopies},
		{"abl-window", "Ablation: congestion-control window", AblationWindow},
		{"abl-revtree", "Ablation: revocation-tree depth", AblationRevtreeDepth},
		{"abl-placement", "Ablation: controller placement (null op)", AblationPlacement},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// specFor converts a ClusterConfig into the equivalent testbed Spec.
func specFor(cfg core.ClusterConfig, svcs ...testbed.Service) testbed.Spec {
	return testbed.SpecOf(cfg, svcs...)
}

// runOn executes fn as the main task of a fresh testbed and runs the
// simulation to completion; generators that deploy a standard service
// stack pass its spec so the testbed deploys it declaratively before
// fn runs.
func runOn(cfg core.ClusterConfig, fn func(tk *sim.Task, cl *core.Cluster)) {
	testbed.Run(specFor(cfg), func(tk *sim.Task, d *testbed.Deployment) { fn(tk, d.Cl) })
}

// The unit helpers are shared with examples and tests via the testbed
// layer; these aliases keep the generators terse.
func usec(d sim.Time) string                { return testbed.Us(d) }
func mbps(bytes int, d sim.Time) string     { return testbed.Mbps(bytes, d) }
func mbpsVal(bytes int, d sim.Time) float64 { return testbed.MbpsVal(bytes, d) }
func sizeLabel(n int) string                { return testbed.SizeLabel(n) }

// Package exp is the evaluation harness: one generator per table and
// figure of the paper's §6, plus the ablations called out in
// DESIGN.md. Each generator deploys a fresh simulated cluster, runs
// the workload, and returns a Table whose rows mirror what the paper
// plots; Metrics carries the headline numbers for benchmarks and
// regression tests.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/sim"
)

// newRand returns a deterministic random source for workload
// generation.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Table is one regenerated table or figure.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics exposes key values ("fig12.speedup", ...) for tests and
	// benchmark reporting.
	Metrics map[string]float64
}

// NewTable creates an empty table.
func NewTable(id, title string, cols ...string) *Table {
	return &Table{ID: id, Title: title, Columns: cols, Metrics: map[string]float64{}}
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Metric records a named headline value.
func (t *Table) Metric(name string, v float64) { t.Metrics[t.ID+"."+name] = v }

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// WriteCSV renders the table as CSV (for plotting).
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
}

// Spec names a runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func() *Table
}

// All lists every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"table3", "Null-operation latency", Table3},
		{"fig2", "Traffic analysis: centralized vs distributed inference pipeline", Figure2},
		{"fig5", "memory_copy throughput vs transfer size", Figure5},
		{"fig6", "Request-invocation (RPC) latency", Figure6},
		{"fig7", "Capability delegation and revocation", Figure7},
		{"fig8", "Service-composition pipeline: star / fast-star / chain", Figure8},
		{"fig9", "GPU service: latency and throughput vs rCUDA", Figure9},
		{"fig10", "Storage latency: FS / DAX / NVMe-oF baseline / local", Figure10},
		{"fig11", "Storage throughput, 1 MiB reads, 4 in flight", Figure11},
		{"fig12", "Face verification end-to-end latency", Figure12},
		{"fig13", "Face verification end-to-end throughput", Figure13},
		{"abl-direct", "Ablation: mediated vs composed vs leased storage access", AblationDirectComposition},
		{"abl-msgs", "Ablation: message complexity, centralized vs distributed", AblationMessageComplexity},
		{"abl-dbuf", "Ablation: double buffering in memory_copy", AblationDoubleBuffer},
		{"abl-conc-copy", "Ablation: concurrent small memory_copy saturation", AblationConcurrentCopies},
		{"abl-window", "Ablation: congestion-control window", AblationWindow},
		{"abl-revtree", "Ablation: revocation-tree depth", AblationRevtreeDepth},
		{"abl-placement", "Ablation: controller placement (null op)", AblationPlacement},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// runOn executes fn as the main task of a fresh cluster and runs the
// simulation to completion; it panics on incompletion (harness bug).
func runOn(cfg core.ClusterConfig, fn func(tk *sim.Task, cl *core.Cluster)) {
	cl := core.NewCluster(cfg)
	done := false
	cl.K.Spawn("exp-main", func(tk *sim.Task) {
		fn(tk, cl)
		done = true
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		assert.Failf("exp: experiment task did not complete (deadlock)")
	}
}

// usec formats a virtual duration in microseconds.
func usec(d sim.Time) string { return fmt.Sprintf("%.2f", float64(d)/1000.0) }

// mbps formats bytes over a duration as MB/s.
func mbps(bytes int, d sim.Time) string { return fmt.Sprintf("%.0f", mbpsVal(bytes, d)) }

func mbpsVal(bytes int, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (float64(d) / 1e9) / 1e6
}

// sizeLabel formats a byte count compactly.
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

package exp

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
)

// AblationDoubleBuffer compares memory_copy with and without double
// buffering across sizes (DESIGN.md §6, ablation 2). Double buffering
// overlaps each chunk's write-out with the next chunk's read, so it
// should approach 2x for large transfers.
func AblationDoubleBuffer() *Table {
	t := NewTable("abl-dbuf", "memory_copy: double vs single buffering (MB/s)",
		"size", "double", "single", "gain")
	measure := func(single bool, size int) sim.Time {
		var lat sim.Time
		cfg := core.ClusterConfig{Nodes: 2}
		cfg.Ctrl.SingleBuffer = single
		runOn(cfg, func(tk *sim.Task, cl *core.Cluster) {
			src := proc.Attach(cl, 0, "src", size)
			dst := proc.Attach(cl, 1, "dst", size)
			s, _ := src.MemoryCreate(tk, 0, uint64(size), cap.MemRights)
			dd, _ := dst.MemoryCreate(tk, 0, uint64(size), cap.MemRights)
			d, err := proc.GrantCap(dst, dd, src)
			if err != nil {
				assert.NoErr(err, "exp/ablations")
			}
			start := tk.Now()
			if err := src.MemoryCopy(tk, s, d); err != nil {
				assert.NoErr(err, "exp/ablations")
			}
			lat = tk.Now() - start
		})
		return lat
	}
	for _, size := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		dl := measure(false, size)
		sl := measure(true, size)
		t.AddRow(sizeLabel(size), mbps(size, dl), mbps(size, sl),
			fmt.Sprintf("%.2fx", float64(sl)/float64(dl)))
		if size == 1<<20 {
			t.Metric("gain-1m", float64(sl)/float64(dl))
		}
	}
	t.Note("§6.1: FractOS uses double buffering for transfers larger than 16 KiB")
	return t
}

// AblationWindow sweeps the congestion-control window (outstanding
// deliveries per Process, §4) against a service whose handlers take
// 50 µs: a window of 1 serializes the service; larger windows expose
// its parallelism.
func AblationWindow() *Table {
	t := NewTable("abl-window", "Congestion window vs service throughput",
		"window", "RPCs/s")
	const handlers = 8
	const handleTime = 50 * sim.Time(1000)
	const clients = 8
	const callsPerClient = 8
	for _, window := range []int{1, 2, 8, 32} {
		var elapsed sim.Time
		cfg := core.ClusterConfig{Nodes: 2}
		cfg.Ctrl.Window = window
		runOn(cfg, func(tk *sim.Task, cl *core.Cluster) {
			srv := proc.Attach(cl, 1, "srv", 0)
			req, err := srv.RequestCreate(tk, 1, nil, nil)
			if err != nil {
				assert.NoErr(err, "exp/ablations")
			}
			// Parallel handlers, each sleeping handleTime per request.
			for h := 0; h < handlers; h++ {
				cl.K.Spawn("handler", func(ht *sim.Task) {
					for {
						d, ok := srv.Receive(ht)
						if !ok {
							return
						}
						ht.Sleep(handleTime)
						if rep, ok := d.Cap(0); ok {
							srv.Invoke(ht, rep, nil, nil)
						}
						d.Done()
					}
				})
			}
			var wg sim.WaitGroup
			wg.Add(clients)
			start := tk.Now()
			for c := 0; c < clients; c++ {
				c := c
				cl.K.Spawn("client", func(ct *sim.Task) {
					cli := proc.Attach(cl, 0, fmt.Sprintf("cli%d", c), 0)
					creq, err := proc.GrantCap(srv, req, cli)
					if err != nil {
						assert.NoErr(err, "exp/ablations")
					}
					for i := 0; i < callsPerClient; i++ {
						if _, err := cli.Call(ct, creq, nil, nil, 0); err != nil {
							assert.NoErr(err, "exp/ablations")
						}
					}
					wg.Done()
				})
			}
			wg.Wait(tk)
			elapsed = tk.Now() - start
		})
		rate := float64(clients*callsPerClient) / (float64(elapsed) / 1e9)
		t.AddRow(fmt.Sprint(window), fmt.Sprintf("%.0f", rate))
		t.Metric(fmt.Sprintf("w%d", window), rate)
	}
	t.Note("back-pressure limits outstanding deliveries; a window of 1 serializes the provider")
	return t
}

// AblationRevtreeDepth measures revocation latency against the depth
// of the revocation tree being torn down: the cascade is local to the
// owning Controller, so even deep trees revoke in near-constant
// network cost.
func AblationRevtreeDepth() *Table {
	t := NewTable("abl-revtree", "Revocation latency vs revocation-tree size",
		"objects", "revoke (µs)")
	for _, depth := range []int{1, 8, 64, 256} {
		var lat sim.Time
		runOn(core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
			owner := proc.Attach(cl, 0, "owner", 4096)
			base, err := owner.MemoryCreate(tk, 0, 4096, cap.MemRights)
			if err != nil {
				assert.NoErr(err, "exp/ablations")
			}
			root, err := owner.Revtree(tk, base)
			if err != nil {
				assert.NoErr(err, "exp/ablations")
			}
			cur := root
			for i := 1; i < depth; i++ {
				if cur, err = owner.Revtree(tk, cur); err != nil {
					assert.NoErr(err, "exp/ablations")
				}
			}
			start := tk.Now()
			if err := owner.Revoke(tk, root); err != nil {
				assert.NoErr(err, "exp/ablations")
			}
			lat = tk.Now() - start
		})
		t.AddRow(fmt.Sprint(depth), usec(lat))
		t.Metric(fmt.Sprintf("d%d-us", depth), float64(lat)/1e3)
	}
	t.Note("the subtree cascade happens inside the owning Controller; no per-object network messages")
	return t
}

// AblationPlacement compares Controller placements on the null op and
// a small cross-node RPC, including the Shared-HAL deployment.
func AblationPlacement() *Table {
	t := NewTable("abl-placement", "Controller placement (µs)",
		"placement", "null op", "8B RPC 2 nodes")
	for _, p := range []core.Placement{core.CtrlOnCPU, core.CtrlOnSNIC, core.CtrlShared} {
		null := nullOpLatency(p)
		rpc := measureRPC(p, 2, 8, 0)
		t.AddRow(p.String(), usec(null), usec(rpc))
		t.Metric(p.String()+"-null-us", float64(null)/1e3)
	}
	t.Note("Shared HAL: a single remote Controller serves every Process (Figures 12/13)")
	return t
}

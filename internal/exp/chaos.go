package exp

import (
	"fmt"
	"sort"

	"fractos/internal/app/faceverify"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/load"
	"fractos/internal/proc"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// Chaos-fv: availability of the end-to-end face-verification pipeline
// under injected infrastructure faults (docs/FAULTS.md). Open-loop
// Poisson load (offered load does not back off when the system
// degrades) runs against the 4-node testbed while the fabric drops
// frames, partitions nodes, or a Controller crashes mid-run; every
// client call is wrapped in a proc.Retry policy. The table reports
// goodput, error rate, latency percentiles, the longest
// service-interruption window (MTTR proxy: maximum gap between
// consecutive successful completions), and the resilience machinery's
// own counters (retransmissions, dedup hits, aborted RPCs).

// chaosRate/chaosRequests keep each scenario around 120 ms of virtual
// time: enough to bracket a 20 ms disruption window with healthy
// periods on both sides.
const (
	chaosRate     = 1000.0
	chaosRequests = 120
)

const cms = sim.Time(1000 * 1000) // 1 ms of virtual time

// chaosScenario is one fault schedule applied to the standard
// face-verification deployment. Disruptions are scheduled relative to
// the workload's start (service deployment itself consumes virtual
// time, so absolute fabric.Plan offsets would land inside deploy).
type chaosScenario struct {
	name        string
	faults      fabric.Faults
	heartbeat   bool     // run the NodeWatch heartbeat detector
	crashAt     sim.Time // crash the GPU node's Controller at this time
	partitionAt sim.Time // isolate the storage node at this time …
	healAt      sim.Time // … and heal at this one
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{name: "no-fault"},
		{name: "drop-1%", faults: fabric.Faults{Drop: 0.01, Seed: 41}},
		{name: "drop-5%", faults: fabric.Faults{Drop: 0.05, Seed: 42}},
		// Isolate the storage node (node 2) for 20 ms mid-run: every
		// in-window request stalls on its DAX read until the heal.
		{name: "partition-20ms", faults: fabric.Faults{Drop: 0.01, Seed: 43},
			partitionAt: 30 * cms, healAt: 50 * cms},
		{name: "ctrl-crash", faults: fabric.Faults{Drop: 0.01, Seed: 44},
			heartbeat: true, crashAt: 30 * cms},
	}
}

// chaosResult is one scenario's measurements.
type chaosResult struct {
	st      *load.Stats
	maxGap  sim.Time // longest window with no successful completion
	retx    int64
	dedup   int64
	aborted int64
	faults  fabric.FaultStats
}

// chaosAppState is the currently deployed application stack plus its
// request set; on crash recovery a fresh state is swapped in (the
// "re-acquire capabilities" step the retry layer cannot perform).
type chaosAppState struct {
	fv   *stacks.FaceVerify
	reqs []*faceverify.Request
}

func newChaosReqs(fv *stacks.FaceVerify, cfg faceverify.Config) []*faceverify.Request {
	rng := newRand(9)
	reqs := make([]*faceverify.Request, chaosRequests)
	for i := range reqs {
		reqs[i] = faceverify.MakeRequest(fv.DB, i%cfg.Files, cfg.Batch, rng)
	}
	return reqs
}

func runChaosScenario(sc chaosScenario) chaosResult {
	cfg := faceverify.Config{Batch: 64, Files: 8, Slots: 8}
	fv := &stacks.FaceVerify{Cfg: cfg}
	spec := appSpec(core.CtrlOnCPU, fv)
	spec.Chaos = sc.faults

	var (
		dep *testbed.Deployment
		cur *chaosAppState
	)
	if sc.heartbeat {
		hb := services.WatchConfig{Every: 2 * cms, Suspect: 3, RebootAfter: 10 * cms,
			OnEvent: func(e services.WatchEvent) {
				if e.Kind != services.WatchRecovered {
					return
				}
				// The Controller is back under a fresh epoch, but every
				// capability the old stack held is stale: redeploy the
				// application and regenerate its requests. New arrivals
				// (and retried aborted calls) use the new stack.
				dep.K().Spawn("chaos-redeploy", func(t *sim.Task) {
					nfv := &stacks.FaceVerify{Cfg: cfg}
					nfv.Deploy(t, dep)
					cur = &chaosAppState{fv: nfv, reqs: newChaosReqs(nfv, cfg)}
				})
			}}
		spec.Heartbeat = &hb
	}

	var res chaosResult
	testbed.Run(spec, func(tk *sim.Task, d *testbed.Deployment) {
		dep = d
		cur = &chaosAppState{fv: fv, reqs: newChaosReqs(fv, cfg)}
		if sc.crashAt > 0 {
			gpu := d.Cl.CtrlFor(1)
			d.K().After(sc.crashAt, func() { gpu.Crash() })
		}
		if sc.healAt > sc.partitionAt {
			net := d.Net()
			d.K().After(sc.partitionAt, func() { net.PartitionNodes([]int{faceverify.NodeStorage}) })
			d.K().After(sc.healAt, func() { net.HealPartitions() })
		}
		var succ []sim.Time
		start := tk.Now()
		res.st = load.Open{Rate: chaosRate, Requests: chaosRequests, Seed: 13}.Run(tk,
			func(wt *sim.Task, i int) error {
				// Per-request policy: enough backoff to bridge a 20 ms
				// disruption (the RPC layer's own retransmissions bridge
				// shorter ones underneath).
				pol := proc.Retry{Max: 8, Jitter: 0.2, Seed: int64(i)}
				err := pol.Do(wt, func(t *sim.Task) error {
					s := cur // re-read: recovery swaps the stack
					_, verr := s.fv.Verify(t, s.reqs[i])
					return verr
				})
				if err == nil {
					succ = append(succ, wt.Now())
				}
				return err
			})
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		prev := start
		for _, at := range succ {
			if at-prev > res.maxGap {
				res.maxGap = at - prev
			}
			prev = at
		}
		for _, c := range d.Cl.Ctrls {
			m := c.Metrics()
			res.retx += m.Retransmits
			res.dedup += m.DedupHits
			res.aborted += m.RPCAborted
		}
		res.faults = d.Net().FaultStats()
	})
	return res
}

// ChaosFaceVerify regenerates the availability table.
func ChaosFaceVerify() *Table {
	t := NewTable("chaos-fv",
		fmt.Sprintf("Face-verification availability under injected faults, %d open-loop arrivals at %.0f req/s",
			chaosRequests, chaosRate),
		"scenario", "goodput req/s", "err %", "p50 ms", "p99 ms", "mttr ms", "retx", "dedup", "aborted")
	msf := func(d sim.Time) float64 { return float64(d) / 1e6 }
	for _, sc := range chaosScenarios() {
		r := runChaosScenario(sc)
		st := r.st
		errRate := 100 * float64(st.Errors) / float64(chaosRequests)
		t.AddRow(sc.name,
			fmt.Sprintf("%.0f", st.Throughput()),
			fmt.Sprintf("%.1f", errRate),
			fmt.Sprintf("%.3f", msf(st.Hist.P50())),
			fmt.Sprintf("%.3f", msf(st.Hist.P99())),
			fmt.Sprintf("%.1f", msf(r.maxGap)),
			fmt.Sprint(r.retx), fmt.Sprint(r.dedup), fmt.Sprint(r.aborted))
		switch sc.name {
		case "no-fault":
			t.Metric("goodput-nofault", st.Throughput())
			t.Metric("err-nofault", float64(st.Errors))
		case "drop-5%":
			t.Metric("goodput-drop5", st.Throughput())
			t.Metric("err-drop5", float64(st.Errors))
			t.Metric("retx-drop5", float64(r.retx))
		case "partition-20ms":
			t.Metric("err-partition", float64(st.Errors))
			t.Metric("mttr-partition-ms", msf(r.maxGap))
		case "ctrl-crash":
			t.Metric("err-crash", float64(st.Errors))
			t.Metric("mttr-crash-ms", msf(r.maxGap))
		}
	}
	t.Note("frame loss is absorbed by Controller retransmission + at-most-once dedup: goodput holds, errors stay 0")
	t.Note("the 20 ms partition stalls storage-bound calls; client retries bridge it, so the dip shows up as MTTR, not errors")
	t.Note("the Controller crash voids an epoch of capabilities: in-window requests fail permanently (failure amplification),")
	t.Note("the heartbeat detector fences and reboots the Controller, and the app redeploys — MTTR spans detect+reboot+redeploy")
	return t
}

package exp

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/load"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// Scaling-route: the replicated-service layer under open-loop overload.
// A 16-replica routed service (exponential service times, mean 400 µs,
// so one replica saturates near 2 500 req/s) takes Poisson arrivals at
// 10×, 25×, and 100× the single-replica knee under round-robin and
// least-loaded routing. Every reply piggybacks the replica's queue
// depth, so least-loaded is join-shortest-queue on client-observed
// signals; round-robin is the blind baseline. Replicas shed above
// MaxQueue with the retryable StatusBackpressure, which is what keeps
// the accepted-request tail bounded at 100× overload (the offered
// load vastly exceeds capacity; goodput saturates and the excess is
// refused instead of queued).
//
// A final scenario measures the reactive autoscaler's repair path:
// under load, a replica node's Controller crashes; the heartbeat
// fences it, the registry prunes its member, and the autoscaler spawns
// a replacement — the fence-to-replacement latency is the membership
// MTTR, in virtual time.

const (
	// routeReplicas and routeServiceMean put the single-replica knee at
	// 1/mean = 2 500 req/s.
	routeReplicas        = 16
	routeServiceMeanUs   = 400.0
	routeKnee            = 2500.0
	routeRequestsPerRate = 4000
)

// routeMultipliers sweeps offered load as multiples of the
// single-replica knee.
var routeMultipliers = []float64{10, 25, 100}

// ScalingRoute generates the scaling-route table.
func ScalingRoute() *Table {
	t := NewTable("scaling-route",
		fmt.Sprintf("Replicated-service routing under open-loop overload, %d replicas, exp(%.0f µs) service",
			routeReplicas, routeServiceMeanUs),
		"offered ×knee", "policy", "offered req/s", "goodput req/s", "shed %", "p50 ms", "p99 ms")
	msf := func(d sim.Time) float64 { return float64(d) / 1e6 }

	// One service-time draw per request, shared across every (policy,
	// rate) point so the comparison isolates the routing decision.
	rng := newRand(21)
	svc := make([]sim.Time, routeRequestsPerRate)
	for i := range svc {
		svc[i] = testbed.USec(rng.ExpFloat64() * routeServiceMeanUs)
	}

	for _, mult := range routeMultipliers {
		rate := mult * routeKnee
		for _, policy := range []string{"rr", "least"} {
			s := &stacks.Routed{Replicas: routeReplicas, Policy: policy, Nodes: []int{1, 2, 3}}
			var st *load.Stats
			testbed.Run(testbed.Spec{Nodes: 4, Seed: 19, Services: []testbed.Service{s}},
				func(tk *sim.Task, d *testbed.Deployment) {
					// Single attempt per arrival: open-loop measurement —
					// a shed request is a refusal, not deferred load.
					s.B.Retry.Max = 1
					st = load.Open{Rate: rate, Requests: routeRequestsPerRate, Seed: 13}.Run(tk,
						func(wt *sim.Task, i int) error {
							return s.Do(wt, uint64(i+1), svc[i])
						})
				})
			shed := float64(st.Errors) / float64(routeRequestsPerRate)
			h := &st.Hist
			t.AddRow(fmt.Sprintf("%.0fx", mult), policy,
				fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.0f", st.Throughput()),
				fmt.Sprintf("%.1f", shed*100),
				fmt.Sprintf("%.3f", msf(h.P50())), fmt.Sprintf("%.3f", msf(h.P99())))
			suffix := fmt.Sprintf("%s-%.0fx", policy, mult)
			t.Metric("p99-"+suffix+"-ms", msf(h.P99()))
			t.Metric("goodput-"+suffix, st.Throughput())
			t.Metric("shed-"+suffix, shed)
		}
	}

	mttr := routeScaleMTTR(t)
	t.Metric("mttr-ms", float64(mttr)/1e6)

	t.Note("service times are one shared draw per request id, so rr and least face identical work;")
	t.Note("least-loaded = join-shortest-queue on piggybacked depths; ties break to the lowest member id")
	t.Note("past saturation the admission bound (MaxQueue=16/replica) sheds the excess with the")
	t.Note("retryable StatusBackpressure, keeping the accepted-request p99 bounded at 100x overload")
	t.Note(fmt.Sprintf("autoscaler repair after a mid-run node crash: membership MTTR %.3f ms virtual", float64(mttr)/1e6))
	return t
}

// routeScaleMTTR runs the autoscaler repair scenario: sustained load,
// a node crash mid-run, heartbeat fencing, and a replacement replica.
// Returns the worst fence-to-replacement latency; per-request retries
// keep the workload loss-free across the flap.
func routeScaleMTTR(t *Table) sim.Time {
	s := &stacks.Routed{
		Replicas: 4, AutoMax: 6, Nodes: []int{1, 2, 3},
		AttemptTimeout: 5 * cms,
	}
	spec := testbed.Spec{
		Nodes:     4,
		Seed:      19,
		Heartbeat: &services.WatchConfig{Every: 1 * cms, Suspect: 2},
		Services:  []testbed.Service{s},
	}
	const requests = 300
	var st *load.Stats
	testbed.Run(spec, func(tk *sim.Task, d *testbed.Deployment) {
		s.B.Retry.Max = 12
		d.K().After(tk.Now()+30*cms, func() { d.Cl.CtrlFor(1).Crash() })
		st = load.Open{Rate: 2000, Requests: requests, Seed: 13}.Run(tk,
			func(wt *sim.Task, i int) error {
				return s.Do(wt, uint64(i+1), testbed.USec(routeServiceMeanUs))
			})
		s.Scaler.Stop()
	})
	if st.Errors > 0 {
		assert.Failf("exp/routescale: %d of %d requests lost across the node flap", st.Errors, requests)
	}
	t.Metric("flap-goodput", st.Throughput())
	return s.Scaler.MTTR()
}

package exp

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/baseline"
	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/device/nvme"
	"fractos/internal/fs"
	"fractos/internal/proc"
	"fractos/internal/sim"
)

// Storage experiment topology: client on node 0, FS service on node 1,
// NVMe on node 2 (the FS's backend device is remote either way).
const (
	storClientNode = 0
	storFSNode     = 1
	storDevNode    = 2
)

// storFileBytes is the benchmark file: 8 extents of 1 MiB.
const storFileBytes = uint64(fs.MaxExtents) * fs.ExtentSize

// storStack is one assembled storage system under test.
type storStack struct {
	client   *proc.Process
	file     *fs.File
	mem      map[uint64]proc.Cap // size → client Memory capability
	drop     func()              // cache drop, if the backend has one
	setCache func(int64)         // cache resize, if the backend has one
}

// storKind selects the system (Figure 10's four lines).
type storKind int

const (
	storFS storKind = iota
	storDAX
	storDisagg
)

func buildStorStack(tk *sim.Task, cl *core.Cluster, kind storKind, forWrite bool) *storStack {
	dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
	svc := fs.NewService(cl, storFSNode, "fs", fs.Config{})
	var drop func()
	var setCache func(int64)
	switch kind {
	case storDisagg:
		be := baseline.NewDisaggregatedBackend(cl, storFSNode, storDevNode, dev)
		svc.WireBackend(be)
		drop = be.Initiator().DropCaches
		setCache = be.Initiator().SetCacheSize
	default:
		ad := nvme.NewAdaptor(cl, storDevNode, "nvme", dev, nvme.AdaptorConfig{})
		if err := ad.Start(tk); err != nil {
			assert.NoErr(err, "exp/storage")
		}
		if err := svc.Wire(ad); err != nil {
			assert.NoErr(err, "exp/storage")
		}
		drop = func() {}
	}
	if err := svc.Start(tk); err != nil {
		assert.NoErr(err, "exp/storage")
	}
	client := proc.Attach(cl, storClientNode, "stor-client", 12<<20)
	open, err := proc.GrantCap(svc.P, svc.Open, client)
	if err != nil {
		assert.NoErr(err, "exp/storage")
	}
	mode := uint64(fs.OpenRead | fs.OpenWrite | fs.OpenCreate)
	if _, err := fs.OpenFile(tk, client, open, "bench.bin", mode, storFileBytes); err != nil {
		assert.NoErr(err, "exp/storage")
	}
	reopen := uint64(fs.OpenRead)
	if forWrite {
		reopen |= fs.OpenWrite
	}
	if kind == storDAX {
		reopen |= fs.OpenDAX
	}
	f, err := fs.OpenFile(tk, client, open, "bench.bin", reopen, 0)
	if err != nil {
		assert.NoErr(err, "exp/storage")
	}
	st := &storStack{client: client, file: f, mem: map[uint64]proc.Cap{}, drop: drop, setCache: setCache}
	st.drop()
	return st
}

// buf returns (caching) a client Memory capability of exactly n bytes.
func (st *storStack) buf(tk *sim.Task, n uint64) proc.Cap {
	if c, ok := st.mem[n]; ok {
		return c
	}
	c, _, err := st.client.AllocMemory(tk, int(n), cap.MemRights)
	if err != nil {
		assert.NoErr(err, "exp/storage")
	}
	st.mem[n] = c
	return c
}

// randOffsets returns k distinct size-aligned offsets, each within one
// extent (no extent crossing), sampled deterministically.
func randOffsets(k int, size uint64, seed int64) []uint64 {
	rng := newRand(seed)
	perExt := fs.ExtentSize / size
	var offs []uint64
	seen := map[uint64]bool{}
	for len(offs) < k {
		e := uint64(rng.Intn(fs.MaxExtents))
		s := uint64(rng.Int63n(int64(perExt)))
		off := e*fs.ExtentSize + s*size
		if !seen[off] {
			seen[off] = true
			offs = append(offs, off)
		}
	}
	return offs
}

// storLatency measures the average latency of k random operations.
func storLatency(kind storKind, size uint64, isWrite bool) sim.Time {
	return storLatencyOn(core.CtrlOnCPU, kind, size, isWrite)
}

func storLatencyOn(p core.Placement, kind storKind, size uint64, isWrite bool) sim.Time {
	var avg sim.Time
	runOn(core.ClusterConfig{Nodes: 3, Placement: p}, func(tk *sim.Task, cl *core.Cluster) {
		st := buildStorStack(tk, cl, kind, isWrite)
		mem := st.buf(tk, size)
		const k = 6
		offs := randOffsets(k, size, 77)
		start := tk.Now()
		for _, off := range offs {
			var err error
			if isWrite {
				err = st.file.WriteAt(tk, off, size, mem)
			} else {
				err = st.file.ReadAt(tk, off, size, mem)
			}
			if err != nil {
				assert.NoErr(err, "exp/storage")
			}
		}
		avg = (tk.Now() - start) / k
	})
	return avg
}

// localLatency is Figure 10's Local Baseline: the device accessed
// directly on its own node.
func localLatency(size uint64, isWrite bool) sim.Time {
	var avg sim.Time
	runOn(core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		buf := make([]byte, size)
		const k = 6
		offs := randOffsets(k, size, 77)
		start := tk.Now()
		for _, off := range offs {
			var err error
			if isWrite {
				err = dev.Write(tk, int64(off), buf)
			} else {
				err = dev.Read(tk, int64(off), buf)
			}
			if err != nil {
				assert.NoErr(err, "exp/storage")
			}
		}
		avg = (tk.Now() - start) / k
	})
	return avg
}

// Figure10 regenerates the storage latency comparison.
//
// Paper shape: FS competitive with the Disaggregated Baseline for
// random reads; baseline writes faster (its block cache absorbs them;
// the FractOS FS has no cache); DAX beats both, 1.1x at 4 KiB (device
// dominated) growing to ~1.3x at large sizes (network dominated).
func Figure10() *Table {
	t := NewTable("fig10", "Random storage latency (µs)",
		"op", "size", "FS", "DAX", "Disagg baseline", "Local")
	for _, isWrite := range []bool{false, true} {
		op := "read"
		if isWrite {
			op = "write"
		}
		for _, size := range []uint64{4 << 10, 64 << 10, 256 << 10, 1 << 20} {
			fsLat := storLatency(storFS, size, isWrite)
			dax := storLatency(storDAX, size, isWrite)
			dis := storLatency(storDisagg, size, isWrite)
			loc := localLatency(size, isWrite)
			t.AddRow(op, sizeLabel(int(size)), usec(fsLat), usec(dax), usec(dis), usec(loc))
			if !isWrite {
				t.Metric(fmt.Sprintf("read%s-dax-speedup", sizeLabel(int(size))),
					float64(fsLat)/float64(dax))
			}
			if !isWrite && size == 4<<10 {
				t.Metric("read4k-fs-us", float64(fsLat)/1e3)
				t.Metric("read4k-dax-us", float64(dax)/1e3)
			}
		}
	}
	t.Note("paper: DAX read speedup 1.1x at 4K → ~1.3x at large sizes; baseline writes absorbed by its cache")
	// The sNIC deployment rows: §6.4 notes the system overheads grow
	// when Controllers run on the BlueField's slow ARM cores.
	for _, size := range []uint64{4 << 10, 256 << 10} {
		fsLat := storLatencyOn(core.CtrlOnSNIC, storFS, size, false)
		dax := storLatencyOn(core.CtrlOnSNIC, storDAX, size, false)
		t.AddRow("read@sNIC", sizeLabel(int(size)), usec(fsLat), usec(dax), "-", "-")
		if size == 4<<10 {
			t.Metric("read4k-fs-snic-us", float64(fsLat)/1e3)
		}
	}
	t.Note("read@sNIC: FractOS Controllers on SmartNICs (higher overall latency, as in the paper)")
	// Sequential reads: §6.4 notes DAX latency is then equivalent to
	// the Disaggregated Baseline, whose read-ahead caching becomes
	// effective.
	for _, size := range []uint64{64 << 10} {
		dax := storSeqLatency(storDAX, size)
		dis := storSeqLatency(storDisagg, size)
		t.AddRow("seqread", sizeLabel(int(size)), "-", usec(dax), usec(dis), "-")
		t.Metric("seq64k-dax-us", float64(dax)/1e3)
		t.Metric("seq64k-disagg-us", float64(dis)/1e3)
	}
	t.Note("seqread: sequential pattern — the baseline's read-ahead narrows its random-read gap;")
	t.Note("the paper reports full equality (its streaming reader gives the prefetcher more headroom)")
	return t
}

// storSeqLatency measures sequential reads (read-ahead friendly).
func storSeqLatency(kind storKind, size uint64) sim.Time {
	var avg sim.Time
	runOn(core.ClusterConfig{Nodes: 3}, func(tk *sim.Task, cl *core.Cluster) {
		st := buildStorStack(tk, cl, kind, false)
		mem := st.buf(tk, size)
		const k = 8
		start := tk.Now()
		for i := 0; i < k; i++ {
			if err := st.file.ReadAt(tk, uint64(i)*size, size, mem); err != nil {
				assert.NoErr(err, "exp/storage")
			}
		}
		avg = (tk.Now() - start) / k
	})
	return avg
}

// storThroughput measures aggregate read bandwidth with 1 MiB blocks
// and `inflight` concurrent readers (Figure 11).
func storThroughput(kind storKind, sequential bool, inflight int) float64 {
	const size = uint64(1 << 20)
	const opsPerWorker = 8
	var elapsed sim.Time
	runOn(core.ClusterConfig{Nodes: 3}, func(tk *sim.Task, cl *core.Cluster) {
		st := buildStorStack(tk, cl, kind, false)
		// Shrink the baseline's cache below the working set (the
		// paper's dataset exceeds the FS-node cache, making it
		// ineffective for random reads).
		if kind == storDisagg && st.setCache != nil {
			st.setCache(2 << 20)
		}
		var wg sim.WaitGroup
		wg.Add(inflight)
		start := tk.Now()
		for w := 0; w < inflight; w++ {
			w := w
			cl.K.Spawn("stor-worker", func(wt *sim.Task) {
				mem, _, err := st.client.AllocMemory(wt, int(size), cap.MemRights)
				if err != nil {
					assert.NoErr(err, "exp/storage")
				}
				offs := randOffsets(opsPerWorker, size, int64(100+w))
				for i := 0; i < opsPerWorker; i++ {
					off := offs[i]
					if sequential {
						off = (uint64(w*opsPerWorker+i) * size) % storFileBytes
					}
					if err := st.file.ReadAt(wt, off, size, mem); err != nil {
						assert.NoErr(err, "exp/storage")
					}
				}
				wg.Done()
			})
		}
		wg.Wait(tk)
		elapsed = tk.Now() - start
	})
	total := inflight * opsPerWorker * int(size)
	return mbpsVal(total, elapsed)
}

// Figure11 regenerates the storage throughput comparison (1 MiB
// blocks, 4 requests in flight).
//
// Paper: DAX saturates the 10 Gbps line rate (~1250 MB/s); the FS path
// and the Disaggregated Baseline deliver roughly 20% less.
func Figure11() *Table {
	t := NewTable("fig11", "Storage read throughput, 1 MiB blocks, 4 in flight (MB/s)",
		"pattern", "FS", "DAX", "Disagg baseline")
	for _, seq := range []bool{false, true} {
		pat := "random"
		if seq {
			pat = "sequential"
		}
		fsT := storThroughput(storFS, seq, 4)
		daxT := storThroughput(storDAX, seq, 4)
		disT := storThroughput(storDisagg, seq, 4)
		t.AddRow(pat, fmt.Sprintf("%.0f", fsT), fmt.Sprintf("%.0f", daxT), fmt.Sprintf("%.0f", disT))
		if !seq {
			t.Metric("rand-dax-mbps", daxT)
			t.Metric("rand-fs-mbps", fsT)
			t.Metric("rand-disagg-mbps", disT)
		}
	}
	t.Note("line rate is 1250 MB/s; paper: DAX saturates it, FS and baseline ~20%% lower")
	return t
}

package exp

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/device/nvme"
	"fractos/internal/fs"
	"fractos/internal/load"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// Storage experiment topology: client on node 0, FS service on node 1,
// NVMe on node 2 — stacks.Storage's default placement (the FS's
// backend device is remote either way).

// storFileBytes is the benchmark file: 8 extents of 1 MiB.
const storFileBytes = uint64(fs.MaxExtents) * fs.ExtentSize

// randOffsets returns k distinct size-aligned offsets, each within one
// extent (no extent crossing), sampled deterministically.
func randOffsets(k int, size uint64, seed int64) []uint64 {
	rng := newRand(seed)
	perExt := fs.ExtentSize / size
	var offs []uint64
	seen := map[uint64]bool{}
	for len(offs) < k {
		e := uint64(rng.Intn(fs.MaxExtents))
		s := uint64(rng.Int63n(int64(perExt)))
		off := e*fs.ExtentSize + s*size
		if !seen[off] {
			seen[off] = true
			offs = append(offs, off)
		}
	}
	return offs
}

// storLatency measures the average latency of k random operations.
func storLatency(kind stacks.StorageKind, size uint64, isWrite bool) sim.Time {
	return storLatencyOn(core.CtrlOnCPU, kind, size, isWrite)
}

func storLatencyOn(p core.Placement, kind stacks.StorageKind, size uint64, isWrite bool) sim.Time {
	var avg sim.Time
	stor := &stacks.Storage{Kind: kind, ForWrite: isWrite}
	testbed.Run(specFor(core.ClusterConfig{Nodes: 3, Placement: p}, stor),
		func(tk *sim.Task, d *testbed.Deployment) {
			mem := stor.Buf(tk, size)
			const k = 6
			offs := randOffsets(k, size, 77)
			st := load.Closed{Clients: 1, PerClient: k}.Run(tk, func(t *sim.Task, _, seq int) error {
				if isWrite {
					return stor.File.WriteAt(t, offs[seq], size, mem)
				}
				return stor.File.ReadAt(t, offs[seq], size, mem)
			})
			if st.Errors > 0 {
				assert.Failf("exp/storage: %d of %d ops failed", st.Errors, k)
			}
			avg = st.Elapsed() / k
		})
	return avg
}

// localLatency is Figure 10's Local Baseline: the device accessed
// directly on its own node.
func localLatency(size uint64, isWrite bool) sim.Time {
	var avg sim.Time
	runOn(core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		buf := make([]byte, size)
		const k = 6
		offs := randOffsets(k, size, 77)
		start := tk.Now()
		for _, off := range offs {
			var err error
			if isWrite {
				err = dev.Write(tk, int64(off), buf)
			} else {
				err = dev.Read(tk, int64(off), buf)
			}
			if err != nil {
				assert.NoErr(err, "exp/storage")
			}
		}
		avg = (tk.Now() - start) / k
	})
	return avg
}

// Figure10 regenerates the storage latency comparison.
//
// Paper shape: FS competitive with the Disaggregated Baseline for
// random reads; baseline writes faster (its block cache absorbs them;
// the FractOS FS has no cache); DAX beats both, 1.1x at 4 KiB (device
// dominated) growing to ~1.3x at large sizes (network dominated).
func Figure10() *Table {
	t := NewTable("fig10", "Random storage latency (µs)",
		"op", "size", "FS", "DAX", "Disagg baseline", "Local")
	for _, isWrite := range []bool{false, true} {
		op := "read"
		if isWrite {
			op = "write"
		}
		for _, size := range []uint64{4 << 10, 64 << 10, 256 << 10, 1 << 20} {
			fsLat := storLatency(stacks.StorFS, size, isWrite)
			dax := storLatency(stacks.StorDAX, size, isWrite)
			dis := storLatency(stacks.StorDisagg, size, isWrite)
			loc := localLatency(size, isWrite)
			t.AddRow(op, sizeLabel(int(size)), usec(fsLat), usec(dax), usec(dis), usec(loc))
			if !isWrite {
				t.Metric(fmt.Sprintf("read%s-dax-speedup", sizeLabel(int(size))),
					float64(fsLat)/float64(dax))
			}
			if !isWrite && size == 4<<10 {
				t.Metric("read4k-fs-us", float64(fsLat)/1e3)
				t.Metric("read4k-dax-us", float64(dax)/1e3)
			}
		}
	}
	t.Note("paper: DAX read speedup 1.1x at 4K → ~1.3x at large sizes; baseline writes absorbed by its cache")
	// The sNIC deployment rows: §6.4 notes the system overheads grow
	// when Controllers run on the BlueField's slow ARM cores.
	for _, size := range []uint64{4 << 10, 256 << 10} {
		fsLat := storLatencyOn(core.CtrlOnSNIC, stacks.StorFS, size, false)
		dax := storLatencyOn(core.CtrlOnSNIC, stacks.StorDAX, size, false)
		t.AddRow("read@sNIC", sizeLabel(int(size)), usec(fsLat), usec(dax), "-", "-")
		if size == 4<<10 {
			t.Metric("read4k-fs-snic-us", float64(fsLat)/1e3)
		}
	}
	t.Note("read@sNIC: FractOS Controllers on SmartNICs (higher overall latency, as in the paper)")
	// Sequential reads: §6.4 notes DAX latency is then equivalent to
	// the Disaggregated Baseline, whose read-ahead caching becomes
	// effective.
	for _, size := range []uint64{64 << 10} {
		dax := storSeqLatency(stacks.StorDAX, size)
		dis := storSeqLatency(stacks.StorDisagg, size)
		t.AddRow("seqread", sizeLabel(int(size)), "-", usec(dax), usec(dis), "-")
		t.Metric("seq64k-dax-us", float64(dax)/1e3)
		t.Metric("seq64k-disagg-us", float64(dis)/1e3)
	}
	t.Note("seqread: sequential pattern — the baseline's read-ahead narrows its random-read gap;")
	t.Note("the paper reports full equality (its streaming reader gives the prefetcher more headroom)")
	return t
}

// storSeqLatency measures sequential reads (read-ahead friendly).
func storSeqLatency(kind stacks.StorageKind, size uint64) sim.Time {
	var avg sim.Time
	stor := &stacks.Storage{Kind: kind}
	testbed.Run(specFor(core.ClusterConfig{Nodes: 3}, stor),
		func(tk *sim.Task, d *testbed.Deployment) {
			mem := stor.Buf(tk, size)
			const k = 8
			st := load.Closed{Clients: 1, PerClient: k}.Run(tk, func(t *sim.Task, _, seq int) error {
				return stor.File.ReadAt(t, uint64(seq)*size, size, mem)
			})
			if st.Errors > 0 {
				assert.Failf("exp/storage: %d of %d seq reads failed", st.Errors, k)
			}
			avg = st.Elapsed() / k
		})
	return avg
}

// storThroughput measures aggregate read bandwidth with 1 MiB blocks
// and `inflight` concurrent readers (Figure 11).
func storThroughput(kind stacks.StorageKind, sequential bool, inflight int) float64 {
	const size = uint64(1 << 20)
	const opsPerWorker = 8
	var tput float64
	stor := &stacks.Storage{Kind: kind}
	testbed.Run(specFor(core.ClusterConfig{Nodes: 3}, stor),
		func(tk *sim.Task, d *testbed.Deployment) {
			// Shrink the baseline's cache below the working set (the
			// paper's dataset exceeds the FS-node cache, making it
			// ineffective for random reads).
			if kind == stacks.StorDisagg && stor.SetCacheSize != nil {
				stor.SetCacheSize(2 << 20)
			}
			// Per-worker state, initialized lazily inside each worker's
			// first request (buffer registration is part of the run, as
			// it was when each worker allocated before its loop).
			mems := make([]proc.Cap, inflight)
			offs := make([][]uint64, inflight)
			st := load.Closed{Clients: inflight, PerClient: opsPerWorker}.Run(tk,
				func(wt *sim.Task, w, seq int) error {
					if seq == 0 {
						mems[w] = stor.Alloc(wt, size)
						offs[w] = randOffsets(opsPerWorker, size, int64(100+w))
					}
					off := offs[w][seq]
					if sequential {
						off = (uint64(w*opsPerWorker+seq) * size) % storFileBytes
					}
					return stor.File.ReadAt(wt, off, size, mems[w])
				})
			if st.Errors > 0 {
				assert.Failf("exp/storage: %d throughput reads failed", st.Errors)
			}
			tput = mbpsVal(inflight*opsPerWorker*int(size), st.Elapsed())
		})
	return tput
}

// Figure11 regenerates the storage throughput comparison (1 MiB
// blocks, 4 requests in flight).
//
// Paper: DAX saturates the 10 Gbps line rate (~1250 MB/s); the FS path
// and the Disaggregated Baseline deliver roughly 20% less.
func Figure11() *Table {
	t := NewTable("fig11", "Storage read throughput, 1 MiB blocks, 4 in flight (MB/s)",
		"pattern", "FS", "DAX", "Disagg baseline")
	for _, seq := range []bool{false, true} {
		pat := "random"
		if seq {
			pat = "sequential"
		}
		fsT := storThroughput(stacks.StorFS, seq, 4)
		daxT := storThroughput(stacks.StorDAX, seq, 4)
		disT := storThroughput(stacks.StorDisagg, seq, 4)
		t.AddRow(pat, fmt.Sprintf("%.0f", fsT), fmt.Sprintf("%.0f", daxT), fmt.Sprintf("%.0f", disT))
		if !seq {
			t.Metric("rand-dax-mbps", daxT)
			t.Metric("rand-fs-mbps", fsT)
			t.Metric("rand-disagg-mbps", disT)
		}
	}
	t.Note("line rate is 1250 MB/s; paper: DAX saturates it, FS and baseline ~20%% lower")
	return t
}

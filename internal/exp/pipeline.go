package exp

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Stage-service RPC tags (the generic multi-stage pipeline of §6.2).
const (
	// tagXform: transform the stage's input buffer in place; reply via
	// slot 0 (star model — the client moves all data).
	tagXform uint64 = 0x50
	// tagPush: transform, then memory_copy the output into the Memory
	// capability in slot 0 and reply via slot 1 (fast-star — client
	// controls, data flows stage to stage).
	tagPush uint64 = 0x51
	// tagChain: transform, copy into slot 0, then invoke the Request
	// in slot 1 (chain — fully distributed control and data).
	tagChain uint64 = 0x52
)

// stageProcTime models each stage's fixed processing cost.
const stageProcTime = 5 * sim.Time(1000)

// pipeStage is one service stage with its input buffer.
type pipeStage struct {
	p     *proc.Process
	size  int
	inCap proc.Cap // stage's input buffer (clients copy into it)
	xform proc.Cap
	push  proc.Cap
	chain proc.Cap
}

// newPipeStage deploys a stage on a node.
func newPipeStage(tk *sim.Task, cl *core.Cluster, node, size int, name string) *pipeStage {
	s := &pipeStage{p: proc.Attach(cl, node, name, size), size: size}
	var err error
	if s.inCap, err = s.p.MemoryCreate(tk, 0, uint64(size), cap.MemRights); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	if s.xform, err = s.p.RequestCreate(tk, tagXform, nil, nil); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	if s.push, err = s.p.RequestCreate(tk, tagPush, nil, nil); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	if s.chain, err = s.p.RequestCreate(tk, tagChain, nil, nil); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	cl.K.Spawn(name+".loop", s.serve)
	return s
}

// serve handles stage invocations: transform (+1 to every byte of the
// n-byte input), then route the output per the model.
func (s *pipeStage) serve(t *sim.Task) {
	for {
		d, ok := s.p.Receive(t)
		if !ok {
			return
		}
		n := int(d.U64(0))
		if n > s.size {
			n = s.size
		}
		t.Sleep(stageProcTime)
		buf := s.p.Arena()[:n]
		for i := range buf {
			buf[i]++
		}
		switch d.Tag {
		case tagXform:
			if rep, ok := d.Cap(0); ok {
				s.p.Invoke(t, rep, nil, nil)
			}
		case tagPush, tagChain:
			dst, ok1 := d.Cap(0)
			next, ok2 := d.Cap(1)
			if !ok1 || !ok2 {
				d.Done()
				continue
			}
			view, err := s.p.MemoryDiminish(t, s.inCap, 0, uint64(n), 0)
			if err != nil {
				assert.NoErr(err, "exp/pipeline")
			}
			if err := s.p.MemoryCopy(t, view, dst); err != nil {
				assert.NoErr(err, "exp/pipeline")
			}
			s.p.Drop(t, view)
			// fast-star replies to the client; chain invokes the next
			// stage's Request verbatim, forwarding the length.
			if d.Tag == tagPush {
				s.p.Invoke(t, next, nil, nil)
			} else {
				s.p.Invoke(t, next, []wire.ImmArg{proc.U64Arg(0, uint64(n))}, nil)
			}
		}
		d.Done()
	}
}

// pipeline assembles S stages on distinct nodes plus a client, and
// runs one end-to-end execution per model. It verifies the data really
// passed through every stage (each adds 1 to every byte).
type pipeline struct {
	cl     *core.Cluster
	client *proc.Process
	buf    proc.Cap // client's data buffer (n bytes at arena offset 0)
	n      int
	stages []*pipeStage
	// client-held capabilities
	stageIn            []proc.Cap
	xform, push, chain []proc.Cap
}

func newPipeline(tk *sim.Task, cl *core.Cluster, nStages, n int) *pipeline {
	pl := &pipeline{cl: cl, n: n}
	pl.client = proc.Attach(cl, 0, "pipe-client", n)
	var err error
	if pl.buf, err = pl.client.MemoryCreate(tk, 0, uint64(n), cap.MemRights); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	for i := 0; i < nStages; i++ {
		node := 1 + i%(len(cl.Ctrls)-1) // stages on nodes 1..N-1
		if len(cl.Ctrls) == 1 {
			node = 1 + i
		}
		st := newPipeStage(tk, cl, node, n, fmt.Sprintf("stage%d", i))
		pl.stages = append(pl.stages, st)
		grant := func(c proc.Cap) proc.Cap {
			g, err := proc.GrantCap(st.p, c, pl.client)
			if err != nil {
				assert.NoErr(err, "exp/pipeline")
			}
			return g
		}
		pl.stageIn = append(pl.stageIn, grant(st.inCap))
		pl.xform = append(pl.xform, grant(st.xform))
		pl.push = append(pl.push, grant(st.push))
		pl.chain = append(pl.chain, grant(st.chain))
	}
	return pl
}

func (pl *pipeline) fill() {
	b := pl.client.Arena()[:pl.n]
	for i := range b {
		b[i] = byte(i)
	}
}

func (pl *pipeline) check() {
	b := pl.client.Arena()[:pl.n]
	s := byte(len(pl.stages))
	for i := range b {
		if b[i] != byte(i)+s {
			assert.Failf("exp/pipeline: data corrupted at %d: got %d want %d", i, b[i], byte(i)+s)
		}
	}
}

// runStar executes the centralized model: the client moves data to and
// from every stage and drives all control.
func (pl *pipeline) runStar(tk *sim.Task) sim.Time {
	pl.fill()
	start := tk.Now()
	lenArg := []wire.ImmArg{proc.U64Arg(0, uint64(pl.n))}
	for i := range pl.stages {
		if err := pl.client.MemoryCopy(tk, pl.buf, pl.stageIn[i]); err != nil {
			assert.NoErr(err, "exp/pipeline")
		}
		if _, err := pl.client.Call(tk, pl.xform[i], lenArg, nil, 0); err != nil {
			assert.NoErr(err, "exp/pipeline")
		}
		if err := pl.client.MemoryCopy(tk, pl.stageIn[i], pl.buf); err != nil {
			assert.NoErr(err, "exp/pipeline")
		}
	}
	lat := tk.Now() - start
	pl.check()
	return lat
}

// runFastStar executes centralized control with direct data flow:
// each stage pushes its output straight to the next stage's buffer.
func (pl *pipeline) runFastStar(tk *sim.Task) sim.Time {
	pl.fill()
	start := tk.Now()
	lenArg := []wire.ImmArg{proc.U64Arg(0, uint64(pl.n))}
	if err := pl.client.MemoryCopy(tk, pl.buf, pl.stageIn[0]); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	for i := range pl.stages {
		dst := pl.buf
		if i+1 < len(pl.stages) {
			dst = pl.stageIn[i+1]
		}
		if _, err := pl.client.Call(tk, pl.push[i], lenArg,
			[]proc.Arg{{Slot: 0, Cap: dst}}, 1); err != nil {
			assert.NoErr(err, "exp/pipeline")
		}
	}
	lat := tk.Now() - start
	pl.check()
	return lat
}

// runChain executes the fully distributed model: the client builds the
// continuation graph once, then a single invocation flows through all
// stages and returns (§3.4's pipeline pattern).
func (pl *pipeline) runChain(tk *sim.Task) sim.Time {
	pl.fill()
	// Build the graph tail-first: stage i's chain Request refined with
	// (dst = stage i+1's buffer, next = stage i+1's refined Request).
	reply, replyTag, err := pl.client.ReplyRequest(tk)
	if err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	next := reply
	var reqs []proc.Cap
	for i := len(pl.stages) - 1; i >= 1; i-- {
		dst := pl.buf
		nextReq := next
		if i+1 < len(pl.stages) {
			dst = pl.stageIn[i+1]
		}
		r, err := pl.client.Derive(tk, pl.chain[i], nil,
			[]proc.Arg{{Slot: 0, Cap: dst}, {Slot: 1, Cap: nextReq}})
		if err != nil {
			assert.NoErr(err, "exp/pipeline")
		}
		reqs = append(reqs, r)
		next = r
	}
	start := tk.Now()
	if err := pl.client.MemoryCopy(tk, pl.buf, pl.stageIn[0]); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	dst0 := pl.buf
	if len(pl.stages) > 1 {
		dst0 = pl.stageIn[1]
	}
	f := pl.client.WaitTag(replyTag)
	if err := pl.client.Invoke(tk, pl.chain[0],
		[]wire.ImmArg{proc.U64Arg(0, uint64(pl.n))},
		[]proc.Arg{{Slot: 0, Cap: dst0}, {Slot: 1, Cap: next}}); err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	d, err := f.Wait(tk)
	if err != nil {
		assert.NoErr(err, "exp/pipeline")
	}
	d.Done()
	lat := tk.Now() - start
	pl.check()
	for _, r := range reqs {
		pl.client.Drop(tk, r)
	}
	pl.client.Drop(tk, reply)
	return lat
}

// Figure8 regenerates the composition study: star vs fast-star vs
// chain across stage counts and transfer sizes.
//
// Paper shape: direct data transfers dominate at 64 KiB (star vs
// fast-star ~1.6x); distributed control dominates at ≤4 KiB (fast-star
// vs chain ~1.45x).
func Figure8() *Table {
	t := NewTable("fig8", "Pipeline latency by model (µs, Controllers on CPUs)",
		"stages", "size", "star", "fast-star", "chain", "star/fast", "fast/chain")
	for _, stages := range []int{2, 4, 8} {
		for _, size := range []int{64, 4 << 10, 64 << 10} {
			var star, fast, chain sim.Time
			runOn(core.ClusterConfig{Nodes: stages + 1}, func(tk *sim.Task, cl *core.Cluster) {
				pl := newPipeline(tk, cl, stages, size)
				star = pl.runStar(tk)
				fast = pl.runFastStar(tk)
				chain = pl.runChain(tk)
			})
			t.AddRow(fmt.Sprint(stages), sizeLabel(size),
				usec(star), usec(fast), usec(chain),
				fmt.Sprintf("%.2fx", float64(star)/float64(fast)),
				fmt.Sprintf("%.2fx", float64(fast)/float64(chain)))
			if stages == 4 && size == 64<<10 {
				t.Metric("star-over-fast-64k", float64(star)/float64(fast))
			}
			if stages == 4 && size == 4<<10 {
				t.Metric("fast-over-chain-4k", float64(fast)/float64(chain))
			}
		}
	}
	t.Note("paper: star/fast-star ≈ 1.6x at 64K; fast-star/chain ≈ 1.45x at 4K")
	return t
}

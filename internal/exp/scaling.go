package exp

import (
	"fmt"

	"fractos/internal/app/faceverify"
	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/load"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// scalingRates is the offered-load sweep (req/s). The closed-loop
// capacity of the batch-64 FractOS stack is ~3.3k req/s (Figure 13,
// 8 in flight), so the sweep brackets the saturation knee.
var scalingRates = []float64{500, 1000, 2000, 3000, 3600, 4200}

// scalingRequests is the number of open-loop arrivals per rate point.
const scalingRequests = 120

// ScalingFaceVerify is the first open-loop scaling experiment: Poisson
// request arrivals (offered load does not back off when the system
// slows down — "heavy traffic from millions of users", not N looping
// clients) against the 4-node face-verification testbed, sweeping the
// offered rate and reporting latency percentiles and goodput until
// saturation. Below the knee, percentiles sit near the closed-loop
// request latency; past it, the arrival queue grows for the whole run
// and the tail explodes while goodput plateaus at the Figure 13
// capacity.
func ScalingFaceVerify() *Table {
	return scalingFaceVerify(scalingRates, scalingRequests)
}

func scalingFaceVerify(rates []float64, requests int) *Table {
	t := NewTable("scaling-fv",
		fmt.Sprintf("Open-loop face-verification scaling, batch 64, %d Poisson arrivals per point", requests),
		"offered req/s", "goodput req/s", "p50 ms", "p90 ms", "p99 ms", "p999 ms", "max in flight")
	cfg := faceverify.Config{Batch: 64, Files: 8, Slots: 8}
	msf := func(d sim.Time) float64 { return float64(d) / 1e6 }
	var p99s, goodputs []float64
	for _, rate := range rates {
		fv := &stacks.FaceVerify{Cfg: cfg}
		var st *load.Stats
		testbed.Run(appSpec(core.CtrlOnCPU, fv), func(tk *sim.Task, d *testbed.Deployment) {
			rng := newRand(9)
			reqs := make([]*faceverify.Request, requests)
			for i := range reqs {
				reqs[i] = faceverify.MakeRequest(fv.DB, i, cfg.Batch, rng)
			}
			st = load.Open{Rate: rate, Requests: requests, Seed: 13}.Run(tk,
				func(wt *sim.Task, i int) error {
					out, err := fv.Verify(wt, reqs[i])
					if err != nil {
						return err
					}
					if !reqs[i].CheckResults(out) {
						assert.Failf("exp/scaling: wrong verification verdicts")
					}
					return nil
				})
			if st.Errors > 0 {
				assert.Failf("exp/scaling: %d of %d requests failed", st.Errors, requests)
			}
		})
		h := &st.Hist
		t.AddRow(fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.0f", st.Throughput()),
			fmt.Sprintf("%.3f", msf(h.P50())), fmt.Sprintf("%.3f", msf(h.P90())),
			fmt.Sprintf("%.3f", msf(h.P99())), fmt.Sprintf("%.3f", msf(h.P999())),
			fmt.Sprint(st.InflightHWM))
		p99s = append(p99s, msf(h.P99()))
		goodputs = append(goodputs, st.Throughput())
	}
	// Headline metrics: the tail at light and heavy load, the knee
	// (last offered rate whose p99 stays within 2.5x of the light-load
	// tail), and the saturated goodput.
	t.Metric("p99-light-ms", p99s[0])
	t.Metric("p99-heavy-ms", p99s[len(p99s)-1])
	knee := rates[0]
	for i, r := range rates {
		if p99s[i] <= 2.5*p99s[0] {
			knee = r
		}
	}
	t.Metric("knee-offered", knee)
	sat := 0.0
	for _, g := range goodputs {
		if g > sat {
			sat = g
		}
	}
	t.Metric("sat-goodput", sat)
	t.Note("open-loop Poisson arrivals: offered load is independent of completions, so past the knee")
	t.Note("the arrival queue grows and the p99/p999 tail explodes while goodput plateaus near the")
	t.Note("closed-loop capacity of Figure 13 (~3.3k req/s at batch 64)")
	return t
}

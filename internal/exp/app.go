package exp

import (
	"fmt"

	"fractos/internal/app/faceverify"
	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// appVerifier abstracts the two face-verification implementations.
type appVerifier struct {
	verify func(*sim.Task, *faceverify.Request) ([]byte, error)
	db     *faceverify.DB
}

func setupApp(tk *sim.Task, cl *core.Cluster, cfg faceverify.Config, useBaseline bool) appVerifier {
	if useBaseline {
		app, err := faceverify.SetupBaseline(tk, cl, cfg)
		if err != nil {
			assert.NoErr(err, "exp/app")
		}
		return appVerifier{verify: app.VerifyBatch, db: app.DB}
	}
	app, err := faceverify.SetupFractOS(tk, cl, cfg)
	if err != nil {
		assert.NoErr(err, "exp/app")
	}
	return appVerifier{verify: app.VerifyBatch, db: app.DB}
}

// appLatency measures the mean per-request latency over cfg.Files
// requests, each hitting a fresh database file (random-read pattern).
func appLatency(placement core.Placement, cfg faceverify.Config, useBaseline bool) sim.Time {
	var lat sim.Time
	runOn(core.ClusterConfig{Nodes: 4, Placement: placement}, func(tk *sim.Task, cl *core.Cluster) {
		v := setupApp(tk, cl, cfg, useBaseline)
		rng := newRand(5)
		reqs := make([]*faceverify.Request, cfg.Files)
		for i := range reqs {
			reqs[i] = faceverify.MakeRequest(v.db, i, cfg.Batch, rng)
		}
		start := tk.Now()
		for _, r := range reqs {
			out, err := v.verify(tk, r)
			if err != nil {
				assert.NoErr(err, "exp/app")
			}
			if !r.CheckResults(out) {
				assert.Failf("exp/app: wrong verification verdicts")
			}
		}
		lat = (tk.Now() - start) / sim.Time(len(reqs))
	})
	return lat
}

// Figure12 regenerates the end-to-end latency comparison.
//
// Paper: FractOS is ~47% faster end to end; the baseline pays three
// network traversals of the image data plus rCUDA's per-call tax; the
// Shared-HAL deployment sits between the per-node CPU and sNIC ones.
func Figure12() *Table {
	t := NewTable("fig12", "Face-verification request latency (ms)",
		"batch", "FractOS@CPU", "FractOS@sNIC", "Shared HAL", "Baseline", "base/CPU")
	ms := func(d sim.Time) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	for _, batch := range []int{1, 8, 32, 64, 128} {
		cfg := faceverify.Config{Batch: batch, Files: 4, Slots: 1}
		fc := appLatency(core.CtrlOnCPU, cfg, false)
		fsn := appLatency(core.CtrlOnSNIC, cfg, false)
		fsh := appLatency(core.CtrlShared, cfg, false)
		bl := appLatency(core.CtrlOnCPU, cfg, true)
		t.AddRow(fmt.Sprint(batch), ms(fc), ms(fsn), ms(fsh), ms(bl),
			fmt.Sprintf("%.2fx", float64(bl)/float64(fc)))
		if batch == 32 {
			t.Metric("lat32-fractos-ms", float64(fc)/1e6)
			t.Metric("lat32-baseline-ms", float64(bl)/1e6)
			t.Metric("speedup32", float64(bl)/float64(fc))
		}
	}
	t.Note("paper: FractOS accelerates the application by ~47%% (baseline/FractOS ≈ 1.5x)")
	return t
}

// appThroughput measures requests/s with `inflight` concurrent request
// generators.
func appThroughput(placement core.Placement, cfg faceverify.Config, useBaseline bool, inflight int) float64 {
	const reqsPerWorker = 4
	var elapsed sim.Time
	runOn(core.ClusterConfig{Nodes: 4, Placement: placement}, func(tk *sim.Task, cl *core.Cluster) {
		v := setupApp(tk, cl, cfg, useBaseline)
		rng := newRand(6)
		var wg sim.WaitGroup
		wg.Add(inflight)
		start := tk.Now()
		for w := 0; w < inflight; w++ {
			reqs := make([]*faceverify.Request, reqsPerWorker)
			for i := range reqs {
				reqs[i] = faceverify.MakeRequest(v.db, w*reqsPerWorker+i, cfg.Batch, rng)
			}
			cl.K.Spawn("app-worker", func(wt *sim.Task) {
				for _, r := range reqs {
					if _, err := v.verify(wt, r); err != nil {
						assert.NoErr(err, "exp/app")
					}
				}
				wg.Done()
			})
		}
		wg.Wait(tk)
		elapsed = tk.Now() - start
	})
	return float64(inflight*reqsPerWorker) / (float64(elapsed) / 1e9)
}

// Figure13 regenerates the end-to-end throughput comparison.
func Figure13() *Table {
	t := NewTable("fig13", "Face-verification throughput (req/s), batch 64",
		"inflight", "FractOS@CPU", "FractOS@sNIC", "Shared HAL", "Baseline")
	for _, inflight := range []int{1, 2, 4, 8} {
		cfg := faceverify.Config{Batch: 64, Files: 8, Slots: inflight}
		fc := appThroughput(core.CtrlOnCPU, cfg, false, inflight)
		fsn := appThroughput(core.CtrlOnSNIC, cfg, false, inflight)
		fsh := appThroughput(core.CtrlShared, cfg, false, inflight)
		bl := appThroughput(core.CtrlOnCPU, cfg, true, inflight)
		t.AddRow(fmt.Sprint(inflight),
			fmt.Sprintf("%.0f", fc), fmt.Sprintf("%.0f", fsn),
			fmt.Sprintf("%.0f", fsh), fmt.Sprintf("%.0f", bl))
		if inflight == 4 {
			t.Metric("tput4-fractos", fc)
			t.Metric("tput4-baseline", bl)
		}
	}
	t.Note("paper: baseline throughput is bottlenecked by rCUDA; with 4 in flight the GPU becomes FractOS's bottleneck")
	return t
}

// Figure2 regenerates the traffic analysis: per-request cross-node
// messages and bytes for the centralized and distributed designs. Only
// traffic that traverses the switch is counted (Process↔Controller
// loopback queues are node-local).
func Figure2() *Table {
	t := NewTable("fig2", "Per-request network traffic, face verification (batch 32)",
		"system", "data transfers", "ctrl msgs", "total msgs", "KB on wire")
	cfg := faceverify.Config{Batch: 32, Files: 4, Slots: 1}
	// measure counts per-request cross-node traffic. Consecutive RDMA
	// chunks on the same path are one logical transfer: the 16 KiB
	// bounce-buffer chunking is below "message" granularity (one RDMA
	// verb moves the whole buffer in hardware).
	measure := func(mode string) fabric.Stats {
		var per fabric.Stats
		runOn(core.ClusterConfig{Nodes: 4}, func(tk *sim.Task, cl *core.Cluster) {
			var verify func(*sim.Task, *faceverify.Request) ([]byte, error)
			var db *faceverify.DB
			switch mode {
			case "baseline":
				v := setupApp(tk, cl, cfg, true)
				verify, db = v.verify, v.db
			case "ring":
				app, err := faceverify.SetupFractOS(tk, cl, cfg)
				if err != nil {
					assert.NoErr(err, "exp/app")
				}
				if err := app.EnableRing(tk); err != nil {
					assert.NoErr(err, "exp/app")
				}
				verify, db = app.RingVerify, app.DB
			default:
				v := setupApp(tk, cl, cfg, false)
				verify, db = v.verify, v.db
			}
			rng := newRand(7)
			reqs := make([]*faceverify.Request, cfg.Files)
			for i := range reqs {
				reqs[i] = faceverify.MakeRequest(db, i, cfg.Batch, rng)
			}
			var dataTransfers, ctrlMsgs, bytes int64
			var last fabric.TraceEvent
			counting := false
			cl.Net.SetTrace(func(e fabric.TraceEvent) {
				if !counting {
					return
				}
				src, _ := cl.Net.Lookup(e.From)
				dst, _ := cl.Net.Lookup(e.To)
				if src == nil || dst == nil || src.Loc.Node == dst.Loc.Node {
					return
				}
				bytes += int64(e.Bytes)
				if e.Class != wire.Data {
					ctrlMsgs++
					return
				}
				if e.RDMA && last.RDMA && last.From == e.From && last.To == e.To {
					last = e // chunk continuation
					return
				}
				dataTransfers++
				last = e
			})
			counting = true
			for _, r := range reqs {
				if _, err := verify(tk, r); err != nil {
					assert.NoErr(err, "exp/app")
				}
			}
			counting = false
			n := int64(len(reqs))
			per = fabric.Stats{
				CrossNodeMsgs:     (dataTransfers + ctrlMsgs) / n,
				CrossNodeBytes:    bytes / n,
				CrossNodeCtrlMsgs: ctrlMsgs / n,
				CrossNodeDataMsgs: dataTransfers / n,
			}
		})
		return per
	}
	fr := measure("fractos")
	ring := measure("ring")
	bl := measure("baseline")
	row := func(name string, s fabric.Stats) {
		t.AddRow(name, fmt.Sprint(s.CrossNodeDataMsgs), fmt.Sprint(s.CrossNodeCtrlMsgs),
			fmt.Sprint(s.CrossNodeMsgs), fmt.Sprintf("%.1f", float64(s.CrossNodeBytes)/1024))
	}
	row("FractOS (distributed)", fr)
	row("FractOS (fig-2 ring, output to storage)", ring)
	row("Baseline (centralized)", bl)
	ratio := func(a, b int64) string { return fmt.Sprintf("%.2fx", float64(a)/float64(b)) }
	t.AddRow("reduction",
		ratio(bl.CrossNodeDataMsgs, fr.CrossNodeDataMsgs),
		ratio(bl.CrossNodeCtrlMsgs, fr.CrossNodeCtrlMsgs),
		ratio(bl.CrossNodeMsgs, fr.CrossNodeMsgs),
		ratio(bl.CrossNodeBytes, fr.CrossNodeBytes))
	t.Metric("bytes-reduction", float64(bl.CrossNodeBytes)/float64(fr.CrossNodeBytes))
	t.Metric("datamsg-reduction", float64(bl.CrossNodeDataMsgs)/float64(fr.CrossNodeDataMsgs))
	t.Metric("msg-reduction", float64(bl.CrossNodeMsgs)/float64(fr.CrossNodeMsgs))
	t.Note("paper (Figure 2 analysis): 2.5x fewer data transfers, 1.6x fewer messages; §1: 3x traffic reduction")
	t.Note("FractOS control counts include per-use owner validations and acks, which the paper's")
	t.Note("schematic message count omits; bulk-data and byte reductions are the like-for-like metrics")
	t.Note("the ring row writes verdicts to the output SSD (Figure 2 verbatim), including a read-back check;")
	t.Note("a baseline doing the same would add an NFS write (+2 messages, +verdict bytes)")
	return t
}

package exp

import (
	"fmt"

	"fractos/internal/app/faceverify"
	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/load"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
	"fractos/internal/wire"
)

// appSpec returns the 4-node face-verification testbed spec used by
// every end-to-end experiment (Figures 2, 12, 13 and the scaling
// sweep).
func appSpec(placement core.Placement, fv *stacks.FaceVerify) testbed.Spec {
	return specFor(core.ClusterConfig{Nodes: 4, Placement: placement}, fv)
}

// appLatency measures the mean per-request latency over cfg.Files
// requests, each hitting a fresh database file (random-read pattern).
func appLatency(placement core.Placement, cfg faceverify.Config, useBaseline bool) sim.Time {
	var lat sim.Time
	fv := &stacks.FaceVerify{Cfg: cfg, Baseline: useBaseline}
	testbed.Run(appSpec(placement, fv), func(tk *sim.Task, d *testbed.Deployment) {
		rng := newRand(5)
		reqs := make([]*faceverify.Request, cfg.Files)
		for i := range reqs {
			reqs[i] = faceverify.MakeRequest(fv.DB, i, cfg.Batch, rng)
		}
		st := load.Closed{Clients: 1, PerClient: len(reqs)}.Run(tk,
			func(t *sim.Task, _, seq int) error {
				out, err := fv.Verify(t, reqs[seq])
				if err != nil {
					return err
				}
				if !reqs[seq].CheckResults(out) {
					assert.Failf("exp/app: wrong verification verdicts")
				}
				return nil
			})
		if st.Errors > 0 {
			assert.Failf("exp/app: %d of %d requests failed", st.Errors, len(reqs))
		}
		lat = st.Elapsed() / sim.Time(len(reqs))
	})
	return lat
}

// Figure12 regenerates the end-to-end latency comparison.
//
// Paper: FractOS is ~47% faster end to end; the baseline pays three
// network traversals of the image data plus rCUDA's per-call tax; the
// Shared-HAL deployment sits between the per-node CPU and sNIC ones.
func Figure12() *Table {
	t := NewTable("fig12", "Face-verification request latency (ms)",
		"batch", "FractOS@CPU", "FractOS@sNIC", "Shared HAL", "Baseline", "base/CPU")
	ms := func(d sim.Time) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	for _, batch := range []int{1, 8, 32, 64, 128} {
		cfg := faceverify.Config{Batch: batch, Files: 4, Slots: 1}
		fc := appLatency(core.CtrlOnCPU, cfg, false)
		fsn := appLatency(core.CtrlOnSNIC, cfg, false)
		fsh := appLatency(core.CtrlShared, cfg, false)
		bl := appLatency(core.CtrlOnCPU, cfg, true)
		t.AddRow(fmt.Sprint(batch), ms(fc), ms(fsn), ms(fsh), ms(bl),
			fmt.Sprintf("%.2fx", float64(bl)/float64(fc)))
		if batch == 32 {
			t.Metric("lat32-fractos-ms", float64(fc)/1e6)
			t.Metric("lat32-baseline-ms", float64(bl)/1e6)
			t.Metric("speedup32", float64(bl)/float64(fc))
		}
	}
	t.Note("paper: FractOS accelerates the application by ~47%% (baseline/FractOS ≈ 1.5x)")
	return t
}

// appThroughput measures requests/s with `inflight` concurrent
// closed-loop clients.
func appThroughput(placement core.Placement, cfg faceverify.Config, useBaseline bool, inflight int) float64 {
	const reqsPerWorker = 4
	var tput float64
	fv := &stacks.FaceVerify{Cfg: cfg, Baseline: useBaseline}
	testbed.Run(appSpec(placement, fv), func(tk *sim.Task, d *testbed.Deployment) {
		rng := newRand(6)
		reqs := make([][]*faceverify.Request, inflight)
		for w := range reqs {
			reqs[w] = make([]*faceverify.Request, reqsPerWorker)
			for i := range reqs[w] {
				reqs[w][i] = faceverify.MakeRequest(fv.DB, w*reqsPerWorker+i, cfg.Batch, rng)
			}
		}
		st := load.Closed{Clients: inflight, PerClient: reqsPerWorker}.Run(tk,
			func(wt *sim.Task, w, seq int) error {
				_, err := fv.Verify(wt, reqs[w][seq])
				return err
			})
		if st.Errors > 0 {
			assert.Failf("exp/app: %d throughput requests failed", st.Errors)
		}
		tput = st.Throughput()
	})
	return tput
}

// Figure13 regenerates the end-to-end throughput comparison.
func Figure13() *Table {
	t := NewTable("fig13", "Face-verification throughput (req/s), batch 64",
		"inflight", "FractOS@CPU", "FractOS@sNIC", "Shared HAL", "Baseline")
	for _, inflight := range []int{1, 2, 4, 8} {
		cfg := faceverify.Config{Batch: 64, Files: 8, Slots: inflight}
		fc := appThroughput(core.CtrlOnCPU, cfg, false, inflight)
		fsn := appThroughput(core.CtrlOnSNIC, cfg, false, inflight)
		fsh := appThroughput(core.CtrlShared, cfg, false, inflight)
		bl := appThroughput(core.CtrlOnCPU, cfg, true, inflight)
		t.AddRow(fmt.Sprint(inflight),
			fmt.Sprintf("%.0f", fc), fmt.Sprintf("%.0f", fsn),
			fmt.Sprintf("%.0f", fsh), fmt.Sprintf("%.0f", bl))
		if inflight == 4 {
			t.Metric("tput4-fractos", fc)
			t.Metric("tput4-baseline", bl)
		}
	}
	t.Note("paper: baseline throughput is bottlenecked by rCUDA; with 4 in flight the GPU becomes FractOS's bottleneck")
	return t
}

// Figure2 regenerates the traffic analysis: per-request cross-node
// messages and bytes for the centralized and distributed designs. Only
// traffic that traverses the switch is counted (Process↔Controller
// loopback queues are node-local).
func Figure2() *Table {
	t := NewTable("fig2", "Per-request network traffic, face verification (batch 32)",
		"system", "data transfers", "ctrl msgs", "total msgs", "KB on wire")
	cfg := faceverify.Config{Batch: 32, Files: 4, Slots: 1}
	// measure counts per-request cross-node traffic. Consecutive RDMA
	// chunks on the same path are one logical transfer: the 16 KiB
	// bounce-buffer chunking is below "message" granularity (one RDMA
	// verb moves the whole buffer in hardware).
	measure := func(mode string) fabric.Stats {
		var per fabric.Stats
		fv := &stacks.FaceVerify{Cfg: cfg, Baseline: mode == "baseline"}
		testbed.Run(appSpec(core.CtrlOnCPU, fv), func(tk *sim.Task, d *testbed.Deployment) {
			cl := d.Cl
			verify := fv.Verify
			if mode == "ring" {
				if err := fv.App.EnableRing(tk); err != nil {
					assert.NoErr(err, "exp/app")
				}
				verify = func(t *sim.Task, r *faceverify.Request) ([]byte, error) {
					return fv.App.RingVerify(t, r)
				}
			}
			rng := newRand(7)
			reqs := make([]*faceverify.Request, cfg.Files)
			for i := range reqs {
				reqs[i] = faceverify.MakeRequest(fv.DB, i, cfg.Batch, rng)
			}
			var dataTransfers, ctrlMsgs, bytes int64
			var last fabric.TraceEvent
			counting := false
			cl.Net.SetTrace(func(e fabric.TraceEvent) {
				if !counting {
					return
				}
				src, _ := cl.Net.Lookup(e.From)
				dst, _ := cl.Net.Lookup(e.To)
				if src == nil || dst == nil || src.Loc.Node == dst.Loc.Node {
					return
				}
				bytes += int64(e.Bytes)
				if e.Class != wire.Data {
					ctrlMsgs++
					return
				}
				if e.RDMA && last.RDMA && last.From == e.From && last.To == e.To {
					last = e // chunk continuation
					return
				}
				dataTransfers++
				last = e
			})
			counting = true
			st := load.Closed{Clients: 1, PerClient: len(reqs)}.Run(tk,
				func(t *sim.Task, _, seq int) error {
					_, err := verify(t, reqs[seq])
					return err
				})
			counting = false
			if st.Errors > 0 {
				assert.Failf("exp/app: %d fig2 requests failed", st.Errors)
			}
			n := int64(len(reqs))
			per = fabric.Stats{
				CrossNodeMsgs:     (dataTransfers + ctrlMsgs) / n,
				CrossNodeBytes:    bytes / n,
				CrossNodeCtrlMsgs: ctrlMsgs / n,
				CrossNodeDataMsgs: dataTransfers / n,
			}
		})
		return per
	}
	fr := measure("fractos")
	ring := measure("ring")
	bl := measure("baseline")
	row := func(name string, s fabric.Stats) {
		t.AddRow(name, fmt.Sprint(s.CrossNodeDataMsgs), fmt.Sprint(s.CrossNodeCtrlMsgs),
			fmt.Sprint(s.CrossNodeMsgs), fmt.Sprintf("%.1f", float64(s.CrossNodeBytes)/1024))
	}
	row("FractOS (distributed)", fr)
	row("FractOS (fig-2 ring, output to storage)", ring)
	row("Baseline (centralized)", bl)
	ratio := func(a, b int64) string { return fmt.Sprintf("%.2fx", float64(a)/float64(b)) }
	t.AddRow("reduction",
		ratio(bl.CrossNodeDataMsgs, fr.CrossNodeDataMsgs),
		ratio(bl.CrossNodeCtrlMsgs, fr.CrossNodeCtrlMsgs),
		ratio(bl.CrossNodeMsgs, fr.CrossNodeMsgs),
		ratio(bl.CrossNodeBytes, fr.CrossNodeBytes))
	t.Metric("bytes-reduction", float64(bl.CrossNodeBytes)/float64(fr.CrossNodeBytes))
	t.Metric("datamsg-reduction", float64(bl.CrossNodeDataMsgs)/float64(fr.CrossNodeDataMsgs))
	t.Metric("msg-reduction", float64(bl.CrossNodeMsgs)/float64(fr.CrossNodeMsgs))
	t.Note("paper (Figure 2 analysis): 2.5x fewer data transfers, 1.6x fewer messages; §1: 3x traffic reduction")
	t.Note("FractOS control counts include per-use owner validations and acks, which the paper's")
	t.Note("schematic message count omits; bulk-data and byte reductions are the like-for-like metrics")
	t.Note("the ring row writes verdicts to the output SSD (Figure 2 verbatim), including a read-back check;")
	t.Note("a baseline doing the same would add an NFS write (+2 messages, +verdict bytes)")
	return t
}

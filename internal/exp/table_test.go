package exp

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("t1", "demo", "a", "long-column")
	tb.AddRow("1", "2")
	tb.AddRow("wide-value", "3")
	tb.Note("a note with %d", 42)
	tb.Metric("m", 1.5)

	var b strings.Builder
	tb.Print(&b)
	out := b.String()
	for _, want := range []string{"t1", "demo", "long-column", "wide-value", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tb.Metrics["t1.m"] != 1.5 {
		t.Errorf("metric namespacing broken: %v", tb.Metrics)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t2", "csv demo", "x", "y")
	tb.AddRow("plain", `has,comma`)
	tb.AddRow(`has"quote`, "b")
	var b strings.Builder
	tb.WriteCSV(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `plain,"has,comma"` {
		t.Errorf("comma escaping: %q", lines[1])
	}
	if lines[2] != `"has""quote",b` {
		t.Errorf("quote escaping: %q", lines[2])
	}
}

func TestFindExperiments(t *testing.T) {
	if _, ok := Find("fig5"); !ok {
		t.Error("fig5 not found")
	}
	if _, ok := Find("nonexistent"); ok {
		t.Error("nonexistent experiment found")
	}
	// Every listed experiment has a distinct id and a runner.
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.ID] {
			t.Errorf("duplicate experiment id %q", s.ID)
		}
		seen[s.ID] = true
		if s.Run == nil || s.Title == "" {
			t.Errorf("experiment %q incomplete", s.ID)
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		1:       "1B",
		512:     "512B",
		1 << 10: "1K",
		4 << 10: "4K",
		1 << 20: "1M",
		5 << 20: "5M",
		1500:    "1500B",
	}
	for n, want := range cases {
		if got := sizeLabel(n); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

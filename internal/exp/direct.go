package exp

import (
	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/sim"
)

// AblationDirectComposition compares the three storage interfaces the
// FractOS mechanisms enable, for random reads:
//
//   - FS: fully mediated (two data transfers per read);
//   - Direct: per-request dynamic composition — the FS refines its
//     block Request with the client's buffer and continuation, the
//     block device answers the client (one transfer, FS still on the
//     per-request control path);
//   - DAX: standing leases — the FS is contacted only at open (one
//     transfer, no per-request FS involvement).
//
// This isolates how much of DAX's win comes from the data path versus
// the control path.
func AblationDirectComposition() *Table {
	t := NewTable("abl-direct", "Storage interface ablation: random read latency (µs)",
		"size", "FS (mediated)", "Direct (composed)", "DAX (leases)")
	for _, size := range []uint64{4 << 10, 64 << 10, 256 << 10} {
		fsLat := storLatency(storFS, size, false)
		direct := storDirectLatency(size)
		dax := storLatency(storDAX, size, false)
		t.AddRow(sizeLabel(int(size)), usec(fsLat), usec(direct), usec(dax))
		if size == 64<<10 {
			t.Metric("fs-us", float64(fsLat)/1e3)
			t.Metric("direct-us", float64(direct)/1e3)
			t.Metric("dax-us", float64(dax)/1e3)
		}
	}
	t.Note("Direct removes the data staging; DAX additionally removes the FS from per-request control")
	return t
}

// storDirectLatency measures DirectReadAt on the FractOS stack.
func storDirectLatency(size uint64) sim.Time {
	var avg sim.Time
	runOn(core.ClusterConfig{Nodes: 3}, func(tk *sim.Task, cl *core.Cluster) {
		st := buildStorStack(tk, cl, storFS, false)
		mem := st.buf(tk, size)
		const k = 6
		offs := randOffsets(k, size, 77)
		start := tk.Now()
		for _, off := range offs {
			if err := st.file.DirectReadAt(tk, off, size, mem); err != nil {
				assert.NoErr(err, "exp/direct")
			}
		}
		avg = (tk.Now() - start) / k
	})
	return avg
}

package exp

import (
	"fractos/internal/assert"
	"fractos/internal/core"
	"fractos/internal/load"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// AblationDirectComposition compares the three storage interfaces the
// FractOS mechanisms enable, for random reads:
//
//   - FS: fully mediated (two data transfers per read);
//   - Direct: per-request dynamic composition — the FS refines its
//     block Request with the client's buffer and continuation, the
//     block device answers the client (one transfer, FS still on the
//     per-request control path);
//   - DAX: standing leases — the FS is contacted only at open (one
//     transfer, no per-request FS involvement).
//
// This isolates how much of DAX's win comes from the data path versus
// the control path.
func AblationDirectComposition() *Table {
	t := NewTable("abl-direct", "Storage interface ablation: random read latency (µs)",
		"size", "FS (mediated)", "Direct (composed)", "DAX (leases)")
	for _, size := range []uint64{4 << 10, 64 << 10, 256 << 10} {
		fsLat := storLatency(stacks.StorFS, size, false)
		direct := storDirectLatency(size)
		dax := storLatency(stacks.StorDAX, size, false)
		t.AddRow(sizeLabel(int(size)), usec(fsLat), usec(direct), usec(dax))
		if size == 64<<10 {
			t.Metric("fs-us", float64(fsLat)/1e3)
			t.Metric("direct-us", float64(direct)/1e3)
			t.Metric("dax-us", float64(dax)/1e3)
		}
	}
	t.Note("Direct removes the data staging; DAX additionally removes the FS from per-request control")
	return t
}

// storDirectLatency measures DirectReadAt on the FractOS stack.
func storDirectLatency(size uint64) sim.Time {
	var avg sim.Time
	stor := &stacks.Storage{Kind: stacks.StorFS}
	testbed.Run(specFor(core.ClusterConfig{Nodes: 3}, stor),
		func(tk *sim.Task, d *testbed.Deployment) {
			mem := stor.Buf(tk, size)
			const k = 6
			offs := randOffsets(k, size, 77)
			st := load.Closed{Clients: 1, PerClient: k}.Run(tk, func(t *sim.Task, _, seq int) error {
				return stor.File.DirectReadAt(t, offs[seq], size, mem)
			})
			if st.Errors > 0 {
				assert.Failf("exp/direct: %d of %d direct reads failed", st.Errors, k)
			}
			avg = st.Elapsed() / k
		})
	return avg
}

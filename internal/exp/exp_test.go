package exp

import (
	"os"
	"strings"
	"testing"
)

// TestTable3Calibration checks the null-op latencies against the
// paper's Table 3 within 10%.
func TestTable3Calibration(t *testing.T) {
	tb := Table3()
	if got := tb.Metrics["table3.null-cpu-us"]; got < 2.7 || got > 3.3 {
		t.Errorf("null @CPU = %.2fµs, paper 3.00µs", got)
	}
	if got := tb.Metrics["table3.null-snic-us"]; got < 4.0 || got > 5.0 {
		t.Errorf("null @sNIC = %.2fµs, paper 4.50µs", got)
	}
}

// TestFigure5Shape checks the memory-copy results: small copies are
// far slower than raw RDMA; sNIC slower than CPU; large copies reach
// most of line rate.
func TestFigure5Shape(t *testing.T) {
	tb := Figure5()
	cpu := tb.Metrics["fig5.copy1b-cpu-us"]
	snic := tb.Metrics["fig5.copy1b-snic-us"]
	rdma := tb.Metrics["fig5.copy1b-rdma-us"]
	if !(rdma < cpu && cpu < snic) {
		t.Errorf("1B latency order wrong: rdma=%.1f cpu=%.1f snic=%.1f", rdma, cpu, snic)
	}
	if cpu < 9 || cpu > 17 {
		t.Errorf("1B copy @CPU = %.1fµs, paper 12.7µs", cpu)
	}
	if snic < 18 || snic > 31 {
		t.Errorf("1B copy @sNIC = %.1fµs, paper 24.5µs", snic)
	}
	// §6.1: full throughput at 256 KiB (double buffering).
	if mb := tb.Metrics["fig5.copy256k-cpu-mbps"]; mb < 0.7*tb.Metrics["fig5.copy256k-rdma-mbps"] {
		t.Errorf("256K copy = %.0f MB/s, want near raw RDMA %.0f", mb, tb.Metrics["fig5.copy256k-rdma-mbps"])
	}
}

// TestFigure7Shape: individual revocation is linear, shared-tree
// revocation is flat.
func TestFigure7Shape(t *testing.T) {
	tb := Figure7()
	ind := tb.Metrics["fig7.revoke8-individual-us"]
	shared := tb.Metrics["fig7.revoke8-shared-us"]
	if ind < 4*shared {
		t.Errorf("revoking 8 individual leases (%.1fµs) should be ≫ shared tree (%.1fµs)", ind, shared)
	}
}

// TestFigure8Shape: fast-star beats star on large transfers; chain
// beats fast-star on small ones.
func TestFigure8Shape(t *testing.T) {
	tb := Figure8()
	if r := tb.Metrics["fig8.star-over-fast-64k"]; r < 1.3 {
		t.Errorf("star/fast-star at 64K = %.2fx, paper ~1.6x", r)
	}
	if r := tb.Metrics["fig8.fast-over-chain-4k"]; r < 1.2 {
		t.Errorf("fast-star/chain at 4K = %.2fx, paper ~1.45x", r)
	}
}

// TestFigure2Shape: the headline traffic reduction.
func TestFigure2Shape(t *testing.T) {
	tb := Figure2()
	if r := tb.Metrics["fig2.bytes-reduction"]; r < 2.0 {
		t.Errorf("byte reduction = %.2fx, paper ~3x", r)
	}
	if r := tb.Metrics["fig2.datamsg-reduction"]; r < 1.5 {
		t.Errorf("data-transfer reduction = %.2fx, paper ~2.5x", r)
	}
	tb.Print(os.Stderr)
}

// TestFigure12Shape: end-to-end speedup.
func TestFigure12Shape(t *testing.T) {
	tb := Figure12()
	if s := tb.Metrics["fig12.speedup32"]; s < 1.3 {
		t.Errorf("end-to-end speedup = %.2fx, paper ~1.47x", s)
	}
	tb.Print(os.Stderr)
}

// TestAllExperimentsRun executes every registered experiment once and
// checks the tables render.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			tb := s.Run()
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", s.ID)
			}
			var b strings.Builder
			tb.Print(&b)
			if !strings.Contains(b.String(), s.ID) {
				t.Errorf("%s table did not render", s.ID)
			}
		})
	}
}

// TestMessageComplexityMatchesAnalysis: the measured star/chain
// service-message ratio tracks §2.1's analytic 2N/(N+1).
func TestMessageComplexityMatchesAnalysis(t *testing.T) {
	tb := AblationMessageComplexity()
	ratio := tb.Metrics["abl-msgs.ratio8"]
	analytic := 16.0 / 9.0
	if ratio < analytic*0.9 || ratio > analytic*1.1 {
		t.Errorf("star/chain message ratio = %.2f, analytic %.2f", ratio, analytic)
	}
}

// TestScalingRouteShape pins the replicated-service routing gates:
// feedback routing beats blind round-robin on the p99 tail at 10x the
// single-replica knee, admission control keeps the accepted-request
// tail bounded at 100x overload, and the autoscaler repairs a node
// flap with a measurable virtual-time MTTR.
func TestScalingRouteShape(t *testing.T) {
	tb := ScalingRoute()
	least10, rr10 := tb.Metrics["scaling-route.p99-least-10x-ms"], tb.Metrics["scaling-route.p99-rr-10x-ms"]
	if least10 <= 0 || rr10 <= 0 || least10 >= rr10 {
		t.Errorf("p99 at 10x knee: least=%.3fms, rr=%.3fms — least-loaded must beat round-robin", least10, rr10)
	}
	// At 100x overload the offered load is far past capacity; the
	// admission bound (MaxQueue=16 per replica) must keep the accepted
	// requests' p99 within a small multiple of the full-queue service
	// time instead of growing with the run length.
	if p99 := tb.Metrics["scaling-route.p99-least-100x-ms"]; p99 <= 0 || p99 > 40 {
		t.Errorf("p99 at 100x overload = %.3fms, want bounded (<= 40ms)", p99)
	}
	if shed := tb.Metrics["scaling-route.shed-least-100x"]; shed < 0.5 {
		t.Errorf("shed fraction at 100x = %.2f, want most of the overload refused", shed)
	}
	if mttr := tb.Metrics["scaling-route.mttr-ms"]; mttr <= 0 {
		t.Errorf("mttr-ms = %.3f, want > 0 (node flap repaired)", mttr)
	}
}

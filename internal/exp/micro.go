package exp

import (
	"fmt"

	"fractos/internal/assert"
	"fractos/internal/baseline"
	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// rawPingPong measures one round trip of a minimal message between two
// raw fabric endpoints (the ibv_rc_pingpong reference of Table 3).
func rawPingPong(serverDomain fabric.Domain) sim.Time {
	var rtt sim.Time
	runOn(core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		client := baseline.NewPeer(cl.K, cl.Net, "ping", fabric.Location{Node: 0, Domain: fabric.Host})
		server := baseline.NewPeer(cl.K, cl.Net, "pong", fabric.Location{Node: 0, Domain: serverDomain})
		cl.K.Spawn("server", func(st *sim.Task) {
			for {
				req, ok := server.Serve(st)
				if !ok {
					return
				}
				server.Reply(st, req, nil, false)
			}
		})
		start := tk.Now()
		if _, err := client.Call(tk, server.EP.ID, 1, nil, false); err != nil {
			assert.NoErr(err, "exp/micro")
		}
		rtt = tk.Now() - start
	})
	return rtt
}

// nullOpLatency measures the FractOS null syscall under a placement.
func nullOpLatency(p core.Placement) sim.Time {
	var lat sim.Time
	runOn(core.ClusterConfig{Nodes: 1, Placement: p}, func(tk *sim.Task, cl *core.Cluster) {
		app := proc.Attach(cl, 0, "app", 0)
		start := tk.Now()
		if err := app.Null(tk); err != nil {
			assert.NoErr(err, "exp/micro")
		}
		lat = tk.Now() - start
	})
	return lat
}

// Table3 regenerates the null-operation latency table.
//
// Paper: raw loopback 2.42 µs (CPU) / 3.68 µs (sNIC); FractOS 3.00 µs
// (CPU) / 4.50 µs (sNIC).
func Table3() *Table {
	t := NewTable("table3", "Latency of a null FractOS operation vs raw loopback (µs)",
		"configuration", "latency (µs)", "paper (µs)")
	rawCPU := rawPingPong(fabric.Host)
	rawSNIC := rawPingPong(fabric.SNIC)
	nullCPU := nullOpLatency(core.CtrlOnCPU)
	nullSNIC := nullOpLatency(core.CtrlOnSNIC)
	t.AddRow("Raw loopback w/ server @ CPU", usec(rawCPU), "2.42")
	t.AddRow("Raw loopback w/ server @ sNIC", usec(rawSNIC), "3.68")
	t.AddRow("FractOS @ CPU", usec(nullCPU), "3.00")
	t.AddRow("FractOS @ sNIC", usec(nullSNIC), "4.50")
	t.Metric("null-cpu-us", float64(nullCPU)/1e3)
	t.Metric("null-snic-us", float64(nullSNIC)/1e3)
	return t
}

// copySizes are the transfer sizes swept in Figure 5.
var copySizes = []int{1, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// measureCopy times a single cross-node memory_copy under a placement.
func measureCopy(p core.Placement, hw bool, size int) sim.Time {
	var lat sim.Time
	cfg := core.ClusterConfig{Nodes: 2, Placement: p}
	cfg.Ctrl.HWCopies = hw
	runOn(cfg, func(tk *sim.Task, cl *core.Cluster) {
		src := proc.Attach(cl, 0, "src", size)
		dst := proc.Attach(cl, 1, "dst", size)
		srcCap, err := src.MemoryCreate(tk, 0, uint64(size), cap.MemRights)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		dstCapD, err := dst.MemoryCreate(tk, 0, uint64(size), cap.MemRights)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		dstCap, err := proc.GrantCap(dst, dstCapD, src)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		start := tk.Now()
		if err := src.MemoryCopy(tk, srcCap, dstCap); err != nil {
			assert.NoErr(err, "exp/micro")
		}
		lat = tk.Now() - start
	})
	return lat
}

// measureRawRDMA times a direct one-sided RDMA read between nodes —
// the best possible baseline of Figure 5 (§6.1 quotes 3.3 µs for 1 B).
func measureRawRDMA(size int) sim.Time {
	var lat sim.Time
	runOn(core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		a := cl.Net.Attach("rdma-a", fabric.Location{Node: 0, Domain: fabric.Host}, size)
		b := cl.Net.Attach("rdma-b", fabric.Location{Node: 1, Domain: fabric.Host}, size)
		start := tk.Now()
		if _, err := cl.Net.RDMARead(a.ID, 0, b.ID, 0, size).Wait(tk); err != nil {
			assert.NoErr(err, "exp/micro")
		}
		lat = tk.Now() - start
	})
	return lat
}

// Figure5 regenerates the single-transfer memory_copy throughput plot.
//
// Paper shape: raw RDMA >> FractOS for small sizes (1 B: 3.3 µs vs
// 12.7 µs CPU / 24.5 µs sNIC); double buffering closes the gap, full
// line rate by 256 KiB; "HW copies" (third-party RDMA) recovers raw
// performance even through the Controller.
func Figure5() *Table {
	t := NewTable("fig5", "Throughput of a single cross-node transfer (MB/s)",
		"size", "raw RDMA", "FractOS@CPU", "FractOS@sNIC", "HW copies")
	for _, size := range copySizes {
		raw := measureRawRDMA(size)
		cpu := measureCopy(core.CtrlOnCPU, false, size)
		snic := measureCopy(core.CtrlOnSNIC, false, size)
		hw := measureCopy(core.CtrlOnCPU, true, size)
		t.AddRow(sizeLabel(size), mbps(size, raw), mbps(size, cpu), mbps(size, snic), mbps(size, hw))
		if size == 1 {
			t.Note("1B latency: raw=%sµs cpu=%sµs snic=%sµs (paper: 3.3 / 12.7 / 24.5)",
				usec(raw), usec(cpu), usec(snic))
			t.Metric("copy1b-cpu-us", float64(cpu)/1e3)
			t.Metric("copy1b-snic-us", float64(snic)/1e3)
			t.Metric("copy1b-rdma-us", float64(raw)/1e3)
		}
		if size == 256<<10 {
			t.Metric("copy256k-cpu-mbps", mbpsVal(size, cpu))
			t.Metric("copy256k-rdma-mbps", mbpsVal(size, raw))
		}
	}
	return t
}

// invokeSizes are the argument sizes swept in Figure 6.
var invokeSizes = []int{8, 1 << 10, 16 << 10, 64 << 10}

// measureRPC times a two-way Request invocation with an argument
// payload, Requests exchanged ahead of time (as in §6.1).
func measureRPC(p core.Placement, nodes int, argSize int, nCaps int) sim.Time {
	var lat sim.Time
	cfg := core.ClusterConfig{Nodes: nodes, Placement: p}
	runOn(cfg, func(tk *sim.Task, cl *core.Cluster) {
		srvNode := 0
		if nodes > 1 {
			srvNode = 1
		}
		srv := proc.Attach(cl, srvNode, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 4096)
		req, err := srv.RequestCreate(tk, 1, nil, nil)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		creq, err := proc.GrantCap(srv, req, cli)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		// Pre-created reply Request (slot 15) and delegated caps.
		reply, replyTag, err := cli.ReplyRequest(tk)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		var capArgs []proc.Arg
		for i := 0; i < nCaps; i++ {
			m, err := cli.MemoryCreate(tk, uint64(i*64), 64, cap.MemRights)
			if err != nil {
				assert.NoErr(err, "exp/micro")
			}
			capArgs = append(capArgs, proc.Arg{Slot: uint16(i), Cap: m})
		}
		capArgs = append(capArgs, proc.Arg{Slot: 15, Cap: reply})
		payload := make([]byte, argSize)

		cl.K.Spawn("srv-loop", func(st *sim.Task) {
			for {
				d, ok := srv.Receive(st)
				if !ok {
					return
				}
				rep, _ := d.Cap(15)
				if err := srv.Invoke(st, rep, nil, nil); err != nil {
					assert.NoErr(err, "exp/micro")
				}
				d.Done()
			}
		})

		start := tk.Now()
		d, err := cli.CallWith(tk, creq,
			[]wire.ImmArg{proc.BytesArg(0, payload)}, capArgs, replyTag)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		_ = d
		lat = tk.Now() - start
	})
	return lat
}

// Figure6 regenerates the Request-invocation latency plot.
//
// Paper: CPU deployment adds 1.41 µs handling both ways; crossing
// Controllers adds 4.41 µs more; sNIC adds 5.11 µs and 12.21 µs
// respectively; large immediate arguments cost memory-copy-like time.
func Figure6() *Table {
	t := NewTable("fig6", "Two-way Request invocation latency (µs)",
		"args", "CPU 1x", "CPU 2x", "sNIC 1x", "sNIC 2x")
	for _, size := range invokeSizes {
		c1 := measureRPC(core.CtrlOnCPU, 1, size, 0)
		c2 := measureRPC(core.CtrlOnCPU, 2, size, 0)
		s1 := measureRPC(core.CtrlOnSNIC, 1, size, 0)
		s2 := measureRPC(core.CtrlOnSNIC, 2, size, 0)
		t.AddRow(sizeLabel(size), usec(c1), usec(c2), usec(s1), usec(s2))
		if size == 8 {
			t.Metric("rpc8-cpu1x-us", float64(c1)/1e3)
			t.Metric("rpc8-cpu2x-us", float64(c2)/1e3)
			t.Metric("rpc8-snic2x-us", float64(s2)/1e3)
		}
	}
	t.Note("paper deltas: +1.41µs CPU handling, +4.41µs cross-controller; sNIC +5.11/+12.21µs")
	return t
}

// revocationTime measures revoking n delegated capabilities, either
// each with its own revocation-tree entry (selective, linear cost) or
// all behind one shared entry (one revocation total).
func revocationTime(n int, sharedTree bool) sim.Time {
	var lat sim.Time
	runOn(core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		owner := proc.Attach(cl, 0, "owner", 4096)
		holder := proc.Attach(cl, 1, "holder", 0)
		base, err := owner.MemoryCreate(tk, 0, 4096, cap.MemRights)
		if err != nil {
			assert.NoErr(err, "exp/micro")
		}
		var leases []proc.Cap
		if sharedTree {
			one, err := owner.Revtree(tk, base)
			if err != nil {
				assert.NoErr(err, "exp/micro")
			}
			for i := 0; i < n; i++ {
				if _, err := proc.GrantCap(owner, one, holder); err != nil {
					assert.NoErr(err, "exp/micro")
				}
			}
			leases = []proc.Cap{one}
		} else {
			for i := 0; i < n; i++ {
				lease, err := owner.Revtree(tk, base)
				if err != nil {
					assert.NoErr(err, "exp/micro")
				}
				if _, err := proc.GrantCap(owner, lease, holder); err != nil {
					assert.NoErr(err, "exp/micro")
				}
				leases = append(leases, lease)
			}
		}
		start := tk.Now()
		for _, l := range leases {
			if err := owner.Revoke(tk, l); err != nil {
				assert.NoErr(err, "exp/micro")
			}
		}
		lat = tk.Now() - start
	})
	return lat
}

// Figure7 regenerates the delegation and revocation plots.
func Figure7() *Table {
	t := NewTable("fig7", "Capability delegation (RPC+caps) and revocation (µs)",
		"n", "deleg CPU", "deleg sNIC", "revoke 1revtree/cap", "revoke shared revtree")
	base := measureRPC(core.CtrlOnCPU, 2, 8, 0)
	baseS := measureRPC(core.CtrlOnSNIC, 2, 8, 0)
	for _, n := range []int{1, 2, 4, 8} {
		dc := measureRPC(core.CtrlOnCPU, 2, 8, n)
		ds := measureRPC(core.CtrlOnSNIC, 2, 8, n)
		rv := revocationTime(n, false)
		rs := revocationTime(n, true)
		t.AddRow(fmt.Sprint(n), usec(dc), usec(ds), usec(rv), usec(rs))
		if n == 1 {
			t.Metric("deleg1-cpu-us", float64(dc-base)/1e3)
			t.Metric("deleg1-snic-us", float64(ds-baseS)/1e3)
		}
		if n == 8 {
			t.Metric("revoke8-individual-us", float64(rv)/1e3)
			t.Metric("revoke8-shared-us", float64(rs)/1e3)
		}
	}
	t.Note("per-cap delegation slope (paper: ~2.4µs CPU, ~3.8µs sNIC per capability)")
	t.Note("individual revocation is linear in n; the shared revocation tree is flat (§6.1)")
	return t
}

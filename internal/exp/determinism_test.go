package exp

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fractos/internal/app/faceverify"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// TestSystemDeterminism runs full-stack experiments twice and requires
// bit-identical metrics: the whole system — kernel, fabric,
// Controllers, services, applications — is a deterministic function of
// its configuration.
func TestSystemDeterminism(t *testing.T) {
	cases := []func() *Table{Table3, Figure2, Figure8, AblationPlacement}
	for _, mk := range cases {
		a := mk()
		b := mk()
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("%s metrics differ across runs:\n%v\n%v", a.ID, a.Metrics, b.Metrics)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Errorf("%s rows differ across runs", a.ID)
		}
	}
}

// captureTrace runs a workload on a fresh testbed with the fabric
// trace hook installed and returns the rendered event log: one line
// per transfer, in delivery order, covering timestamps, endpoints,
// message types, sizes, and classes. Two runs of the same workload
// must produce byte-identical logs. Services are deployed before the
// trace hook installs, so the log covers the workload only.
func captureTrace(t *testing.T, spec testbed.Spec, run func(tk *sim.Task, d *testbed.Deployment)) string {
	t.Helper()
	var b strings.Builder
	testbed.RunT(t, spec, func(tk *sim.Task, d *testbed.Deployment) {
		d.Net().SetTrace(func(e fabric.TraceEvent) {
			fmt.Fprintf(&b, "%d %d>%d type=%d rdma=%v bytes=%d class=%d\n",
				e.At, e.From, e.To, e.Type, e.RDMA, e.Bytes, e.Class)
		})
		run(tk, d)
	})
	if b.Len() == 0 {
		t.Fatal("trace capture saw no fabric transfers")
	}
	return b.String()
}

// diffTraces reports the first line where two event logs diverge.
func diffTraces(t *testing.T, name, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			t.Errorf("%s traces diverge at event %d:\n run A: %s\n run B: %s", name, i, la[i], lb[i])
			return
		}
	}
	t.Errorf("%s traces diverge in length: %d vs %d events", name, len(la), len(lb))
}

// TestTraceDeterminism replays two end-to-end workloads — the §6.2
// multi-stage pipeline in all three composition models, and the
// face-verification application — and requires the complete fabric
// event stream (every message and RDMA transfer, with virtual
// timestamps) to be byte-identical across runs.
func TestTraceDeterminism(t *testing.T) {
	pipelineRun := func(tk *sim.Task, d *testbed.Deployment) {
		pl := newPipeline(tk, d.Cl, 4, 4<<10)
		pl.runStar(tk)
		pl.runFastStar(tk)
		pl.runChain(tk)
	}
	cfg := faceverify.Config{Batch: 8, Files: 2, Slots: 1}
	appWorkload := func(fv *stacks.FaceVerify) func(tk *sim.Task, d *testbed.Deployment) {
		return func(tk *sim.Task, d *testbed.Deployment) {
			rng := newRand(5)
			for i := 0; i < cfg.Files; i++ {
				r := faceverify.MakeRequest(fv.DB, i, cfg.Batch, rng)
				out, err := fv.Verify(tk, r)
				if err != nil {
					t.Errorf("faceverify request %d: %v", i, err)
					return
				}
				if !r.CheckResults(out) {
					t.Errorf("faceverify request %d: wrong verdicts", i)
				}
			}
		}
	}

	type workload struct {
		name string
		mk   func() (testbed.Spec, func(tk *sim.Task, d *testbed.Deployment))
	}
	workloads := []workload{
		{"pipeline", func() (testbed.Spec, func(tk *sim.Task, d *testbed.Deployment)) {
			return testbed.Spec{Nodes: 5}, pipelineRun
		}},
		{"faceverify", func() (testbed.Spec, func(tk *sim.Task, d *testbed.Deployment)) {
			fv := &stacks.FaceVerify{Cfg: cfg}
			return testbed.Spec{Nodes: 4, Placement: core.CtrlOnSNIC,
				Services: []testbed.Service{fv}}, appWorkload(fv)
		}},
	}
	for _, w := range workloads {
		specA, runA := w.mk()
		a := captureTrace(t, specA, runA)
		specB, runB := w.mk()
		b := captureTrace(t, specB, runB)
		diffTraces(t, w.name, a, b)
	}
}

// TestShardMatrixDeterminism is the acceptance matrix for the
// partition-parallel kernel: every experiment that goes through the
// testbed must produce byte-identical fabric traces, identical result
// tables, and an identical event count whether it runs on the classic
// single kernel or under a multi-shard engine, at any GOMAXPROCS.
// The cluster workload stays shard-0-resident (Spec.Shards doc), so
// the multi-shard runs exercise the conservative windowing machinery —
// window bounds, barrier scans, inline single-shard dispatch — without
// changing the schedule.
func TestShardMatrixDeterminism(t *testing.T) {
	cfg := faceverify.Config{Batch: 8, Files: 2, Slots: 1}
	fvTrace := func() string {
		fv := &stacks.FaceVerify{Cfg: cfg}
		spec := testbed.Spec{Nodes: 4, Placement: core.CtrlOnSNIC,
			Services: []testbed.Service{fv}}
		return captureTrace(t, spec, func(tk *sim.Task, d *testbed.Deployment) {
			rng := newRand(5)
			for i := 0; i < cfg.Files; i++ {
				r := faceverify.MakeRequest(fv.DB, i, cfg.Batch, rng)
				if _, err := fv.Verify(tk, r); err != nil {
					t.Errorf("faceverify request %d: %v", i, err)
					return
				}
			}
		})
	}
	plTrace := func() string {
		return captureTrace(t, testbed.Spec{Nodes: 5}, func(tk *sim.Task, d *testbed.Deployment) {
			pl := newPipeline(tk, d.Cl, 4, 4<<10)
			pl.runStar(tk)
			pl.runFastStar(tk)
			pl.runChain(tk)
		})
	}

	type snapshot struct {
		fvTrace, plTrace string
		figure8, chaos   *Table
		events           uint64
	}
	capture := func() snapshot {
		var s snapshot
		e0 := sim.TotalEvents()
		s.fvTrace = fvTrace()
		s.plTrace = plTrace()
		s.figure8 = Figure8()
		s.chaos = ChaosFaceVerify()
		s.events = sim.TotalEvents() - e0
		return s
	}

	base := capture() // shards=1, ambient GOMAXPROCS
	for _, shards := range []int{1, 2, 4} {
		for _, procs := range []int{1, 4} {
			oldShards := testbed.SetDefaultShards(shards)
			oldProcs := runtime.GOMAXPROCS(procs)
			got := capture()
			runtime.GOMAXPROCS(oldProcs)
			testbed.SetDefaultShards(oldShards)

			name := fmt.Sprintf("shards=%d procs=%d", shards, procs)
			diffTraces(t, name+" faceverify", base.fvTrace, got.fvTrace)
			diffTraces(t, name+" pipeline", base.plTrace, got.plTrace)
			if !reflect.DeepEqual(base.figure8.Rows, got.figure8.Rows) ||
				!reflect.DeepEqual(base.figure8.Metrics, got.figure8.Metrics) {
				t.Errorf("%s: figure8 results differ from single-shard run", name)
			}
			if !reflect.DeepEqual(base.chaos.Rows, got.chaos.Rows) ||
				!reflect.DeepEqual(base.chaos.Metrics, got.chaos.Metrics) {
				t.Errorf("%s: chaos-fv results differ from single-shard run", name)
			}
			if got.events != base.events {
				t.Errorf("%s: processed %d events, single-shard run processed %d",
					name, got.events, base.events)
			}
		}
	}
}

package exp

import (
	"reflect"
	"testing"
)

// TestSystemDeterminism runs full-stack experiments twice and requires
// bit-identical metrics: the whole system — kernel, fabric,
// Controllers, services, applications — is a deterministic function of
// its configuration.
func TestSystemDeterminism(t *testing.T) {
	cases := []func() *Table{Table3, Figure2, AblationPlacement}
	for _, mk := range cases {
		a := mk()
		b := mk()
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("%s metrics differ across runs:\n%v\n%v", a.ID, a.Metrics, b.Metrics)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Errorf("%s rows differ across runs", a.ID)
		}
	}
}

package exp

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fractos/internal/app/faceverify"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// TestSystemDeterminism runs full-stack experiments twice and requires
// bit-identical metrics: the whole system — kernel, fabric,
// Controllers, services, applications — is a deterministic function of
// its configuration.
func TestSystemDeterminism(t *testing.T) {
	cases := []func() *Table{Table3, Figure2, Figure8, AblationPlacement}
	for _, mk := range cases {
		a := mk()
		b := mk()
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("%s metrics differ across runs:\n%v\n%v", a.ID, a.Metrics, b.Metrics)
		}
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Errorf("%s rows differ across runs", a.ID)
		}
	}
}

// captureTrace runs a workload on a fresh testbed with the fabric
// trace hook installed and returns the rendered event log: one line
// per transfer, in delivery order, covering timestamps, endpoints,
// message types, sizes, and classes. Two runs of the same workload
// must produce byte-identical logs. Services are deployed before the
// trace hook installs, so the log covers the workload only.
func captureTrace(t *testing.T, spec testbed.Spec, run func(tk *sim.Task, d *testbed.Deployment)) string {
	t.Helper()
	var b strings.Builder
	testbed.RunT(t, spec, func(tk *sim.Task, d *testbed.Deployment) {
		d.Net().SetTrace(func(e fabric.TraceEvent) {
			fmt.Fprintf(&b, "%d %d>%d type=%d rdma=%v bytes=%d class=%d\n",
				e.At, e.From, e.To, e.Type, e.RDMA, e.Bytes, e.Class)
		})
		run(tk, d)
	})
	if b.Len() == 0 {
		t.Fatal("trace capture saw no fabric transfers")
	}
	return b.String()
}

// diffTraces reports the first line where two event logs diverge.
func diffTraces(t *testing.T, name, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			t.Errorf("%s traces diverge at event %d:\n run A: %s\n run B: %s", name, i, la[i], lb[i])
			return
		}
	}
	t.Errorf("%s traces diverge in length: %d vs %d events", name, len(la), len(lb))
}

// TestTraceDeterminism replays two end-to-end workloads — the §6.2
// multi-stage pipeline in all three composition models, and the
// face-verification application — and requires the complete fabric
// event stream (every message and RDMA transfer, with virtual
// timestamps) to be byte-identical across runs.
func TestTraceDeterminism(t *testing.T) {
	pipelineRun := func(tk *sim.Task, d *testbed.Deployment) {
		pl := newPipeline(tk, d.Cl, 4, 4<<10)
		pl.runStar(tk)
		pl.runFastStar(tk)
		pl.runChain(tk)
	}
	cfg := faceverify.Config{Batch: 8, Files: 2, Slots: 1}
	appWorkload := func(fv *stacks.FaceVerify) func(tk *sim.Task, d *testbed.Deployment) {
		return func(tk *sim.Task, d *testbed.Deployment) {
			rng := newRand(5)
			for i := 0; i < cfg.Files; i++ {
				r := faceverify.MakeRequest(fv.DB, i, cfg.Batch, rng)
				out, err := fv.Verify(tk, r)
				if err != nil {
					t.Errorf("faceverify request %d: %v", i, err)
					return
				}
				if !r.CheckResults(out) {
					t.Errorf("faceverify request %d: wrong verdicts", i)
				}
			}
		}
	}

	type workload struct {
		name string
		mk   func() (testbed.Spec, func(tk *sim.Task, d *testbed.Deployment))
	}
	workloads := []workload{
		{"pipeline", func() (testbed.Spec, func(tk *sim.Task, d *testbed.Deployment)) {
			return testbed.Spec{Nodes: 5}, pipelineRun
		}},
		{"faceverify", func() (testbed.Spec, func(tk *sim.Task, d *testbed.Deployment)) {
			fv := &stacks.FaceVerify{Cfg: cfg}
			return testbed.Spec{Nodes: 4, Placement: core.CtrlOnSNIC,
				Services: []testbed.Service{fv}}, appWorkload(fv)
		}},
	}
	for _, w := range workloads {
		specA, runA := w.mk()
		a := captureTrace(t, specA, runA)
		specB, runB := w.mk()
		b := captureTrace(t, specB, runB)
		diffTraces(t, w.name, a, b)
	}
}

package fs

import (
	"errors"
	"fmt"

	"fractos/internal/device/nvme"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// File is a client-side handle to an open file. In FS mode it holds
// the mediated read/write Requests; in DAX mode it holds the
// block-device leases and drives the device directly.
type File struct {
	p      *proc.Process
	Name   string
	Size   uint64
	Handle uint64
	DAX    bool

	fsRead   proc.Cap
	fsWrite  proc.Cap
	fsReadD  proc.Cap
	fsWriteD proc.Cap

	extSize uint64
	daxRd   []proc.Cap
	daxWr   []proc.Cap

	closeReq proc.Cap
}

// Errors returned by the client library.
var (
	ErrFS     = errors.New("fs: operation failed")
	ErrClosed = errors.New("fs: file closed")
)

func fsErr(code uint64) error {
	if code == StatusOK {
		return nil
	}
	return fmt.Errorf("%w (status %d)", ErrFS, code)
}

// OpenFile opens (or creates) a file through the FS service's Open
// Request.
func OpenFile(t *sim.Task, p *proc.Process, open proc.Cap, name string, mode uint64, sizeHint uint64) (*File, error) {
	imms := []wire.ImmArg{
		proc.U64Arg(0, mode),
		proc.U64Arg(8, uint64(len(name))),
		proc.BytesArg(16, []byte(name)),
	}
	if mode&OpenCreate != 0 {
		imms = append(imms, proc.U64Arg(OpenSizeOff(len(name)), sizeHint))
	}
	d, err := p.Call(t, open, imms, nil, SlotCont)
	if err != nil {
		return nil, err
	}
	if st := d.U64(0); st != StatusOK {
		return nil, fsErr(st)
	}
	f := &File{
		p:       p,
		Name:    name,
		Size:    d.U64(8),
		Handle:  d.U64(32),
		DAX:     mode&OpenDAX != 0,
		extSize: d.U64(24),
	}
	nExt := int(d.U64(16))
	if f.DAX {
		for i := 0; i < nExt; i++ {
			if c, ok := d.Cap(DAXReadSlot(i)); ok {
				f.daxRd = append(f.daxRd, c)
			} else {
				f.daxRd = append(f.daxRd, proc.Cap{})
			}
			if c, ok := d.Cap(DAXWriteSlot(i)); ok {
				f.daxWr = append(f.daxWr, c)
			} else {
				f.daxWr = append(f.daxWr, proc.Cap{})
			}
		}
	} else {
		f.fsRead, _ = d.Cap(SlotFSRead)
		f.fsWrite, _ = d.Cap(SlotFSWrite)
		f.fsReadD, _ = d.Cap(SlotFSReadDirect)
		f.fsWriteD, _ = d.Cap(SlotFSWriteDirect)
	}
	return f, nil
}

// DAXLease returns the raw block-device lease for extent i (write
// selects the write lease). Applications use this to compose the
// storage stack with other services — e.g. pointing a block read at
// GPU memory with a kernel invocation as continuation (Figure 2).
func (f *File) DAXLease(i int, write bool) (proc.Cap, bool) {
	leases := f.daxRd
	if write {
		leases = f.daxWr
	}
	if i < 0 || i >= len(leases) || !leases[i].Valid() {
		return proc.Cap{}, false
	}
	return leases[i], true
}

// DirectWriteReq returns the file's direct-write Request (FS-mode
// opens with write access), for composing the file as the sink of
// another service's output (Figure 2's d edge).
func (f *File) DirectWriteReq() (proc.Cap, bool) {
	return f.fsWriteD, f.fsWriteD.Valid()
}

// DirectReadReq returns the file's direct-read Request.
func (f *File) DirectReadReq() (proc.Cap, bool) {
	return f.fsReadD, f.fsReadD.Valid()
}

// ReadAt reads n bytes at offset into mem (a Memory capability of
// exactly n bytes).
func (f *File) ReadAt(t *sim.Task, off, n uint64, mem proc.Cap) error {
	return f.io(t, off, n, mem, false)
}

// WriteAt writes mem (exactly n bytes) at offset.
func (f *File) WriteAt(t *sim.Task, off, n uint64, mem proc.Cap) error {
	return f.io(t, off, n, mem, true)
}

func (f *File) io(t *sim.Task, off, n uint64, mem proc.Cap, isWrite bool) error {
	if f.p == nil {
		return ErrClosed
	}
	if f.DAX {
		return f.daxIO(t, off, n, mem, isWrite)
	}
	req := f.fsRead
	if isWrite {
		req = f.fsWrite
	}
	if !req.Valid() {
		return fmt.Errorf("%w: not opened for this access", ErrFS)
	}
	d, err := f.p.Call(t, req,
		[]wire.ImmArg{proc.U64Arg(FSImmOff, off), proc.U64Arg(FSImmLen, n)},
		[]proc.Arg{{Slot: SlotData, Cap: mem}}, SlotCont)
	if err != nil {
		return err
	}
	return fsErr(d.U64(0))
}

// daxIO talks straight to the block device, extent by extent (the
// composition the FS enabled by delegating its block leases).
func (f *File) daxIO(t *sim.Task, off, n uint64, mem proc.Cap, isWrite bool) error {
	if off+n > f.Size {
		return fsErr(StatusBounds)
	}
	done := uint64(0)
	for done < n {
		cur := off + done
		ei := int(cur / f.extSize)
		eo := cur % f.extSize
		cn := f.extSize - eo
		if cn > n-done {
			cn = n - done
		}
		leases := f.daxRd
		if isWrite {
			leases = f.daxWr
		}
		if ei >= len(leases) || !leases[ei].Valid() {
			return fmt.Errorf("%w: no DAX lease for extent %d", ErrFS, ei)
		}
		view := mem
		if cn != n {
			var err error
			view, err = f.p.MemoryDiminish(t, mem, done, cn, 0)
			if err != nil {
				return err
			}
		}
		d, err := f.p.Call(t, leases[ei],
			[]wire.ImmArg{proc.U64Arg(nvme.ImmOff, eo), proc.U64Arg(nvme.ImmLen, cn)},
			[]proc.Arg{{Slot: nvme.SlotData, Cap: view}}, nvme.SlotCont)
		if view.ID() != mem.ID() {
			f.p.Drop(t, view)
		}
		if err != nil {
			return err
		}
		if st := d.U64(0); st != 0 {
			return fsErr(StatusIOErr)
		}
		done += cn
	}
	return nil
}

// Close closes the handle via the service's Close Request (obtained on
// demand), revoking DAX leases. openReq is the service's Open... the
// Close Request is derived from the same service; for simplicity the
// client sends TagClose through the Open capability's provider by
// deriving it — the FS exposes Close via the same root. See
// Service.CloseReq.
func (f *File) Close(t *sim.Task, closeReq proc.Cap) error {
	if f.p == nil {
		return ErrClosed
	}
	d, err := f.p.Call(t, closeReq, []wire.ImmArg{proc.U64Arg(8, f.Handle)}, nil, SlotCont)
	if err != nil {
		return err
	}
	f.p = nil
	return fsErr(d.U64(0))
}

package fs

import (
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Dynamic composition (§3.4): besides the fully mediated FS mode and
// the lease-delegating DAX mode, the FS offers *direct* per-request
// operations. The client invokes the FS with its own Memory buffer and
// continuation Request as arguments; the FS refines its block-device
// Request with exactly those arguments and invokes it. The block
// device then moves the data to/from the client and invokes the
// client's continuation itself — the FS drops out of both the data
// path and the response path for that request, without ever revealing
// its block-device capabilities to the client (Figure 2's d→e edges).
const (
	// TagReadDirect: imm[8:16) = file id (preset), [16:24) = offset,
	// [24:32) = length; caps: SlotData = destination Memory,
	// SlotCont = continuation, invoked by the block device with
	// imm[0:8) = status. imm[0:8) is reserved for upstream status, so
	// a direct write can serve as the continuation of a producer
	// (Figure 2's GPU → output storage edge).
	TagReadDirect uint64 = 0x34
	// TagWriteDirect: same, SlotData is the source Memory.
	TagWriteDirect uint64 = 0x35
)

// Reply slots for the direct per-file Requests in an Open reply
// (FS mode).
const (
	SlotFSReadDirect  uint16 = 2
	SlotFSWriteDirect uint16 = 3
)

// ComposableVolume is a Volume whose backend Request can be refined
// with caller-provided arguments — the mechanism behind direct
// operations. Only the FractOS block adaptor supports it.
type ComposableVolume interface {
	Volume
	// InvokeIO invokes the volume's read or write Request with the
	// given data Memory and continuation Request as arguments.
	InvokeIO(t *sim.Task, isWrite bool, off, n uint64, data, cont proc.Cap) error
}

// InvokeIO implements ComposableVolume for the FractOS backend: an
// invoke-time refinement of the per-volume block Request.
func (v *fractosVolume) InvokeIO(t *sim.Task, isWrite bool, off, n uint64, data, cont proc.Cap) error {
	req := v.rd
	if isWrite {
		req = v.wr
	}
	return v.p.Invoke(t, req,
		[]wire.ImmArg{proc.U64Arg(16, off), proc.U64Arg(24, n)},
		[]proc.Arg{{Slot: 0 /* nvme.SlotData */, Cap: data}, {Slot: 1 /* nvme.SlotCont */, Cap: cont}})
}

// handleDirect serves TagReadDirect/TagWriteDirect: compose the
// client's arguments into the block Request and get out of the way.
func (s *Service) handleDirect(t *sim.Task, d *proc.Delivery, isWrite bool) {
	// Upstream-status convention: when this Request is itself a
	// continuation of a failed producer, propagate instead of running.
	if st := d.U64(FSImmStatus); st != 0 {
		s.fail(t, d, st)
		return
	}
	f, ok := s.byID[d.U64(FSImmFile)]
	if !ok {
		s.fail(t, d, StatusNoFile)
		return
	}
	off, n := d.U64(FSImmOff), d.U64(FSImmLen)
	if n == 0 || off+n > f.size {
		s.fail(t, d, StatusBounds)
		return
	}
	// Direct operations must not cross an extent: one block Request
	// serves the whole transfer.
	if off/ExtentSize != (off+n-1)/ExtentSize {
		s.fail(t, d, StatusBadArg)
		return
	}
	ext := f.extents[off/ExtentSize]
	cv, ok := ext.vol.(ComposableVolume)
	if !ok {
		s.fail(t, d, StatusBadMode)
		return
	}
	data, ok1 := d.Cap(SlotData)
	cont, ok2 := d.Cap(SlotCont)
	if !ok1 || !ok2 {
		s.fail(t, d, StatusBadArg)
		return
	}
	if err := cv.InvokeIO(t, isWrite, off%ExtentSize, n, data, cont); err != nil {
		s.fail(t, d, StatusIOErr)
	}
	// No reply from the FS: the block device invokes the client's
	// continuation directly.
}

// DirectReadAt reads through the FS's direct path: the request is
// composed by the FS, but the data and the completion come straight
// from the block device.
func (f *File) DirectReadAt(t *sim.Task, off, n uint64, mem proc.Cap) error {
	return f.direct(t, off, n, mem, false)
}

// DirectWriteAt writes through the FS's direct path.
func (f *File) DirectWriteAt(t *sim.Task, off, n uint64, mem proc.Cap) error {
	return f.direct(t, off, n, mem, true)
}

func (f *File) direct(t *sim.Task, off, n uint64, mem proc.Cap, isWrite bool) error {
	if f.p == nil {
		return ErrClosed
	}
	req := f.fsReadD
	if isWrite {
		req = f.fsWriteD
	}
	if !req.Valid() {
		return ErrFS
	}
	d, err := f.p.Call(t, req,
		[]wire.ImmArg{proc.U64Arg(FSImmOff, off), proc.U64Arg(FSImmLen, n)},
		[]proc.Arg{{Slot: SlotData, Cap: mem}}, SlotCont)
	if err != nil {
		return err
	}
	return fsErr(d.U64(0))
}

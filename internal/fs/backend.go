package fs

import (
	"fractos/internal/device/nvme"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Backend abstracts the block layer underneath the FS service. The
// FractOS stack uses the block-device adaptor through Requests; the
// paper's Disaggregated Baseline (§6.4) plugs the same FS service onto
// an NVMe-oF initiator instead.
type Backend interface {
	// CreateVolume allocates one extent-sized logical volume.
	CreateVolume(t *sim.Task, size uint64) (Volume, error)
}

// Volume is one logical volume (file extent).
type Volume interface {
	// ReadAt fills stage with n bytes at off; returns an FS status.
	ReadAt(t *sim.Task, off, n uint64, stage Stage) uint64
	// WriteAt stores n bytes from stage at off.
	WriteAt(t *sim.Task, off, n uint64, stage Stage) uint64
}

// Stage is an FS staging-buffer view handed to a backend: the Memory
// capability (for Request-based backends) and the raw bytes (for
// kernel-bypass backends that fill the buffer directly).
type Stage struct {
	Cap proc.Cap
	Buf []byte
}

// DAXVolume is a Volume whose backend can delegate direct,
// individually revocable block access to clients — only the FractOS
// block adaptor supports this; it is exactly the capability the
// baselines lack (§6.4).
type DAXVolume interface {
	Volume
	// LeaseRead/LeaseWrite derive fresh revocable leases of the
	// volume's read/write Requests.
	LeaseRead(t *sim.Task) (proc.Cap, error)
	LeaseWrite(t *sim.Task) (proc.Cap, error)
}

// fractosBackend drives the FractOS block-device adaptor.
type fractosBackend struct {
	p         *proc.Process
	volCreate proc.Cap
}

// NewFractOSBackend wires the FS's Process to a block adaptor's
// VolCreate Request (already granted to p).
func NewFractOSBackend(p *proc.Process, volCreate proc.Cap) Backend {
	return &fractosBackend{p: p, volCreate: volCreate}
}

func (b *fractosBackend) CreateVolume(t *sim.Task, size uint64) (Volume, error) {
	reply, err := b.p.Call(t, b.volCreate,
		[]wire.ImmArg{proc.U64Arg(nvme.ImmVol, size)}, nil, nvme.SlotCont)
	if err != nil {
		return nil, err
	}
	if st := reply.U64(0); st != 0 {
		return nil, fsErr(StatusNoSpace)
	}
	rd, ok1 := reply.Cap(nvme.SlotVolRead)
	wr, ok2 := reply.Cap(nvme.SlotVolWrite)
	if !ok1 || !ok2 {
		return nil, fsErr(StatusIOErr)
	}
	return &fractosVolume{p: b.p, rd: rd, wr: wr}, nil
}

type fractosVolume struct {
	p      *proc.Process
	rd, wr proc.Cap
}

func (v *fractosVolume) ReadAt(t *sim.Task, off, n uint64, stage Stage) uint64 {
	return v.call(t, v.rd, off, n, stage)
}

func (v *fractosVolume) WriteAt(t *sim.Task, off, n uint64, stage Stage) uint64 {
	return v.call(t, v.wr, off, n, stage)
}

func (v *fractosVolume) call(t *sim.Task, req proc.Cap, off, n uint64, stage Stage) uint64 {
	reply, err := v.p.Call(t, req,
		[]wire.ImmArg{proc.U64Arg(nvme.ImmOff, off), proc.U64Arg(nvme.ImmLen, n)},
		[]proc.Arg{{Slot: nvme.SlotData, Cap: stage.Cap}}, nvme.SlotCont)
	if err != nil {
		return StatusIOErr
	}
	if reply.U64(0) != 0 {
		return StatusIOErr
	}
	return StatusOK
}

func (v *fractosVolume) LeaseRead(t *sim.Task) (proc.Cap, error)  { return v.p.Revtree(t, v.rd) }
func (v *fractosVolume) LeaseWrite(t *sim.Task) (proc.Cap, error) { return v.p.Revtree(t, v.wr) }

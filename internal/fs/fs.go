// Package fs implements the FractOS storage-stack file system of §5:
// an extent-based FS service layered on the block-device adaptor. Each
// file extent is one logical volume on the NVMe device.
//
// The stack works in two modes:
//
//   - FS mode: all reads and writes are mediated by the FS Process —
//     data is staged through FS memory between the client and the
//     block device (the centralized execution model; two network
//     transfers per operation).
//
//   - DAX mode: opening a file returns the per-extent block-device
//     Requests themselves, wrapped in revocable leases and diminished
//     according to the open mode. Clients then talk to the block
//     device directly, composing across the service boundary without
//     breaking encapsulation (§3.4's dynamic composition; the DAX
//     optimization of Figure 4 and §6.4).
package fs

import (
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/device/nvme"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// FS service Request tags and argument conventions.
const (
	// TagOpen opens (or creates) a file.
	// imm[0:8) = mode flags, [8:16) = name length, [16:16+len) = name,
	// and for creates [16+len … ) an 8-byte-aligned uint64 size hint
	// is optional via OpenSizeOff; caps: SlotCont = reply.
	//
	// Reply: imm[0:8) = status, [8:16) = file size, [16:24) = extent
	// count, [24:32) = extent size, [32:40) = open handle.
	// FS mode caps: SlotFSRead / SlotFSWrite (per the open mode).
	// DAX mode caps: per-extent leases at DAXReadSlot(i)/DAXWriteSlot(i).
	TagOpen uint64 = 0x30
	// TagClose closes an open handle, revoking DAX leases.
	// imm[8:16) = handle; caps: SlotCont = reply (imm[0:8) = status).
	TagClose uint64 = 0x31
	// TagRead reads through the FS (FS mode).
	// imm[8:16) = file id (preset), [16:24) = offset, [24:32) =
	// length; caps: SlotData = destination Memory, SlotCont =
	// continuation (imm[0:8) = status). imm[0:8) is reserved for the
	// upstream-status convention, so FS Requests are themselves
	// continuation-capable.
	TagRead uint64 = 0x32
	// TagWrite writes through the FS (FS mode); SlotData = source.
	TagWrite uint64 = 0x33
)

// Open-mode flags.
const (
	OpenRead   uint64 = 1 << 0
	OpenWrite  uint64 = 1 << 1
	OpenCreate uint64 = 1 << 2
	// OpenDAX requests direct-access mode: the reply carries block-
	// device leases instead of FS-mediated Requests.
	OpenDAX uint64 = 1 << 3
)

// Argument slots.
const (
	SlotData uint16 = 0
	SlotCont uint16 = 1

	SlotFSRead  uint16 = 0
	SlotFSWrite uint16 = 1
)

// DAXReadSlot returns the reply slot of extent i's read lease.
func DAXReadSlot(i int) uint16 { return uint16(2 + 2*i) }

// DAXWriteSlot returns the reply slot of extent i's write lease.
func DAXWriteSlot(i int) uint16 { return uint16(3 + 2*i) }

// Immediate layout of per-file FS Requests (read/write/direct).
const (
	FSImmStatus = 0 // reserved: upstream status when chained
	FSImmFile   = 8 // file id, preset
	FSImmOff    = 16
	FSImmLen    = 24
)

// FS status codes (imm[0:8) of replies/continuations).
const (
	StatusOK       uint64 = 0
	StatusNoFile   uint64 = 1
	StatusBounds   uint64 = 2
	StatusIOErr    uint64 = 3
	StatusBadArg   uint64 = 4
	StatusNoSpace  uint64 = 5
	StatusBadMode  uint64 = 6
	StatusNoHandle uint64 = 7
)

// Geometry.
const (
	// ExtentSize is one extent = one logical volume (1 MiB).
	ExtentSize = 1 << 20
	// MaxExtents bounds a file's extents (slot-encoding limit).
	MaxExtents = 8
)

// Config sizes the FS service.
type Config struct {
	// QueueDepth bounds concurrent FS-mediated operations.
	QueueDepth int
	// StagingBufs is the number of ExtentSize staging buffers.
	StagingBufs int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.StagingBufs == 0 {
		c.StagingBufs = 8
	}
	return c
}

// extent is one file extent: a logical volume on the backend.
type extent struct {
	vol Volume
}

type file struct {
	id      uint64
	name    string
	size    uint64
	extents []extent
	rdReq   proc.Cap // FS-mode per-file requests (lazily created)
	wrReq   proc.Cap
	rdReqD  proc.Cap // direct (composed) per-file requests
	wrReqD  proc.Cap
}

type openHandle struct {
	fileID uint64
	leases []proc.Cap // DAX leases to revoke on close
}

// Service is the FS Process.
type Service struct {
	P   *proc.Process
	cfg Config

	backend Backend

	files    map[string]*file
	creating map[string]bool // names with an in-flight create
	byID     map[uint64]*file
	nextFile uint64

	handles    map[uint64]*openHandle
	nextHandle uint64

	qd       *sim.Semaphore
	stageSem *sim.Semaphore
	stages   []stageBuf

	// Open is the service's root Request; grant it to clients.
	Open proc.Cap
	// Close is the handle-close Request; grant it alongside Open.
	Close proc.Cap
}

type stageBuf struct {
	off int
	cap proc.Cap
}

// NewService attaches the FS Process on a node. volCreate must be the
// block-device adaptor's VolCreate Request, already granted to this
// service's Process — see Wire.
func NewService(cl *core.Cluster, node int, name string, cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		P:        proc.Attach(cl, node, name, cfg.StagingBufs*ExtentSize),
		cfg:      cfg,
		files:    make(map[string]*file),
		creating: make(map[string]bool),
		byID:     make(map[uint64]*file),
		handles:  make(map[uint64]*openHandle),
		qd:       sim.NewSemaphore(cfg.QueueDepth),
	}
}

// Wire grants the service its block-device capability and installs the
// FractOS backend.
func (s *Service) Wire(ad *nvme.Adaptor) error {
	vc, err := proc.GrantCap(ad.P, ad.VolCreate, s.P)
	if err != nil {
		return err
	}
	s.backend = NewFractOSBackend(s.P, vc)
	return nil
}

// WireBackend installs an alternative block backend (e.g. the NVMe-oF
// initiator of the Disaggregated Baseline).
func (s *Service) WireBackend(b Backend) { s.backend = b }

// Start registers staging memory and the Open Request, then spawns the
// serve loop. Wire must have been called.
func (s *Service) Start(t *sim.Task) error {
	if s.backend == nil {
		return fmt.Errorf("fs: not wired to a block backend")
	}
	s.stageSem = sim.NewSemaphore(s.cfg.StagingBufs)
	for i := 0; i < s.cfg.StagingBufs; i++ {
		off := i * ExtentSize
		c, err := s.P.MemoryCreate(t, uint64(off), ExtentSize, cap.MemRights)
		if err != nil {
			return fmt.Errorf("fs: staging memory: %w", err)
		}
		s.stages = append(s.stages, stageBuf{off: off, cap: c})
	}
	open, err := s.P.RequestCreate(t, TagOpen, nil, nil)
	if err != nil {
		return fmt.Errorf("fs: open request: %w", err)
	}
	s.Open = open
	cls, err := s.P.RequestCreate(t, TagClose, nil, nil)
	if err != nil {
		return fmt.Errorf("fs: close request: %w", err)
	}
	s.Close = cls
	s.P.Kernel().Spawn("fs-service", s.serve)
	return nil
}

func (s *Service) serve(t *sim.Task) {
	for {
		d, ok := s.P.Receive(t)
		if !ok {
			return
		}
		s.qd.Acquire(t)
		s.P.Kernel().Spawn("fs-op", func(ht *sim.Task) {
			defer s.qd.Release()
			s.handle(ht, d)
		})
	}
}

func (s *Service) handle(t *sim.Task, d *proc.Delivery) {
	defer d.Done()
	switch d.Tag {
	case TagOpen:
		s.handleOpen(t, d)
	case TagClose:
		s.handleClose(t, d)
	case TagRead:
		s.handleIO(t, d, false)
	case TagWrite:
		s.handleIO(t, d, true)
	case TagReadDirect:
		s.handleDirect(t, d, false)
	case TagWriteDirect:
		s.handleDirect(t, d, true)
	}
}

// reply invokes the continuation in SlotCont with the given arguments.
func (s *Service) reply(t *sim.Task, d *proc.Delivery, imms []wire.ImmArg, args []proc.Arg) {
	if cont, ok := d.Cap(SlotCont); ok {
		s.P.Invoke(t, cont, imms, args)
	}
}

func (s *Service) fail(t *sim.Task, d *proc.Delivery, code uint64) {
	s.reply(t, d, []wire.ImmArg{proc.U64Arg(0, code)}, nil)
}

package fs

import (
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// OpenSizeOff returns the immediate offset of the optional size hint
// after a name of the given length (8-byte aligned).
func OpenSizeOff(nameLen int) int { return (16 + nameLen + 7) &^ 7 }

// handleOpen opens or creates a file and replies with either
// FS-mediated Requests or DAX leases.
func (s *Service) handleOpen(t *sim.Task, d *proc.Delivery) {
	mode := d.U64(0)
	nameLen := int(d.U64(8))
	if nameLen <= 0 || 16+nameLen > len(d.Imms) || mode&(OpenRead|OpenWrite) == 0 {
		s.fail(t, d, StatusBadArg)
		return
	}
	name := string(d.Imms[16 : 16+nameLen])

	// Creating a file blocks on volume allocation, so a concurrent
	// open of the same name could otherwise race a second create.
	// Wait for any in-flight creation of this name to settle first.
	for s.creating[name] {
		t.Sleep(10 * 1000)
	}
	f, exists := s.files[name]
	if !exists {
		if mode&OpenCreate == 0 {
			s.fail(t, d, StatusNoFile)
			return
		}
		size := d.U64(OpenSizeOff(nameLen))
		if size == 0 {
			size = ExtentSize
		}
		s.creating[name] = true
		var st uint64
		f, st = s.createFile(t, name, size)
		delete(s.creating, name)
		if st != StatusOK {
			s.fail(t, d, st)
			return
		}
	}

	s.nextHandle++
	h := &openHandle{fileID: f.id}
	s.handles[s.nextHandle] = h

	imms := []wire.ImmArg{
		proc.U64Arg(8, f.size),
		proc.U64Arg(16, uint64(len(f.extents))),
		proc.U64Arg(24, ExtentSize),
		proc.U64Arg(32, s.nextHandle),
	}

	if mode&OpenDAX != 0 {
		args, st := s.daxLeases(t, f, h, mode)
		if st != StatusOK {
			s.fail(t, d, st)
			return
		}
		s.reply(t, d, imms, args)
		return
	}

	// FS mode: hand out per-file mediated Requests.
	if st := s.ensureFileReqs(t, f); st != StatusOK {
		s.fail(t, d, st)
		return
	}
	var args []proc.Arg
	if mode&OpenRead != 0 {
		args = append(args,
			proc.Arg{Slot: SlotFSRead, Cap: f.rdReq},
			proc.Arg{Slot: SlotFSReadDirect, Cap: f.rdReqD})
	}
	if mode&OpenWrite != 0 {
		args = append(args,
			proc.Arg{Slot: SlotFSWrite, Cap: f.wrReq},
			proc.Arg{Slot: SlotFSWriteDirect, Cap: f.wrReqD})
	}
	s.reply(t, d, imms, args)
}

// daxLeases wraps each extent's block Requests in freshly derived
// revocation-tree children ("leases") according to the open mode, so
// that closing the file revokes exactly this client's direct access.
// Only backends exposing DAXVolume (the FractOS block adaptor) support
// this; NVMe-oF and other baselines cannot delegate block access.
func (s *Service) daxLeases(t *sim.Task, f *file, h *openHandle, mode uint64) ([]proc.Arg, uint64) {
	var args []proc.Arg
	for i, ext := range f.extents {
		dv, ok := ext.vol.(DAXVolume)
		if !ok {
			return nil, StatusBadMode
		}
		if mode&OpenRead != 0 {
			lease, err := dv.LeaseRead(t)
			if err != nil {
				return nil, StatusIOErr
			}
			h.leases = append(h.leases, lease)
			args = append(args, proc.Arg{Slot: DAXReadSlot(i), Cap: lease})
		}
		if mode&OpenWrite != 0 {
			lease, err := dv.LeaseWrite(t)
			if err != nil {
				return nil, StatusIOErr
			}
			h.leases = append(h.leases, lease)
			args = append(args, proc.Arg{Slot: DAXWriteSlot(i), Cap: lease})
		}
	}
	return args, StatusOK
}

func (s *Service) handleClose(t *sim.Task, d *proc.Delivery) {
	h, ok := s.handles[d.U64(8)]
	if !ok {
		s.fail(t, d, StatusNoHandle)
		return
	}
	delete(s.handles, d.U64(8))
	for _, lease := range h.leases {
		if err := s.P.Revoke(t, lease); err != nil {
			s.fail(t, d, StatusIOErr)
			return
		}
	}
	s.fail(t, d, StatusOK) // status 0 = success
}

// createFile allocates the file's extents as block-device volumes.
func (s *Service) createFile(t *sim.Task, name string, size uint64) (*file, uint64) {
	nExt := int((size + ExtentSize - 1) / ExtentSize)
	if nExt > MaxExtents {
		return nil, StatusNoSpace
	}
	s.nextFile++
	f := &file{id: s.nextFile, name: name, size: size}
	for i := 0; i < nExt; i++ {
		vol, err := s.backend.CreateVolume(t, ExtentSize)
		if err != nil {
			return nil, StatusNoSpace
		}
		f.extents = append(f.extents, extent{vol: vol})
	}
	s.files[name] = f
	s.byID[f.id] = f
	return f, StatusOK
}

// ensureFileReqs lazily creates the FS-mediated and direct per-file
// Requests.
func (s *Service) ensureFileReqs(t *sim.Task, f *file) uint64 {
	if f.rdReq.Valid() {
		return StatusOK
	}
	fileArg := []wire.ImmArg{proc.U64Arg(FSImmFile, f.id)}
	rd, err1 := s.P.RequestCreate(t, TagRead, fileArg, nil)
	wr, err2 := s.P.RequestCreate(t, TagWrite, fileArg, nil)
	rdD, err3 := s.P.RequestCreate(t, TagReadDirect, fileArg, nil)
	wrD, err4 := s.P.RequestCreate(t, TagWriteDirect, fileArg, nil)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return StatusIOErr
	}
	f.rdReq, f.wrReq, f.rdReqD, f.wrReqD = rd, wr, rdD, wrD
	return StatusOK
}

package fs

import (
	"bytes"
	"testing"

	"fractos/internal/sim"
)

func TestDirectReadWriteRoundTrip(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, err := OpenFile(tk, st.client, st.open, "direct.bin", OpenRead|OpenWrite|OpenCreate, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("composed"), 2048) // 16 KiB
		copy(st.client.Arena(), payload)
		src := st.mem(tk, t, 0, uint64(len(payload)))
		if err := f.DirectWriteAt(tk, 8192, uint64(len(payload)), src); err != nil {
			t.Fatalf("direct write: %v", err)
		}
		dst := st.mem(tk, t, 1<<20, uint64(len(payload)))
		if err := f.DirectReadAt(tk, 8192, uint64(len(payload)), dst); err != nil {
			t.Fatalf("direct read: %v", err)
		}
		if !bytes.Equal(st.client.Arena()[1<<20:(1<<20)+len(payload)], payload) {
			t.Fatal("direct round trip corrupted data")
		}
		// And FS-mode reads see the same bytes: the composition wrote
		// through the same volume.
		dst2 := st.mem(tk, t, 2<<20, uint64(len(payload)))
		if err := f.ReadAt(tk, 8192, uint64(len(payload)), dst2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.client.Arena()[2<<20:(2<<20)+len(payload)], payload) {
			t.Fatal("FS-mode read disagrees with direct write")
		}
	})
}

// TestDirectBypassesFSDataPath: the composed request must not move the
// payload through the FS node — only control traffic touches it.
func TestDirectBypassesFSDataPath(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		const n = 256 << 10
		f, err := OpenFile(tk, st.client, st.open, "bypass.bin", OpenRead|OpenWrite|OpenCreate, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		mem := st.mem(tk, t, 0, n)

		// FS-mode read: data crosses twice (device→FS, FS→client).
		before := st.cl.Net.Stats()
		if err := f.ReadAt(tk, 0, n, mem); err != nil {
			t.Fatal(err)
		}
		fsBytes := st.cl.Net.Stats().Sub(before).CrossNodeDataBytes

		// Direct read: data crosses once (device→client).
		before = st.cl.Net.Stats()
		if err := f.DirectReadAt(tk, 0, n, mem); err != nil {
			t.Fatal(err)
		}
		directBytes := st.cl.Net.Stats().Sub(before).CrossNodeDataBytes

		if directBytes*2 > fsBytes+n/4 {
			t.Errorf("direct read moved %d bytes cross-node; FS mode moved %d (expected ~half)",
				directBytes, fsBytes)
		}
	})
}

func TestDirectFasterThanFSMode(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		const n = 256 << 10
		f, err := OpenFile(tk, st.client, st.open, "fast.bin", OpenRead|OpenWrite|OpenCreate, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		mem := st.mem(tk, t, 0, n)
		start := tk.Now()
		if err := f.ReadAt(tk, 0, n, mem); err != nil {
			t.Fatal(err)
		}
		fsTime := tk.Now() - start
		start = tk.Now()
		if err := f.DirectReadAt(tk, 0, n, mem); err != nil {
			t.Fatal(err)
		}
		directTime := tk.Now() - start
		if directTime >= fsTime {
			t.Errorf("direct read (%v) not faster than FS mode (%v)", directTime, fsTime)
		}
	})
}

func TestDirectRespectsOpenMode(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		if _, err := OpenFile(tk, st.client, st.open, "ro2.bin", OpenRead|OpenWrite|OpenCreate, 4096); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFile(tk, st.client, st.open, "ro2.bin", OpenRead, 0)
		if err != nil {
			t.Fatal(err)
		}
		mem := st.mem(tk, t, 0, 4096)
		if err := f.DirectWriteAt(tk, 0, 4096, mem); err == nil {
			t.Fatal("direct write through read-only open succeeded")
		}
		if err := f.DirectReadAt(tk, 0, 4096, mem); err != nil {
			t.Fatalf("direct read through read-only open failed: %v", err)
		}
	})
}

func TestDirectRejectsExtentCrossing(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, err := OpenFile(tk, st.client, st.open, "span.bin", OpenRead|OpenWrite|OpenCreate, 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		n := uint64(64 << 10)
		mem := st.mem(tk, t, 0, n)
		// A span straddling the extent boundary must be refused (one
		// block Request serves one volume).
		if err := f.DirectReadAt(tk, ExtentSize-n/2, n, mem); err == nil {
			t.Fatal("extent-crossing direct read succeeded")
		}
	})
}

func TestDirectUnavailableOnNVMeoFBackend(t *testing.T) {
	// The Disaggregated Baseline's backend cannot compose: its Volume
	// is not a ComposableVolume.
	var v Volume = &nvmeofStub{}
	if _, ok := v.(ComposableVolume); ok {
		t.Fatal("stub should not be composable")
	}
}

// nvmeofStub mimics a non-composable backend volume.
type nvmeofStub struct{}

func (*nvmeofStub) ReadAt(*sim.Task, uint64, uint64, Stage) uint64  { return 0 }
func (*nvmeofStub) WriteAt(*sim.Task, uint64, uint64, Stage) uint64 { return 0 }

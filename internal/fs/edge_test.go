package fs

import (
	"fmt"
	"testing"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

func TestOpenWithoutAccessModeRejected(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		if _, err := OpenFile(tk, st.client, st.open, "x", OpenCreate, 4096); err == nil {
			t.Fatal("open without read/write mode succeeded")
		}
	})
}

func TestCreateTooLargeRejected(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		huge := uint64(MaxExtents+1) * ExtentSize
		if _, err := OpenFile(tk, st.client, st.open, "huge", OpenRead|OpenWrite|OpenCreate, huge); err == nil {
			t.Fatal("file beyond MaxExtents created")
		}
	})
}

func TestCloseUnknownHandle(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f := &File{p: st.client, Handle: 9999}
		if err := f.Close(tk, st.close_); err == nil {
			t.Fatal("close of unknown handle succeeded")
		}
	})
}

func TestZeroLengthIORejected(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, err := OpenFile(tk, st.client, st.open, "z", OpenRead|OpenWrite|OpenCreate, 4096)
		if err != nil {
			t.Fatal(err)
		}
		mem := st.mem(tk, t, 0, 16)
		if err := f.ReadAt(tk, 0, 0, mem); err == nil {
			t.Fatal("zero-length read succeeded")
		}
	})
}

// TestConcurrentFSClients: several clients hammer distinct files
// through the same FS service; everything round-trips, exercising the
// staging pool and queue-depth paths.
func TestConcurrentFSClients(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		const clients = 6
		var wg sim.WaitGroup
		wg.Add(clients)
		for c := 0; c < clients; c++ {
			c := c
			st.cl.K.Spawn("fs-client", func(ct *sim.Task) {
				defer wg.Done()
				name := fmt.Sprintf("file-%d", c)
				f, err := OpenFile(ct, st.client, st.open, name, OpenRead|OpenWrite|OpenCreate, 256<<10)
				if err != nil {
					t.Errorf("client %d open: %v", c, err)
					return
				}
				n := uint64(64 << 10)
				off, err := st.client.Alloc(int(2 * n))
				if err != nil {
					t.Errorf("client %d alloc: %v", c, err)
					return
				}
				buf := st.client.Arena()[off : off+int(n)]
				for i := range buf {
					buf[i] = byte(c + i)
				}
				src, err := st.client.MemoryCreate(ct, uint64(off), n, 0xf)
				if err != nil {
					t.Error(err)
					return
				}
				dst, err := st.client.MemoryCreate(ct, uint64(off)+n, n, 0xf)
				if err != nil {
					t.Error(err)
					return
				}
				if err := f.WriteAt(ct, 4096, n, src); err != nil {
					t.Errorf("client %d write: %v", c, err)
					return
				}
				if err := f.ReadAt(ct, 4096, n, dst); err != nil {
					t.Errorf("client %d read: %v", c, err)
					return
				}
				out := st.client.Arena()[off+int(n) : off+2*int(n)]
				for i := range out {
					if out[i] != byte(c+i) {
						t.Errorf("client %d: data corrupted at %d", c, i)
						return
					}
				}
			})
		}
		wg.Wait(tk)
	})
}

// TestDAXWriteOnlyOpen: a write-only DAX open can write but not read.
func TestDAXWriteOnlyOpen(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		if _, err := OpenFile(tk, st.client, st.open, "wo", OpenRead|OpenWrite|OpenCreate, 4096); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFile(tk, st.client, st.open, "wo", OpenWrite|OpenDAX, 0)
		if err != nil {
			t.Fatal(err)
		}
		mem := st.mem(tk, t, 0, 4096)
		if err := f.WriteAt(tk, 0, 4096, mem); err != nil {
			t.Fatalf("write-only DAX write: %v", err)
		}
		if err := f.ReadAt(tk, 0, 4096, mem); err == nil {
			t.Fatal("write-only DAX open allowed a read")
		}
	})
}

// TestFSWrongSizeMemoryRejected: the FS requires the data capability
// to match the transfer exactly.
func TestFSWrongSizeMemoryRejected(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, err := OpenFile(tk, st.client, st.open, "sz", OpenRead|OpenWrite|OpenCreate, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		mem := st.mem(tk, t, 0, 4096)
		err = f.ReadAt(tk, 0, 8192, mem) // 8K read into a 4K capability
		if err == nil {
			t.Fatal("size-mismatched read succeeded")
		}
		if !wire.IsStatus(err, wire.StatusOK) && err == nil {
			t.Fatal("unexpected nil")
		}
	})
}

// TestConcurrentCreateSameFile: two simultaneous creates of the same
// name must yield exactly one file — both opens succeed against the
// same extents, and no volumes leak.
func TestConcurrentCreateSameFile(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		var wg sim.WaitGroup
		wg.Add(2)
		files := make([]*File, 2)
		for i := 0; i < 2; i++ {
			i := i
			st.cl.K.Spawn("creator", func(ct *sim.Task) {
				defer wg.Done()
				f, err := OpenFile(ct, st.client, st.open, "racy.bin",
					OpenRead|OpenWrite|OpenCreate, 2<<20)
				if err != nil {
					t.Errorf("creator %d: %v", i, err)
					return
				}
				files[i] = f
			})
		}
		wg.Wait(tk)
		if files[0] == nil || files[1] == nil {
			return
		}
		// Both handles address the same file: a write through one is
		// visible through the other.
		payload := []byte("one file, two opens")
		copy(st.client.Arena(), payload)
		src := st.mem(tk, t, 0, uint64(len(payload)))
		if err := files[0].WriteAt(tk, 0, uint64(len(payload)), src); err != nil {
			t.Fatal(err)
		}
		dst := st.mem(tk, t, 4096, uint64(len(payload)))
		if err := files[1].ReadAt(tk, 0, uint64(len(payload)), dst); err != nil {
			t.Fatal(err)
		}
		if string(st.client.Arena()[4096:4096+len(payload)]) != string(payload) {
			t.Fatal("the two opens do not share one file")
		}
	})
}

package fs

import (
	"bytes"
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/device/nvme"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

func us(f float64) sim.Time { return testbed.USec(f) }

// stack assembles the paper's storage stack on a 3-node cluster:
// NVMe + adaptor on node 2, FS service on node 1, client on node 0.
type stack struct {
	cl     *core.Cluster
	dev    *nvme.Device
	ad     *nvme.Adaptor
	svc    *Service
	client *proc.Process
	open   proc.Cap
	close_ proc.Cap
}

func buildStack(tk *sim.Task, t *testing.T, cl *core.Cluster) *stack {
	t.Helper()
	dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
	ad := nvme.NewAdaptor(cl, 2, "nvme0", dev, nvme.AdaptorConfig{})
	if err := ad.Start(tk); err != nil {
		t.Fatal(err)
	}
	svc := NewService(cl, 1, "fs0", Config{})
	if err := svc.Wire(ad); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(tk); err != nil {
		t.Fatal(err)
	}
	client := proc.Attach(cl, 0, "client", 8<<20)
	open, err := proc.GrantCap(svc.P, svc.Open, client)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := proc.GrantCap(svc.P, svc.Close, client)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{cl: cl, dev: dev, ad: ad, svc: svc, client: client, open: open, close_: cls}
}

func runStack(t *testing.T, fn func(tk *sim.Task, st *stack)) {
	t.Helper()
	testbed.RunT(t, testbed.Spec{Nodes: 3},
		func(tk *sim.Task, d *testbed.Deployment) {
			fn(tk, buildStack(tk, t, d.Cl))
		})
}

// mem allocates and registers n bytes of client arena at off.
func (st *stack) mem(tk *sim.Task, t *testing.T, off, n uint64) proc.Cap {
	t.Helper()
	c, err := st.client.MemoryCreate(tk, off, n, cap.MemRights)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFSModeWriteReadRoundTrip(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, err := OpenFile(tk, st.client, st.open, "data.bin", OpenRead|OpenWrite|OpenCreate, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("filesys!"), 1024) // 8 KiB
		copy(st.client.Arena(), payload)
		src := st.mem(tk, t, 0, uint64(len(payload)))
		if err := f.WriteAt(tk, 4096, uint64(len(payload)), src); err != nil {
			t.Fatalf("write: %v", err)
		}
		dst := st.mem(tk, t, 1<<20, uint64(len(payload)))
		if err := f.ReadAt(tk, 4096, uint64(len(payload)), dst); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(st.client.Arena()[1<<20:(1<<20)+len(payload)], payload) {
			t.Fatal("FS round trip corrupted data")
		}
	})
}

func TestOpenMissingFileFails(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		if _, err := OpenFile(tk, st.client, st.open, "nope", OpenRead, 0); err == nil {
			t.Fatal("open of missing file succeeded")
		}
	})
}

func TestOpenReadOnlyGivesNoWriteRequest(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		if _, err := OpenFile(tk, st.client, st.open, "ro.bin", OpenRead|OpenWrite|OpenCreate, 4096); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFile(tk, st.client, st.open, "ro.bin", OpenRead, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := st.mem(tk, t, 0, 4096)
		if err := f.WriteAt(tk, 0, 4096, src); err == nil {
			t.Fatal("write through read-only open succeeded")
		}
	})
}

func TestMultiExtentFile(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		// 3 MiB file = 3 extents; write a span crossing the 1st/2nd
		// extent boundary.
		f, err := OpenFile(tk, st.client, st.open, "big.bin", OpenRead|OpenWrite|OpenCreate, 3<<20)
		if err != nil {
			t.Fatal(err)
		}
		n := uint64(256 << 10)
		off := uint64(ExtentSize) - n/2
		payload := bytes.Repeat([]byte{0xc3}, int(n))
		copy(st.client.Arena(), payload)
		src := st.mem(tk, t, 0, n)
		if err := f.WriteAt(tk, off, n, src); err != nil {
			t.Fatalf("cross-extent write: %v", err)
		}
		dst := st.mem(tk, t, 1<<20, n)
		if err := f.ReadAt(tk, off, n, dst); err != nil {
			t.Fatalf("cross-extent read: %v", err)
		}
		if !bytes.Equal(st.client.Arena()[1<<20:(1<<20)+int(n)], payload) {
			t.Fatal("cross-extent data corrupted")
		}
	})
}

func TestReadBeyondEOF(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, _ := OpenFile(tk, st.client, st.open, "small.bin", OpenRead|OpenWrite|OpenCreate, 4096)
		dst := st.mem(tk, t, 0, 8192)
		if err := f.ReadAt(tk, 0, 8192, dst); err == nil {
			t.Fatal("read beyond EOF succeeded")
		}
	})
}

func TestDAXModeRoundTrip(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, err := OpenFile(tk, st.client, st.open, "dax.bin", OpenRead|OpenWrite|OpenCreate|OpenDAX, 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !f.DAX {
			t.Fatal("not in DAX mode")
		}
		payload := bytes.Repeat([]byte("directacc"), 2048)
		copy(st.client.Arena(), payload)
		src := st.mem(tk, t, 0, uint64(len(payload)))
		if err := f.WriteAt(tk, 1000, uint64(len(payload)), src); err != nil {
			t.Fatalf("dax write: %v", err)
		}
		dst := st.mem(tk, t, 1<<20, uint64(len(payload)))
		if err := f.ReadAt(tk, 1000, uint64(len(payload)), dst); err != nil {
			t.Fatalf("dax read: %v", err)
		}
		if !bytes.Equal(st.client.Arena()[1<<20:(1<<20)+len(payload)], payload) {
			t.Fatal("DAX round trip corrupted data")
		}
	})
}

// TestDAXSeesFSWrites: both modes address the same extents, so data
// written through the FS is visible via DAX and vice versa.
func TestDAXSeesFSWrites(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		fsF, err := OpenFile(tk, st.client, st.open, "shared.bin", OpenRead|OpenWrite|OpenCreate, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("written through the FS layer")
		copy(st.client.Arena(), payload)
		src := st.mem(tk, t, 0, uint64(len(payload)))
		if err := fsF.WriteAt(tk, 0, uint64(len(payload)), src); err != nil {
			t.Fatal(err)
		}
		daxF, err := OpenFile(tk, st.client, st.open, "shared.bin", OpenRead|OpenDAX, 0)
		if err != nil {
			t.Fatal(err)
		}
		dst := st.mem(tk, t, 4096, uint64(len(payload)))
		if err := daxF.ReadAt(tk, 0, uint64(len(payload)), dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.client.Arena()[4096:4096+len(payload)], payload) {
			t.Fatal("DAX read did not see FS write")
		}
	})
}

// TestDAXReadOnlyCannotWrite: a read-only DAX open must not allow
// writes to the device, even though the client talks to it directly —
// the FS simply never delegates the write lease.
func TestDAXReadOnlyCannotWrite(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		if _, err := OpenFile(tk, st.client, st.open, "rodax.bin", OpenRead|OpenWrite|OpenCreate, 4096); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFile(tk, st.client, st.open, "rodax.bin", OpenRead|OpenDAX, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := st.mem(tk, t, 0, 4096)
		if err := f.WriteAt(tk, 0, 4096, src); err == nil {
			t.Fatal("read-only DAX client wrote to device")
		}
	})
}

// TestCloseRevokesDAXLeases: after close, the delegated block-device
// leases are revoked at their owner — the saved Requests are dead.
func TestCloseRevokesDAXLeases(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		f, err := OpenFile(tk, st.client, st.open, "lease.bin", OpenRead|OpenWrite|OpenCreate|OpenDAX, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		dst := st.mem(tk, t, 0, 4096)
		if err := f.ReadAt(tk, 0, 4096, dst); err != nil {
			t.Fatalf("pre-close read: %v", err)
		}
		// Keep a raw copy of the lease and close.
		handle := f.Handle
		_ = handle
		leaseRead := func() error { return f.ReadAt(tk, 0, 4096, dst) }
		if err := f.Close(tk, st.close_); err != nil {
			t.Fatalf("close: %v", err)
		}
		f.p = st.client // resurrect the handle to probe the dead lease
		if err := leaseRead(); err == nil {
			t.Fatal("DAX lease usable after close")
		}
		// A second client's open is unaffected: fresh leases.
		f2, err := OpenFile(tk, st.client, st.open, "lease.bin", OpenRead|OpenDAX, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f2.ReadAt(tk, 0, 4096, dst); err != nil {
			t.Fatalf("fresh lease broken: %v", err)
		}
	})
}

// TestDAXFasterThanFS reproduces the core of §6.4: for reads whose
// size makes network transfers dominate, DAX (one transfer) beats the
// FS path (two transfers) by a noticeable factor.
func TestDAXFasterThanFS(t *testing.T) {
	runStack(t, func(tk *sim.Task, st *stack) {
		const n = 512 << 10
		fsF, err := OpenFile(tk, st.client, st.open, "perf.bin", OpenRead|OpenWrite|OpenCreate, n)
		if err != nil {
			t.Fatal(err)
		}
		daxF, err := OpenFile(tk, st.client, st.open, "perf.bin", OpenRead|OpenDAX, 0)
		if err != nil {
			t.Fatal(err)
		}
		dst := st.mem(tk, t, 0, n)

		start := tk.Now()
		if err := fsF.ReadAt(tk, 0, n, dst); err != nil {
			t.Fatal(err)
		}
		fsTime := tk.Now() - start

		start = tk.Now()
		if err := daxF.ReadAt(tk, 0, n, dst); err != nil {
			t.Fatal(err)
		}
		daxTime := tk.Now() - start

		if daxTime >= fsTime {
			t.Errorf("DAX (%v) not faster than FS (%v)", daxTime, fsTime)
		}
		speedup := float64(fsTime) / float64(daxTime)
		if speedup < 1.2 {
			t.Errorf("DAX speedup = %.2fx, want >1.2x for 512KiB reads (§6.4 reports ~1.3x)", speedup)
		}
	})
}

package fs

import (
	"fractos/internal/proc"
	"fractos/internal/sim"
)

// handleIO serves FS-mediated reads and writes (FS mode): every byte
// is staged through the FS Process's memory between the client and the
// block device — the centralized model whose extra network transfer
// DAX eliminates (§6.4).
func (s *Service) handleIO(t *sim.Task, d *proc.Delivery, isWrite bool) {
	if st := d.U64(FSImmStatus); st != 0 {
		s.fail(t, d, st)
		return
	}
	f, ok := s.byID[d.U64(FSImmFile)]
	if !ok {
		s.fail(t, d, StatusNoFile)
		return
	}
	off, n := d.U64(FSImmOff), d.U64(FSImmLen)
	if n == 0 || off+n > f.size {
		s.fail(t, d, StatusBounds)
		return
	}
	data, ok := d.Cap(SlotData)
	if !ok || data.Size() != n {
		s.fail(t, d, StatusBadArg)
		return
	}

	// One staging buffer serves the whole operation extent by extent.
	s.stageSem.Acquire(t)
	sb := s.stages[len(s.stages)-1]
	s.stages = s.stages[:len(s.stages)-1]
	defer func() {
		s.stages = append(s.stages, sb)
		s.stageSem.Release()
	}()

	// Walk the extent spans covered by [off, off+n).
	done := uint64(0)
	for done < n {
		cur := off + done
		ei := int(cur / ExtentSize)
		eo := cur % ExtentSize
		cn := ExtentSize - eo
		if cn > n-done {
			cn = n - done
		}
		if ei >= len(f.extents) {
			s.fail(t, d, StatusBounds)
			return
		}
		ext := f.extents[ei]

		// A view of the staging buffer sized for this span; the span
		// lands at [done, done+cn) of the client's Memory via a
		// matching view on the client capability.
		stView, err := s.P.MemoryDiminish(t, sb.cap, 0, cn, 0)
		if err != nil {
			s.fail(t, d, StatusIOErr)
			return
		}
		cliView := data
		if n != cn {
			cliView, err = s.P.MemoryDiminish(t, data, done, cn, 0)
			if err != nil {
				s.fail(t, d, StatusIOErr)
				return
			}
		}

		stage := Stage{Cap: stView, Buf: s.P.Arena()[sb.off : sb.off+int(cn)]}
		var st uint64
		if isWrite {
			// client → staging → device.
			if err := s.P.MemoryCopy(t, cliView, stView); err != nil {
				s.fail(t, d, StatusIOErr)
				return
			}
			st = ext.vol.WriteAt(t, eo, cn, stage)
		} else {
			// device → staging → client.
			st = ext.vol.ReadAt(t, eo, cn, stage)
			if st == 0 {
				if err := s.P.MemoryCopy(t, stView, cliView); err != nil {
					s.fail(t, d, StatusIOErr)
					return
				}
			}
		}
		s.P.Drop(t, stView)
		if cliView.ID() != data.ID() {
			s.P.Drop(t, cliView)
		}
		if st != 0 {
			s.fail(t, d, StatusIOErr)
			return
		}
		done += cn
	}
	s.fail(t, d, StatusOK) // status 0 = success
}

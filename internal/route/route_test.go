// Integration tests for the replicated-service layer: admission
// control, member failover, and the routing determinism matrix. They
// live in an external test package because they drive the route stack
// through testbed/stacks (which imports route).
package route_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"fractos/internal/fabric"
	"fractos/internal/proc"
	"fractos/internal/route"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
	"fractos/internal/wire"
)

const ms = sim.Time(1000 * 1000)
const us = sim.Time(1000)

// driveConcurrent issues count calls from width concurrent tasks with
// unique non-zero request ids and a service time that is a fixed
// function of the id. Returns the number of failed calls.
func driveConcurrent(tk *sim.Task, s *stacks.Routed, width, count int) int {
	errs := 0
	var wg sim.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		w := w
		tk.Kernel().Spawn(fmt.Sprintf("driver-%d", w), func(t *sim.Task) {
			for i := w; i < count; i += width {
				id := uint64(i + 1)
				service := sim.Time((id*7)%5+1) * 100 * us
				if err := s.Do(t, id, service); err != nil {
					errs++
				}
			}
			wg.Done()
		})
	}
	wg.Wait(tk)
	return errs
}

// TestAdmissionControlSheds: one replica with a tiny queue against a
// concurrent burst. The overflow must be refused with
// wire.StatusBackpressure (retryable — the unified status satellite:
// proc.Retryable classifies a registry/replica shed with no special
// case), the queue must never exceed its bound, and with enough retry
// budget every request eventually lands.
func TestAdmissionControlSheds(t *testing.T) {
	s := &stacks.Routed{Replicas: 1, MaxQueue: 4, Nodes: []int{1}}
	testbed.RunT(t, testbed.Spec{Nodes: 2, Services: []testbed.Service{s}},
		func(tk *sim.Task, d *testbed.Deployment) {
			s.B.Retry = proc.Retry{Max: 30, Jitter: 0.2, Seed: 7}
			if errs := driveConcurrent(tk, s, 12, 24); errs != 0 {
				t.Fatalf("%d calls failed despite retry budget", errs)
			}
		})
	rs := s.Instances[0].R.Stats()
	if rs.Shed == 0 {
		t.Error("replica never shed under a 12-wide burst against MaxQueue=4")
	}
	if rs.DepthHWM > 4 {
		t.Errorf("depth high-water mark %d exceeds MaxQueue=4", rs.DepthHWM)
	}
	if rs.Completed != 24 {
		t.Errorf("completed = %d, want 24", rs.Completed)
	}
	bs := s.B.Stats()
	if bs.Shed == 0 {
		t.Error("balancer observed no backpressure sheds")
	}
	// The shed status round-trips the generic classification path.
	if err := wire.StatusBackpressure.Err(); !proc.Retryable(err) {
		t.Error("StatusBackpressure must classify as retryable")
	}
}

// TestBalancerFailsOverOnCrash: two replicas, one loses its Controller
// mid-run. The heartbeat fences the node, the registry prunes the
// member, and the balancer — bounded by AttemptTimeout against
// in-flight requests the corpse admitted — re-resolves and lands every
// remaining call on the survivor.
func TestBalancerFailsOverOnCrash(t *testing.T) {
	s := &stacks.Routed{Replicas: 2, Nodes: []int{1, 2}, MaxQueue: 8, AttemptTimeout: 5 * ms}
	spec := testbed.Spec{
		Nodes:     3,
		Heartbeat: &services.WatchConfig{Every: 1 * ms, Suspect: 2},
		Services:  []testbed.Service{s},
	}
	testbed.RunT(t, spec, func(tk *sim.Task, d *testbed.Deployment) {
		s.B.Retry = proc.Retry{Max: 10, Jitter: 0.2, Seed: 5}
		for i := 0; i < 20; i++ {
			if err := s.Do(tk, uint64(i+1), 200*us); err != nil {
				t.Fatalf("pre-crash call %d: %v", i, err)
			}
		}
		d.Cl.CtrlFor(1).Crash()
		for i := 20; i < 40; i++ {
			if err := s.Do(tk, uint64(i+1), 200*us); err != nil {
				t.Fatalf("post-crash call %d: %v", i, err)
			}
		}
		// The fence must have pruned the dead member from the registry.
		tk.Sleep(5 * ms)
		set, err := s.Client.ResolveSet(tk, s.Name)
		if err != nil {
			t.Fatalf("resolve-set: %v", err)
		}
		if len(set.Members) != 1 || set.Members[0].Node != 2 {
			t.Fatalf("post-fence set = %+v, want only the node-2 survivor", set.Members)
		}
	})
	if s.B.Stats().Failovers == 0 {
		t.Error("balancer recorded no failovers across a member crash")
	}
	var survivor *route.Instance
	for _, in := range s.Instances {
		if in.Node == 2 {
			survivor = in
		}
	}
	if got := survivor.R.Stats().Completed; got < 20 {
		t.Errorf("survivor completed %d requests, want >= the 20 post-crash calls", got)
	}
}

// captureRouted runs a routed workload with the fabric trace hook
// installed and returns the rendered event log plus the balancer's
// recorded pick sequence.
func captureRouted(t *testing.T, policy string, shards int) (trace, picks string) {
	t.Helper()
	s := &stacks.Routed{Replicas: 4, Policy: policy, MaxQueue: 8}
	spec := testbed.Spec{Nodes: 3, Seed: 11, Shards: shards, Services: []testbed.Service{s}}
	var b strings.Builder
	testbed.RunT(t, spec, func(tk *sim.Task, d *testbed.Deployment) {
		s.B.Record = true
		d.Net().SetTrace(func(e fabric.TraceEvent) {
			fmt.Fprintf(&b, "%d %d>%d type=%d rdma=%v bytes=%d class=%d\n",
				e.At, e.From, e.To, e.Type, e.RDMA, e.Bytes, e.Class)
		})
		if errs := driveConcurrent(tk, s, 4, 64); errs != 0 {
			t.Fatalf("%d routed calls failed", errs)
		}
	})
	if b.Len() == 0 {
		t.Fatal("trace capture saw no fabric transfers")
	}
	return b.String(), fmt.Sprint(s.B.Picks)
}

// TestRoutingDeterminismMatrix is the routing half of the determinism
// acceptance: for each policy, the member selection sequence and the
// complete fabric event stream must be byte-identical across shard
// counts {1, 2, 4} and GOMAXPROCS {1, 4}.
func TestRoutingDeterminismMatrix(t *testing.T) {
	for _, policy := range []string{"rr", "least"} {
		baseTrace, basePicks := captureRouted(t, policy, 1)
		if basePicks == "[]" {
			t.Fatalf("%s: no picks recorded", policy)
		}
		for _, shards := range []int{1, 2, 4} {
			for _, procs := range []int{1, 4} {
				oldProcs := runtime.GOMAXPROCS(procs)
				gotTrace, gotPicks := captureRouted(t, policy, shards)
				runtime.GOMAXPROCS(oldProcs)
				name := fmt.Sprintf("%s shards=%d procs=%d", policy, shards, procs)
				if gotPicks != basePicks {
					t.Errorf("%s: pick sequence differs\n base: %s\n got:  %s", name, basePicks, gotPicks)
				}
				if gotTrace != baseTrace {
					la, lb := strings.Split(baseTrace, "\n"), strings.Split(gotTrace, "\n")
					n := len(la)
					if len(lb) < n {
						n = len(lb)
					}
					for i := 0; i < n; i++ {
						if la[i] != lb[i] {
							t.Errorf("%s: traces diverge at event %d:\n base: %s\n got:  %s", name, i, la[i], lb[i])
							break
						}
					}
					if len(la) != len(lb) {
						t.Errorf("%s: traces diverge in length: %d vs %d events", name, len(la), len(lb))
					}
				}
			}
		}
	}
}

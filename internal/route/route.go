// Package route is the replicated-service layer over the name
// registry: client-side routing policies and a resolving balancer
// (Balancer), replica-side queue-depth admission control (Replica),
// and a reactive autoscaler (Autoscaler) driven by NodeWatch health
// events plus load signals.
//
// Everything runs on the deterministic kernel: policies are pure
// functions of the member view plus their own explicit state, load
// signals are virtual-time queue depths, and ties break toward the
// lowest member id — so a fixed seed and policy produce byte-identical
// routing decisions and fabric traces at any shard count (pinned by
// this package's determinism tests).
package route

// MemberView is one replica as a routing policy sees it: identity,
// placement, and the client's current load estimate for it (its own
// in-flight calls plus the queue depth the replica piggybacked on its
// last reply).
type MemberView struct {
	ID   uint64
	Node int
	Load int
}

// Policy selects a member from a non-empty view. Implementations may
// carry state (round-robin cursors) but must be deterministic: the
// same view sequence produces the same pick sequence.
type Policy interface {
	Name() string
	Pick(view []MemberView) int
}

// RoundRobin cycles through the view in order. With members coming and
// going the cursor is interpreted modulo the current view size, so the
// policy stays well-defined across membership changes.
type RoundRobin struct {
	next uint64
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "rr" }

// Pick implements Policy.
func (p *RoundRobin) Pick(view []MemberView) int {
	i := int(p.next % uint64(len(view)))
	p.next++
	return i
}

// LeastLoaded picks the member with the smallest load estimate
// (join-shortest-queue on client-observed signals), breaking ties
// toward the lowest member id.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least" }

// Pick implements Policy.
func (LeastLoaded) Pick(view []MemberView) int {
	best := 0
	for i := 1; i < len(view); i++ {
		if view[i].Load < view[best].Load ||
			(view[i].Load == view[best].Load && view[i].ID < view[best].ID) {
			best = i
		}
	}
	return best
}

// Affinity prefers members on the client's own node while their load
// stays under Spill, then falls back to least-loaded across the whole
// view — locality wins until the local replicas queue up.
type Affinity struct {
	// Node is the client's node.
	Node int
	// Spill is the local load bound; 0 means DefaultSpill.
	Spill int
}

// DefaultSpill is Affinity's local-queue bound when Spill is zero.
const DefaultSpill = 4

// Name implements Policy.
func (p *Affinity) Name() string { return "affinity" }

// Pick implements Policy.
func (p *Affinity) Pick(view []MemberView) int {
	spill := p.Spill
	if spill <= 0 {
		spill = DefaultSpill
	}
	best := -1
	for i := range view {
		if view[i].Node != p.Node || view[i].Load >= spill {
			continue
		}
		if best < 0 || view[i].Load < view[best].Load ||
			(view[i].Load == view[best].Load && view[i].ID < view[best].ID) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return LeastLoaded{}.Pick(view)
}

// ParsePolicy maps a policy name ("rr", "least", "affinity") to a
// fresh policy instance; node is the client's node for affinity.
// Unknown names fall back to round-robin.
func ParsePolicy(name string, node int) Policy {
	switch name {
	case "least":
		return LeastLoaded{}
	case "affinity":
		return &Affinity{Node: node}
	default:
		return &RoundRobin{}
	}
}

package route

import "testing"

func view(loads ...int) []MemberView {
	v := make([]MemberView, len(loads))
	for i, l := range loads {
		v[i] = MemberView{ID: uint64(i + 1), Load: l}
	}
	return v
}

func TestRoundRobinCycles(t *testing.T) {
	p := &RoundRobin{}
	v := view(0, 0, 0)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.Pick(v); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
	// Membership shrinks: the cursor stays well-defined modulo the new
	// size (no panic, no out-of-range pick).
	v2 := view(0, 0)
	for i := 0; i < 4; i++ {
		if got := p.Pick(v2); got < 0 || got >= len(v2) {
			t.Fatalf("pick after shrink out of range: %d", got)
		}
	}
}

func TestLeastLoadedPicksMinTieLowestID(t *testing.T) {
	p := LeastLoaded{}
	if got := p.Pick(view(3, 1, 2)); got != 1 {
		t.Fatalf("min pick = %d, want 1", got)
	}
	// Tie on load 1 between members 2 and 3 (ids 2,3): lowest id wins.
	if got := p.Pick(view(5, 1, 1)); got != 1 {
		t.Fatalf("tie pick = %d, want 1 (lowest id)", got)
	}
	if got := p.Pick(view(7)); got != 0 {
		t.Fatalf("singleton pick = %d, want 0", got)
	}
}

func TestAffinityPrefersLocalUntilSpill(t *testing.T) {
	p := &Affinity{Node: 1, Spill: 3}
	v := []MemberView{
		{ID: 1, Node: 0, Load: 0},
		{ID: 2, Node: 1, Load: 2},
		{ID: 3, Node: 1, Load: 1},
	}
	// Two local members under the spill bound: least-loaded local (id 3).
	if got := p.Pick(v); got != 2 {
		t.Fatalf("local pick = %d, want 2", got)
	}
	// Local members at/over the spill bound: fall back to global
	// least-loaded (id 1, load 0 on a remote node).
	v[1].Load, v[2].Load = 3, 4
	if got := p.Pick(v); got != 0 {
		t.Fatalf("spill pick = %d, want 0", got)
	}
}

func TestParsePolicy(t *testing.T) {
	if p := ParsePolicy("least", 0); p.Name() != "least" {
		t.Fatalf("least -> %s", p.Name())
	}
	if p := ParsePolicy("affinity", 2); p.Name() != "affinity" {
		t.Fatalf("affinity -> %s", p.Name())
	}
	if p := ParsePolicy("", 0); p.Name() != "rr" {
		t.Fatalf("default -> %s", p.Name())
	}
	if p := ParsePolicy("bogus", 0); p.Name() != "rr" {
		t.Fatalf("unknown -> %s", p.Name())
	}
}

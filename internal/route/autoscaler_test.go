package route_test

import (
	"fmt"
	"testing"

	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/testbed/stacks"
)

// TestAutoscalerSoakNodeFlap is the replicated-service soak: a routed
// service under sustained load loses a node mid-run (heartbeat fences
// it, the registry prunes its member, the autoscaler spawns a
// replacement on a healthy node). Afterwards the registry's membership
// must equal the autoscaler's live instances, the repair MTTR must be
// recorded in virtual time, every request must have completed, and no
// request id may have been executed by more than one surviving replica
// (replica-side dedup absorbs same-replica retries; failover re-issues
// land exactly once because a corpse's executions died with its node).
func TestAutoscalerSoakNodeFlap(t *testing.T) {
	s := &stacks.Routed{
		Replicas: 2, AutoMax: 4, Nodes: []int{1, 2, 3},
		MaxQueue: 8, AttemptTimeout: 5 * ms, UpDepth: 6,
	}
	spec := testbed.Spec{
		Nodes:     4,
		Heartbeat: &services.WatchConfig{Every: 1 * ms, Suspect: 2},
		Services:  []testbed.Service{s},
	}
	const requests = 90
	crashedNode := 1
	testbed.RunT(t, spec, func(tk *sim.Task, d *testbed.Deployment) {
		s.B.Retry.Max = 12
		// Fence the first replica's node mid-load.
		d.K().After(tk.Now()+6*ms, func() { d.Cl.CtrlFor(crashedNode).Crash() })

		errs := 0
		var wg sim.WaitGroup
		wg.Add(3)
		for w := 0; w < 3; w++ {
			w := w
			tk.Kernel().Spawn(fmt.Sprintf("soak-%d", w), func(wt *sim.Task) {
				for i := w; i < requests; i += 3 {
					if err := s.Do(wt, uint64(i+1), 300*us); err != nil {
						errs++
						t.Errorf("request %d: %v", i+1, err)
					}
				}
				wg.Done()
			})
		}
		wg.Wait(tk)
		if errs != 0 {
			t.Fatalf("%d of %d requests failed", errs, requests)
		}

		// Membership convergence: give the repair a beat, then the
		// registry's set must be exactly the autoscaler's live instances,
		// none of them on the fenced node.
		tk.Sleep(10 * ms)
		set, err := s.Client.ResolveSet(tk, s.Name)
		if err != nil {
			t.Fatalf("resolve-set: %v", err)
		}
		live := s.Scaler.Instances()
		if len(set.Members) != len(live) {
			t.Fatalf("registry has %d members, autoscaler has %d instances:\n set: %+v",
				len(set.Members), len(live), set.Members)
		}
		want := make(map[uint64]bool, len(live))
		for _, in := range live {
			if in.Node == crashedNode {
				t.Errorf("live instance still placed on fenced node %d", crashedNode)
			}
			want[in.MemberID] = true
		}
		for _, m := range set.Members {
			if !want[m.ID] {
				t.Errorf("registry member %d not among live instances", m.ID)
			}
			if m.Node == crashedNode {
				t.Errorf("registry still lists member %d on fenced node", m.ID)
			}
		}
		// The control loop is a perpetual ticker; stop it so the kernel's
		// event queue drains and the run completes.
		s.Scaler.Stop()
	})

	// The flap must have been observed and repaired, with MTTR measured
	// in virtual time.
	var lost, repaired int
	for _, e := range s.Scaler.Events() {
		switch e.Kind {
		case "lost":
			lost++
		case "repair":
			repaired++
		}
	}
	if lost == 0 || repaired == 0 {
		t.Fatalf("scale events = %v, want at least one lost and one repair", s.Scaler.Events())
	}
	if mttr := s.Scaler.MTTR(); mttr <= 0 {
		t.Errorf("MTTR = %d, want > 0 (virtual fence-to-replacement latency)", mttr)
	} else {
		t.Logf("membership MTTR: %.3f ms virtual", float64(mttr)/1e6)
	}

	// Double-delivery oracle: across every replica that survived (the
	// fenced node's executions are lost by definition — its effects died
	// with the node), each request id ran at most once.
	seen := make(map[uint64]int)
	for _, in := range s.AllInstances {
		if in.Node == crashedNode {
			continue
		}
		for _, id := range in.R.Served() {
			seen[id]++
			if seen[id] > 1 {
				t.Errorf("request %d executed %d times across surviving replicas", id, seen[id])
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no requests served by surviving replicas")
	}
}

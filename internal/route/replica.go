package route

import (
	"fmt"

	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Routed-service wire conventions. A replica serves one root Request;
// callers use the Balancer, which follows this layout.
const (
	// WorkTag is the default tag for routed-service root Requests.
	WorkTag uint64 = 0x50
	// WorkSlotCont is the reply-continuation slot in a work request.
	WorkSlotCont uint16 = 1
)

// Work request immediates: [0:8) = request id (0 = none; non-zero ids
// are deduplicated so a retried request is not executed twice by the
// same replica), [8:16) and up are service-defined (the Handler sees
// the raw Delivery). Reply immediates: [0:8) = wire.Status, [8:16) =
// the replica's queue depth after the operation (the load signal
// least-loaded routing feeds on), [16:..) = Handler extras shifted by
// ReplyExtraOff.
const ReplyExtraOff = 16

// DefaultMaxQueue bounds a replica's admission queue when
// Replica.MaxQueue is zero.
const DefaultMaxQueue = 16

// Handler executes one admitted request and returns the reply status
// plus extra reply immediates/caps. Extra immediates are offset
// relative to ReplyExtraOff.
type Handler func(t *sim.Task, d *proc.Delivery) (wire.Status, []wire.ImmArg, []proc.Arg)

// ReplicaStats counts a replica's admission decisions.
type ReplicaStats struct {
	Accepted   int
	Shed       int // refused with StatusBackpressure at MaxQueue
	Completed  int
	Duplicates int // re-delivered ids answered without re-execution
	DepthHWM   int
}

// Replica is one instance of a routed service: a Process serving a
// root Request behind a bounded admission queue. The receive loop
// admits up to MaxQueue outstanding requests and sheds the rest with
// wire.StatusBackpressure (retryable — the balancer backs off or
// fails over) instead of queueing unboundedly; Width worker tasks
// drain the queue through Handler. Every reply piggybacks the current
// queue depth, which is the load signal least-loaded routing and the
// autoscaler consume.
type Replica struct {
	P *proc.Process
	// Tag is the root Request's tag; 0 means WorkTag.
	Tag uint64
	// MaxQueue is the admission bound (queued + in service); 0 means
	// DefaultMaxQueue.
	MaxQueue int
	// Width is the number of worker tasks; 0 means 1.
	Width int
	// Handler executes admitted requests; nil replies OK immediately.
	Handler Handler

	// Root is the replica's root Request, filled by Start; register it
	// under the service's name.
	Root proc.Cap

	queue    *sim.Chan[*proc.Delivery]
	depth    int
	draining bool
	seen     map[uint64]bool
	served   []uint64
	stats    ReplicaStats
}

// Start creates the root Request and spawns the receive loop plus
// Width workers.
func (r *Replica) Start(t *sim.Task) error {
	if r.Tag == 0 {
		r.Tag = WorkTag
	}
	if r.MaxQueue <= 0 {
		r.MaxQueue = DefaultMaxQueue
	}
	if r.Width <= 0 {
		r.Width = 1
	}
	root, err := r.P.RequestCreate(t, r.Tag, nil, nil)
	if err != nil {
		return fmt.Errorf("route: replica: %w", err)
	}
	r.Root = root
	r.seen = make(map[uint64]bool)
	k := r.P.Kernel()
	r.queue = sim.NewChan[*proc.Delivery](k, "replica-q", r.MaxQueue)
	k.Spawn("replica-rx", r.rx)
	for i := 0; i < r.Width; i++ {
		k.Spawn(fmt.Sprintf("replica-w%d", i), r.work)
	}
	return nil
}

// Depth returns the current admitted-but-incomplete request count (the
// autoscaler's load signal).
func (r *Replica) Depth() int { return r.depth }

// Stats returns the admission counters.
func (r *Replica) Stats() ReplicaStats { return r.stats }

// Served returns the non-zero request ids executed by this replica, in
// execution order (the double-delivery oracle for soak tests).
func (r *Replica) Served() []uint64 { return r.served }

// Drain stops admitting new requests (they are refused with
// wire.StatusNoProc so callers fail over) and blocks until the queue
// empties. Call before deregistering + Bye for a graceful retire.
func (r *Replica) Drain(t *sim.Task) {
	r.draining = true
	for r.depth > 0 {
		t.Sleep(drainTick)
	}
}

const drainTick = 100 * sim.Time(1000) // 100 µs

func (r *Replica) rx(t *sim.Task) {
	for {
		d, ok := r.P.Receive(t)
		if !ok {
			r.queue.Close()
			return
		}
		id := d.U64(0)
		switch {
		case r.draining:
			r.reply(t, d, wire.StatusNoProc, nil, nil)
		case id != 0 && r.seen[id]:
			// The balancer retried a request this replica already
			// admitted (its first reply was lost to a fault); answer
			// idempotently instead of executing twice.
			r.stats.Duplicates++
			r.reply(t, d, wire.StatusOK, nil, nil)
		case r.depth >= r.MaxQueue:
			r.stats.Shed++
			r.reply(t, d, wire.StatusBackpressure, nil, nil)
		default:
			if id != 0 {
				r.seen[id] = true
			}
			r.depth++
			if r.depth > r.stats.DepthHWM {
				r.stats.DepthHWM = r.depth
			}
			r.stats.Accepted++
			// Never blocks: depth < MaxQueue implies queue space.
			r.queue.Send(t, d)
		}
		d.Done()
	}
}

func (r *Replica) work(t *sim.Task) {
	for {
		d, ok := r.queue.Recv(t)
		if !ok {
			return
		}
		st, imms, args := wire.StatusOK, []wire.ImmArg(nil), []proc.Arg(nil)
		if r.Handler != nil {
			st, imms, args = r.Handler(t, d)
		}
		if id := d.U64(0); id != 0 {
			r.served = append(r.served, id)
		}
		r.depth--
		r.stats.Completed++
		r.reply(t, d, st, imms, args)
	}
}

func (r *Replica) reply(t *sim.Task, d *proc.Delivery, st wire.Status, extra []wire.ImmArg, args []proc.Arg) {
	cont, ok := d.Cap(WorkSlotCont)
	if !ok {
		return
	}
	imms := []wire.ImmArg{
		proc.U64Arg(0, uint64(st)),
		proc.U64Arg(8, uint64(r.depth)),
	}
	for _, im := range extra {
		im.Offset += ReplyExtraOff
		imms = append(imms, im)
	}
	if err := r.P.Invoke(t, cont, imms, args); err != nil {
		// Caller (or this replica's own Controller) is gone; the
		// retry/failover layers on the client side own recovery.
		return
	}
}

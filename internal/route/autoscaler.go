package route

import (
	"fmt"

	"fractos/internal/services"
	"fractos/internal/sim"
)

// Instance is one running replica the autoscaler manages: the replica
// itself plus its registration ticket.
type Instance struct {
	Node     int
	Seq      int
	MemberID uint64
	R        *Replica
	// Client is the replica Process's registry handle (Deregister at
	// retire time).
	Client *services.Client
}

// ScaleEvent is one autoscaler action, in virtual time.
type ScaleEvent struct {
	At   sim.Time
	Kind string // "up", "down", "lost", "repair"
	Node int
	// Members is the instance count after the action.
	Members int
	// Latency is, for "repair" events, fence-to-replacement-registered
	// time: the membership MTTR.
	Latency sim.Time
}

func (e ScaleEvent) String() string {
	return fmt.Sprintf("%d %s node=%d members=%d lat=%d", e.At, e.Kind, e.Node, e.Members, e.Latency)
}

// Autoscaler keeps a replicated service between Min and Max instances,
// reacting to two signals: the replicas' aggregate queue depth (the
// same piggybacked load signal routing uses) sampled every Every, and
// NodeWatch health events (a fenced node loses its instances
// immediately and replacements spawn on healthy nodes — the membership
// MTTR is recorded per repair). Spawn and Retire are supplied by the
// deployment layer; both run inside simulation tasks and may issue
// syscalls.
//
// Determinism: the control loop is a virtual-time ticker, instance
// lists are slices in spawn order, and node selection is a rotation
// over the sorted healthy-node list — no map iteration, no wall clock.
type Autoscaler struct {
	// Min and Max bound the instance count. Min 0 means 1.
	Min, Max int
	// Every is the control-loop period; 0 means DefaultScaleEvery.
	Every sim.Time
	// UpDepth scales up when average depth per instance exceeds it;
	// 0 means DefaultUpDepth.
	UpDepth float64
	// DownDepth scales down (above Min) when average depth falls below
	// it. Zero disables scale-down.
	DownDepth float64
	// CooldownTicks is the minimum number of control periods between
	// load-driven scale actions (repairs are exempt); 0 means 1.
	CooldownTicks int
	// Nodes are the candidate placement nodes, in preference order.
	Nodes []int
	// Spawn creates, starts, and registers one replica on node.
	Spawn func(t *sim.Task, node, seq int) (*Instance, error)
	// Retire drains, deregisters, and stops one replica.
	Retire func(t *sim.Task, in *Instance)
	// Balancer, when non-nil, is invalidated after every membership
	// change so cached sets refresh promptly.
	Balancer *Balancer

	instances []*Instance
	seq       int
	cooldown  int
	stopped   bool
	fenced    map[int]bool
	nextNode  int
	events    []ScaleEvent
}

// Defaults for Autoscaler's zero fields.
const (
	DefaultScaleEvery = sim.Time(1000 * 1000) // 1 ms
	DefaultUpDepth    = 8.0
)

// Instances returns the live instances in spawn order.
func (a *Autoscaler) Instances() []*Instance { return a.instances }

// Events returns the scale actions taken so far.
func (a *Autoscaler) Events() []ScaleEvent { return a.events }

// MTTR returns the worst fence-to-repair latency observed (0 if no
// repair happened).
func (a *Autoscaler) MTTR() sim.Time {
	var worst sim.Time
	for _, e := range a.events {
		if e.Kind == "repair" && e.Latency > worst {
			worst = e.Latency
		}
	}
	return worst
}

// Start brings the service to Min instances and spawns the control
// loop.
func (a *Autoscaler) Start(t *sim.Task, k *sim.Kernel) error {
	if a.Min < 1 {
		a.Min = 1
	}
	if a.Max < a.Min {
		a.Max = a.Min
	}
	if a.Every <= 0 {
		a.Every = DefaultScaleEvery
	}
	if a.UpDepth <= 0 {
		a.UpDepth = DefaultUpDepth
	}
	if a.CooldownTicks < 1 {
		a.CooldownTicks = 1
	}
	a.fenced = make(map[int]bool)
	for len(a.instances) < a.Min {
		if err := a.spawnOne(t, "up"); err != nil {
			return err
		}
	}
	k.Spawn("autoscaler", a.loop)
	return nil
}

// Stop ends the control loop after the current tick.
func (a *Autoscaler) Stop() { a.stopped = true }

// BindWatch subscribes the autoscaler to a NodeWatch: fencing a node
// removes its instances from the managed set at once (the registry's
// own BindWatch prunes their registrations) and schedules replacements
// on healthy nodes; recovery puts the node back in the placement
// rotation.
func (a *Autoscaler) BindWatch(w *services.NodeWatch, k *sim.Kernel) {
	w.Subscribe(func(e services.WatchEvent) {
		node, ok := w.NodeOf(e.Ctrl)
		if !ok {
			return
		}
		switch e.Kind {
		case services.WatchFenced:
			a.fenced[node] = true
			a.onNodeLost(k, node, e.At)
		case services.WatchRecovered:
			a.fenced[node] = false
		}
	})
}

// onNodeLost drops the node's instances and spawns replacements from a
// fresh task (the watch callback runs inside the prober; repairs must
// not delay probe rounds).
func (a *Autoscaler) onNodeLost(k *sim.Kernel, node int, fencedAt sim.Time) {
	lost := 0
	kept := a.instances[:0]
	for _, in := range a.instances {
		if in.Node == node {
			lost++
			continue
		}
		kept = append(kept, in)
	}
	a.instances = kept
	if lost == 0 {
		return
	}
	a.events = append(a.events, ScaleEvent{At: fencedAt, Kind: "lost", Node: node, Members: len(a.instances)})
	if a.Balancer != nil {
		a.Balancer.Invalidate()
	}
	k.Spawn("scale-repair", func(t *sim.Task) {
		for i := 0; i < lost && len(a.instances) < a.Max; i++ {
			if err := a.spawnOne(t, "repair"); err != nil {
				return
			}
			a.events[len(a.events)-1].Latency = t.Now() - fencedAt
		}
	})
}

func (a *Autoscaler) loop(t *sim.Task) {
	for !a.stopped {
		t.Sleep(a.Every)
		if a.cooldown > 0 {
			a.cooldown--
			continue
		}
		n := len(a.instances)
		if n == 0 {
			continue
		}
		depth := 0
		for _, in := range a.instances {
			depth += in.R.Depth()
		}
		avg := float64(depth) / float64(n)
		switch {
		case avg > a.UpDepth && n < a.Max:
			if err := a.spawnOne(t, "up"); err == nil {
				a.cooldown = a.CooldownTicks
			}
		case a.DownDepth > 0 && avg < a.DownDepth && n > a.Min:
			a.retireOne(t)
			a.cooldown = a.CooldownTicks
		}
	}
}

// pickNode rotates over the healthy candidate nodes.
func (a *Autoscaler) pickNode() (int, bool) {
	if len(a.Nodes) == 0 {
		return 0, false
	}
	for i := 0; i < len(a.Nodes); i++ {
		node := a.Nodes[a.nextNode%len(a.Nodes)]
		a.nextNode++
		if !a.fenced[node] {
			return node, true
		}
	}
	return 0, false
}

func (a *Autoscaler) spawnOne(t *sim.Task, kind string) error {
	node, ok := a.pickNode()
	if !ok {
		return fmt.Errorf("route: autoscaler: no healthy node")
	}
	a.seq++
	in, err := a.Spawn(t, node, a.seq)
	if err != nil {
		return err
	}
	a.instances = append(a.instances, in)
	a.events = append(a.events, ScaleEvent{At: t.Now(), Kind: kind, Node: node, Members: len(a.instances)})
	if a.Balancer != nil {
		a.Balancer.Invalidate()
	}
	return nil
}

func (a *Autoscaler) retireOne(t *sim.Task) {
	last := len(a.instances) - 1
	in := a.instances[last]
	a.instances = a.instances[:last]
	a.events = append(a.events, ScaleEvent{At: t.Now(), Kind: "down", Node: in.Node, Members: len(a.instances)})
	if a.Balancer != nil {
		a.Balancer.Invalidate()
	}
	a.Retire(t, in)
}

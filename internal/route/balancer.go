package route

import (
	"errors"
	"fmt"

	"fractos/internal/proc"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// ErrNoMembers is returned (wrapped in retry classification as
// transient) when a service's replica set is empty or every member's
// breaker is open.
var ErrNoMembers = errors.New("route: no routable members")

// BalancerStats counts the balancer's routing decisions.
type BalancerStats struct {
	Calls     int
	Shed      int // attempts refused with StatusBackpressure
	Failovers int // member-fatal errors that invalidated the cached set
	Resolves  int // ResolveSet round-trips
}

// Balancer is a Process's resolving handle on a replicated service:
// it caches the name's replica set, routes each call through a Policy
// over live load signals, retries transient failures with PR-4's
// Retry policy, keeps a per-member circuit Breaker, and re-resolves
// the set when a member dies underneath it (revoked/stale/fenced
// capabilities classify as member-fatal: the cached set is invalidated
// and the next attempt routes around the corpse).
//
// A Balancer is bound to one client Process and driven only from that
// Process's tasks (the usual single-kernel cooperative concurrency —
// no locking).
type Balancer struct {
	// Client is the registry handle of the calling Process.
	Client *services.Client
	// Name is the replicated service's registry name.
	Name string
	// Policy routes calls; nil means round-robin.
	Policy Policy
	// Retry is the per-call retry template. Zero Max gets
	// DefaultCallAttempts; Classify is extended (not replaced) with
	// member-fatal and circuit-open classification.
	Retry proc.Retry
	// Breaker is the per-member circuit-breaker template (Threshold,
	// Cooldown); each member gets its own instance.
	Breaker proc.Breaker
	// AttemptTimeout bounds each routed call in virtual time. A replica
	// whose Controller crashes after admitting a request can never
	// reply (its revocation tree died with it, §3.6), so an unbounded
	// wait would hang the caller forever; the timeout converts that
	// silence into proc.ErrCallTimeout, which classifies as transient
	// and fails over. 0 means DefaultAttemptTimeout; negative means
	// unbounded (only safe when providers cannot crash mid-service).
	AttemptTimeout sim.Time
	// Record, when set, appends every routed member id to Picks (the
	// determinism property tests' oracle).
	Record bool
	// Picks is the recorded selection sequence (Record).
	Picks []uint64

	set      services.Set
	valid    bool
	inflight map[uint64]int
	depth    map[uint64]int
	breakers map[uint64]*proc.Breaker
	stats    BalancerStats
}

// DefaultCallAttempts is Balancer.Call's retry budget when Retry.Max
// is zero.
const DefaultCallAttempts = 4

// DefaultAttemptTimeout is the per-attempt reply bound when
// AttemptTimeout is zero: generous against queueing (MaxQueue × a
// multi-millisecond service time) yet bounded against a dead provider.
const DefaultAttemptTimeout = 100 * sim.Time(1000*1000) // 100 ms

// Stats returns the routing counters.
func (b *Balancer) Stats() BalancerStats { return b.stats }

// Version returns the membership version of the cached set (0 before
// the first resolve).
func (b *Balancer) Version() uint64 { return b.set.Version }

// Invalidate drops the cached replica set; the next call re-resolves.
// Autoscalers call this after changing membership.
func (b *Balancer) Invalidate() { b.valid = false }

// memberFatal reports whether err says the routed member itself is
// gone (capability revoked, stale after a Controller reboot, or never
// installed) — the set must be re-resolved, and the call is worth
// re-routing to a sibling.
func memberFatal(err error) bool {
	return wire.IsStatus(err, wire.StatusRevoked) ||
		wire.IsStatus(err, wire.StatusStale) ||
		wire.IsStatus(err, wire.StatusNoCap)
}

// Call routes one request to the replica set: immediates follow the
// replica.go work layout (the caller owns imm[0:8) request id and the
// service-defined bytes from [8:..)). It returns the service's reply
// delivery on success.
func (b *Balancer) Call(t *sim.Task, imms []wire.ImmArg, args []proc.Arg) (*proc.Delivery, error) {
	b.stats.Calls++
	pol := b.Retry
	if pol.Max < 1 {
		pol.Max = DefaultCallAttempts
	}
	base := pol.Classify
	if base == nil {
		base = proc.Retryable
	}
	pol.Classify = func(err error) bool {
		return base(err) || memberFatal(err) ||
			errors.Is(err, proc.ErrCircuitOpen) || errors.Is(err, ErrNoMembers)
	}
	var out *proc.Delivery
	err := pol.Do(t, func(t *sim.Task) error {
		return b.attempt(t, imms, args, &out)
	})
	if err != nil {
		return nil, fmt.Errorf("route: %s: %w", b.Name, err)
	}
	return out, nil
}

func (b *Balancer) attempt(t *sim.Task, imms []wire.ImmArg, args []proc.Arg, out **proc.Delivery) error {
	m, brk, err := b.pick(t)
	if err != nil {
		return err
	}
	if !brk.Allow(t.Now()) {
		return proc.ErrCircuitOpen
	}
	to := b.AttemptTimeout
	if to == 0 {
		to = DefaultAttemptTimeout
	} else if to < 0 {
		to = 0 // explicit opt-out: unbounded
	}
	b.inflight[m.ID]++
	d, err := b.Client.P.CallTimeout(t, m.Cap, imms, args, WorkSlotCont, to)
	b.inflight[m.ID]--
	if err == nil {
		// Reply received; the depth piggyback is fresh either way.
		b.depth[m.ID] = int(d.U64(8))
		err = d.Err()
	}
	if err == nil {
		brk.Report(t.Now(), true)
		*out = d
		return nil
	}
	if wire.IsStatus(err, wire.StatusBackpressure) {
		b.stats.Shed++
	}
	// Permanent application errors don't indict the replica's health;
	// transient/member-fatal ones do.
	brk.Report(t.Now(), !proc.Retryable(err) && !memberFatal(err))
	if memberFatal(err) || wire.IsStatus(err, wire.StatusNoProc) ||
		errors.Is(err, proc.ErrCallTimeout) {
		b.stats.Failovers++
		b.valid = false
	}
	return err
}

// pick resolves the set if needed, builds the policy view over members
// whose breakers admit traffic, and routes.
func (b *Balancer) pick(t *sim.Task) (services.Member, *proc.Breaker, error) {
	if b.inflight == nil {
		b.inflight = make(map[uint64]int)
		b.depth = make(map[uint64]int)
		b.breakers = make(map[uint64]*proc.Breaker)
	}
	if b.Policy == nil {
		b.Policy = &RoundRobin{}
	}
	if !b.valid {
		s, err := b.Client.ResolveSet(t, b.Name)
		if err != nil {
			return services.Member{}, nil, err
		}
		b.set = s
		b.valid = true
		b.stats.Resolves++
	}
	view := make([]MemberView, 0, len(b.set.Members))
	kept := make([]services.Member, 0, len(b.set.Members))
	for _, m := range b.set.Members {
		if b.breakerFor(m.ID).State(t.Now()) == "open" {
			continue
		}
		view = append(view, MemberView{ID: m.ID, Node: m.Node, Load: b.inflight[m.ID] + b.depth[m.ID]})
		kept = append(kept, m)
	}
	if len(view) == 0 {
		// Empty set (service not registered yet, or fully fenced) or
		// every breaker open: re-resolve on the next attempt.
		b.valid = false
		return services.Member{}, nil, ErrNoMembers
	}
	i := b.Policy.Pick(view)
	m := kept[i]
	if b.Record {
		b.Picks = append(b.Picks, m.ID)
	}
	return m, b.breakerFor(m.ID), nil
}

func (b *Balancer) breakerFor(id uint64) *proc.Breaker {
	brk, ok := b.breakers[id]
	if !ok {
		brk = &proc.Breaker{Threshold: b.Breaker.Threshold, Cooldown: b.Breaker.Cooldown}
		b.breakers[id] = brk
	}
	return brk
}

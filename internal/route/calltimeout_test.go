package route

import (
	"errors"
	"testing"

	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// TestCallTimeoutOnCrashMidService pins the failure mode that motivated
// proc.CallTimeout: a replica's Controller crashes after admitting a
// request. The crashed Controller's revocation trees die with it, so no
// failure notification ever resolves the caller's continuation — an
// unbounded Call would hang forever (verified: this test deadlocked
// before CallTimeout existed). The bounded call must return
// proc.ErrCallTimeout at the deadline.
func TestCallTimeoutOnCrashMidService(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) {
		svc := proc.Attach(cl, 1, "svc", 0)
		rep := &Replica{P: svc, Handler: func(t *sim.Task, d *proc.Delivery) (wire.Status, []wire.ImmArg, []proc.Arg) {
			t.Sleep(10 * 1000 * 1000) // 10 ms service
			return wire.StatusOK, nil, nil
		}}
		if err := rep.Start(tk); err != nil {
			t.Fatal(err)
		}
		client := proc.Attach(cl, 0, "client", 0)
		root, err := proc.GrantCap(svc, rep.Root, client)
		if err != nil {
			t.Fatal(err)
		}
		cl.K.After(5*1000*1000, func() { cl.CtrlFor(1).Crash() }) // mid-service
		start := tk.Now()
		_, err = client.CallTimeout(tk, root, nil, nil, WorkSlotCont, 20*1000*1000)
		if !errors.Is(err, proc.ErrCallTimeout) {
			t.Fatalf("call = %v, want ErrCallTimeout", err)
		}
		if !proc.Retryable(err) {
			t.Fatal("ErrCallTimeout must classify as transient")
		}
		if got := tk.Now() - start; got < 20*1000*1000 {
			t.Fatalf("timed out after %d ns, before the 20 ms bound", got)
		}
		done = true
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("DEADLOCK: call never returned")
	}
}

// TestCallTimeoutLateReplyAcked: the reply races the timeout — the
// provider answers *after* the deadline but the Controllers are all
// healthy. The late reply must be absorbed (acked, not leaked into the
// client's Receive queue), and a subsequent bounded call on the same
// client must still work.
func TestCallTimeoutLateReplyAcked(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) {
		svc := proc.Attach(cl, 1, "svc", 0)
		rep := &Replica{P: svc, Handler: func(t *sim.Task, d *proc.Delivery) (wire.Status, []wire.ImmArg, []proc.Arg) {
			if ns := d.U64(8); ns > 0 {
				t.Sleep(sim.Time(ns))
			}
			return wire.StatusOK, nil, nil
		}}
		if err := rep.Start(tk); err != nil {
			t.Fatal(err)
		}
		client := proc.Attach(cl, 0, "client", 0)
		root, err := proc.GrantCap(svc, rep.Root, client)
		if err != nil {
			t.Fatal(err)
		}
		// 5 ms of service against a 1 ms bound: times out, reply lands later.
		_, err = client.CallTimeout(tk, root,
			[]wire.ImmArg{proc.U64Arg(0, 1), proc.U64Arg(8, 5*1000*1000)},
			nil, WorkSlotCont, 1*1000*1000)
		if !errors.Is(err, proc.ErrCallTimeout) {
			t.Fatalf("slow call = %v, want ErrCallTimeout", err)
		}
		tk.Sleep(10 * 1000 * 1000) // let the late reply arrive and be absorbed

		// Fast follow-up call succeeds on the same client Process.
		d, err := client.CallTimeout(tk, root,
			[]wire.ImmArg{proc.U64Arg(0, 2)}, nil, WorkSlotCont, 20*1000*1000)
		if err != nil {
			t.Fatalf("follow-up call: %v", err)
		}
		if st := d.Status(); st != wire.StatusOK {
			t.Fatalf("follow-up status = %v", st)
		}
		// Nothing stray in the Receive path.
		if _, ok := client.ReceiveTimeout(tk, 1*1000*1000); ok {
			t.Fatal("late reply leaked into the Receive queue")
		}
		done = true
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("deadlock")
	}
}

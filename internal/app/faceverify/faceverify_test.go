package faceverify

import (
	"math/rand"
	"testing"

	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

// newTestDevice builds a GPU with the face-verification kernel.
func newTestDevice(k *sim.Kernel) *gpu.Device {
	dev := gpu.NewDevice(k, gpu.DefaultConfig())
	RegisterKernel(dev)
	return dev
}

func runApp(t *testing.T, placement core.Placement, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	testbed.RunT(t, testbed.Spec{Nodes: 4, Placement: placement},
		func(tk *sim.Task, d *testbed.Deployment) { fn(tk, d.Cl) })
}

func TestKernelVerdicts(t *testing.T) {
	db := NewDB(64, 7)
	rng := rand.New(rand.NewSource(1))
	// Build GPU memory by hand and run the kernel function directly.
	req := MakeRequest(db, 0, 16, rng)
	mem := make([]byte, 16*ImgSize+16*ProbeSize+16)
	copy(mem, db.BatchFile(0, 16))
	copy(mem[16*ImgSize:], req.Probes)
	out := uint64(16*ImgSize + 16*ProbeSize)

	// Registering on a device requires a kernel; reuse its function by
	// executing through the device with zero-cost timing.
	k := sim.New(1)
	done := false
	k.Spawn("exec", func(tk *sim.Task) {
		defer func() { done = true }()
		dev := newTestDevice(k)
		st, err := dev.Exec(tk, KernelName, mem, []uint64{0, 16 * ImgSize, out, 16})
		if err != nil || st != 0 {
			t.Errorf("exec: st=%d err=%v", st, err)
			return
		}
		if !req.CheckResults(mem[out:]) {
			t.Error("kernel verdicts disagree with ground truth")
		}
	})
	k.Run()
	k.Shutdown()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestFractOSEndToEnd(t *testing.T) {
	runApp(t, core.CtrlOnCPU, func(tk *sim.Task, cl *core.Cluster) {
		app, err := SetupFractOS(tk, cl, Config{Batch: 8, Files: 2, Slots: 2})
		if err != nil {
			t.Fatalf("setup: %v", err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 4; i++ {
			req := MakeRequest(app.DB, i%2, 8, rng)
			out, err := app.VerifyBatch(tk, req)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if !req.CheckResults(out) {
				t.Fatalf("request %d: wrong verdicts %v (genuine %v)", i, out, req.Genuine)
			}
		}
	})
}

func TestFractOSEndToEndSNIC(t *testing.T) {
	runApp(t, core.CtrlOnSNIC, func(tk *sim.Task, cl *core.Cluster) {
		app, err := SetupFractOS(tk, cl, Config{Batch: 4, Files: 1, Slots: 1})
		if err != nil {
			t.Fatalf("setup: %v", err)
		}
		rng := rand.New(rand.NewSource(4))
		req := MakeRequest(app.DB, 0, 4, rng)
		out, err := app.VerifyBatch(tk, req)
		if err != nil {
			t.Fatal(err)
		}
		if !req.CheckResults(out) {
			t.Fatal("wrong verdicts on sNIC deployment")
		}
	})
}

func TestBaselineEndToEnd(t *testing.T) {
	runApp(t, core.CtrlOnCPU, func(tk *sim.Task, cl *core.Cluster) {
		app, err := SetupBaseline(tk, cl, Config{Batch: 8, Files: 2, Slots: 2})
		if err != nil {
			t.Fatalf("setup: %v", err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 4; i++ {
			req := MakeRequest(app.DB, i%2, 8, rng)
			out, err := app.VerifyBatch(tk, req)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if !req.CheckResults(out) {
				t.Fatalf("request %d: wrong verdicts", i)
			}
		}
	})
}

// TestPipelineSurvivesStorageFailure: killing the block adaptor makes
// subsequent requests fail with errors rather than hang — the
// adaptor's Controller revoked everything it provided, and the
// frontend observes dead capabilities (§3.6).
func TestPipelineSurvivesStorageFailure(t *testing.T) {
	runApp(t, core.CtrlOnCPU, func(tk *sim.Task, cl *core.Cluster) {
		app, err := SetupFractOS(tk, cl, Config{Batch: 8, Files: 2, Slots: 1})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		req := MakeRequest(app.DB, 0, 8, rng)
		if out, err := app.VerifyBatch(tk, req); err != nil || !req.CheckResults(out) {
			t.Fatalf("healthy request failed: %v", err)
		}

		// Kill the NVMe adaptor Process: the storage Controller
		// revokes everything it provided, including the DAX leases.
		if !cl.CtrlFor(NodeStorage).FailProcess(app.nvmeAdaptorPID()) {
			t.Fatal("could not fail the adaptor")
		}
		tk.Sleep(500 * 1000)

		done := sim.NewChan[error](cl.K, "res", 0)
		cl.K.Spawn("post-failure", func(pt *sim.Task) {
			_, err := app.VerifyBatch(pt, MakeRequest(app.DB, 1, 8, rng))
			done.Send(pt, err)
		})
		err2, ok := done.RecvTimeout(tk, 50*1000*1000) // 50ms virtual
		if !ok {
			t.Fatal("request against dead storage hung")
		}
		if err2 == nil {
			t.Fatal("request against dead storage succeeded")
		}
	})
}

// TestFractOSFasterAndLeaner reproduces the headline claims of §6.5 in
// miniature: for the same requests, FractOS has lower latency and
// moves fewer bytes across the switch than the baseline stack.
func TestFractOSFasterAndLeaner(t *testing.T) {
	// One fresh file per request: the paper's random-read pattern that
	// defeats the FS-node page cache (§6.4).
	cfg := Config{Batch: 32, Files: 4, Slots: 2}
	measure := func(setup func(tk *sim.Task, cl *core.Cluster) (func(*sim.Task, *Request) ([]byte, error), *DB)) (lat sim.Time, bytes int64) {
		testbed.RunT(t, testbed.Spec{Nodes: 4, Placement: core.CtrlOnCPU},
			func(tk *sim.Task, d *testbed.Deployment) {
				cl := d.Cl
				verify, db := setup(tk, cl)
				rng := rand.New(rand.NewSource(9))
				reqs := make([]*Request, 4)
				for i := range reqs {
					reqs[i] = MakeRequest(db, i, cfg.Batch, rng)
				}
				before := cl.Net.Stats()
				start := tk.Now()
				for _, r := range reqs {
					if out, err := verify(tk, r); err != nil || !r.CheckResults(out) {
						t.Errorf("verify failed: %v", err)
						return
					}
				}
				lat = (tk.Now() - start) / sim.Time(len(reqs))
				bytes = cl.Net.Stats().Sub(before).CrossNodeBytes / int64(len(reqs))
			})
		return lat, bytes
	}

	fLat, fBytes := measure(func(tk *sim.Task, cl *core.Cluster) (func(*sim.Task, *Request) ([]byte, error), *DB) {
		app, err := SetupFractOS(tk, cl, cfg)
		if err != nil {
			t.Fatalf("fractos setup: %v", err)
		}
		return app.VerifyBatch, app.DB
	})
	bLat, bBytes := measure(func(tk *sim.Task, cl *core.Cluster) (func(*sim.Task, *Request) ([]byte, error), *DB) {
		app, err := SetupBaseline(tk, cl, cfg)
		if err != nil {
			t.Fatalf("baseline setup: %v", err)
		}
		return app.VerifyBatch, app.DB
	})

	t.Logf("latency: fractos=%v baseline=%v (%.0f%% faster)", fLat, bLat,
		100*(float64(bLat)-float64(fLat))/float64(fLat))
	t.Logf("cross-node bytes/request: fractos=%d baseline=%d (%.2fx)", fBytes, bBytes,
		float64(bBytes)/float64(fBytes))
	if fLat >= bLat {
		t.Errorf("FractOS latency %v not below baseline %v", fLat, bLat)
	}
	if float64(bBytes) < 1.5*float64(fBytes) {
		t.Errorf("traffic reduction %.2fx, want >1.5x (paper: ~3x incl. control)", float64(bBytes)/float64(fBytes))
	}
}

package faceverify

import (
	"fmt"

	"fractos/internal/baseline"
	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/device/nvme"
	"fractos/internal/sim"
)

// BaselineApp is the face-verification frontend on the paper's
// baseline stack (§6.5): NFS (backed by NVMe-oF) for storage, rCUDA
// for the GPU. All control and data funnel through the frontend node —
// the star topology whose disaggregation tax FractOS removes.
type BaselineApp struct {
	cfg Config
	cl  *core.Cluster
	DB  *DB

	GPUDev  *gpu.Device
	NVMeDev *nvme.Device

	nfs        *baseline.NFSClient
	rcuda      *baseline.RCUDAClient
	dropCaches func()

	slotSem *sim.Semaphore
	slots   []*baseSlot
}

// baseSlot is one in-flight lane: pre-allocated GPU addresses.
type baseSlot struct {
	dbAddr, probeAddr, outAddr uint64
}

// SetupBaseline deploys the baseline stack on the same node roles as
// the FractOS deployment and seeds the same database.
func SetupBaseline(t *sim.Task, cl *core.Cluster, cfg Config) (*BaselineApp, error) {
	cfg = cfg.withDefaults()
	if cfg.Batch > 256 {
		return nil, fmt.Errorf("faceverify: batch %d exceeds one extent", cfg.Batch)
	}
	a := &BaselineApp{cfg: cfg, cl: cl, DB: NewDB(cfg.Files*cfg.Batch, cfg.Seed)}

	a.GPUDev = gpu.NewDevice(cl.K, gpu.DefaultConfig())
	RegisterKernel(a.GPUDev)
	rcudaSrv := baseline.NewRCUDAServer(cl.K, cl.Net, NodeGPU, a.GPUDev)
	a.rcuda = baseline.NewRCUDAClient(cl.K, cl.Net, NodeFrontend, rcudaSrv)

	a.NVMeDev = nvme.NewDevice(cl.K, nvme.DefaultConfig())
	target := baseline.NewNVMeoFTarget(cl.K, cl.Net, NodeStorage, a.NVMeDev)
	ini := baseline.NewNVMeoFInitiator(cl.K, cl.Net, NodeFS, target, true)
	nfsSrv := baseline.NewNFSServer(cl.K, cl.Net, NodeFS, ini)
	a.nfs = baseline.NewNFSClient(cl.K, cl.Net, NodeFrontend, nfsSrv)
	a.dropCaches = ini.DropCaches

	// Seed the database over NFS.
	n := int64(cfg.batchBytes())
	for i := 0; i < cfg.Files; i++ {
		name := batchFileName(i)
		if err := a.nfs.Create(t, name, n); err != nil {
			return nil, err
		}
		fd, _, err := a.nfs.Open(t, name)
		if err != nil {
			return nil, err
		}
		if err := a.nfs.Write(t, fd, 0, a.DB.BatchFile(i*cfg.Batch, cfg.Batch)); err != nil {
			return nil, err
		}
	}
	// Give write-back a moment to drain, then drop the FS-node cache
	// so measurement starts cold (the paper's random reads are
	// cache-ineffective, §6.4).
	t.Sleep(5 * sim.Time(1e6))
	a.dropCaches()

	// Pre-allocate the GPU buffer pool (same pool discipline as the
	// FractOS app).
	a.slotSem = sim.NewSemaphore(cfg.Slots)
	for i := 0; i < cfg.Slots; i++ {
		s := &baseSlot{}
		var err error
		if s.dbAddr, err = a.rcuda.Malloc(t, int(cfg.batchBytes())); err != nil {
			return nil, err
		}
		if s.probeAddr, err = a.rcuda.Malloc(t, int(cfg.probeBytes())); err != nil {
			return nil, err
		}
		if s.outAddr, err = a.rcuda.Malloc(t, cfg.Batch); err != nil {
			return nil, err
		}
		a.slots = append(a.slots, s)
	}
	return a, nil
}

// VerifyBatch executes one request through the baseline star: open,
// NFS read (data to the frontend), two rCUDA uploads, launch, download.
func (a *BaselineApp) VerifyBatch(t *sim.Task, req *Request) ([]byte, error) {
	if req.Batch != a.cfg.Batch {
		return nil, fmt.Errorf("faceverify: request batch %d != configured %d", req.Batch, a.cfg.Batch)
	}
	a.slotSem.Acquire(t)
	s := a.slots[len(a.slots)-1]
	a.slots = a.slots[:len(a.slots)-1]
	defer func() {
		a.slots = append(a.slots, s)
		a.slotSem.Release()
	}()

	// (1) Fetch the database images to the frontend via NFS.
	fd, _, err := a.nfs.Open(t, batchFileName(req.FileIdx%a.cfg.Files))
	if err != nil {
		return nil, err
	}
	dbImgs, err := a.nfs.Read(t, fd, 0, int(a.cfg.batchBytes()))
	if err != nil {
		return nil, err
	}

	// (2) Ship everything to the GPU through rCUDA.
	if err := a.rcuda.MemcpyH2D(t, s.dbAddr, dbImgs); err != nil {
		return nil, err
	}
	if err := a.rcuda.MemcpyH2D(t, s.probeAddr, req.Probes); err != nil {
		return nil, err
	}
	// (3) Launch synchronously.
	if err := a.rcuda.Launch(t, KernelName, s.dbAddr, s.probeAddr, s.outAddr, uint64(req.Batch)); err != nil {
		return nil, err
	}
	// (4) Download results.
	return a.rcuda.MemcpyD2H(t, s.outAddr, req.Batch)
}

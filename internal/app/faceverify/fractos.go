package faceverify

import (
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/device/nvme"
	"fractos/internal/fs"
	"fractos/internal/proc"
	"fractos/internal/services"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Node roles in the deployment (paper: frontend, GPU, storage; the FS
// service gets its own node so the baseline's NVMe-oF hop crosses the
// network, as in §6.5's message accounting).
const (
	NodeFrontend = 0
	NodeGPU      = 1
	NodeStorage  = 2
	NodeFS       = 3
)

// Config sizes an application instance. Buffers and database files are
// sized to the batch, like the paper's pre-allocated GPU buffer pool.
type Config struct {
	Batch int // images per request (≤ 256: one extent per batch file)
	Files int // database batch files
	Slots int // in-flight request slots (GPU buffer pool size)
	Seed  int64
}

func (c Config) withDefaults() Config {
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.Files == 0 {
		c.Files = 4
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c Config) batchBytes() uint64 { return uint64(c.Batch) * ImgSize }

func (c Config) probeBytes() uint64 { return uint64(c.Batch) * ProbeSize }

// FractOSApp is the face-verification frontend on FractOS, with all
// services wired through the capability registry.
type FractOSApp struct {
	cfg Config
	cl  *core.Cluster
	DB  *DB

	GPUDev  *gpu.Device
	NVMeDev *nvme.Device

	gpuAd  *gpu.Adaptor
	nvmeAd *nvme.Adaptor

	app *proc.Process

	invokeReq proc.Cap // GPU kernel invocation Request
	fsOpen    proc.Cap // FS open Request (for tests and extensions)
	files     []*fs.File

	slotSem  *sim.Semaphore
	slots    []*slot // free pool (slots are checked out per request)
	allSlots []*slot
	ring     *ringState
}

// slot is one pre-allocated pipeline lane: GPU buffers, app buffers,
// and a reusable continuation Request.
type slot struct {
	gpuDB, gpuProbe, gpuOut    proc.Cap
	dbAddr, probeAddr, outAddr uint64
	probeMem, outMem           proc.Cap
	probeOff, outOff           int
	reply                      proc.Cap
	replyTag                   uint64
}

// SetupFractOS deploys devices, adaptors, the storage stack, the
// registry, and the frontend, and prepares the request pipeline. Must
// run in task context.
func SetupFractOS(t *sim.Task, cl *core.Cluster, cfg Config) (*FractOSApp, error) {
	cfg = cfg.withDefaults()
	if cfg.Batch > 256 {
		return nil, fmt.Errorf("faceverify: batch %d exceeds one extent", cfg.Batch)
	}
	a := &FractOSApp{cfg: cfg, cl: cl, DB: NewDB(cfg.Files*cfg.Batch, cfg.Seed)}

	// Devices and adaptors.
	a.GPUDev = gpu.NewDevice(cl.K, gpu.DefaultConfig())
	RegisterKernel(a.GPUDev)
	gpuAd := gpu.NewAdaptor(cl, NodeGPU, "gpu-adaptor", a.GPUDev)
	a.gpuAd = gpuAd
	if err := gpuAd.Start(t); err != nil {
		return nil, err
	}
	a.NVMeDev = nvme.NewDevice(cl.K, nvme.DefaultConfig())
	nvmeAd := nvme.NewAdaptor(cl, NodeStorage, "nvme-adaptor", a.NVMeDev, nvme.AdaptorConfig{})
	a.nvmeAd = nvmeAd
	if err := nvmeAd.Start(t); err != nil {
		return nil, err
	}
	fsSvc := fs.NewService(cl, NodeFS, "fs-service", fs.Config{})
	if err := fsSvc.Wire(nvmeAd); err != nil {
		return nil, err
	}
	if err := fsSvc.Start(t); err != nil {
		return nil, err
	}

	// Registry-based bootstrap: services publish their roots, the
	// frontend looks them up.
	reg := services.NewRegistry(cl, NodeFrontend)
	if err := reg.Start(t); err != nil {
		return nil, err
	}
	gpuCl, err := reg.Connect(gpuAd.P)
	if err != nil {
		return nil, err
	}
	if _, err := gpuCl.Register(t, "gpu.ctxinit", gpuAd.CtxInit, NodeGPU); err != nil {
		return nil, err
	}
	fsCl, err := reg.Connect(fsSvc.P)
	if err != nil {
		return nil, err
	}
	if _, err := fsCl.Register(t, "fs.open", fsSvc.Open, NodeFS); err != nil {
		return nil, err
	}
	if _, err := fsCl.Register(t, "fs.close", fsSvc.Close, NodeFS); err != nil {
		return nil, err
	}

	// Frontend Process: per-slot probe + result buffers.
	slotBytes := int(cfg.probeBytes()) + cfg.Batch
	// The arena also holds a batch-file staging buffer for seeding.
	a.app = proc.Attach(cl, NodeFrontend, "frontend", cfg.Slots*slotBytes+int(cfg.batchBytes())+4096)
	appCl, err := reg.Connect(a.app)
	if err != nil {
		return nil, err
	}

	// GPU context: init, load kernel, allocate the buffer pool.
	ctxInit, err := appCl.Resolve(t, "gpu.ctxinit")
	if err != nil {
		return nil, err
	}
	d, err := a.app.Call(t, ctxInit, nil, nil, gpu.SlotCont)
	if err != nil {
		return nil, err
	}
	allocReq, ok1 := d.Cap(gpu.SlotAlloc)
	loadReq, ok2 := d.Cap(gpu.SlotLoad)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("faceverify: incomplete GPU context reply")
	}
	a.invokeReq, err = a.loadKernel(t, loadReq)
	if err != nil {
		return nil, err
	}

	a.slotSem = sim.NewSemaphore(cfg.Slots)
	for range cfg.Slots {
		s, err := a.makeSlot(t, slotBytes, allocReq)
		if err != nil {
			return nil, err
		}
		a.slots = append(a.slots, s)
		a.allSlots = append(a.allSlots, s)
	}

	// Seed the database through the FS (write mode), then reopen every
	// batch file in DAX mode for the datapath.
	fsOpen, err := appCl.Resolve(t, "fs.open")
	if err != nil {
		return nil, err
	}
	a.fsOpen = fsOpen
	if err := a.seedDB(t, fsOpen); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Files; i++ {
		f, err := fs.OpenFile(t, a.app, fsOpen, batchFileName(i), fs.OpenRead|fs.OpenDAX, 0)
		if err != nil {
			return nil, fmt.Errorf("faceverify: dax open: %w", err)
		}
		a.files = append(a.files, f)
	}
	return a, nil
}

func batchFileName(i int) string { return fmt.Sprintf("db-batch-%04d.bin", i) }

func (a *FractOSApp) loadKernel(t *sim.Task, loadReq proc.Cap) (proc.Cap, error) {
	d, err := a.app.Call(t, loadReq,
		[]wire.ImmArg{proc.U64Arg(8, uint64(len(KernelName))), proc.BytesArg(16, []byte(KernelName))},
		nil, gpu.SlotCont)
	if err != nil {
		return proc.Cap{}, err
	}
	if st := d.U64(0); st != gpu.StatusOK {
		return proc.Cap{}, fmt.Errorf("faceverify: kernel load status %d", st)
	}
	inv, ok := d.Cap(gpu.SlotKernel)
	if !ok {
		return proc.Cap{}, fmt.Errorf("faceverify: no kernel request")
	}
	return inv, nil
}

func (a *FractOSApp) gpuAlloc(t *sim.Task, allocReq proc.Cap, size uint64) (proc.Cap, uint64, error) {
	d, err := a.app.Call(t, allocReq, []wire.ImmArg{proc.U64Arg(8, size)}, nil, gpu.SlotCont)
	if err != nil {
		return proc.Cap{}, 0, err
	}
	if st := d.U64(0); st != gpu.StatusOK {
		return proc.Cap{}, 0, fmt.Errorf("faceverify: gpu alloc status %d", st)
	}
	buf, ok := d.Cap(gpu.SlotBuf)
	if !ok {
		return proc.Cap{}, 0, fmt.Errorf("faceverify: no buffer cap")
	}
	return buf, d.U64(8), nil
}

func (a *FractOSApp) makeSlot(t *sim.Task, slotBytes int, allocReq proc.Cap) (*slot, error) {
	s := &slot{}
	var err error
	n := a.cfg.batchBytes()
	pn := a.cfg.probeBytes()
	if s.gpuDB, s.dbAddr, err = a.gpuAlloc(t, allocReq, n); err != nil {
		return nil, err
	}
	if s.gpuProbe, s.probeAddr, err = a.gpuAlloc(t, allocReq, pn); err != nil {
		return nil, err
	}
	if s.gpuOut, s.outAddr, err = a.gpuAlloc(t, allocReq, uint64(a.cfg.Batch)); err != nil {
		return nil, err
	}
	// Reserve the slot's arena region through the allocator so later
	// allocations (seeding stage, ring read-back buffers) cannot
	// overlap it.
	region, err := a.app.Alloc(slotBytes)
	if err != nil {
		return nil, err
	}
	s.probeOff = region
	s.outOff = s.probeOff + int(pn)
	if s.probeMem, err = a.app.MemoryCreate(t, uint64(s.probeOff), pn, cap.MemRights); err != nil {
		return nil, err
	}
	if s.outMem, err = a.app.MemoryCreate(t, uint64(s.outOff), uint64(a.cfg.Batch), cap.MemRights); err != nil {
		return nil, err
	}
	// One reusable continuation Request per slot: the GPU adaptor
	// invokes it on success or error, carrying the status.
	s.replyTag = a.app.NewTag()
	if s.reply, err = a.app.RequestCreate(t, s.replyTag, nil, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// seedDB writes each batch file through the FS service (write mode),
// staging through a temporary arena region that is freed afterwards.
func (a *FractOSApp) seedDB(t *sim.Task, fsOpen proc.Cap) error {
	n := a.cfg.batchBytes()
	off, err := a.app.Alloc(int(n))
	if err != nil {
		return err
	}
	defer a.app.Free(off)
	stage, err := a.app.MemoryCreate(t, uint64(off), n, cap.MemRights)
	if err != nil {
		return err
	}
	defer a.app.Drop(t, stage)
	buf := a.app.Arena()[off : off+int(n)]
	for i := 0; i < a.cfg.Files; i++ {
		f, err := fs.OpenFile(t, a.app, fsOpen, batchFileName(i), fs.OpenRead|fs.OpenWrite|fs.OpenCreate, n)
		if err != nil {
			return err
		}
		copy(buf, a.DB.BatchFile(i*a.cfg.Batch, a.cfg.Batch))
		if err := f.WriteAt(t, 0, n, stage); err != nil {
			return err
		}
	}
	return nil
}

// VerifyBatch executes one request through the decentralized pipeline
// and returns the per-image match verdicts.
//
// Pipeline (Figure 2's green path): probe upload (app→GPU), then one
// invocation of the storage lease whose continuation is the fully
// preset GPU kernel Request; the block adaptor copies the database
// images straight into GPU memory and invokes the kernel verbatim; the
// kernel's continuation notifies the frontend, which downloads the
// small result vector.
func (a *FractOSApp) VerifyBatch(t *sim.Task, req *Request) ([]byte, error) {
	if req.Batch != a.cfg.Batch {
		return nil, fmt.Errorf("faceverify: request batch %d != configured %d", req.Batch, a.cfg.Batch)
	}
	a.slotSem.Acquire(t)
	s := a.slots[len(a.slots)-1]
	a.slots = a.slots[:len(a.slots)-1]
	defer func() {
		a.slots = append(a.slots, s)
		a.slotSem.Release()
	}()

	n := a.cfg.batchBytes()
	file := a.files[req.FileIdx%len(a.files)]

	// (a) Upload the probe descriptors.
	copy(a.app.Arena()[s.probeOff:s.probeOff+int(a.cfg.probeBytes())], req.Probes)
	if err := a.app.MemoryCopy(t, s.probeMem, s.gpuProbe); err != nil {
		return nil, fmt.Errorf("faceverify: probe upload: %w", err)
	}

	// (b) Build the continuation: the kernel Request preset with this
	// slot's buffers and the slot's reply Request as both success and
	// error continuation (the status immediate disambiguates).
	ao := gpu.ArgOffset(len(KernelName), 0)
	kr, err := a.app.Derive(t, a.invokeReq,
		[]wire.ImmArg{proc.BytesArg(ao, putArgs(s.dbAddr, s.probeAddr, s.outAddr, uint64(req.Batch)))},
		[]proc.Arg{{Slot: gpu.SlotSuccess, Cap: s.reply}, {Slot: gpu.SlotError, Cap: s.reply}})
	if err != nil {
		return nil, fmt.Errorf("faceverify: kernel derive: %w", err)
	}

	// (c) Invoke the storage read with the GPU buffer as destination
	// and the kernel Request as continuation, then wait for the
	// pipeline to come back to us.
	f := a.app.WaitTag(s.replyTag)
	if err := a.storageReadInto(t, file, n, s.gpuDB, kr); err != nil {
		return nil, err
	}
	d, err := f.Wait(t)
	if err != nil {
		return nil, err
	}
	d.Done()
	if st := d.U64(0); st != gpu.StatusOK {
		a.app.Drop(t, kr)
		return nil, fmt.Errorf("faceverify: pipeline status %d", st)
	}

	// (d) Download the result vector.
	if err := a.app.MemoryCopy(t, s.gpuOut, s.outMem); err != nil {
		return nil, err
	}
	a.app.Drop(t, kr)
	out := make([]byte, req.Batch)
	copy(out, a.app.Arena()[s.outOff:s.outOff+req.Batch])
	return out, nil
}

// storageReadInto invokes the file's DAX lease (extent 0) with the
// destination Memory and continuation Request.
func (a *FractOSApp) storageReadInto(t *sim.Task, f *fs.File, n uint64, dst, cont proc.Cap) error {
	lease, ok := f.DAXLease(0, false)
	if !ok {
		return fmt.Errorf("faceverify: no DAX read lease")
	}
	return a.app.Invoke(t, lease,
		[]wire.ImmArg{proc.U64Arg(nvme.ImmOff, 0), proc.U64Arg(nvme.ImmLen, n)},
		[]proc.Arg{{Slot: nvme.SlotData, Cap: dst}, {Slot: nvme.SlotCont, Cap: cont}})
}

// nvmeAdaptorPID exposes the block adaptor's Process id for failure
// injection in tests and chaos experiments.
func (a *FractOSApp) nvmeAdaptorPID() cap.ProcID { return a.nvmeAd.P.ID() }

package faceverify

// TestFigure2VerbatimPipeline executes Figure 2's green path
// literally, via the app's ring mode: a single frontend invocation
// flows input SSD → GPU kernel → FS-composed output SSD → frontend.
//
//	frontend ──a──► input SSD ──b──► GPU kernel ──c──► FS(write-direct)
//	                                                      │ composes
//	                                                      ▼
//	frontend ◄──────────e────────── output SSD ◄────d────┘
//
// The frontend sits on none of the data paths: images flow SSD→GPU,
// verdicts flow GPU→output SSD; the frontend only uploads the small
// probe descriptors and receives the completion notification.

import (
	"math/rand"
	"testing"

	"fractos/internal/core"
	"fractos/internal/sim"
)

func TestFigure2VerbatimPipeline(t *testing.T) {
	runApp(t, core.CtrlOnCPU, func(tk *sim.Task, cl *core.Cluster) {
		const batch = 16
		app, err := SetupFractOS(tk, cl, Config{Batch: batch, Files: 2, Slots: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := app.EnableRing(tk); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 4; i++ {
			req := MakeRequest(app.DB, i%2, batch, rng)
			verdicts, err := app.RingVerify(tk, req)
			if err != nil {
				t.Fatalf("ring request %d: %v", i, err)
			}
			if !req.CheckResults(verdicts) {
				t.Fatalf("request %d: verdicts on output storage disagree with ground truth", i)
			}
		}
	})
}

// TestRingConcurrent: multiple ring requests in flight share the slot
// pool; each lands in its own output region.
func TestRingConcurrent(t *testing.T) {
	runApp(t, core.CtrlOnCPU, func(tk *sim.Task, cl *core.Cluster) {
		const batch = 8
		app, err := SetupFractOS(tk, cl, Config{Batch: batch, Files: 4, Slots: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := app.EnableRing(tk); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		reqs := make([]*Request, 4)
		for i := range reqs {
			reqs[i] = MakeRequest(app.DB, i, batch, rng)
		}
		var wg sim.WaitGroup
		wg.Add(len(reqs))
		for _, r := range reqs {
			r := r
			cl.K.Spawn("ring-worker", func(wt *sim.Task) {
				defer wg.Done()
				verdicts, err := app.RingVerify(wt, r)
				if err != nil {
					t.Errorf("ring: %v", err)
					return
				}
				if !r.CheckResults(verdicts) {
					t.Error("concurrent ring verdicts wrong")
				}
			})
		}
		wg.Wait(tk)
	})
}

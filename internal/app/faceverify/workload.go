// Package faceverify implements the paper's end-to-end application
// (§5): a face-verification service that checks a batch of probe
// photos against a secure database. Database images are read from the
// storage stack; the matching kernel runs on the disaggregated GPU.
//
// Two complete implementations are provided over identical devices and
// workloads:
//
//   - FractOS: the decentralized request pipeline of Figure 2 — the
//     storage stack copies database images straight into GPU memory
//     and invokes the kernel, whose success continuation returns to
//     the frontend; the only other data movements are the probe upload
//     and the small result download.
//
//   - Baseline: the centralized star of §6.5 — NFS (backed by NVMe-oF)
//     brings database images to the frontend, rCUDA ships them to the
//     GPU, launches, and ships results back. The same bytes cross the
//     network three times.
package faceverify

import (
	"encoding/binary"
	"math/rand"
	"time"

	"fractos/internal/device/gpu"
	"fractos/internal/sim"
)

// Workload geometry.
const (
	// ImgSize is one enrolled database photo (4 KiB).
	ImgSize = 4096
	// ProbeSize is the compact face descriptor a client submits with
	// its request (the verification input); the kernel matches it
	// against the leading ProbeSize bytes of the enrolled photo.
	ProbeSize = 256
	// MaxBatch bounds a single request's batch.
	MaxBatch = 1024
	// Threshold is the maximum L1 distance for a match.
	Threshold = 30 * ProbeSize
)

// KernelName is the face-verification GPU kernel.
const KernelName = "faceverify"

// KernelPerImage is the modeled per-image kernel execution time on the
// K80, calibrated so the GPU becomes the end-to-end bottleneck at ~4
// in-flight requests (Figure 13).
const KernelPerImage = 4 * sim.Time(time.Microsecond)

// RegisterKernel installs the face-verification kernel on a GPU.
//
// Kernel arguments: [0]=dbAddr [1]=probeAddr [2]=outAddr [3]=batch.
// For each image i it matches probe descriptor i (ProbeSize bytes)
// against enrolled photo i and writes 1 (match) or 0 at out[i].
func RegisterKernel(dev *gpu.Device) {
	dev.Register(KernelName, func(mem []byte, args []uint64) uint64 {
		if len(args) < 4 {
			return 1
		}
		db, probe, out, batch := args[0], args[1], args[2], args[3]
		if batch == 0 || batch > MaxBatch {
			return 1
		}
		if db+batch*ImgSize > uint64(len(mem)) ||
			probe+batch*ProbeSize > uint64(len(mem)) ||
			out+batch > uint64(len(mem)) {
			return 1
		}
		for i := uint64(0); i < batch; i++ {
			d := l1(mem[db+i*ImgSize:db+i*ImgSize+ProbeSize],
				mem[probe+i*ProbeSize:probe+(i+1)*ProbeSize])
			if d <= Threshold {
				mem[out+i] = 1
			} else {
				mem[out+i] = 0
			}
		}
		return 0
	}, func(args []uint64) sim.Time {
		if len(args) < 4 {
			return 0
		}
		return sim.Time(args[3]) * KernelPerImage
	})
}

func l1(a, b []byte) int {
	d := 0
	for i := range a {
		v := int(a[i]) - int(b[i])
		if v < 0 {
			v = -v
		}
		d += v
	}
	return d
}

// DB is the synthetic identity database: deterministic pseudo-images
// per identity, grouped into batch files as stored on the storage
// stack (one file per batch keeps the paper's per-request message
// pattern: one open + one read).
type DB struct {
	Identities int
	seed       int64
}

// NewDB creates a database of n identities.
func NewDB(n int, seed int64) *DB { return &DB{Identities: n, seed: seed} }

// Image returns identity id's database image (deterministic).
func (db *DB) Image(id int) []byte {
	rng := rand.New(rand.NewSource(db.seed ^ int64(id)*0x9e3779b9))
	img := make([]byte, ImgSize)
	rng.Read(img)
	return img
}

// BatchFile returns the concatenated images of identities
// [first, first+batch), the unit stored per file.
func (db *DB) BatchFile(first, batch int) []byte {
	out := make([]byte, 0, batch*ImgSize)
	for i := 0; i < batch; i++ {
		out = append(out, db.Image((first+i)%db.Identities)...)
	}
	return out
}

// Probe returns a probe descriptor for identity id: if genuine, a
// slightly perturbed copy of the enrolled photo's descriptor (a
// match); otherwise a different identity's (a mismatch).
func (db *DB) Probe(id int, genuine bool, rng *rand.Rand) []byte {
	if !genuine {
		return db.Image(id + 1)[:ProbeSize]
	}
	out := append([]byte(nil), db.Image(id)[:ProbeSize]...)
	// Perturb a small fraction of the descriptor.
	for i := 0; i < ProbeSize/32; i++ {
		out[rng.Intn(ProbeSize)] ^= byte(rng.Intn(8))
	}
	return out
}

// Request is one verification request: a batch of probe descriptors
// for the identities of one batch file.
type Request struct {
	FileIdx int
	Probes  []byte // batch × ProbeSize
	Batch   int
	Genuine []bool // ground truth, for checking results
}

// MakeRequest builds a request against batch file fileIdx with a
// random genuine/impostor mix.
func MakeRequest(db *DB, fileIdx, batch int, rng *rand.Rand) *Request {
	r := &Request{FileIdx: fileIdx, Batch: batch}
	for i := 0; i < batch; i++ {
		id := (fileIdx*batch + i) % db.Identities
		genuine := rng.Intn(2) == 0
		r.Genuine = append(r.Genuine, genuine)
		r.Probes = append(r.Probes, db.Probe(id, genuine, rng)...)
	}
	return r
}

// CheckResults verifies the kernel's verdicts against ground truth.
func (r *Request) CheckResults(out []byte) bool {
	if len(out) < r.Batch {
		return false
	}
	for i := 0; i < r.Batch; i++ {
		if (out[i] == 1) != r.Genuine[i] {
			return false
		}
	}
	return true
}

// putArgs encodes kernel args for immediate buffers.
func putArgs(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return b
}

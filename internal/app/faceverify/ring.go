package faceverify

import (
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/device/gpu"
	"fractos/internal/fs"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// The ring mode executes Figure 2's green path literally: instead of
// downloading the verdicts, the kernel's success continuation is the
// FS's direct-write Request, so the output SSD pulls them straight
// from GPU memory and notifies the frontend. Each slot owns a fixed
// region of the shared output file, so its write Request can be fully
// preset once and reused.

// outputFileName is the shared verdict file.
const outputFileName = "verdicts.bin"

// ringState is the per-app lazily initialized ring plumbing.
type ringState struct {
	file *fs.File
	// per-slot preset FS direct-write Requests.
	writes map[*slot]proc.Cap
	// per-slot read-back buffers (cap + arena offset), allocated once.
	readMem map[*slot]proc.Cap
	readOff map[*slot]int
}

// EnableRing prepares the output file and the per-slot preset write
// Requests. Idempotent; must run in task context before RingVerify.
func (a *FractOSApp) EnableRing(t *sim.Task) error {
	if a.ring != nil {
		return nil
	}
	size := uint64(len(a.slots)) * uint64(a.cfg.Batch)
	f, err := fs.OpenFile(t, a.app, a.fsOpen, outputFileName,
		fs.OpenRead|fs.OpenWrite|fs.OpenCreate, size)
	if err != nil {
		return fmt.Errorf("faceverify: output file: %w", err)
	}
	wd, ok := f.DirectWriteReq()
	if !ok {
		return fmt.Errorf("faceverify: no direct-write request")
	}
	r := &ringState{
		file:    f,
		writes:  make(map[*slot]proc.Cap),
		readMem: make(map[*slot]proc.Cap),
		readOff: make(map[*slot]int),
	}
	for i, s := range a.allSlots {
		// Preset: this slot's region of the output file, sourced from
		// this slot's GPU result buffer, notifying this slot's reply
		// Request. Fully static — derived once, reused per request.
		w, err := a.app.Derive(t, wd,
			[]wire.ImmArg{
				proc.U64Arg(fs.FSImmOff, uint64(i*a.cfg.Batch)),
				proc.U64Arg(fs.FSImmLen, uint64(a.cfg.Batch)),
			},
			[]proc.Arg{{Slot: fs.SlotData, Cap: s.gpuOut}, {Slot: fs.SlotCont, Cap: s.reply}})
		if err != nil {
			return fmt.Errorf("faceverify: preset write: %w", err)
		}
		r.writes[s] = w
		off, err := a.app.Alloc(a.cfg.Batch)
		if err != nil {
			return fmt.Errorf("faceverify: read-back buffer: %w", err)
		}
		mem, err := a.app.MemoryCreate(t, uint64(off), uint64(a.cfg.Batch), cap.MemRights)
		if err != nil {
			return fmt.Errorf("faceverify: read-back memory: %w", err)
		}
		r.readMem[s] = mem
		r.readOff[s] = off
	}
	a.ring = r
	return nil
}

// RingVerify runs one request through the full Figure 2 ring: probes
// up, then a single invocation whose continuation graph flows
// input SSD → GPU → FS-composed output SSD → frontend. The verdicts
// land in the slot's region of the output file and are read back
// (while the slot is still held, so a concurrent request cannot
// overwrite them) and returned. EnableRing must have been called.
func (a *FractOSApp) RingVerify(t *sim.Task, req *Request) ([]byte, error) {
	if a.ring == nil {
		return nil, fmt.Errorf("faceverify: ring not enabled")
	}
	if req.Batch != a.cfg.Batch {
		return nil, fmt.Errorf("faceverify: request batch %d != configured %d", req.Batch, a.cfg.Batch)
	}
	a.slotSem.Acquire(t)
	s := a.slots[len(a.slots)-1]
	a.slots = a.slots[:len(a.slots)-1]
	defer func() {
		a.slots = append(a.slots, s)
		a.slotSem.Release()
	}()

	file := a.files[req.FileIdx%len(a.files)]
	copy(a.app.Arena()[s.probeOff:s.probeOff+int(a.cfg.probeBytes())], req.Probes)
	if err := a.app.MemoryCopy(t, s.probeMem, s.gpuProbe); err != nil {
		return nil, fmt.Errorf("faceverify: probe upload: %w", err)
	}

	ao := gpu.ArgOffset(len(KernelName), 0)
	kr, err := a.app.Derive(t, a.invokeReq,
		[]wire.ImmArg{proc.BytesArg(ao, putArgs(s.dbAddr, s.probeAddr, s.outAddr, uint64(req.Batch)))},
		[]proc.Arg{{Slot: gpu.SlotSuccess, Cap: a.ring.writes[s]}, {Slot: gpu.SlotError, Cap: s.reply}})
	if err != nil {
		return nil, fmt.Errorf("faceverify: kernel derive: %w", err)
	}
	f := a.app.WaitTag(s.replyTag)
	if err := a.storageReadInto(t, file, a.cfg.batchBytes(), s.gpuDB, kr); err != nil {
		return nil, err
	}
	d, err := f.Wait(t)
	if err != nil {
		return nil, err
	}
	d.Done()
	a.app.Drop(t, kr)
	if st := d.U64(0); st != 0 {
		return nil, fmt.Errorf("faceverify: ring status %d", st)
	}
	return a.readVerdicts(t, s)
}

// readVerdicts fetches the slot's verdict region from the output file
// into the slot's dedicated read-back buffer.
func (a *FractOSApp) readVerdicts(t *sim.Task, s *slot) ([]byte, error) {
	var fileOff uint64
	for i, sl := range a.allSlots {
		if sl == s {
			fileOff = uint64(i * a.cfg.Batch)
			break
		}
	}
	if err := a.ring.file.ReadAt(t, fileOff, uint64(a.cfg.Batch), a.ring.readMem[s]); err != nil {
		return nil, err
	}
	off := a.ring.readOff[s]
	out := make([]byte, a.cfg.Batch)
	copy(out, a.app.Arena()[off:off+a.cfg.Batch])
	return out, nil
}

// Client-side resilience: retry policies, error classification, and a
// circuit breaker.
//
// The Controller RPC layer (core) already retransmits its own
// inter-Controller frames over a lossy fabric, but the *application*
// still observes failures: calls resolved StatusAborted when a
// retransmission window is exhausted or a Controller crashes, providers
// that vanished (StatusNoProc), congestion refusals
// (StatusBackpressure). This file is the client's answer — the policy
// layer the paper leaves to applications ("failure amplification" in
// disaggregated systems is an application-visible hazard).
//
// Determinism: backoff jitter is drawn from a private rand.Rand seeded
// by Retry.Seed, never from the kernel RNG, so a workload built from
// per-request seeds replays byte-identically. Deadlines and cooldowns
// are virtual time.
//
// Liveness rule: Do never abandons an in-flight attempt. Operations
// hold resources (semaphore permits, pooled slots) released on their
// own return path; killing the task would leak them. The per-call
// deadline therefore bounds *scheduling* of new attempts, while each
// attempt's own completion is guaranteed by the layers below (every
// lower-level wait resolves or aborts — see docs/FAULTS.md).
package proc

import (
	"errors"
	"math/rand"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

// ErrDeadline is returned by Retry.Do when the per-call deadline
// expires before an attempt succeeds.
var ErrDeadline = errors.New("proc: retry deadline exceeded")

// ErrCircuitOpen is returned by Retry.Do (without issuing an attempt)
// while the circuit breaker is open.
var ErrCircuitOpen = errors.New("proc: circuit breaker open")

// Retryable classifies an error: true means the failure is transient
// infrastructure (lost frames, aborted RPCs, congestion, a provider
// that may be redeployed) and the operation is worth re-issuing;
// false means the capability world changed underneath the caller
// (revoked, stale epoch, permission) or the argument was wrong —
// retrying can never succeed and the application must re-acquire its
// capabilities instead. Unknown errors are conservatively permanent.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDisconnected) || errors.Is(err, ErrForeignCap) {
		// Our own Controller channel (or handle) is gone: this Process
		// is dead from the system's point of view; retrying from
		// inside it cannot help.
		return false
	}
	if errors.Is(err, ErrCallTimeout) {
		// The provider sat on the request past the caller's bound —
		// typically because its Controller died after admitting it.
		// Another replica (or the rebooted node) can serve a re-issue.
		return true
	}
	var se *wire.StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case wire.StatusAborted, wire.StatusBackpressure, wire.StatusNoProc:
			return true
		}
		return false
	}
	return false
}

// Retry is a bounded-exponential-backoff retry policy. The zero value
// issues exactly one attempt (no retries); fill in Max to enable
// retries. Policies are values: build one per call site (or per
// request, varying Seed) and invoke Do.
type Retry struct {
	// Max is the maximum number of attempts (first try included).
	// 0 or 1 means a single attempt.
	Max int
	// Base is the delay before the first retry; it doubles on every
	// subsequent retry. 0 means DefaultBackoffBase.
	Base sim.Time
	// Cap bounds a single backoff delay. 0 means DefaultBackoffCap.
	Cap sim.Time
	// Jitter spreads each delay uniformly over
	// [d·(1-Jitter/2), d·(1+Jitter/2)] to decorrelate colliding
	// clients. 0 disables jitter; 1 is full ±50 % spread.
	Jitter float64
	// Deadline bounds the whole Do call in virtual time: once this
	// much time has elapsed since entry, no further attempt is
	// scheduled and Do returns ErrDeadline (an in-flight attempt is
	// never abandoned — see the package comment). 0 means no deadline.
	Deadline sim.Time
	// Seed seeds the private jitter RNG; use a per-request value for
	// decorrelated but reproducible schedules.
	Seed int64
	// Classify overrides Retryable for deciding whether to re-issue
	// after an error. nil means Retryable.
	Classify func(error) bool
	// Breaker, when non-nil, is consulted before and informed after
	// every attempt. Share one *Breaker across the calls that target
	// the same dependency.
	Breaker *Breaker
}

// Defaults for Retry's zero fields.
const (
	DefaultBackoffBase = 200 * sim.Time(1000)     // 200 µs
	DefaultBackoffCap  = 20 * sim.Time(1000*1000) // 20 ms
)

// Backoff returns the pre-jitter delay before retry number n (n=0 is
// the delay between the first failure and the second attempt):
// min(Base·2ⁿ, Cap). Pure, for tests and inspection.
func (r Retry) Backoff(n int) sim.Time {
	base, cp := r.Base, r.Cap
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cp <= 0 {
		cp = DefaultBackoffCap
	}
	d := base
	for i := 0; i < n; i++ {
		if d >= cp {
			return cp
		}
		d <<= 1
	}
	if d > cp {
		d = cp
	}
	return d
}

// Do runs op under the policy: attempts are issued until one succeeds,
// an error classifies as permanent, attempts are exhausted, the
// deadline passes, or the breaker opens. It returns nil on success,
// the last error on exhaustion or permanent failure, ErrDeadline on
// deadline expiry, and ErrCircuitOpen when the breaker refuses.
func (r Retry) Do(t *sim.Task, op func(*sim.Task) error) error {
	max := r.Max
	if max < 1 {
		max = 1
	}
	classify := r.Classify
	if classify == nil {
		classify = Retryable
	}
	var rng *rand.Rand // lazily created: zero-jitter policies never draw
	start := t.Now()
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		if r.Breaker != nil && !r.Breaker.Allow(t.Now()) {
			return ErrCircuitOpen
		}
		err := op(t)
		if r.Breaker != nil {
			r.Breaker.Report(t.Now(), err == nil || !classify(err))
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !classify(err) {
			return err
		}
		if attempt == max-1 {
			break
		}
		d := r.Backoff(attempt)
		if r.Jitter > 0 {
			if rng == nil {
				rng = rand.New(rand.NewSource(r.Seed + 1))
			}
			spread := float64(d) * r.Jitter
			d = sim.Time(float64(d) - spread/2 + rng.Float64()*spread)
			if d < 0 {
				d = 0
			}
		}
		if r.Deadline > 0 && t.Now()+d-start > r.Deadline {
			return ErrDeadline
		}
		t.Sleep(d)
	}
	return lastErr
}

// Breaker is a small per-dependency circuit breaker
// (closed → open → half-open → closed). While closed it counts
// consecutive retryable failures; at Threshold it opens and fails
// calls fast for Cooldown; then one half-open probe is admitted —
// success closes the circuit, failure re-opens it for another
// Cooldown. Success at any point resets the failure count.
//
// All timing is virtual; the breaker is a plain struct driven by the
// simulation's single-threaded event loop and needs no locking.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit. 0 means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe. 0 means DefaultBreakerCooldown.
	Cooldown sim.Time

	state    breakerState
	failures int
	openedAt sim.Time
	probing  bool // half-open: one probe in flight
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Defaults for Breaker's zero fields.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 10 * sim.Time(1000*1000) // 10 ms
)

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return DefaultBreakerThreshold
	}
	return b.Threshold
}

func (b *Breaker) cooldown() sim.Time {
	if b.Cooldown <= 0 {
		return DefaultBreakerCooldown
	}
	return b.Cooldown
}

// State returns the breaker's state as a string (for logs and tests).
func (b *Breaker) State(now sim.Time) string {
	switch b.state {
	case breakerOpen:
		if now-b.openedAt >= b.cooldown() {
			return "half-open"
		}
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Allow reports whether a call may be issued now. In the open state it
// transitions to half-open once the cooldown has elapsed and admits a
// single probe.
func (b *Breaker) Allow(now sim.Time) bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now-b.openedAt < b.cooldown() {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report records the outcome of a call admitted by Allow. ok should be
// true for success or a permanent (non-infrastructure) error — only
// retryable failures indicate an unhealthy dependency.
func (b *Breaker) Report(now sim.Time, ok bool) {
	switch b.state {
	case breakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold() {
			b.state = breakerOpen
			b.openedAt = now
		}
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.failures = 0
			return
		}
		b.state = breakerOpen
		b.openedAt = now
	case breakerOpen:
		// A straggler from before the circuit opened; ignore.
	}
}

package proc_test

// Cross-placement matrix: the same canonical workload — bootstrap,
// echo RPC, cross-process memory copy, revocation — must behave
// identically under every Controller deployment and cluster size the
// paper evaluates. Only timing may differ.

import (
	"fmt"
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

func TestCrossPlacementMatrix(t *testing.T) {
	placements := []core.Placement{core.CtrlOnCPU, core.CtrlOnSNIC, core.CtrlShared}
	for _, p := range placements {
		for _, nodes := range []int{1, 2, 4} {
			p, nodes := p, nodes
			t.Run(fmt.Sprintf("%v-%dnodes", p, nodes), func(t *testing.T) {
				run(t, core.ClusterConfig{Nodes: nodes, Placement: p}, func(tk *sim.Task, cl *core.Cluster) {
					canonicalWorkload(tk, t, cl, nodes)
				})
			})
		}
	}
}

func canonicalWorkload(tk *sim.Task, t *testing.T, cl *core.Cluster, nodes int) {
	srvNode := (nodes - 1) % nodes
	srv := proc.Attach(cl, srvNode, "m-srv", 4096)
	cli := proc.Attach(cl, 0, "m-cli", 4096)

	// Echo service.
	req, err := srv.RequestCreate(tk, 1, nil, nil)
	if err != nil {
		t.Fatalf("request create: %v", err)
	}
	creq, err := proc.GrantCap(srv, req, cli)
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	cl.K.Spawn("m-srv-loop", func(st *sim.Task) {
		for {
			d, ok := srv.Receive(st)
			if !ok {
				return
			}
			if rep, ok := d.Cap(0); ok {
				srv.Invoke(st, rep, []wire.ImmArg{proc.BytesArg(0, d.Imms)}, nil)
			}
			d.Done()
		}
	})

	// RPC.
	d, err := cli.Call(tk, creq, []wire.ImmArg{proc.BytesArg(0, []byte("matrix"))}, nil, 0)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(d.Imms) != "matrix" {
		t.Fatalf("echo = %q", d.Imms)
	}

	// Cross-process copy.
	copy(cli.Arena(), "payload!")
	src, err := cli.MemoryCreate(tk, 0, 8, cap.MemRights)
	if err != nil {
		t.Fatal(err)
	}
	dstS, err := srv.MemoryCreate(tk, 64, 8, cap.MemRights)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := proc.GrantCap(srv, dstS, cli)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.MemoryCopy(tk, src, dst); err != nil {
		t.Fatalf("copy: %v", err)
	}
	if string(srv.Arena()[64:72]) != "payload!" {
		t.Fatalf("copy landed %q", srv.Arena()[64:72])
	}

	// Revocation is immediate under every deployment.
	if err := srv.Revoke(tk, dstS); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	if err := cli.MemoryCopy(tk, src, dst); err == nil {
		t.Fatal("copy through revoked capability succeeded")
	}

	// Diminished views keep working.
	view, err := cli.MemoryDiminish(tk, src, 2, 4, cap.Write)
	if err != nil {
		t.Fatal(err)
	}
	if view.Size() != 4 {
		t.Fatalf("view size %d", view.Size())
	}
}

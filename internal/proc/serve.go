package proc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Delivery is a request_receive descriptor: an invocation that arrived
// at this Process. Imms is the merged immediate-argument buffer; Caps
// are the delegated capability arguments, already installed in this
// Process's capability space.
type Delivery struct {
	p    *Process
	Seq  uint64
	Tag  uint64
	Imms []byte
	Caps []wire.DeliveredCap

	acked bool
}

// Cap returns the delegated capability in the given argument slot.
func (d *Delivery) Cap(slot uint16) (Cap, bool) {
	for _, c := range d.Caps {
		if c.Slot == slot {
			return d.p.CapFromDelivered(c), true
		}
	}
	return Cap{}, false
}

// U64 reads a little-endian uint64 immediate at offset, zero if out of
// range (services define their own argument layouts).
func (d *Delivery) U64(off int) uint64 {
	if off < 0 || off+8 > len(d.Imms) {
		return 0
	}
	return binary.LittleEndian.Uint64(d.Imms[off:])
}

// Status decodes the conventional status immediate: RPC-style services
// (the registry, routed replicas) put a wire.Status in the reply's
// imm[0:8). For layouts that don't follow the convention the result is
// whatever those bytes decode to.
func (d *Delivery) Status() wire.Status { return wire.Status(d.U64(0)) }

// Err converts the conventional status immediate into an error: nil
// for StatusOK, a *wire.StatusError otherwise — ready for
// proc.Retryable classification.
func (d *Delivery) Err() error { return d.Status().Err() }

// Done acknowledges the delivery, releasing one congestion-window
// credit at the Controller (§4). Safe to call more than once. A send
// failure means the Controller tore this Process down (crash or
// FailProcess); the credit died with the window, so mark the Process
// dead rather than pretend the ack was delivered.
func (d *Delivery) Done() {
	if d.acked {
		return
	}
	d.acked = true
	if !d.p.net.Send(d.p.ep.ID, d.p.ctrlEP, &wire.DeliverDone{Seq: d.Seq}) {
		d.p.dead = true
	}
}

// Receive blocks until the next unmatched invocation arrives
// (request_receive). The caller must call Done on the result.
func (p *Process) Receive(t *sim.Task) (*Delivery, bool) {
	return p.incoming.Recv(t)
}

// ReceiveTimeout is Receive with a virtual-time deadline.
func (p *Process) ReceiveTimeout(t *sim.Task, d sim.Time) (*Delivery, bool) {
	return p.incoming.RecvTimeout(t, d)
}

// NewTag allocates a Process-unique Request tag. Tags starting at
// 1<<32 are reserved for reply Requests; service tags should be small
// constants.
func (p *Process) NewTag() uint64 {
	p.nextTag++
	return (1 << 32) + p.nextTag
}

// WaitTag blocks until an invocation with the given tag arrives,
// bypassing the Receive queue. Register interest before invoking to
// avoid racing the reply into the shared queue.
func (p *Process) WaitTag(tag uint64) *sim.Future[*Delivery] {
	f, ok := p.waiters[tag]
	if !ok {
		f = sim.NewFuture[*Delivery](p.k)
		p.waiters[tag] = f
	}
	return f
}

// Subscribe routes every delivery with the given tag into a dedicated
// channel, bypassing both Receive and WaitTag. Use it when multiple
// invocations of the same Request are expected (e.g. a fork/join
// collection point). Unsubscribe to stop.
func (p *Process) Subscribe(tag uint64) *sim.Chan[*Delivery] {
	ch, ok := p.subs[tag]
	if !ok {
		ch = sim.NewChan[*Delivery](p.k, p.ep.Name+".sub", 0)
		p.subs[tag] = ch
	}
	return ch
}

// Unsubscribe removes a tag subscription; later deliveries flow to
// WaitTag/Receive again.
func (p *Process) Unsubscribe(tag uint64) {
	delete(p.subs, tag)
}

// ReplyRequest creates a fresh one-shot Request served by this Process
// with a unique tag, for use as an RPC continuation argument.
func (p *Process) ReplyRequest(t *sim.Task) (Cap, uint64, error) {
	tag := p.NewTag()
	c, err := p.RequestCreate(t, tag, nil, nil)
	if err != nil {
		return Cap{}, 0, err
	}
	return c, tag, nil
}

// ErrCallTimeout is returned by CallTimeout when the reply does not
// arrive within the deadline. It classifies as transient (Retryable):
// the usual cause is a provider whose Controller died after admitting
// the request — its revocation tree died with it, so no failure
// notification will ever resolve the continuation (§3.6) — and
// re-issuing against another replica can succeed.
var ErrCallTimeout = errors.New("proc: call timed out awaiting reply")

// Call performs a synchronous RPC over a Request (§3.4's A→B→A'
// pattern): it creates a one-shot reply Request, passes it in
// replySlot, invokes req, and waits for the continuation to be invoked
// back. The reply delivery is acknowledged automatically.
func (p *Process) Call(t *sim.Task, req Cap, imms []wire.ImmArg, args []Arg, replySlot uint16) (*Delivery, error) {
	return p.CallTimeout(t, req, imms, args, replySlot, 0)
}

// CallTimeout is Call with a virtual-time bound on the reply (0 means
// wait forever). On timeout it revokes the reply Request — a late
// reply then bounces off the provider's delegated continuation with
// StatusRevoked instead of being delivered — and arranges for a reply
// already in flight to be acknowledged and discarded, then returns
// ErrCallTimeout. Callers that fan requests out over replaceable
// providers (the route package's balancer) use the bound to detect
// providers that died *after* admitting a request, the one failure the
// capability layer cannot signal (a crashed Controller's revocation
// trees die with it).
func (p *Process) CallTimeout(t *sim.Task, req Cap, imms []wire.ImmArg, args []Arg, replySlot uint16, d sim.Time) (*Delivery, error) {
	reply, tag, err := p.ReplyRequest(t)
	if err != nil {
		return nil, err
	}
	f := p.WaitTag(tag)
	allArgs := append(append([]Arg(nil), args...), Arg{Slot: replySlot, Cap: reply})
	if err := p.Invoke(t, req, imms, allArgs); err != nil {
		delete(p.waiters, tag)
		_ = p.Drop(t, reply)
		return nil, err
	}
	var dv *Delivery
	if d > 0 {
		dv, err = f.WaitTimeout(t, d)
	} else {
		dv, err = f.Wait(t)
	}
	if err != nil {
		delete(p.waiters, tag)
		if errors.Is(err, sim.ErrTimeout) {
			// Mark the tag stale so a reply that raced the timeout is
			// acked (not leaked), and revoke the continuation so a reply
			// not yet sent fails fast at the provider.
			p.stale[tag] = true
			if rerr := p.Revoke(t, reply); rerr != nil {
				return nil, fmt.Errorf("proc: revoke timed-out reply request: %w", rerr)
			}
			return nil, ErrCallTimeout
		}
		return nil, err
	}
	dv.Done()
	// The one-shot reply Request is not reused; drop our entry.
	_ = p.Drop(t, reply)
	return dv, nil
}

// CallWith invokes req and waits for an invocation with replyTag to
// come back. The reply Request carrying replyTag must already be among
// args (or preset in the Request) — latency-critical paths exchange
// Requests ahead of time, as the paper's micro-benchmarks do, and this
// entry point lets them reuse one reply Request across calls.
func (p *Process) CallWith(t *sim.Task, req Cap, imms []wire.ImmArg, args []Arg, replyTag uint64) (*Delivery, error) {
	f := p.WaitTag(replyTag)
	if err := p.Invoke(t, req, imms, args); err != nil {
		delete(p.waiters, replyTag)
		return nil, err
	}
	d, err := f.Wait(t)
	if err != nil {
		return nil, err
	}
	d.Done()
	return d, nil
}

// U64Arg encodes a little-endian uint64 immediate argument at offset.
func U64Arg(off int, v uint64) wire.ImmArg {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return wire.ImmArg{Offset: uint32(off), Data: b[:]}
}

// BytesArg places raw bytes at an immediate offset.
func BytesArg(off int, b []byte) wire.ImmArg {
	return wire.ImmArg{Offset: uint32(off), Data: b}
}

package proc_test

// Cancellation pattern (§3.6): FractOS does not cancel in-flight
// Requests itself — "in-flight Request cancellation ... must be
// handled by Processes themselves", built from the monitoring
// primitives. The pattern demonstrated here:
//
//   - the client passes a *revocable* reply continuation (a revtree
//     child of its reply Request);
//   - the worker, before starting expensive work, registers
//     monitor_receive on the delivered continuation;
//   - to cancel, the client revokes the child: the worker's callback
//     fires and it abandons the work; a worker that already finished
//     simply fails to invoke the dead continuation.

import (
	"testing"

	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

func TestCancellationViaRevocation(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		worker := proc.Attach(cl, 1, "worker", 0)
		client := proc.Attach(cl, 0, "client", 0)
		work, _ := worker.RequestCreate(tk, 1, nil, nil)
		cwork, _ := proc.GrantCap(worker, work, client)

		computeStarted := 0
		computeFinished := 0
		cl.K.Spawn("worker-loop", func(st *sim.Task) {
			for {
				d, ok := worker.Receive(st)
				if !ok {
					return
				}
				cont, _ := d.Cap(0)
				cancelled := false
				if err := worker.MonitorReceive(st, cont, func() { cancelled = true }); err != nil {
					// Continuation already dead: skip entirely.
					d.Done()
					continue
				}
				computeStarted++
				// Expensive work, cooperatively checking the flag.
				for step := 0; step < 10 && !cancelled; step++ {
					st.Sleep(us(100))
				}
				if !cancelled {
					computeFinished++
					worker.Invoke(st, cont, nil, nil)
				}
				d.Done()
			}
		})

		// Request 1: run to completion.
		reply1, tag1, _ := client.ReplyRequest(tk)
		lease1, err := client.Revtree(tk, reply1)
		if err != nil {
			t.Fatal(err)
		}
		f1 := client.WaitTag(tag1)
		if err := client.Invoke(tk, cwork, nil, []proc.Arg{{Slot: 0, Cap: lease1}}); err != nil {
			t.Fatal(err)
		}
		if d, err := f1.Wait(tk); err != nil {
			t.Fatal(err)
		} else {
			d.Done()
		}

		// Request 2: cancel mid-work by revoking the lease.
		reply2, tag2, _ := client.ReplyRequest(tk)
		lease2, _ := client.Revtree(tk, reply2)
		f2 := client.WaitTag(tag2)
		if err := client.Invoke(tk, cwork, nil, []proc.Arg{{Slot: 0, Cap: lease2}}); err != nil {
			t.Fatal(err)
		}
		tk.Sleep(us(250)) // the worker is ~2 steps in
		if err := client.Revoke(tk, lease2); err != nil {
			t.Fatal(err)
		}
		if _, err := f2.WaitTimeout(tk, us(3000)); err != sim.ErrTimeout {
			t.Fatalf("cancelled request still replied: %v", err)
		}

		tk.Sleep(us(2000))
		if computeStarted != 2 {
			t.Errorf("computeStarted = %d, want 2", computeStarted)
		}
		if computeFinished != 1 {
			t.Errorf("computeFinished = %d, want 1 (the cancelled one must abort)", computeFinished)
		}
		// The first reply Request (parent) is unaffected by revoking
		// its child lease: reuse it.
		f3 := client.WaitTag(tag1)
		lease3, err := client.Revtree(tk, reply1)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Invoke(tk, cwork, nil, []proc.Arg{{Slot: 0, Cap: lease3}}); err != nil {
			t.Fatal(err)
		}
		if d, err := f3.Wait(tk); err != nil {
			t.Fatal(err)
		} else {
			d.Done()
		}
		_ = wire.StatusOK
	})
}

package proc

import (
	"errors"
	"sort"
)

// ErrNoSpace is returned when the arena cannot satisfy an allocation.
var ErrNoSpace = errors.New("proc: arena exhausted")

// allocator is a first-fit free-list allocator over the Process arena.
// FractOS itself has no allocation layer — Processes own their arenas —
// so this is purely a client-side convenience.
type allocator struct {
	spans []span // sorted by offset, coalesced
	sizes map[int]int
}

type span struct{ off, len int }

func newAllocator(size int) *allocator {
	a := &allocator{sizes: make(map[int]int)}
	if size > 0 {
		a.spans = []span{{0, size}}
	}
	return a
}

// alloc reserves size bytes, returning the offset.
func (a *allocator) alloc(size int) (int, error) {
	if size <= 0 {
		return 0, errors.New("proc: allocation size must be positive")
	}
	for i, s := range a.spans {
		if s.len < size {
			continue
		}
		off := s.off
		if s.len == size {
			a.spans = append(a.spans[:i], a.spans[i+1:]...)
		} else {
			a.spans[i] = span{s.off + size, s.len - size}
		}
		a.sizes[off] = size
		return off, nil
	}
	return 0, ErrNoSpace
}

// free releases a previously allocated region and coalesces neighbors.
func (a *allocator) free(off int) {
	size, ok := a.sizes[off]
	if !ok {
		return
	}
	delete(a.sizes, off)
	a.spans = append(a.spans, span{off, size})
	sort.Slice(a.spans, func(i, j int) bool { return a.spans[i].off < a.spans[j].off })
	out := a.spans[:0]
	for _, s := range a.spans {
		if n := len(out); n > 0 && out[n-1].off+out[n-1].len == s.off {
			out[n-1].len += s.len
		} else {
			out = append(out, s)
		}
	}
	a.spans = out
}

// Alloc reserves a region of the Process arena.
func (p *Process) Alloc(size int) (int, error) { return p.alloc.alloc(size) }

// Free releases a region previously returned by Alloc.
func (p *Process) Free(off int) { p.alloc.free(off) }

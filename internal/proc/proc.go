// Package proc is libfractos: the Process-side runtime. A Process —
// user application or device adaptor, FractOS does not distinguish —
// is connected to exactly one Controller through request/response
// queues. All syscalls are posted asynchronously (Table 1) and this
// runtime pairs completions back to callers through futures, giving
// the synchronous-looking API the paper's C++ prototype builds with
// its promise/future library.
package proc

import (
	"errors"
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// ErrDisconnected is returned when the Process's channel to its
// Controller is severed.
var ErrDisconnected = errors.New("proc: controller channel severed")

// ErrForeignCap is returned when a capability handle minted for one
// Process is used through another: cids are Process-local indices, so
// a foreign handle would silently address an unrelated entry.
var ErrForeignCap = errors.New("proc: capability handle belongs to a different process")

// Process is one FractOS Process and its connection to its Controller.
type Process struct {
	k      *sim.Kernel
	net    *fabric.Net
	id     cap.ProcID
	ep     *fabric.Endpoint
	ctrl   *core.Controller
	ctrlEP fabric.EndpointID

	nextToken uint64
	pending   map[uint64]*sim.Future[*wire.Completion]

	nextTag  uint64
	waiters  map[uint64]*sim.Future[*Delivery]
	subs     map[uint64]*sim.Chan[*Delivery]
	stale    map[uint64]bool
	incoming *sim.Chan[*Delivery]

	nextCB   uint64
	monitors map[uint64]func(kind uint8)

	alloc *allocator
	dead  bool
}

// Cap is a Process-side handle to a capability: a cid plus cached
// metadata. The authoritative state lives with the Controllers.
type Cap struct {
	p      *Process
	id     cap.CapID
	kind   cap.Kind
	rights cap.Rights
	size   uint64
}

// ID returns the capability index (cid).
func (c Cap) ID() cap.CapID { return c.id }

// Kind returns the object kind the capability references.
func (c Cap) Kind() cap.Kind { return c.kind }

// Rights returns the cached rights.
func (c Cap) Rights() cap.Rights { return c.rights }

// Size returns the cached Memory extent (0 for Requests).
func (c Cap) Size() uint64 { return c.size }

// Valid reports whether the handle refers to a capability at all.
func (c Cap) Valid() bool { return c.p != nil && c.id != cap.NilCap }

// Arg binds a capability to a Request argument slot.
type Arg struct {
	Slot uint16
	Cap  Cap
}

// Attach creates a Process on node `node` of the cluster, managed by
// that node's Controller, with an RDMA arena of arenaSize bytes.
func Attach(cl *core.Cluster, node int, name string, arenaSize int) *Process {
	return AttachTo(cl.K, cl.Net, cl.CtrlFor(node), cl.NewProcID(), name,
		fabric.Location{Node: node, Domain: fabric.Host}, arenaSize)
}

// AttachTo creates a Process managed by an explicit Controller.
func AttachTo(k *sim.Kernel, net *fabric.Net, ctrl *core.Controller, pid cap.ProcID,
	name string, loc fabric.Location, arenaSize int) *Process {
	ep := ctrl.AttachProcess(pid, name, loc, arenaSize)
	p := &Process{
		k:        k,
		net:      net,
		id:       pid,
		ep:       ep,
		ctrl:     ctrl,
		ctrlEP:   ctrl.EndpointID(),
		pending:  make(map[uint64]*sim.Future[*wire.Completion]),
		waiters:  make(map[uint64]*sim.Future[*Delivery]),
		subs:     make(map[uint64]*sim.Chan[*Delivery]),
		stale:    make(map[uint64]bool),
		incoming: sim.NewChan[*Delivery](k, name+".deliveries", 0),
		monitors: make(map[uint64]func(uint8)),
		alloc:    newAllocator(arenaSize),
	}
	k.Spawn(name+".rx", p.rxLoop)
	return p
}

// ID returns the Process id.
func (p *Process) ID() cap.ProcID { return p.id }

// Arena returns the Process's RDMA-registered memory.
func (p *Process) Arena() []byte { return p.ep.Arena() }

// Endpoint returns the Process's fabric endpoint id.
func (p *Process) Endpoint() fabric.EndpointID { return p.ep.ID }

// Kernel returns the simulation kernel.
func (p *Process) Kernel() *sim.Kernel { return p.k }

// rxLoop demultiplexes traffic from the Controller.
func (p *Process) rxLoop(t *sim.Task) {
	for {
		d, ok := p.ep.Inbox.Recv(t)
		if !ok {
			return
		}
		switch m := d.Msg.(type) {
		case *wire.Completion:
			if f, ok := p.pending[m.Token]; ok {
				delete(p.pending, m.Token)
				f.Set(m)
			}
		case *wire.Deliver:
			if p.stale[m.Tag] {
				// A reply to a call that already timed out (CallTimeout):
				// ack immediately so the provider-side congestion-window
				// credit is not leaked, and discard the payload. Any caps
				// it delegated are children of the caller's revoked reply
				// Request and die with it.
				delete(p.stale, m.Tag)
				//fractos:send-ok a failed ack means the Controller tore us down already
				p.net.Send(p.ep.ID, p.ctrlEP, &wire.DeliverDone{Seq: m.Seq})
				continue
			}
			dv := &Delivery{p: p, Seq: m.Seq, Tag: m.Tag, Imms: m.Imms, Caps: m.Caps}
			if ch, ok := p.subs[m.Tag]; ok {
				ch.Send(t, dv)
			} else if f, ok := p.waiters[m.Tag]; ok {
				delete(p.waiters, m.Tag)
				f.Set(dv)
			} else {
				p.incoming.Send(t, dv)
			}
		case *wire.MonitorCB:
			if fn, ok := p.monitors[m.Callback]; ok {
				kind := m.Kind
				// Callbacks may issue syscalls, so they must not run
				// inside the receive loop.
				p.k.Spawn(p.ep.Name+".monitorcb", func(*sim.Task) { fn(kind) })
			}
		}
	}
}

// checkOwn verifies capability handles belong to this Process.
func (p *Process) checkOwn(caps ...Cap) error {
	for _, c := range caps {
		if c.p != nil && c.p != p {
			return ErrForeignCap
		}
	}
	return nil
}

// checkArgs verifies the handles inside argument lists.
func (p *Process) checkArgs(args []Arg) error {
	for _, a := range args {
		if a.Cap.p != nil && a.Cap.p != p {
			return ErrForeignCap
		}
	}
	return nil
}

// submit posts a syscall and returns the future of its completion.
func (p *Process) submit(build func(token uint64) wire.Message) *sim.Future[*wire.Completion] {
	f := sim.NewFuture[*wire.Completion](p.k)
	p.nextToken++
	token := p.nextToken
	p.pending[token] = f
	if !p.net.Send(p.ep.ID, p.ctrlEP, build(token)) {
		delete(p.pending, token)
		f.Fail(ErrDisconnected)
	}
	return f
}

// wait blocks on a syscall completion and converts its status.
func wait(t *sim.Task, f *sim.Future[*wire.Completion]) (*wire.Completion, error) {
	m, err := f.Wait(t)
	if err != nil {
		return nil, err
	}
	if m.Status != wire.StatusOK {
		return m, m.Status.Err()
	}
	return m, nil
}

// Null performs the no-op syscall (Table 3's micro-benchmark).
func (p *Process) Null(t *sim.Task) error {
	_, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.Null{Token: tok}
	}))
	return err
}

// MemoryCreate registers [base, base+size) of the arena as a Memory
// object (memory_create).
func (p *Process) MemoryCreate(t *sim.Task, base, size uint64, perms cap.Rights) (Cap, error) {
	m, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.MemCreate{Token: tok, Base: base, Size: size, Perms: perms}
	}))
	if err != nil {
		return Cap{}, err
	}
	return Cap{p: p, id: m.Cid, kind: cap.KindMemory, rights: perms & cap.MemRights, size: size}, nil
}

// AllocMemory allocates a region from the arena and registers it as a
// Memory object in one step, returning the capability and the backing
// bytes.
func (p *Process) AllocMemory(t *sim.Task, size int, perms cap.Rights) (Cap, []byte, error) {
	off, err := p.alloc.alloc(size)
	if err != nil {
		return Cap{}, nil, err
	}
	c, err := p.MemoryCreate(t, uint64(off), uint64(size), perms)
	if err != nil {
		p.alloc.free(off)
		return Cap{}, nil, err
	}
	return c, p.Arena()[off : off+size], nil
}

// MemoryDiminish derives a narrower view of a Memory capability
// (memory_diminish).
func (p *Process) MemoryDiminish(t *sim.Task, c Cap, offset, size uint64, drop cap.Rights) (Cap, error) {
	if err := p.checkOwn(c); err != nil {
		return Cap{}, err
	}
	m, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.MemDiminish{Token: tok, Cid: c.id, Offset: offset, Size: size, Drop: drop}
	}))
	if err != nil {
		return Cap{}, err
	}
	return Cap{p: p, id: m.Cid, kind: cap.KindMemory, rights: c.rights.Diminish(drop), size: size}, nil
}

// MemoryCopy copies all bytes from src into dst (memory_copy),
// wherever either lives.
func (p *Process) MemoryCopy(t *sim.Task, src, dst Cap) error {
	_, err := wait(t, p.MemoryCopyAsync(src, dst))
	return err
}

// MemoryCopyAsync starts a memory_copy and returns its completion
// future, for pipelined transfers.
func (p *Process) MemoryCopyAsync(src, dst Cap) *sim.Future[*wire.Completion] {
	if err := p.checkOwn(src, dst); err != nil {
		f := sim.NewFuture[*wire.Completion](p.k)
		f.Fail(err)
		return f
	}
	return p.submit(func(tok uint64) wire.Message {
		return &wire.MemCopy{Token: tok, SrcCid: src.id, DstCid: dst.id}
	})
}

// RequestCreate creates a new Request provided by this Process
// (request_create). Tag identifies the RPC to the provider's serve
// loop; invocations of this Request (and all Requests derived from it)
// are delivered carrying it.
func (p *Process) RequestCreate(t *sim.Task, tag uint64, imms []wire.ImmArg, args []Arg) (Cap, error) {
	if err := p.checkArgs(args); err != nil {
		return Cap{}, err
	}
	m, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.ReqCreate{Token: tok, Parent: cap.NilCap, Tag: tag, Imms: imms, Caps: toSlots(args)}
	}))
	if err != nil {
		return Cap{}, err
	}
	return Cap{p: p, id: m.Cid, kind: cap.KindRequest, rights: cap.ReqRights}, nil
}

// Derive refines an existing Request with additional arguments
// (request_create with an existing Request); already-set arguments are
// immutable.
func (p *Process) Derive(t *sim.Task, parent Cap, imms []wire.ImmArg, args []Arg) (Cap, error) {
	if err := p.checkOwn(parent); err != nil {
		return Cap{}, err
	}
	if err := p.checkArgs(args); err != nil {
		return Cap{}, err
	}
	m, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.ReqCreate{Token: tok, Parent: parent.id, Imms: imms, Caps: toSlots(args)}
	}))
	if err != nil {
		return Cap{}, err
	}
	return Cap{p: p, id: m.Cid, kind: cap.KindRequest, rights: parent.rights}, nil
}

// Invoke invokes a Request (request_invoke) with invoke-time argument
// refinements. It returns once the invocation has been accepted and
// delivered/queued at the provider; results, if any, arrive through
// continuation Requests.
func (p *Process) Invoke(t *sim.Task, req Cap, imms []wire.ImmArg, args []Arg) error {
	_, err := wait(t, p.InvokeAsync(req, imms, args))
	return err
}

// InvokeAsync starts an invocation and returns its acceptance future.
func (p *Process) InvokeAsync(req Cap, imms []wire.ImmArg, args []Arg) *sim.Future[*wire.Completion] {
	err := p.checkOwn(req)
	if err == nil {
		err = p.checkArgs(args)
	}
	if err != nil {
		f := sim.NewFuture[*wire.Completion](p.k)
		f.Fail(err)
		return f
	}
	return p.submit(func(tok uint64) wire.Message {
		return &wire.ReqInvoke{Token: tok, Cid: req.id, Imms: imms, Caps: toSlots(args)}
	})
}

// Revtree creates a separately revocable child capability
// (cap_create_revtree).
func (p *Process) Revtree(t *sim.Task, c Cap) (Cap, error) {
	if err := p.checkOwn(c); err != nil {
		return Cap{}, err
	}
	m, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.CapRevtree{Token: tok, Cid: c.id}
	}))
	if err != nil {
		return Cap{}, err
	}
	return Cap{p: p, id: m.Cid, kind: c.kind, rights: c.rights, size: c.size}, nil
}

// Revoke revokes a capability: the object it references and all
// revocation-tree descendants are invalidated immediately at the owner
// (cap_revoke).
func (p *Process) Revoke(t *sim.Task, c Cap) error {
	if err := p.checkOwn(c); err != nil {
		return err
	}
	_, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.CapRevoke{Token: tok, Cid: c.id}
	}))
	return err
}

// Drop discards the capability-space entry without revoking.
func (p *Process) Drop(t *sim.Task, c Cap) error {
	if err := p.checkOwn(c); err != nil {
		return err
	}
	_, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.CapDrop{Token: tok, Cid: c.id}
	}))
	return err
}

// MonitorDelegate registers fn to run when every child delegated from
// c has been invalidated (monitor_delegate, §3.6). The capability must
// reference an object owned by this Process's Controller and must not
// have children yet.
func (p *Process) MonitorDelegate(t *sim.Task, c Cap, fn func()) error {
	p.nextCB++
	id := p.nextCB
	p.monitors[id] = func(uint8) { fn() }
	_, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.MonitorDelegate{Token: tok, Cid: c.id, Callback: id}
	}))
	if err != nil {
		delete(p.monitors, id)
	}
	return err
}

// MonitorReceive registers fn to run when c's object is invalidated —
// by explicit revocation or failure (monitor_receive, §3.6).
func (p *Process) MonitorReceive(t *sim.Task, c Cap, fn func()) error {
	p.nextCB++
	id := p.nextCB
	p.monitors[id] = func(uint8) { fn() }
	_, err := wait(t, p.submit(func(tok uint64) wire.Message {
		return &wire.MonitorReceive{Token: tok, Cid: c.id, Callback: id}
	}))
	if err != nil {
		delete(p.monitors, id)
	}
	return err
}

// Bye announces a graceful exit; the Controller revokes everything the
// Process provided. A send failure means the Controller already tore
// the Process down — the revocations Bye asks for have happened.
func (p *Process) Bye() {
	p.dead = true
	//fractos:send-ok already-disconnected means the Controller cleaned up first
	p.net.Send(p.ep.ID, p.ctrlEP, &wire.ProcBye{})
}

func toSlots(args []Arg) []wire.CapSlot {
	if len(args) == 0 {
		return nil
	}
	out := make([]wire.CapSlot, 0, len(args))
	for _, a := range args {
		out = append(out, wire.CapSlot{Slot: a.Slot, Cid: a.Cap.id})
	}
	return out
}

// GrantCap hands a capability from one Process to another through the
// trusted bootstrap path (the paper's key/value bootstrap service).
// Normal capability flow is via Request arguments; this is only for
// handing a fresh Process its initial capabilities.
func GrantCap(from *Process, c Cap, to *Process) (Cap, error) {
	cid, err := core.Grant(from.ctrl, from.id, c.id, to.ctrl, to.id)
	if err != nil {
		return Cap{}, err
	}
	return Cap{p: to, id: cid, kind: c.kind, rights: c.rights, size: c.size}, nil
}

// CapFromDelivered wraps a delivered capability descriptor in a Cap
// handle bound to this Process.
func (p *Process) CapFromDelivered(d wire.DeliveredCap) Cap {
	return Cap{p: p, id: d.Cid, kind: d.Kind, rights: d.Rights, size: d.Size}
}

// fmt stringer for diagnostics.
func (c Cap) String() string {
	return fmt.Sprintf("cap(cid=%d %v %v size=%d)", c.id, c.kind, c.rights, c.size)
}

package proc_test

// Randomized shadow-model stress test: a random interleaving of
// capability operations across three Processes on three nodes is
// checked against an in-memory model of what FractOS must guarantee:
//
//	I1  a copy succeeds iff the model says both capabilities are live
//	    with the needed rights — and then the bytes really moved;
//	I2  immediately after a revocation settles, every capability the
//	    model marks dead is unusable;
//	I3  rights never grow along any derivation/delegation chain;
//	I4  the run is deterministic (same seed → same trace).
//
// Note on cids: like POSIX file descriptors, capability indices are
// recycled after an explicit Drop — but NOT after an OS-initiated
// purge (revocation cleanup, stale epochs): those slots are
// tombstoned so a stale handle can never alias a new capability. The
// model still discards dead handles right after checking I2, since
// they have no further behaviour worth modelling.

import (
	"fmt"
	"math/rand"
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// shadowCap mirrors one capability handle held by one process.
type shadowCap struct {
	holder int
	c      proc.Cap
	obj    *shadowObj
	rights cap.Rights
}

// shadowObj mirrors one Memory object (possibly a derived view).
type shadowObj struct {
	id       int
	owner    int // process index whose arena backs it
	base     int
	size     int
	rights   cap.Rights // object-level rights at the owner
	revoked  bool
	parent   *shadowObj
	children []*shadowObj
}

func (o *shadowObj) revoke() {
	if o.revoked {
		return
	}
	o.revoked = true
	for _, c := range o.children {
		c.revoke()
	}
}

func runStress(t *testing.T, seed int64) []string {
	t.Helper()
	const arena = 1 << 14
	const maxRoots = 24
	const rootSlab = arena / maxRoots
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	logf := func(format string, args ...interface{}) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}

	run(t, core.ClusterConfig{Nodes: 3, Seed: seed}, func(tk *sim.Task, cl *core.Cluster) {
		procs := make([]*proc.Process, 3)
		roots := make([]int, 3) // next free slab per proc
		for i := range procs {
			procs[i] = proc.Attach(cl, i, fmt.Sprintf("stress%d", i), arena)
			rng.Read(procs[i].Arena())
		}
		var caps []*shadowCap
		nextObj := 0

		// settleRevocation checks I2 for every newly dead handle and
		// drops them from the pool (their cids may be recycled).
		settleRevocation := func(step int) {
			tk.Sleep(300 * 1000)
			var live []*shadowCap
			for _, sc := range caps {
				if !sc.obj.revoked && liveChain(sc.obj) {
					live = append(live, sc)
					continue
				}
				// I2: any use must fail.
				if _, err := procs[sc.holder].MemoryDiminish(tk, sc.c, 0, 1, 0); err == nil {
					t.Fatalf("step %d: dead capability o%d still usable by p%d", step, sc.obj.id, sc.holder)
				}
			}
			caps = live
		}

		for step := 0; step < 150; step++ {
			switch op := rng.Intn(10); {
			case op < 3: // create a root object in a fresh slab
				holder := rng.Intn(3)
				if roots[holder] >= maxRoots {
					continue
				}
				base := roots[holder] * rootSlab
				roots[holder]++
				size := 1 + rng.Intn(rootSlab)
				c, err := procs[holder].MemoryCreate(tk, uint64(base), uint64(size), cap.MemRights)
				if err != nil {
					t.Fatalf("step %d create: %v", step, err)
				}
				nextObj++
				obj := &shadowObj{id: nextObj, owner: holder, base: base, size: size, rights: cap.MemRights}
				caps = append(caps, &shadowCap{holder: holder, c: c, obj: obj, rights: cap.MemRights})
				logf("%d create p%d o%d", step, holder, obj.id)

			case op < 5 && len(caps) > 0: // diminish a live cap
				sc := caps[rng.Intn(len(caps))]
				off := rng.Intn(sc.obj.size)
				size := 1 + rng.Intn(sc.obj.size-off)
				drop := cap.Rights(rng.Intn(2)) * cap.Write
				c, err := procs[sc.holder].MemoryDiminish(tk, sc.c, uint64(off), uint64(size), drop)
				if err != nil {
					t.Fatalf("step %d diminish of live cap: %v", step, err)
				}
				nextObj++
				obj := &shadowObj{
					id: nextObj, owner: sc.obj.owner, base: sc.obj.base + off, size: size,
					rights: sc.obj.rights.Diminish(drop), parent: sc.obj,
				}
				sc.obj.children = append(sc.obj.children, obj)
				nsc := &shadowCap{holder: sc.holder, c: c, obj: obj, rights: sc.rights.Diminish(drop)}
				caps = append(caps, nsc)
				// I3: rights never grow.
				if nsc.rights&^sc.rights != 0 {
					t.Fatalf("step %d: diminish grew rights", step)
				}
				logf("%d diminish p%d o%d->o%d", step, sc.holder, sc.obj.id, obj.id)

			case op < 7 && len(caps) > 0: // delegate (bootstrap grant)
				sc := caps[rng.Intn(len(caps))]
				to := rng.Intn(3)
				g, err := proc.GrantCap(procs[sc.holder], sc.c, procs[to])
				if err != nil {
					t.Fatalf("step %d grant of live cap failed: %v", step, err)
				}
				nsc := &shadowCap{holder: to, c: g, obj: sc.obj, rights: sc.rights}
				caps = append(caps, nsc)
				if nsc.rights&^sc.rights != 0 {
					t.Fatalf("step %d: delegation grew rights", step)
				}
				logf("%d delegate o%d p%d->p%d", step, sc.obj.id, sc.holder, to)

			case op < 8 && len(caps) > 0: // revoke
				sc := caps[rng.Intn(len(caps))]
				if err := procs[sc.holder].Revoke(tk, sc.c); err != nil {
					t.Fatalf("step %d revoke of live cap failed: %v", step, err)
				}
				sc.obj.revoke()
				logf("%d revoke o%d", step, sc.obj.id)
				settleRevocation(step)

			default: // copy between two random live caps of one holder
				if len(caps) < 2 {
					continue
				}
				src := caps[rng.Intn(len(caps))]
				dst := caps[rng.Intn(len(caps))]
				if src.holder != dst.holder || src.obj == dst.obj || overlaps(src.obj, dst.obj) {
					continue
				}
				p := procs[src.holder]
				err := p.MemoryCopy(tk, src.c, dst.c)
				wantOK := src.rights.Has(cap.Read) && dst.rights.Has(cap.Write) &&
					src.obj.rights.Has(cap.Read) && dst.obj.rights.Has(cap.Write) &&
					dst.obj.size >= src.obj.size
				if (err == nil) != wantOK {
					t.Fatalf("step %d copy o%d->o%d: err=%v, model ok=%v", step, src.obj.id, dst.obj.id, err, wantOK)
				}
				if wantOK && !wire.IsStatus(err, wire.StatusOK) && err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err == nil {
					// I1: the bytes really moved.
					want := procs[src.obj.owner].Arena()[src.obj.base : src.obj.base+src.obj.size]
					got := procs[dst.obj.owner].Arena()[dst.obj.base : dst.obj.base+src.obj.size]
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("step %d copy o%d->o%d: byte %d mismatch", step, src.obj.id, dst.obj.id, i)
						}
					}
					logf("%d copy o%d->o%d", step, src.obj.id, dst.obj.id)
				}
			}
		}
	})
	return trace
}

// liveChain reports whether the object and all ancestors are alive.
func liveChain(o *shadowObj) bool {
	for n := o; n != nil; n = n.parent {
		if n.revoked {
			return false
		}
	}
	return true
}

// overlaps reports whether two objects share arena bytes (same owner).
func overlaps(a, b *shadowObj) bool {
	if a.owner != b.owner {
		return false
	}
	return a.base < b.base+b.size && b.base < a.base+a.size
}

func TestCapabilityShadowModelStress(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runStress(t, seed)
		})
	}
}

// TestStressDeterministic: the same seed yields the identical
// operation trace (I4).
func TestStressDeterministic(t *testing.T) {
	a := runStress(t, 42)
	b := runStress(t, 42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

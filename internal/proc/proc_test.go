package proc_test

// Integration tests: the full FractOS stack (sim kernel, fabric,
// Controllers, libfractos) exercised end to end.

import (
	"bytes"
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

func us(f float64) sim.Time { return testbed.USec(f) }

// run executes fn as the test's main task on a fresh testbed and runs
// the simulation to completion.
func run(t *testing.T, cfg core.ClusterConfig, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	testbed.RunT(t, testbed.SpecOf(cfg),
		func(tk *sim.Task, d *testbed.Deployment) { fn(tk, d.Cl) })
}

func cpuCluster() core.ClusterConfig { return core.ClusterConfig{Nodes: 3, Placement: core.CtrlOnCPU} }
func snicCluster() core.ClusterConfig {
	return core.ClusterConfig{Nodes: 3, Placement: core.CtrlOnSNIC}
}

// --- Table 3: null operation ---

func TestNullOpLatencyCPU(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "app", 0)
		// Warm-up not needed: the model is deterministic.
		start := tk.Now()
		if err := p.Null(tk); err != nil {
			t.Fatalf("null: %v", err)
		}
		lat := tk.Now() - start
		if lat < us(2.8) || lat > us(3.2) {
			t.Errorf("null-op @CPU latency = %v, want ~3.0µs (Table 3)", lat)
		}
	})
}

func TestNullOpLatencySNIC(t *testing.T) {
	run(t, snicCluster(), func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "app", 0)
		start := tk.Now()
		if err := p.Null(tk); err != nil {
			t.Fatalf("null: %v", err)
		}
		lat := tk.Now() - start
		if lat < us(4.2) || lat > us(4.8) {
			t.Errorf("null-op @sNIC latency = %v, want ~4.5µs (Table 3)", lat)
		}
	})
}

// --- Memory objects ---

func TestMemoryCreateBounds(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "app", 1024)
		if _, err := p.MemoryCreate(tk, 0, 1024, cap.MemRights); err != nil {
			t.Errorf("full-arena create failed: %v", err)
		}
		if _, err := p.MemoryCreate(tk, 512, 1024, cap.MemRights); err == nil {
			t.Error("out-of-arena create succeeded")
		}
		if _, err := p.MemoryCreate(tk, 0, 0, cap.MemRights); err == nil {
			t.Error("zero-size create succeeded")
		}
	})
}

func TestMemoryCopySameNode(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 0, "b", 4096)
		copy(a.Arena(), "hello fractos")
		src, err := a.MemoryCreate(tk, 0, 13, cap.MemRights)
		if err != nil {
			t.Fatal(err)
		}
		dstB, err := b.MemoryCreate(tk, 100, 13, cap.MemRights)
		if err != nil {
			t.Fatal(err)
		}
		// Hand the dst capability to a via bootstrap grant.
		dstForA, err := proc.GrantCap(b, dstB, a)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.MemoryCopy(tk, src, dstForA); err != nil {
			t.Fatalf("copy: %v", err)
		}
		if string(b.Arena()[100:113]) != "hello fractos" {
			t.Fatalf("dst arena = %q", b.Arena()[100:113])
		}
	})
}

func TestMemoryCopyCrossNodeAndBack(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 1<<20)
		b := proc.Attach(cl, 1, "b", 1<<20)
		payload := bytes.Repeat([]byte("0123456789abcdef"), 8192) // 128 KiB, > chunk
		copy(a.Arena(), payload)
		src, _ := a.MemoryCreate(tk, 0, uint64(len(payload)), cap.MemRights)
		dstB, _ := b.MemoryCreate(tk, 0, uint64(len(payload)), cap.MemRights)
		dst, err := proc.GrantCap(b, dstB, a)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.MemoryCopy(tk, src, dst); err != nil {
			t.Fatalf("copy: %v", err)
		}
		if !bytes.Equal(b.Arena()[:len(payload)], payload) {
			t.Fatal("128KiB cross-node copy corrupted data")
		}
	})
}

func TestMemoryCopyRightsEnforced(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		src, _ := a.MemoryCreate(tk, 0, 64, cap.MemRights)
		dst, _ := a.MemoryCreate(tk, 64, 64, cap.MemRights)
		// Read-only destination must be rejected.
		ro, err := a.MemoryDiminish(tk, dst, 0, 64, cap.Write)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.MemoryCopy(tk, src, ro); !wire.IsStatus(err, wire.StatusPerm) {
			t.Errorf("copy into read-only view: err = %v, want permission-denied", err)
		}
		// Write-only source must be rejected.
		wo, err := a.MemoryDiminish(tk, src, 0, 64, cap.Read)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.MemoryCopy(tk, wo, dst); !wire.IsStatus(err, wire.StatusPerm) {
			t.Errorf("copy from write-only view: err = %v, want permission-denied", err)
		}
	})
}

func TestMemoryDiminishView(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 0, "b", 4096)
		copy(a.Arena(), "....MIDDLE....")
		whole, _ := a.MemoryCreate(tk, 0, 14, cap.MemRights)
		mid, err := a.MemoryDiminish(tk, whole, 4, 6, 0)
		if err != nil {
			t.Fatal(err)
		}
		if mid.Size() != 6 {
			t.Errorf("view size = %d", mid.Size())
		}
		dstB, _ := b.MemoryCreate(tk, 0, 6, cap.MemRights)
		dst, _ := proc.GrantCap(b, dstB, a)
		if err := a.MemoryCopy(tk, mid, dst); err != nil {
			t.Fatal(err)
		}
		if string(b.Arena()[:6]) != "MIDDLE" {
			t.Fatalf("view copy = %q", b.Arena()[:6])
		}
		// Diminish beyond the view is out of bounds.
		if _, err := a.MemoryDiminish(tk, mid, 4, 6, 0); !wire.IsStatus(err, wire.StatusBounds) {
			t.Errorf("oversized diminish: err = %v", err)
		}
	})
}

// --- Requests ---

func TestRequestInvokeSameController(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, err := srv.RequestCreate(tk, 42, []wire.ImmArg{proc.U64Arg(0, 7)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		creq, err := proc.GrantCap(srv, req, cli)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Invoke(tk, creq, []wire.ImmArg{proc.U64Arg(8, 9)}, nil); err != nil {
			t.Fatal(err)
		}
		d, ok := srv.Receive(tk)
		if !ok {
			t.Fatal("no delivery")
		}
		defer d.Done()
		if d.Tag != 42 {
			t.Errorf("tag = %d", d.Tag)
		}
		if d.U64(0) != 7 || d.U64(8) != 9 {
			t.Errorf("imms = %v", d.Imms)
		}
	})
}

func TestRequestInvokeCrossController(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, _ := srv.RequestCreate(tk, 7, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)
		if err := cli.Invoke(tk, creq, []wire.ImmArg{proc.BytesArg(0, []byte("xnode"))}, nil); err != nil {
			t.Fatal(err)
		}
		d, _ := srv.Receive(tk)
		defer d.Done()
		if string(d.Imms) != "xnode" {
			t.Errorf("imms = %q", d.Imms)
		}
	})
}

func TestRequestArgsImmutable(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		req, _ := srv.RequestCreate(tk, 1, []wire.ImmArg{proc.U64Arg(0, 0xcafe)}, nil)
		// Deriving with overlapping immediates must fail.
		if _, err := srv.Derive(tk, req, []wire.ImmArg{proc.U64Arg(4, 1)}, nil); !wire.IsStatus(err, wire.StatusImmutable) {
			t.Errorf("overlapping derive: err = %v", err)
		}
		// Invoking with overlapping immediates must fail.
		if err := srv.Invoke(tk, req, []wire.ImmArg{proc.U64Arg(0, 1)}, nil); !wire.IsStatus(err, wire.StatusImmutable) {
			t.Errorf("overlapping invoke: err = %v", err)
		}
		// Non-overlapping refinement succeeds and inherits.
		d2, err := srv.Derive(tk, req, []wire.ImmArg{proc.U64Arg(8, 0xbeef)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Invoke(tk, d2, nil, nil); err != nil {
			t.Fatal(err)
		}
		d, _ := srv.Receive(tk)
		defer d.Done()
		if d.U64(0) != 0xcafe || d.U64(8) != 0xbeef {
			t.Errorf("derived args wrong: %v", d.Imms)
		}
	})
}

func TestSyncRPCEcho(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		const tagEcho, slotReply = 5, 0
		req, _ := srv.RequestCreate(tk, tagEcho, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)

		cl.K.Spawn("srv-loop", func(st *sim.Task) {
			for {
				d, ok := srv.Receive(st)
				if !ok {
					return
				}
				reply, ok := d.Cap(slotReply)
				if !ok {
					t.Error("echo request without reply cap")
					return
				}
				// Echo the immediates back.
				if err := srv.Invoke(st, reply, []wire.ImmArg{proc.BytesArg(0, d.Imms)}, nil); err != nil {
					t.Errorf("reply invoke: %v", err)
				}
				d.Done()
			}
		})

		d, err := cli.Call(tk, creq, []wire.ImmArg{proc.BytesArg(0, []byte("ping"))}, nil, slotReply)
		if err != nil {
			t.Fatalf("call: %v", err)
		}
		if string(d.Imms) != "ping" {
			t.Errorf("echo = %q", d.Imms)
		}
	})
}

// TestContinuationChain exercises §3.4's decentralized pipeline: the
// client invokes stage1 with a continuation for stage2, whose
// continuation returns to the client. Each stage only invokes the
// Request it was handed, verbatim.
func TestContinuationChain(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		s1 := proc.Attach(cl, 1, "stage1", 0)
		s2 := proc.Attach(cl, 2, "stage2", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		const slotNext = 3

		stageLoop := func(p *proc.Process, mark byte) func(*sim.Task) {
			return func(st *sim.Task) {
				for {
					d, ok := p.Receive(st)
					if !ok {
						return
					}
					next, _ := d.Cap(slotNext)
					imms := append(append([]byte(nil), d.Imms...), mark)
					if err := p.Invoke(st, next, []wire.ImmArg{proc.BytesArg(0, imms)}, nil); err != nil {
						t.Errorf("stage invoke: %v", err)
					}
					d.Done()
				}
			}
		}
		r1, _ := s1.RequestCreate(tk, 1, nil, nil)
		r2, _ := s2.RequestCreate(tk, 2, nil, nil)
		cl.K.Spawn("s1", stageLoop(s1, '1'))
		cl.K.Spawn("s2", stageLoop(s2, '2'))

		// Client-side graph: invoke(r1, next=r2', r2' has next=done).
		cr1, _ := proc.GrantCap(s1, r1, cli)
		cr2, _ := proc.GrantCap(s2, r2, cli)
		doneReq, doneTag, _ := cli.ReplyRequest(tk)
		// r2 refined with its continuation (the client's reply).
		cr2d, err := cli.Derive(tk, cr2, nil, []proc.Arg{{Slot: slotNext, Cap: doneReq}})
		if err != nil {
			t.Fatal(err)
		}
		f := cli.WaitTag(doneTag)
		if err := cli.Invoke(tk, cr1, []wire.ImmArg{proc.BytesArg(0, []byte("x"))},
			[]proc.Arg{{Slot: slotNext, Cap: cr2d}}); err != nil {
			t.Fatal(err)
		}
		d, err := f.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		d.Done()
		if string(d.Imms) != "x12" {
			t.Errorf("chain result = %q, want \"x12\"", d.Imms)
		}
	})
}

// --- Revocation ---

func TestRevokeMakesCapUnusable(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 1, "b", 4096)
		mem, _ := a.MemoryCreate(tk, 0, 64, cap.MemRights)
		memB, _ := proc.GrantCap(a, mem, b)
		dst, _ := b.MemoryCreate(tk, 0, 64, cap.MemRights)
		if err := b.MemoryCopy(tk, memB, dst); err != nil {
			t.Fatalf("pre-revoke copy: %v", err)
		}
		if err := a.Revoke(tk, mem); err != nil {
			t.Fatalf("revoke: %v", err)
		}
		err := b.MemoryCopy(tk, memB, dst)
		if err == nil {
			t.Fatal("copy via revoked capability succeeded")
		}
	})
}

func TestRevtreeSelectiveRevocation(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 1, "b", 4096)
		c := proc.Attach(cl, 2, "c", 4096)
		mem, _ := a.MemoryCreate(tk, 0, 64, cap.MemRights)
		// Two independently revocable children of the same object.
		leaseB, _ := a.Revtree(tk, mem)
		leaseC, _ := a.Revtree(tk, mem)
		capB, _ := proc.GrantCap(a, leaseB, b)
		capC, _ := proc.GrantCap(a, leaseC, c)
		dstB, _ := b.MemoryCreate(tk, 0, 64, cap.MemRights)
		dstC, _ := c.MemoryCreate(tk, 0, 64, cap.MemRights)

		// Revoke only B's lease.
		if err := a.Revoke(tk, leaseB); err != nil {
			t.Fatal(err)
		}
		if err := b.MemoryCopy(tk, capB, dstB); err == nil {
			t.Error("B's revoked lease still works")
		}
		if err := c.MemoryCopy(tk, capC, dstC); err != nil {
			t.Errorf("C's independent lease broken: %v", err)
		}
		// The parent object is untouched.
		dstA, _ := a.MemoryCreate(tk, 100, 64, cap.MemRights)
		if err := a.MemoryCopy(tk, mem, dstA); err != nil {
			t.Errorf("parent capability broken: %v", err)
		}
	})
}

func TestRevokeParentKillsDerivedLeases(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 1, "b", 4096)
		mem, _ := a.MemoryCreate(tk, 0, 64, cap.MemRights)
		lease, _ := a.Revtree(tk, mem)
		capB, _ := proc.GrantCap(a, lease, b)
		dstB, _ := b.MemoryCreate(tk, 0, 64, cap.MemRights)
		if err := a.Revoke(tk, mem); err != nil {
			t.Fatal(err)
		}
		if err := b.MemoryCopy(tk, capB, dstB); err == nil {
			t.Error("lease survived parent revocation")
		}
	})
}

// --- Delegation through invocation ---

func TestInvokeDelegatesMemory(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "srv", 4096)
		cli := proc.Attach(cl, 0, "cli", 4096)
		copy(srv.Arena(), "service-data")
		req, _ := srv.RequestCreate(tk, 9, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)

		cl.K.Spawn("srv", func(st *sim.Task) {
			d, ok := srv.Receive(st)
			if !ok {
				return
			}
			out, ok := d.Cap(0)
			if !ok {
				t.Error("no output cap delegated")
				return
			}
			srcMem, err := srv.MemoryCreate(st, 0, 12, cap.MemRights)
			if err != nil {
				t.Errorf("srv mem create: %v", err)
				return
			}
			if err := srv.MemoryCopy(st, srcMem, out); err != nil {
				t.Errorf("srv copy into delegated cap: %v", err)
			}
			reply, _ := d.Cap(1)
			srv.Invoke(st, reply, nil, nil)
			d.Done()
		})

		outMem, _ := cli.MemoryCreate(tk, 0, 12, cap.MemRights)
		d, err := cli.Call(tk, creq, nil, []proc.Arg{{Slot: 0, Cap: outMem}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		_ = d
		if string(cli.Arena()[:12]) != "service-data" {
			t.Errorf("delegated write = %q", cli.Arena()[:12])
		}
	})
}

// --- Congestion control ---

func TestCongestionWindowBackpressure(t *testing.T) {
	cfg := cpuCluster()
	cfg.Ctrl.Window = 2
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, _ := srv.RequestCreate(tk, 3, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)
		// Fire 6 invocations without the server draining.
		for i := 0; i < 6; i++ {
			if err := cli.Invoke(tk, creq, []wire.ImmArg{proc.U64Arg(0, uint64(i))}, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Let everything settle: only 2 may be delivered.
		tk.Sleep(us(100))
		delivered := 0
		for {
			d, ok := srv.ReceiveTimeout(tk, us(10))
			if !ok {
				break
			}
			delivered++
			if delivered <= 2 {
				// Do not ack yet for the first two — check queueing.
			}
			d.Done()
		}
		if delivered != 6 {
			t.Errorf("delivered = %d, want all 6 after acks", delivered)
		}
	})
}

// --- Monitors and failures ---

func TestMonitorReceiveFiresOnRevoke(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 1, "b", 0)
		mem, _ := a.MemoryCreate(tk, 0, 64, cap.MemRights)
		memB, _ := proc.GrantCap(a, mem, b)
		fired := false
		if err := b.MonitorReceive(tk, memB, func() { fired = true }); err != nil {
			t.Fatal(err)
		}
		if err := a.Revoke(tk, mem); err != nil {
			t.Fatal(err)
		}
		tk.Sleep(us(100))
		if !fired {
			t.Error("monitor_receive callback did not fire")
		}
	})
}

func TestMonitorDelegateFiresWhenChildrenGone(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 1, "cli", 0)
		sink := proc.Attach(cl, 1, "sink", 0)
		// Service creates a per-client request and monitors it.
		req, _ := srv.RequestCreate(tk, 11, nil, nil)
		fired := false
		if err := srv.MonitorDelegate(tk, req, func() { fired = true }); err != nil {
			t.Fatal(err)
		}
		// Delegate to the client via an invocation argument (the
		// monitored delegation path), through a carrier request.
		carrier, _ := cli.RequestCreate(tk, 12, nil, nil)
		carrierSrv, _ := proc.GrantCap(cli, carrier, srv)
		if err := srv.Invoke(tk, carrierSrv, nil, []proc.Arg{{Slot: 0, Cap: req}}); err != nil {
			t.Fatal(err)
		}
		d, _ := cli.Receive(tk)
		leased, ok := d.Cap(0)
		if !ok {
			t.Fatal("no delegated cap")
		}
		d.Done()
		// The leased child works.
		_ = sink
		if fired {
			t.Fatal("callback fired before child revocation")
		}
		// Client revokes its lease: the service finds out.
		if err := cli.Revoke(tk, leased); err != nil {
			t.Fatal(err)
		}
		tk.Sleep(us(100))
		if !fired {
			t.Error("monitor_delegate callback did not fire after child revocation")
		}
	})
}

func TestProcessFailureRevokesAndNotifies(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "gpu-svc", 0)
		cli := proc.Attach(cl, 1, "client", 0)
		// Service hands the client a monitored per-client request.
		req, _ := srv.RequestCreate(tk, 21, nil, nil)
		var clientGone bool
		if err := srv.MonitorDelegate(tk, req, func() { clientGone = true }); err != nil {
			t.Fatal(err)
		}
		carrier, _ := cli.RequestCreate(tk, 22, nil, nil)
		carrierSrv, _ := proc.GrantCap(cli, carrier, srv)
		if err := srv.Invoke(tk, carrierSrv, nil, []proc.Arg{{Slot: 0, Cap: req}}); err != nil {
			t.Fatal(err)
		}
		d, _ := cli.Receive(tk)
		leased, _ := d.Cap(0)
		d.Done()

		// Client also watches the service request for failures.
		var svcGone bool
		if err := cli.MonitorReceive(tk, leased, func() { svcGone = true }); err != nil {
			t.Fatal(err)
		}

		// Kill the client. Its Controller revokes the leased child →
		// the service's monitor_delegate fires.
		cl.CtrlFor(1).FailProcess(cli.ID())
		tk.Sleep(us(200))
		if !clientGone {
			t.Error("service did not observe client failure")
		}
		_ = svcGone // the client is dead; its watcher is moot
	})
}

func TestServiceFailureNotifiesClient(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "svc", 0)
		cli := proc.Attach(cl, 1, "client", 0)
		req, _ := srv.RequestCreate(tk, 31, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)
		var svcGone bool
		if err := cli.MonitorReceive(tk, creq, func() { svcGone = true }); err != nil {
			t.Fatal(err)
		}
		cl.CtrlFor(0).FailProcess(srv.ID())
		tk.Sleep(us(200))
		if !svcGone {
			t.Error("client did not observe service failure via monitor_receive")
		}
		if err := cli.Invoke(tk, creq, nil, nil); err == nil {
			t.Error("invoke on failed service's request succeeded")
		}
	})
}

func TestControllerRebootStalenessDetection(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "svc", 0)
		cli := proc.Attach(cl, 0, "client", 0)
		req, _ := srv.RequestCreate(tk, 41, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)
		if err := cli.Invoke(tk, creq, nil, nil); err != nil {
			t.Fatalf("pre-crash invoke: %v", err)
		}
		// Crash and reboot controller 1: its epoch advances.
		ctrl := cl.CtrlFor(1)
		ctrl.Crash()
		ctrl.Reboot()
		tk.Sleep(us(100))
		// The old capability is implicitly revoked (stale epoch): the
		// client's controller either purged it or rejects it on use.
		if err := cli.Invoke(tk, creq, nil, nil); err == nil {
			t.Error("stale-epoch capability still usable after controller reboot")
		}
	})
}

// --- HW copies ablation ---

func TestHWCopiesProducesSameData(t *testing.T) {
	cfg := cpuCluster()
	cfg.Ctrl.HWCopies = true
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 1<<17)
		b := proc.Attach(cl, 1, "b", 1<<17)
		payload := bytes.Repeat([]byte{0xab}, 1<<16)
		copy(a.Arena(), payload)
		src, _ := a.MemoryCreate(tk, 0, uint64(len(payload)), cap.MemRights)
		dstB, _ := b.MemoryCreate(tk, 0, uint64(len(payload)), cap.MemRights)
		dst, _ := proc.GrantCap(b, dstB, a)
		if err := a.MemoryCopy(tk, src, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Arena()[:len(payload)], payload) {
			t.Fatal("hw-copy corrupted data")
		}
	})
}

// --- Arena allocator ---

func TestAllocFreeReuse(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 1024)
		a, err := p.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		bOff, err := p.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Alloc(1); err == nil {
			t.Error("over-allocation succeeded")
		}
		p.Free(a)
		p.Free(bOff)
		if _, err := p.Alloc(1024); err != nil {
			t.Errorf("coalesced realloc failed: %v", err)
		}
	})
}

package proc_test

// Unit tests for the client-side resilience policies: backoff
// schedules, error classification, deadlines, jitter determinism, and
// the circuit breaker's state machine (docs/FAULTS.md).

import (
	"errors"
	"testing"

	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

const rms = sim.Time(1000 * 1000) // 1 ms virtual

// inSim runs fn inside a fresh simulation's main task.
func inSim(t *testing.T, fn func(tk *sim.Task)) {
	t.Helper()
	k := sim.New(0)
	done := false
	k.Spawn("retry-test", func(tk *sim.Task) {
		fn(tk)
		done = true
	})
	k.Run()
	k.Shutdown()
	if !done {
		t.Fatal("test task did not complete (deadlock)")
	}
}

func aborted() error { return wire.StatusAborted.Err() }

func TestBackoffSchedule(t *testing.T) {
	r := proc.Retry{Base: rms, Cap: 8 * rms}
	want := []sim.Time{rms, 2 * rms, 4 * rms, 8 * rms, 8 * rms, 8 * rms}
	for n, w := range want {
		if got := r.Backoff(n); got != w {
			t.Errorf("Backoff(%d) = %d, want %d", n, got, w)
		}
	}
	// Zero fields fall back to the documented defaults.
	z := proc.Retry{}
	if got := z.Backoff(0); got != proc.DefaultBackoffBase {
		t.Errorf("zero-value Backoff(0) = %d, want %d", got, proc.DefaultBackoffBase)
	}
	if got := z.Backoff(1000); got != proc.DefaultBackoffCap {
		t.Errorf("zero-value Backoff(1000) = %d, want cap %d", got, proc.DefaultBackoffCap)
	}
}

func TestRetryable(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{wire.StatusAborted.Err(), true},
		{wire.StatusBackpressure.Err(), true},
		{wire.StatusNoProc.Err(), true},
		{wire.StatusRevoked.Err(), false},
		{wire.StatusPerm.Err(), false},
		{proc.ErrDisconnected, false},
		{proc.ErrForeignCap, false},
		{errors.New("mystery"), false},
	} {
		if got := proc.Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestRetryMasksTransientFailures: attempts separated by the exact
// exponential schedule until one succeeds.
func TestRetryMasksTransientFailures(t *testing.T) {
	inSim(t, func(tk *sim.Task) {
		var at []sim.Time
		err := proc.Retry{Max: 5, Base: rms, Cap: 8 * rms}.Do(tk, func(st *sim.Task) error {
			at = append(at, st.Now())
			if len(at) < 4 {
				return aborted()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		// Gaps: Base, 2·Base, 4·Base (no jitter configured).
		want := []sim.Time{0, rms, 3 * rms, 7 * rms}
		if len(at) != len(want) {
			t.Fatalf("attempts at %v, want %d attempts", at, len(want))
		}
		for i := range want {
			if at[i] != want[i] {
				t.Errorf("attempt %d at %d, want %d", i, at[i], want[i])
			}
		}
	})
}

func TestRetryPermanentErrorStopsImmediately(t *testing.T) {
	inSim(t, func(tk *sim.Task) {
		calls := 0
		perm := wire.StatusRevoked.Err()
		err := proc.Retry{Max: 5, Base: rms}.Do(tk, func(*sim.Task) error {
			calls++
			return perm
		})
		if !errors.Is(err, perm) || calls != 1 {
			t.Errorf("err=%v calls=%d, want the permanent error after 1 attempt", err, calls)
		}
	})
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	inSim(t, func(tk *sim.Task) {
		calls := 0
		err := proc.Retry{Max: 3, Base: rms}.Do(tk, func(*sim.Task) error {
			calls++
			return aborted()
		})
		if calls != 3 {
			t.Errorf("calls = %d, want 3", calls)
		}
		if !wire.IsStatus(err, wire.StatusAborted) {
			t.Errorf("err = %v, want the last StatusAborted", err)
		}
	})
}

func TestRetryDeadline(t *testing.T) {
	inSim(t, func(tk *sim.Task) {
		calls := 0
		start := tk.Now()
		err := proc.Retry{Max: 10, Base: 4 * rms, Deadline: 6 * rms}.Do(tk, func(*sim.Task) error {
			calls++
			return aborted()
		})
		if !errors.Is(err, proc.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		// Attempt 1 at 0, retry at 4 ms; the next retry would land at
		// 12 ms > 6 ms, so Do gives up without scheduling it.
		if calls != 2 {
			t.Errorf("calls = %d, want 2", calls)
		}
		if el := tk.Now() - start; el > 6*rms {
			t.Errorf("Do overran its deadline: %d > %d", el, 6*rms)
		}
	})
}

// TestRetryJitterDeterministic: equal seeds replay the exact schedule;
// different seeds decorrelate it.
func TestRetryJitterDeterministic(t *testing.T) {
	schedule := func(seed int64) []sim.Time {
		var at []sim.Time
		inSim(t, func(tk *sim.Task) {
			_ = proc.Retry{Max: 6, Base: rms, Jitter: 0.5, Seed: seed}.Do(tk, func(st *sim.Task) error {
				at = append(at, st.Now())
				return aborted()
			})
		})
		return at
	}
	a, b, c := schedule(1), schedule(1), schedule(2)
	if len(a) != 6 {
		t.Fatalf("got %d attempts, want 6", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %d != %d", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jittered schedules")
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := &proc.Breaker{Threshold: 3, Cooldown: 10 * rms}
	now := sim.Time(0)

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Report(now, false)
	}
	if st := b.State(now); st != "closed" {
		t.Fatalf("state = %s after 2 failures, want closed", st)
	}
	// Third consecutive failure opens it.
	b.Allow(now)
	b.Report(now, false)
	if st := b.State(now); st != "open" {
		t.Fatalf("state = %s after threshold, want open", st)
	}
	if b.Allow(now + 5*rms) {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}

	// Cooldown elapsed: one half-open probe is admitted, a second is not.
	now += 10 * rms
	if st := b.State(now); st != "half-open" {
		t.Fatalf("state = %s after cooldown, want half-open", st)
	}
	if !b.Allow(now) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow(now) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: re-open for another cooldown.
	b.Report(now, false)
	if st := b.State(now); st != "open" {
		t.Fatalf("state = %s after failed probe, want open", st)
	}

	// Next probe succeeds: closed again, failure count reset.
	now += 10 * rms
	if !b.Allow(now) {
		t.Fatal("re-opened breaker refused the second probe")
	}
	b.Report(now, true)
	if st := b.State(now); st != "closed" {
		t.Fatalf("state = %s after successful probe, want closed", st)
	}
	if !b.Allow(now) {
		t.Fatal("closed breaker refused a call")
	}
	b.Report(now, true)
}

// TestRetryBreakerFailsFast: once the shared breaker opens, Do returns
// ErrCircuitOpen without issuing attempts; after the cooldown a
// successful probe closes it again.
func TestRetryBreakerFailsFast(t *testing.T) {
	inSim(t, func(tk *sim.Task) {
		br := &proc.Breaker{Threshold: 2, Cooldown: 10 * rms}
		fail := func(*sim.Task) error { return aborted() }

		// Two failing attempts open the circuit mid-Do.
		err := proc.Retry{Max: 4, Base: rms, Breaker: br}.Do(tk, fail)
		if !errors.Is(err, proc.ErrCircuitOpen) {
			t.Fatalf("err = %v, want ErrCircuitOpen once the breaker opens", err)
		}

		// While open, calls fail fast with zero attempts.
		calls := 0
		err = proc.Retry{Max: 4, Base: rms, Breaker: br}.Do(tk, func(*sim.Task) error {
			calls++
			return nil
		})
		if !errors.Is(err, proc.ErrCircuitOpen) || calls != 0 {
			t.Fatalf("err=%v calls=%d, want fail-fast with no attempts", err, calls)
		}

		// After the cooldown the half-open probe runs and closes it.
		tk.Sleep(10 * rms)
		err = proc.Retry{Max: 1, Breaker: br}.Do(tk, func(*sim.Task) error { return nil })
		if err != nil {
			t.Fatalf("probe Do: %v", err)
		}
		if st := br.State(tk.Now()); st != "closed" {
			t.Fatalf("state = %s after successful probe, want closed", st)
		}
	})
}

package proc_test

// Additional libfractos tests: asynchronous pipelining, serve-loop
// mechanics, and misuse handling.

import (
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// TestInvokeAsyncPipelining: issuing invokes without waiting overlaps
// their round trips — total time for k calls is far below k serial
// round trips.
func TestInvokeAsyncPipelining(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, _ := srv.RequestCreate(tk, 1, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)

		// Serial.
		start := tk.Now()
		const k = 8
		for i := 0; i < k; i++ {
			if err := cli.Invoke(tk, creq, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		serial := tk.Now() - start

		// Pipelined.
		start = tk.Now()
		futs := make([]*sim.Future[*wire.Completion], k)
		for i := 0; i < k; i++ {
			futs[i] = cli.InvokeAsync(creq, nil, nil)
		}
		for _, f := range futs {
			if c, err := f.Wait(tk); err != nil || c.Status != wire.StatusOK {
				t.Fatalf("async invoke: %v %v", err, c)
			}
		}
		pipelined := tk.Now() - start

		if pipelined*2 > serial {
			t.Errorf("pipelined %v vs serial %v: expected >2x overlap", pipelined, serial)
		}
		// Drain the deliveries.
		for i := 0; i < 2*k; i++ {
			d, ok := srv.ReceiveTimeout(tk, us(50))
			if !ok {
				t.Fatalf("only %d deliveries arrived", i)
			}
			d.Done()
		}
	})
}

func TestReceiveTimeoutExpires(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 0)
		start := tk.Now()
		if _, ok := p.ReceiveTimeout(tk, us(100)); ok {
			t.Fatal("unexpected delivery")
		}
		if got := tk.Now() - start; got != us(100) {
			t.Errorf("timeout after %v, want 100µs", got)
		}
	})
}

// TestDeliveryDoneIdempotent: acknowledging twice sends one credit.
func TestDeliveryDoneIdempotent(t *testing.T) {
	cfg := cpuCluster()
	cfg.Ctrl.Window = 1
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, _ := srv.RequestCreate(tk, 1, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)
		for i := 0; i < 3; i++ {
			if err := cli.Invoke(tk, creq, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		d1, _ := srv.Receive(tk)
		d1.Done()
		d1.Done() // double ack: must not grant an extra credit
		d2, ok := srv.ReceiveTimeout(tk, us(100))
		if !ok {
			t.Fatal("second delivery missing")
		}
		// The third delivery must wait for d2's (single) credit.
		if _, early := srv.ReceiveTimeout(tk, us(50)); early {
			t.Fatal("third delivery arrived before its credit")
		}
		d2.Done()
		if _, ok := srv.ReceiveTimeout(tk, us(100)); !ok {
			t.Fatal("third delivery never arrived")
		}
	})
}

// TestByeRevokesProvidedObjects: a graceful exit has the same
// capability consequences as a crash.
func TestByeRevokesProvidedObjects(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		svc := proc.Attach(cl, 0, "svc", 0)
		cli := proc.Attach(cl, 1, "cli", 0)
		req, _ := svc.RequestCreate(tk, 1, nil, nil)
		creq, _ := proc.GrantCap(svc, req, cli)
		svc.Bye()
		tk.Sleep(us(200))
		if err := cli.Invoke(tk, creq, nil, nil); err == nil {
			t.Fatal("invoke on exited service succeeded")
		}
	})
}

// TestDerivedRightsNeverGrow is the end-to-end monotonicity property:
// however a capability travels (diminish, revtree, delegation through
// invocations), the rights observed downstream are a subset of the
// original's.
func TestDerivedRightsNeverGrow(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 1, "b", 0)
		orig, _ := a.MemoryCreate(tk, 0, 128, cap.Read|cap.Grant) // no Write from birth
		// Chain: diminish → revtree → delegate via invocation.
		dim, err := a.MemoryDiminish(tk, orig, 0, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		lease, err := a.Revtree(tk, dim)
		if err != nil {
			t.Fatal(err)
		}
		carrier, _ := b.RequestCreate(tk, 5, nil, nil)
		carrierA, _ := proc.GrantCap(b, carrier, a)
		if err := a.Invoke(tk, carrierA, nil, []proc.Arg{{Slot: 0, Cap: lease}}); err != nil {
			t.Fatal(err)
		}
		d, _ := b.Receive(tk)
		got, ok := d.Cap(0)
		d.Done()
		if !ok {
			t.Fatal("no delegated cap")
		}
		if got.Rights().Has(cap.Write) {
			t.Fatalf("delegated rights %v gained Write", got.Rights())
		}
		// And the authoritative check agrees: b cannot use it as a
		// copy destination.
		src2, err := a.MemoryCreate(tk, 64, 64, cap.MemRights)
		if err != nil {
			t.Fatal(err)
		}
		srcB, _ := proc.GrantCap(a, src2, b)
		if err := b.MemoryCopy(tk, srcB, got); !wire.IsStatus(err, wire.StatusPerm) {
			t.Errorf("write through never-writable chain: err = %v, want perm", err)
		}
	})
}

// TestWaitTagBypassesQueue: tagged deliveries go to their waiter even
// with other traffic queued.
func TestWaitTagBypassesQueue(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 0)
		q := proc.Attach(cl, 0, "q", 0)
		noise, _ := p.RequestCreate(tk, 500, nil, nil)
		tagged, tag, _ := p.ReplyRequest(tk)
		noiseQ, _ := proc.GrantCap(p, noise, q)
		taggedQ, _ := proc.GrantCap(p, tagged, q)

		// Queue noise first, then the tagged one.
		for i := 0; i < 3; i++ {
			if err := q.Invoke(tk, noiseQ, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		f := p.WaitTag(tag)
		if err := q.Invoke(tk, taggedQ, nil, nil); err != nil {
			t.Fatal(err)
		}
		d, err := f.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		if d.Tag != tag {
			t.Fatalf("tag = %d, want %d", d.Tag, tag)
		}
		d.Done()
		// The noise is still in the normal queue.
		for i := 0; i < 3; i++ {
			nd, ok := p.ReceiveTimeout(tk, us(100))
			if !ok || nd.Tag != 500 {
				t.Fatalf("noise delivery %d missing", i)
			}
			nd.Done()
		}
	})
}

func TestAllocErrors(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 128)
		if _, err := p.Alloc(0); err == nil {
			t.Error("zero-size alloc succeeded")
		}
		if _, err := p.Alloc(-5); err == nil {
			t.Error("negative alloc succeeded")
		}
		if _, _, err := p.AllocMemory(tk, 256, cap.MemRights); err == nil {
			t.Error("oversized AllocMemory succeeded")
		}
		// Freeing an unknown offset is a no-op, not a crash.
		p.Free(77)
	})
}

// TestForeignCapRejected: a capability handle minted for one Process
// cannot be used through another — the library rejects it instead of
// silently addressing an unrelated cid.
func TestForeignCapRejected(t *testing.T) {
	run(t, cpuCluster(), func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 1, "b", 4096)
		am, _ := a.MemoryCreate(tk, 0, 64, cap.MemRights)
		bm, _ := b.MemoryCreate(tk, 0, 64, cap.MemRights)
		if err := b.MemoryCopy(tk, am, bm); err != proc.ErrForeignCap {
			t.Errorf("copy with foreign src: %v", err)
		}
		if err := b.Revoke(tk, am); err != proc.ErrForeignCap {
			t.Errorf("revoke foreign: %v", err)
		}
		if _, err := b.MemoryDiminish(tk, am, 0, 1, 0); err != proc.ErrForeignCap {
			t.Errorf("diminish foreign: %v", err)
		}
		if err := b.Invoke(tk, bmReq(tk, t, b), nil, []proc.Arg{{Slot: 0, Cap: am}}); err != proc.ErrForeignCap {
			t.Errorf("invoke with foreign arg: %v", err)
		}
	})
}

func bmReq(tk *sim.Task, t *testing.T, p *proc.Process) proc.Cap {
	t.Helper()
	r, err := p.RequestCreate(tk, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

package baseline

import (
	"fmt"

	"fractos/internal/device/gpu"
	"fractos/internal/fabric"
	"fractos/internal/sim"
)

// rCUDA protocol kinds: one RPC per interposed CUDA driver call.
const (
	rcudaMalloc uint32 = 0x200 + iota
	rcudaFree
	rcudaMemcpyH2D
	rcudaMemcpyD2H
	rcudaLaunch
)

// rCUDA per-call costs. rCUDA interposes the CUDA API transparently,
// which the paper identifies as its weakness: every driver call is a
// full network round trip through generic marshalling layers, and the
// data path always runs application-node ↔ GPU node (§6.3).
const (
	rcudaServerPerCall = 18 * sim.Time(1000) // server-side interposition
	rcudaClientPerCall = 6 * sim.Time(1000)  // client stub marshalling
)

// RCUDAServer runs on the GPU node, executing interposed driver calls
// against the device.
type RCUDAServer struct {
	peer *Peer
	dev  *gpu.Device
	mem  []byte
	free int
}

// NewRCUDAServer attaches the server next to its GPU.
func NewRCUDAServer(k *sim.Kernel, net *fabric.Net, node int, dev *gpu.Device) *RCUDAServer {
	s := &RCUDAServer{
		peer: NewPeer(k, net, fmt.Sprintf("rcuda-server.n%d", node), fabric.Location{Node: node, Domain: fabric.Host}),
		dev:  dev,
		mem:  make([]byte, dev.MemSize()),
	}
	k.Spawn("rcuda-server", s.serve)
	return s
}

// Endpoint returns the server's fabric address.
func (s *RCUDAServer) Endpoint() fabric.EndpointID { return s.peer.EP.ID }

func (s *RCUDAServer) serve(t *sim.Task) {
	for {
		req, ok := s.peer.Serve(t)
		if !ok {
			return
		}
		t.Sleep(rcudaServerPerCall)
		switch req.Kind {
		case rcudaMalloc:
			size := int(getU64(req.Data, 0))
			if size <= 0 || s.free+size > len(s.mem) {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			addr := s.free
			s.free += size
			s.peer.Reply(t, req, header([]uint64{0, uint64(addr)}, nil), false)
		case rcudaFree:
			// The simple bump allocator leaks, like a short benchmark run.
			s.peer.Reply(t, req, header([]uint64{0}, nil), false)
		case rcudaMemcpyH2D:
			addr := int(getU64(req.Data, 0))
			data := req.Data[8:]
			if addr+len(data) > len(s.mem) {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			copy(s.mem[addr:], data)
			s.peer.Reply(t, req, header([]uint64{0}, nil), false)
		case rcudaMemcpyD2H:
			addr, n := int(getU64(req.Data, 0)), int(getU64(req.Data, 8))
			if addr+n > len(s.mem) {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			s.peer.Reply(t, req, header([]uint64{0}, s.mem[addr:addr+n]), true)
		case rcudaLaunch:
			nameLen := int(getU64(req.Data, 0))
			name := string(req.Data[8 : 8+nameLen])
			args := decodeU64s(req.Data[8+nameLen:])
			st, err := s.dev.Exec(t, name, s.mem, args)
			if err != nil {
				st = 1
			}
			s.peer.Reply(t, req, header([]uint64{st}, nil), false)
		}
	}
}

func decodeU64s(b []byte) []uint64 {
	var out []uint64
	for off := 0; off+8 <= len(b); off += 8 {
		out = append(out, getU64(b, off))
	}
	return out
}

// RCUDAClient is the application-side CUDA stub library.
type RCUDAClient struct {
	peer   *Peer
	server fabric.EndpointID
}

// NewRCUDAClient attaches a client on the application node.
func NewRCUDAClient(k *sim.Kernel, net *fabric.Net, node int, server *RCUDAServer) *RCUDAClient {
	return &RCUDAClient{
		peer:   NewPeer(k, net, fmt.Sprintf("rcuda-client.n%d", node), fabric.Location{Node: node, Domain: fabric.Host}),
		server: server.Endpoint(),
	}
}

func (c *RCUDAClient) call(t *sim.Task, kind uint32, data []byte, isData bool) (*fabricReply, error) {
	t.Sleep(rcudaClientPerCall)
	r, err := c.peer.Call(t, c.server, kind, data, isData)
	if err != nil {
		return nil, err
	}
	if getU64(r.Data, 0) != 0 {
		return nil, fmt.Errorf("rcuda: call %x failed", kind)
	}
	return &fabricReply{r.Data}, nil
}

type fabricReply struct{ data []byte }

func (r *fabricReply) u64(off int) uint64 { return getU64(r.data, off) }

// Malloc allocates GPU memory, returning the device address.
func (c *RCUDAClient) Malloc(t *sim.Task, size int) (uint64, error) {
	r, err := c.call(t, rcudaMalloc, header([]uint64{uint64(size)}, nil), false)
	if err != nil {
		return 0, err
	}
	return r.u64(8), nil
}

// MemcpyH2D copies host bytes to a device address.
func (c *RCUDAClient) MemcpyH2D(t *sim.Task, addr uint64, data []byte) error {
	_, err := c.call(t, rcudaMemcpyH2D, header([]uint64{addr}, data), true)
	return err
}

// MemcpyD2H copies n device bytes back to the host.
func (c *RCUDAClient) MemcpyD2H(t *sim.Task, addr uint64, n int) ([]byte, error) {
	r, err := c.call(t, rcudaMemcpyD2H, header([]uint64{addr, uint64(n)}, nil), false)
	if err != nil {
		return nil, err
	}
	return r.data[8:], nil
}

// Launch synchronously executes a kernel.
func (c *RCUDAClient) Launch(t *sim.Task, kernel string, args ...uint64) error {
	payload := header([]uint64{uint64(len(kernel))}, append([]byte(kernel), header(args, nil)...))
	_, err := c.call(t, rcudaLaunch, payload, false)
	return err
}

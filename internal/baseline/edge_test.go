package baseline

import (
	"testing"

	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/device/nvme"
	"fractos/internal/sim"
)

func TestRCUDAMallocExhaustion(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 4096, LaunchOverhead: us(10)})
		srv := NewRCUDAServer(cl.K, cl.Net, 1, dev)
		cli := NewRCUDAClient(cl.K, cl.Net, 0, srv)
		if _, err := cli.Malloc(tk, 4096); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Malloc(tk, 1); err == nil {
			t.Fatal("over-allocation succeeded")
		}
	})
}

func TestRCUDAMemcpyBounds(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 4096, LaunchOverhead: us(10)})
		srv := NewRCUDAServer(cl.K, cl.Net, 1, dev)
		cli := NewRCUDAClient(cl.K, cl.Net, 0, srv)
		addr, _ := cli.Malloc(tk, 1024)
		if err := cli.MemcpyH2D(tk, addr, make([]byte, 8192)); err == nil {
			t.Fatal("out-of-bounds H2D succeeded")
		}
		if _, err := cli.MemcpyD2H(tk, addr, 8192); err == nil {
			t.Fatal("out-of-bounds D2H succeeded")
		}
	})
}

func TestRCUDAUnknownKernel(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.DefaultConfig())
		srv := NewRCUDAServer(cl.K, cl.Net, 1, dev)
		cli := NewRCUDAClient(cl.K, cl.Net, 0, srv)
		if err := cli.Launch(tk, "ghost"); err == nil {
			t.Fatal("launch of unknown kernel succeeded")
		}
	})
}

func TestNFSErrorPaths(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 1, tg, false)
		srv := NewNFSServer(cl.K, cl.Net, 1, ini)
		cli := NewNFSClient(cl.K, cl.Net, 0, srv)

		if err := cli.Create(tk, "f", 4096); err != nil {
			t.Fatal(err)
		}
		if err := cli.Create(tk, "f", 4096); err == nil {
			t.Fatal("duplicate create succeeded")
		}
		fd, _, err := cli.Open(tk, "f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Read(tk, fd, 4000, 1000); err == nil {
			t.Fatal("read past EOF succeeded")
		}
		if err := cli.Write(tk, fd, 4000, make([]byte, 1000)); err == nil {
			t.Fatal("write past EOF succeeded")
		}
		if _, err := cli.Read(tk, 999, 0, 16); err == nil {
			t.Fatal("read on bogus fd succeeded")
		}
	})
}

func TestNVMeoFAllocExhaustion(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		cfg := nvme.DefaultConfig()
		cfg.Capacity = 1 << 20
		dev := nvme.NewDevice(cl.K, cfg)
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, false)
		if _, err := ini.Alloc(tk, 1<<20); err != nil {
			t.Fatal(err)
		}
		if _, err := ini.Alloc(tk, 1); err == nil {
			t.Fatal("over-allocation succeeded")
		}
	})
}

// TestPeerCallToDeadEndpoint: baseline RPCs to a severed endpoint fail
// immediately instead of hanging.
func TestPeerCallToDeadEndpoint(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, false)
		cl.Net.Disconnect(tg.Endpoint())
		if _, err := ini.Alloc(tk, 4096); err == nil {
			t.Fatal("call to severed target succeeded")
		}
	})
}

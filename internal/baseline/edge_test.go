package baseline

import (
	"testing"

	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/device/nvme"
	"fractos/internal/sim"
)

func TestRCUDAMallocExhaustion(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 4096, LaunchOverhead: us(10)})
		srv := NewRCUDAServer(cl.K, cl.Net, 1, dev)
		cli := NewRCUDAClient(cl.K, cl.Net, 0, srv)
		if _, err := cli.Malloc(tk, 4096); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Malloc(tk, 1); err == nil {
			t.Fatal("over-allocation succeeded")
		}
	})
}

func TestRCUDAMemcpyBounds(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.Config{MemSize: 4096, LaunchOverhead: us(10)})
		srv := NewRCUDAServer(cl.K, cl.Net, 1, dev)
		cli := NewRCUDAClient(cl.K, cl.Net, 0, srv)
		addr, _ := cli.Malloc(tk, 1024)
		if err := cli.MemcpyH2D(tk, addr, make([]byte, 8192)); err == nil {
			t.Fatal("out-of-bounds H2D succeeded")
		}
		if _, err := cli.MemcpyD2H(tk, addr, 8192); err == nil {
			t.Fatal("out-of-bounds D2H succeeded")
		}
	})
}

func TestRCUDAUnknownKernel(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.DefaultConfig())
		srv := NewRCUDAServer(cl.K, cl.Net, 1, dev)
		cli := NewRCUDAClient(cl.K, cl.Net, 0, srv)
		if err := cli.Launch(tk, "ghost"); err == nil {
			t.Fatal("launch of unknown kernel succeeded")
		}
	})
}

func TestNFSErrorPaths(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 1, tg, false)
		srv := NewNFSServer(cl.K, cl.Net, 1, ini)
		cli := NewNFSClient(cl.K, cl.Net, 0, srv)

		if err := cli.Create(tk, "f", 4096); err != nil {
			t.Fatal(err)
		}
		if err := cli.Create(tk, "f", 4096); err == nil {
			t.Fatal("duplicate create succeeded")
		}
		fd, _, err := cli.Open(tk, "f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Read(tk, fd, 4000, 1000); err == nil {
			t.Fatal("read past EOF succeeded")
		}
		if err := cli.Write(tk, fd, 4000, make([]byte, 1000)); err == nil {
			t.Fatal("write past EOF succeeded")
		}
		if _, err := cli.Read(tk, 999, 0, 16); err == nil {
			t.Fatal("read on bogus fd succeeded")
		}
	})
}

func TestNVMeoFAllocExhaustion(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		cfg := nvme.DefaultConfig()
		cfg.Capacity = 1 << 20
		dev := nvme.NewDevice(cl.K, cfg)
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, false)
		if _, err := ini.Alloc(tk, 1<<20); err != nil {
			t.Fatal(err)
		}
		if _, err := ini.Alloc(tk, 1); err == nil {
			t.Fatal("over-allocation succeeded")
		}
	})
}

// TestPeerCallToDeadEndpoint: baseline RPCs to a severed endpoint fail
// immediately instead of hanging.
func TestPeerCallToDeadEndpoint(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, false)
		cl.Net.Disconnect(tg.Endpoint())
		if _, err := ini.Alloc(tk, 4096); err == nil {
			t.Fatal("call to severed target succeeded")
		}
	})
}

// TestBlockCacheFIFOEviction: the block cache evicts
// oldest-insertion-first — a pure function of the fill sequence, never
// of Go's randomized map iteration order (which would leak
// run-to-run nondeterminism into every Disaggregated-Baseline
// experiment; the Figure 11 random-read cell used to flap because of
// exactly that).
func TestBlockCacheFIFOEviction(t *testing.T) {
	c := newBlockCache(2 * cachePage) // room for two pages
	page := func(i int64) int64 { return i * cachePage }
	buf := make([]byte, cachePage)
	c.fill(page(0), buf)
	c.fill(page(1), buf)
	c.fill(page(2), buf) // evicts page 0 (oldest), never page 1
	if _, ok := c.pages[0]; ok {
		t.Error("page 0 not evicted")
	}
	if _, ok := c.pages[1]; !ok {
		t.Error("page 1 (younger) evicted instead of page 0")
	}
	if _, ok := c.pages[2]; !ok {
		t.Error("freshly filled page 2 missing")
	}
	c.fill(page(3), buf) // evicts page 1
	if _, ok := c.pages[1]; ok {
		t.Error("page 1 not evicted on second overflow")
	}
	if c.used != 2*cachePage {
		t.Errorf("used = %d, want %d", c.used, 2*cachePage)
	}
	// Refilling a resident page must not duplicate it in the FIFO.
	c.fill(page(3), buf)
	if len(c.fifo) != 2 {
		t.Errorf("fifo length = %d after refill, want 2", len(c.fifo))
	}
}

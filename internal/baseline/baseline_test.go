package baseline

import (
	"bytes"
	"testing"

	"fractos/internal/core"
	"fractos/internal/device/gpu"
	"fractos/internal/device/nvme"
	"fractos/internal/fs"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
)

func us(f float64) sim.Time { return testbed.USec(f) }

func runCluster(t *testing.T, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	testbed.RunT(t, testbed.Spec{Nodes: 3},
		func(tk *sim.Task, d *testbed.Deployment) { fn(tk, d.Cl) })
}

func TestNVMeoFReadWrite(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, false)
		off, err := ini.Alloc(tk, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		in := bytes.Repeat([]byte("nvmeof!!"), 1024)
		if err := ini.Write(tk, off+4096, in); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, len(in))
		if err := ini.Read(tk, off+4096, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(in, out) {
			t.Fatal("nvmeof corrupted data")
		}
	})
}

func TestNVMeoFCacheAbsorbsWrites(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		cached := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, true)
		raw := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, false)
		buf := make([]byte, 64<<10)

		start := tk.Now()
		if err := cached.Write(tk, 0, buf); err != nil {
			t.Fatal(err)
		}
		cachedTime := tk.Now() - start

		start = tk.Now()
		if err := raw.Write(tk, 1<<20, buf); err != nil {
			t.Fatal(err)
		}
		rawTime := tk.Now() - start
		if cachedTime >= rawTime {
			t.Errorf("cached write (%v) not faster than write-through (%v)", cachedTime, rawTime)
		}
	})
}

func TestNVMeoFReadAheadHelpsSequential(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 0, tg, true)
		buf := make([]byte, 4096)
		// First read misses and kicks off an asynchronous prefetch of
		// the following window (Linux-style read-ahead).
		if err := ini.Read(tk, 0, buf); err != nil {
			t.Fatal(err)
		}
		tk.Sleep(us(2000)) // let the background prefetch land
		start := tk.Now()
		if err := ini.Read(tk, 4096, buf); err != nil {
			t.Fatal(err)
		}
		seq := tk.Now() - start
		if seq > us(10) {
			t.Errorf("sequential cached read took %v, want local-cache speed", seq)
		}
	})
}

func TestDisaggregatedBaselineUnderFS(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		svc := fs.NewService(cl, 1, "fs-baseline", fs.Config{})
		svc.WireBackend(NewDisaggregatedBackend(cl, 1, 2, dev))
		if err := svc.Start(tk); err != nil {
			t.Fatal(err)
		}
		client := proc.Attach(cl, 0, "client", 4<<20)
		open, _ := proc.GrantCap(svc.P, svc.Open, client)

		f, err := fs.OpenFile(tk, client, open, "base.bin", fs.OpenRead|fs.OpenWrite|fs.OpenCreate, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("dbase"), 2000)
		copy(client.Arena(), payload)
		src, _ := client.MemoryCreate(tk, 0, uint64(len(payload)), 0xf)
		if err := f.WriteAt(tk, 100, uint64(len(payload)), src); err != nil {
			t.Fatal(err)
		}
		dst, _ := client.MemoryCreate(tk, 1<<20, uint64(len(payload)), 0xf)
		if err := f.ReadAt(tk, 100, uint64(len(payload)), dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(client.Arena()[1<<20:(1<<20)+len(payload)], payload) {
			t.Fatal("disaggregated baseline corrupted data")
		}
		// DAX must be unavailable on this backend.
		if _, err := fs.OpenFile(tk, client, open, "base.bin", fs.OpenRead|fs.OpenDAX, 0); err == nil {
			t.Fatal("DAX open succeeded on NVMe-oF backend")
		}
	})
}

func TestRCUDAEndToEnd(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := gpu.NewDevice(cl.K, gpu.DefaultConfig())
		dev.Register("double", func(mem []byte, args []uint64) uint64 {
			addr, n := args[0], args[1]
			for i := uint64(0); i < n; i++ {
				mem[addr+i] *= 2
			}
			return 0
		}, func(args []uint64) sim.Time { return us(50) })

		srv := NewRCUDAServer(cl.K, cl.Net, 1, dev)
		cli := NewRCUDAClient(cl.K, cl.Net, 0, srv)

		addr, err := cli.Malloc(tk, 256)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]byte, 256)
		for i := range in {
			in[i] = byte(i % 100)
		}
		if err := cli.MemcpyH2D(tk, addr, in); err != nil {
			t.Fatal(err)
		}
		if err := cli.Launch(tk, "double", addr, 256); err != nil {
			t.Fatal(err)
		}
		out, err := cli.MemcpyD2H(tk, addr, 256)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != byte(i%100)*2 {
				t.Fatalf("out[%d] = %d", i, out[i])
			}
		}
	})
}

func TestNFSOverNVMeoF(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		dev := nvme.NewDevice(cl.K, nvme.DefaultConfig())
		tg := NewNVMeoFTarget(cl.K, cl.Net, 2, dev)
		ini := NewNVMeoFInitiator(cl.K, cl.Net, 1, tg, true)
		srv := NewNFSServer(cl.K, cl.Net, 1, ini)
		cli := NewNFSClient(cl.K, cl.Net, 0, srv)

		if err := cli.Create(tk, "db/images.bin", 1<<20); err != nil {
			t.Fatal(err)
		}
		fd, size, err := cli.Open(tk, "db/images.bin")
		if err != nil || size != 1<<20 {
			t.Fatalf("open: fd=%d size=%d err=%v", fd, size, err)
		}
		payload := bytes.Repeat([]byte("nfsdata."), 512)
		if err := cli.Write(tk, fd, 8192, payload); err != nil {
			t.Fatal(err)
		}
		got, err := cli.Read(tk, fd, 8192, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("nfs corrupted data")
		}
		if _, _, err := cli.Open(tk, "missing"); err == nil {
			t.Fatal("open of missing file succeeded")
		}
	})
}

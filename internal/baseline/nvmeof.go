package baseline

import (
	"fmt"

	"fractos/internal/core"
	"fractos/internal/device/nvme"
	"fractos/internal/fabric"
	"fractos/internal/fs"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// NVMe-oF protocol kinds.
const (
	nvmeofRead uint32 = 0x100 + iota
	nvmeofWrite
	nvmeofAlloc
)

// nvmeofPerOp is the in-kernel NVMe-oF target/initiator processing
// cost per operation per side: the protocol is hardware-accelerated
// and lean (§6.4 finds the FractOS FS "competitive with existing
// hardware-accelerated NVMe-oF").
const nvmeofPerOp = 4 * sim.Time(1000)

// NVMeoFTarget exports an NVMe device over the fabric at block level,
// like the in-kernel Linux NVMe-oF target the paper's baseline uses.
type NVMeoFTarget struct {
	peer *Peer
	dev  *nvme.Device
	free int64
}

// NewNVMeoFTarget attaches a target co-located with its device.
func NewNVMeoFTarget(k *sim.Kernel, net *fabric.Net, node int, dev *nvme.Device) *NVMeoFTarget {
	tg := &NVMeoFTarget{
		peer: NewPeer(k, net, fmt.Sprintf("nvmeof-target.n%d", node), fabric.Location{Node: node, Domain: fabric.Host}),
		dev:  dev,
	}
	k.Spawn("nvmeof-target", tg.serve)
	return tg
}

// Endpoint returns the target's fabric address.
func (tg *NVMeoFTarget) Endpoint() fabric.EndpointID { return tg.peer.EP.ID }

func (tg *NVMeoFTarget) serve(t *sim.Task) {
	for {
		req, ok := tg.peer.Serve(t)
		if !ok {
			return
		}
		t.Sleep(nvmeofPerOp)
		switch req.Kind {
		case nvmeofAlloc:
			size := int64(getU64(req.Data, 0))
			off := tg.free
			if size <= 0 || off+size > tg.dev.Capacity() {
				tg.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			tg.free += size
			tg.peer.Reply(t, req, header([]uint64{0, uint64(off)}, nil), false)
		case nvmeofRead:
			off, n := int64(getU64(req.Data, 0)), int(getU64(req.Data, 8))
			buf := make([]byte, n)
			if err := tg.dev.Read(t, off, buf); err != nil {
				tg.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			tg.peer.Reply(t, req, header([]uint64{0}, buf), true)
		case nvmeofWrite:
			off := int64(getU64(req.Data, 0))
			if err := tg.dev.Write(t, off, req.Data[8:]); err != nil {
				tg.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			tg.peer.Reply(t, req, header([]uint64{0}, nil), false)
		}
	}
}

// NVMeoFInitiator is the host-side driver: block reads/writes over the
// fabric, with the Linux block cache in front (read-ahead for
// sequential reads, write-back absorption — the behaviour that makes
// the Disaggregated Baseline's writes fast in Figure 10).
type NVMeoFInitiator struct {
	peer   *Peer
	target fabric.EndpointID

	cache   *blockCache
	allocs  []allocRange
	lastEnd int64 // end of the previous read, for read-ahead detection
}

type allocRange struct{ off, size int64 }

// NewNVMeoFInitiator attaches an initiator on a node.
func NewNVMeoFInitiator(k *sim.Kernel, net *fabric.Net, node int, target *NVMeoFTarget, withCache bool) *NVMeoFInitiator {
	ini := &NVMeoFInitiator{
		peer:   NewPeer(k, net, fmt.Sprintf("nvmeof-ini.n%d", node), fabric.Location{Node: node, Domain: fabric.Host}),
		target: target.Endpoint(),
	}
	if withCache {
		ini.cache = newBlockCache(64 << 20)
	}
	return ini
}

// Alloc reserves a device range (the baseline's volume management).
func (ini *NVMeoFInitiator) Alloc(t *sim.Task, size int64) (int64, error) {
	t.Sleep(nvmeofPerOp)
	r, err := ini.peer.Call(t, ini.target, nvmeofAlloc, header([]uint64{uint64(size)}, nil), false)
	if err != nil {
		return 0, err
	}
	if getU64(r.Data, 0) != 0 {
		return 0, fmt.Errorf("nvmeof: alloc failed")
	}
	off := int64(getU64(r.Data, 8))
	ini.allocs = append(ini.allocs, allocRange{off: off, size: size})
	return off, nil
}

// DropCaches empties the block cache (benchmark hygiene, like
// /proc/sys/vm/drop_caches between seeding and measurement).
func (ini *NVMeoFInitiator) DropCaches() {
	if ini.cache != nil {
		ini.cache = newBlockCache(ini.cache.max)
	}
}

// SetCacheSize resizes (and empties) the block cache; 0 disables it.
func (ini *NVMeoFInitiator) SetCacheSize(bytes int64) {
	if bytes <= 0 {
		ini.cache = nil
		return
	}
	ini.cache = newBlockCache(bytes)
}

// clampFetch bounds read-ahead to the allocation containing off so the
// initiator never fetches unrelated device space.
func (ini *NVMeoFInitiator) clampFetch(off int64, want int) int {
	for _, a := range ini.allocs {
		if off >= a.off && off < a.off+a.size {
			if max := int(a.off + a.size - off); want > max {
				return max
			}
			return want
		}
	}
	return want
}

// Read fills buf from the remote device at off.
func (ini *NVMeoFInitiator) Read(t *sim.Task, off int64, buf []byte) error {
	t.Sleep(nvmeofPerOp)
	if ini.cache != nil && ini.cache.read(off, buf) {
		ini.lastEnd = off + int64(len(buf))
		return nil
	}
	// Read-ahead: like the Linux page cache, prefetch when the access
	// continues a sequential stream — asynchronously, so the stream's
	// next reads hit the cache without paying the prefetch latency.
	// Random reads fetch exactly what was asked.
	sequential := ini.cache != nil && off == ini.lastEnd
	ini.lastEnd = off + int64(len(buf))
	r, err := ini.peer.Call(t, ini.target, nvmeofRead,
		header([]uint64{uint64(off), uint64(len(buf))}, nil), false)
	if err != nil {
		return err
	}
	if getU64(r.Data, 0) != 0 {
		return fmt.Errorf("nvmeof: read failed")
	}
	got := r.Data[8:]
	copy(buf, got)
	if ini.cache != nil {
		ini.cache.fill(off, got)
	}
	if sequential {
		raOff := off + int64(len(buf))
		raLen := ini.clampFetch(raOff, readAhead)
		if raLen > 0 && !ini.cache.read(raOff, make([]byte, min(raLen, cachePage))) {
			f := ini.peer.CallAsync(ini.target, nvmeofRead,
				header([]uint64{uint64(raOff), uint64(raLen)}, nil), false)
			ini.prefetch(raOff, f)
		}
	}
	return nil
}

// prefetch installs an asynchronous read-ahead reply into the cache.
func (ini *NVMeoFInitiator) prefetch(off int64, f *sim.Future[*wire.Raw]) {
	ini.peer.net.Kernel().Spawn("nvmeof-readahead", func(t *sim.Task) {
		r, err := f.Wait(t)
		if err != nil || getU64(r.Data, 0) != 0 || ini.cache == nil {
			return
		}
		ini.cache.fill(off, r.Data[8:])
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Write stores buf at off. With the block cache, the write is absorbed
// locally and written back asynchronously.
func (ini *NVMeoFInitiator) Write(t *sim.Task, off int64, buf []byte) error {
	t.Sleep(nvmeofPerOp)
	if ini.cache != nil {
		ini.cache.fill(off, buf)
		// Write-back: the transfer happens off the latency path.
		data := header([]uint64{uint64(off)}, buf)
		ini.peer.CallAsync(ini.target, nvmeofWrite, data, true)
		return nil
	}
	r, err := ini.peer.Call(t, ini.target, nvmeofWrite, header([]uint64{uint64(off)}, buf), true)
	if err != nil {
		return err
	}
	if getU64(r.Data, 0) != 0 {
		return fmt.Errorf("nvmeof: write failed")
	}
	return nil
}

const readAhead = 256 << 10

// blockCache is a byte-granular FIFO cache standing in for the Linux
// page cache. Eviction is oldest-insertion-first: picking a victim by
// ranging over the page map would make the whole simulation depend on
// Go's randomized map iteration order — the one source of
// run-to-run nondeterminism the testbed layer's determinism contract
// forbids (it showed up as a flapping Figure 11 Disagg cell).
type blockCache struct {
	max   int64
	used  int64
	pages map[int64][]byte // 4 KiB pages
	fifo  []int64          // page insertion order (deterministic eviction)
}

func newBlockCache(max int64) *blockCache {
	return &blockCache{max: max, pages: make(map[int64][]byte)}
}

const cachePage = 4096

// read fills buf if the whole range is resident.
func (c *blockCache) read(off int64, buf []byte) bool {
	// First check residency.
	for p := off / cachePage; p <= (off+int64(len(buf))-1)/cachePage; p++ {
		if _, ok := c.pages[p]; !ok {
			return false
		}
	}
	for n := 0; n < len(buf); {
		p := (off + int64(n)) / cachePage
		po := int((off + int64(n)) % cachePage)
		cn := cachePage - po
		if cn > len(buf)-n {
			cn = len(buf) - n
		}
		copy(buf[n:n+cn], c.pages[p][po:po+cn])
		n += cn
	}
	return true
}

// fill installs data into the cache, evicting oldest-first at
// capacity.
func (c *blockCache) fill(off int64, data []byte) {
	for n := 0; n < len(data); {
		p := (off + int64(n)) / cachePage
		po := int((off + int64(n)) % cachePage)
		cn := cachePage - po
		if cn > len(data)-n {
			cn = len(data) - n
		}
		pg, ok := c.pages[p]
		if !ok {
			if c.used+cachePage > c.max && len(c.fifo) > 0 {
				victim := c.fifo[0]
				c.fifo = c.fifo[1:]
				delete(c.pages, victim)
				c.used -= cachePage
			}
			pg = make([]byte, cachePage)
			c.pages[p] = pg
			c.fifo = append(c.fifo, p)
			c.used += cachePage
		}
		copy(pg[po:po+cn], data[n:n+cn])
		n += cn
	}
}

// --- fs.Backend implementation: the Disaggregated Baseline of §6.4 ---

// NVMeoFBackend plugs the NVMe-oF initiator underneath the FractOS FS
// service ("the same FractOS FS service with a remote NVMe-oF
// device").
type NVMeoFBackend struct {
	ini *NVMeoFInitiator
}

// NewNVMeoFBackend wraps an initiator as an fs.Backend.
func NewNVMeoFBackend(ini *NVMeoFInitiator) *NVMeoFBackend {
	return &NVMeoFBackend{ini: ini}
}

// Initiator exposes the backend's initiator (cache control in
// benchmarks).
func (b *NVMeoFBackend) Initiator() *NVMeoFInitiator { return b.ini }

// CreateVolume allocates a device range.
func (b *NVMeoFBackend) CreateVolume(t *sim.Task, size uint64) (fs.Volume, error) {
	off, err := b.ini.Alloc(t, int64(size))
	if err != nil {
		return nil, err
	}
	return &nvmeofVolume{ini: b.ini, off: off, size: int64(size)}, nil
}

type nvmeofVolume struct {
	ini  *NVMeoFInitiator
	off  int64
	size int64
}

func (v *nvmeofVolume) ReadAt(t *sim.Task, off, n uint64, stage fs.Stage) uint64 {
	if int64(off+n) > v.size {
		return 2 // fs.StatusBounds
	}
	if err := v.ini.Read(t, v.off+int64(off), stage.Buf[:n]); err != nil {
		return 3 // fs.StatusIOErr
	}
	return 0
}

func (v *nvmeofVolume) WriteAt(t *sim.Task, off, n uint64, stage fs.Stage) uint64 {
	if int64(off+n) > v.size {
		return 2
	}
	if err := v.ini.Write(t, v.off+int64(off), stage.Buf[:n]); err != nil {
		return 3
	}
	return 0
}

var _ fs.Backend = (*NVMeoFBackend)(nil)

// NewDisaggregatedBackend assembles the Disaggregated Baseline in one
// call: NVMe-oF target on storageNode, initiator (with block cache) on
// the FS node.
func NewDisaggregatedBackend(cl *core.Cluster, fsNode, storageNode int, dev *nvme.Device) *NVMeoFBackend {
	tg := NewNVMeoFTarget(cl.K, cl.Net, storageNode, dev)
	ini := NewNVMeoFInitiator(cl.K, cl.Net, fsNode, tg, true)
	return NewNVMeoFBackend(ini)
}

// Package baseline implements the existing disaggregation technologies
// the paper compares against (§6): NVMe-over-Fabrics block remoting,
// an NFS-like file server, and rCUDA-style GPU driver-call remoting.
//
// The baselines share the simulated fabric with FractOS but speak
// their own raw protocols with centralized application control: all
// data funnels through the node issuing the calls (the star topology
// of Figure 2), which is exactly the structure whose cost FractOS
// eliminates.
package baseline

import (
	"encoding/binary"
	"errors"

	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// ErrPeer is returned when a baseline RPC fails.
var ErrPeer = errors.New("baseline: peer call failed")

// replyBit marks a Raw message as a response.
const replyBit = 1 << 31

// Request is an incoming baseline RPC at a server.
type Request struct {
	From  fabric.EndpointID
	Kind  uint32
	Token uint64
	Data  []byte
}

// Peer is a fabric endpoint speaking the baseline Raw protocol:
// token-matched request/response plus a server queue.
type Peer struct {
	net       *fabric.Net
	EP        *fabric.Endpoint
	nextToken uint64
	pending   map[uint64]*sim.Future[*wire.Raw]
	incoming  *sim.Chan[Request]
	// SendFailed counts replies whose requester vanished before the
	// response went out (observed, not silent — the baseline's
	// connection-oriented transports surface this at the sender too).
	SendFailed int
}

// NewPeer attaches a baseline endpoint and starts its receive loop.
func NewPeer(k *sim.Kernel, net *fabric.Net, name string, loc fabric.Location) *Peer {
	p := &Peer{
		net:      net,
		EP:       net.Attach(name, loc, 0),
		pending:  make(map[uint64]*sim.Future[*wire.Raw]),
		incoming: sim.NewChan[Request](k, name+".req", 0),
	}
	k.Spawn(name+".rx", p.rxLoop)
	return p
}

func (p *Peer) rxLoop(t *sim.Task) {
	for {
		d, ok := p.EP.Inbox.Recv(t)
		if !ok {
			return
		}
		raw, ok := d.Msg.(*wire.Raw)
		if !ok {
			continue
		}
		if raw.Kind&replyBit != 0 {
			if f, ok := p.pending[raw.Token]; ok {
				delete(p.pending, raw.Token)
				f.Set(raw)
			}
			continue
		}
		p.incoming.Send(t, Request{From: d.From, Kind: raw.Kind, Token: raw.Token, Data: raw.Data})
	}
}

// Call performs a synchronous RPC to dst.
func (p *Peer) Call(t *sim.Task, dst fabric.EndpointID, kind uint32, data []byte, isData bool) (*wire.Raw, error) {
	raw, err := p.CallAsync(dst, kind, data, isData).Wait(t)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// CallAsync starts an RPC and returns the future of its response.
func (p *Peer) CallAsync(dst fabric.EndpointID, kind uint32, data []byte, isData bool) *sim.Future[*wire.Raw] {
	f := sim.NewFuture[*wire.Raw](p.net.Kernel())
	p.nextToken++
	token := p.nextToken
	p.pending[token] = f
	if !p.net.Send(p.EP.ID, dst, &wire.Raw{Kind: kind, Token: token, IsData: isData, Data: data}) {
		delete(p.pending, token)
		f.Fail(ErrPeer)
	}
	return f
}

// Serve blocks until the next incoming request.
func (p *Peer) Serve(t *sim.Task) (Request, bool) {
	return p.incoming.Recv(t)
}

// Reply answers a request. A reply to a requester that has already
// torn down its endpoint is counted, not silently dropped.
func (p *Peer) Reply(t *sim.Task, req Request, data []byte, isData bool) {
	if !p.net.Send(p.EP.ID, req.From, &wire.Raw{
		Kind: req.Kind | replyBit, Token: req.Token, IsData: isData, Data: data,
	}) {
		p.SendFailed++
	}
}

// u64 little-endian helpers for baseline payload headers.
func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
func getU64(b []byte, off int) uint64 {
	if off+8 > len(b) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[off:])
}

// header builds an n-word uint64 header followed by payload.
func header(words []uint64, payload []byte) []byte {
	b := make([]byte, 8*len(words)+len(payload))
	for i, w := range words {
		putU64(b, 8*i, w)
	}
	copy(b[8*len(words):], payload)
	return b
}

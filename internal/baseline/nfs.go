package baseline

import (
	"fmt"

	"fractos/internal/fabric"
	"fractos/internal/sim"
)

// NFS protocol kinds.
const (
	nfsOpen uint32 = 0x300 + iota
	nfsRead
	nfsWrite
	nfsCreate
)

// nfsPerOp is the server-side VFS+NFS processing per operation; the
// client stub adds a smaller cost. NFS is heavier than NVMe-oF: it
// runs a full file-system stack per request.
const (
	nfsServerPerOp = 15 * sim.Time(1000)
	nfsClientPerOp = 5 * sim.Time(1000)
)

// NFSServer is the baseline file server: an ext4-like file service
// whose backing store is an NVMe-oF initiator (the paper's baseline
// topology: frontend → NFS → NVMe-oF → SSD, three data transfers end
// to end).
type NFSServer struct {
	peer *Peer
	ini  *NVMeoFInitiator

	files  map[string]*nfsFile
	nextFD uint64
	byFD   map[uint64]*nfsFile
}

type nfsFile struct {
	name string
	off  int64 // device offset
	size int64
}

// NewNFSServer attaches the file server on a node, backed by an
// NVMe-oF initiator on the same node.
func NewNFSServer(k *sim.Kernel, net *fabric.Net, node int, ini *NVMeoFInitiator) *NFSServer {
	s := &NFSServer{
		peer:  NewPeer(k, net, fmt.Sprintf("nfs-server.n%d", node), fabric.Location{Node: node, Domain: fabric.Host}),
		ini:   ini,
		files: make(map[string]*nfsFile),
		byFD:  make(map[uint64]*nfsFile),
	}
	k.Spawn("nfs-server", s.serve)
	return s
}

// Endpoint returns the server's fabric address.
func (s *NFSServer) Endpoint() fabric.EndpointID { return s.peer.EP.ID }

func (s *NFSServer) serve(t *sim.Task) {
	for {
		req, ok := s.peer.Serve(t)
		if !ok {
			return
		}
		t.Sleep(nfsServerPerOp)
		switch req.Kind {
		case nfsCreate:
			nameLen := int(getU64(req.Data, 0))
			size := int64(getU64(req.Data, 8))
			name := string(req.Data[16 : 16+nameLen])
			if _, dup := s.files[name]; dup {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			off, err := s.ini.Alloc(t, size)
			if err != nil {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			s.files[name] = &nfsFile{name: name, off: off, size: size}
			s.peer.Reply(t, req, header([]uint64{0}, nil), false)
		case nfsOpen:
			nameLen := int(getU64(req.Data, 0))
			name := string(req.Data[8 : 8+nameLen])
			f, ok := s.files[name]
			if !ok {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			s.nextFD++
			s.byFD[s.nextFD] = f
			s.peer.Reply(t, req, header([]uint64{0, s.nextFD, uint64(f.size)}, nil), false)
		case nfsRead:
			fd, off, n := getU64(req.Data, 0), int64(getU64(req.Data, 8)), int(getU64(req.Data, 16))
			f, ok := s.byFD[fd]
			if !ok || off+int64(n) > f.size {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			buf := make([]byte, n)
			if err := s.ini.Read(t, f.off+off, buf); err != nil {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			s.peer.Reply(t, req, header([]uint64{0}, buf), true)
		case nfsWrite:
			fd, off := getU64(req.Data, 0), int64(getU64(req.Data, 8))
			data := req.Data[16:]
			f, ok := s.byFD[fd]
			if !ok || off+int64(len(data)) > f.size {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			if err := s.ini.Write(t, f.off+off, data); err != nil {
				s.peer.Reply(t, req, header([]uint64{1}, nil), false)
				continue
			}
			s.peer.Reply(t, req, header([]uint64{0}, nil), false)
		}
	}
}

// NFSClient is the frontend-side stub.
type NFSClient struct {
	peer   *Peer
	server fabric.EndpointID
}

// NewNFSClient attaches a client on the frontend node.
func NewNFSClient(k *sim.Kernel, net *fabric.Net, node int, server *NFSServer) *NFSClient {
	return &NFSClient{
		peer:   NewPeer(k, net, fmt.Sprintf("nfs-client.n%d", node), fabric.Location{Node: node, Domain: fabric.Host}),
		server: server.Endpoint(),
	}
}

func (c *NFSClient) call(t *sim.Task, kind uint32, data []byte, isData bool) ([]byte, error) {
	t.Sleep(nfsClientPerOp)
	r, err := c.peer.Call(t, c.server, kind, data, isData)
	if err != nil {
		return nil, err
	}
	if getU64(r.Data, 0) != 0 {
		return nil, fmt.Errorf("nfs: call %x failed", kind)
	}
	return r.Data, nil
}

// Create makes a file of the given size.
func (c *NFSClient) Create(t *sim.Task, name string, size int64) error {
	_, err := c.call(t, nfsCreate, header([]uint64{uint64(len(name)), uint64(size)}, []byte(name)), false)
	return err
}

// Open returns a file descriptor and the file size.
func (c *NFSClient) Open(t *sim.Task, name string) (fd uint64, size int64, err error) {
	r, err := c.call(t, nfsOpen, header([]uint64{uint64(len(name))}, []byte(name)), false)
	if err != nil {
		return 0, 0, err
	}
	return getU64(r, 8), int64(getU64(r, 16)), nil
}

// Read returns n bytes at off.
func (c *NFSClient) Read(t *sim.Task, fd uint64, off int64, n int) ([]byte, error) {
	r, err := c.call(t, nfsRead, header([]uint64{fd, uint64(off), uint64(n)}, nil), false)
	if err != nil {
		return nil, err
	}
	return r[8:], nil
}

// Write stores data at off.
func (c *NFSClient) Write(t *sim.Task, fd uint64, off int64, data []byte) error {
	_, err := c.call(t, nfsWrite, header([]uint64{fd, uint64(off)}, data), true)
	return err
}

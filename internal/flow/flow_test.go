package flow

import (
	"testing"
	"time"

	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

func us(f float64) sim.Time { return sim.Time(f * float64(time.Microsecond)) }

func run(t *testing.T, nodes int, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	cl := core.NewCluster(core.ClusterConfig{Nodes: nodes})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) { fn(tk, cl); done = true })
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("test did not complete (deadlock?)")
	}
}

// worker deploys a service that sleeps `work`, appends its mark to the
// immediates, and invokes the continuation in slot 0.
func worker(t *testing.T, cl *core.Cluster, node int, name string, mark byte, work sim.Time) *proc.Process {
	t.Helper()
	p := proc.Attach(cl, node, name, 0)
	cl.K.Spawn(name+".loop", func(st *sim.Task) {
		for {
			d, ok := p.Receive(st)
			if !ok {
				return
			}
			st.Sleep(work)
			cont, haveCont := d.Cap(0)
			if haveCont {
				out := append(append([]byte(nil), d.Imms...), mark)
				if err := p.Invoke(st, cont, []wire.ImmArg{proc.BytesArg(0, out)}, nil); err != nil {
					// A worker killed mid-request cannot reply; that is
					// the failure-injection tests' expected outcome.
					t.Logf("%s: reply failed: %v", name, err)
				}
			}
			d.Done()
		}
	})
	return p
}

// grantReq creates a tag-1 Request at the worker and grants it to the
// client.
func grantReq(tk *sim.Task, t *testing.T, w *proc.Process, client *proc.Process) proc.Cap {
	t.Helper()
	req, err := w.RequestCreate(tk, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := proc.GrantCap(w, req, client)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainRunsStagesInOrder(t *testing.T) {
	run(t, 4, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "client", 0)
		var steps []Step
		for i := 0; i < 3; i++ {
			w := worker(t, cl, i+1, string(rune('a'+i)), byte('1'+i), us(10))
			steps = append(steps, Step{Req: grantReq(tk, t, w, client), ContSlot: 0})
		}
		entry, done, err := Chain(tk, client, steps)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Invoke(tk, entry, []wire.ImmArg{proc.BytesArg(0, []byte("x"))}, nil); err != nil {
			t.Fatal(err)
		}
		d, err := done.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		d.Done()
		if string(d.Imms) != "x123" {
			t.Fatalf("chain result = %q, want x123", d.Imms)
		}
	})
}

func TestChainEmpty(t *testing.T) {
	run(t, 1, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "client", 0)
		if _, _, err := Chain(tk, client, nil); err == nil {
			t.Fatal("empty chain accepted")
		}
	})
}

func TestScatterJoinsAllBranches(t *testing.T) {
	run(t, 4, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "client", 0)
		var branches []Branch
		for i := 0; i < 3; i++ {
			w := worker(t, cl, i+1, string(rune('p'+i)), byte('A'+i), us(20*float64(i+1)))
			branches = append(branches, Branch{Req: grantReq(tk, t, w, client), ContSlot: 0})
		}
		join, err := Scatter(tk, client, branches)
		if err != nil {
			t.Fatal(err)
		}
		all, err := join.Done.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 3 {
			t.Fatalf("joined %d branches, want 3", len(all))
		}
		got := map[string]bool{}
		for _, d := range all {
			got[string(d.Imms)] = true
		}
		for _, want := range []string{"A", "B", "C"} {
			if !got[want] {
				t.Errorf("branch %q missing from join (got %v)", want, got)
			}
		}
	})
}

// TestScatterRunsConcurrently: three 100µs branches join in ~one
// branch time, not three.
func TestScatterRunsConcurrently(t *testing.T) {
	run(t, 4, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "client", 0)
		var branches []Branch
		for i := 0; i < 3; i++ {
			w := worker(t, cl, i+1, "w", 'x', us(100))
			branches = append(branches, Branch{Req: grantReq(tk, t, w, client), ContSlot: 0})
		}
		start := tk.Now()
		join, err := Scatter(tk, client, branches)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := join.Done.Wait(tk); err != nil {
			t.Fatal(err)
		}
		elapsed := tk.Now() - start
		if elapsed > us(200) {
			t.Errorf("3×100µs branches took %v; fork/join must overlap them", elapsed)
		}
	})
}

func TestJoinValidation(t *testing.T) {
	run(t, 1, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "client", 0)
		if _, err := Join(tk, client, 0); err == nil {
			t.Fatal("zero-branch join accepted")
		}
	})
}

// TestForkJoinIntoChain composes the patterns: scatter across two
// workers, then push the joined results through a chain stage — a
// small dataflow DAG executing across four nodes.
func TestForkJoinIntoChain(t *testing.T) {
	run(t, 4, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "client", 0)
		w1 := worker(t, cl, 1, "w1", 'a', us(10))
		w2 := worker(t, cl, 2, "w2", 'b', us(10))
		w3 := worker(t, cl, 3, "w3", 'Z', us(10))

		join, err := Scatter(tk, client, []Branch{
			{Req: grantReq(tk, t, w1, client), ContSlot: 0},
			{Req: grantReq(tk, t, w2, client), ContSlot: 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		all, err := join.Done.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		var merged []byte
		for _, d := range all {
			merged = append(merged, d.Imms...)
		}
		entry, done, err := Chain(tk, client, []Step{{Req: grantReq(tk, t, w3, client), ContSlot: 0}})
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Invoke(tk, entry, []wire.ImmArg{proc.BytesArg(0, merged)}, nil); err != nil {
			t.Fatal(err)
		}
		d, err := done.Wait(tk)
		if err != nil {
			t.Fatal(err)
		}
		d.Done()
		if len(d.Imms) != 3 || d.Imms[2] != 'Z' {
			t.Fatalf("dag result = %q", d.Imms)
		}
	})
}

// TestScatterWithDeadBranch: if a branch's provider dies, the join
// never completes — the caller bounds the wait with WaitTimeout and
// recovers instead of hanging.
func TestScatterWithDeadBranch(t *testing.T) {
	run(t, 4, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "client", 0)
		w1 := worker(t, cl, 1, "w1", 'a', us(10))
		w2 := worker(t, cl, 2, "w2", 'b', us(10))
		b1 := Branch{Req: grantReq(tk, t, w1, client), ContSlot: 0}
		b2 := Branch{Req: grantReq(tk, t, w2, client), ContSlot: 0}

		// Kill w2 before the scatter: its invocation fails outright.
		cl.CtrlFor(2).FailProcess(w2.ID())
		tk.Sleep(us(300))
		if _, err := Scatter(tk, client, []Branch{b1, b2}); err == nil {
			t.Fatal("scatter with a dead branch's revoked Request succeeded")
		}

		// Kill mid-flight: the invocation is accepted but the branch
		// never answers; the join times out.
		w3 := worker(t, cl, 2, "w3", 'c', us(10))
		b3 := Branch{Req: grantReq(tk, t, w3, client), ContSlot: 0}
		join, err := Scatter(tk, client, []Branch{b1, b3})
		if err != nil {
			t.Fatal(err)
		}
		cl.CtrlFor(2).FailProcess(w3.ID())
		if _, err := join.Done.WaitTimeout(tk, us(5000)); err != sim.ErrTimeout {
			t.Fatalf("join over dead branch: err = %v, want timeout", err)
		}
	})
}

// Package flow builds distributed execution patterns on top of
// libfractos Requests. §3.4 observes that Requests are "a generic
// mechanism for distributed execution that can express a variety of
// distributed execution models, such as RPCs, distributed pipelines,
// or distributed fork/join and data-flow patterns"; this package
// packages those shapes:
//
//   - Chain: the pipeline pattern — refine each stage's Request with
//     the next one as continuation and fire once (Figure 2's ring).
//   - Join: the fork/join pattern — a Request that collects n
//     invocations (one per forked branch) and resolves when all have
//     arrived.
//   - Scatter: fan a set of invocations out and join their
//     completions.
//
// Everything here is untrusted client-side convenience: the OS
// mechanisms underneath are exactly the Table 1 syscalls.
package flow

import (
	"fmt"

	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Step is one stage of a Chain: the stage's Request plus the argument
// slot its interface uses for the continuation, and optional preset
// refinements.
type Step struct {
	Req      proc.Cap
	ContSlot uint16
	Imms     []wire.ImmArg
	Args     []proc.Arg
}

// Chain builds the continuation graph for a pipeline tail-first and
// returns the entry Request and the future of the final delivery (the
// last stage invokes back into p). Invoke the entry Request to fire
// the pipeline; each intermediate Request is a derived object owned by
// its stage's Controller.
func Chain(t *sim.Task, p *proc.Process, steps []Step) (proc.Cap, *sim.Future[*proc.Delivery], error) {
	if len(steps) == 0 {
		return proc.Cap{}, nil, fmt.Errorf("flow: empty chain")
	}
	reply, tag, err := p.ReplyRequest(t)
	if err != nil {
		return proc.Cap{}, nil, err
	}
	next := reply
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		args := append(append([]proc.Arg(nil), s.Args...), proc.Arg{Slot: s.ContSlot, Cap: next})
		next, err = p.Derive(t, s.Req, s.Imms, args)
		if err != nil {
			return proc.Cap{}, nil, fmt.Errorf("flow: derive stage %d: %w", i, err)
		}
	}
	return next, p.WaitTag(tag), nil
}

// JoinHandle is an in-progress fork/join: a Request capability to hand
// to the branches, and the future of all collected deliveries.
type JoinHandle struct {
	// Req is the join Request; every branch invokes it on completion.
	Req proc.Cap
	// Done resolves with the n deliveries, in arrival order.
	Done *sim.Future[[]*proc.Delivery]
}

// Join creates a Request that expects n invocations — the join point
// of a fork/join graph. The deliveries are acknowledged automatically.
func Join(t *sim.Task, p *proc.Process, n int) (*JoinHandle, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flow: join of %d branches", n)
	}
	tag := p.NewTag()
	req, err := p.RequestCreate(t, tag, nil, nil)
	if err != nil {
		return nil, err
	}
	ch := p.Subscribe(tag)
	done := sim.NewFuture[[]*proc.Delivery](p.Kernel())
	p.Kernel().Spawn("flow-join", func(jt *sim.Task) {
		var all []*proc.Delivery
		for len(all) < n {
			d, ok := ch.Recv(jt)
			if !ok {
				done.Fail(fmt.Errorf("flow: join channel closed"))
				return
			}
			d.Done()
			all = append(all, d)
		}
		p.Unsubscribe(tag)
		done.Set(all)
	})
	return &JoinHandle{Req: req, Done: done}, nil
}

// Branch is one fork of a Scatter: the Request to invoke and the
// argument slot its interface uses for the completion continuation.
type Branch struct {
	Req      proc.Cap
	ContSlot uint16
	Imms     []wire.ImmArg
	Args     []proc.Arg
}

// Scatter invokes every branch with the same join Request as
// completion continuation and returns the join. The branches execute
// concurrently wherever their providers live; the caller blocks only
// when it waits on the returned future.
func Scatter(t *sim.Task, p *proc.Process, branches []Branch) (*JoinHandle, error) {
	join, err := Join(t, p, len(branches))
	if err != nil {
		return nil, err
	}
	for i, b := range branches {
		args := append(append([]proc.Arg(nil), b.Args...), proc.Arg{Slot: b.ContSlot, Cap: join.Req})
		if err := p.Invoke(t, b.Req, b.Imms, args); err != nil {
			return nil, fmt.Errorf("flow: scatter branch %d: %w", i, err)
		}
	}
	return join, nil
}

// Package perf is the wall-clock benchmark harness for the
// reproduction itself. The paper-facing benchmarks (bench_test.go)
// report *virtual-time* results — what the simulated hardware did.
// This package instead measures how fast the simulator executes on the
// host: events/sec through the kernel, ns and allocs per codec round
// trip, and end-to-end wall time for the evaluation workloads. Those
// numbers gate the "as fast as the hardware allows" goal in ROADMAP.md
// and are tracked across PRs in BENCH_PR*.json files emitted by
// `fractos-bench -json` (see docs/PERFORMANCE.md).
//
// All timing goes through testing.Benchmark, so this package never
// touches the wall clock directly and stays clean under the simdet
// analyzer; event counts come from sim.TotalEvents.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"fractos/internal/exp"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Kernel-driven cases also report simulation throughput.
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	NsPerEvent   float64 `json:"ns_per_event,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Report is the JSON document emitted by `fractos-bench -json`.
type Report struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
	// Experiments carries headline metrics from deterministic
	// virtual-time experiments tracked across PRs (e.g. the chaos-fv
	// availability numbers), keyed "<experiment>.<metric>". Unlike
	// Results these are exactly reproducible, so any drift is a real
	// behavior change.
	Experiments map[string]float64 `json:"experiments,omitempty"`
}

// Case is a runnable benchmark: Fn must loop b.N times.
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// Cases lists every benchmark in the suite, hot-path first.
func Cases() []Case {
	cs := []Case{
		{"kernel/dispatch", benchKernelDispatch},
		{"kernel/timers", benchKernelTimers},
		{"kernel/pingpong", benchKernelPingpong},
		{"kernel/spawn", benchKernelSpawn},
		{"wire/invoke", benchWireInvoke},
		{"wire/memcopy", benchWireMemCopy},
		{"wire/completion", benchWireCompletion},
		{"fabric/invoke-path", benchFabricInvoke},
		{"fabric/memcopy-path", benchFabricMemCopy},
		{"exp/figure8", benchFigure8},
		{"exp/faceverify", benchFaceVerify},
	}
	cs = append(cs, scaleCases()...)
	return append(cs, capScaleCases()...)
}

// Find returns the case with the given name.
func Find(name string) (Case, bool) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// Run executes one case and converts the measurement.
func Run(c Case) Result {
	var evPerOp float64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		e0 := sim.TotalEvents()
		c.Fn(b)
		// The final (largest) b.N run overwrites earlier estimates.
		evPerOp = float64(sim.TotalEvents()-e0) / float64(b.N)
	})
	res := Result{
		Name:        c.Name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
	if evPerOp >= 1 {
		res.EventsPerOp = evPerOp
		res.NsPerEvent = res.NsPerOp / evPerOp
		if res.NsPerEvent > 0 {
			res.EventsPerSec = 1e9 / res.NsPerEvent
		}
	}
	return res
}

// RunAll executes every case (or only the named ones) and returns the
// results in suite order.
func RunAll(only ...string) ([]Result, error) {
	var cases []Case
	if len(only) == 0 {
		cases = Cases()
	} else {
		for _, name := range only {
			c, ok := Find(name)
			if !ok {
				return nil, fmt.Errorf("perf: unknown benchmark %q", name)
			}
			cases = append(cases, c)
		}
	}
	results := make([]Result, 0, len(cases))
	for _, c := range cases {
		results = append(results, Run(c))
	}
	return results, nil
}

// WriteJSON renders a Report around the results. experiments may be
// nil; see Report.Experiments.
func WriteJSON(w io.Writer, results []Result, experiments map[string]float64) error {
	rep := Report{
		Schema:    "fractos-bench/1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   results,

		Experiments: experiments,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteText renders results as an aligned text table.
func WriteText(w io.Writer, results []Result) {
	fmt.Fprintf(w, "%-20s %12s %10s %10s %14s %12s\n",
		"benchmark", "ns/op", "allocs/op", "B/op", "events/sec", "ns/event")
	for _, r := range results {
		ev, nsev := "-", "-"
		if r.EventsPerSec > 0 {
			ev = fmt.Sprintf("%.0f", r.EventsPerSec)
			nsev = fmt.Sprintf("%.1f", r.NsPerEvent)
		}
		fmt.Fprintf(w, "%-20s %12.1f %10.1f %10.1f %14s %12s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, ev, nsev)
	}
}

// ---- kernel cases ----

// benchKernelDispatch measures the bare event-dispatch loop: a chain
// of same-instant After(0) closures, no task goroutines involved.
// This is the purest view of scheduler overhead per event.
func benchKernelDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.New(1)
		n := 0
		var step func()
		step = func() {
			n++
			if n < 10000 {
				k.After(0, step)
			}
		}
		k.After(0, step)
		k.Run()
	}
}

// benchKernelTimers measures the heap path: 64 tasks sleeping with
// mixed durations, ~6.4k timer events per op plus the park/resume
// handoff for each.
func benchKernelTimers(b *testing.B) {
	// One capture-free body shared by all tasks (the per-task period is
	// derived from the spawn-ordered id), so the benchmark measures the
	// kernel's allocations, not 64 closure captures per iteration.
	body := func(t *sim.Task) {
		d := sim.Time(int(t.ID()-1)%9+1) * 100
		for s := 0; s < 100; s++ {
			t.Sleep(d)
		}
	}
	for i := 0; i < b.N; i++ {
		k := sim.New(7)
		for j := 0; j < 64; j++ {
			k.Spawn("timer", body)
		}
		k.Run()
		k.Shutdown()
	}
}

// benchKernelPingpong measures the task-handoff path: two tasks
// bouncing 5k messages over channels.
func benchKernelPingpong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.New(3)
		ping := sim.NewChan[int](k, "ping", 0)
		pong := sim.NewChan[int](k, "pong", 0)
		k.Spawn("echo", func(t *sim.Task) {
			for {
				v, ok := ping.Recv(t)
				if !ok {
					return
				}
				pong.Send(t, v)
			}
		})
		k.Spawn("driver", func(t *sim.Task) {
			for j := 0; j < 5000; j++ {
				ping.Send(t, j)
				pong.Recv(t)
			}
			ping.Close()
		})
		k.Run()
		k.Shutdown()
	}
}

// benchKernelSpawn measures task creation/teardown churn.
func benchKernelSpawn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.New(5)
		for j := 0; j < 1000; j++ {
			k.Spawn("w", func(t *sim.Task) { t.Yield() })
		}
		k.Run()
		k.Shutdown()
	}
}

// ---- wire cases ----

// invokeMsg mirrors a typical request_invoke: a small immediate
// payload plus two capability arguments.
func invokeMsg() *wire.ReqInvoke {
	return &wire.ReqInvoke{
		Token: 42,
		Cid:   7,
		Imms:  []wire.ImmArg{{Offset: 0, Data: make([]byte, 64)}},
		Caps:  []wire.CapSlot{{Slot: 0, Cid: 9}, {Slot: 1, Cid: 11}},
	}
}

func benchWireRoundTrip(b *testing.B, m wire.Message) {
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = wire.AppendMarshal(buf[:0], m)
		out, err := wire.Unmarshal(buf)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func benchWireInvoke(b *testing.B) { benchWireRoundTrip(b, invokeMsg()) }

func benchWireMemCopy(b *testing.B) {
	benchWireRoundTrip(b, &wire.MemCopy{Token: 9, SrcCid: 3, DstCid: 4})
}

func benchWireCompletion(b *testing.B) {
	benchWireRoundTrip(b, &wire.Completion{Token: 17, Status: 0, Cid: 5, Aux: 4096})
}

// ---- fabric cases ----

// benchFabricInvoke measures the full message path — marshal, link
// accounting, delivery scheduling, decode, inbox — for a stream of
// request_invoke messages between two nodes.
func benchFabricInvoke(b *testing.B) {
	const msgs = 1000
	for i := 0; i < b.N; i++ {
		k := sim.New(11)
		net := fabric.New(k, fabric.DefaultProfile())
		src := net.Attach("src", fabric.Location{Node: 0}, 0)
		dst := net.Attach("dst", fabric.Location{Node: 1}, 0)
		k.Spawn("rx", func(t *sim.Task) {
			for j := 0; j < msgs; j++ {
				if _, ok := dst.Inbox.Recv(t); !ok {
					return
				}
			}
		})
		k.Spawn("tx", func(t *sim.Task) {
			m := invokeMsg()
			for j := 0; j < msgs; j++ {
				m.Token = uint64(j)
				if !net.Send(src.ID, dst.ID, m) {
					return
				}
				t.Sleep(1000)
			}
		})
		k.Run()
		k.Shutdown()
	}
}

// benchFabricMemCopy measures the memory_copy data path: a control
// message plus a 4 KiB RDMA transfer per op.
func benchFabricMemCopy(b *testing.B) {
	const copies = 1000
	for i := 0; i < b.N; i++ {
		k := sim.New(13)
		net := fabric.New(k, fabric.DefaultProfile())
		src := net.Attach("src", fabric.Location{Node: 0}, 1<<16)
		dst := net.Attach("dst", fabric.Location{Node: 1}, 1<<16)
		k.Spawn("drain", func(t *sim.Task) {
			for j := 0; j < copies; j++ {
				if _, ok := dst.Inbox.Recv(t); !ok {
					return
				}
			}
		})
		k.Spawn("copier", func(t *sim.Task) {
			m := &wire.MemCopy{Token: 1, SrcCid: 2, DstCid: 3}
			for j := 0; j < copies; j++ {
				m.Token = uint64(j)
				if !net.Send(src.ID, dst.ID, m) {
					return
				}
				f := net.RDMARead(src.ID, 0, dst.ID, 0, 4096)
				if _, err := f.Wait(t); err != nil {
					return
				}
			}
		})
		k.Run()
		k.Shutdown()
	}
}

// ---- end-to-end cases ----

// benchFigure8 regenerates the §6.2 composition pipeline (star /
// fast-star / chain) — the workload the ISSUE tracks end to end.
func benchFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure8()
	}
}

// benchFaceVerify regenerates Figure 12, the face-verification
// end-to-end latency experiment.
func benchFaceVerify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure12()
	}
}

// Cap-scale benchmarks: the slab-backed capability engine under
// paper-scale load — millions of live capabilities per Space, deep and
// wide revocation trees, epoch-bump purges. These are host-side
// ns/op numbers for the data structures behind every syscall's
// validation fast path; they feed the cap-scale rows of
// BENCH_PR*.json and the capability-engine section of
// docs/PERFORMANCE.md. Methodology is in docs/EXPERIMENTS.md.
package perf

import (
	"fmt"
	"testing"

	"fractos/internal/cap"
)

// capScaleCases builds the cap-scale/* grid.
func capScaleCases() []Case {
	cs := []Case{
		{"cap-scale/validate-1m", benchCapValidate1M},
		{"cap-scale/space-churn-1m", benchCapSpaceChurn1M},
		{"cap-scale/delegate-churn", benchCapDelegateChurn},
		{"cap-scale/epoch-purge-64k", benchCapEpochPurge64K},
	}
	for _, d := range []struct {
		label string
		depth int
	}{
		{"10k", 10_000},
		{"100k", 100_000},
	} {
		depth := d.depth
		cs = append(cs, Case{
			Name: fmt.Sprintf("cap-scale/revoke-depth-%s", d.label),
			Fn:   func(b *testing.B) { benchCapRevokeChain(b, depth) },
		})
	}
	return append(cs, Case{"cap-scale/revoke-d1000-f10", benchCapRevokeDeepFanout})
}

// capScaleWorld is the shared fixture: one revocation tree with
// liveCaps delegatee nodes under a single root object, and one
// capability space holding a live entry per node — the shape of a
// Process that has delegated a million capabilities.
func capScaleWorld(n int) (*cap.Tree, *cap.Space, []cap.CapID) {
	tree := cap.NewTree()
	space := cap.NewSpace()
	root := tree.Create(nil)
	cids := make([]cap.CapID, n)
	for i := 0; i < n; i++ {
		node := tree.Derive(root.ID, nil)
		cids[i] = space.Install(cap.Entry{
			Kind:   cap.KindMemory,
			Ref:    cap.Ref{Ctrl: 1, Obj: node.ID, Epoch: 1},
			Rights: cap.Read | cap.Write,
		})
	}
	return tree, space, cids
}

// benchCapValidate1M measures the validation fast path at one million
// live capabilities: cid → Entry (Space.Peek, generation-checked slab
// lookup) then Ref → Node (Tree.Probe) plus the revoked/ctrl/epoch
// fence — exactly what Controller.Validate and resolveEntry do per
// syscall. Accesses stride across the space so the number reflects
// O(1) structure, not a hot cache line.
func benchCapValidate1M(b *testing.B) {
	const live = 1_000_000
	tree, space, cids := capScaleWorld(live)
	const epoch = cap.Epoch(1)
	b.ResetTimer()
	idx := 0
	for i := 0; i < b.N; i++ {
		e := space.Peek(cids[idx])
		if e == nil {
			b.Fatal("live cid failed to resolve")
		}
		n := tree.Probe(e.Ref.Obj)
		if n == nil || n.Revoked || e.Ref.Ctrl != 1 || e.Ref.Epoch != epoch {
			b.Fatal("validation fast path missed")
		}
		if idx += 7777; idx >= live {
			idx -= live
		}
	}
}

// benchCapSpaceChurn1M measures slot recycling under churn with the
// space held at a million live entries: each op drops one entry and
// installs a replacement. The free list must hand the slot straight
// back — the space never grows past its high-water mark and the pair
// stays allocation-free at steady state.
func benchCapSpaceChurn1M(b *testing.B) {
	const live = 1_000_000
	_, space, cids := capScaleWorld(live)
	e := cap.Entry{Kind: cap.KindRequest, Ref: cap.Ref{Ctrl: 1, Obj: 1, Epoch: 1}}
	b.ResetTimer()
	idx := 0
	for i := 0; i < b.N; i++ {
		space.Drop(cids[idx])
		cids[idx] = space.Install(e)
		if idx += 7777; idx >= live {
			idx -= live
		}
	}
	if got := space.Slots(); got != live {
		b.Fatalf("space grew to %d slots under churn, want %d", got, live)
	}
}

// benchCapDelegateChurn measures one full delegation lifecycle on the
// revocation tree: derive a delegatee child of a 100k-node tree,
// revoke it, remove the stub. Every step is O(1) — intrusive child
// links on Derive, a single-node walk on Revoke, unlink + slab free on
// Remove — so ns/op must not scale with tree size, and the tree must
// end exactly where it started.
func benchCapDelegateChurn(b *testing.B) {
	const base = 100_000
	tree, _, _ := capScaleWorld(base)
	parent := tree.Create(nil)
	start := tree.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := tree.Derive(parent.ID, nil)
		tree.Revoke(n.ID)
		tree.Remove(n.ID)
	}
	if got := tree.Len(); got != start {
		b.Fatalf("tree grew to %d nodes under churn, want %d", got, start)
	}
}

// benchCapEpochPurge64K measures the epoch-bump response: one op
// purges every entry of a 64k-capability space through PurgeRefs (the
// path peerEpoch takes when a Controller reboots) and reinstalls the
// population for the next round. Purged cids are generation-bumped so
// stale handles stay dead; reinstalls recycle the freed slots, keeping
// the slab at its high-water mark across ops.
func benchCapEpochPurge64K(b *testing.B) {
	const live = 64 * 1024
	_, space, _ := capScaleWorld(live)
	e := cap.Entry{Kind: cap.KindMemory, Ref: cap.Ref{Ctrl: 2, Obj: 9, Epoch: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		purged := space.PurgeRefs(func(cap.Ref) bool { return true })
		if len(purged) != live {
			b.Fatalf("purged %d entries, want %d", len(purged), live)
		}
		for j := 0; j < live; j++ {
			space.Install(e)
		}
	}
}

// benchCapRevokeChain measures revocation latency against delegation
// depth: one op revokes (and dismantles) a chain of depth nodes. The
// iterative pre-order walk keeps this stack-flat at any depth; the
// rebuild between ops is outside the timer and reuses the same tree so
// slot recycling is exercised rather than allocator growth.
func benchCapRevokeChain(b *testing.B, depth int) {
	tree := cap.NewTree()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		root := tree.Create(nil)
		parent := root.ID
		for j := 1; j < depth; j++ {
			parent = tree.Derive(parent, nil).ID
		}
		b.StartTimer()
		revoked := tree.Revoke(root.ID)
		if len(revoked) != depth {
			b.Fatalf("revoked %d nodes, want %d", len(revoked), depth)
		}
		for j := len(revoked) - 1; j >= 0; j-- {
			tree.Remove(revoked[j].ID)
		}
	}
}

// benchCapRevokeDeepFanout measures the acceptance-shape tree: a
// 1000-deep delegation chain where every chain node also fans out to 9
// leaf delegatees (10k nodes total). One op revokes the root and
// dismantles the subtree — depth and width in one walk.
func benchCapRevokeDeepFanout(b *testing.B) {
	const depth, fanout = 1000, 10
	tree := cap.NewTree()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		root := tree.Create(nil)
		parent := root.ID
		total := 1
		for j := 1; j < depth; j++ {
			for k := 0; k < fanout-1; k++ {
				tree.Derive(parent, nil)
				total++
			}
			parent = tree.Derive(parent, nil).ID
			total++
		}
		b.StartTimer()
		revoked := tree.Revoke(root.ID)
		if len(revoked) != total {
			b.Fatalf("revoked %d nodes, want %d", len(revoked), total)
		}
		for j := len(revoked) - 1; j >= 0; j-- {
			tree.Remove(revoked[j].ID)
		}
	}
}

// Scale benchmarks: how fast the partition-parallel engine pushes
// simulation events at 10k/100k/1M-task scale, across shard counts.
// These are the numbers behind the events/sec table in
// docs/PERFORMANCE.md and the scale-sim rows of BENCH_PR*.json.
package perf

import (
	"fmt"
	"testing"

	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// scaleCases builds the scale-sim/<tasks>-s<shards> grid.
func scaleCases() []Case {
	var cs []Case
	for _, tc := range []struct {
		label string
		tasks int
	}{
		{"10k", 10_000},
		{"100k", 100_000},
		{"1m", 1_000_000},
	} {
		for _, shards := range []int{1, 2, 4, 8} {
			tasks, shards := tc.tasks, shards
			cs = append(cs, Case{
				Name: fmt.Sprintf("scale-sim/%s-s%d", tc.label, shards),
				Fn:   func(b *testing.B) { benchScaleSim(b, tasks, shards) },
			})
		}
	}
	return cs
}

// benchScaleSim drives the canonical partitioned workload: an 8-node
// mesh ring where node n's workers each send one frame from hub n to
// hub n+1. Workers are spawned in bounded waves (a sim.WaitGroup per
// node) so live-task count stays within the task pool at any scale,
// and their wakes are spread over ~1µs so every conservative window
// carries thousands of events per shard. The same total task count is
// measured at every shard width, so events/sec across the s1..s8
// variants is the engine's parallel speedup.
func benchScaleSim(b *testing.B, tasks, shards int) {
	const nodes = 8
	const wave = 4096
	perNode := tasks / nodes
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(17, shards)
		m := fabric.NewMesh(eng, fabric.Profile{}, nodes)
		hubs := make([]*fabric.Endpoint, nodes)
		for n := 0; n < nodes; n++ {
			hubs[n] = m.Attach("hub", fabric.Location{Node: n}, 0)
		}
		for n := 0; n < nodes; n++ {
			n := n
			k := eng.Shard(m.Owner(n))
			src, dst := hubs[n].ID, hubs[(n+1)%nodes].ID
			k.Spawn("drain", func(t *sim.Task) {
				for {
					if _, ok := hubs[n].Inbox.Recv(t); !ok {
						return
					}
				}
			})
			k.Spawn("spawner", func(t *sim.Task) {
				var wg sim.WaitGroup
				worker := func(t *sim.Task) {
					// Spread wakes across ~1µs so windows stay full.
					t.Sleep(sim.Time(int(t.ID())&1023 + 1))
					m.Send(src, dst, &wire.Null{Token: uint64(n)})
					wg.Done()
				}
				for done := 0; done < perNode; {
					batch := wave
					if rest := perNode - done; rest < batch {
						batch = rest
					}
					wg.Add(batch)
					for j := 0; j < batch; j++ {
						k.Spawn("w", worker)
					}
					wg.Wait(t)
					done += batch
				}
			})
		}
		eng.Run()
		eng.Shutdown()
	}
}

package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnmarshalRandomBytesNeverPanics throws random garbage at the
// decoder: Controllers parse messages from untrusted Processes, so
// decoding must fail cleanly, never panic or over-allocate.
func TestUnmarshalRandomBytesNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(n)%2048)
		rng.Read(buf)
		m, err := Unmarshal(buf)
		// Either it decodes into a registered message or errors; both
		// are fine. No panic is the property.
		return m != nil || err != nil || len(buf) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalBitflippedMessages corrupts valid encodings: every
// mutation must either decode to some message or error cleanly.
func TestUnmarshalBitflippedMessages(t *testing.T) {
	msgs := sampleMessages()
	rng := rand.New(rand.NewSource(99))
	for _, m := range msgs {
		b := Marshal(m)
		for trial := 0; trial < 50; trial++ {
			mut := append([]byte(nil), b...)
			// Flip up to 4 random bits.
			for k := 0; k < 1+rng.Intn(4); k++ {
				i := rng.Intn(len(mut))
				mut[i] ^= 1 << uint(rng.Intn(8))
			}
			_, _ = Unmarshal(mut) // must not panic
		}
	}
}

// TestHeaderOnlyMessages: a bare type header with no body must decode
// (zero-value) or error, never panic.
func TestHeaderOnlyMessages(t *testing.T) {
	for typ := Type(0); typ < 1024; typ++ {
		var w Writer
		w.U16(uint16(typ))
		_, _ = Unmarshal(w.Bytes())
	}
}

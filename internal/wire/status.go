package wire

import "errors"

// Status is the result code of a FractOS operation.
type Status uint8

// Operation result codes. StatusOK is zero so zero-valued completions
// read as success.
const (
	StatusOK Status = iota
	// StatusRevoked: the referenced object was revoked at its owner.
	StatusRevoked
	// StatusStale: the capability's epoch predates the owning
	// Controller's current epoch (the Controller rebooted), so the
	// capability is implicitly revoked (§3.6).
	StatusStale
	// StatusNoCap: the cid does not name a live capability-space entry.
	StatusNoCap
	// StatusPerm: the capability lacks a required right.
	StatusPerm
	// StatusImmutable: a Request refinement tried to overwrite an
	// argument that was already set (§3.4's security property).
	StatusImmutable
	// StatusBounds: a memory offset/length is out of range.
	StatusBounds
	// StatusUnknownObj: the owner has no such object.
	StatusUnknownObj
	// StatusBadArg: malformed operation arguments.
	StatusBadArg
	// StatusNoProc: the target Process is not connected (failed).
	StatusNoProc
	// StatusKind: the capability has the wrong kind for the operation.
	StatusKind
	// StatusBackpressure: the provider's congestion window is full and
	// the invocation was refused rather than queued.
	StatusBackpressure
	// StatusAborted: the operation was cut short by a failure event.
	StatusAborted
	// StatusQuota: the Process's capability-space quota is exhausted
	// (§4: the capability space is "set at Process creation time (can
	// be capped via quotas)").
	StatusQuota
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRevoked:
		return "revoked"
	case StatusStale:
		return "stale-epoch"
	case StatusNoCap:
		return "no-capability"
	case StatusPerm:
		return "permission-denied"
	case StatusImmutable:
		return "argument-immutable"
	case StatusBounds:
		return "out-of-bounds"
	case StatusUnknownObj:
		return "unknown-object"
	case StatusBadArg:
		return "bad-argument"
	case StatusNoProc:
		return "no-process"
	case StatusKind:
		return "wrong-kind"
	case StatusBackpressure:
		return "backpressure"
	case StatusAborted:
		return "aborted"
	case StatusQuota:
		return "capability-quota-exhausted"
	default:
		return "status(?)"
	}
}

// Err converts a non-OK status into an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return &StatusError{s}
}

// StatusError wraps a non-OK Status as an error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return "fractos: " + e.Status.String() }

// IsStatus reports whether err is (or wraps) a StatusError with the
// given code.
func IsStatus(err error, s Status) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == s
}

package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fractos/internal/cap"
)

func TestWriterReaderPrimitives(t *testing.T) {
	var w Writer
	w.U8(0xab)
	w.U16(0x1234)
	w.U32(0xdeadbeef)
	w.U64(0x0102030405060708)
	w.Bool(true)
	w.Bytes32([]byte("hello"))
	w.String32("world")

	r := NewReader(w.Bytes())
	if r.U8() != 0xab || r.U16() != 0x1234 || r.U32() != 0xdeadbeef {
		t.Fatal("primitive mismatch")
	}
	if r.U64() != 0x0102030405060708 || !r.Bool() {
		t.Fatal("primitive mismatch")
	}
	if string(r.Bytes32()) != "hello" || r.String32() != "world" {
		t.Fatal("bytes mismatch")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderShortBufferSticky(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32()
	if r.Err() != ErrShort {
		t.Fatalf("err = %v, want ErrShort", r.Err())
	}
	// All subsequent reads return zero without panicking.
	if r.U64() != 0 || r.U8() != 0 || r.Bytes32() != nil {
		t.Fatal("reads after error must return zero values")
	}
}

func TestBytes32HugeLengthRejected(t *testing.T) {
	var w Writer
	w.U32(1 << 30) // absurd length, no payload
	r := NewReader(w.Bytes())
	if r.Bytes32() != nil || r.Err() == nil {
		t.Fatal("oversized length must fail, not allocate")
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	var w Writer
	w.U16(0xffff)
	if _, err := Unmarshal(w.Bytes()); err == nil {
		t.Fatal("expected unknown-type error")
	}
}

func TestUnmarshalEmpty(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("expected error for empty buffer")
	}
}

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []Message {
	ref := cap.Ref{Ctrl: 7, Obj: 99, Epoch: 3}
	return []Message{
		&MemCreate{Token: 1, Base: 4096, Size: 1 << 20, Perms: cap.MemRights},
		&MemDiminish{Token: 2, Cid: 5, Offset: 128, Size: 256, Drop: cap.Write},
		&MemCopy{Token: 3, SrcCid: 4, DstCid: 9},
		&ReqCreate{Token: 4, Parent: 2, Tag: 77,
			Imms: []ImmArg{{Offset: 0, Data: []byte{1, 2, 3}}, {Offset: 16, Data: []byte("x")}},
			Caps: []CapSlot{{Slot: 0, Cid: 3}, {Slot: 2, Cid: 8}}},
		&ReqInvoke{Token: 5, Cid: 6, Imms: []ImmArg{{Offset: 8, Data: []byte("args")}},
			Caps: []CapSlot{{Slot: 1, Cid: 2}}},
		&CapRevtree{Token: 6, Cid: 11},
		&CapRevoke{Token: 7, Cid: 12},
		&CapDrop{Token: 8, Cid: 13},
		&MonitorDelegate{Token: 9, Cid: 14, Callback: 0xcafe},
		&MonitorReceive{Token: 10, Cid: 15, Callback: 0xbeef},
		&DeliverDone{Seq: 42},
		&ProcBye{},
		&Null{Token: 99},
		&Completion{Token: 11, Status: StatusPerm, Cid: 16, Aux: 512},
		&Deliver{Seq: 12, Tag: 88, Imms: []byte("immediate"),
			Caps: []DeliveredCap{{Slot: 0, Cid: 17, Kind: cap.KindMemory, Rights: cap.Read, Size: 64}}},
		&MonitorCB{Callback: 0xdead, Kind: MonitorCBReceive},
		&CtrlDeriveMem{Token: 13, Src: 2, From: ref, Offset: 8, Size: 16, Drop: cap.Write},
		&CtrlDeriveReq{Token: 14, Src: 2, From: ref,
			Imms: []ImmArg{{Offset: 4, Data: []byte("d")}},
			Caps: []CapXfer{{Slot: 3, Ref: ref, Kind: cap.KindRequest, Rights: cap.ReqRights, Size: 0, Monitored: true}}},
		&CtrlRevtree{Token: 15, Src: 3, From: ref},
		&CtrlRevoke{Token: 16, Src: 3, From: ref},
		&CtrlValidate{Token: 17, Src: 4, Ref: ref, Need: cap.Read},
		&CtrlValInfo{Token: 18, Status: StatusOK, Endpoint: 5, Base: 4096, Size: 8192, Rights: cap.MemRights},
		&CtrlInvoke{Token: 19, Src: 5, Ref: ref,
			Imms: []ImmArg{{Offset: 0, Data: bytes.Repeat([]byte("p"), 300)}},
			Caps: []CapXfer{{Slot: 0, Ref: ref, Kind: cap.KindMemory, Rights: cap.Read | cap.Grant, Size: 4096}}},
		&CtrlAck{Token: 20, Status: StatusRevoked, Obj: 1234, Epoch: 9, Size: 77, Rights: cap.All},
		&CtrlCleanup{Token: 31, Refs: []cap.Ref{ref, {Ctrl: 1, Obj: 2, Epoch: 3}}},
		&CtrlDelegNote{Token: 21, Src: 6, Ref: ref, Holder: 55},
		&CtrlDelegNoteAck{Token: 22, Status: StatusOK, Child: ref},
		&CtrlWatch{Token: 23, Src: 7, Ref: ref, WatcherProc: 66, WatcherCtrl: 8, Callback: 0xf00d},
		&CtrlNotify{Proc: 67, Callback: 0xfeed, Kind: MonitorCBDelegate},
		&CtrlEpoch{Ctrl: 9, Epoch: 4},
		&WatchPing{Seq: 71},
		&WatchPong{Seq: 71, Ctrl: 2, Epoch: 5},
		&Raw{Kind: 3, Token: 24, IsData: true, Data: []byte("baseline payload")},
	}
}

func TestRoundTripAllMessageTypes(t *testing.T) {
	for _, m := range sampleMessages() {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T round-trip mismatch:\n in: %+v\nout: %+v", m, m, got)
		}
		if SizeOf(m) != len(b) {
			t.Errorf("%T: SizeOf=%d, Marshal len=%d", m, SizeOf(m), len(b))
		}
	}
}

func TestEveryRegisteredTypeCovered(t *testing.T) {
	covered := map[Type]bool{}
	for _, m := range sampleMessages() {
		covered[m.WireType()] = true
	}
	for typ := range registry {
		if !covered[typ] {
			t.Errorf("registered type %d has no round-trip sample", typ)
		}
	}
}

func TestClassification(t *testing.T) {
	small := &ReqInvoke{Imms: []ImmArg{{Data: make([]byte, 64)}}}
	big := &ReqInvoke{Imms: []ImmArg{{Data: make([]byte, 4096)}}}
	if small.Class() != Control {
		t.Error("small invoke should be Control")
	}
	if big.Class() != Data {
		t.Error("large invoke should be Data")
	}
	if (&Deliver{Imms: make([]byte, 4096)}).Class() != Data {
		t.Error("large deliver should be Data")
	}
	if (&Raw{IsData: true}).Class() != Data || (&Raw{}).Class() != Control {
		t.Error("raw classification broken")
	}
}

// Property: random truncation of a valid encoding never panics and
// either errors or (only for truncation at the exact boundary)
// round-trips.
func TestTruncationNeverPanics(t *testing.T) {
	msgs := sampleMessages()
	f := func(pick uint8, cut uint16) bool {
		m := msgs[int(pick)%len(msgs)]
		b := Marshal(m)
		n := int(cut) % (len(b) + 1)
		_, err := Unmarshal(b[:n])
		return n == len(b) || err != nil || alwaysDecodable(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// alwaysDecodable reports whether a message body can decode from a
// prefix (zero-field messages decode from anything).
func alwaysDecodable(m Message) bool {
	switch m.(type) {
	case *ProcBye:
		return true
	}
	return false
}

// Property: random ReqCreate messages round-trip exactly.
func TestReqCreateRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &ReqCreate{
			Token:  rng.Uint64(),
			Parent: cap.CapID(rng.Uint32()),
			Tag:    rng.Uint64(),
		}
		for i, n := 0, rng.Intn(5); i < n; i++ {
			d := make([]byte, rng.Intn(100))
			rng.Read(d)
			m.Imms = append(m.Imms, ImmArg{Offset: rng.Uint32() % 1024, Data: d})
		}
		for i, n := 0, rng.Intn(5); i < n; i++ {
			m.Caps = append(m.Caps, CapSlot{Slot: uint16(rng.Intn(16)), Cid: cap.CapID(rng.Uint32())})
		}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusErr(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Error("StatusOK.Err() must be nil")
	}
	err := StatusRevoked.Err()
	if err == nil || !IsStatus(err, StatusRevoked) {
		t.Errorf("err = %v", err)
	}
	if IsStatus(err, StatusPerm) {
		t.Error("IsStatus matched wrong code")
	}
	for s := StatusOK; s <= StatusQuota; s++ {
		if s.String() == "status(?)" {
			t.Errorf("status %d has no name", s)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register(TMemCreate, func() Message { return new(MemCreate) })
}

// Package wire defines the FractOS on-wire protocol: a compact binary
// codec and the message set exchanged between Processes, Controllers,
// and the bootstrap services.
//
// Every message that crosses the fabric is really encoded to bytes and
// decoded at the receiver; the encoded length is what the fabric
// charges against link bandwidth and what the traffic-accounting
// experiments count. This keeps the reproduction honest: the paper's
// network-message and byte reductions fall out of actual serialized
// traffic, not hand-written constants.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"fractos/internal/assert"
)

// ErrShort is returned when decoding runs past the end of the buffer.
var ErrShort = errors.New("wire: short buffer")

// ErrUnknownType is returned when unmarshalling an unregistered type.
var ErrUnknownType = errors.New("wire: unknown message type")

// Writer appends primitive values to a byte buffer.
type Writer struct {
	buf []byte
}

// writerPool recycles Writer buffers across messages. The API is
// deterministic-safe: a pooled Writer is truncated before reuse and
// its contents are fully (re)written by the caller before anyone reads
// them, so encoded bytes never depend on which buffer the pool hands
// out. Only buffer identity varies — and nothing in the simulation
// observes identity.
var writerPool = sync.Pool{New: func() interface{} { return new(Writer) }}

// maxPooledWriter bounds the capacity retained by the pool so a rare
// giant frame does not pin memory forever.
const maxPooledWriter = 1 << 20

// GetWriter returns a pooled Writer, reset and pre-grown to sizeHint
// bytes of capacity. Callers that are done with the encoded bytes
// should call Release; keeping the buffer is also safe (it simply
// never returns to the pool), but then poolcheck requires a
// fractos:pool-ok waiver documenting who owns it.
//
//fractos:hotpath
//fractos:pool-acquire wirebuf
func GetWriter(sizeHint int) *Writer {
	w := writerPool.Get().(*Writer)
	w.buf = w.buf[:0]
	w.Grow(sizeHint)
	return w
}

// Release returns the Writer (and its buffer) to the pool. The caller
// must not retain w or any slice of w.Bytes() afterwards.
//
//fractos:hotpath
//fractos:pool-release wirebuf
func (w *Writer) Release() {
	if cap(w.buf) > maxPooledWriter {
		w.buf = nil
	}
	w.buf = w.buf[:0]
	writerPool.Put(w)
}

// Reset truncates the Writer for reuse, keeping its capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Grow ensures capacity for at least n more bytes.
//
//fractos:hotpath
func (w *Writer) Grow(n int) {
	if n <= cap(w.buf)-len(w.buf) {
		return
	}
	nb := make([]byte, len(w.buf), len(w.buf)+n) // fractos:alloc-ok cold path: hot callers pre-size via EncodedSize so capacity suffices
	copy(nb, w.buf)
	w.buf = nb
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
//
//fractos:hotpath
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) } // fractos:alloc-ok appends into capacity pre-grown by Grow/EncodedSize

// U16 appends a little-endian uint16.
//
//fractos:hotpath
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
//
//fractos:hotpath
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
//
//fractos:hotpath
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Bool appends a boolean as one byte.
//
//fractos:hotpath
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes32 appends a length-prefixed (uint32) byte slice.
//
//fractos:hotpath
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...) // fractos:alloc-ok appends into capacity pre-grown by Grow/EncodedSize
}

// String32 appends a length-prefixed string.
func (w *Writer) String32(s string) { w.Bytes32([]byte(s)) }

// Reader consumes primitive values from a byte buffer. Errors are
// sticky: after the first short read, all further reads return zero
// values and Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a buffer for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Reset re-points the Reader at a new buffer, clearing any sticky
// error, so a Reader value can be reused without allocation.
//
//fractos:hotpath
func (r *Reader) Reset(b []byte) {
	r.buf = b
	r.off = 0
	r.err = nil
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

//fractos:hotpath
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
//
//fractos:hotpath
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
//
//fractos:hotpath
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
//
//fractos:hotpath
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
//
//fractos:hotpath
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bool reads a boolean.
//
//fractos:hotpath
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 reads a length-prefixed byte slice. The result is a copy so
// callers may retain it.
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n > r.Remaining() {
		r.err = ErrShort
		return nil
	}
	b := r.take(n)
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String32 reads a length-prefixed string.
func (r *Reader) String32() string { return string(r.Bytes32()) }

// Type identifies a message's concrete kind on the wire.
type Type uint16

// Class tags a message for traffic accounting: control-plane messages
// versus bulk data transfers (Figure 2's two arrow kinds).
type Class uint8

const (
	// Control marks small control-plane messages (syscalls, acks,
	// invocations, capability operations).
	Control Class = iota
	// Data marks bulk data transfers (memory copies, storage blocks,
	// argument payloads beyond a trivial size).
	Data
)

// Message is any FractOS protocol message.
type Message interface {
	// WireType identifies the concrete message on the wire.
	WireType() Type
	// Class tags the message for traffic accounting.
	Class() Class
	// EncodedSize returns the exact body length Encode will produce
	// (excluding the 2-byte type header). Marshal and the fabric use
	// it to pre-size buffers so encoding never reallocates.
	EncodedSize() int
	// Encode appends the message body (excluding the type header).
	Encode(w *Writer)
	// Decode parses the message body.
	Decode(r *Reader) error
}

var registry = map[Type]func() Message{}

// Register installs a constructor for a message type. Duplicate
// registration is a programming error caught at init time.
func Register(t Type, fn func() Message) {
	_, dup := registry[t]
	assert.That(!dup, "wire: duplicate registration of type %d", t)
	registry[t] = fn
}

// Marshal encodes a message with its type header. The returned buffer
// is allocated at the exact encoded size (via EncodedSize), so
// encoding performs a single allocation: the frame is built in a
// pooled Writer and copied out. (Encoding directly into a local Writer
// would be two allocations — the interface call m.Encode(&w) makes the
// Writer escape.) The AllocsPerRun gate in bench_test.go pins the
// single-allocation contract at runtime.
//
//fractos:hotpath
func Marshal(m Message) []byte {
	w := GetWriter(2 + m.EncodedSize())
	w.U16(uint16(m.WireType()))
	m.Encode(w)
	out := make([]byte, len(w.buf)) // fractos:alloc-ok the single exact-size allocation Marshal exists to make
	copy(out, w.buf)
	w.Release()
	return out
}

// AppendMarshal encodes a message with its type header, appending to
// dst and returning the extended buffer. Passing dst[:0] of a retained
// buffer gives an allocation-free encode once the buffer has grown to
// the message's size; this is the hot-path entry the fabric uses.
//
//fractos:hotpath
func AppendMarshal(dst []byte, m Message) []byte {
	w := Writer{buf: dst}
	w.Grow(2 + m.EncodedSize())
	w.U16(uint16(m.WireType()))
	m.Encode(&w)
	return w.buf
}

// MarshalTo encodes a message with its type header into w (typically a
// pooled Writer from GetWriter), pre-growing to the exact frame size.
//
//fractos:hotpath
func MarshalTo(w *Writer, m Message) {
	w.Grow(2 + m.EncodedSize())
	w.U16(uint16(m.WireType()))
	m.Encode(w)
}

// Unmarshal decodes a framed message produced by Marshal. The Reader
// lives on the stack; the only allocations are the message struct
// itself and copies of any variable-length payloads, so the returned
// message never aliases b and b may be reused immediately.
func Unmarshal(b []byte) (Message, error) {
	r := Reader{buf: b}
	t := Type(r.U16())
	if r.err != nil {
		return nil, r.err
	}
	fn, ok := registry[t]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	m := fn()
	if err := m.Decode(&r); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// SizeOf returns the encoded size of a message including the type
// header, without encoding anything.
//
//fractos:hotpath
func SizeOf(m Message) int { return 2 + m.EncodedSize() }

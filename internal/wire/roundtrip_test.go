package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"fractos/internal/cap"
)

// TestEncodedSizeMatchesEncode pins the contract the zero-alloc paths
// rely on: EncodedSize must equal the exact number of body bytes
// Encode produces, for every registered message type. Marshal,
// AppendMarshal, MarshalTo, and the fabric's frame pre-sizing all
// allocate from this number, so a drift would silently reintroduce
// buffer growth (or worse, under-report traffic in SizeOf).
func TestEncodedSizeMatchesEncode(t *testing.T) {
	for _, m := range sampleMessages() {
		var w Writer
		m.Encode(&w)
		if got, want := m.EncodedSize(), w.Len(); got != want {
			t.Errorf("%T: EncodedSize()=%d, Encode produced %d bytes", m, got, want)
		}
		if got, want := SizeOf(m), 2+w.Len(); got != want {
			t.Errorf("%T: SizeOf()=%d, framed length %d", m, got, want)
		}
	}
}

// TestReencodeByteEquality is the round-trip property under pooled
// writers: encode → decode → re-encode must be byte-identical, with
// every encode going through a Writer obtained from (and released back
// to) the pool. Running all messages twice interleaves pool reuse, so
// a stale-buffer bug — a pooled Writer leaking bytes from its previous
// life — would show up as a mismatch.
func TestReencodeByteEquality(t *testing.T) {
	for round := 0; round < 2; round++ {
		for _, m := range sampleMessages() {
			w1 := GetWriter(SizeOf(m))
			MarshalTo(w1, m)
			frame := append([]byte(nil), w1.Bytes()...)
			w1.Release()

			decoded, err := Unmarshal(frame)
			if err != nil {
				t.Fatalf("round %d %T: unmarshal: %v", round, m, err)
			}
			w2 := GetWriter(SizeOf(decoded))
			MarshalTo(w2, decoded)
			if !bytes.Equal(frame, w2.Bytes()) {
				t.Errorf("round %d %T: re-encode mismatch\n in: %x\nout: %x",
					round, m, frame, w2.Bytes())
			}
			w2.Release()
		}
	}
}

// TestAppendMarshalMatchesMarshal checks the hot-path encoder against
// the reference: appending into a reused buffer must produce the same
// bytes as a fresh Marshal, and reuse must not leak previous contents.
func TestAppendMarshalMatchesMarshal(t *testing.T) {
	var buf []byte
	for _, m := range sampleMessages() {
		want := Marshal(m)
		buf = AppendMarshal(buf[:0], m)
		if !bytes.Equal(want, buf) {
			t.Errorf("%T: AppendMarshal != Marshal\nwant %x\n got %x", m, want, buf)
		}
	}
}

// TestInvokeRoundTripRandomized hammers the highest-volume message
// (request_invoke) with random payload shapes: arbitrary immediate
// arguments and capability slots must round-trip byte-identically and
// honor EncodedSize exactly.
func TestInvokeRoundTripRandomized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &ReqInvoke{Token: rng.Uint64(), Cid: cap.CapID(rng.Uint32())}
		for i := 0; i < rng.Intn(4); i++ {
			data := make([]byte, rng.Intn(200))
			rng.Read(data)
			m.Imms = append(m.Imms, ImmArg{Offset: uint32(rng.Intn(512)), Data: data})
		}
		for i := 0; i < rng.Intn(4); i++ {
			m.Caps = append(m.Caps, CapSlot{Slot: uint16(rng.Intn(8)), Cid: cap.CapID(rng.Uint32())})
		}

		w := GetWriter(SizeOf(m))
		MarshalTo(w, m)
		if w.Len() != SizeOf(m) {
			t.Logf("seed %d: SizeOf=%d, encoded %d", seed, SizeOf(m), w.Len())
			return false
		}
		frame := append([]byte(nil), w.Bytes()...)
		w.Release()

		decoded, err := Unmarshal(frame)
		if err != nil {
			t.Logf("seed %d: unmarshal: %v", seed, err)
			return false
		}
		again := Marshal(decoded)
		if !bytes.Equal(frame, again) {
			t.Logf("seed %d: re-encode mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodedMessageDoesNotAliasFrame verifies the ownership rule the
// fabric's frame pooling depends on: after Unmarshal, mutating the
// frame buffer must not affect the decoded message's payloads.
func TestDecodedMessageDoesNotAliasFrame(t *testing.T) {
	m := &ReqInvoke{Token: 7, Cid: 9,
		Imms: []ImmArg{{Offset: 4, Data: []byte("payload-bytes")}},
		Caps: []CapSlot{{Slot: 0, Cid: 3}}}
	frame := Marshal(m)
	decodedAny, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	decoded := decodedAny.(*ReqInvoke)
	want := append([]byte(nil), decoded.Imms[0].Data...)
	for i := range frame {
		frame[i] = 0xFF
	}
	if !bytes.Equal(decoded.Imms[0].Data, want) {
		t.Fatalf("decoded payload aliases the frame: %x", decoded.Imms[0].Data)
	}
}

package wire

import "fractos/internal/cap"

// Message type identifiers. Grouped by direction:
// 1xx Process→Controller (syscalls), 2xx Controller→Process,
// 3xx Controller↔Controller, 9xx generic/raw.
const (
	TMemCreate Type = 100 + iota
	TMemDiminish
	TMemCopy
	TReqCreate
	TReqInvoke
	TCapRevtree
	TCapRevoke
	TCapDrop
	TMonitorDelegate
	TMonitorReceive
	TDeliverDone
	TProcBye
	TNull
)

const (
	TCompletion Type = 200 + iota
	TDeliver
	TMonitorCB
)

const (
	TCtrlDeriveMem Type = 300 + iota
	TCtrlDeriveReq
	TCtrlRevtree
	TCtrlRevoke
	TCtrlValidate
	TCtrlValInfo
	TCtrlInvoke
	TCtrlAck
	TCtrlCleanup
	TCtrlDelegNote
	TCtrlDelegNoteAck
	TCtrlWatch
	TCtrlNotify
	TCtrlEpoch
)

// 4xx: the node-monitoring service's heartbeat protocol (§3.6's
// external monitor, upgraded from an explicitly driven stub to a
// probe-based failure detector in docs/FAULTS.md).
const (
	TWatchPing Type = 400 + iota
	TWatchPong
)

// TRaw is a free-form message used by the baseline systems (rCUDA,
// NFS, NVMe-oF models) that share the fabric but not the FractOS
// protocol.
const TRaw Type = 900

func init() {
	Register(TMemCreate, func() Message { return new(MemCreate) })
	Register(TMemDiminish, func() Message { return new(MemDiminish) })
	Register(TMemCopy, func() Message { return new(MemCopy) })
	Register(TReqCreate, func() Message { return new(ReqCreate) })
	Register(TReqInvoke, func() Message { return new(ReqInvoke) })
	Register(TCapRevtree, func() Message { return new(CapRevtree) })
	Register(TCapRevoke, func() Message { return new(CapRevoke) })
	Register(TCapDrop, func() Message { return new(CapDrop) })
	Register(TMonitorDelegate, func() Message { return new(MonitorDelegate) })
	Register(TMonitorReceive, func() Message { return new(MonitorReceive) })
	Register(TDeliverDone, func() Message { return new(DeliverDone) })
	Register(TProcBye, func() Message { return new(ProcBye) })
	Register(TNull, func() Message { return new(Null) })
	Register(TCompletion, func() Message { return new(Completion) })
	Register(TDeliver, func() Message { return new(Deliver) })
	Register(TMonitorCB, func() Message { return new(MonitorCB) })
	Register(TCtrlDeriveMem, func() Message { return new(CtrlDeriveMem) })
	Register(TCtrlDeriveReq, func() Message { return new(CtrlDeriveReq) })
	Register(TCtrlRevtree, func() Message { return new(CtrlRevtree) })
	Register(TCtrlRevoke, func() Message { return new(CtrlRevoke) })
	Register(TCtrlValidate, func() Message { return new(CtrlValidate) })
	Register(TCtrlValInfo, func() Message { return new(CtrlValInfo) })
	Register(TCtrlInvoke, func() Message { return new(CtrlInvoke) })
	Register(TCtrlAck, func() Message { return new(CtrlAck) })
	Register(TCtrlCleanup, func() Message { return new(CtrlCleanup) })
	Register(TCtrlDelegNote, func() Message { return new(CtrlDelegNote) })
	Register(TCtrlDelegNoteAck, func() Message { return new(CtrlDelegNoteAck) })
	Register(TCtrlWatch, func() Message { return new(CtrlWatch) })
	Register(TCtrlNotify, func() Message { return new(CtrlNotify) })
	Register(TCtrlEpoch, func() Message { return new(CtrlEpoch) })
	Register(TWatchPing, func() Message { return new(WatchPing) })
	Register(TWatchPong, func() Message { return new(WatchPong) })
	Register(TRaw, func() Message { return new(Raw) })
}

// ---- shared argument encodings ----

// ImmArg writes Data into a Request's immediate-argument buffer at
// Offset. Once written, those bytes are immutable (§3.4).
type ImmArg struct {
	Offset uint32
	Data   []byte
}

func encodeImms(w *Writer, imms []ImmArg) {
	w.U16(uint16(len(imms)))
	for _, a := range imms {
		w.U32(a.Offset)
		w.Bytes32(a.Data)
	}
}

func decodeImms(r *Reader) []ImmArg {
	n := int(r.U16())
	if n == 0 || r.Err() != nil {
		return nil
	}
	imms := make([]ImmArg, 0, n)
	for i := 0; i < n; i++ {
		imms = append(imms, ImmArg{Offset: r.U32(), Data: r.Bytes32()})
	}
	return imms
}

// sizeImms returns the encoded length of an immediate-arg list.
func sizeImms(imms []ImmArg) int {
	n := 2
	for _, a := range imms {
		n += 4 + 4 + len(a.Data)
	}
	return n
}

// immsBytes reports the payload volume carried by immediate args,
// used to classify messages as data-bearing.
func immsBytes(imms []ImmArg) int {
	n := 0
	for _, a := range imms {
		n += len(a.Data)
	}
	return n
}

// dataThreshold is the immediate-payload size above which a message
// counts as a Data transfer for traffic accounting.
const dataThreshold = 256

// CapSlot binds a Process-local capability (cid) to a Request argument
// slot in a syscall.
type CapSlot struct {
	Slot uint16
	Cid  cap.CapID
}

func encodeCapSlots(w *Writer, cs []CapSlot) {
	w.U16(uint16(len(cs)))
	for _, c := range cs {
		w.U16(c.Slot)
		w.U32(uint32(c.Cid))
	}
}

func decodeCapSlots(r *Reader) []CapSlot {
	n := int(r.U16())
	if n == 0 || r.Err() != nil {
		return nil
	}
	cs := make([]CapSlot, 0, n)
	for i := 0; i < n; i++ {
		cs = append(cs, CapSlot{Slot: r.U16(), Cid: cap.CapID(r.U32())})
	}
	return cs
}

// CapXfer is a capability in transit between Controllers: the global
// reference plus the rights and metadata the receiver should install.
type CapXfer struct {
	Slot      uint16
	Ref       cap.Ref
	Kind      cap.Kind
	Rights    cap.Rights
	Size      uint64
	Monitored bool
	// Leased marks a monitor_delegatee child created for the receiver;
	// the receiving Controller revokes it if the receiver fails.
	Leased bool
}

func encodeRef(w *Writer, r cap.Ref) {
	w.U32(uint32(r.Ctrl))
	w.U64(uint64(r.Obj))
	w.U32(uint32(r.Epoch))
}

func decodeRef(r *Reader) cap.Ref {
	return cap.Ref{
		Ctrl:  cap.ControllerID(r.U32()),
		Obj:   cap.ObjectID(r.U64()),
		Epoch: cap.Epoch(r.U32()),
	}
}

func encodeCapXfers(w *Writer, xs []CapXfer) {
	w.U16(uint16(len(xs)))
	for _, x := range xs {
		w.U16(x.Slot)
		encodeRef(w, x.Ref)
		w.U8(uint8(x.Kind))
		w.U8(uint8(x.Rights))
		w.U64(x.Size)
		w.Bool(x.Monitored)
		w.Bool(x.Leased)
	}
}

func decodeCapXfers(r *Reader) []CapXfer {
	n := int(r.U16())
	if n == 0 || r.Err() != nil {
		return nil
	}
	xs := make([]CapXfer, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, CapXfer{
			Slot:      r.U16(),
			Ref:       decodeRef(r),
			Kind:      cap.Kind(r.U8()),
			Rights:    cap.Rights(r.U8()),
			Size:      r.U64(),
			Monitored: r.Bool(),
			Leased:    r.Bool(),
		})
	}
	return xs
}

// DeliveredCap is a capability as it appears in a request_receive
// descriptor: already installed in the receiver's capability space.
type DeliveredCap struct {
	Slot   uint16
	Cid    cap.CapID
	Kind   cap.Kind
	Rights cap.Rights
	Size   uint64
}

func encodeDelivered(w *Writer, ds []DeliveredCap) {
	w.U16(uint16(len(ds)))
	for _, d := range ds {
		w.U16(d.Slot)
		w.U32(uint32(d.Cid))
		w.U8(uint8(d.Kind))
		w.U8(uint8(d.Rights))
		w.U64(d.Size)
	}
}

func decodeDelivered(r *Reader) []DeliveredCap {
	n := int(r.U16())
	if n == 0 || r.Err() != nil {
		return nil
	}
	ds := make([]DeliveredCap, 0, n)
	for i := 0; i < n; i++ {
		ds = append(ds, DeliveredCap{
			Slot:   r.U16(),
			Cid:    cap.CapID(r.U32()),
			Kind:   cap.Kind(r.U8()),
			Rights: cap.Rights(r.U8()),
			Size:   r.U64(),
		})
	}
	return ds
}

// ---- Process → Controller (syscalls, Table 1) ----

// MemCreate registers [Base, Base+Size) of the calling Process's
// arena as a Memory object (memory_create).
type MemCreate struct {
	Token uint64
	Base  uint64
	Size  uint64
	Perms cap.Rights
}

func (*MemCreate) WireType() Type { return TMemCreate }
func (*MemCreate) Class() Class   { return Control }
func (m *MemCreate) Encode(w *Writer) {
	w.U64(m.Token)
	w.U64(m.Base)
	w.U64(m.Size)
	w.U8(uint8(m.Perms))
}
func (m *MemCreate) Decode(r *Reader) error {
	m.Token, m.Base, m.Size, m.Perms = r.U64(), r.U64(), r.U64(), cap.Rights(r.U8())
	return r.Err()
}

// MemDiminish derives a smaller/weaker view of a Memory capability
// (memory_diminish).
type MemDiminish struct {
	Token  uint64
	Cid    cap.CapID
	Offset uint64
	Size   uint64
	Drop   cap.Rights
}

func (*MemDiminish) WireType() Type { return TMemDiminish }
func (*MemDiminish) Class() Class   { return Control }
func (m *MemDiminish) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Cid))
	w.U64(m.Offset)
	w.U64(m.Size)
	w.U8(uint8(m.Drop))
}
func (m *MemDiminish) Decode(r *Reader) error {
	m.Token, m.Cid = r.U64(), cap.CapID(r.U32())
	m.Offset, m.Size, m.Drop = r.U64(), r.U64(), cap.Rights(r.U8())
	return r.Err()
}

// MemCopy copies all bytes of Memory SrcCid into DstCid (memory_copy).
type MemCopy struct {
	Token  uint64
	SrcCid cap.CapID
	DstCid cap.CapID
}

func (*MemCopy) WireType() Type { return TMemCopy }
func (*MemCopy) Class() Class   { return Control }
func (m *MemCopy) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.SrcCid))
	w.U32(uint32(m.DstCid))
}
func (m *MemCopy) Decode(r *Reader) error {
	m.Token, m.SrcCid, m.DstCid = r.U64(), cap.CapID(r.U32()), cap.CapID(r.U32())
	return r.Err()
}

// ReqCreate creates a new Request (Parent == NilCap) provided by the
// caller, or derives/refines an existing one (request_create). Tag is
// delivered back to the provider on every invocation of the request
// (and its derivations) so services can dispatch; it is only
// meaningful for new Requests.
type ReqCreate struct {
	Token  uint64
	Parent cap.CapID
	Tag    uint64
	Imms   []ImmArg
	Caps   []CapSlot
}

func (*ReqCreate) WireType() Type { return TReqCreate }
func (m *ReqCreate) Class() Class {
	if immsBytes(m.Imms) > dataThreshold {
		return Data
	}
	return Control
}
func (m *ReqCreate) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Parent))
	w.U64(m.Tag)
	encodeImms(w, m.Imms)
	encodeCapSlots(w, m.Caps)
}
func (m *ReqCreate) Decode(r *Reader) error {
	m.Token, m.Parent, m.Tag = r.U64(), cap.CapID(r.U32()), r.U64()
	m.Imms = decodeImms(r)
	m.Caps = decodeCapSlots(r)
	return r.Err()
}

// ReqInvoke invokes a Request (request_invoke). Imms/Caps are
// invoke-time refinements applied on top of the Request's preset
// arguments without mutating the Request object itself.
type ReqInvoke struct {
	Token uint64
	Cid   cap.CapID
	Imms  []ImmArg
	Caps  []CapSlot
}

func (*ReqInvoke) WireType() Type { return TReqInvoke }
func (m *ReqInvoke) Class() Class {
	if immsBytes(m.Imms) > dataThreshold {
		return Data
	}
	return Control
}
func (m *ReqInvoke) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Cid))
	encodeImms(w, m.Imms)
	encodeCapSlots(w, m.Caps)
}
func (m *ReqInvoke) Decode(r *Reader) error {
	m.Token, m.Cid = r.U64(), cap.CapID(r.U32())
	m.Imms = decodeImms(r)
	m.Caps = decodeCapSlots(r)
	return r.Err()
}

// CapRevtree creates a new revocation subtree entry for a capability
// (cap_create_revtree): a separately revocable child object.
type CapRevtree struct {
	Token uint64
	Cid   cap.CapID
}

func (*CapRevtree) WireType() Type { return TCapRevtree }
func (*CapRevtree) Class() Class   { return Control }
func (m *CapRevtree) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Cid))
}
func (m *CapRevtree) Decode(r *Reader) error {
	m.Token, m.Cid = r.U64(), cap.CapID(r.U32())
	return r.Err()
}

// CapRevoke revokes a capability: the referenced object and all its
// revocation-tree descendants are invalidated at the owner
// (cap_revoke).
type CapRevoke struct {
	Token uint64
	Cid   cap.CapID
}

func (*CapRevoke) WireType() Type { return TCapRevoke }
func (*CapRevoke) Class() Class   { return Control }
func (m *CapRevoke) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Cid))
}
func (m *CapRevoke) Decode(r *Reader) error {
	m.Token, m.Cid = r.U64(), cap.CapID(r.U32())
	return r.Err()
}

// CapDrop discards the calling Process's capability-space entry
// without revoking the object.
type CapDrop struct {
	Token uint64
	Cid   cap.CapID
}

func (*CapDrop) WireType() Type { return TCapDrop }
func (*CapDrop) Class() Class   { return Control }
func (m *CapDrop) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Cid))
}
func (m *CapDrop) Decode(r *Reader) error {
	m.Token, m.Cid = r.U64(), cap.CapID(r.U32())
	return r.Err()
}

// MonitorDelegate registers a callback that fires when all immediate
// children delegated from Cid have been invalidated (§3.6).
type MonitorDelegate struct {
	Token    uint64
	Cid      cap.CapID
	Callback uint64
}

func (*MonitorDelegate) WireType() Type { return TMonitorDelegate }
func (*MonitorDelegate) Class() Class   { return Control }
func (m *MonitorDelegate) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Cid))
	w.U64(m.Callback)
}
func (m *MonitorDelegate) Decode(r *Reader) error {
	m.Token, m.Cid, m.Callback = r.U64(), cap.CapID(r.U32()), r.U64()
	return r.Err()
}

// MonitorReceive registers a callback that fires when Cid's object is
// invalidated — by explicit revocation or by failure (§3.6).
type MonitorReceive struct {
	Token    uint64
	Cid      cap.CapID
	Callback uint64
}

func (*MonitorReceive) WireType() Type { return TMonitorReceive }
func (*MonitorReceive) Class() Class   { return Control }
func (m *MonitorReceive) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Cid))
	w.U64(m.Callback)
}
func (m *MonitorReceive) Decode(r *Reader) error {
	m.Token, m.Cid, m.Callback = r.U64(), cap.CapID(r.U32()), r.U64()
	return r.Err()
}

// DeliverDone acknowledges processing of a delivery, releasing one
// slot of the provider's congestion-control window (§4).
type DeliverDone struct {
	Seq uint64
}

func (*DeliverDone) WireType() Type     { return TDeliverDone }
func (*DeliverDone) Class() Class       { return Control }
func (m *DeliverDone) Encode(w *Writer) { w.U64(m.Seq) }
func (m *DeliverDone) Decode(r *Reader) error {
	m.Seq = r.U64()
	return r.Err()
}

// Null is the no-op syscall used to measure the bare cost of one
// FractOS operation (Table 3).
type Null struct {
	Token uint64
}

func (*Null) WireType() Type     { return TNull }
func (*Null) Class() Class       { return Control }
func (m *Null) Encode(w *Writer) { w.U64(m.Token) }
func (m *Null) Decode(r *Reader) error {
	m.Token = r.U64()
	return r.Err()
}

// ProcBye announces a graceful Process exit.
type ProcBye struct{}

func (*ProcBye) WireType() Type       { return TProcBye }
func (*ProcBye) Class() Class         { return Control }
func (*ProcBye) Encode(*Writer)       {}
func (*ProcBye) Decode(*Reader) error { return nil }

// ---- Controller → Process ----

// Completion resolves an asynchronous syscall. Cid carries the newly
// created capability for create/derive calls; Aux is call-specific
// (e.g. bytes copied).
type Completion struct {
	Token  uint64
	Status Status
	Cid    cap.CapID
	Aux    uint64
}

func (*Completion) WireType() Type { return TCompletion }
func (*Completion) Class() Class   { return Control }
func (m *Completion) Encode(w *Writer) {
	w.U64(m.Token)
	w.U8(uint8(m.Status))
	w.U32(uint32(m.Cid))
	w.U64(m.Aux)
}
func (m *Completion) Decode(r *Reader) error {
	m.Token, m.Status = r.U64(), Status(r.U8())
	m.Cid, m.Aux = cap.CapID(r.U32()), r.U64()
	return r.Err()
}

// Deliver is a request_receive descriptor: an invocation arriving at a
// provider Process. Imms is the merged immediate-argument buffer; Caps
// are the delegated capability arguments, already installed in the
// provider's capability space.
type Deliver struct {
	Seq  uint64
	Tag  uint64
	Imms []byte
	Caps []DeliveredCap
}

func (*Deliver) WireType() Type { return TDeliver }
func (m *Deliver) Class() Class {
	if len(m.Imms) > dataThreshold {
		return Data
	}
	return Control
}
func (m *Deliver) Encode(w *Writer) {
	w.U64(m.Seq)
	w.U64(m.Tag)
	w.Bytes32(m.Imms)
	encodeDelivered(w, m.Caps)
}
func (m *Deliver) Decode(r *Reader) error {
	m.Seq, m.Tag = r.U64(), r.U64()
	m.Imms = r.Bytes32()
	m.Caps = decodeDelivered(r)
	return r.Err()
}

// MonitorCB delivers a monitor callback to the Process that registered
// it. Kind 0 = delegate (children gone), 1 = receive (object revoked).
type MonitorCB struct {
	Callback uint64
	Kind     uint8
}

// Monitor callback kinds.
const (
	MonitorCBDelegate uint8 = 0
	MonitorCBReceive  uint8 = 1
)

func (*MonitorCB) WireType() Type { return TMonitorCB }
func (*MonitorCB) Class() Class   { return Control }
func (m *MonitorCB) Encode(w *Writer) {
	w.U64(m.Callback)
	w.U8(m.Kind)
}
func (m *MonitorCB) Decode(r *Reader) error {
	m.Callback, m.Kind = r.U64(), r.U8()
	return r.Err()
}

// ---- Controller ↔ Controller ----

// CtrlDeriveMem asks the owner to derive a diminished Memory object.
type CtrlDeriveMem struct {
	Token  uint64
	Src    cap.ControllerID
	From   cap.Ref
	Offset uint64
	Size   uint64
	Drop   cap.Rights
}

func (*CtrlDeriveMem) WireType() Type { return TCtrlDeriveMem }
func (*CtrlDeriveMem) Class() Class   { return Control }
func (m *CtrlDeriveMem) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.From)
	w.U64(m.Offset)
	w.U64(m.Size)
	w.U8(uint8(m.Drop))
}
func (m *CtrlDeriveMem) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.From = decodeRef(r)
	m.Offset, m.Size, m.Drop = r.U64(), r.U64(), cap.Rights(r.U8())
	return r.Err()
}

// CtrlDeriveReq asks the owner to derive a refined Request object.
type CtrlDeriveReq struct {
	Token uint64
	Src   cap.ControllerID
	From  cap.Ref
	Imms  []ImmArg
	Caps  []CapXfer
}

func (*CtrlDeriveReq) WireType() Type { return TCtrlDeriveReq }
func (m *CtrlDeriveReq) Class() Class {
	if immsBytes(m.Imms) > dataThreshold {
		return Data
	}
	return Control
}
func (m *CtrlDeriveReq) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.From)
	encodeImms(w, m.Imms)
	encodeCapXfers(w, m.Caps)
}
func (m *CtrlDeriveReq) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.From = decodeRef(r)
	m.Imms = decodeImms(r)
	m.Caps = decodeCapXfers(r)
	return r.Err()
}

// CtrlRevtree asks the owner to create a revocation-subtree child.
type CtrlRevtree struct {
	Token uint64
	Src   cap.ControllerID
	From  cap.Ref
}

func (*CtrlRevtree) WireType() Type { return TCtrlRevtree }
func (*CtrlRevtree) Class() Class   { return Control }
func (m *CtrlRevtree) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.From)
}
func (m *CtrlRevtree) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.From = decodeRef(r)
	return r.Err()
}

// CtrlRevoke asks the owner to invalidate an object (and subtree).
type CtrlRevoke struct {
	Token uint64
	Src   cap.ControllerID
	From  cap.Ref
}

func (*CtrlRevoke) WireType() Type { return TCtrlRevoke }
func (*CtrlRevoke) Class() Class   { return Control }
func (m *CtrlRevoke) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.From)
}
func (m *CtrlRevoke) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.From = decodeRef(r)
	return r.Err()
}

// CtrlValidate asks the owner whether Ref is live and conveys Need;
// for Memory objects the answer locates the backing buffer for RDMA.
type CtrlValidate struct {
	Token uint64
	Src   cap.ControllerID
	Ref   cap.Ref
	Need  cap.Rights
}

func (*CtrlValidate) WireType() Type { return TCtrlValidate }
func (*CtrlValidate) Class() Class   { return Control }
func (m *CtrlValidate) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.Ref)
	w.U8(uint8(m.Need))
}
func (m *CtrlValidate) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.Ref = decodeRef(r)
	m.Need = cap.Rights(r.U8())
	return r.Err()
}

// CtrlValInfo answers a CtrlValidate: where the Memory object's bytes
// live (fabric endpoint + offset) and its authoritative extent/rights.
type CtrlValInfo struct {
	Token    uint64
	Status   Status
	Endpoint uint32 // fabric endpoint owning the arena
	Base     uint64 // offset within that arena
	Size     uint64
	Rights   cap.Rights
}

func (*CtrlValInfo) WireType() Type { return TCtrlValInfo }
func (*CtrlValInfo) Class() Class   { return Control }
func (m *CtrlValInfo) Encode(w *Writer) {
	w.U64(m.Token)
	w.U8(uint8(m.Status))
	w.U32(m.Endpoint)
	w.U64(m.Base)
	w.U64(m.Size)
	w.U8(uint8(m.Rights))
}
func (m *CtrlValInfo) Decode(r *Reader) error {
	m.Token, m.Status = r.U64(), Status(r.U8())
	m.Endpoint, m.Base, m.Size = r.U32(), r.U64(), r.U64()
	m.Rights = cap.Rights(r.U8())
	return r.Err()
}

// CtrlInvoke carries a request invocation to the owner of the Request
// object, with invoke-time refinements and delegated capabilities.
type CtrlInvoke struct {
	Token uint64
	Src   cap.ControllerID
	Ref   cap.Ref
	Imms  []ImmArg
	Caps  []CapXfer
}

func (*CtrlInvoke) WireType() Type { return TCtrlInvoke }
func (m *CtrlInvoke) Class() Class {
	if immsBytes(m.Imms) > dataThreshold {
		return Data
	}
	return Control
}
func (m *CtrlInvoke) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.Ref)
	encodeImms(w, m.Imms)
	encodeCapXfers(w, m.Caps)
}
func (m *CtrlInvoke) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.Ref = decodeRef(r)
	m.Imms = decodeImms(r)
	m.Caps = decodeCapXfers(r)
	return r.Err()
}

// CtrlAck answers derive/revtree/revoke/invoke requests. Obj/Epoch
// name a newly created object where applicable; Size/Rights echo its
// metadata so the requesting Controller can install a cap entry.
type CtrlAck struct {
	Token  uint64
	Status Status
	Obj    cap.ObjectID
	Epoch  cap.Epoch
	Size   uint64
	Rights cap.Rights
}

func (*CtrlAck) WireType() Type { return TCtrlAck }
func (*CtrlAck) Class() Class   { return Control }
func (m *CtrlAck) Encode(w *Writer) {
	w.U64(m.Token)
	w.U8(uint8(m.Status))
	w.U64(uint64(m.Obj))
	w.U32(uint32(m.Epoch))
	w.U64(m.Size)
	w.U8(uint8(m.Rights))
}
func (m *CtrlAck) Decode(r *Reader) error {
	m.Token, m.Status = r.U64(), Status(r.U8())
	m.Obj, m.Epoch = cap.ObjectID(r.U64()), cap.Epoch(r.U32())
	m.Size, m.Rights = r.U64(), cap.Rights(r.U8())
	return r.Err()
}

// CtrlCleanup is the asynchronous revocation-cleanup broadcast: every
// Controller purges capability-space entries referencing the revoked
// objects and acknowledges (§3.5; off the critical path — the owner
// keeps only small revoked stubs until every peer has confirmed no
// capabilities reference them).
type CtrlCleanup struct {
	Token uint64
	Refs  []cap.Ref
}

func (*CtrlCleanup) WireType() Type { return TCtrlCleanup }
func (*CtrlCleanup) Class() Class   { return Control }
func (m *CtrlCleanup) Encode(w *Writer) {
	w.U64(m.Token)
	w.U16(uint16(len(m.Refs)))
	for _, ref := range m.Refs {
		encodeRef(w, ref)
	}
}
func (m *CtrlCleanup) Decode(r *Reader) error {
	m.Token = r.U64()
	n := int(r.U16())
	for i := 0; i < n; i++ {
		m.Refs = append(m.Refs, decodeRef(r))
	}
	return r.Err()
}

// CtrlDelegNote tells the owner that a monitored capability was
// delegated to Holder; the owner creates a monitor_delegatee child.
type CtrlDelegNote struct {
	Token  uint64
	Src    cap.ControllerID
	Ref    cap.Ref
	Holder cap.ProcID
}

func (*CtrlDelegNote) WireType() Type { return TCtrlDelegNote }
func (*CtrlDelegNote) Class() Class   { return Control }
func (m *CtrlDelegNote) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.Ref)
	w.U64(uint64(m.Holder))
}
func (m *CtrlDelegNote) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.Ref = decodeRef(r)
	m.Holder = cap.ProcID(r.U64())
	return r.Err()
}

// CtrlDelegNoteAck returns the delegatee child object the holder's
// entry should reference.
type CtrlDelegNoteAck struct {
	Token  uint64
	Status Status
	Child  cap.Ref
}

func (*CtrlDelegNoteAck) WireType() Type { return TCtrlDelegNoteAck }
func (*CtrlDelegNoteAck) Class() Class   { return Control }
func (m *CtrlDelegNoteAck) Encode(w *Writer) {
	w.U64(m.Token)
	w.U8(uint8(m.Status))
	encodeRef(w, m.Child)
}
func (m *CtrlDelegNoteAck) Decode(r *Reader) error {
	m.Token, m.Status = r.U64(), Status(r.U8())
	m.Child = decodeRef(r)
	return r.Err()
}

// CtrlWatch registers a monitor_receive watcher at the owner.
type CtrlWatch struct {
	Token       uint64
	Src         cap.ControllerID
	Ref         cap.Ref
	WatcherProc cap.ProcID
	WatcherCtrl cap.ControllerID
	Callback    uint64
}

func (*CtrlWatch) WireType() Type { return TCtrlWatch }
func (*CtrlWatch) Class() Class   { return Control }
func (m *CtrlWatch) Encode(w *Writer) {
	w.U64(m.Token)
	w.U32(uint32(m.Src))
	encodeRef(w, m.Ref)
	w.U64(uint64(m.WatcherProc))
	w.U32(uint32(m.WatcherCtrl))
	w.U64(m.Callback)
}
func (m *CtrlWatch) Decode(r *Reader) error {
	m.Token, m.Src = r.U64(), cap.ControllerID(r.U32())
	m.Ref = decodeRef(r)
	m.WatcherProc = cap.ProcID(r.U64())
	m.WatcherCtrl = cap.ControllerID(r.U32())
	m.Callback = r.U64()
	return r.Err()
}

// CtrlNotify forwards a monitor callback to the Controller managing
// the watching Process.
type CtrlNotify struct {
	Proc     cap.ProcID
	Callback uint64
	Kind     uint8
}

func (*CtrlNotify) WireType() Type { return TCtrlNotify }
func (*CtrlNotify) Class() Class   { return Control }
func (m *CtrlNotify) Encode(w *Writer) {
	w.U64(uint64(m.Proc))
	w.U64(m.Callback)
	w.U8(m.Kind)
}
func (m *CtrlNotify) Decode(r *Reader) error {
	m.Proc = cap.ProcID(r.U64())
	m.Callback, m.Kind = r.U64(), r.U8()
	return r.Err()
}

// CtrlEpoch announces a Controller's current epoch (rebroadcast by the
// node-monitoring service after reboots).
type CtrlEpoch struct {
	Ctrl  cap.ControllerID
	Epoch cap.Epoch
}

func (*CtrlEpoch) WireType() Type { return TCtrlEpoch }
func (*CtrlEpoch) Class() Class   { return Control }
func (m *CtrlEpoch) Encode(w *Writer) {
	w.U32(uint32(m.Ctrl))
	w.U32(uint32(m.Epoch))
}
func (m *CtrlEpoch) Decode(r *Reader) error {
	m.Ctrl, m.Epoch = cap.ControllerID(r.U32()), cap.Epoch(r.U32())
	return r.Err()
}

// ---- node monitoring (4xx) ----

// WatchPing is a heartbeat probe from the node-monitoring service to a
// Controller. Seq identifies the probe round so late pongs are not
// mistaken for current ones.
type WatchPing struct {
	Seq uint64
}

func (*WatchPing) WireType() Type { return TWatchPing }
func (*WatchPing) Class() Class   { return Control }
func (m *WatchPing) Encode(w *Writer) {
	w.U64(m.Seq)
}
func (m *WatchPing) Decode(r *Reader) error {
	m.Seq = r.U64()
	return r.Err()
}

// WatchPong answers a WatchPing with the Controller's identity and
// current epoch, so the monitor can piggyback epoch discovery on
// liveness probing.
type WatchPong struct {
	Seq   uint64
	Ctrl  cap.ControllerID
	Epoch cap.Epoch
}

func (*WatchPong) WireType() Type { return TWatchPong }
func (*WatchPong) Class() Class   { return Control }
func (m *WatchPong) Encode(w *Writer) {
	w.U64(m.Seq)
	w.U32(uint32(m.Ctrl))
	w.U32(uint32(m.Epoch))
}
func (m *WatchPong) Decode(r *Reader) error {
	m.Seq = r.U64()
	m.Ctrl, m.Epoch = cap.ControllerID(r.U32()), cap.Epoch(r.U32())
	return r.Err()
}

// ---- generic ----

// Raw is a free-form message for non-FractOS protocols sharing the
// fabric (the baseline systems). Kind is protocol-specific; IsData
// classifies the message for traffic accounting.
type Raw struct {
	Kind   uint32
	Token  uint64
	IsData bool
	Data   []byte
}

func (*Raw) WireType() Type { return TRaw }
func (m *Raw) Class() Class {
	if m.IsData {
		return Data
	}
	return Control
}
func (m *Raw) Encode(w *Writer) {
	w.U32(m.Kind)
	w.U64(m.Token)
	w.Bool(m.IsData)
	w.Bytes32(m.Data)
}
func (m *Raw) Decode(r *Reader) error {
	m.Kind, m.Token = r.U32(), r.U64()
	m.IsData = r.Bool()
	m.Data = r.Bytes32()
	return r.Err()
}

// ---- encoded sizes ----
//
// EncodedSize returns the exact number of bytes Encode appends
// (excluding the 2-byte type header). Marshal and the fabric use these
// to pre-size buffers, and SizeOf to charge link bandwidth, without
// performing a throwaway encode. The wire property test
// (TestEncodedSizeMatchesEncode) checks every one of these against the
// real encoder.

// refSize is the encoded length of a cap.Ref (Ctrl u32, Obj u64,
// Epoch u32).
const refSize = 4 + 8 + 4

// sizeCapSlots returns the encoded length of a capability-slot list.
func sizeCapSlots(cs []CapSlot) int { return 2 + 6*len(cs) }

// sizeCapXfers returns the encoded length of a capability-transfer
// list (slot u16 + ref + kind u8 + rights u8 + size u64 + 2 bools).
func sizeCapXfers(xs []CapXfer) int { return 2 + (2+refSize+1+1+8+1+1)*len(xs) }

// sizeDelivered returns the encoded length of a delivered-cap list.
func sizeDelivered(ds []DeliveredCap) int { return 2 + (2+4+1+1+8)*len(ds) }

func (m *MemCreate) EncodedSize() int       { return 8 + 8 + 8 + 1 }
func (m *MemDiminish) EncodedSize() int     { return 8 + 4 + 8 + 8 + 1 }
func (m *MemCopy) EncodedSize() int         { return 8 + 4 + 4 }
func (m *ReqCreate) EncodedSize() int       { return 8 + 4 + 8 + sizeImms(m.Imms) + sizeCapSlots(m.Caps) }
func (m *ReqInvoke) EncodedSize() int       { return 8 + 4 + sizeImms(m.Imms) + sizeCapSlots(m.Caps) }
func (m *CapRevtree) EncodedSize() int      { return 8 + 4 }
func (m *CapRevoke) EncodedSize() int       { return 8 + 4 }
func (m *CapDrop) EncodedSize() int         { return 8 + 4 }
func (m *MonitorDelegate) EncodedSize() int { return 8 + 4 + 8 }
func (m *MonitorReceive) EncodedSize() int  { return 8 + 4 + 8 }
func (m *DeliverDone) EncodedSize() int     { return 8 }
func (m *Null) EncodedSize() int            { return 8 }
func (*ProcBye) EncodedSize() int           { return 0 }
func (m *Completion) EncodedSize() int      { return 8 + 1 + 4 + 8 }
func (m *Deliver) EncodedSize() int         { return 8 + 8 + 4 + len(m.Imms) + sizeDelivered(m.Caps) }
func (m *MonitorCB) EncodedSize() int       { return 8 + 1 }
func (m *CtrlDeriveMem) EncodedSize() int   { return 8 + 4 + refSize + 8 + 8 + 1 }
func (m *CtrlDeriveReq) EncodedSize() int {
	return 8 + 4 + refSize + sizeImms(m.Imms) + sizeCapXfers(m.Caps)
}
func (m *CtrlRevtree) EncodedSize() int  { return 8 + 4 + refSize }
func (m *CtrlRevoke) EncodedSize() int   { return 8 + 4 + refSize }
func (m *CtrlValidate) EncodedSize() int { return 8 + 4 + refSize + 1 }
func (m *CtrlValInfo) EncodedSize() int  { return 8 + 1 + 4 + 8 + 8 + 1 }
func (m *CtrlInvoke) EncodedSize() int {
	return 8 + 4 + refSize + sizeImms(m.Imms) + sizeCapXfers(m.Caps)
}
func (m *CtrlAck) EncodedSize() int          { return 8 + 1 + 8 + 4 + 8 + 1 }
func (m *CtrlCleanup) EncodedSize() int      { return 8 + 2 + refSize*len(m.Refs) }
func (m *CtrlDelegNote) EncodedSize() int    { return 8 + 4 + refSize + 8 }
func (m *CtrlDelegNoteAck) EncodedSize() int { return 8 + 1 + refSize }
func (m *CtrlWatch) EncodedSize() int        { return 8 + 4 + refSize + 8 + 4 + 8 }
func (m *CtrlNotify) EncodedSize() int       { return 8 + 8 + 1 }
func (m *CtrlEpoch) EncodedSize() int        { return 4 + 4 }
func (m *WatchPing) EncodedSize() int        { return 8 }
func (m *WatchPong) EncodedSize() int        { return 8 + 4 + 4 }
func (m *Raw) EncodedSize() int              { return 4 + 8 + 1 + 4 + len(m.Data) }

// Package assert is the single place in the repository allowed to
// panic (enforced by the panicfree analyzer in tools/analyzers).
//
// FractOS distinguishes two failure classes. Protocol-level failures —
// revoked capabilities, stale epochs, permission denials, dead peers —
// are part of the design (§3.6 failure handling) and travel as
// wire.Status values so the distributed protocol can unwind them.
// Programmer-invariant violations — a corrupted capability tree, an
// impossible scheduler state, a harness misconfiguration — have no
// meaningful recovery: continuing would silently corrupt simulation
// results. Those call the helpers here, which terminate with a
// diagnosable message.
//
// Keeping the terminators in one package makes the policy mechanical:
// `panic` anywhere else fails `make lint`, so every abort is either an
// invariant documented at an assert call site or an explicitly waived
// `fractos:panic-ok` line.
package assert

import "fmt"

// That aborts with a formatted message unless cond holds. Use it for
// invariants whose violation indicates a bug, never for conditions an
// adversarial or failed remote node could trigger.
func That(cond bool, format string, args ...interface{}) {
	if !cond {
		//fractos:panic-ok assert is the designated invariant terminator
		panic(fmt.Sprintf("invariant violated: "+format, args...))
	}
}

// True aborts with msg unless cond holds. It is the allocation-free
// variant of That for hot paths: the message is a pre-built string, so
// the call site pays no variadic ...interface{} boxing.
//
//fractos:hotpath
func True(cond bool, msg string) {
	if !cond {
		//fractos:panic-ok assert is the designated invariant terminator
		panic("invariant violated: " + msg) // fractos:alloc-ok only on the aborting path
	}
}

// NoErr aborts when err is non-nil. It is for impossible errors —
// experiment harness setup, encoding of values we just built — not for
// I/O that can legitimately fail.
func NoErr(err error, context string) {
	if err != nil {
		//fractos:panic-ok assert is the designated invariant terminator
		panic(fmt.Sprintf("%s: %v", context, err))
	}
}

// Failf aborts unconditionally; it marks unreachable code.
func Failf(format string, args ...interface{}) {
	//fractos:panic-ok assert is the designated invariant terminator
	panic(fmt.Sprintf(format, args...))
}

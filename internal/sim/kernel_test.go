package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func us(n int64) Time { return Time(n) * time.Microsecond }

func TestSleepAdvancesVirtualClock(t *testing.T) {
	k := New(1)
	var woke Time
	k.Spawn("sleeper", func(tk *Task) {
		tk.Sleep(us(500))
		woke = tk.Now()
	})
	end := k.Run()
	if woke != us(500) {
		t.Errorf("woke at %v, want %v", woke, us(500))
	}
	if end != us(500) {
		t.Errorf("run ended at %v, want %v", end, us(500))
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	k := New(1)
	var order []int
	for i, d := range []int64{30, 10, 20, 10, 0} {
		i, d := i, d
		k.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) {
			tk.Sleep(us(d))
			order = append(order, i)
		})
	}
	k.Run()
	want := []int{4, 1, 3, 2, 0} // by (time, spawn order)
	if len(order) != len(want) {
		t.Fatalf("got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn(fmt.Sprintf("t%d", i), func(tk *Task) {
			order = append(order, i)
		})
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestAfterRunsInKernelContext(t *testing.T) {
	k := New(1)
	fired := Time(-1)
	k.After(us(42), func() { fired = k.Now() })
	k.Run()
	if fired != us(42) {
		t.Errorf("After fired at %v, want %v", fired, us(42))
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := New(1)
	var last Time
	k.Spawn("ticker", func(tk *Task) {
		for i := 0; i < 100; i++ {
			tk.Sleep(us(10))
			last = tk.Now()
		}
	})
	end := k.RunUntil(us(35))
	if end != us(35) {
		t.Errorf("RunUntil returned %v, want %v", end, us(35))
	}
	if last != us(30) {
		t.Errorf("last tick at %v, want %v", last, us(30))
	}
	// Resuming runs the remainder.
	k.Run()
	if last != us(1000) {
		t.Errorf("after full run last tick %v, want %v", last, us(1000))
	}
}

func TestSpawnFromTask(t *testing.T) {
	k := New(1)
	var got []string
	k.Spawn("parent", func(tk *Task) {
		tk.Kernel().Spawn("child", func(c *Task) {
			got = append(got, "child@"+c.Now().String())
		})
		tk.Sleep(us(1))
		got = append(got, "parent@"+tk.Now().String())
	})
	k.Run()
	if len(got) != 2 || got[0] != "child@0s" {
		t.Fatalf("unexpected order: %v", got)
	}
}

func TestUnboundedChan(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, "c", 0)
	var got []int
	k.Spawn("recv", func(tk *Task) {
		for i := 0; i < 3; i++ {
			v, ok := ch.Recv(tk)
			if !ok {
				t.Errorf("unexpected close")
			}
			got = append(got, v)
		}
	})
	k.Spawn("send", func(tk *Task) {
		for i := 1; i <= 3; i++ {
			ch.Send(tk, i*10)
			tk.Sleep(us(5))
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestBoundedChanBlocksSender(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, "c", 1)
	var sendDone, recvAt Time
	k.Spawn("send", func(tk *Task) {
		ch.Send(tk, 1) // fills buffer
		ch.Send(tk, 2) // blocks until receiver drains
		sendDone = tk.Now()
	})
	k.Spawn("recv", func(tk *Task) {
		tk.Sleep(us(100))
		ch.Recv(tk)
		recvAt = tk.Now()
		ch.Recv(tk)
	})
	k.Run()
	if sendDone < recvAt {
		t.Errorf("second send completed at %v before receive at %v", sendDone, recvAt)
	}
}

func TestChanCloseDrainsThenReportsNotOK(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, "c", 0)
	var vals []int
	var closedOK = true
	k.Spawn("recv", func(tk *Task) {
		for {
			v, ok := ch.Recv(tk)
			if !ok {
				closedOK = false
				return
			}
			vals = append(vals, v)
		}
	})
	k.Spawn("send", func(tk *Task) {
		ch.Send(tk, 1)
		ch.Send(tk, 2)
		tk.Sleep(us(1))
		ch.Close()
	})
	k.Run()
	if len(vals) != 2 || closedOK {
		t.Fatalf("vals=%v closedOK=%v", vals, closedOK)
	}
}

func TestRecvTimeout(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, "c", 0)
	var timedOut bool
	var at Time
	k.Spawn("recv", func(tk *Task) {
		_, ok := ch.RecvTimeout(tk, us(50))
		timedOut = !ok
		at = tk.Now()
	})
	k.Run()
	if !timedOut || at != us(50) {
		t.Fatalf("timedOut=%v at=%v", timedOut, at)
	}
}

func TestRecvTimeoutDeliveredInTime(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, "c", 0)
	var got int
	var ok bool
	k.Spawn("recv", func(tk *Task) {
		got, ok = ch.RecvTimeout(tk, us(50))
		// The timer still fires later; it must be a no-op.
		tk.Sleep(us(100))
	})
	k.Spawn("send", func(tk *Task) {
		tk.Sleep(us(10))
		ch.Send(tk, 7)
	})
	k.Run()
	if !ok || got != 7 {
		t.Fatalf("got=%d ok=%v", got, ok)
	}
}

func TestFutureResolvesWaiters(t *testing.T) {
	k := New(1)
	f := NewFuture[string](k)
	var got [2]string
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", func(tk *Task) {
			v, err := f.Wait(tk)
			if err != nil {
				t.Errorf("unexpected err: %v", err)
			}
			got[i] = v
		})
	}
	k.Spawn("set", func(tk *Task) {
		tk.Sleep(us(5))
		f.Set("done")
	})
	k.Run()
	if got[0] != "done" || got[1] != "done" {
		t.Fatalf("got %v", got)
	}
}

func TestFutureFail(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k)
	var err error
	k.Spawn("w", func(tk *Task) { _, err = f.Wait(tk) })
	k.Spawn("fail", func(tk *Task) { f.Fail(fmt.Errorf("boom")) })
	k.Run()
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err=%v", err)
	}
}

func TestWaitGroup(t *testing.T) {
	k := New(1)
	var wg WaitGroup
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("w", func(tk *Task) {
			tk.Sleep(us(int64(i * 10)))
			wg.Done()
		})
	}
	k.Spawn("waiter", func(tk *Task) {
		wg.Wait(tk)
		doneAt = tk.Now()
	})
	k.Run()
	if doneAt != us(30) {
		t.Fatalf("wait finished at %v, want %v", doneAt, us(30))
	}
}

func TestSemaphoreWindow(t *testing.T) {
	k := New(1)
	sem := NewSemaphore(2)
	inflight, maxInflight := 0, 0
	var wg WaitGroup
	wg.Add(5)
	for i := 0; i < 5; i++ {
		k.Spawn("worker", func(tk *Task) {
			sem.Acquire(tk)
			inflight++
			if inflight > maxInflight {
				maxInflight = inflight
			}
			tk.Sleep(us(10))
			inflight--
			sem.Release()
			wg.Done()
		})
	}
	k.Run()
	if maxInflight != 2 {
		t.Fatalf("max inflight %d, want 2", maxInflight)
	}
}

func TestShutdownUnwindsBlockedTasks(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, "never", 0)
	cleaned := 0
	for i := 0; i < 4; i++ {
		k.Spawn("stuck", func(tk *Task) {
			defer func() { cleaned++ }()
			ch.Recv(tk) // blocks forever
		})
	}
	k.Run()
	if k.Live() != 4 {
		t.Fatalf("live=%d want 4", k.Live())
	}
	k.Shutdown()
	if cleaned != 4 || k.Live() != 0 {
		t.Fatalf("cleaned=%d live=%d", cleaned, k.Live())
	}
}

func TestTaskPanicPropagatesToRun(t *testing.T) {
	k := New(1)
	k.Spawn("bomb", func(tk *Task) { panic("kaboom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic from Run")
		}
	}()
	k.Run()
}

// TestDeterminism runs a randomized workload twice with the same seed
// and requires identical event traces (property: the simulation is a
// deterministic function of its seed).
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		k := New(seed)
		ch := NewChan[int](k, "c", 4)
		var trace []string
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("producer", func(tk *Task) {
				for j := 0; j < 5; j++ {
					tk.Sleep(Time(k.Rand().Intn(100)) * time.Nanosecond)
					ch.Send(tk, i*100+j)
				}
			})
		}
		k.Spawn("consumer", func(tk *Task) {
			for n := 0; n < 40; n++ {
				v, _ := ch.Recv(tk)
				trace = append(trace, fmt.Sprintf("%d@%v", v, tk.Now()))
			}
		})
		k.Run()
		return trace
	}
	check := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleWakeIgnored(t *testing.T) {
	// A task that finishes while a timer wake for it is still queued
	// must not be resumed again.
	k := New(1)
	ch := NewChan[int](k, "c", 0)
	k.Spawn("short", func(tk *Task) {
		// RecvTimeout schedules a timer; value arrives first, task
		// exits, then the timer fires against a finished task.
		v, ok := ch.RecvTimeout(tk, us(100))
		if !ok || v != 1 {
			t.Errorf("v=%d ok=%v", v, ok)
		}
	})
	k.Spawn("send", func(tk *Task) { ch.Send(tk, 1) })
	k.Run() // must not deadlock or panic
}

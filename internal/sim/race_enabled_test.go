//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in;
// allocation-count assertions skip under -race (instrumentation
// allocates on its own).
const raceEnabled = true

package sim

import (
	"fmt"
	"sync"
)

// Task pooling: Spawn used to allocate a Task struct, a handoff
// channel, and a fresh goroutine (plus its trampoline closure) per
// task — ~4 allocations and a goroutine-start for every spawn, the
// dominant cost of task-churn workloads (kernel/spawn, million-task
// scale runs). Instead, finished tasks park their goroutine on a
// process-wide free stack and Spawn re-arms one: the trampoline
// goroutine blocks on its existing hand channel between lives, so a
// warm Spawn is a couple of field stores and a map insert.
//
// The pool is deliberately a mutex-guarded stack rather than a
// sync.Pool: each pooled Task owns a live parked goroutine, and
// sync.Pool dropping items under GC pressure would leak those
// goroutines forever. Overflowing the bounded stack instead lets the
// trampoline return, ending its goroutine.
//
// Safety across kernels and engine shards: the stack is shared by
// every kernel in the process (including parallel shard workers), so
// pushes and pops are mutex-serialized; a task is only repooled after
// its kernel has unlinked it from the task table and cancelled any
// pending wake, so a pooled Task is referenced by nothing but the
// stack and its own goroutine. Which physical Task struct a Spawn
// receives is scheduling-dependent under parallel shards — that is
// fine because task identity is never observable: ids are per-kernel
// spawn-ordered, and all scheduling state (wake, done, killed) is
// reset on re-arm.

// maxPooledTasks bounds the free stack (and thus the number of idle
// parked goroutines kept alive).
const maxPooledTasks = 1 << 15

var taskPool struct {
	mu   sync.Mutex
	free []*Task
}

// getTask pops a pooled task (its trampoline goroutine already parked
// on hand) or builds a fresh one.
//
//fractos:hotpath
//fractos:pool-acquire simtask
func getTask() *Task {
	taskPool.mu.Lock()
	if n := len(taskPool.free); n > 0 {
		t := taskPool.free[n-1]
		taskPool.free[n-1] = nil
		taskPool.free = taskPool.free[:n-1]
		taskPool.mu.Unlock()
		return t
	}
	taskPool.mu.Unlock()
	t := &Task{hand: make(chan struct{})} // fractos:alloc-ok cold refill; steady state recycles via putTask
	go taskMain(t)
	return t
}

// putTask pushes a finished, fully unlinked task back on the stack.
// It reports false when the stack is full, telling the trampoline to
// end its goroutine instead.
//
//fractos:hotpath
//fractos:pool-release simtask
func putTask(t *Task) bool {
	taskPool.mu.Lock()
	if len(taskPool.free) >= maxPooledTasks {
		taskPool.mu.Unlock()
		return false
	}
	taskPool.free = append(taskPool.free, t) // fractos:alloc-ok free-stack growth is amortized
	taskPool.mu.Unlock()
	return true
}

// taskMain is the pooled trampoline: each iteration is one task
// lifetime. The goroutine parks on the hand channel between lives;
// Spawn's wake event eventually resumes it with fresh k/id/name/fn
// fields (the channel handoff is the happens-before edge making those
// writes visible).
func taskMain(t *Task) {
	for {
		<-t.hand
		// Note: the body runs even when killed before first resume
		// (Shutdown on a spawned-but-never-run task starts it; the
		// body unwinds at its first park), matching the pre-pool
		// trampoline exactly.
		t.exec()
		k := t.k
		t.k, t.fn, t.name = nil, nil, ""
		k.yield <- struct{}{}
		if !putTask(t) {
			return
		}
	}
}

// exec runs one task body with the kernel's panic discipline.
func (t *Task) exec() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); !ok {
				// Re-panicking here would crash an unrelated goroutine;
				// surface the panic through the kernel so Run's caller
				// sees it.
				t.k.fail(fmt.Sprintf("task %q panicked: %v", t.name, r))
			}
		}
		t.finish()
	}()
	t.fn(t)
}

// finish unlinks a task from its kernel at the end of a lifetime:
// marks it done, drops any still-queued wake (so no queue retains a
// pointer into the pool), and removes it from the task table.
func (t *Task) finish() {
	t.done = true
	if t.wake != nil {
		t.k.cancel(t.wake)
		t.wake = nil
	}
	delete(t.k.tasks, t.id)
}

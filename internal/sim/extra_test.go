package sim

import (
	"testing"
	"time"
)

func TestStopHaltsRun(t *testing.T) {
	k := New(1)
	ticks := 0
	k.Spawn("ticker", func(tk *Task) {
		for i := 0; i < 100; i++ {
			tk.Sleep(time.Microsecond)
			ticks++
			if ticks == 5 {
				k.Stop()
			}
		}
	})
	k.Run()
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5 (Stop must halt the loop)", ticks)
	}
	k.Shutdown()
}

func TestKernelRandDeterministic(t *testing.T) {
	seq := func(seed int64) []int {
		k := New(seed)
		var out []int
		for i := 0; i < 8; i++ {
			out = append(out, k.Rand().Intn(1000))
		}
		k.Shutdown()
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Rand not deterministic for equal seeds")
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestTrySendTryRecvBounded(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k, "c", 2)
	if !ch.TrySend(1) || !ch.TrySend(2) {
		t.Fatal("sends under capacity failed")
	}
	if ch.TrySend(3) {
		t.Fatal("send over capacity succeeded")
	}
	if v, ok := ch.TryRecv(); !ok || v != 1 {
		t.Fatalf("TryRecv = %d, %v", v, ok)
	}
	if !ch.TrySend(3) {
		t.Fatal("send after drain failed")
	}
	ch.Close()
	if ch.TrySend(4) {
		t.Fatal("send on closed channel succeeded")
	}
	k.Shutdown()
}

func TestTryRecvEmpty(t *testing.T) {
	k := New(1)
	ch := NewChan[string](k, "c", 0)
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty channel returned a value")
	}
	k.Shutdown()
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := New(1)
	var c Cond
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(tk *Task) {
			c.Wait(tk)
			woke++
		})
	}
	k.Spawn("caster", func(tk *Task) {
		tk.Sleep(time.Microsecond)
		c.Broadcast()
	})
	k.Run()
	if woke != 3 {
		t.Errorf("woke = %d, want 3", woke)
	}
	k.Shutdown()
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded")
	}
	s.Release()
	if s.Available() != 1 {
		t.Errorf("Available = %d", s.Available())
	}
}

func TestYieldInterleavesFairly(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("y", func(tk *Task) {
			for j := 0; j < 3; j++ {
				order = append(order, i)
				tk.Yield()
			}
		})
	}
	k.Run()
	// Perfect interleave: 0 1 0 1 0 1.
	for idx, v := range order {
		if v != idx%2 {
			t.Fatalf("order = %v; Yield must round-robin same-instant tasks", order)
		}
	}
	k.Shutdown()
}

func TestWaitGroupImmediateWait(t *testing.T) {
	k := New(1)
	var wg WaitGroup
	done := false
	k.Spawn("w", func(tk *Task) {
		wg.Wait(tk) // counter already zero: must not block
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("Wait on zero counter blocked")
	}
	k.Shutdown()
}

func TestFutureSetBeforeWait(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k)
	f.Set(9)
	var got int
	k.Spawn("w", func(tk *Task) { got, _ = f.Wait(tk) })
	k.Run()
	if got != 9 {
		t.Errorf("got %d", got)
	}
	k.Shutdown()
}

func TestDoubleResolvePanics(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k)
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Set did not panic")
		}
		k.Shutdown()
	}()
	f.Set(2)
}

func TestFutureWaitTimeout(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k)
	var err error
	var at Time
	k.Spawn("w", func(tk *Task) {
		_, err = f.WaitTimeout(tk, 50*time.Microsecond)
		at = tk.Now()
		// The future is still usable afterwards.
		v, err2 := f.Wait(tk)
		if err2 != nil || v != 7 {
			t.Errorf("post-timeout wait: %d %v", v, err2)
		}
	})
	k.Spawn("late", func(tk *Task) {
		tk.Sleep(100 * time.Microsecond)
		f.Set(7)
	})
	k.Run()
	if err != ErrTimeout || at != 50*time.Microsecond {
		t.Errorf("err=%v at=%v", err, at)
	}
	k.Shutdown()
}

func TestFutureWaitTimeoutResolvedInTime(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k)
	var got int
	var err error
	k.Spawn("w", func(tk *Task) {
		got, err = f.WaitTimeout(tk, 100*time.Microsecond)
		// Sleep past the timer: its late firing must not disturb this
		// or any later park.
		tk.Sleep(time.Millisecond)
	})
	k.Spawn("set", func(tk *Task) {
		tk.Sleep(10 * time.Microsecond)
		f.Set(3)
	})
	k.Run()
	if err != nil || got != 3 {
		t.Errorf("got=%d err=%v", got, err)
	}
	k.Shutdown()
}

func TestFutureWaitTimeoutAlreadyDone(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k)
	f.Set(5)
	var got int
	k.Spawn("w", func(tk *Task) { got, _ = f.WaitTimeout(tk, time.Microsecond) })
	k.Run()
	if got != 5 {
		t.Errorf("got %d", got)
	}
	k.Shutdown()
}

// TestFutureTimeoutRaceWithResolve: resolution and timeout at the very
// same virtual instant must not double-wake the task.
func TestFutureTimeoutRaceWithResolve(t *testing.T) {
	k := New(1)
	f := NewFuture[int](k)
	ch := NewChan[int](k, "after", 0)
	k.Spawn("w", func(tk *Task) {
		v, err := f.WaitTimeout(tk, 50*time.Microsecond)
		if err == nil && v != 9 {
			t.Errorf("v=%d", v)
		}
		// Immediately park on something else; a stray wake would
		// resume this early with ok=false... (Recv on empty+closed).
		got, ok := ch.RecvTimeout(tk, 200*time.Microsecond)
		if !ok || got != 1 {
			t.Errorf("follow-up park disturbed: got=%d ok=%v", got, ok)
		}
	})
	k.Spawn("set", func(tk *Task) {
		tk.Sleep(50 * time.Microsecond) // same instant as the timeout
		f.Set(9)
		tk.Sleep(100 * time.Microsecond)
		ch.Send(tk, 1)
	})
	k.Run()
	k.Shutdown()
}

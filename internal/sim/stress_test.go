package sim

import (
	"math/rand"
	"testing"
)

// stressTrace is one observed scheduling step: which logical actor ran
// and at what virtual time. The kernel serializes all task execution,
// so appending to a shared slice without locking is safe (and any
// violation of that property shows up under -race).
type stressStep struct {
	actor int
	at    Time
}

// runStressWorkload runs the 10k-task mixed workload and returns its
// full scheduling trace. Each task follows a private seeded RNG, so
// the workload itself is deterministic; the trace captures the
// kernel's global (time, seq) dispatch order end to end, exercising
// the heap, the same-instant run queue, stale-wake cancellation
// (tasks re-sleep via channels and timeouts), spawn churn, and After
// closures all at once.
func runStressWorkload(seed int64) []stressStep {
	const nTasks = 10000
	k := New(seed)
	trace := make([]stressStep, 0, nTasks*8)
	record := func(actor int, at Time) {
		trace = append(trace, stressStep{actor: actor, at: at})
	}
	wakeups := NewChan[int](k, "wakeups", 0)
	for i := 0; i < nTasks; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed ^ int64(i)*2654435761))
		switch i % 4 {
		case 0: // sleepers: mixed-duration Sleep chains (heap path)
			k.Spawn("sleeper", func(t *Task) {
				for s := 0; s < 4; s++ {
					t.Sleep(Time(rng.Intn(5000)))
					record(i, t.Now())
				}
			})
		case 1: // yielders: same-instant rescheduling (run-queue path)
			k.Spawn("yielder", func(t *Task) {
				for s := 0; s < 4; s++ {
					t.Yield()
					record(i, t.Now())
				}
			})
		case 2: // spawners: task churn plus After closures
			k.Spawn("spawner", func(t *Task) {
				t.Sleep(Time(rng.Intn(1000)))
				record(i, t.Now())
				k.After(Time(rng.Intn(1000)), func() {
					record(i, k.Now())
				})
				k.Spawn("child", func(ct *Task) {
					ct.Sleep(Time(rng.Intn(500)))
					record(i, ct.Now())
				})
			})
		case 3: // waiters: block on a channel, racing a timeout
			k.Spawn("waiter", func(t *Task) {
				if v, ok := wakeups.RecvTimeout(t, Time(rng.Intn(2000)+1)); ok {
					record(v, t.Now())
				} else {
					record(i, t.Now())
				}
			})
		}
	}
	// A feeder wakes some of the waiters before their timeouts fire, so
	// both the satisfied and timed-out paths run (and the timeout events
	// for satisfied waiters become stale wakes to cancel).
	k.Spawn("feeder", func(t *Task) {
		rng := rand.New(rand.NewSource(seed * 31))
		for s := 0; s < nTasks/8; s++ {
			t.Sleep(Time(rng.Intn(16)))
			wakeups.TrySend(s)
		}
	})
	k.Run()
	k.Shutdown()
	return trace
}

// TestKernelStressDeterministic runs the 10k-task workload twice and
// requires bit-identical traces: same actors, same virtual times, same
// global order. This is the kernel-level guarantee behind the repo's
// byte-identical fabric traces — event pooling, the 4-ary heap, the
// same-instant run queue, and waiter recycling must not leak host
// nondeterminism into dispatch order.
func TestKernelStressDeterministic(t *testing.T) {
	a := runStressWorkload(42)
	b := runStressWorkload(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at step %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}

// TestKernelStressOrdering checks the scheduling invariant on the
// trace: virtual time never moves backwards across dispatches,
// regardless of whether events came off the heap or the run queue.
func TestKernelStressOrdering(t *testing.T) {
	trace := runStressWorkload(7)
	for i := 1; i < len(trace); i++ {
		if trace[i].at < trace[i-1].at {
			t.Fatalf("time went backwards at step %d: %d -> %d",
				i, trace[i-1].at, trace[i].at)
		}
	}
}

// TestKernelStressSeedSensitivity makes sure the workload is actually
// exercising seed-dependent paths: different seeds must yield
// different traces (otherwise the determinism test proves nothing).
func TestKernelStressSeedSensitivity(t *testing.T) {
	a := runStressWorkload(1)
	b := runStressWorkload(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("traces identical across different seeds; workload not seed-sensitive")
		}
	}
}

package sim

import "fractos/internal/assert"

// Future is a single-assignment value that tasks can wait on. FractOS
// syscalls are fully asynchronous (posted to a message channel); the
// Process library wraps them in Futures to offer synchronous-looking
// APIs, mirroring the promise/future library the paper's C++ prototype
// built for the same purpose.
type Future[T any] struct {
	k       *Kernel
	done    bool
	val     T
	err     error
	waiters []*Task
}

// NewFuture creates an unresolved future.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Done reports whether the future has been resolved.
func (f *Future[T]) Done() bool { return f.done }

// Set resolves the future with a value, waking all waiters. Resolving
// twice panics: a future is a single-assignment cell.
func (f *Future[T]) Set(v T) { f.resolve(v, nil) }

// Fail resolves the future with an error.
func (f *Future[T]) Fail(err error) {
	var zero T
	f.resolve(zero, err)
}

func (f *Future[T]) resolve(v T, err error) {
	assert.That(!f.done, "sim: future resolved twice")
	f.done = true
	f.val = v
	f.err = err
	for _, t := range f.waiters {
		t.wakeAfter(0)
	}
	f.waiters = nil
}

// Wait blocks the task until the future resolves, then returns its
// value and error.
func (f *Future[T]) Wait(t *Task) (T, error) {
	for !f.done {
		f.waiters = append(f.waiters, t)
		t.park()
	}
	return f.val, f.err
}

// ErrTimeout is returned by WaitTimeout when the deadline passes
// before the future resolves.
var ErrTimeout = errTimeout{}

type errTimeout struct{}

func (errTimeout) Error() string { return "sim: wait timed out" }

// WaitTimeout is Wait with a virtual-time deadline. On timeout the
// future stays unresolved and may be waited on again later.
func (f *Future[T]) WaitTimeout(t *Task, d Time) (T, error) {
	if f.done {
		return f.val, f.err
	}
	f.waiters = append(f.waiters, t)
	f.k.After(d, func() {
		// Wake the task only if it is still waiting on this future;
		// if resolve already woke it (and cleared the waiter list),
		// issuing another wake would spuriously resume an unrelated
		// later park.
		for i, w := range f.waiters {
			if w == t {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				t.wakeAfter(0)
				return
			}
		}
	})
	t.park()
	if f.done {
		return f.val, f.err
	}
	var zero T
	return zero, ErrTimeout
}

// WaitGroup counts outstanding work items, like sync.WaitGroup but
// under virtual time.
type WaitGroup struct {
	n       int
	waiters []*Task
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	assert.That(wg.n >= 0, "sim: negative WaitGroup counter")
	if wg.n == 0 {
		wg.wakeAll()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(t *Task) {
	for wg.n > 0 {
		wg.waiters = append(wg.waiters, t)
		t.park()
	}
}

func (wg *WaitGroup) wakeAll() {
	for _, t := range wg.waiters {
		t.wakeAfter(0)
	}
	wg.waiters = nil
}

// Cond is a condition variable: tasks wait until another task
// broadcasts. There is no associated lock because task execution is
// already serialized by the kernel.
type Cond struct {
	waiters []*Task
}

// Wait parks the task until the next Broadcast.
func (c *Cond) Wait(t *Task) {
	c.waiters = append(c.waiters, t)
	t.park()
}

// Broadcast wakes every waiting task.
func (c *Cond) Broadcast() {
	for _, t := range c.waiters {
		t.wakeAfter(0)
	}
	c.waiters = nil
}

// Semaphore is a counting semaphore under virtual time. FractOS uses
// one to model per-Process congestion-control windows (the bound on
// outstanding responses described in §4 of the paper).
type Semaphore struct {
	avail   int
	waiters []*Task
}

// NewSemaphore creates a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, blocking while none are available.
func (s *Semaphore) Acquire(t *Task) {
	for s.avail <= 0 {
		s.waiters = append(s.waiters, t)
		t.park()
	}
	s.avail--
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail <= 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit and wakes a waiter if any.
func (s *Semaphore) Release() {
	s.avail++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.wakeAfter(0)
	}
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

package sim

import (
	"fmt"
	"sort"

	"fractos/internal/assert"
)

// Partition-parallel simulation: an Engine drives N shard kernels,
// each owning a disjoint subset of the simulated world (tasks, nodes,
// channels), under conservative-lookahead parallel discrete-event
// simulation (PDES).
//
// The synchronization protocol is barrier-synchronous conservative
// windowing. Each round the coordinator computes the global window
//
//	W = min(next event time across all shards) + lookahead
//
// and dispatches every shard with pending work below W to run its
// events with timestamp < W in parallel. Cross-shard interactions are
// timestamped posts (Kernel.Post) buffered in per-destination
// outboxes; at the barrier the coordinator merges each destination's
// inbound posts in (timestamp, source shard, source sequence) order —
// extending the kernel's (at, seq) evLess tie-break with the shard ID
// — and schedules them. A post sent at time s arrives at s+d with
// d >= lookahead, so its timestamp is >= next_min + lookahead = W,
// strictly after anything any shard processed this round: no shard
// ever receives a message in its past, which is the conservative-PDES
// safety invariant. Idle shards are safe too — a revived shard's
// first event is a delivery at >= W, so it can only send even later.
//
// Determinism: each shard is internally sequential; each outbox is
// filled in that deterministic order; the barrier merge is sorted by
// a total order; and deliveries are scheduled single-threaded in
// shard index order. Execution is therefore independent of GOMAXPROCS
// and of which OS thread runs which window. Whether the *trace* is
// also identical across different shard counts depends on the
// workload partitioning: with ShardCount=1 everything runs on shard 0
// and reproduces the single-kernel schedule exactly, and workloads
// whose cross-shard messages never collide on the same (destination,
// timestamp) produce byte-identical traces at any shard count (see
// internal/fabric.Mesh and docs/PERFORMANCE.md).
type Engine struct {
	shards    []*Kernel
	lookahead Time

	work  []chan Time // per-shard window dispatch; nil until the first parallel window
	done  chan wdone
	merge []xpost // reusable barrier merge buffer
	ready []int32 // reusable per-round dispatch list
}

// xpost is one cross-shard message: run fn on the destination shard
// at virtual time at.
type xpost struct {
	at  Time
	src int32  // sending shard, second merge key
	seq uint64 // sender-local sequence, third merge key
	fn  func()
}

// wdone reports one shard window's completion to the barrier.
type wdone struct {
	shard int
	msg   string // non-empty: panic propagated from the shard
}

// DefaultLookahead is the engine's lookahead before SetLookahead is
// called: deliberately conservative (correct for any workload, if
// slower than a fabric-derived value).
const DefaultLookahead = Time(1000) // 1µs

// NewEngine builds an engine with n shard kernels. Shard 0 is seeded
// with seed itself, so a 1-shard engine's kernel is indistinguishable
// from New(seed); other shards get independent streams split from the
// seed with a SplitMix64 step.
func NewEngine(seed int64, n int) *Engine {
	if n < 1 {
		n = 1
	}
	e := &Engine{lookahead: DefaultLookahead}
	e.shards = make([]*Kernel, n)
	for i := 0; i < n; i++ {
		k := New(shardSeed(seed, i))
		k.eng, k.shard = e, i
		k.outbox = make([][]xpost, n)
		e.shards[i] = k
	}
	return e
}

// shardSeed splits one seed into per-shard deterministic streams.
// Shard 0 keeps the original seed (single-shard equivalence); others
// run it through a SplitMix64 finalizer offset by the shard index.
func shardSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Shards reports the number of shard kernels.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns shard i's kernel. Spawning onto a shard partitions
// the workload; all of a task's state must stay shard-local, with
// cross-shard effects expressed through Post (the simdet analyzer
// flags common violations).
func (e *Engine) Shard(i int) *Kernel { return e.shards[i] }

// Lookahead returns the current cross-shard lookahead window.
func (e *Engine) Lookahead() Time { return e.lookahead }

// SetLookahead sets the minimum cross-shard message latency the
// windowing protocol may assume. Larger values widen the parallel
// windows; every Post must then respect d >= lookahead. Must be set
// before Run and never changed mid-run.
func (e *Engine) SetLookahead(d Time) {
	assert.That(d >= 1, "sim: lookahead must be positive, got %d", d)
	e.lookahead = d
}

// ShardID reports which engine shard this kernel is (0 for a
// standalone kernel).
func (k *Kernel) ShardID() int { return k.shard }

// Engine returns the owning engine, or nil for a standalone kernel.
func (k *Kernel) Engine() *Engine { return k.eng }

// Post schedules fn to run at now+d on shard dst's kernel. It is the
// only legal cross-shard interaction and must be called from the
// sending kernel's own context. Same-shard posts schedule directly;
// cross-shard posts must respect d >= lookahead and are delivered at
// the next window barrier.
//
//fractos:hotpath
func (k *Kernel) Post(dst int, d Time, fn func()) {
	e := k.eng
	assert.True(e != nil, "sim: Post on a kernel without an engine")
	if dst == k.shard {
		k.schedule(k.now+d, nil, fn)
		return
	}
	assert.True(d >= e.lookahead, "sim: cross-shard post under the lookahead window")
	k.postSeq++
	k.outbox[dst] = append(k.outbox[dst], // fractos:alloc-ok outbox growth is amortized; drained (not freed) at barriers
		xpost{at: k.now + d, src: int32(k.shard), seq: k.postSeq, fn: fn})
}

// Run drives all shards until every event queue is empty or a shard
// stops. It returns the latest shard clock. Like Kernel.Run it must
// be called from the goroutine that created the engine; task panics
// re-surface here (lowest shard index first when windows of several
// shards panic in the same round).
func (e *Engine) Run() Time {
	if len(e.shards) == 1 {
		// Degenerate engine: every post is same-shard (scheduled
		// directly), so the plain sequential loop is exact.
		return e.shards[0].Run()
	}
	for {
		stopped := false
		next := maxTime
		ready := e.ready[:0]
		for i, k := range e.shards {
			if k.stopped {
				stopped = true
			}
			if at, ok := k.nextAt(); ok {
				if at < next {
					next = at
				}
				ready = append(ready, int32(i)) // fractos:alloc-ok dispatch-list growth is amortized (reused each round)
			}
		}
		e.ready = ready
		if stopped || next == maxTime {
			break
		}
		w := next + e.lookahead
		dispatched := 0
		for _, i := range ready {
			if at, ok := e.shards[i].nextAt(); ok && at < w {
				ready[dispatched] = i
				dispatched++
			}
		}
		assert.That(dispatched > 0, "sim: conservative window made no progress (lookahead %d)", e.lookahead)
		if dispatched == 1 {
			// One shard has work below the window (e.g. an unsharded
			// workload resident on shard 0): run it inline rather than
			// bouncing the window through a worker thread.
			if msg := e.shards[ready[0]].windowSafe(w); msg != "" {
				//fractos:panic-ok re-surfacing a shard task's panic on the driver goroutine
				panic(msg)
			}
		} else {
			e.startWorkers()
			for _, i := range ready[:dispatched] {
				e.work[i] <- w
			}
			panicShard, panicMsg := -1, ""
			for i := 0; i < dispatched; i++ {
				r := <-e.done
				if r.msg != "" && (panicShard < 0 || r.shard < panicShard) {
					panicShard, panicMsg = r.shard, r.msg
				}
			}
			if panicShard >= 0 {
				//fractos:panic-ok re-surfacing a shard task's panic on the driver goroutine
				panic(panicMsg)
			}
		}
		e.deliver(w)
	}
	var end Time
	for _, k := range e.shards {
		if k.now > end {
			end = k.now
		}
	}
	return end
}

// startWorkers lazily spins up one window worker per shard.
func (e *Engine) startWorkers() {
	if e.work != nil {
		return
	}
	e.work = make([]chan Time, len(e.shards))
	e.done = make(chan wdone, len(e.shards))
	for i := range e.shards {
		e.work[i] = make(chan Time)
		go e.worker(i)
	}
}

// worker runs one shard's windows as the coordinator dispatches them.
func (e *Engine) worker(i int) {
	k := e.shards[i]
	for limit := range e.work[i] {
		e.done <- wdone{shard: i, msg: k.windowSafe(limit)}
	}
}

// windowSafe runs one window, converting a propagated task panic into
// a message for the barrier (panicking on a worker goroutine would
// kill the process without unwinding the coordinator).
func (k *Kernel) windowSafe(limit Time) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	k.runWindow(limit)
	return ""
}

// deliver drains every outbox at a window barrier, merging each
// destination's inbound posts in (at, src, seq) order and scheduling
// them. Runs single-threaded between windows.
func (e *Engine) deliver(w Time) {
	for dst, k := range e.shards {
		buf := e.merge[:0]
		for _, src := range e.shards {
			ob := src.outbox[dst]
			buf = append(buf, ob...)
			for i := range ob {
				ob[i].fn = nil
			}
			src.outbox[dst] = ob[:0]
		}
		if len(buf) > 1 {
			sort.Slice(buf, func(i, j int) bool {
				a, b := &buf[i], &buf[j]
				if a.at != b.at {
					return a.at < b.at
				}
				if a.src != b.src {
					return a.src < b.src
				}
				return a.seq < b.seq
			})
		}
		for i := range buf {
			p := &buf[i]
			assert.True(p.at >= w, "sim: cross-shard post below the conservative window")
			k.scheduleAt(p.at, p.fn)
			p.fn = nil
		}
		e.merge = buf[:0]
	}
}

// scheduleAt queues a kernel-context closure at an absolute future
// timestamp (cross-shard delivery).
func (k *Kernel) scheduleAt(at Time, fn func()) {
	assert.True(at > k.now, "sim: cross-shard delivery in this shard's past")
	e := k.alloc()
	k.seq++
	e.at, e.seq, e.fn = at, k.seq, fn
	k.heap.push(e)
}

// Stop makes Run return at the next window barrier. Coordinator
// context only; a task stops the engine by stopping its own shard's
// kernel instead (k.Stop from task context), which Run observes at
// the barrier.
func (e *Engine) Stop() {
	for _, k := range e.shards {
		k.Stop()
	}
}

// Shutdown unwinds all remaining tasks on every shard (in shard
// order) and releases the window workers. The engine must not be used
// afterwards.
func (e *Engine) Shutdown() {
	if e.work != nil {
		for _, ch := range e.work {
			close(ch)
		}
		e.work = nil
	}
	for _, k := range e.shards {
		k.Shutdown()
	}
}

package sim

import "fractos/internal/assert"

// Chan is a typed FIFO channel between tasks, analogous to a Go
// channel but scheduled under the kernel's virtual clock. A capacity
// of zero means unbounded (sends never block); a positive capacity
// bounds the buffer and blocks senders when full.
//
// Because the kernel serializes task execution, Chan needs no internal
// locking; its operations must only be invoked from task context
// (except the Try* variants, which are also safe from kernel context).
type Chan[T any] struct {
	k      *Kernel
	name   string
	capa   int // 0 = unbounded
	buf    []T
	sendq  []*sendWaiter[T]
	recvq  []*recvWaiter[T]
	closed bool

	// closedMsg is the panic message for sends on a closed channel,
	// pre-built at construction so the Send hot path asserts without
	// formatting (assert.True instead of variadic assert.That).
	closedMsg string

	// freeRecv/freeSend recycle waiter structs across blocking
	// operations on this channel. Only waiters from plain Send/Recv are
	// recycled: a RecvTimeout waiter may still be referenced by its
	// pending timer closure after the receive completes, so those are
	// always freshly allocated. Reuse is deterministic — waiter identity
	// is never observed, and contents are fully reset on reuse.
	freeRecv []*recvWaiter[T]
	freeSend []*sendWaiter[T]
}

type sendWaiter[T any] struct {
	t  *Task
	v  T
	ok bool // set true when the value has been accepted
	rm bool // removed from queue (woken)
}

type recvWaiter[T any] struct {
	t  *Task
	v  T
	ok bool // true if a value was delivered, false if channel closed
	rm bool
}

// NewChan creates a channel. capacity 0 means unbounded.
func NewChan[T any](k *Kernel, name string, capacity int) *Chan[T] {
	return &Chan[T]{k: k, name: name, capa: capacity,
		closedMsg: "sim: send on closed channel " + name}
}

// getRecv returns a recycled (or new) receive waiter for t.
//
//fractos:hotpath
//fractos:pool-acquire chanwaiter
func (c *Chan[T]) getRecv(t *Task) *recvWaiter[T] {
	if n := len(c.freeRecv); n > 0 {
		rw := c.freeRecv[n-1]
		c.freeRecv = c.freeRecv[:n-1]
		*rw = recvWaiter[T]{t: t}
		return rw
	}
	return &recvWaiter[T]{t: t} // fractos:alloc-ok cold refill; steady state recycles via putRecv
}

// putRecv recycles a waiter whose wait has fully completed. The caller
// must guarantee no other reference to rw survives (true for plain
// Recv: the waker removes it from recvq before the task resumes).
//
//fractos:hotpath
//fractos:pool-release chanwaiter
func (c *Chan[T]) putRecv(rw *recvWaiter[T]) {
	var zero T
	rw.v = zero
	rw.t = nil
	c.freeRecv = append(c.freeRecv, rw) // fractos:alloc-ok free-list growth is amortized
}

// getSend returns a recycled (or new) send waiter carrying v.
//
//fractos:hotpath
//fractos:pool-acquire chanwaiter
func (c *Chan[T]) getSend(t *Task, v T) *sendWaiter[T] {
	if n := len(c.freeSend); n > 0 {
		sw := c.freeSend[n-1]
		c.freeSend = c.freeSend[:n-1]
		*sw = sendWaiter[T]{t: t, v: v}
		return sw
	}
	return &sendWaiter[T]{t: t, v: v} // fractos:alloc-ok cold refill; steady state recycles via putSend
}

// putSend recycles a send waiter whose wait has fully completed.
//
//fractos:hotpath
//fractos:pool-release chanwaiter
func (c *Chan[T]) putSend(sw *sendWaiter[T]) {
	var zero T
	sw.v = zero
	sw.t = nil
	c.freeSend = append(c.freeSend, sw) // fractos:alloc-ok free-list growth is amortized
}

// Len reports how many values are buffered.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Close closes the channel: pending and future receives drain the
// buffer and then report ok=false; sends panic.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	// Wake all blocked receivers with ok=false (buffer is necessarily
	// empty if receivers are blocked).
	for _, w := range c.recvq {
		w.rm = true
		w.ok = false
		w.t.wakeAfter(0)
	}
	c.recvq = nil
	// Blocked senders on a closed channel is a programming error; wake
	// them so they can panic in their own context.
	for _, w := range c.sendq {
		w.rm = true
		w.ok = false
		w.t.wakeAfter(0)
	}
	c.sendq = nil
}

// Send delivers v, blocking while a bounded buffer is full.
//
//fractos:hotpath
func (c *Chan[T]) Send(t *Task, v T) {
	assert.True(!c.closed, c.closedMsg)
	// Fast path: hand directly to a blocked receiver.
	if w := c.popRecv(); w != nil {
		w.v = v
		w.ok = true
		w.t.wakeAfter(0)
		return
	}
	if c.capa == 0 || len(c.buf) < c.capa {
		c.buf = append(c.buf, v) // fractos:alloc-ok buffer growth is amortized across the channel's lifetime
		return
	}
	// Bounded and full: block.
	sw := c.getSend(t, v)
	c.sendq = append(c.sendq, sw) // fractos:pool-ok fractos:alloc-ok parked waiter; the waker unlinks it from sendq before putSend reuses it
	t.park()
	ok := sw.ok
	c.putSend(sw)
	assert.True(ok, c.closedMsg)
}

// TrySend delivers v without blocking. It reports false if a bounded
// buffer is full or the channel is closed. Safe from kernel context.
//
//fractos:hotpath
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		return false
	}
	if w := c.popRecv(); w != nil {
		w.v = v
		w.ok = true
		w.t.wakeAfter(0)
		return true
	}
	if c.capa == 0 || len(c.buf) < c.capa {
		c.buf = append(c.buf, v) // fractos:alloc-ok buffer growth is amortized across the channel's lifetime
		return true
	}
	return false
}

// Recv blocks until a value is available. ok is false if the channel
// was closed and drained.
//
//fractos:hotpath
func (c *Chan[T]) Recv(t *Task) (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.takeBuffered()
		return v, true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	rw := c.getRecv(t)
	c.recvq = append(c.recvq, rw) // fractos:pool-ok fractos:alloc-ok parked waiter; the waker unlinks it from recvq before putRecv reuses it
	t.park()
	v, ok = rw.v, rw.ok
	c.putRecv(rw)
	return v, ok
}

// TryRecv receives without blocking; ok is false if nothing was
// available. Safe from kernel context.
//
//fractos:hotpath
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		return c.takeBuffered(), true
	}
	var zero T
	return zero, false
}

// RecvTimeout is Recv with a virtual-time deadline. ok is false on
// timeout or close.
func (c *Chan[T]) RecvTimeout(t *Task, d Time) (v T, ok bool) {
	if len(c.buf) > 0 {
		return c.takeBuffered(), true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	rw := &recvWaiter[T]{t: t}
	c.recvq = append(c.recvq, rw)
	fired := false
	c.k.After(d, func() {
		if rw.rm {
			return // already satisfied
		}
		fired = true
		rw.rm = true
		c.removeRecv(rw)
		t.wakeAfter(0)
	})
	t.park()
	if fired {
		var zero T
		return zero, false
	}
	return rw.v, rw.ok
}

// takeBuffered pops the oldest buffered value. Queues pop by shifting
// in place rather than re-slicing c.buf[1:]: a drifting slice base
// would make every later append reallocate (the freed prefix can
// never be reused), which showed up as thousands of allocations per
// run in the delivery path. Queues are short, so the shift is cheap.
//
//fractos:hotpath
func (c *Chan[T]) takeBuffered() T {
	v := c.buf[0]
	n := copy(c.buf, c.buf[1:])
	var zero T
	c.buf[n] = zero
	c.buf = c.buf[:n]
	// A freed slot may admit a blocked sender.
	if len(c.sendq) > 0 && (c.capa == 0 || len(c.buf) < c.capa) {
		sw := c.sendq[0]
		m := copy(c.sendq, c.sendq[1:])
		c.sendq[m] = nil
		c.sendq = c.sendq[:m]
		sw.rm = true
		sw.ok = true
		c.buf = append(c.buf, sw.v) // fractos:alloc-ok slot was just vacated; append reuses the freed capacity
		sw.t.wakeAfter(0)
	}
	return v
}

// popRecv dequeues the oldest live receive waiter, shifting in place
// (see takeBuffered) so the queue's backing array stays reusable.
//
//fractos:hotpath
func (c *Chan[T]) popRecv() *recvWaiter[T] {
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		n := copy(c.recvq, c.recvq[1:])
		c.recvq[n] = nil
		c.recvq = c.recvq[:n]
		if w.rm {
			continue
		}
		w.rm = true
		return w
	}
	return nil
}

func (c *Chan[T]) removeRecv(rw *recvWaiter[T]) {
	for i, w := range c.recvq {
		if w == rw {
			c.recvq = append(c.recvq[:i], c.recvq[i+1:]...)
			return
		}
	}
}

package sim

import "time"

// Real-time pacing: by default the kernel burns through events as fast
// as the host allows (virtual time is decoupled from wall time). For
// live demos and soak runs, SetRealtime makes Run pace event
// processing against the wall clock, so a virtual microsecond takes
// 1/factor wall microseconds. Determinism is unaffected — only the
// wall-clock pacing changes; event order and virtual timestamps are
// identical with pacing on or off.

// SetRealtime enables wall-clock pacing at the given speed-up factor
// (1.0 = real time, 1000.0 = 1000× faster than real time, 0 disables).
// Must be called before Run.
func (k *Kernel) SetRealtime(factor float64) {
	if factor < 0 {
		factor = 0
	}
	k.rtFactor = factor
	k.rtAnchor = time.Time{}
}

// pace sleeps until the wall clock catches up with the virtual
// timestamp at the configured factor. Called from the Run loop.
func (k *Kernel) pace(at Time) {
	if k.rtFactor <= 0 {
		return
	}
	if k.rtAnchor.IsZero() {
		// Anchor at the current virtual time so the very first
		// advance already paces.
		k.rtAnchor = time.Now() //fractos:nondet-ok realtime pacing is an explicit opt-in feature
		k.rtBase = k.now
	}
	wantWall := time.Duration(float64(at-k.rtBase) / k.rtFactor)
	elapsed := time.Since(k.rtAnchor) //fractos:nondet-ok realtime pacing
	if wantWall > elapsed {
		time.Sleep(wantWall - elapsed) //fractos:nondet-ok realtime pacing
	}
}

// Package sim implements a deterministic discrete-event simulation
// kernel. All FractOS entities (Controllers, Processes, devices, NICs)
// run as cooperatively scheduled actors ("tasks") under a virtual
// clock. Exactly one task executes at any moment; control is handed
// between the kernel and tasks over channels, so task code can be
// written in a natural blocking style while the simulation stays
// deterministic and race-free.
//
// Two runs of the same program over the same kernel produce identical
// event orders and identical virtual timestamps.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured in nanoseconds since the start
// of the simulation. It deliberately mirrors time.Duration so that
// durations and timestamps compose with ordinary arithmetic.
type Time = time.Duration

// event is a scheduled occurrence: either waking a parked task or
// running a closure in kernel context.
type event struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among events at the same instant
	task *Task  // non-nil: wake this task
	fn   func() // non-nil: run in kernel context (must not block)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// killSignal unwinds a task goroutine during Kernel.Shutdown.
type killSignal struct{}

// Kernel is a discrete-event scheduler. Create one with New, populate
// it with Spawn, and drive it with Run or RunUntil.
//
// A Kernel is not safe for concurrent use from multiple OS threads;
// all interaction must happen either from the goroutine that calls
// Run, or from within task functions (which are serialized by the
// kernel itself).
type Kernel struct {
	now      Time
	seq      uint64
	queue    eventHeap
	yield    chan struct{}
	running  *Task
	tasks    map[uint64]*Task
	nextID   uint64
	rng      *rand.Rand
	stopped  bool
	panicMsg string

	// wall-clock pacing (see realtime.go).
	rtFactor float64
	rtAnchor time.Time
	rtBase   Time
}

// New returns an empty kernel with its virtual clock at zero. The seed
// feeds the kernel's deterministic random source (Rand).
func New(seed int64) *Kernel {
	return &Kernel{
		queue: eventHeap{},
		yield: make(chan struct{}),
		tasks: make(map[uint64]*Task),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only
// be used from task or kernel context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Task is the handle a spawned function uses to interact with the
// kernel: sleeping, reading the clock, and (via Chan and Future)
// blocking on communication. A Task handle is only valid inside the
// goroutine it was passed to.
type Task struct {
	k      *Kernel
	id     uint64
	name   string
	resume chan struct{}
	done   bool
	killed bool
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique id, assigned in spawn order.
func (t *Task) ID() uint64 { return t.id }

// Kernel returns the kernel this task runs under.
func (t *Task) Kernel() *Kernel { return t.k }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.k.now }

// Spawn creates a new task executing fn and schedules it to start at
// the current virtual time. It may be called from kernel context
// (before Run, or inside an After closure) or from task context.
func (k *Kernel) Spawn(name string, fn func(t *Task)) *Task {
	k.nextID++
	t := &Task{k: k, id: k.nextID, name: name, resume: make(chan struct{})}
	k.tasks[t.id] = t
	go func() {
		<-t.resume
		defer func() {
			t.done = true
			delete(k.tasks, t.id)
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					// Re-panicking here would crash an unrelated
					// goroutine; surface the panic through the kernel
					// so Run's caller sees it.
					k.fail(fmt.Sprintf("task %q panicked: %v", t.name, r))
				}
			}
			k.yield <- struct{}{}
		}()
		fn(t)
	}()
	k.schedule(&event{at: k.now, task: t})
	return t
}

// fail records a task panic; Run re-panics with this message.
func (k *Kernel) fail(msg string) {
	if k.panicMsg == "" {
		k.panicMsg = msg
	}
}

func (k *Kernel) schedule(e *event) {
	k.seq++
	e.seq = k.seq
	heap.Push(&k.queue, e)
}

// After schedules fn to run in kernel context at now+d. fn must not
// block; to perform blocking work, have fn call Spawn.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(&event{at: k.now + d, fn: fn})
}

// park blocks the calling task until the kernel wakes it.
// Must be called from the running task's goroutine.
func (t *Task) park() {
	t.k.yield <- struct{}{}
	<-t.resume
	if t.killed {
		//fractos:panic-ok cooperative kill: caught by the task trampoline's recover
		panic(killSignal{})
	}
}

// wake marks t runnable at now+d.
func (t *Task) wakeAfter(d Time) {
	t.k.schedule(&event{at: t.k.now + d, task: t})
}

// Sleep suspends the task for d of virtual time.
func (t *Task) Sleep(d Time) {
	if d <= 0 {
		// Even a zero-length sleep is a scheduling point: other work
		// queued at this instant runs first.
		d = 0
	}
	t.wakeAfter(d)
	t.park()
}

// Yield gives other runnable tasks at the current instant a chance to
// run before the calling task continues.
func (t *Task) Yield() { t.Sleep(0) }

// Run executes events until the queue is empty or Stop is called. It
// returns the final virtual time. Run must be called from the
// goroutine that created the kernel.
func (k *Kernel) Run() Time {
	return k.run(-1)
}

// RunUntil executes events with timestamps <= deadline.
func (k *Kernel) RunUntil(deadline Time) Time {
	return k.run(deadline)
}

func (k *Kernel) run(deadline Time) Time {
	for len(k.queue) > 0 && !k.stopped {
		e := k.queue[0]
		if deadline >= 0 && e.at > deadline {
			k.now = deadline
			return k.now
		}
		heap.Pop(&k.queue)
		if e.at > k.now {
			k.pace(e.at)
			k.now = e.at
		}
		switch {
		case e.task != nil:
			if e.task.done {
				continue // stale wake for a finished task
			}
			k.running = e.task
			e.task.resume <- struct{}{}
			<-k.yield
			k.running = nil
			if k.panicMsg != "" {
				msg := k.panicMsg
				k.panicMsg = ""
				//fractos:panic-ok re-surfacing a task's panic on the driver goroutine
				panic(msg)
			}
		case e.fn != nil:
			e.fn()
		}
	}
	return k.now
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Live reports how many tasks exist (runnable or blocked).
func (k *Kernel) Live() int { return len(k.tasks) }

// Shutdown forcibly unwinds every remaining task goroutine. It must be
// called from kernel context (after Run returns). The kernel must not
// be used afterwards.
func (k *Kernel) Shutdown() {
	// Collect ids first: unwinding mutates k.tasks.
	ids := make([]uint64, 0, len(k.tasks))
	for id := range k.tasks {
		ids = append(ids, id)
	}
	// Deterministic order (ids are spawn-ordered).
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		t, ok := k.tasks[id]
		if !ok || t.done {
			continue
		}
		t.killed = true
		t.resume <- struct{}{}
		<-k.yield
	}
	k.stopped = true
}

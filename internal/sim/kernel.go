// Package sim implements a deterministic discrete-event simulation
// kernel. All FractOS entities (Controllers, Processes, devices, NICs)
// run as cooperatively scheduled actors ("tasks") under a virtual
// clock. Exactly one task executes at any moment; control is handed
// between the kernel and tasks over channels, so task code can be
// written in a natural blocking style while the simulation stays
// deterministic and race-free.
//
// Two runs of the same program over the same kernel produce identical
// event orders and identical virtual timestamps.
//
// Hot-path design (see docs/PERFORMANCE.md): events are slab-allocated
// pooled structs ordered by a concrete 4-ary index heap; events
// scheduled for the current instant bypass the heap through a FIFO run
// queue; task goroutines are pooled trampolines (taskpool.go) resumed
// over a per-task handoff channel and yielding through a single shared
// channel, which lets a parking task hand control directly to the next
// runnable task without a round trip through the kernel goroutine.
// None of this changes the event order contract above — the merged pop
// order is exactly the global (timestamp, sequence) order the original
// binary heap produced.
//
// For partition-parallel simulation (conservative-lookahead PDES
// across multiple kernels) see engine.go.
package sim

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"
)

// totalEvents counts every event processed by any kernel in the
// process, for wall-clock events/sec reporting (internal/perf,
// bench_test.go). It is flushed in batches at the end of each run
// loop so the hot path pays only a register increment; simulation
// behavior never reads it, so determinism is unaffected.
var totalEvents atomic.Uint64

// TotalEvents returns the process-wide count of simulation events
// processed so far. Subtract two readings around a workload to get
// its event count.
func TotalEvents() uint64 { return totalEvents.Load() }

// Time is a virtual timestamp, measured in nanoseconds since the start
// of the simulation. It deliberately mirrors time.Duration so that
// durations and timestamps compose with ordinary arithmetic.
type Time = time.Duration

// maxTime is a sentinel beyond every schedulable timestamp.
const maxTime = Time(math.MaxInt64)

// event is a scheduled occurrence: either waking a parked task or
// running a closure in kernel context. Events are pooled by the
// kernel; user code never sees them.
type event struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among events at the same instant
	task *Task  // non-nil: wake this task
	fn   func() // non-nil: run in kernel context (must not block)
	pos  int32  // heap index; posRunq while in the run queue, posFree otherwise
}

const (
	posFree int32 = -1 // not queued (free list or in flight)
	posRunq int32 = -2 // in the same-instant run queue
)

// eventHeap is a concrete 4-ary min-heap of events ordered by
// (at, seq). Compared to container/heap it avoids interface boxing,
// halves the tree depth, and tracks element positions so stale wakes
// can be removed in place.
type eventHeap struct {
	es []*event
}

//fractos:hotpath
func (h *eventHeap) len() int { return len(h.es) }

//fractos:hotpath
func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//fractos:hotpath
//fractos:pool-handoff simevent
func (h *eventHeap) push(e *event) {
	h.es = append(h.es, e) // fractos:alloc-ok heap backing growth is amortized
	h.up(len(h.es) - 1)
}

// pop removes and returns the minimum event.
//
//fractos:hotpath
func (h *eventHeap) pop() *event {
	e := h.es[0]
	n := len(h.es) - 1
	last := h.es[n]
	h.es[n] = nil
	h.es = h.es[:n]
	if n > 0 {
		h.es[0] = last
		last.pos = 0
		h.down(0)
	}
	e.pos = posFree
	return e
}

// remove deletes an arbitrary event from the heap by its tracked
// position (stale-wake cancellation).
//
//fractos:hotpath
func (h *eventHeap) remove(e *event) {
	i := int(e.pos)
	n := len(h.es) - 1
	last := h.es[n]
	h.es[n] = nil
	h.es = h.es[:n]
	if i < n {
		h.es[i] = last
		last.pos = int32(i)
		h.down(i)
		h.up(int(last.pos))
	}
	e.pos = posFree
}

//fractos:hotpath
func (h *eventHeap) up(i int) {
	es := h.es
	e := es[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(e, es[p]) {
			break
		}
		es[i] = es[p]
		es[i].pos = int32(i)
		i = p
	}
	es[i] = e
	e.pos = int32(i)
}

//fractos:hotpath
func (h *eventHeap) down(i int) {
	es := h.es
	n := len(es)
	e := es[i]
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evLess(es[j], es[m]) {
				m = j
			}
		}
		if !evLess(es[m], e) {
			break
		}
		es[i] = es[m]
		es[i].pos = int32(i)
		i = m
	}
	es[i] = e
	e.pos = int32(i)
}

// eventRing is the same-instant FIFO run queue: a power-of-two ring
// buffer of events whose timestamp equals the current virtual time.
// Pushing and popping are O(1) with no ordering work at all.
type eventRing struct {
	buf  []*event
	head int
	n    int
}

//fractos:hotpath
//fractos:pool-handoff simevent
func (r *eventRing) push(e *event) {
	if r.n == len(r.buf) {
		r.grow() // fractos:alloc-ok ring doubling is amortized; steady state never grows
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

func (r *eventRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*event, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

//fractos:hotpath
func (r *eventRing) front() *event { return r.buf[r.head] }

//fractos:hotpath
func (r *eventRing) popFront() *event {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	e.pos = posFree
	return e
}

// killSignal unwinds a task goroutine during Kernel.Shutdown.
type killSignal struct{}

// run-loop bounding modes (loop's mode parameter).
const (
	modeAll      int8 = iota // drain everything
	modeDeadline             // events at <= bound; clamp clock to bound on exit
	modeWindow               // events at < bound; leave clock at the last event
)

// Kernel is a discrete-event scheduler. Create one with New, populate
// it with Spawn, and drive it with Run or RunUntil.
//
// A Kernel is not safe for concurrent use from multiple OS threads;
// all interaction must happen either from the goroutine that calls
// Run, or from within task functions (which are serialized by the
// kernel itself). Under an Engine each shard kernel is driven by at
// most one worker at a time, preserving the same exclusivity.
type Kernel struct {
	now      Time
	seq      uint64
	heap     eventHeap
	runq     eventRing
	free     []*event // pooled event structs
	slab     []event  // slab the free list refills from, carved one struct at a time
	running  *Task
	tasks    map[uint64]*Task
	nextID   uint64
	seed     int64
	rng      *rand.Rand // lazily built from seed on first Rand()
	stopped  bool
	panicMsg string

	// yield is the shared task→kernel handoff: whichever task ends a
	// run burst (parks with nothing else runnable at this instant, or
	// finishes) sends one token here to return control to the loop.
	// Resumes stay per-task over Task.hand.
	yield chan struct{}

	// processed accumulates popped events across loop iterations and
	// same-instant fast-path switches (Task.park); flushed into the
	// process-wide totalEvents counter when a run loop exits.
	processed uint64

	// Engine wiring (nil/zero outside partition-parallel runs).
	eng     *Engine   // owning engine, nil for a standalone kernel
	shard   int       // this kernel's shard index under eng
	outbox  [][]xpost // per-destination-shard cross-shard posts, drained at barriers
	postSeq uint64    // sequence numbers for this shard's cross-shard posts

	// wall-clock pacing (see realtime.go).
	rtFactor float64
	rtAnchor time.Time
	rtBase   Time
}

// New returns an empty kernel with its virtual clock at zero. The seed
// feeds the kernel's deterministic random source (Rand).
func New(seed int64) *Kernel {
	return &Kernel{
		tasks: make(map[uint64]*Task),
		seed:  seed,
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source, built lazily
// from the seed (rand.Source construction is a measurable cost for
// short-lived kernels that never draw randomness). It must only be
// used from this kernel's task or kernel context, and never retained
// by state shared across shards.
func (k *Kernel) Rand() *rand.Rand {
	if k.rng == nil {
		k.rng = rand.New(rand.NewSource(k.seed))
	}
	return k.rng
}

// Task is the handle a spawned function uses to interact with the
// kernel: sleeping, reading the clock, and (via Chan and Future)
// blocking on communication. A Task handle is only valid inside the
// goroutine it was passed to.
type Task struct {
	k    *Kernel
	id   uint64
	name string
	fn   func(t *Task)
	// hand resumes the task: the kernel (or a directly switching
	// sibling task) sends one token here; the task blocks receiving.
	// Yields go the other way over the kernel's shared yield channel.
	hand   chan struct{}
	wake   *event // pending wake event, nil if none queued
	done   bool
	killed bool
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique id, assigned in spawn order.
func (t *Task) ID() uint64 { return t.id }

// Kernel returns the kernel this task runs under.
func (t *Task) Kernel() *Kernel { return t.k }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.k.now }

// Spawn creates a new task executing fn and schedules it to start at
// the current virtual time. It may be called from kernel context
// (before Run, or inside an After closure) or from task context.
// Task structs and their trampoline goroutines come from a pooled
// free list (taskpool.go), so steady-state Spawn allocates nothing.
//
//fractos:hotpath
func (k *Kernel) Spawn(name string, fn func(t *Task)) *Task {
	k.nextID++
	t := getTask()
	t.k, t.id, t.name, t.fn = k, k.nextID, name, fn
	t.done, t.killed = false, false
	k.tasks[t.id] = t // fractos:pool-ok fractos:alloc-ok task table and trampoline share ownership; exec unlinks before the trampoline repools
	t.wake = k.schedule(k.now, t, nil)
	return t
}

// fail records a task panic; Run re-panics with this message.
func (k *Kernel) fail(msg string) {
	if k.panicMsg == "" {
		k.panicMsg = msg
	}
}

// alloc takes an event struct from the pool. Refills carve a slab of
// events in one allocation rather than allocating structs one by one.
//
//fractos:hotpath
//fractos:pool-acquire simevent
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	if len(k.slab) == 0 {
		k.slab = make([]event, 64) // fractos:alloc-ok slab refill: one allocation per 64 events
	}
	e := &k.slab[0]
	k.slab = k.slab[1:]
	e.pos = posFree
	return e
}

// release resets an event and returns it to the pool.
//
//fractos:hotpath
//fractos:pool-release simevent
func (k *Kernel) release(e *event) {
	e.task = nil
	e.fn = nil
	e.pos = posFree
	k.free = append(k.free, e) // fractos:alloc-ok free-list growth is amortized
}

// schedule queues an occurrence at time at. Same-instant events take
// the FIFO run-queue fast path; future events go through the heap.
//
//fractos:hotpath
func (k *Kernel) schedule(at Time, t *Task, fn func()) *event {
	e := k.alloc()
	k.seq++
	e.at, e.seq, e.task, e.fn = at, k.seq, t, fn
	if at == k.now {
		e.pos = posRunq
		k.runq.push(e)
	} else {
		k.heap.push(e)
	}
	return e // fractos:pool-ok the queue owns e after push; the returned handle exists only so cancel can find it
}

// cancel drops a queued event: removed in place from the heap, or
// tombstoned in the run queue (reclaimed on pop).
//
//fractos:hotpath
func (k *Kernel) cancel(e *event) {
	if e.pos >= 0 {
		k.heap.remove(e)
		k.release(e)
		return
	}
	if e.pos == posRunq {
		e.task = nil
		e.fn = nil
	}
}

// After schedules fn to run in kernel context at now+d. fn must not
// block; to perform blocking work, have fn call Spawn.
//
//fractos:hotpath
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, nil, fn)
}

// park blocks the calling task until the kernel wakes it.
// Must be called from the running task's goroutine.
//
// Fast path: if the next event in global (at, seq) order is another
// task's wake at the current instant, control switches directly to
// that task — one channel operation instead of two round trips
// through the kernel goroutine. If it is the calling task's own wake
// (Yield with nothing else runnable), park returns without blocking
// at all. The pop here follows exactly the selection rule of the run
// loop, so event order is byte-identical with the fast path on or off.
//
//fractos:hotpath
func (t *Task) park() {
	k := t.k
	for k.runq.n > 0 && !k.stopped && k.panicMsg == "" &&
		(k.heap.len() == 0 || k.heap.es[0].at != k.now) {
		e := k.runq.front()
		nt := e.task
		if nt == nil {
			if e.fn != nil {
				break // kernel-context closure: the run loop must execute it
			}
			k.runq.popFront() // cancelled tombstone: reclaim and keep scanning
			k.processed++
			k.release(e)
			continue
		}
		if nt.done {
			break // stale wake: let the run loop discard it
		}
		k.runq.popFront()
		k.processed++
		if nt.wake == e {
			nt.wake = nil
		}
		k.release(e)
		if nt == t {
			return // our own wake is next: keep running, no switch at all
		}
		k.running = nt
		nt.hand <- struct{}{} // direct task-to-task switch
		<-t.hand
		if t.killed {
			//fractos:panic-ok cooperative kill: caught by the task trampoline's recover
			panic(killSignal{})
		}
		return
	}
	k.yield <- struct{}{} // nothing runnable here: return control to the run loop
	<-t.hand
	if t.killed {
		//fractos:panic-ok cooperative kill: caught by the task trampoline's recover
		panic(killSignal{})
	}
}

// wakeAfter marks t runnable at now+d. If a wake is already queued for
// the task (it is being re-scheduled), the stale event is dropped from
// the queue instead of leaking until pop: the latest wake wins.
//
//fractos:hotpath
func (t *Task) wakeAfter(d Time) {
	if t.wake != nil {
		t.k.cancel(t.wake)
		t.wake = nil
	}
	t.wake = t.k.schedule(t.k.now+d, t, nil)
}

// Sleep suspends the task for d of virtual time.
//
//fractos:hotpath
func (t *Task) Sleep(d Time) {
	if d <= 0 {
		// Even a zero-length sleep is a scheduling point: other work
		// queued at this instant runs first.
		d = 0
	}
	t.wakeAfter(d)
	t.park()
}

// Yield gives other runnable tasks at the current instant a chance to
// run before the calling task continues.
//
//fractos:hotpath
func (t *Task) Yield() { t.Sleep(0) }

// Run executes events until the queue is empty or Stop is called. It
// returns the final virtual time. Run must be called from the
// goroutine that created the kernel.
func (k *Kernel) Run() Time {
	return k.loop(0, modeAll)
}

// RunUntil executes events with timestamps <= deadline.
func (k *Kernel) RunUntil(deadline Time) Time {
	return k.loop(deadline, modeDeadline)
}

// runWindow executes events with timestamps strictly below limit and
// returns. Unlike RunUntil it never advances the clock to the bound:
// the clock stays at the last processed event, so a later window (or
// a cross-shard delivery between windows) continues seamlessly. Used
// by the Engine's conservative-lookahead loop.
func (k *Kernel) runWindow(limit Time) {
	k.loop(limit, modeWindow)
}

//fractos:hotpath
func (k *Kernel) loop(bound Time, mode int8) Time {
	defer k.flushProcessed()
	for (k.runq.n > 0 || k.heap.len() > 0) && !k.stopped {
		// Choose the next event in global (at, seq) order. Run-queue
		// entries all carry the current timestamp and were sequenced
		// after every same-instant heap entry, so the heap goes first
		// only while its minimum is at the current instant.
		var e *event
		fromHeap := k.runq.n == 0 || (k.heap.len() > 0 && k.heap.es[0].at == k.now)
		if fromHeap {
			e = k.heap.es[0]
		} else {
			e = k.runq.front()
		}
		if mode == modeDeadline && e.at > bound {
			k.now = bound
			return k.now
		}
		if mode == modeWindow && e.at >= bound {
			return k.now
		}
		if fromHeap {
			k.heap.pop()
		} else {
			k.runq.popFront()
		}
		k.processed++
		if e.at > k.now {
			k.pace(e.at)
			k.now = e.at
		}
		switch {
		case e.task != nil:
			t := e.task
			if t.wake == e {
				t.wake = nil
			}
			k.release(e)
			if t.done {
				continue // stale wake for a finished task
			}
			k.running = t
			t.hand <- struct{}{}
			<-k.yield
			k.running = nil
			if k.panicMsg != "" {
				msg := k.panicMsg
				k.panicMsg = ""
				//fractos:panic-ok re-surfacing a task's panic on the driver goroutine
				panic(msg)
			}
		case e.fn != nil:
			fn := e.fn
			k.release(e)
			fn()
		default:
			// Tombstone from a cancelled run-queue entry.
			k.release(e)
		}
	}
	return k.now
}

// flushProcessed publishes the batched event count to the global
// counter when a run loop exits.
func (k *Kernel) flushProcessed() {
	totalEvents.Add(k.processed)
	k.processed = 0
}

// nextAt reports the timestamp of the kernel's earliest pending event.
func (k *Kernel) nextAt() (Time, bool) {
	if k.runq.n > 0 {
		return k.now, true
	}
	if k.heap.len() > 0 {
		return k.heap.es[0].at, true
	}
	return 0, false
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Live reports how many tasks exist (runnable or blocked).
func (k *Kernel) Live() int { return len(k.tasks) }

// Shutdown forcibly unwinds every remaining task goroutine. It must be
// called from kernel context (after Run returns). The kernel must not
// be used afterwards.
func (k *Kernel) Shutdown() {
	// Stopping first disables park's direct-switch fast path, so every
	// unwinding task returns control here rather than resuming stale
	// run-queue work.
	k.stopped = true
	if len(k.tasks) == 0 {
		return // nothing to unwind (and no id-slice/sort allocation)
	}
	// Collect ids first: unwinding mutates k.tasks. Deterministic
	// order (ids are spawn-ordered).
	ids := make([]uint64, 0, len(k.tasks))
	for id := range k.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t, ok := k.tasks[id]
		if !ok || t.done {
			continue
		}
		t.killed = true
		t.hand <- struct{}{}
		<-k.yield
	}
}

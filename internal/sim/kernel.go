// Package sim implements a deterministic discrete-event simulation
// kernel. All FractOS entities (Controllers, Processes, devices, NICs)
// run as cooperatively scheduled actors ("tasks") under a virtual
// clock. Exactly one task executes at any moment; control is handed
// between the kernel and tasks over channels, so task code can be
// written in a natural blocking style while the simulation stays
// deterministic and race-free.
//
// Two runs of the same program over the same kernel produce identical
// event orders and identical virtual timestamps.
//
// Hot-path design (see docs/PERFORMANCE.md): events are pooled structs
// ordered by a concrete 4-ary index heap; events scheduled for the
// current instant bypass the heap through a FIFO run queue; and each
// task parks/resumes over a single reusable handoff channel. None of
// this changes the event order contract above — the merged pop order
// is exactly the global (timestamp, sequence) order the original
// binary heap produced.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"
)

// totalEvents counts every event processed by any kernel in the
// process, for wall-clock events/sec reporting (internal/perf,
// bench_test.go). It is flushed in batches at the end of each run
// loop so the hot path pays only a register increment; simulation
// behavior never reads it, so determinism is unaffected.
var totalEvents atomic.Uint64

// TotalEvents returns the process-wide count of simulation events
// processed so far. Subtract two readings around a workload to get
// its event count.
func TotalEvents() uint64 { return totalEvents.Load() }

// Time is a virtual timestamp, measured in nanoseconds since the start
// of the simulation. It deliberately mirrors time.Duration so that
// durations and timestamps compose with ordinary arithmetic.
type Time = time.Duration

// event is a scheduled occurrence: either waking a parked task or
// running a closure in kernel context. Events are pooled by the
// kernel; user code never sees them.
type event struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among events at the same instant
	task *Task  // non-nil: wake this task
	fn   func() // non-nil: run in kernel context (must not block)
	pos  int32  // heap index; posRunq while in the run queue, posFree otherwise
}

const (
	posFree int32 = -1 // not queued (free list or in flight)
	posRunq int32 = -2 // in the same-instant run queue
)

// eventHeap is a concrete 4-ary min-heap of events ordered by
// (at, seq). Compared to container/heap it avoids interface boxing,
// halves the tree depth, and tracks element positions so stale wakes
// can be removed in place.
type eventHeap struct {
	es []*event
}

//fractos:hotpath
func (h *eventHeap) len() int { return len(h.es) }

//fractos:hotpath
func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//fractos:hotpath
//fractos:pool-handoff simevent
func (h *eventHeap) push(e *event) {
	h.es = append(h.es, e) // fractos:alloc-ok heap backing growth is amortized
	h.up(len(h.es) - 1)
}

// pop removes and returns the minimum event.
//
//fractos:hotpath
func (h *eventHeap) pop() *event {
	e := h.es[0]
	n := len(h.es) - 1
	last := h.es[n]
	h.es[n] = nil
	h.es = h.es[:n]
	if n > 0 {
		h.es[0] = last
		last.pos = 0
		h.down(0)
	}
	e.pos = posFree
	return e
}

// remove deletes an arbitrary event from the heap by its tracked
// position (stale-wake cancellation).
//
//fractos:hotpath
func (h *eventHeap) remove(e *event) {
	i := int(e.pos)
	n := len(h.es) - 1
	last := h.es[n]
	h.es[n] = nil
	h.es = h.es[:n]
	if i < n {
		h.es[i] = last
		last.pos = int32(i)
		h.down(i)
		h.up(int(last.pos))
	}
	e.pos = posFree
}

//fractos:hotpath
func (h *eventHeap) up(i int) {
	es := h.es
	e := es[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(e, es[p]) {
			break
		}
		es[i] = es[p]
		es[i].pos = int32(i)
		i = p
	}
	es[i] = e
	e.pos = int32(i)
}

//fractos:hotpath
func (h *eventHeap) down(i int) {
	es := h.es
	n := len(es)
	e := es[i]
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evLess(es[j], es[m]) {
				m = j
			}
		}
		if !evLess(es[m], e) {
			break
		}
		es[i] = es[m]
		es[i].pos = int32(i)
		i = m
	}
	es[i] = e
	e.pos = int32(i)
}

// eventRing is the same-instant FIFO run queue: a power-of-two ring
// buffer of events whose timestamp equals the current virtual time.
// Pushing and popping are O(1) with no ordering work at all.
type eventRing struct {
	buf  []*event
	head int
	n    int
}

//fractos:hotpath
//fractos:pool-handoff simevent
func (r *eventRing) push(e *event) {
	if r.n == len(r.buf) {
		r.grow() // fractos:alloc-ok ring doubling is amortized; steady state never grows
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

func (r *eventRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*event, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

//fractos:hotpath
func (r *eventRing) front() *event { return r.buf[r.head] }

//fractos:hotpath
func (r *eventRing) popFront() *event {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	e.pos = posFree
	return e
}

// killSignal unwinds a task goroutine during Kernel.Shutdown.
type killSignal struct{}

// Kernel is a discrete-event scheduler. Create one with New, populate
// it with Spawn, and drive it with Run or RunUntil.
//
// A Kernel is not safe for concurrent use from multiple OS threads;
// all interaction must happen either from the goroutine that calls
// Run, or from within task functions (which are serialized by the
// kernel itself).
type Kernel struct {
	now      Time
	seq      uint64
	heap     eventHeap
	runq     eventRing
	free     []*event // pooled event structs
	running  *Task
	tasks    map[uint64]*Task
	nextID   uint64
	rng      *rand.Rand
	stopped  bool
	panicMsg string

	// wall-clock pacing (see realtime.go).
	rtFactor float64
	rtAnchor time.Time
	rtBase   Time
}

// New returns an empty kernel with its virtual clock at zero. The seed
// feeds the kernel's deterministic random source (Rand).
func New(seed int64) *Kernel {
	return &Kernel{
		tasks: make(map[uint64]*Task),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only
// be used from task or kernel context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Task is the handle a spawned function uses to interact with the
// kernel: sleeping, reading the clock, and (via Chan and Future)
// blocking on communication. A Task handle is only valid inside the
// goroutine it was passed to.
type Task struct {
	k    *Kernel
	id   uint64
	name string
	// hand is the task's single handoff channel: the kernel sends one
	// token to resume the task; the task sends it back to yield.
	// Strict ping-pong alternation over an unbuffered channel keeps
	// exactly one side runnable at a time.
	hand   chan struct{}
	wake   *event // pending wake event, nil if none queued
	done   bool
	killed bool
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique id, assigned in spawn order.
func (t *Task) ID() uint64 { return t.id }

// Kernel returns the kernel this task runs under.
func (t *Task) Kernel() *Kernel { return t.k }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.k.now }

// Spawn creates a new task executing fn and schedules it to start at
// the current virtual time. It may be called from kernel context
// (before Run, or inside an After closure) or from task context.
func (k *Kernel) Spawn(name string, fn func(t *Task)) *Task {
	k.nextID++
	t := &Task{k: k, id: k.nextID, name: name, hand: make(chan struct{})}
	k.tasks[t.id] = t
	go func() {
		<-t.hand
		defer func() {
			t.done = true
			delete(k.tasks, t.id)
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					// Re-panicking here would crash an unrelated
					// goroutine; surface the panic through the kernel
					// so Run's caller sees it.
					k.fail(fmt.Sprintf("task %q panicked: %v", t.name, r))
				}
			}
			t.hand <- struct{}{}
		}()
		fn(t)
	}()
	t.wake = k.schedule(k.now, t, nil)
	return t
}

// fail records a task panic; Run re-panics with this message.
func (k *Kernel) fail(msg string) {
	if k.panicMsg == "" {
		k.panicMsg = msg
	}
}

// alloc takes an event struct from the pool (or allocates one).
//
//fractos:hotpath
//fractos:pool-acquire simevent
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &event{pos: posFree} // fractos:alloc-ok cold refill; steady state recycles via release
}

// release resets an event and returns it to the pool.
//
//fractos:hotpath
//fractos:pool-release simevent
func (k *Kernel) release(e *event) {
	e.task = nil
	e.fn = nil
	e.pos = posFree
	k.free = append(k.free, e) // fractos:alloc-ok free-list growth is amortized
}

// schedule queues an occurrence at time at. Same-instant events take
// the FIFO run-queue fast path; future events go through the heap.
//
//fractos:hotpath
func (k *Kernel) schedule(at Time, t *Task, fn func()) *event {
	e := k.alloc()
	k.seq++
	e.at, e.seq, e.task, e.fn = at, k.seq, t, fn
	if at == k.now {
		e.pos = posRunq
		k.runq.push(e)
	} else {
		k.heap.push(e)
	}
	return e // fractos:pool-ok the queue owns e after push; the returned handle exists only so cancel can find it
}

// cancel drops a queued event: removed in place from the heap, or
// tombstoned in the run queue (reclaimed on pop).
//
//fractos:hotpath
func (k *Kernel) cancel(e *event) {
	if e.pos >= 0 {
		k.heap.remove(e)
		k.release(e)
		return
	}
	if e.pos == posRunq {
		e.task = nil
		e.fn = nil
	}
}

// After schedules fn to run in kernel context at now+d. fn must not
// block; to perform blocking work, have fn call Spawn.
//
//fractos:hotpath
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, nil, fn)
}

// park blocks the calling task until the kernel wakes it.
// Must be called from the running task's goroutine.
//
//fractos:hotpath
func (t *Task) park() {
	t.hand <- struct{}{}
	<-t.hand
	if t.killed {
		//fractos:panic-ok cooperative kill: caught by the task trampoline's recover
		panic(killSignal{})
	}
}

// wakeAfter marks t runnable at now+d. If a wake is already queued for
// the task (it is being re-scheduled), the stale event is dropped from
// the queue instead of leaking until pop: the latest wake wins.
//
//fractos:hotpath
func (t *Task) wakeAfter(d Time) {
	if t.wake != nil {
		t.k.cancel(t.wake)
		t.wake = nil
	}
	t.wake = t.k.schedule(t.k.now+d, t, nil)
}

// Sleep suspends the task for d of virtual time.
//
//fractos:hotpath
func (t *Task) Sleep(d Time) {
	if d <= 0 {
		// Even a zero-length sleep is a scheduling point: other work
		// queued at this instant runs first.
		d = 0
	}
	t.wakeAfter(d)
	t.park()
}

// Yield gives other runnable tasks at the current instant a chance to
// run before the calling task continues.
//
//fractos:hotpath
func (t *Task) Yield() { t.Sleep(0) }

// Run executes events until the queue is empty or Stop is called. It
// returns the final virtual time. Run must be called from the
// goroutine that created the kernel.
func (k *Kernel) Run() Time {
	return k.run(-1)
}

// RunUntil executes events with timestamps <= deadline.
func (k *Kernel) RunUntil(deadline Time) Time {
	return k.run(deadline)
}

//fractos:hotpath
func (k *Kernel) run(deadline Time) Time {
	var processed uint64
	defer func() { totalEvents.Add(processed) }() // fractos:alloc-ok one closure per Run call, not per event
	for (k.runq.n > 0 || k.heap.len() > 0) && !k.stopped {
		// Choose the next event in global (at, seq) order. Run-queue
		// entries all carry the current timestamp and were sequenced
		// after every same-instant heap entry, so the heap goes first
		// only while its minimum is at the current instant.
		var e *event
		if k.runq.n > 0 {
			if k.heap.len() > 0 && k.heap.es[0].at == k.now {
				e = k.heap.es[0]
				if deadline >= 0 && e.at > deadline {
					k.now = deadline
					return k.now
				}
				k.heap.pop()
			} else {
				e = k.runq.front()
				if deadline >= 0 && e.at > deadline {
					k.now = deadline
					return k.now
				}
				k.runq.popFront()
			}
		} else {
			e = k.heap.es[0]
			if deadline >= 0 && e.at > deadline {
				k.now = deadline
				return k.now
			}
			k.heap.pop()
		}
		processed++
		if e.at > k.now {
			k.pace(e.at)
			k.now = e.at
		}
		switch {
		case e.task != nil:
			t := e.task
			if t.wake == e {
				t.wake = nil
			}
			k.release(e)
			if t.done {
				continue // stale wake for a finished task
			}
			k.running = t
			t.hand <- struct{}{}
			<-t.hand
			k.running = nil
			if k.panicMsg != "" {
				msg := k.panicMsg
				k.panicMsg = ""
				//fractos:panic-ok re-surfacing a task's panic on the driver goroutine
				panic(msg)
			}
		case e.fn != nil:
			fn := e.fn
			k.release(e)
			fn()
		default:
			// Tombstone from a cancelled run-queue entry.
			k.release(e)
		}
	}
	return k.now
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Live reports how many tasks exist (runnable or blocked).
func (k *Kernel) Live() int { return len(k.tasks) }

// Shutdown forcibly unwinds every remaining task goroutine. It must be
// called from kernel context (after Run returns). The kernel must not
// be used afterwards.
func (k *Kernel) Shutdown() {
	// Collect ids first: unwinding mutates k.tasks. Deterministic
	// order (ids are spawn-ordered).
	ids := make([]uint64, 0, len(k.tasks))
	for id := range k.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t, ok := k.tasks[id]
		if !ok || t.done {
			continue
		}
		t.killed = true
		t.hand <- struct{}{}
		<-t.hand
	}
	k.stopped = true
}

package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// TestEngineSingleShardMatchesKernel pins that a 1-shard engine is
// indistinguishable from a bare kernel: same seed stream, same event
// schedule, same final time.
func TestEngineSingleShardMatchesKernel(t *testing.T) {
	workload := func(k *Kernel) []Time {
		var log []Time
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn(fmt.Sprintf("w%d", i), func(tk *Task) {
				for j := 0; j < 5; j++ {
					tk.Sleep(Time(i+1) * 100)
					log = append(log, tk.Now())
				}
			})
		}
		return log
	}

	k := New(7)
	logA := workload(k)
	endA := k.Run()
	k.Shutdown()

	eng := NewEngine(7, 1)
	logB := workload(eng.Shard(0))
	endB := eng.Run()
	eng.Shutdown()

	if endA != endB {
		t.Fatalf("final time: kernel %d vs 1-shard engine %d", endA, endB)
	}
	if len(logA) != len(logB) {
		t.Fatalf("log length: %d vs %d", len(logA), len(logB))
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("log[%d]: %d vs %d", i, logA[i], logB[i])
		}
	}
	if eng.Shard(0).Rand().Int63() != New(7).Rand().Int63() {
		t.Fatal("shard 0 must keep the engine seed")
	}
}

type postRec struct {
	at      Time
	payload int
}

// runPostTopology executes one randomized single-source-per-
// destination topology (a node permutation) on an engine with the
// given shard count and returns the per-node delivery logs. Delivery
// sub-microsecond offsets are distinct per source node, so no two
// events at a destination ever tie on timestamp and the expected
// schedule is unique.
func runPostTopology(t *testing.T, seed int64, shards int, perm []int, msgs int, gaps []Time) [][]postRec {
	t.Helper()
	nodes := len(perm)
	const la = Time(500)
	eng := NewEngine(seed, shards)
	eng.SetLookahead(la)
	owner := func(n int) int { return n * shards / nodes }
	logs := make([][]postRec, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		dstNode := perm[i]
		dstShard := owner(dstNode)
		dstK := eng.Shard(dstShard)
		k := eng.Shard(owner(i))
		k.Spawn(fmt.Sprintf("sender%d", i), func(tk *Task) {
			for j := 0; j < msgs; j++ {
				tk.Sleep(gaps[i])
				payload := i*1000 + j
				tk.Kernel().Post(dstShard, la+Time(i), func() {
					logs[dstNode] = append(logs[dstNode], postRec{at: dstK.Now(), payload: payload})
				})
			}
		})
	}
	eng.Run()
	eng.Shutdown()
	return logs
}

// TestEnginePostOrdering is the property test for the conservative
// windowing protocol: on randomized topologies, cross-shard delivery
// order and timestamps at every destination match the single-shard
// schedule exactly, for every shard count.
func TestEnginePostOrdering(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		nodes := 4 + rng.Intn(5) // 4..8
		perm := rng.Perm(nodes)
		msgs := 10 + rng.Intn(20)
		gaps := make([]Time, nodes)
		for i := range gaps {
			// Microsecond-grid sleeps keep sender wakes off the
			// sub-microsecond delivery offsets.
			gaps[i] = Time(1+rng.Intn(9)) * 1000
		}
		want := runPostTopology(t, 42, 1, perm, msgs, gaps)
		for _, shards := range []int{2, 3, 4} {
			got := runPostTopology(t, 42, shards, perm, msgs, gaps)
			for n := range want {
				if len(got[n]) != len(want[n]) {
					t.Fatalf("trial %d shards %d node %d: %d deliveries, want %d",
						trial, shards, n, len(got[n]), len(want[n]))
				}
				for i := range want[n] {
					if got[n][i] != want[n][i] {
						t.Fatalf("trial %d shards %d node %d delivery %d: %+v, want %+v",
							trial, shards, n, i, got[n][i], want[n][i])
					}
				}
			}
		}
	}
}

// TestEngineDeterminismAcrossGOMAXPROCS pins that parallel window
// execution does not leak scheduling nondeterminism into results.
func TestEngineDeterminismAcrossGOMAXPROCS(t *testing.T) {
	perm := []int{3, 0, 1, 2}
	gaps := []Time{1000, 2000, 3000, 4000}
	var runs [][][]postRec
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		runs = append(runs, runPostTopology(t, 9, 4, perm, 25, gaps))
		runtime.GOMAXPROCS(old)
	}
	for n := range runs[0] {
		if len(runs[0][n]) != len(runs[1][n]) {
			t.Fatalf("node %d: delivery counts differ across GOMAXPROCS", n)
		}
		for i := range runs[0][n] {
			if runs[0][n][i] != runs[1][n][i] {
				t.Fatalf("node %d delivery %d differs across GOMAXPROCS: %+v vs %+v",
					n, i, runs[0][n][i], runs[1][n][i])
			}
		}
	}
}

// TestEngineShardSeedsSplit pins that non-zero shards draw
// independent, deterministic random streams.
func TestEngineShardSeedsSplit(t *testing.T) {
	a := NewEngine(5, 4)
	b := NewEngine(5, 4)
	for i := 0; i < 4; i++ {
		if a.Shard(i).Rand().Int63() != b.Shard(i).Rand().Int63() {
			t.Fatalf("shard %d stream not deterministic", i)
		}
	}
	if shardSeed(5, 1) == shardSeed(5, 2) || shardSeed(5, 1) == 5 {
		t.Fatal("shard seeds must differ")
	}
}

// TestEngineTaskPanicPropagates pins that a panic inside a task on
// any shard surfaces from Engine.Run on the driver goroutine.
func TestEngineTaskPanicPropagates(t *testing.T) {
	eng := NewEngine(1, 2)
	eng.SetLookahead(100)
	// Keep shard 0 busy so the parallel path is exercised.
	eng.Shard(0).Spawn("busy", func(tk *Task) {
		for i := 0; i < 100; i++ {
			tk.Sleep(50)
		}
	})
	eng.Shard(1).Spawn("boom", func(tk *Task) {
		tk.Sleep(300)
		panic("engine-test-boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from Engine.Run")
		}
		if msg, ok := r.(string); !ok || msg != `task "boom" panicked: engine-test-boom` {
			t.Fatalf("unexpected panic payload: %v", r)
		}
		eng.Shutdown()
	}()
	eng.Run()
}

// TestEngineStopFromTask pins that a task stopping its own shard's
// kernel halts the whole engine at the next barrier.
func TestEngineStopFromTask(t *testing.T) {
	eng := NewEngine(1, 2)
	eng.SetLookahead(100)
	steps := 0
	eng.Shard(0).Spawn("counter", func(tk *Task) {
		for {
			tk.Sleep(100)
			steps++
		}
	})
	eng.Shard(1).Spawn("stopper", func(tk *Task) {
		tk.Sleep(1000)
		tk.Kernel().Stop()
	})
	eng.Run()
	eng.Shutdown()
	if steps == 0 || steps > 12 {
		t.Fatalf("engine did not stop near the stopper's deadline: %d steps", steps)
	}
	if eng.Shard(0).Live() != 0 || eng.Shard(1).Live() != 0 {
		t.Fatal("Shutdown left live tasks")
	}
}

// TestTaskPoolRecycles pins the Spawn fast path: steady-state spawns
// reuse pooled Task structs and parked goroutines instead of
// allocating.
func TestTaskPoolRecycles(t *testing.T) {
	// Warm the pool with more tasks than the second kernel will hold
	// live at once, so its measured spawns never hit the cold path.
	k := New(1)
	total := 0
	for i := 0; i < 100; i++ {
		k.Spawn("unit", func(tk *Task) {
			tk.Sleep(10)
			total++
		})
	}
	k.Run()
	if total != 100 {
		t.Fatalf("ran %d of 100 tasks", total)
	}
	k.Shutdown()

	// Trampolines repool asynchronously after yielding; wait until the
	// free stack has absorbed the finished tasks before measuring.
	for i := 0; i < 1000; i++ {
		taskPool.mu.Lock()
		n := len(taskPool.free)
		taskPool.mu.Unlock()
		if n >= 100 {
			break
		}
		runtime.Gosched()
	}

	// A second kernel reusing the warmed pool must behave identically.
	k2 := New(1)
	total2 := 0
	for i := 0; i < 50; i++ {
		k2.Spawn("unit", func(tk *Task) {
			tk.Sleep(10)
			total2++
		})
	}
	extra := func(tk *Task) { total2++ }
	allocs := testing.AllocsPerRun(10, func() {
		k2.Spawn("extra", extra)
	})
	k2.Run()
	k2.Shutdown()
	if total2 != 50+11 {
		t.Fatalf("ran %d tasks, want %d", total2, 61)
	}
	// Warm spawns: no Task/goroutine/channel allocations (the task
	// table insert and event slab refill may allocate occasionally).
	if !raceEnabled && allocs > 1 {
		t.Fatalf("warm Spawn allocates %.1f times per call", allocs)
	}
}

// TestDirectSwitchKeepsOrder pins the park fast path against the
// kernel-loop scheduling order: two tasks ping-ponging over channels
// at one instant interleave exactly FIFO.
func TestDirectSwitchKeepsOrder(t *testing.T) {
	k := New(3)
	ch := NewChan[int](k, "pp", 1)
	var order []int
	k.Spawn("a", func(tk *Task) {
		for i := 0; i < 5; i++ {
			ch.Send(tk, i)
			order = append(order, 100+i)
			tk.Yield()
		}
	})
	k.Spawn("b", func(tk *Task) {
		for i := 0; i < 5; i++ {
			v, ok := ch.Recv(tk)
			if !ok {
				t.Errorf("channel closed early")
				return
			}
			order = append(order, 200+v)
		}
	})
	k.Run()
	k.Shutdown()
	want := []int{100, 200, 101, 201, 102, 202, 103, 203, 104, 204}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

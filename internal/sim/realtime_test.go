package sim

import (
	"testing"
	"time"
)

// TestRealtimePacingSlowsWallClock: with pacing enabled, 10ms of
// virtual time takes at least 10ms/factor of wall time.
func TestRealtimePacingSlowsWallClock(t *testing.T) {
	k := New(1)
	k.SetRealtime(10) // 10x faster than real time
	k.Spawn("sleeper", func(tk *Task) {
		tk.Sleep(50 * time.Millisecond) // 50ms virtual → ≥5ms wall
	})
	start := time.Now()
	k.Run()
	wall := time.Since(start)
	if wall < 4*time.Millisecond {
		t.Errorf("50ms virtual at 10x took %v wall, want ≥~5ms", wall)
	}
	k.Shutdown()
}

// TestRealtimePacingPreservesVirtualResults: pacing changes wall-clock
// behaviour only; virtual timestamps are identical.
func TestRealtimePacingPreservesVirtualResults(t *testing.T) {
	measure := func(factor float64) Time {
		k := New(7)
		if factor > 0 {
			k.SetRealtime(factor)
		}
		var end Time
		ch := NewChan[int](k, "c", 0)
		k.Spawn("a", func(tk *Task) {
			tk.Sleep(2 * time.Millisecond)
			ch.Send(tk, 1)
		})
		k.Spawn("b", func(tk *Task) {
			ch.Recv(tk)
			tk.Sleep(3 * time.Millisecond)
			end = tk.Now()
		})
		k.Run()
		k.Shutdown()
		return end
	}
	fast := measure(0)
	paced := measure(1000)
	if fast != paced {
		t.Errorf("virtual end differs: unpaced %v vs paced %v", fast, paced)
	}
}

// TestRealtimeDisabledByDefault: without SetRealtime, a long virtual
// run completes near-instantly in wall time.
func TestRealtimeDisabledByDefault(t *testing.T) {
	k := New(1)
	k.Spawn("sleeper", func(tk *Task) { tk.Sleep(10 * time.Second) })
	start := time.Now()
	k.Run()
	if wall := time.Since(start); wall > 100*time.Millisecond {
		t.Errorf("10s virtual took %v wall without pacing", wall)
	}
	k.Shutdown()
}

// Package fabric models the data-center network of the FractOS
// testbed: a small cluster of nodes with RoCE NICs and optional
// SmartNICs, joined by a 10 Gbps switch (Table 2 of the paper).
//
// The fabric is the substitution point for the hardware the paper
// uses: every message is really serialized with the wire codec, its
// byte length is charged against link bandwidth, and per-class
// (control vs data) message and byte counters feed the
// traffic-reduction experiments. RDMA read/write/third-party-copy
// primitives move real bytes between registered memory arenas with
// modeled latency, standing in for the verbs API.
package fabric

import (
	"fmt"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

// EndpointID identifies an attached entity (Process or Controller).
type EndpointID uint32

// Domain says where on a node an endpoint executes.
type Domain uint8

const (
	// Host is the node's main CPU (processes, CPU controllers).
	Host Domain = iota
	// SNIC is the node's SmartNIC (BlueField-style ARM cores).
	SNIC
)

func (d Domain) String() string {
	if d == SNIC {
		return "snic"
	}
	return "host"
}

// Location places an endpoint on the cluster.
type Location struct {
	Node   int
	Domain Domain
}

func (l Location) String() string { return fmt.Sprintf("n%d/%s", l.Node, l.Domain) }

// Profile holds the latency/bandwidth calibration of the fabric. The
// defaults reproduce the measurements of Table 3 and the RDMA numbers
// quoted in §6.1.
type Profile struct {
	// HostExit/HostEntry: cost of a message leaving/entering a
	// host-CPU endpoint through the NIC (PCIe + doorbell + poll).
	HostExit  sim.Time
	HostEntry sim.Time
	// SNICExit/SNICEntry: the same for endpoints on the SmartNIC
	// itself. Entry is slower than exit: the wimpy ARM cores pay more
	// to receive and demultiplex than to post a send.
	SNICExit  sim.Time
	SNICEntry sim.Time
	// NICTurn: latency through the local NIC for same-node traffic.
	NICTurn sim.Time
	// CrossNode: one-way wire+switch latency between nodes.
	CrossNode sim.Time
	// RDMARemote: per-direction NIC-only cost at the passive side of
	// an RDMA operation (no CPU involvement).
	RDMARemote sim.Time
	// WireBW: link bandwidth in bytes/second (10 Gbps default).
	WireBW float64
	// LocalBW: bandwidth for same-node transfers (PCIe-bound).
	LocalBW float64
}

// DefaultProfile returns the calibration used throughout the
// evaluation (Table 2's 10 Gbps fabric; Table 3's latencies).
func DefaultProfile() Profile {
	return Profile{
		HostExit:   600 * nanosecond,
		HostEntry:  610 * nanosecond,
		SNICExit:   300 * nanosecond,
		SNICEntry:  2170 * nanosecond,
		NICTurn:    0,
		CrossNode:  850 * nanosecond,
		RDMARemote: 250 * nanosecond,
		WireBW:     1.25e9, // 10 Gbps
		LocalBW:    6.0e9,  // PCIe loopback
	}
}

const nanosecond = sim.Time(1)

// exit returns the sender-side latency for a domain.
//
//fractos:hotpath
func (p *Profile) exit(d Domain) sim.Time {
	if d == SNIC {
		return p.SNICExit
	}
	return p.HostExit
}

// entry returns the receiver-side latency for a domain.
//
//fractos:hotpath
func (p *Profile) entry(d Domain) sim.Time {
	if d == SNIC {
		return p.SNICEntry
	}
	return p.HostEntry
}

// Delivery is a message as it arrives at an endpoint's inbox.
type Delivery struct {
	From  EndpointID
	Msg   wire.Message
	Bytes int
}

// Endpoint is an attached entity with an inbox and (optionally) an
// RDMA-registered memory arena.
type Endpoint struct {
	ID    EndpointID
	Name  string
	Loc   Location
	Inbox *sim.Chan[Delivery]

	// arena is materialized lazily on first byte access: many endpoints
	// (notably per-cluster controller bounce arenas in the evaluation
	// sweeps) register large arenas that are never touched, and the
	// registration size alone drives the timing model. arenaSize is the
	// registered size; arena stays nil until Arena() is called.
	arena        []byte
	arenaSize    int
	disconnected bool
}

// Arena returns the endpoint's registered memory, materializing the
// full backing storage on first use. Local code (the owning Process)
// accesses it directly; remote access goes through the RDMA
// primitives. Once Arena has been called the backing store is final:
// retained slices stay valid and all later RDMA traffic lands in them.
func (e *Endpoint) Arena() []byte {
	if len(e.arena) < e.arenaSize {
		nb := make([]byte, e.arenaSize)
		copy(nb, e.arena)
		e.arena = nb
	}
	return e.arena
}

// arenaRange returns the arena bytes [off, off+n), materializing only
// enough backing storage (a prefix, grown geometrically) to cover the
// range. The fabric's RDMA copy path uses this so endpoints whose
// arenas are touched purely through RDMA — Controller bounce pools
// above all — pay for the bytes they actually use, not the registered
// size. Callers must not retain the returned slice across other arena
// operations: a later growth re-allocates the backing store (growth
// can no longer happen once Arena() has materialized the full size,
// which is why externally retained Arena() slices stay safe).
func (e *Endpoint) arenaRange(off, n int) []byte {
	if need := off + n; need > len(e.arena) {
		newLen := 2 * len(e.arena)
		if newLen < need {
			newLen = need
		}
		if newLen > e.arenaSize {
			newLen = e.arenaSize
		}
		nb := make([]byte, newLen)
		copy(nb, e.arena)
		e.arena = nb
	}
	return e.arena[off : off+n]
}

// ArenaSize returns the registered arena size without materializing
// the backing storage. Bounds checks and capacity accounting should
// use this instead of len(Arena()).
func (e *Endpoint) ArenaSize() int { return e.arenaSize }

// Stats are the fabric's cumulative traffic counters, split by
// message class.
type Stats struct {
	ControlMsgs  int64
	ControlBytes int64
	DataMsgs     int64
	DataBytes    int64
	// CrossNodeMsgs/Bytes count only traffic that traversed the
	// switch (the "network tax" the paper measures); same-node
	// loopback and PCIe traffic is excluded. The Ctrl/Data split
	// distinguishes control-plane messages from bulk transfers.
	CrossNodeMsgs      int64
	CrossNodeBytes     int64
	CrossNodeCtrlMsgs  int64
	CrossNodeDataMsgs  int64
	CrossNodeDataBytes int64
	// RDMAOps/Bytes count one-sided RDMA transfers (also included in
	// Data and, when remote, CrossNode).
	RDMAOps   int64
	RDMABytes int64
}

// Sub returns s - o, for measuring an interval between snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		ControlMsgs:        s.ControlMsgs - o.ControlMsgs,
		ControlBytes:       s.ControlBytes - o.ControlBytes,
		DataMsgs:           s.DataMsgs - o.DataMsgs,
		DataBytes:          s.DataBytes - o.DataBytes,
		CrossNodeMsgs:      s.CrossNodeMsgs - o.CrossNodeMsgs,
		CrossNodeBytes:     s.CrossNodeBytes - o.CrossNodeBytes,
		CrossNodeCtrlMsgs:  s.CrossNodeCtrlMsgs - o.CrossNodeCtrlMsgs,
		CrossNodeDataMsgs:  s.CrossNodeDataMsgs - o.CrossNodeDataMsgs,
		CrossNodeDataBytes: s.CrossNodeDataBytes - o.CrossNodeDataBytes,
		RDMAOps:            s.RDMAOps - o.RDMAOps,
		RDMABytes:          s.RDMABytes - o.RDMABytes,
	}
}

// TotalMsgs returns control+data message count.
func (s Stats) TotalMsgs() int64 { return s.ControlMsgs + s.DataMsgs }

// TotalBytes returns control+data byte count.
func (s Stats) TotalBytes() int64 { return s.ControlBytes + s.DataBytes }

// TraceEvent describes one fabric transfer, for the trace tool and
// tests.
type TraceEvent struct {
	At    sim.Time
	From  EndpointID
	To    EndpointID
	Type  wire.Type // 0 for RDMA transfers
	RDMA  bool
	Bytes int
	Class wire.Class
	// Lost marks a frame the chaos layer consumed (probabilistic drop
	// or a cut path): it occupied the wire but was never delivered.
	Lost bool
}

// link models a transmission resource with bandwidth: transmissions
// serialize (a new one starts no earlier than the previous finished).
type link struct {
	bw        float64
	busyUntil sim.Time
}

// reserve books n bytes starting at now, returning when the
// transmission completes on this link.
//
//fractos:hotpath
func (l *link) reserve(now sim.Time, n int) sim.Time {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	dur := sim.Time(float64(n) / l.bw * 1e9)
	l.busyUntil = start + dur
	return l.busyUntil
}

// nodeLinks bundles a node's three transmission resources: switch
// uplink (tx), switch downlink (rx), and the local/PCIe path. Stored
// by value in a slice indexed by node so the hot send path does no
// map lookups and no per-link pointer chasing.
type nodeLinks struct {
	up, dn, loc link
	valid       bool
}

// Net is the simulated fabric.
type Net struct {
	k    *sim.Kernel
	prof Profile
	// eps is indexed by EndpointID; IDs are assigned sequentially from 1
	// so index 0 stays nil. A slice keeps the two endpoint resolutions on
	// the per-message send path branch-predictable and map-free.
	eps   []*Endpoint
	stats Stats
	trace func(TraceEvent)
	links []nodeLinks // indexed by node number
	// faults is the chaos layer (faults.go); nil when disabled, which
	// keeps the fault-free send path branch-cheap and byte-identical
	// to a build without the layer.
	faults *faultState
}

// New creates a fabric over the given kernel with profile p.
func New(k *sim.Kernel, p Profile) *Net {
	return &Net{
		k:    k,
		prof: p,
		eps:  make([]*Endpoint, 1), // index 0 unused; IDs start at 1
	}
}

// Kernel returns the simulation kernel the fabric runs on.
func (n *Net) Kernel() *sim.Kernel { return n.k }

// Lossy reports whether the chaos layer is installed: frames may be
// dropped, duplicated, delayed, or cut. Receivers use it (together
// with an armed RPCTimeout) to decide whether at-most-once machinery
// needs to run at all.
//
//fractos:hotpath
func (n *Net) Lossy() bool { return n.faults != nil }

// Profile returns the fabric's calibration.
func (n *Net) Profile() Profile { return n.prof }

// SetTrace installs a hook invoked for every transfer.
func (n *Net) SetTrace(fn func(TraceEvent)) { n.trace = fn }

// Stats returns the cumulative traffic counters.
func (n *Net) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic counters.
func (n *Net) ResetStats() { n.stats = Stats{} }

// Attach registers an endpoint at loc with an arena of arenaSize
// bytes (0 for none).
func (n *Net) Attach(name string, loc Location, arenaSize int) *Endpoint {
	return n.attachAt(EndpointID(len(n.eps)), name, loc, arenaSize)
}

// attachAt registers an endpoint under a caller-chosen id, leaving nil
// gaps below it. The Mesh uses this to give every endpoint in a
// partitioned fabric a globally unique id (so traces are identical no
// matter how nodes map to shards) while each shard's Net only holds
// its own endpoints.
func (n *Net) attachAt(id EndpointID, name string, loc Location, arenaSize int) *Endpoint {
	for len(n.eps) <= int(id) {
		n.eps = append(n.eps, nil)
	}
	e := &Endpoint{
		ID:    id,
		Name:  name,
		Loc:   loc,
		Inbox: sim.NewChan[Delivery](n.k, name+".inbox", 0),
	}
	e.arenaSize = arenaSize
	n.eps[id] = e
	n.ensureLinks(loc.Node)
	return e
}

func (n *Net) ensureLinks(node int) {
	for len(n.links) <= node {
		n.links = append(n.links, nodeLinks{})
	}
	l := &n.links[node]
	if !l.valid {
		l.up = link{bw: n.prof.WireBW}
		l.dn = link{bw: n.prof.WireBW}
		l.loc = link{bw: n.prof.LocalBW}
		l.valid = true
	}
}

// lookup resolves an id to its endpoint, or nil if unknown.
//
//fractos:hotpath
func (n *Net) lookup(id EndpointID) *Endpoint {
	if int(id) < len(n.eps) {
		return n.eps[id] // index 0 is nil, so id 0 resolves to unknown
	}
	return nil
}

// Lookup returns the endpoint with the given id.
func (n *Net) Lookup(id EndpointID) (*Endpoint, bool) {
	e := n.lookup(id)
	return e, e != nil
}

// Disconnect severs an endpoint: subsequent sends to or from it are
// dropped. Used for failure injection.
func (n *Net) Disconnect(id EndpointID) {
	if e := n.lookup(id); e != nil {
		e.disconnected = true
	}
}

// Reconnect re-attaches a severed endpoint (e.g. a rebooted
// Controller).
func (n *Net) Reconnect(id EndpointID) {
	if e := n.lookup(id); e != nil {
		e.disconnected = false
	}
}

// account records a transfer in the counters.
//
//fractos:hotpath
func (n *Net) account(class wire.Class, bytes int, cross bool, rdma bool) {
	switch class {
	case wire.Data:
		n.stats.DataMsgs++
		n.stats.DataBytes += int64(bytes)
	default:
		n.stats.ControlMsgs++
		n.stats.ControlBytes += int64(bytes)
	}
	if cross {
		n.stats.CrossNodeMsgs++
		n.stats.CrossNodeBytes += int64(bytes)
		if class == wire.Data {
			n.stats.CrossNodeDataMsgs++
			n.stats.CrossNodeDataBytes += int64(bytes)
		} else {
			n.stats.CrossNodeCtrlMsgs++
		}
	}
	if rdma {
		n.stats.RDMAOps++
		n.stats.RDMABytes += int64(bytes)
	}
}

// transferTime computes when a payload of nBytes sent now from src to
// dst finishes arriving, accounting for link serialization.
//
//fractos:hotpath
func (n *Net) transferTime(now sim.Time, src, dst Location, nBytes int) sim.Time {
	lat := n.prof.exit(src.Domain) + n.prof.entry(dst.Domain)
	if src.Node == dst.Node {
		lat += n.prof.NICTurn
		done := n.links[src.Node].loc.reserve(now, nBytes)
		return done + lat
	}
	lat += n.prof.CrossNode
	up := n.links[src.Node].up.reserve(now, nBytes)
	down := n.links[dst.Node].dn.reserve(up, 0) // rx link rarely the bottleneck for distinct nodes
	_ = down
	return up + lat
}

// Send serializes m, charges the fabric model, and schedules delivery
// into dst's inbox. It does not block the caller (DMA semantics). It
// reports false if either endpoint is unknown or disconnected (the
// message is dropped, as on a severed channel).
//
// With the chaos layer installed (faults.go) a cross-node frame may
// additionally be lost, duplicated, or delayed — and Send still
// returns true in every one of those cases: in-flight loss is not
// observable at the sender, which is precisely what forces the
// retransmission protocols above the fabric.
//
//fractos:hotpath
func (n *Net) Send(from, to EndpointID, m wire.Message) bool {
	src := n.lookup(from)
	dst := n.lookup(to)
	if src == nil || dst == nil || src.disconnected || dst.disconnected {
		return false
	}
	// Encode into a pooled frame buffer and decode eagerly. Unmarshal
	// copies every variable-length payload, so the decoded message never
	// aliases the frame and the buffer can return to the pool before the
	// delivery is even scheduled. The delivery closure then captures only
	// the decoded message — no per-send frame allocation survives.
	w := wire.GetWriter(wire.SizeOf(m))
	wire.MarshalTo(w, m)
	frame := w.Bytes()
	nBytes := len(frame)
	decoded, derr := wire.Unmarshal(frame) // fractos:alloc-ok eager decode allocates the delivered message once per send by design
	cross := src.Loc.Node != dst.Loc.Node

	// Chaos pipeline (cross-node frames only; see faults.go for the
	// fault model and determinism rules).
	var lost bool
	var dup2 wire.Message
	var extra sim.Time
	if fs := n.faults; fs != nil && cross {
		if fs.cut(src.Loc.Node, dst.Loc.Node) {
			lost = true
			fs.stats.Cut++
		} else {
			if fs.drop > 0 && fs.rng.Float64() < fs.drop {
				lost = true
				fs.stats.Dropped++
			}
			if fs.dup > 0 && fs.rng.Float64() < fs.dup && !lost && derr == nil {
				// The duplicate is decoded independently so the two
				// deliveries never share mutable payloads.
				dup2, _ = wire.Unmarshal(frame) // fractos:alloc-ok chaos-only path: the duplicate gets its own decode
			}
			if fs.jitter > 0 {
				extra = sim.Time(fs.rng.Int63n(int64(fs.jitter)))
				if extra > 0 {
					fs.stats.Delayed++
				}
			}
		}
	}
	w.Release()
	now := n.k.Now()
	done := n.transferTime(now, src.Loc, dst.Loc, nBytes)
	n.account(m.Class(), nBytes, cross, false)
	if n.trace != nil {
		n.trace(TraceEvent{At: now, From: from, To: to, Type: m.WireType(), Bytes: nBytes, Class: m.Class(), Lost: lost})
	}
	if derr != nil || lost {
		// An undecodable frame is treated like line corruption, a lost
		// one like switch loss: the fabric accounts the bytes on the
		// wire but drops the frame instead of tearing down the
		// simulation. Upper layers already tolerate loss — pending
		// calls unwind through retransmission or the peer-failure path
		// (failure as revocation).
		return true
	}
	// fractos:alloc-ok the delivery closure is the per-send in-flight record; it captures only the decoded message
	n.k.After(done+extra-now, func() {
		if dst.disconnected {
			return
		}
		dst.Inbox.TrySend(Delivery{From: from, Msg: decoded, Bytes: nBytes})
	})
	if dup2 != nil {
		// The duplicate pays for the wire a second time and lands
		// strictly after the original (uplink serialization).
		n.faults.stats.Duplicated++
		done2 := n.transferTime(now, src.Loc, dst.Loc, nBytes)
		n.account(m.Class(), nBytes, cross, false)
		if n.trace != nil {
			n.trace(TraceEvent{At: now, From: from, To: to, Type: m.WireType(), Bytes: nBytes, Class: m.Class()})
		}
		// fractos:alloc-ok chaos-only path: the duplicate needs its own in-flight record
		n.k.After(done2+extra-now, func() {
			if dst.disconnected {
				return
			}
			dst.Inbox.TrySend(Delivery{From: from, Msg: dup2, Bytes: nBytes})
		})
	}
	return true
}

// rdmaLatency is the fixed part of a one-sided RDMA op between two
// locations: initiator NIC costs plus wire plus passive-side NIC.
func (n *Net) rdmaLatency(initiator, passive Location) sim.Time {
	if initiator.Node == passive.Node {
		// Same-node DMA (e.g. controller to a co-located process).
		return n.prof.exit(initiator.Domain) + n.prof.NICTurn + n.prof.RDMARemote
	}
	return n.prof.exit(initiator.Domain) + n.prof.CrossNode + n.prof.RDMARemote
}

// rdmaTransfer performs the byte movement and timing shared by the
// RDMA primitives, returning completion time. Data flows srcEp→dstEp.
func (n *Net) rdmaTransfer(initiator, srcEp, dstEp *Endpoint, srcOff, dstOff, nBytes int, extraRTT bool) (sim.Time, error) {
	if srcEp.disconnected || dstEp.disconnected || initiator.disconnected {
		return 0, fmt.Errorf("fabric: endpoint disconnected")
	}
	// RDMA rides a reliable transport (hardware retransmit absorbs
	// probabilistic loss) but cannot cross a cut path: a down link or
	// partition between any involved pair fails the op outright, which
	// the copy engine maps to StatusAborted.
	if fs := n.faults; fs != nil {
		if fs.cut2(initiator.Loc.Node, srcEp.Loc.Node) ||
			fs.cut2(initiator.Loc.Node, dstEp.Loc.Node) ||
			fs.cut2(srcEp.Loc.Node, dstEp.Loc.Node) {
			return 0, fmt.Errorf("fabric: path cut between nodes")
		}
	}
	if srcOff < 0 || srcOff+nBytes > srcEp.arenaSize {
		return 0, fmt.Errorf("fabric: source range [%d,%d) outside arena of %s", srcOff, srcOff+nBytes, srcEp.Name)
	}
	if dstOff < 0 || dstOff+nBytes > dstEp.arenaSize {
		return 0, fmt.Errorf("fabric: dest range [%d,%d) outside arena of %s", dstOff, dstOff+nBytes, dstEp.Name)
	}
	now := n.k.Now()
	// Request leg (reads and third-party ops pay an extra half RTT to
	// reach the data source).
	lat := n.rdmaLatency(initiator.Loc, srcEp.Loc)
	if !extraRTT {
		lat = 0
	}
	// Data leg.
	var done sim.Time
	if srcEp.Loc.Node == dstEp.Loc.Node {
		done = n.links[srcEp.Loc.Node].loc.reserve(now+lat, nBytes)
		done += n.prof.RDMARemote + n.prof.RDMARemote
	} else {
		done = n.links[srcEp.Loc.Node].up.reserve(now+lat, nBytes)
		n.links[dstEp.Loc.Node].dn.reserve(done, 0)
		done += n.prof.CrossNode + n.prof.RDMARemote + n.prof.RDMARemote
	}
	// Completion notification back to the initiator.
	done += n.prof.entry(initiator.Loc.Domain)

	if nBytes > 0 {
		copy(dstEp.arenaRange(dstOff, nBytes), srcEp.arenaRange(srcOff, nBytes))
	}
	cross := srcEp.Loc.Node != dstEp.Loc.Node
	n.account(wire.Data, nBytes, cross, true)
	if n.trace != nil {
		n.trace(TraceEvent{At: now, From: srcEp.ID, To: dstEp.ID, RDMA: true, Bytes: nBytes, Class: wire.Data})
	}
	return done, nil
}

// RDMARead starts a one-sided read of nBytes from remote's arena at
// remoteOff into initiator's arena at localOff. The returned future
// resolves at the modeled completion time.
func (n *Net) RDMARead(initiator EndpointID, localOff int, remote EndpointID, remoteOff, nBytes int) *sim.Future[int] {
	f := sim.NewFuture[int](n.k)
	ini := n.lookup(initiator)
	rem := n.lookup(remote)
	if ini == nil || rem == nil {
		f.Fail(fmt.Errorf("fabric: unknown endpoint"))
		return f
	}
	done, err := n.rdmaTransfer(ini, rem, ini, remoteOff, localOff, nBytes, true)
	if err != nil {
		f.Fail(err)
		return f
	}
	n.k.After(done-n.k.Now(), func() { f.Set(nBytes) })
	return f
}

// RDMAWrite starts a one-sided write of nBytes from initiator's arena
// at localOff into remote's arena at remoteOff.
func (n *Net) RDMAWrite(initiator EndpointID, localOff int, remote EndpointID, remoteOff, nBytes int) *sim.Future[int] {
	f := sim.NewFuture[int](n.k)
	ini := n.lookup(initiator)
	rem := n.lookup(remote)
	if ini == nil || rem == nil {
		f.Fail(fmt.Errorf("fabric: unknown endpoint"))
		return f
	}
	done, err := n.rdmaTransfer(ini, ini, rem, localOff, remoteOff, nBytes, false)
	if err != nil {
		f.Fail(err)
		return f
	}
	n.k.After(done-n.k.Now(), func() { f.Set(nBytes) })
	return f
}

// RDMACopy is a third-party transfer: the initiator commands src's NIC
// to move bytes directly into dst's arena ("HW copies" in Figure 5 —
// hardware support the paper models but the testbed NICs lack).
func (n *Net) RDMACopy(initiator EndpointID, src EndpointID, srcOff int, dst EndpointID, dstOff, nBytes int) *sim.Future[int] {
	f := sim.NewFuture[int](n.k)
	ini := n.lookup(initiator)
	se := n.lookup(src)
	de := n.lookup(dst)
	if ini == nil || se == nil || de == nil {
		f.Fail(fmt.Errorf("fabric: unknown endpoint"))
		return f
	}
	done, err := n.rdmaTransfer(ini, se, de, srcOff, dstOff, nBytes, true)
	if err != nil {
		f.Fail(err)
		return f
	}
	n.k.After(done-n.k.Now(), func() { f.Set(nBytes) })
	return f
}

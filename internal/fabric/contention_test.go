package fabric

import (
	"testing"
	"time"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

// TestConcurrentFlowsShareUplink: two flows out of the same node share
// its 10 Gbps uplink, so together they take about twice as long as one
// alone.
func TestConcurrentFlowsShareUplink(t *testing.T) {
	const n = 1 << 20
	oneFlow := func(flows int) sim.Time {
		k := sim.New(1)
		net := New(k, DefaultProfile())
		src := net.Attach("src", Location{0, Host}, flows*n)
		var wg sim.WaitGroup
		wg.Add(flows)
		var end sim.Time
		for f := 0; f < flows; f++ {
			f := f
			dst := net.Attach("dst", Location{1 + f, Host}, n)
			k.Spawn("flow", func(tk *sim.Task) {
				if _, err := net.RDMACopy(src.ID, src.ID, f*n, dst.ID, 0, n).Wait(tk); err != nil {
					t.Error(err)
				}
				if tk.Now() > end {
					end = tk.Now()
				}
				wg.Done()
			})
		}
		k.Spawn("waiter", func(tk *sim.Task) { wg.Wait(tk) })
		k.Run()
		k.Shutdown()
		return end
	}
	one := oneFlow(1)
	two := oneFlow(2)
	ratio := float64(two) / float64(one)
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("2 flows took %.2fx one flow; uplink sharing should give ~2x", ratio)
	}
}

// TestDistinctUplinksDontContend: flows from different nodes to
// different nodes proceed in parallel.
func TestDistinctUplinksDontContend(t *testing.T) {
	const n = 1 << 20
	k := sim.New(1)
	net := New(k, DefaultProfile())
	a := net.Attach("a", Location{0, Host}, n)
	b := net.Attach("b", Location{1, Host}, n)
	c := net.Attach("c", Location{2, Host}, n)
	d := net.Attach("d", Location{3, Host}, n)
	var wg sim.WaitGroup
	wg.Add(2)
	var end sim.Time
	for _, pair := range [][2]*Endpoint{{a, b}, {c, d}} {
		pair := pair
		k.Spawn("flow", func(tk *sim.Task) {
			if _, err := net.RDMACopy(pair[0].ID, pair[0].ID, 0, pair[1].ID, 0, n).Wait(tk); err != nil {
				t.Error(err)
			}
			if tk.Now() > end {
				end = tk.Now()
			}
			wg.Done()
		})
	}
	k.Spawn("waiter", func(tk *sim.Task) { wg.Wait(tk) })
	k.Run()
	k.Shutdown()
	// One 1 MiB transfer at 10 Gbps ≈ 839 µs; parallel flows finish
	// together, well under 2x.
	if end > sim.Time(1200*time.Microsecond) {
		t.Errorf("independent flows took %v; they must not serialize", end)
	}
}

// TestSNICEntrySlowerThanHost encodes Table 3's asymmetry in the
// profile itself.
func TestSNICEntrySlowerThanHost(t *testing.T) {
	p := DefaultProfile()
	if p.SNICEntry <= p.HostEntry {
		t.Error("sNIC entry must cost more than host entry (wimpy ARM cores)")
	}
	if p.SNICExit >= p.HostExit {
		t.Error("sNIC exit should cost less than host exit (no PCIe hop)")
	}
}

// TestLocationString is trivial but keeps diagnostics stable.
func TestLocationString(t *testing.T) {
	if (Location{2, SNIC}).String() != "n2/snic" || (Location{0, Host}).String() != "n0/host" {
		t.Error("location formatting changed")
	}
}

// TestResetStats zeroes counters.
func TestResetStats(t *testing.T) {
	k := sim.New(1)
	net := New(k, DefaultProfile())
	a := net.Attach("a", Location{0, Host}, 0)
	b := net.Attach("b", Location{1, Host}, 0)
	k.Spawn("s", func(tk *sim.Task) { net.Send(a.ID, b.ID, &wire.Raw{}) })
	k.Run()
	if net.Stats().TotalMsgs() == 0 {
		t.Fatal("no traffic recorded")
	}
	net.ResetStats()
	if net.Stats() != (Stats{}) {
		t.Error("ResetStats left residue")
	}
	k.Shutdown()
}

// TestLookupUnknownEndpoint returns false.
func TestLookupUnknownEndpoint(t *testing.T) {
	k := sim.New(1)
	net := New(k, DefaultProfile())
	if _, ok := net.Lookup(42); ok {
		t.Error("lookup of unknown endpoint succeeded")
	}
	k.Shutdown()
}

// TestSendToUnknownEndpointFails cleanly reports false.
func TestSendToUnknownEndpointFails(t *testing.T) {
	k := sim.New(1)
	net := New(k, DefaultProfile())
	a := net.Attach("a", Location{0, Host}, 0)
	if net.Send(a.ID, 999, &wire.Raw{}) {
		t.Error("send to unknown endpoint reported success")
	}
	if net.Send(999, a.ID, &wire.Raw{}) {
		t.Error("send from unknown endpoint reported success")
	}
	k.Shutdown()
}

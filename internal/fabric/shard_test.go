package fabric

import (
	"testing"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

// ringRun drives the canonical shard-determinism workload: nodes
// endpoints in a ring, node n sending msgs frames to node n+1 with a
// per-node send gap, receivers draining their inboxes. It returns the
// merged trace, summed stats, the events processed, and the final
// virtual time.
func ringRun(t *testing.T, shards, nodes, msgs int) ([]TraceEvent, Stats, uint64, sim.Time) {
	t.Helper()
	eng := sim.NewEngine(11, shards)
	m := NewMesh(eng, Profile{}, nodes)
	m.EnableTrace()
	eps := make([]*Endpoint, nodes)
	for n := 0; n < nodes; n++ {
		eps[n] = m.Attach("hub", Location{Node: n}, 0)
	}
	ev0 := sim.TotalEvents()
	for n := 0; n < nodes; n++ {
		n := n
		src, dst := eps[n].ID, eps[(n+1)%nodes].ID
		gap := sim.Time(n+1) * 1000
		k := eng.Shard(m.Owner(n))
		k.Spawn("sender", func(tk *sim.Task) {
			for i := 0; i < msgs; i++ {
				tk.Sleep(gap)
				if !m.Send(src, dst, &wire.Null{Token: uint64(n*1000 + i)}) {
					t.Errorf("send %d from node %d refused", i, n)
				}
			}
		})
		k.Spawn("drain", func(tk *sim.Task) {
			for {
				if _, ok := eps[n].Inbox.Recv(tk); !ok {
					return
				}
			}
		})
	}
	end := eng.Run()
	eng.Shutdown()
	return m.Trace(), m.Stats(), sim.TotalEvents() - ev0, end
}

// TestMeshRingDeterminism is the fabric half of the determinism
// matrix: the ring workload's merged trace, traffic counters, event
// count, and final clock are byte-identical at every shard count.
func TestMeshRingDeterminism(t *testing.T) {
	const nodes, msgs = 8, 40
	wantTrace, wantStats, wantEvents, wantEnd := ringRun(t, 1, nodes, msgs)
	if len(wantTrace) != nodes*msgs {
		t.Fatalf("baseline trace has %d events, want %d", len(wantTrace), nodes*msgs)
	}
	if wantStats.CrossNodeMsgs != int64(nodes*msgs) {
		t.Fatalf("baseline counted %d cross-node msgs, want %d", wantStats.CrossNodeMsgs, nodes*msgs)
	}
	for _, shards := range []int{2, 4, 8} {
		trace, stats, events, end := ringRun(t, shards, nodes, msgs)
		if stats != wantStats {
			t.Errorf("shards=%d stats %+v, want %+v", shards, stats, wantStats)
		}
		if events != wantEvents {
			t.Errorf("shards=%d processed %d events, want %d", shards, events, wantEvents)
		}
		if end != wantEnd {
			t.Errorf("shards=%d final time %d, want %d", shards, end, wantEnd)
		}
		if len(trace) != len(wantTrace) {
			t.Fatalf("shards=%d trace has %d events, want %d", shards, len(trace), len(wantTrace))
		}
		for i := range wantTrace {
			if trace[i] != wantTrace[i] {
				t.Fatalf("shards=%d trace[%d] = %+v, want %+v", shards, i, trace[i], wantTrace[i])
			}
		}
	}
}

// TestMeshSameNodeSend pins that co-located endpoints talk shard-
// locally with the single-kernel Net's same-node timing, even when
// the mesh spans several shards.
func TestMeshSameNodeSend(t *testing.T) {
	eng := sim.NewEngine(2, 4)
	m := NewMesh(eng, DefaultProfile(), 4)
	a := m.Attach("a", Location{Node: 2}, 0)
	b := m.Attach("b", Location{Node: 2, Domain: SNIC}, 0)

	// Oracle: the same pair on a plain single-kernel Net.
	ok := sim.New(2)
	onet := New(ok, DefaultProfile())
	oa := onet.Attach("a", Location{Node: 2}, 0)
	ob := onet.Attach("b", Location{Node: 2, Domain: SNIC}, 0)

	var gotAt, wantAt sim.Time
	k := eng.Shard(m.Owner(2))
	k.Spawn("send", func(tk *sim.Task) {
		if !m.Send(a.ID, b.ID, &wire.Null{Token: 7}) {
			t.Error("mesh same-node send refused")
		}
		d, okr := b.Inbox.Recv(tk)
		if !okr || d.Msg.(*wire.Null).Token != 7 {
			t.Errorf("mesh delivery = %+v", d)
		}
		gotAt = tk.Now()
	})
	ok.Spawn("send", func(tk *sim.Task) {
		onet.Send(oa.ID, ob.ID, &wire.Null{Token: 7})
		ob.Inbox.Recv(tk)
		wantAt = tk.Now()
	})
	eng.Run()
	eng.Shutdown()
	ok.Run()
	ok.Shutdown()
	if gotAt != wantAt {
		t.Fatalf("mesh same-node delivery at %d, Net oracle at %d", gotAt, wantAt)
	}
	if s := m.Stats(); s.CrossNodeMsgs != 0 || s.ControlMsgs != 1 {
		t.Fatalf("same-node send accounted as %+v", s)
	}
}

// TestMeshLookaheadFloor pins the degenerate-profile path: a profile
// whose latencies are all zero still yields a positive lookahead, and
// cross-node deliveries are floored onto it instead of arriving at
// the sender's own instant.
func TestMeshLookaheadFloor(t *testing.T) {
	eng := sim.NewEngine(3, 2)
	p := Profile{WireBW: 1e12, LocalBW: 1e12}
	m := NewMesh(eng, p, 2)
	if m.Lookahead() != 1 {
		t.Fatalf("zero-latency profile lookahead = %d, want 1", m.Lookahead())
	}
	a := m.Attach("a", Location{Node: 0}, 0)
	b := m.Attach("b", Location{Node: 1}, 0)
	var sentAt, gotAt sim.Time
	eng.Shard(0).Spawn("send", func(tk *sim.Task) {
		tk.Sleep(10)
		sentAt = tk.Now()
		m.Send(a.ID, b.ID, &wire.Null{Token: 1})
	})
	eng.Shard(1).Spawn("recv", func(tk *sim.Task) {
		b.Inbox.Recv(tk)
		gotAt = tk.Now()
	})
	eng.Run()
	eng.Shutdown()
	if gotAt < sentAt+m.Lookahead() {
		t.Fatalf("delivery at %d, sent at %d: below the lookahead floor", gotAt, sentAt)
	}
}

// TestMeshProfileLookahead pins the lookahead derivation from the
// default profile: min exit + cross-node + min entry.
func TestMeshProfileLookahead(t *testing.T) {
	eng := sim.NewEngine(4, 2)
	m := NewMesh(eng, DefaultProfile(), 2)
	p := DefaultProfile()
	want := p.SNICExit + p.CrossNode + p.HostEntry // 300 + 850 + 610
	if m.Lookahead() != want {
		t.Fatalf("lookahead = %d, want %d", m.Lookahead(), want)
	}
	if eng.Lookahead() != want {
		t.Fatal("mesh did not install its lookahead on the engine")
	}
	eng.Shutdown()
}

// Fault injection: a deterministic chaos layer under the message
// fabric.
//
// The FractOS correctness story (§3.6, failure as revocation) is only
// as strong as the conditions it has been exercised under. The rest of
// the repo injects *binary* failures — severed endpoints, crashed
// Controllers — over an otherwise perfect network. Real RoCE fabrics
// lose, delay, and occasionally duplicate frames, and switches
// partition. Faults models exactly that, below Send, so every layer
// above (controller RPC, deliveries, heartbeats) sees the same
// degraded network a production deployment would.
//
// Determinism contract: every fault decision is drawn from a private
// rand.Rand seeded from Faults.Seed — never from the kernel's RNG —
// so (a) two runs with the same Spec produce byte-identical fault
// schedules and fabric traces, and (b) a zero-value Faults consumes
// no randomness and leaves the fabric's behavior bit-for-bit
// identical to a fabric without the layer. Scheduled Plan actions
// execute at exact virtual times through kernel timers.
//
// Scope: faults apply only to cross-node message frames (traffic that
// traverses the switch). Same-node loopback models shared-memory
// queues and stays reliable. RDMA transfers model a reliable
// transport (hardware retransmission) and are not subject to
// probabilistic loss, but a cut path (link down or partition) fails
// them with an error, which the copy engine surfaces as
// StatusAborted.
package fabric

import (
	"math/rand"

	"fractos/internal/sim"
)

// Faults configures the chaos layer. The zero value disables it
// entirely (and is guaranteed not to perturb the fabric).
type Faults struct {
	// Drop is the per-frame probability that a cross-node message is
	// lost in transit. The sender still pays for the wire time; Send
	// still returns true — loss is not locally observable, exactly the
	// property that forces retransmission protocols above.
	Drop float64
	// Dup is the per-frame probability that a cross-node message is
	// delivered twice (lower-layer retransmit after a lost ack). The
	// duplicate is independently decoded and pays for the wire again.
	Dup float64
	// Jitter adds a uniform [0, Jitter) extra delivery delay to every
	// cross-node frame (switch queueing), reordering traffic between
	// distinct node pairs.
	Jitter sim.Time
	// Seed seeds the private fault RNG. Runs with equal Seed (and
	// equal workload) make identical fault decisions.
	Seed int64
	// Plan schedules deterministic link and partition events.
	Plan Plan
}

// Enabled reports whether the configuration injects any faults.
func (f Faults) Enabled() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Jitter > 0 || len(f.Plan) > 0
}

// ActionKind enumerates scheduled fault actions.
type ActionKind uint8

const (
	// LinkDown severs a node's switch connection: all cross-node
	// traffic to and from Node is silently lost until LinkUp.
	LinkDown ActionKind = iota
	// LinkUp restores a node's switch connection.
	LinkUp
	// Partition splits the cluster: the nodes in Group lose
	// connectivity with every node outside Group (traffic within the
	// group, and among the remainder, still flows).
	Partition
	// Heal removes all partitions (but not LinkDown states).
	Heal
)

func (k ActionKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	}
	return "unknown"
}

// Action is one scheduled fault event at virtual time At.
type Action struct {
	At   sim.Time
	Kind ActionKind
	// Node is the target of LinkDown/LinkUp.
	Node int
	// Group is the minority side of a Partition.
	Group []int
}

// Plan is a schedule of fault actions. Order does not matter;
// InstallFaults schedules each at its own virtual time.
type Plan []Action

// FaultStats counts injected faults, for experiments and tests.
type FaultStats struct {
	Dropped    int64 // frames lost to probabilistic drop
	Duplicated int64 // frames delivered twice
	Cut        int64 // frames lost to a down link or partition
	Delayed    int64 // frames that drew nonzero jitter
}

// faultState is the live chaos state hanging off a Net.
type faultState struct {
	rng    *rand.Rand
	drop   float64
	dup    float64
	jitter sim.Time

	linkDown []bool // by node: switch port administratively dead
	group    []int  // by node: partition group id (0 = main)
	nextGrp  int    // next partition id to hand out

	stats FaultStats
}

// InstallFaults activates the chaos layer on the fabric and schedules
// the plan's actions. Call once, before the simulation runs. A
// disabled (zero-value) Faults is a no-op.
func (n *Net) InstallFaults(f Faults) {
	if !f.Enabled() {
		return
	}
	n.faults = &faultState{
		rng:    rand.New(rand.NewSource(f.Seed + 1)), // +1: seed 0 is a valid, distinct stream
		drop:   f.Drop,
		dup:    f.Dup,
		jitter: f.Jitter,
	}
	for _, a := range f.Plan {
		a := a
		delay := a.At - n.k.Now()
		if delay < 0 {
			delay = 0
		}
		n.k.After(delay, func() { n.apply(a) })
	}
}

// FaultStats returns the cumulative injected-fault counters (zero if
// the chaos layer is not installed).
func (n *Net) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats
}

// apply executes one plan action now.
func (n *Net) apply(a Action) {
	switch a.Kind {
	case LinkDown:
		n.SetLink(a.Node, false)
	case LinkUp:
		n.SetLink(a.Node, true)
	case Partition:
		n.PartitionNodes(a.Group)
	case Heal:
		n.HealPartitions()
	}
}

// ensureFaults materializes the fault state for imperative callers
// (tests, examples) that script topology changes without a Plan.
func (n *Net) ensureFaults() *faultState {
	if n.faults == nil {
		n.faults = &faultState{rng: rand.New(rand.NewSource(1))}
	}
	return n.faults
}

// SetLink administratively raises (up=true) or severs a node's switch
// port. While down, all cross-node frames to or from the node are
// silently lost and cross-node RDMA fails.
func (n *Net) SetLink(node int, up bool) {
	fs := n.ensureFaults()
	for len(fs.linkDown) <= node {
		fs.linkDown = append(fs.linkDown, false)
	}
	fs.linkDown[node] = !up
}

// PartitionNodes cuts the given nodes off from the rest of the
// cluster (they keep connectivity among themselves). Successive calls
// create independent partitions.
func (n *Net) PartitionNodes(group []int) {
	fs := n.ensureFaults()
	fs.nextGrp++
	id := fs.nextGrp
	for _, node := range group {
		for len(fs.group) <= node {
			fs.group = append(fs.group, 0)
		}
		fs.group[node] = id
	}
}

// HealPartitions restores full connectivity between partition groups
// (administratively downed links stay down).
func (n *Net) HealPartitions() {
	fs := n.ensureFaults()
	for i := range fs.group {
		fs.group[i] = 0
	}
}

// Partitioned reports whether cross-node traffic between a and b is
// currently cut by a partition or a downed link.
func (n *Net) Partitioned(a, b int) bool {
	if n.faults == nil {
		return false
	}
	return n.faults.cut(a, b)
}

// cut2 is cut for possibly-equal nodes: a node always reaches itself.
func (fs *faultState) cut2(a, b int) bool {
	return a != b && fs.cut(a, b)
}

// cut reports whether the switch path between two distinct nodes is
// severed right now.
func (fs *faultState) cut(a, b int) bool {
	if fs.down(a) || fs.down(b) {
		return true
	}
	return fs.grp(a) != fs.grp(b)
}

func (fs *faultState) down(node int) bool {
	return node < len(fs.linkDown) && fs.linkDown[node]
}

func (fs *faultState) grp(node int) int {
	if node < len(fs.group) {
		return fs.group[node]
	}
	return 0
}

package fabric

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

func us(f float64) sim.Time { return sim.Time(f * float64(time.Microsecond)) }

func newNet() (*sim.Kernel, *Net) {
	k := sim.New(1)
	return k, New(k, DefaultProfile())
}

// pingpong measures the round-trip time of a small Raw message between
// two endpoints.
func pingpong(t *testing.T, aLoc, bLoc Location) sim.Time {
	t.Helper()
	k, n := newNet()
	a := n.Attach("a", aLoc, 0)
	b := n.Attach("b", bLoc, 0)
	var rtt sim.Time
	k.Spawn("server", func(tk *sim.Task) {
		d, _ := b.Inbox.Recv(tk)
		n.Send(b.ID, d.From, &wire.Raw{Kind: 2})
	})
	k.Spawn("client", func(tk *sim.Task) {
		start := tk.Now()
		n.Send(a.ID, b.ID, &wire.Raw{Kind: 1})
		a.Inbox.Recv(tk)
		rtt = tk.Now() - start
	})
	k.Run()
	return rtt
}

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want sim.Time, frac float64) {
	t.Helper()
	diff := float64(got - want)
	if diff < 0 {
		diff = -diff
	}
	if diff > frac*float64(want) {
		t.Errorf("%s = %v, want %v (±%.0f%%)", name, got, want, frac*100)
	}
}

// TestLoopbackLatencyMatchesTable3 checks the fabric against the raw
// loopback numbers of Table 3: ~2.42 µs RTT to a host server, ~3.68 µs
// to a SmartNIC server.
func TestLoopbackLatencyMatchesTable3(t *testing.T) {
	hostRTT := pingpong(t, Location{0, Host}, Location{0, Host})
	within(t, "host loopback RTT", hostRTT, us(2.42), 0.05)

	snicRTT := pingpong(t, Location{0, Host}, Location{0, SNIC})
	within(t, "snic loopback RTT", snicRTT, us(3.68), 0.05)
}

func TestCrossNodeSlowerThanLocal(t *testing.T) {
	local := pingpong(t, Location{0, Host}, Location{0, Host})
	remote := pingpong(t, Location{0, Host}, Location{1, Host})
	if remote <= local {
		t.Errorf("cross-node RTT %v not greater than local %v", remote, local)
	}
}

func TestMessageCarriesRealBytes(t *testing.T) {
	k, n := newNet()
	a := n.Attach("a", Location{0, Host}, 0)
	b := n.Attach("b", Location{1, Host}, 0)
	payload := []byte("the actual data")
	var got []byte
	k.Spawn("recv", func(tk *sim.Task) {
		d, _ := b.Inbox.Recv(tk)
		got = d.Msg.(*wire.Raw).Data
	})
	k.Spawn("send", func(tk *sim.Task) {
		n.Send(a.ID, b.ID, &wire.Raw{Kind: 9, Data: payload})
	})
	k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q want %q", got, payload)
	}
}

func TestBandwidthSerializesTransmissions(t *testing.T) {
	// Two 1.25 MB messages over a 10 Gbps uplink: the second cannot
	// complete before ~2 ms (2 × 1 ms serialization).
	k, n := newNet()
	a := n.Attach("a", Location{0, Host}, 0)
	b := n.Attach("b", Location{1, Host}, 0)
	var lastArrival sim.Time
	k.Spawn("recv", func(tk *sim.Task) {
		for i := 0; i < 2; i++ {
			b.Inbox.Recv(tk)
			lastArrival = tk.Now()
		}
	})
	k.Spawn("send", func(tk *sim.Task) {
		big := make([]byte, 1250000)
		n.Send(a.ID, b.ID, &wire.Raw{Data: big, IsData: true})
		n.Send(a.ID, b.ID, &wire.Raw{Data: big, IsData: true})
	})
	k.Run()
	if lastArrival < 2*time.Millisecond {
		t.Errorf("second 1.25MB message arrived at %v; 10 Gbps allows no earlier than 2ms", lastArrival)
	}
	if lastArrival > 3*time.Millisecond {
		t.Errorf("second message arrived at %v, far above expected ~2ms", lastArrival)
	}
}

func TestStatsClassification(t *testing.T) {
	k, n := newNet()
	a := n.Attach("a", Location{0, Host}, 0)
	b := n.Attach("b", Location{1, Host}, 0)
	c := n.Attach("c", Location{0, Host}, 0)
	k.Spawn("send", func(tk *sim.Task) {
		n.Send(a.ID, b.ID, &wire.Raw{})                                       // control, cross-node
		n.Send(a.ID, b.ID, &wire.Raw{IsData: true, Data: make([]byte, 4096)}) // data, cross-node
		n.Send(a.ID, c.ID, &wire.Raw{})                                       // control, same-node
	})
	k.Run()
	s := n.Stats()
	if s.ControlMsgs != 2 || s.DataMsgs != 1 {
		t.Errorf("msgs: %+v", s)
	}
	if s.CrossNodeMsgs != 2 {
		t.Errorf("cross-node msgs = %d, want 2", s.CrossNodeMsgs)
	}
	if s.DataBytes < 4096 {
		t.Errorf("data bytes = %d, want >= 4096", s.DataBytes)
	}
	// Snapshot arithmetic.
	snap := n.Stats()
	if d := snap.Sub(s); d.TotalMsgs() != 0 || d.TotalBytes() != 0 {
		t.Errorf("Sub of identical snapshots nonzero: %+v", d)
	}
}

func TestRDMAReadMovesBytes(t *testing.T) {
	k, n := newNet()
	ctrl := n.Attach("ctrl", Location{0, Host}, 1024)
	proc := n.Attach("proc", Location{1, Host}, 1024)
	copy(proc.Arena()[100:], "remote-bytes")
	var rtt sim.Time
	k.Spawn("reader", func(tk *sim.Task) {
		start := tk.Now()
		f := n.RDMARead(ctrl.ID, 0, proc.ID, 100, 12)
		if _, err := f.Wait(tk); err != nil {
			t.Errorf("rdma read: %v", err)
		}
		rtt = tk.Now() - start
	})
	k.Run()
	if string(ctrl.Arena()[:12]) != "remote-bytes" {
		t.Fatalf("arena = %q", ctrl.Arena()[:12])
	}
	// §6.1: 1-Byte RDMA ≈ 3.3 µs; 12 bytes is barely more.
	within(t, "small RDMA read", rtt, us(3.3), 0.15)
}

func TestRDMAWriteMovesBytes(t *testing.T) {
	k, n := newNet()
	ctrl := n.Attach("ctrl", Location{0, Host}, 64)
	proc := n.Attach("proc", Location{1, Host}, 64)
	copy(ctrl.Arena(), "W")
	k.Spawn("writer", func(tk *sim.Task) {
		f := n.RDMAWrite(ctrl.ID, 0, proc.ID, 7, 1)
		if _, err := f.Wait(tk); err != nil {
			t.Errorf("rdma write: %v", err)
		}
	})
	k.Run()
	if proc.Arena()[7] != 'W' {
		t.Fatal("write did not land")
	}
}

func TestRDMACopyThirdParty(t *testing.T) {
	k, n := newNet()
	ini := n.Attach("ctrl", Location{0, Host}, 0)
	src := n.Attach("src", Location{1, Host}, 128)
	dst := n.Attach("dst", Location{2, Host}, 128)
	copy(src.Arena()[5:], "direct")
	k.Spawn("copy", func(tk *sim.Task) {
		f := n.RDMACopy(ini.ID, src.ID, 5, dst.ID, 50, 6)
		if _, err := f.Wait(tk); err != nil {
			t.Errorf("rdma copy: %v", err)
		}
	})
	k.Run()
	if string(dst.Arena()[50:56]) != "direct" {
		t.Fatalf("dst arena = %q", dst.Arena()[50:56])
	}
}

func TestRDMABoundsChecked(t *testing.T) {
	k, n := newNet()
	a := n.Attach("a", Location{0, Host}, 16)
	b := n.Attach("b", Location{1, Host}, 16)
	var err error
	k.Spawn("oob", func(tk *sim.Task) {
		_, err = n.RDMARead(a.ID, 0, b.ID, 10, 10).Wait(tk)
	})
	k.Run()
	if err == nil {
		t.Fatal("out-of-bounds RDMA succeeded")
	}
}

func TestDisconnectDropsTraffic(t *testing.T) {
	k, n := newNet()
	a := n.Attach("a", Location{0, Host}, 16)
	b := n.Attach("b", Location{1, Host}, 16)
	n.Disconnect(b.ID)
	if n.Send(a.ID, b.ID, &wire.Raw{}) {
		t.Error("send to disconnected endpoint reported success")
	}
	var rdmaErr error
	k.Spawn("rdma", func(tk *sim.Task) {
		_, rdmaErr = n.RDMARead(a.ID, 0, b.ID, 0, 4).Wait(tk)
	})
	k.Run()
	if rdmaErr == nil {
		t.Error("RDMA to disconnected endpoint succeeded")
	}
	n.Reconnect(b.ID)
	if !n.Send(a.ID, b.ID, &wire.Raw{}) {
		t.Error("send after reconnect failed")
	}
}

func TestDisconnectMidFlightDropsDelivery(t *testing.T) {
	k, n := newNet()
	a := n.Attach("a", Location{0, Host}, 0)
	b := n.Attach("b", Location{1, Host}, 0)
	k.Spawn("send", func(tk *sim.Task) {
		n.Send(a.ID, b.ID, &wire.Raw{})
		n.Disconnect(b.ID) // before delivery completes
	})
	k.Run()
	if b.Inbox.Len() != 0 {
		t.Error("message delivered to endpoint disconnected mid-flight")
	}
}

func TestTraceHook(t *testing.T) {
	k, n := newNet()
	a := n.Attach("a", Location{0, Host}, 32)
	b := n.Attach("b", Location{1, Host}, 32)
	var events []TraceEvent
	n.SetTrace(func(e TraceEvent) { events = append(events, e) })
	k.Spawn("go", func(tk *sim.Task) {
		n.Send(a.ID, b.ID, &wire.Raw{})
		n.RDMAWrite(a.ID, 0, b.ID, 0, 8).Wait(tk)
	})
	k.Run()
	if len(events) != 2 {
		t.Fatalf("got %d trace events, want 2", len(events))
	}
	if events[0].RDMA || !events[1].RDMA {
		t.Errorf("trace kinds wrong: %+v", events)
	}
	if events[1].Bytes != 8 {
		t.Errorf("rdma trace bytes = %d", events[1].Bytes)
	}
}

// Property: for random payload sizes and random topology placements,
// bytes received always equal bytes sent (byte conservation), and the
// data arrives intact.
func TestByteConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.New(seed)
		n := New(k, DefaultProfile())
		a := n.Attach("a", Location{rng.Intn(3), Domain(rng.Intn(2))}, 0)
		b := n.Attach("b", Location{rng.Intn(3), Domain(rng.Intn(2))}, 0)
		payload := make([]byte, rng.Intn(10000))
		rng.Read(payload)
		ok := true
		k.Spawn("recv", func(tk *sim.Task) {
			d, _ := b.Inbox.Recv(tk)
			raw := d.Msg.(*wire.Raw)
			if !bytes.Equal(raw.Data, payload) {
				ok = false
			}
			if d.Bytes != wire.SizeOf(raw) {
				ok = false
			}
		})
		k.Spawn("send", func(tk *sim.Task) {
			n.Send(a.ID, b.ID, &wire.Raw{Data: payload})
		})
		k.Run()
		st := n.Stats()
		return ok && st.TotalBytes() == int64(wire.SizeOf(&wire.Raw{Data: payload}))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: RDMA between random arenas preserves all non-target bytes
// and copies the target range exactly.
func TestRDMAExactRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.New(seed)
		n := New(k, DefaultProfile())
		a := n.Attach("a", Location{0, Host}, 256)
		b := n.Attach("b", Location{1, Host}, 256)
		rng.Read(a.Arena())
		rng.Read(b.Arena())
		before := append([]byte(nil), a.Arena()...)
		srcOff := rng.Intn(200)
		dstOff := rng.Intn(200)
		ln := rng.Intn(min(256-srcOff, 256-dstOff))
		want := append([]byte(nil), b.Arena()[srcOff:srcOff+ln]...)
		ok := true
		k.Spawn("r", func(tk *sim.Task) {
			if _, err := n.RDMARead(a.ID, dstOff, b.ID, srcOff, ln).Wait(tk); err != nil {
				ok = false
			}
		})
		k.Run()
		if !ok {
			return false
		}
		for i := range a.Arena() {
			if i >= dstOff && i < dstOff+ln {
				if a.Arena()[i] != want[i-dstOff] {
					return false
				}
			} else if a.Arena()[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package fabric

import (
	"testing"

	"fractos/internal/sim"
	"fractos/internal/wire"
)

// chaosPair builds a two-node fabric with the given faults and
// returns (net, src, dst).
func chaosPair(t *testing.T, f Faults) (*Net, *Endpoint, *Endpoint) {
	t.Helper()
	k := sim.New(1)
	n := New(k, DefaultProfile())
	n.InstallFaults(f)
	src := n.Attach("src", Location{Node: 0}, 0)
	dst := n.Attach("dst", Location{Node: 1}, 0)
	return n, src, dst
}

// pump sends cnt raw messages src→dst and returns how many arrive.
func pump(n *Net, src, dst *Endpoint, cnt int) int {
	k := n.Kernel()
	got := 0
	k.Spawn("rx", func(t *sim.Task) {
		for {
			_, ok := dst.Inbox.RecvTimeout(t, 10*1000*1000)
			if !ok {
				return
			}
			got++
		}
	})
	k.Spawn("tx", func(t *sim.Task) {
		for i := 0; i < cnt; i++ {
			n.Send(src.ID, dst.ID, &wire.Raw{Data: []byte{byte(i)}})
			t.Sleep(10_000)
		}
	})
	k.Run()
	k.Shutdown()
	return got
}

func TestFaultsZeroValueIsNoop(t *testing.T) {
	n, src, dst := chaosPair(t, Faults{})
	if n.faults != nil {
		t.Fatal("zero-value Faults must not install the chaos layer")
	}
	if got := pump(n, src, dst, 50); got != 50 {
		t.Fatalf("reliable fabric delivered %d/50", got)
	}
}

func TestFaultsDropLosesFrames(t *testing.T) {
	n, src, dst := chaosPair(t, Faults{Drop: 0.5, Seed: 7})
	got := pump(n, src, dst, 200)
	st := n.FaultStats()
	if st.Dropped == 0 {
		t.Fatal("expected probabilistic drops")
	}
	if got+int(st.Dropped) != 200 {
		t.Fatalf("delivered %d + dropped %d != 200 sent", got, st.Dropped)
	}
	if got < 50 || got > 150 {
		t.Fatalf("drop=0.5 delivered %d/200 — far from expectation", got)
	}
}

func TestFaultsDupDeliversTwice(t *testing.T) {
	n, src, dst := chaosPair(t, Faults{Dup: 1.0, Seed: 3})
	if got := pump(n, src, dst, 20); got != 40 {
		t.Fatalf("dup=1.0 delivered %d, want 40", got)
	}
	if st := n.FaultStats(); st.Duplicated != 20 {
		t.Fatalf("Duplicated = %d, want 20", st.Duplicated)
	}
}

func TestFaultsDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, FaultStats) {
		n, src, dst := chaosPair(t, Faults{Drop: 0.2, Dup: 0.1, Jitter: 5000, Seed: 42})
		got := pump(n, src, dst, 300)
		return got, n.FaultStats()
	}
	g1, s1 := run()
	g2, s2 := run()
	if g1 != g2 || s1 != s2 {
		t.Fatalf("same seed diverged: run1 %d %+v, run2 %d %+v", g1, s1, g2, s2)
	}
}

func TestPartitionCutsAndHeals(t *testing.T) {
	n, src, dst := chaosPair(t, Faults{Plan: Plan{
		{At: 0, Kind: Partition, Group: []int{1}},
		{At: 500_000, Kind: Heal},
	}})
	k := n.Kernel()
	var before, after int
	k.Spawn("rx", func(t *sim.Task) {
		for {
			_, ok := dst.Inbox.RecvTimeout(t, 2_000_000)
			if !ok {
				return
			}
			if k.Now() < 500_000 {
				before++
			} else {
				after++
			}
		}
	})
	k.Spawn("tx", func(t *sim.Task) {
		for i := 0; i < 50; i++ {
			if !n.Send(src.ID, dst.ID, &wire.Raw{Data: []byte{1}}) {
				t.Sleep(0) // keep the shape; Send returns true under partition
			}
			t.Sleep(20_000)
		}
	})
	k.Run()
	k.Shutdown()
	if before != 0 {
		t.Fatalf("partitioned fabric delivered %d frames before heal", before)
	}
	if after == 0 {
		t.Fatal("no frames delivered after heal")
	}
	if st := n.FaultStats(); st.Cut == 0 {
		t.Fatal("expected Cut > 0 during partition")
	}
}

func TestLinkDownFailsRDMA(t *testing.T) {
	k := sim.New(1)
	n := New(k, DefaultProfile())
	src := n.Attach("src", Location{Node: 0}, 4096)
	dst := n.Attach("dst", Location{Node: 1}, 4096)
	n.SetLink(1, false)
	var failedDown, okUp bool
	k.Spawn("xfer", func(t *sim.Task) {
		if _, err := n.RDMARead(src.ID, 0, dst.ID, 0, 128).Wait(t); err != nil {
			failedDown = true
		}
		n.SetLink(1, true)
		if _, err := n.RDMARead(src.ID, 0, dst.ID, 0, 128).Wait(t); err == nil {
			okUp = true
		}
	})
	k.Run()
	k.Shutdown()
	if !failedDown {
		t.Fatal("RDMA across a down link must fail")
	}
	if !okUp {
		t.Fatal("RDMA must succeed after the link comes back")
	}
}

package fabric

import (
	"sort"

	"fractos/internal/assert"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Mesh is the partition-parallel fabric: the cluster's nodes are
// divided into contiguous blocks owned by the shards of a sim.Engine,
// each shard carrying its own Net (endpoints, links, stats, trace)
// over that shard's kernel. Frames between endpoints on the same
// shard are routed shard-locally; frames crossing shards become
// timestamped sim posts delivered at the engine's conservative
// barriers.
//
// Determinism across shard counts is a design goal, not a side
// effect, and rests on three rules:
//
//  1. Endpoint ids are assigned globally by the Mesh (Net.attachAt),
//     so a TraceEvent names the same endpoints no matter how nodes
//     map to shards.
//  2. Cross-node transfer timing uses only sender-side state: the
//     source node's uplink reservation plus fixed exit/wire/entry
//     latencies. (The single-kernel Net's receiver-side
//     dn.reserve(up, 0) books zero bytes and so never moves a
//     delivery time — the Mesh formula is the same arithmetic
//     without the receiver-side touch, which a parallel shard must
//     not make.)
//  3. Delivery timestamps always exceed the engine lookahead, which
//     the Mesh derives from the profile's minimum cross-node latency
//     (min exit + CrossNode + min entry, floored at 1ns for
//     degenerate zero-latency profiles).
//
// With those rules a workload whose message timing is a function of
// per-node state (every send charged to the sender's uplink) executes
// identically at any shard count; ties at one destination are broken
// by (timestamp, source shard, source sequence), which coincides with
// the single-kernel (timestamp, sequence) order whenever each
// destination has a single concurrent source (e.g. ring traffic).
// The Mesh carries message sends; RDMA stays within a shard via the
// per-shard Net.
type Mesh struct {
	eng       *sim.Engine
	prof      Profile
	nets      []*Net      // one per shard
	eps       []*Endpoint // global directory; index 0 unused
	owner     []int       // node -> owning shard
	lookahead sim.Time

	tracing bool
	traces  [][]TraceEvent // per-shard buffers, merged by Trace()
}

// NewMesh builds a partitioned fabric over eng's shards for a cluster
// of nodes, assigning node i to shard i*shards/nodes (contiguous
// blocks that nest across power-of-two shard counts). It installs the
// profile-derived lookahead on the engine.
func NewMesh(eng *sim.Engine, p Profile, nodes int) *Mesh {
	if p == (Profile{}) {
		p = DefaultProfile()
	}
	assert.That(nodes >= 1, "fabric: mesh needs at least one node, got %d", nodes)
	shards := eng.Shards()
	m := &Mesh{
		eng:    eng,
		prof:   p,
		nets:   make([]*Net, shards),
		eps:    make([]*Endpoint, 1),
		owner:  make([]int, nodes),
		traces: make([][]TraceEvent, shards),
	}
	for i := 0; i < shards; i++ {
		m.nets[i] = New(eng.Shard(i), p)
	}
	for n := 0; n < nodes; n++ {
		m.owner[n] = n * shards / nodes
	}
	la := minTime(p.HostExit, p.SNICExit) + p.CrossNode + minTime(p.HostEntry, p.SNICEntry)
	if la < 1 {
		la = 1 // min-latency fallback for zero-latency profiles
	}
	m.lookahead = la
	eng.SetLookahead(la)
	return m
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

// Engine returns the simulation engine the mesh runs on.
func (m *Mesh) Engine() *sim.Engine { return m.eng }

// Nodes reports the cluster size the mesh was built for.
func (m *Mesh) Nodes() int { return len(m.owner) }

// Owner reports which shard owns a node.
func (m *Mesh) Owner(node int) int { return m.owner[node] }

// ShardNet returns the Net carrying a shard's endpoints (for
// shard-local operations like RDMA between co-sharded endpoints).
func (m *Mesh) ShardNet(shard int) *Net { return m.nets[shard] }

// Lookahead returns the profile-derived conservative window width.
func (m *Mesh) Lookahead() sim.Time { return m.lookahead }

// Attach registers an endpoint on loc's owning shard under a globally
// unique id. Must be called before the engine runs (attachment is not
// synchronized with running shards).
func (m *Mesh) Attach(name string, loc Location, arenaSize int) *Endpoint {
	assert.That(loc.Node >= 0 && loc.Node < len(m.owner),
		"fabric: node %d outside the %d-node mesh", loc.Node, len(m.owner))
	id := EndpointID(len(m.eps))
	e := m.nets[m.owner[loc.Node]].attachAt(id, name, loc, arenaSize)
	m.eps = append(m.eps, e)
	return e
}

// Lookup returns the endpoint with the given global id.
func (m *Mesh) Lookup(id EndpointID) (*Endpoint, bool) {
	if int(id) < len(m.eps) && m.eps[id] != nil {
		return m.eps[id], true
	}
	return nil, false
}

// Send serializes msg, charges the sender-side fabric model, and
// delivers into dst's inbox — shard-locally when both endpoints share
// a shard, through a cross-shard post otherwise. It must be called
// from the sending endpoint's shard (task or kernel context); the
// simdet analyzer flags the common ways to get this wrong.
//
// Like Net.Send it never blocks and reports false only for unknown
// endpoints or a disconnected sender; a disconnected *receiver* drops
// the frame at delivery time (the sender cannot observe the remote
// endpoint's state without crossing shards).
//
//fractos:hotpath
func (m *Mesh) Send(from, to EndpointID, msg wire.Message) bool {
	if int(from) >= len(m.eps) || int(to) >= len(m.eps) {
		return false
	}
	src, dst := m.eps[from], m.eps[to]
	if src == nil || dst == nil || src.disconnected {
		return false
	}
	srcShard := m.owner[src.Loc.Node]
	net := m.nets[srcShard]
	k := net.k

	w := wire.GetWriter(wire.SizeOf(msg))
	wire.MarshalTo(w, msg)
	frame := w.Bytes()
	nBytes := len(frame)
	decoded, derr := wire.Unmarshal(frame) // fractos:alloc-ok eager decode allocates the delivered message once per send by design
	w.Release()

	now := k.Now()
	cross := src.Loc.Node != dst.Loc.Node
	var done sim.Time
	if !cross {
		done = net.links[src.Loc.Node].loc.reserve(now, nBytes) +
			m.prof.exit(src.Loc.Domain) + m.prof.entry(dst.Loc.Domain) + m.prof.NICTurn
	} else {
		// Sender-side-only cross-node formula (rule 2 above).
		done = net.links[src.Loc.Node].up.reserve(now, nBytes) +
			m.prof.exit(src.Loc.Domain) + m.prof.entry(dst.Loc.Domain) + m.prof.CrossNode
		if done-now < m.lookahead {
			done = now + m.lookahead
		}
	}
	net.account(msg.Class(), nBytes, cross, false)
	if m.tracing {
		m.traces[srcShard] = append(m.traces[srcShard], // fractos:alloc-ok trace capture is an opt-in diagnostic path
			TraceEvent{At: now, From: from, To: to, Type: msg.WireType(), Bytes: nBytes, Class: msg.Class()})
	}
	if derr != nil {
		return true // line corruption: bytes were charged, frame dropped
	}
	// fractos:alloc-ok the delivery closure is the per-send in-flight record; it captures only the decoded message
	k.Post(m.owner[dst.Loc.Node], done-now, func() {
		if dst.disconnected {
			return
		}
		dst.Inbox.TrySend(Delivery{From: from, Msg: decoded, Bytes: nBytes})
	})
	return true
}

// EnableTrace starts recording one TraceEvent per send into per-shard
// buffers. Must be called before the engine runs.
func (m *Mesh) EnableTrace() { m.tracing = true }

// Trace merges the per-shard trace buffers into one deterministic
// sequence ordered by (At, From); entries tied on both keys come from
// a single shard buffer (a source endpoint lives on exactly one
// shard) and keep that shard's order, so the merged trace is
// identical for every shard count and GOMAXPROCS.
func (m *Mesh) Trace() []TraceEvent {
	var out []TraceEvent
	for _, tb := range m.traces {
		out = append(out, tb...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].From < out[j].From
	})
	return out
}

// Stats sums the per-shard traffic counters.
func (m *Mesh) Stats() Stats {
	var s Stats
	for _, n := range m.nets {
		o := n.Stats()
		s.ControlMsgs += o.ControlMsgs
		s.ControlBytes += o.ControlBytes
		s.DataMsgs += o.DataMsgs
		s.DataBytes += o.DataBytes
		s.CrossNodeMsgs += o.CrossNodeMsgs
		s.CrossNodeBytes += o.CrossNodeBytes
		s.CrossNodeCtrlMsgs += o.CrossNodeCtrlMsgs
		s.CrossNodeDataMsgs += o.CrossNodeDataMsgs
		s.CrossNodeDataBytes += o.CrossNodeDataBytes
		s.RDMAOps += o.RDMAOps
		s.RDMABytes += o.RDMABytes
	}
	return s
}

package core

import (
	"fractos/internal/cap"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// handleReqInvoke invokes a Request (request_invoke). Invoke-time
// refinements (immediates and capability arguments) are applied on top
// of the Request object's preset arguments for this invocation only —
// the object itself is never mutated, preserving the §3.4 security
// property.
//
// If the Request is owned here (the provider is one of our Processes),
// the invocation is local: syscall → delivery, two hops. Otherwise it
// is forwarded to the owning Controller: three hops each way at most,
// as in §6.1.
func (c *Controller) handleReqInvoke(t *sim.Task, ps *procState, m *wire.ReqInvoke) {
	e, st := c.resolveEntry(ps, m.Cid, cap.KindRequest, cap.Invoke)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	capArgs, st := c.resolveCapSlots(ps, m.Caps)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	if e.Ref.Ctrl == c.id {
		st := c.deliverInvoke(e.Ref, m.Imms, capArgs)
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	tok := m.Token
	imms := m.Imms
	c.call(e.Ref.Ctrl, func(t uint64) wire.Message {
		return &wire.CtrlInvoke{Token: t, Src: c.id, Ref: e.Ref, Imms: imms, Caps: argsToXfer(capArgs)}
	}, func(reply wire.Message) {
		ack, ok := reply.(*wire.CtrlAck)
		st := wire.StatusUnknownObj
		if ok {
			st = ack.Status
		}
		c.complete(ps, tok, st, cap.NilCap, 0)
	})
}

// deliverInvoke performs the owner-side invocation: validate the
// Request, merge invoke-time arguments, delegate capability arguments
// into the provider's space, and deliver a request_receive descriptor.
func (c *Controller) deliverInvoke(ref cap.Ref, imms []wire.ImmArg, extra []capSlotArg) wire.Status {
	n, st := c.resolveOwned(ref)
	if st != wire.StatusOK {
		return st
	}
	ro, ok := n.Payload.(*reqObject)
	if !ok {
		return wire.StatusKind
	}
	prov, ok := c.procs[ro.provider]
	if !ok || prov.failed {
		return wire.StatusNoProc
	}

	// Merge arguments on a scratch copy.
	merged := ro.clone()
	if st := merged.applyImms(imms); st != wire.StatusOK {
		return st
	}
	if st := merged.applyCaps(extra); st != wire.StatusOK {
		return st
	}

	// Delegate capability arguments: install entries in the provider's
	// capability space, in slot order for determinism. On quota
	// exhaustion the whole delegation is rolled back.
	slots := sortedSlots(merged.caps)
	dcaps := make([]wire.DeliveredCap, 0, len(slots))
	for _, s := range slots {
		a := merged.caps[s]
		cid, st := c.install(prov, cap.Entry{
			Ref: a.ref, Kind: a.kind, Rights: a.rights, Size: a.size, Leased: a.leased,
		})
		if st != wire.StatusOK {
			for _, dc := range dcaps {
				prov.space.Drop(dc.Cid)
			}
			return st
		}
		dcaps = append(dcaps, wire.DeliveredCap{
			Slot: s, Cid: cid, Kind: a.kind, Rights: a.rights, Size: a.size,
		})
	}

	prov.deliverSeq++
	d := &wire.Deliver{
		Seq:  prov.deliverSeq,
		Tag:  merged.tag,
		Imms: merged.imms.bytes(),
		Caps: dcaps,
	}
	if prov.window <= 0 {
		// Congestion control: queue until the provider acknowledges
		// earlier deliveries (§4's back-pressure).
		c.metrics.Backpressured++
		prov.queue = append(prov.queue, d)
		return wire.StatusOK
	}
	c.sendDeliver(prov, d)
	return wire.StatusOK
}

// peerInvoke handles an invocation arriving from another Controller.
// The reply goes through the at-most-once cache: deliverInvoke is not
// idempotent (it delivers a descriptor to the provider), so a
// retransmitted CtrlInvoke must be answered without re-delivering.
func (c *Controller) peerInvoke(t *sim.Task, from fabric.EndpointID, m *wire.CtrlInvoke) {
	c.metrics.Invokes++
	st := c.deliverInvoke(m.Ref, m.Imms, xferToArgs(m.Caps))
	c.reply(from, m.Token, &wire.CtrlAck{Token: m.Token, Status: st})
}

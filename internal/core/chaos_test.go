package core_test

// Chaos soak: a mixed RPC + memory-copy workload runs across three
// nodes while Processes are killed and a Controller crashes and
// reboots underneath it. The system must stay live (operations
// complete or fail with errors — never hang), redeployment must
// succeed, and the whole run must be deterministic.

import (
	"fmt"
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// chaosService is a restartable echo service.
type chaosService struct {
	p   *proc.Process
	req proc.Cap
}

func deployChaosService(tk *sim.Task, cl *core.Cluster, node int, gen int) *chaosService {
	s := &chaosService{p: proc.Attach(cl, node, fmt.Sprintf("svc-g%d", gen), 4096)}
	var err error
	s.req, err = s.p.RequestCreate(tk, 1, nil, nil)
	if err != nil {
		panic(err)
	}
	cl.K.Spawn("svc-loop", func(st *sim.Task) {
		for {
			d, ok := s.p.Receive(st)
			if !ok {
				return
			}
			if rep, ok := d.Cap(0); ok {
				s.p.Invoke(st, rep, []wire.ImmArg{proc.BytesArg(0, d.Imms)}, nil)
			}
			d.Done()
		}
	})
	return s
}

func TestChaosSoak(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 3, Seed: 99}, func(tk *sim.Task, cl *core.Cluster) {
		client := proc.Attach(cl, 0, "chaos-client", 8192)
		svc := deployChaosService(tk, cl, 1, 0)
		sreq, err := proc.GrantCap(svc.p, svc.req, client)
		if err != nil {
			t.Fatal(err)
		}

		okCalls, failCalls := 0, 0
		call := func(payload string) bool {
			// Bounded call: WaitTag with a virtual-time timeout so a
			// dead service cannot hang the workload.
			reply, tag, err := client.ReplyRequest(tk)
			if err != nil {
				return false
			}
			f := client.WaitTag(tag)
			if err := client.Invoke(tk, sreq,
				[]wire.ImmArg{proc.BytesArg(0, []byte(payload))},
				[]proc.Arg{{Slot: 0, Cap: reply}}); err != nil {
				client.Drop(tk, reply)
				return false
			}
			d, err := f.WaitTimeout(tk, 5*1000*1000) // 5ms virtual
			client.Drop(tk, reply)
			if err != nil {
				return false
			}
			d.Done()
			if string(d.Imms) != payload {
				t.Fatalf("echo corrupted: %q != %q", d.Imms, payload)
			}
			return true
		}

		gen := 0
		for round := 0; round < 60; round++ {
			if call(fmt.Sprintf("round-%d", round)) {
				okCalls++
			} else {
				failCalls++
			}

			switch round {
			case 15:
				// Kill the service Process.
				cl.CtrlFor(1).FailProcess(svc.p.ID())
			case 25:
				// Redeploy it (new generation, new capability).
				gen++
				svc = deployChaosService(tk, cl, 1, gen)
				if sreq, err = proc.GrantCap(svc.p, svc.req, client); err != nil {
					t.Fatal(err)
				}
			case 35:
				// Crash and reboot the service node's Controller.
				cl.CtrlFor(1).Crash()
				cl.CtrlFor(1).Reboot()
			case 45:
				// Redeploy after the reboot.
				gen++
				svc = deployChaosService(tk, cl, 1, gen)
				if sreq, err = proc.GrantCap(svc.p, svc.req, client); err != nil {
					t.Fatal(err)
				}
			}
			tk.Sleep(100 * 1000)
		}

		// Liveness: calls succeed outside the two outage windows
		// (15..25 and 35..45 ⇒ at most 22 failing rounds).
		if okCalls < 36 {
			t.Errorf("only %d/60 calls succeeded (failures: %d)", okCalls, failCalls)
		}
		if failCalls == 0 {
			t.Error("no calls failed across two injected outages — injection broken?")
		}
		// The final generation works.
		if !call("final") {
			t.Error("service unusable after recovery")
		}
	})
}

// TestChaosSoakDeterministic: the chaos run is reproducible.
func TestChaosSoakDeterministic(t *testing.T) {
	trace := func() string {
		var out string
		run(t, core.ClusterConfig{Nodes: 2, Seed: 7}, func(tk *sim.Task, cl *core.Cluster) {
			svcP := proc.Attach(cl, 1, "svc", 0)
			req, _ := svcP.RequestCreate(tk, 1, nil, nil)
			client := proc.Attach(cl, 0, "cli", 0)
			creq, _ := proc.GrantCap(svcP, req, client)
			cl.K.Spawn("svc", func(st *sim.Task) {
				for {
					d, ok := svcP.Receive(st)
					if !ok {
						return
					}
					if rep, okc := d.Cap(0); okc {
						svcP.Invoke(st, rep, nil, nil)
					}
					d.Done()
				}
			})
			for i := 0; i < 5; i++ {
				if i == 2 {
					cl.CtrlFor(1).Crash()
					cl.CtrlFor(1).Reboot()
				}
				reply, tag, _ := client.ReplyRequest(tk)
				f := client.WaitTag(tag)
				err := client.Invoke(tk, creq, nil, []proc.Arg{{Slot: 0, Cap: reply}})
				if err == nil {
					if d, werr := f.WaitTimeout(tk, 2*1000*1000); werr == nil {
						d.Done()
					} else {
						err = werr
					}
				}
				client.Drop(tk, reply)
				out += fmt.Sprintf("%d:%v@%v;", i, err == nil, tk.Now())
			}
		})
		return out
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("chaos traces differ:\n%s\n%s", a, b)
	}
	_ = cap.NilCap
}

// Package core implements the FractOS Controller: the trusted,
// isolated OS layer of §3. Controllers own Memory and Request objects,
// maintain per-Process capability spaces, route and validate every
// operation, orchestrate third-party memory copies, and translate
// failures into capability revocations.
//
// Controllers run as tasks on the simulated cluster and can be
// deployed on a node's host CPU or its SmartNIC (§6 evaluates both);
// the deployment only changes where the Controller's endpoint attaches
// and which column of the operation-cost table applies.
package core

import (
	"time"

	"fractos/internal/fabric"
	"fractos/internal/sim"
)

// OpCost is the Controller processing time of one operation class for
// the two deployment targets. The SmartNIC column is slower: the
// BlueField's 800 MHz ARM cores pay heavily for the atomic-rich
// capability and object lookups (§6.1).
type OpCost struct {
	CPU  sim.Time
	SNIC sim.Time
}

// On selects the cost for a deployment domain.
func (c OpCost) On(d fabric.Domain) sim.Time {
	if d == fabric.SNIC {
		return c.SNIC
	}
	return c.CPU
}

const usec = sim.Time(time.Microsecond)

// Perf is the Controller's operation-cost model, calibrated against
// the paper's micro-benchmarks (§6.1; see DESIGN.md §7).
type Perf struct {
	// Null: base syscall handling (Table 3: 3.00-2.42=0.58 µs CPU,
	// 4.50-3.68=0.82 µs sNIC).
	Null OpCost
	// ReqHandle: request invocation handling per Controller pass
	// (Figure 6: 1.41 µs CPU / 5.11 µs sNIC both ways).
	ReqHandle OpCost
	// CtrlSerial: additional (de)serialization when an invocation
	// crosses Controllers (Figure 6: +4.41 µs CPU / +12.21 µs sNIC
	// both ways, minus the extra network hops).
	CtrlSerial OpCost
	// PerCap: per-capability delegation cost per side (Figure 7:
	// ~2.4 µs CPU / 3.8 µs sNIC per capability round trip).
	PerCap OpCost
	// MemOp: memory-operation orchestration (validate + bounce setup).
	MemOp OpCost
	// PerChunk: per-bounce-chunk handling during memory_copy.
	PerChunk OpCost
	// CapOp: revocation/revtree/diminish handling.
	CapOp OpCost
}

// DefaultPerf returns the calibrated cost model.
func DefaultPerf() Perf {
	return Perf{
		Null:       OpCost{CPU: 580, SNIC: 820},
		ReqHandle:  OpCost{CPU: 700, SNIC: 2550},
		CtrlSerial: OpCost{CPU: 1000, SNIC: 3900},
		PerCap:     OpCost{CPU: 1200, SNIC: 1900},
		MemOp:      OpCost{CPU: 900, SNIC: 2800},
		PerChunk:   OpCost{CPU: 350, SNIC: 1200},
		CapOp:      OpCost{CPU: 600, SNIC: 1900},
	}
}

// Config parameterizes one Controller instance.
type Config struct {
	// Loc places the Controller (host CPU or SmartNIC of a node).
	Loc fabric.Location
	// Perf is the operation-cost model; zero value means DefaultPerf.
	Perf Perf
	// Window bounds outstanding (unacknowledged) deliveries per
	// managed Process — the congestion-control back-pressure of §4.
	// 0 means DefaultWindow.
	Window int
	// HWCopies switches memory_copy from bounce buffers to third-party
	// RDMA (the "HW copies" model of Figure 5).
	HWCopies bool
	// BounceChunk is the bounce-buffer chunk size; copies larger than
	// this use double buffering (§6.1: 16 KiB). 0 means default.
	BounceChunk int
	// BouncePairs is how many concurrent copies the bounce pool
	// admits (each needs two chunks). 0 means default.
	BouncePairs int
	// SingleBuffer disables double buffering in memory_copy (the
	// ablation of DESIGN.md §6): each chunk's write-out completes
	// before the next chunk's read begins.
	SingleBuffer bool
	// CapQuota caps the number of live capability-space entries per
	// managed Process (§4's quota on capability-space memory).
	// 0 means unlimited.
	CapQuota int
	// RPCTimeout arms sequence-numbered retransmission on the
	// inter-Controller call path: an outstanding call unanswered for
	// this long (virtual time) is resent, with the timeout doubling on
	// every attempt. 0 disables retransmission — the right setting for
	// a reliable fabric, where it would only add idle timer events.
	// Deployments with a lossy fabric (fabric.Faults) must set it; the
	// testbed layer arms DefaultRPCTimeout automatically when a chaos
	// profile is configured.
	RPCTimeout sim.Time
	// RPCRetries bounds send attempts per call (first send included).
	// After the last timeout expires the call resolves with
	// StatusAborted. 0 means DefaultRPCRetries when RPCTimeout > 0.
	RPCRetries int
	// LeaseTTL, when > 0, bounds the lifetime of Leased capability
	// entries (monitor_delegatee children, §3.6): an entry not dropped
	// within LeaseTTL of its installation is treated as abandoned by
	// the background lease GC, which revokes the delegatee child — so
	// the delegator observes the loss exactly as it would a holder
	// failure, without waiting for the failure detector. 0 (the
	// default) disables the lease GC entirely: no timer events, no
	// trace difference against a deployment without it.
	LeaseTTL sim.Time
	// LeaseGCInterval is the lease-GC sweep period. 0 means
	// DefaultLeaseGCInterval when LeaseTTL > 0.
	LeaseGCInterval sim.Time
	// LeaseGCBatch bounds capability-space slots examined per GC tick,
	// so a sweep over a million-entry space never stalls the
	// Controller for a full scan. 0 means DefaultLeaseGCBatch.
	LeaseGCBatch int
}

// Defaults for Config's zero fields.
const (
	DefaultWindow      = 32
	DefaultBounceChunk = 16 << 10
	DefaultBouncePairs = 8
	// DefaultRPCTimeout/Retries: first resend after 5 ms virtual,
	// doubling each attempt — six attempts cover a ~315 ms outage,
	// comfortably past the partition windows the chaos suite injects
	// while staying well above any legitimate reply latency.
	DefaultRPCTimeout = 5 * sim.Time(time.Millisecond)
	DefaultRPCRetries = 6
	// DefaultLeaseGCInterval/Batch: sweep every 1 ms virtual in slices
	// of 4096 slots — an expired lease is noticed within roughly
	// TTL + interval × ⌈slots/batch⌉ while each tick stays bounded.
	DefaultLeaseGCInterval = sim.Time(time.Millisecond)
	DefaultLeaseGCBatch    = 4096
)

func (c Config) withDefaults() Config {
	if c.Perf == (Perf{}) {
		c.Perf = DefaultPerf()
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.BounceChunk == 0 {
		c.BounceChunk = DefaultBounceChunk
	}
	if c.BouncePairs == 0 {
		c.BouncePairs = DefaultBouncePairs
	}
	if c.RPCTimeout > 0 && c.RPCRetries == 0 {
		c.RPCRetries = DefaultRPCRetries
	}
	if c.LeaseTTL > 0 && c.LeaseGCInterval == 0 {
		c.LeaseGCInterval = DefaultLeaseGCInterval
	}
	if c.LeaseGCBatch == 0 {
		c.LeaseGCBatch = DefaultLeaseGCBatch
	}
	return c
}

package core_test

// Black-box Controller tests: deployment shapes, quotas, failure
// semantics, and protocol robustness, exercised through libfractos.

import (
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/testbed"
	"fractos/internal/wire"
)

func us(f float64) sim.Time { return testbed.USec(f) }

func run(t *testing.T, cfg core.ClusterConfig, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	testbed.RunT(t, testbed.SpecOf(cfg),
		func(tk *sim.Task, d *testbed.Deployment) { fn(tk, d.Cl) })
}

func TestClusterPlacements(t *testing.T) {
	cases := []struct {
		p         core.Placement
		wantCtrls int
	}{
		{core.CtrlOnCPU, 3},
		{core.CtrlOnSNIC, 3},
		{core.CtrlShared, 1},
	}
	for _, c := range cases {
		cl := core.NewCluster(core.ClusterConfig{Nodes: 3, Placement: c.p})
		if len(cl.Ctrls) != c.wantCtrls {
			t.Errorf("%v: %d controllers, want %d", c.p, len(cl.Ctrls), c.wantCtrls)
		}
		// CtrlFor always resolves.
		for n := 0; n < 3; n++ {
			if cl.CtrlFor(n) == nil {
				t.Errorf("%v: no controller for node %d", c.p, n)
			}
		}
		if c.p == core.CtrlShared && cl.CtrlFor(2) != cl.Ctrls[0] {
			t.Error("shared placement must route every node to the single controller")
		}
		cl.K.Run()
		cl.K.Shutdown()
	}
}

func TestClusterDefaultsToThreeNodes(t *testing.T) {
	cl := core.NewCluster(core.ClusterConfig{})
	if len(cl.Ctrls) != 3 {
		t.Errorf("default nodes = %d, want 3 (the paper's testbed)", len(cl.Ctrls))
	}
	cl.K.Shutdown()
}

func TestGrantErrors(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		a := proc.Attach(cl, 0, "a", 64)
		b := proc.Attach(cl, 1, "b", 0)
		if _, err := core.Grant(cl.CtrlFor(0), a.ID(), 999, cl.CtrlFor(1), b.ID()); err == nil {
			t.Error("grant of nonexistent cid succeeded")
		}
		m, _ := a.MemoryCreate(tk, 0, 64, cap.MemRights)
		if _, err := core.Grant(cl.CtrlFor(0), a.ID(), m.ID(), cl.CtrlFor(1), 999); err == nil {
			t.Error("grant to nonexistent process succeeded")
		}
	})
}

func TestCapQuotaEnforced(t *testing.T) {
	cfg := core.ClusterConfig{Nodes: 1}
	cfg.Ctrl.CapQuota = 3
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 4096)
		var caps []proc.Cap
		for i := 0; i < 3; i++ {
			c, err := p.MemoryCreate(tk, uint64(i*64), 64, cap.MemRights)
			if err != nil {
				t.Fatalf("create %d under quota: %v", i, err)
			}
			caps = append(caps, c)
		}
		if _, err := p.MemoryCreate(tk, 1024, 64, cap.MemRights); !wire.IsStatus(err, wire.StatusQuota) {
			t.Errorf("over-quota create: err = %v, want quota", err)
		}
		// The rolled-back object must not leak.
		objs := cl.CtrlFor(0).ObjectCount()
		if objs != 3 {
			t.Errorf("object count = %d after rollback, want 3", objs)
		}
		// Dropping an entry frees quota.
		if err := p.Drop(tk, caps[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := p.MemoryCreate(tk, 1024, 64, cap.MemRights); err != nil {
			t.Errorf("create after drop failed: %v", err)
		}
	})
}

func TestCapQuotaBlocksDelegation(t *testing.T) {
	cfg := core.ClusterConfig{Nodes: 2}
	cfg.Ctrl.CapQuota = 2
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 1, "cli", 4096)
		req, err := srv.RequestCreate(tk, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.RequestCreate(tk, 2, nil, nil); err != nil {
			t.Fatal(err) // fills srv's quota of 2
		}
		creq, err := proc.GrantCap(srv, req, cli)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cli.MemoryCreate(tk, 0, 64, cap.MemRights)
		if err != nil {
			t.Fatal(err)
		}
		// An invocation delegating a capability needs a free slot in
		// the provider's space — there is none.
		err = cli.Invoke(tk, creq, nil, []proc.Arg{{Slot: 0, Cap: m}})
		if !wire.IsStatus(err, wire.StatusQuota) {
			t.Errorf("over-quota delegation: err = %v, want quota", err)
		}
		// Argument-free invocations still work.
		if err := cli.Invoke(tk, creq, nil, nil); err != nil {
			t.Errorf("no-arg invoke failed: %v", err)
		}
	})
}

// TestCleanupBroadcastPurgesThirdParty: revoking an object purges the
// stale entry at a third Controller that only ever held a delegated
// capability.
func TestCleanupBroadcastPurgesThirdParty(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 3}, func(tk *sim.Task, cl *core.Cluster) {
		owner := proc.Attach(cl, 0, "owner", 4096)
		third := proc.Attach(cl, 2, "third", 0)
		m, _ := owner.MemoryCreate(tk, 0, 64, cap.MemRights)
		granted, err := proc.GrantCap(owner, m, third)
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.Revoke(tk, m); err != nil {
			t.Fatal(err)
		}
		tk.Sleep(us(100)) // let the cleanup broadcast land
		// The third party's entry is gone entirely (not just dead).
		if err := third.Drop(tk, granted); !wire.IsStatus(err, wire.StatusNoCap) {
			t.Errorf("drop of purged entry: err = %v, want no-capability", err)
		}
	})
}

// TestGrantClearsDelegationFlags: the trusted bootstrap path
// (core.Grant) copies the object reference but must start a fresh
// delegation edge — the source entry's Monitored and Leased flags
// describe the edge it travelled over, not the object, and copying
// them would tie the recipient's bootstrap capability to another
// client's lease lifetime (see the core.Grant doc comment).
func TestGrantClearsDelegationFlags(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 3}, func(tk *sim.Task, cl *core.Cluster) {
		svc := proc.Attach(cl, 0, "svc", 0)
		cli := proc.Attach(cl, 1, "cli", 0)
		boot := proc.Attach(cl, 2, "boot", 0)

		// A monitored source entry: svc watches delegations of req.
		req, err := svc.RequestCreate(tk, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.MonitorDelegate(tk, req, func() {}); err != nil {
			t.Fatal(err)
		}
		src, ok := cl.CtrlFor(0).EntryOf(svc.ID(), req.ID())
		if !ok || !src.Monitored {
			t.Fatalf("precondition: source entry monitored=%v ok=%v", src.Monitored, ok)
		}
		cid, err := core.Grant(cl.CtrlFor(0), svc.ID(), req.ID(), cl.CtrlFor(2), boot.ID())
		if err != nil {
			t.Fatal(err)
		}
		got, ok := cl.CtrlFor(2).EntryOf(boot.ID(), cid)
		if !ok {
			t.Fatal("granted entry missing")
		}
		if got.Monitored || got.Leased {
			t.Errorf("grant propagated delegation flags: monitored=%v leased=%v",
				got.Monitored, got.Leased)
		}

		// A leased source entry: deliver the monitored capability
		// through an invocation (the monitor_delegate path), so the
		// client holds a lease, then bootstrap-grant the lease onward.
		carrier, err := cli.RequestCreate(tk, 9, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		carrierAtSvc, err := proc.GrantCap(cli, carrier, svc)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Invoke(tk, carrierAtSvc, nil, []proc.Arg{{Slot: 0, Cap: req}}); err != nil {
			t.Fatal(err)
		}
		d, ok := cli.Receive(tk)
		if !ok {
			t.Fatal("delivery lost")
		}
		lease, ok := d.Cap(0)
		d.Done()
		if !ok {
			t.Fatal("no lease delivered")
		}
		le, ok := cl.CtrlFor(1).EntryOf(cli.ID(), lease.ID())
		if !ok || !le.Leased {
			t.Fatalf("precondition: delivered entry leased=%v ok=%v", le.Leased, ok)
		}
		cid2, err := core.Grant(cl.CtrlFor(1), cli.ID(), lease.ID(), cl.CtrlFor(2), boot.ID())
		if err != nil {
			t.Fatal(err)
		}
		got2, ok := cl.CtrlFor(2).EntryOf(boot.ID(), cid2)
		if !ok {
			t.Fatal("granted lease entry missing")
		}
		if got2.Monitored || got2.Leased {
			t.Errorf("grant propagated lease flags: monitored=%v leased=%v",
				got2.Monitored, got2.Leased)
		}
	})
}

// TestCrashAbortsInFlightCalls: syscalls waiting on a crashed peer
// Controller complete with an error after the epoch announcement
// instead of hanging forever.
func TestCrashAbortsInFlightCalls(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, _ := srv.RequestCreate(tk, 1, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)

		// Crash controller 1, then issue an invoke that needs it.
		cl.CtrlFor(1).Crash()
		errCh := sim.NewChan[error](cl.K, "err", 0)
		cl.K.Spawn("invoker", func(it *sim.Task) {
			errCh.Send(it, cli.Invoke(it, creq, nil, nil))
		})
		tk.Sleep(us(50))
		// Reboot: the epoch broadcast must abort the pending call.
		cl.CtrlFor(1).Reboot()
		err, ok := errCh.RecvTimeout(tk, us(500))
		if !ok {
			t.Fatal("invoke hung after controller crash+reboot")
		}
		if err == nil {
			t.Fatal("invoke to crashed controller succeeded")
		}
	})
}

// TestProcessesUntrustedBySendingCtrlMessages: a malicious Process that
// sends Controller-protocol messages is ignored — it cannot forge
// derivations or revocations.
func TestProcessesUntrustedBySendingCtrlMessages(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		victim := proc.Attach(cl, 0, "victim", 4096)
		m, _ := victim.MemoryCreate(tk, 0, 64, cap.MemRights)
		entry, ok := cl.CtrlFor(0).EntryOf(victim.ID(), m.ID())
		if !ok {
			t.Fatal("no entry")
		}
		// The attacker forges a Controller revoke for the victim's
		// object, injecting it through its own Process endpoint.
		attacker := proc.Attach(cl, 0, "attacker", 0)
		cl.Net.Send(attacker.Endpoint(), cl.CtrlFor(0).EndpointID(),
			&wire.CtrlRevoke{Token: 1, Src: 99, From: entry.Ref})
		tk.Sleep(us(100))
		// The victim's capability must still be alive.
		dst, _ := victim.MemoryCreate(tk, 64, 64, cap.MemRights)
		if err := victim.MemoryCopy(tk, m, dst); err != nil {
			t.Errorf("forged ctrl message revoked a capability: %v", err)
		}
	})
}

// TestForgedAckIgnored: a Process (or any non-peer endpoint) sending
// CtrlAck messages must not be able to resolve the Controller's
// pending inter-Controller calls with attacker-chosen results.
func TestForgedAckIgnored(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, _ := srv.RequestCreate(tk, 1, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)

		// Flood controller 0 with forged acks for plausible tokens
		// from a non-peer endpoint, racing a real invocation.
		attackerEP := cl.Net.Attach("attacker", cl.CtrlFor(0).Loc(), 0)
		for tok := uint64(1); tok < 32; tok++ {
			cl.Net.Send(attackerEP.ID, cl.CtrlFor(0).EndpointID(),
				&wire.CtrlAck{Token: tok, Status: wire.StatusPerm})
		}
		if err := cli.Invoke(tk, creq, nil, nil); err != nil {
			t.Fatalf("forged acks corrupted a real invocation: %v", err)
		}
		d, ok := srv.ReceiveTimeout(tk, us(200))
		if !ok {
			t.Fatal("delivery lost")
		}
		d.Done()
	})
}

// TestUnknownCapRejected: using invalid cids fails cleanly everywhere.
func TestUnknownCapRejected(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 64)
		bogus := p.CapFromDelivered(wire.DeliveredCap{Cid: 12345, Kind: cap.KindRequest, Rights: cap.All})
		if err := p.Invoke(tk, bogus, nil, nil); !wire.IsStatus(err, wire.StatusNoCap) {
			t.Errorf("invoke: %v", err)
		}
		if err := p.Revoke(tk, bogus); !wire.IsStatus(err, wire.StatusNoCap) {
			t.Errorf("revoke: %v", err)
		}
		if _, err := p.Revtree(tk, bogus); !wire.IsStatus(err, wire.StatusNoCap) {
			t.Errorf("revtree: %v", err)
		}
		if _, err := p.MemoryDiminish(tk, bogus, 0, 1, 0); !wire.IsStatus(err, wire.StatusNoCap) {
			t.Errorf("diminish: %v", err)
		}
	})
}

// TestDoubleFailProcessIdempotent: failing a Process twice is safe.
func TestDoubleFailProcessIdempotent(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 64)
		if !cl.CtrlFor(0).FailProcess(p.ID()) {
			t.Fatal("first fail rejected")
		}
		if cl.CtrlFor(0).FailProcess(p.ID()) {
			t.Fatal("second fail accepted")
		}
		if cl.CtrlFor(0).FailProcess(9999) {
			t.Fatal("failing unknown process accepted")
		}
	})
}

// TestObjectCountStableAcrossChurn: create/revoke cycles do not leak
// owner-side objects.
func TestObjectCountStableAcrossChurn(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 1}, func(tk *sim.Task, cl *core.Cluster) {
		p := proc.Attach(cl, 0, "p", 4096)
		base := cl.CtrlFor(0).ObjectCount()
		for i := 0; i < 20; i++ {
			m, err := p.MemoryCreate(tk, 0, 64, cap.MemRights)
			if err != nil {
				t.Fatal(err)
			}
			lease, err := p.Revtree(tk, m)
			if err != nil {
				t.Fatal(err)
			}
			_ = lease
			if err := p.Revoke(tk, m); err != nil {
				t.Fatal(err)
			}
		}
		tk.Sleep(us(100))
		if got := cl.CtrlFor(0).ObjectCount(); got != base {
			t.Errorf("object count = %d after churn, want %d", got, base)
		}
	})
}

// TestRemoteRevtree: cap_create_revtree on a capability whose object
// lives at a peer Controller — one message to the owner creates the
// child; revoking the child is selective, exactly like the local path.
func TestRemoteRevtree(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 3}, func(tk *sim.Task, cl *core.Cluster) {
		owner := proc.Attach(cl, 0, "owner", 4096)
		holder := proc.Attach(cl, 1, "holder", 4096)
		sibling := proc.Attach(cl, 2, "sibling", 4096)

		mem, _ := owner.MemoryCreate(tk, 0, 64, cap.MemRights)
		held, _ := proc.GrantCap(owner, mem, holder)

		// The holder derives its own revocable lease — remotely, since
		// the object is owned by controller 0.
		lease, err := holder.Revtree(tk, held)
		if err != nil {
			t.Fatalf("remote revtree: %v", err)
		}
		sibLease, err := holder.Revtree(tk, held)
		if err != nil {
			t.Fatal(err)
		}
		granted, _ := proc.GrantCap(holder, sibLease, sibling)

		dst, _ := holder.MemoryCreate(tk, 0, 64, cap.MemRights)
		if err := holder.MemoryCopy(tk, lease, dst); err != nil {
			t.Fatalf("lease unusable: %v", err)
		}
		// Revoke one lease (again a remote revoke): the other survives.
		if err := holder.Revoke(tk, lease); err != nil {
			t.Fatalf("remote revoke: %v", err)
		}
		if err := holder.MemoryCopy(tk, lease, dst); err == nil {
			t.Fatal("revoked remote lease still usable")
		}
		sdst, _ := sibling.MemoryCreate(tk, 0, 64, cap.MemRights)
		if err := sibling.MemoryCopy(tk, granted, sdst); err != nil {
			t.Fatalf("sibling lease broken by selective revoke: %v", err)
		}
		// The parent capability is untouched.
		odst, _ := owner.MemoryCreate(tk, 128, 64, cap.MemRights)
		if err := owner.MemoryCopy(tk, mem, odst); err != nil {
			t.Fatalf("parent broken: %v", err)
		}
	})
}

// TestRemoteRevtreeOfDeadObject: deriving from a revoked remote object
// fails cleanly.
func TestRemoteRevtreeOfDeadObject(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		owner := proc.Attach(cl, 0, "owner", 4096)
		holder := proc.Attach(cl, 1, "holder", 0)
		mem, _ := owner.MemoryCreate(tk, 0, 64, cap.MemRights)
		held, _ := proc.GrantCap(owner, mem, holder)
		if err := owner.Revoke(tk, mem); err != nil {
			t.Fatal(err)
		}
		// Race the cleanup broadcast: either the entry is already
		// purged (no-capability) or the owner rejects (revoked).
		if _, err := holder.Revtree(tk, held); err == nil {
			t.Fatal("revtree of revoked remote object succeeded")
		}
	})
}

// TestCrashDownState: Down reflects Crash/Reboot, and epochs advance.
func TestCrashDownState(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		ctrl := cl.CtrlFor(1)
		if ctrl.Down() {
			t.Fatal("fresh controller reports down")
		}
		e0 := ctrl.Epoch()
		ctrl.Crash()
		if !ctrl.Down() {
			t.Fatal("crashed controller reports up")
		}
		ctrl.Crash() // idempotent
		ctrl.Reboot()
		if ctrl.Down() {
			t.Fatal("rebooted controller reports down")
		}
		ctrl.Reboot() // reboot of a live controller is a no-op
		if ctrl.Epoch() != e0+1 {
			t.Fatalf("epoch = %d, want %d", ctrl.Epoch(), e0+1)
		}
	})
}

// TestProcFailureWithDerivedObjects: a Process that owns a parent and
// derived views dies — the whole family is revoked once, without
// double-processing the descendants.
func TestProcFailureWithDerivedObjects(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		victim := proc.Attach(cl, 0, "victim", 4096)
		holder := proc.Attach(cl, 1, "holder", 4096)
		mem, _ := victim.MemoryCreate(tk, 0, 128, cap.MemRights)
		view, err := victim.MemoryDiminish(tk, mem, 0, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		hView, _ := proc.GrantCap(victim, view, holder)
		hMem, _ := proc.GrantCap(victim, mem, holder)

		base := cl.CtrlFor(0).ObjectCount()
		_ = base
		cl.CtrlFor(0).FailProcess(victim.ID())
		tk.Sleep(300 * 1000)

		dst, _ := holder.MemoryCreate(tk, 0, 128, cap.MemRights)
		if err := holder.MemoryCopy(tk, hView, dst); err == nil {
			t.Fatal("derived view survived owner failure")
		}
		if err := holder.MemoryCopy(tk, hMem, dst); err == nil {
			t.Fatal("parent object survived owner failure")
		}
		if got := cl.CtrlFor(0).ObjectCount(); got != 0 {
			t.Fatalf("object count = %d after failure cleanup, want 0", got)
		}
	})
}

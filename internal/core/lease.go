package core

import (
	"sort"

	"fractos/internal/cap"
	"fractos/internal/wire"
)

// Lease GC: the background virtual-time task that expires Leased
// capability entries (monitor_delegatee children, §3.6) whose holders
// neither used nor dropped them within cfg.LeaseTTL.
//
// A lease normally dies in one of two ways: the holder drops it
// (cap_drop), or the holder fails and procFailed revokes it. The GC
// covers the third case — a holder that is alive but has abandoned the
// lease (hung worker, forgotten handle) — by firing the exact same
// failure-translation path the §3.6 model prescribes: revoke the
// delegatee child so the delegator's monitor_delegate callback
// observes the loss. Because expiries reaped in one tick enqueue on
// the shared cleanup batch (processRevocations), a sweep that reaps a
// thousand leases still broadcasts ONE coalesced CtrlCleanup per peer,
// not a revocation storm.
//
// The timer is self-quiescing: it arms when a lease-stamped entry is
// installed and disarms once a full sweep cycle over every managed
// capability space finds no leases left. A Controller with
// cfg.LeaseTTL unset never schedules a single GC event, so deployments
// without leasing produce byte-identical traces to builds without the
// GC.

// expiredLease is one reaping decision deferred out of the sweep, so
// revocations never mutate a space mid-Sweep.
type expiredLease struct {
	ps  *procState
	cid cap.CapID
	ref cap.Ref
}

// noteLeaseInstalled records that a lease-stamped entry entered some
// managed space: restart the clean-cycle count and make sure the GC
// timer is running.
func (c *Controller) noteLeaseInstalled() {
	c.leaseClean = 0
	c.armLeaseGC()
}

// armLeaseGC schedules the next GC tick if leasing is configured and
// the timer is idle.
func (c *Controller) armLeaseGC() {
	if c.leaseArmed || c.cfg.LeaseTTL <= 0 {
		return
	}
	c.leaseArmed = true
	c.k.After(c.cfg.LeaseGCInterval, c.leaseGCTick)
}

// leaseGCTick sweeps up to cfg.LeaseGCBatch capability-space slots
// across the managed Processes (in sorted pid order, resuming each
// space at its own cursor) and reaps every lease whose deadline has
// passed. Bounded batches keep a tick's work independent of space
// size: a million-entry space is swept a slice per tick rather than
// stalling the Controller for a full scan.
func (c *Controller) leaseGCTick() {
	c.leaseArmed = false
	if c.down {
		// Leases died with the instance; a post-reboot install re-arms.
		return
	}
	now := int64(c.k.Now())

	pids := c.leasePids[:0]
	for pid := range c.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	c.leasePids = pids

	budget := c.cfg.LeaseGCBatch
	swept, total := 0, 0
	sawLease := false
	var expired []expiredLease
	for _, pid := range pids {
		ps := c.procs[pid]
		if ps.failed {
			continue
		}
		slots := ps.space.Slots()
		total += slots
		n := slots
		if rest := budget - swept; n > rest {
			n = rest
		}
		if n <= 0 {
			continue
		}
		swept += n
		ps.space.Sweep(&ps.gcCursor, n, func(cid cap.CapID, e *cap.Entry) {
			if e.Expire == 0 {
				return
			}
			sawLease = true
			if e.Expire <= now {
				expired = append(expired, expiredLease{ps: ps, cid: cid, ref: e.Ref})
			}
		})
	}

	for _, x := range expired {
		// Re-check liveness: an earlier expiry in this same batch can
		// revoke a shared ancestor and purge this entry with it.
		e, ok := x.ps.space.Lookup(x.cid)
		if !ok || e.Expire == 0 || e.Expire > now {
			continue
		}
		if x.ref.Ctrl == c.id {
			// Owner-local lease: revoke the delegatee child. This fires
			// the delegator's monitor callback and purges every local
			// entry referencing it (including this one); the cleanup
			// batch coalesces the broadcast. A non-OK status means the
			// child was already gone — count only reaps that took.
			if st := c.revokeLocal(x.ref); st == wire.StatusOK {
				c.metrics.LeasesExpired++
			}
			continue
		}
		c.metrics.LeasesExpired++
		// Remote owner: purge the local entry (generation-bumped — the
		// holder may still cache the cid) and ask the owner to revoke
		// the delegatee child. A failed call is fine: the owner's death
		// revokes its world via the epoch announcement anyway.
		x.ps.space.Purge(x.cid)
		ref := x.ref
		c.call(ref.Ctrl, func(t uint64) wire.Message {
			return &wire.CtrlRevoke{Token: t, Src: c.id, From: ref}
		}, func(wire.Message) {})
	}

	// Self-quiescing rearm: stop only after sweeping one full cycle
	// over every space without seeing a single lease; otherwise keep
	// ticking. noteLeaseInstalled restarts the cycle count, so a lease
	// installed while the timer runs can never be missed.
	if sawLease {
		c.leaseClean = 0
	} else {
		c.leaseClean += swept
	}
	if c.leaseClean >= total {
		return
	}
	c.armLeaseGC()
}

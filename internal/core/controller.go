package core

import (
	"fmt"
	"sort"

	"fractos/internal/cap"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Controller is one trusted FractOS Controller instance. It owns the
// objects registered with it, maintains the capability spaces of the
// Processes it manages, and exchanges the inter-Controller protocol
// with its peers.
//
// A Controller is driven by a single task (Start); all handlers run in
// that task, serialized, with processing time modeled by the Perf
// table. Multi-round operations (remote derivations, memory copies)
// park their continuation in the pending table or run as spawned
// sub-tasks so the main loop stays responsive.
type Controller struct {
	id    cap.ControllerID
	cfg   Config
	k     *sim.Kernel
	net   *fabric.Net
	ep    *fabric.Endpoint
	epoch cap.Epoch

	tree  *cap.Tree
	procs map[cap.ProcID]*procState
	byEP  map[fabric.EndpointID]*procState

	peers      map[cap.ControllerID]fabric.EndpointID
	peerEPs    map[fabric.EndpointID]bool
	peerEpochs map[cap.ControllerID]cap.Epoch

	pending   map[uint64]pendingCall
	nextToken uint64
	// dedup is the receiver half of the at-most-once RPC contract:
	// per-peer-endpoint caches of replies already sent, so a
	// retransmitted (or fabric-duplicated) request is answered from
	// the cache instead of being re-executed. See docs/FAULTS.md.
	dedup map[fabric.EndpointID]*dedupState

	bounceFree []int          // free bounce-chunk offsets in our arena
	bounceSem  *sim.Semaphore // admits BouncePairs concurrent copies

	// Revocation-cleanup batch: refs and revoked stubs accumulated by
	// processRevocations at one virtual instant, flushed as a single
	// coalesced CtrlCleanup broadcast per peer (see flushCleanup).
	cleanupRefs  []cap.Ref
	cleanupStubs []*cap.Node
	cleanupArmed bool

	// Lease GC (§3.6 failure translation for abandoned leases).
	leaseArmed bool
	leaseClean int          // lease-free slots swept since a lease was last seen
	leasePids  []cap.ProcID // scratch for sorted tick iteration

	metrics Metrics
	down    bool
}

// pendingCall is an outstanding inter-Controller request awaiting its
// response. The peer is recorded so calls can be aborted when that
// Controller is observed to have failed or rebooted. build and
// attempt drive timeout-based retransmission over a lossy fabric
// (cfg.RPCTimeout): build re-materializes the frame with the same
// token, attempt invalidates stale timers after a resend.
type pendingCall struct {
	peer    cap.ControllerID
	cb      func(wire.Message)
	build   func(token uint64) wire.Message
	attempt int
}

// dedupState is the per-sender at-most-once cache: replies already
// produced for this peer endpoint, keyed by the request token, with
// FIFO eviction. Tokens are minted monotonically per sender, so a hit
// is always a retransmission (or fabric duplicate) of a request whose
// side effects already happened.
type dedupState struct {
	replies map[uint64]wire.Message
	order   []uint64 // insertion order, for eviction
}

// dedupCap bounds cached replies per peer. Retransmissions arrive
// within cfg.RPCRetries timeouts of the original, long before a busy
// peer can mint dedupCap newer tokens, so eviction never breaks the
// at-most-once contract in practice.
const dedupCap = 512

// procState is the Controller-side record of one managed Process.
type procState struct {
	id     cap.ProcID
	ep     *fabric.Endpoint
	space  *cap.Space
	failed bool

	window      int // remaining delivery credits (congestion control)
	deliverSeq  uint64
	outstanding map[uint64]struct{}
	queue       []*wire.Deliver

	// gcCursor is the lease GC's resume position in this space, so
	// each tick sweeps a bounded slice instead of the whole slab.
	gcCursor uint32
}

// New creates a Controller with the given identity and configuration,
// attached to the fabric at cfg.Loc. Call Start to begin serving.
func New(k *sim.Kernel, net *fabric.Net, id cap.ControllerID, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	arena := cfg.BouncePairs * 2 * cfg.BounceChunk
	c := &Controller{
		id:         id,
		cfg:        cfg,
		k:          k,
		net:        net,
		ep:         net.Attach(fmt.Sprintf("ctrl%d@%v", id, cfg.Loc), cfg.Loc, arena),
		epoch:      1,
		tree:       cap.NewTree(),
		procs:      make(map[cap.ProcID]*procState),
		byEP:       make(map[fabric.EndpointID]*procState),
		peers:      make(map[cap.ControllerID]fabric.EndpointID),
		peerEPs:    make(map[fabric.EndpointID]bool),
		peerEpochs: make(map[cap.ControllerID]cap.Epoch),
		pending:    make(map[uint64]pendingCall),
		dedup:      make(map[fabric.EndpointID]*dedupState),
		bounceSem:  sim.NewSemaphore(cfg.BouncePairs),
	}
	// Descending order: popBounce takes from the end, so chunks are
	// handed out lowest-offset first and a lightly loaded Controller
	// keeps reusing the front of its bounce arena. Combined with the
	// fabric's prefix-lazy arena materialization this keeps the 256 KiB
	// bounce pool's memory cost proportional to actual copy concurrency.
	for i := cfg.BouncePairs*2 - 1; i >= 0; i-- {
		c.bounceFree = append(c.bounceFree, i*cfg.BounceChunk)
	}
	return c
}

// ID returns the Controller's address.
func (c *Controller) ID() cap.ControllerID { return c.id }

// Epoch returns the Controller's current reboot counter.
func (c *Controller) Epoch() cap.Epoch { return c.epoch }

// EndpointID returns the Controller's fabric endpoint.
func (c *Controller) EndpointID() fabric.EndpointID { return c.ep.ID }

// Loc returns where the Controller is deployed.
func (c *Controller) Loc() fabric.Location { return c.cfg.Loc }

// AddPeer registers another Controller in the deployment directory.
func (c *Controller) AddPeer(id cap.ControllerID, ep fabric.EndpointID) {
	c.peers[id] = ep
	c.peerEPs[ep] = true
	c.peerEpochs[id] = 1
}

// AttachProcess registers a Process to be managed by this Controller.
// The Process's endpoint (and RDMA arena) lives at loc, which need not
// equal the Controller's own location: §6 evaluates co-located,
// SmartNIC, and remote ("Shared HAL") deployments.
func (c *Controller) AttachProcess(pid cap.ProcID, name string, loc fabric.Location, arenaSize int) *fabric.Endpoint {
	ep := c.net.Attach(name, loc, arenaSize)
	ps := &procState{
		id:          pid,
		ep:          ep,
		space:       cap.NewSpace(),
		window:      c.cfg.Window,
		outstanding: make(map[uint64]struct{}),
	}
	c.procs[pid] = ps
	c.byEP[ep.ID] = ps
	return ep
}

// EntryOf exposes a Process's capability-space entry. It is a
// TCB-internal hook used by the deployment bootstrap (the paper's
// trusted key/value service) and by tests.
func (c *Controller) EntryOf(pid cap.ProcID, cid cap.CapID) (cap.Entry, bool) {
	ps, ok := c.procs[pid]
	if !ok {
		return cap.Entry{}, false
	}
	return ps.space.Lookup(cid)
}

// GrantEntry installs an entry directly into a managed Process's
// capability space — the bootstrap path by which the operator hands a
// new Process its initial capabilities.
func (c *Controller) GrantEntry(pid cap.ProcID, e cap.Entry) (cap.CapID, bool) {
	ps, ok := c.procs[pid]
	if !ok || ps.failed {
		return cap.NilCap, false
	}
	cid, st := c.install(ps, e)
	return cid, st == wire.StatusOK
}

// install adds an entry to a Process's capability space, enforcing the
// per-Process quota (§4). Leased entries are stamped with their lease
// deadline when the lease GC is configured, and installing one arms
// the GC timer if it is idle.
func (c *Controller) install(ps *procState, e cap.Entry) (cap.CapID, wire.Status) {
	if q := c.cfg.CapQuota; q > 0 && ps.space.Len() >= q {
		c.metrics.QuotaRejected++
		return cap.NilCap, wire.StatusQuota
	}
	if e.Leased && c.cfg.LeaseTTL > 0 {
		e.Expire = int64(c.k.Now()) + int64(c.cfg.LeaseTTL)
	}
	cid := ps.space.Install(e)
	if cid == cap.NilCap {
		// The 16M-slot cid index range is exhausted: report it as the
		// quota it effectively is.
		c.metrics.QuotaRejected++
		return cap.NilCap, wire.StatusQuota
	}
	if e.Expire != 0 {
		c.noteLeaseInstalled()
	}
	return cid, wire.StatusOK
}

// ObjectCount reports live objects owned by this Controller (for
// tests and resource accounting).
func (c *Controller) ObjectCount() int { return c.tree.LiveLen() }

// Start spawns the Controller's serving task.
func (c *Controller) Start() {
	c.k.Spawn(c.ep.Name, func(t *sim.Task) { c.serve(t) })
}

func (c *Controller) serve(t *sim.Task) {
	for {
		d, ok := c.ep.Inbox.Recv(t)
		if !ok {
			return
		}
		if c.down {
			continue
		}
		if cost := c.cost(d.Msg); cost > 0 {
			t.Sleep(cost)
		}
		c.dispatch(t, d)
	}
}

// cost models the Controller's processing time for a message,
// according to the deployment domain (host CPU vs SmartNIC).
func (c *Controller) cost(m wire.Message) sim.Time {
	dom := c.cfg.Loc.Domain
	p := &c.cfg.Perf
	switch m := m.(type) {
	case *wire.Null, *wire.DeliverDone, *wire.ProcBye:
		return p.Null.On(dom)
	case *wire.MemCreate, *wire.MemDiminish, *wire.CapRevtree,
		*wire.CapRevoke, *wire.CapDrop, *wire.MonitorDelegate, *wire.MonitorReceive:
		return p.CapOp.On(dom)
	case *wire.MemCopy:
		return p.MemOp.On(dom)
	case *wire.ReqCreate:
		return p.ReqHandle.On(dom) + sim.Time(len(m.Caps))*p.PerCap.On(dom)
	case *wire.ReqInvoke:
		return p.ReqHandle.On(dom) + sim.Time(len(m.Caps))*p.PerCap.On(dom)
	case *wire.CtrlInvoke:
		return p.ReqHandle.On(dom) + p.CtrlSerial.On(dom) + sim.Time(len(m.Caps))*p.PerCap.On(dom)
	case *wire.CtrlDeriveReq:
		return p.CapOp.On(dom) + p.CtrlSerial.On(dom) + sim.Time(len(m.Caps))*p.PerCap.On(dom)
	case *wire.CtrlDeriveMem, *wire.CtrlRevtree, *wire.CtrlRevoke, *wire.CtrlWatch:
		return p.CapOp.On(dom) + p.CtrlSerial.On(dom)
	case *wire.CtrlValidate:
		return p.Null.On(dom)
	case *wire.CtrlAck, *wire.CtrlValInfo, *wire.CtrlDelegNoteAck,
		*wire.CtrlCleanup, *wire.CtrlNotify, *wire.CtrlEpoch:
		return p.Null.On(dom)
	default:
		return p.Null.On(dom)
	}
}

func (c *Controller) dispatch(t *sim.Task, d fabric.Delivery) {
	// Processes are untrusted (§3.2): anything arriving from a managed
	// Process is a syscall, never Controller protocol — otherwise a
	// malicious Process could forge acks for our pending calls or
	// inject derivations.
	if ps, fromProc := c.byEP[d.From]; fromProc {
		if ps.failed {
			return
		}
		c.dispatchSyscall(t, ps, d.Msg)
		return
	}

	// Health probes are answered for anyone who can reach us — the
	// monitoring service (services.NodeWatch) is not a peer Controller
	// and has no capability state here. A crashed Controller never
	// answers: serve() discards deliveries while c.down, which is
	// exactly the silence the failure detector interprets.
	if ping, ok := d.Msg.(*wire.WatchPing); ok {
		pong := &wire.WatchPong{Seq: ping.Seq, Ctrl: c.id, Epoch: c.epoch}
		if !c.net.Send(c.ep.ID, d.From, pong) {
			c.metrics.SendFailed++
		}
		return
	}

	// Only pre-deployed peer Controllers speak the Controller
	// protocol; traffic from any other endpoint is dropped.
	if !c.peerEPs[d.From] {
		return
	}

	// Responses to our own inter-Controller calls.
	switch m := d.Msg.(type) {
	case *wire.CtrlAck:
		c.resolvePending(m.Token, m)
		return
	case *wire.CtrlValInfo:
		c.resolvePending(m.Token, m)
		return
	case *wire.CtrlDelegNoteAck:
		c.resolvePending(m.Token, m)
		return
	}
	c.dispatchPeer(t, d.From, d.Msg)
}

func (c *Controller) dispatchSyscall(t *sim.Task, ps *procState, m wire.Message) {
	switch m := m.(type) {
	case *wire.Null:
		c.metrics.NullOps++
		c.complete(ps, m.Token, wire.StatusOK, cap.NilCap, 0)
	case *wire.MemCreate:
		c.metrics.MemOps++
		c.handleMemCreate(ps, m)
	case *wire.MemDiminish:
		c.metrics.MemOps++
		c.handleMemDiminish(ps, m)
	case *wire.MemCopy:
		c.metrics.Copies++
		c.handleMemCopy(ps, m)
	case *wire.ReqCreate:
		c.metrics.ReqCreates++
		c.handleReqCreate(ps, m)
	case *wire.ReqInvoke:
		c.metrics.Invokes++
		c.handleReqInvoke(t, ps, m)
	case *wire.CapRevtree:
		c.metrics.CapOps++
		c.handleCapRevtree(ps, m)
	case *wire.CapRevoke:
		c.metrics.CapOps++
		c.handleCapRevoke(ps, m)
	case *wire.CapDrop:
		c.metrics.CapOps++
		c.handleCapDrop(ps, m)
	case *wire.MonitorDelegate:
		c.metrics.CapOps++
		c.handleMonitorDelegate(ps, m)
	case *wire.MonitorReceive:
		c.metrics.CapOps++
		c.handleMonitorReceive(ps, m)
	case *wire.DeliverDone:
		c.handleDeliverDone(ps, m)
	case *wire.ProcBye:
		c.procFailed(ps)
	default:
		// Unknown or disallowed (e.g. a Process sending Controller
		// protocol): ignore. Processes are untrusted (§3.2).
	}
}

// peerToken extracts the request token from a token-carrying peer
// request (the messages answered through reply and thus subject to
// at-most-once dedup). ok is false for fire-and-forget peer traffic
// (CtrlNotify, CtrlEpoch), which is idempotent by construction.
//
//fractos:hotpath
func peerToken(m wire.Message) (uint64, bool) {
	switch m := m.(type) {
	case *wire.CtrlDeriveMem:
		return m.Token, true
	case *wire.CtrlDeriveReq:
		return m.Token, true
	case *wire.CtrlRevtree:
		return m.Token, true
	case *wire.CtrlRevoke:
		return m.Token, true
	case *wire.CtrlValidate:
		return m.Token, true
	case *wire.CtrlInvoke:
		return m.Token, true
	case *wire.CtrlCleanup:
		return m.Token, true
	case *wire.CtrlWatch:
		return m.Token, true
	}
	return 0, false
}

func (c *Controller) dispatchPeer(t *sim.Task, from fabric.EndpointID, m wire.Message) {
	// At-most-once execution: a token we have already answered for
	// this peer endpoint is a retransmission (or a fabric duplicate) —
	// its side effects must not run again. Re-send the cached reply:
	// the original may have been lost on the way back.
	if tok, ok := peerToken(m); ok {
		if ds := c.dedup[from]; ds != nil {
			if cached, hit := ds.replies[tok]; hit {
				c.metrics.DedupHits++
				if !c.net.Send(c.ep.ID, from, cached) {
					c.metrics.SendFailed++
				}
				return
			}
		}
	}
	switch m := m.(type) {
	case *wire.CtrlDeriveMem:
		c.peerDeriveMem(from, m)
	case *wire.CtrlDeriveReq:
		c.peerDeriveReq(from, m)
	case *wire.CtrlRevtree:
		c.peerRevtree(from, m)
	case *wire.CtrlRevoke:
		c.peerRevoke(from, m)
	case *wire.CtrlValidate:
		c.peerValidate(from, m)
	case *wire.CtrlInvoke:
		c.peerInvoke(t, from, m)
	case *wire.CtrlCleanup:
		c.peerCleanup(from, m)
	case *wire.CtrlWatch:
		c.peerWatch(from, m)
	case *wire.CtrlNotify:
		c.peerNotify(m)
	case *wire.CtrlEpoch:
		c.peerEpoch(m)
	default:
		// Ignore unknown peer traffic.
	}
}

// complete sends a syscall completion back to the Process. A false
// Send means the Process's endpoint was severed after the failed
// check — the failure path will revoke its state, so the lost
// completion is correct behavior, not silent loss.
//
//fractos:hotpath
func (c *Controller) complete(ps *procState, token uint64, st wire.Status, cid cap.CapID, aux uint64) {
	if ps.failed {
		return
	}
	if !c.net.Send(c.ep.ID, ps.ep.ID, &wire.Completion{Token: token, Status: st, Cid: cid, Aux: aux}) { // fractos:alloc-ok the completion message is the reply itself, one per syscall by design
		c.metrics.SendFailed++
	}
}

// reply answers a token-carrying peer request, recording the reply in
// the at-most-once cache so a retransmission of the same request is
// answered identically without re-execution. All peer handlers must
// send their responses through here.
//
// The cache is only maintained while dedupArmed: on a reliable fabric
// with retransmission disarmed no token can ever repeat, so the
// fault-free hot path skips the per-reply map/slice work entirely.
//
//fractos:hotpath
func (c *Controller) reply(from fabric.EndpointID, token uint64, m wire.Message) {
	if c.dedupArmed() {
		ds := c.dedup[from]
		if ds == nil {
			ds = &dedupState{replies: make(map[uint64]wire.Message)} // fractos:alloc-ok armed only under loss or retransmission
			c.dedup[from] = ds
		}
		if _, exists := ds.replies[token]; !exists {
			ds.replies[token] = m              // fractos:alloc-ok armed only: map growth bounded by dedupCap
			ds.order = append(ds.order, token) // fractos:alloc-ok armed only: ring bounded by dedupCap
			if len(ds.order) > dedupCap {
				delete(ds.replies, ds.order[0])
				ds.order = ds.order[1:]
			}
		}
	}
	if !c.net.Send(c.ep.ID, from, m) {
		// The peer's endpoint is severed (crash in progress). Its
		// epoch announcement will abort the caller's pending call.
		c.metrics.SendFailed++
	}
}

// dedupArmed reports whether the at-most-once reply cache must be
// maintained. Repeated tokens have exactly two sources — sender
// retransmission (cfg.RPCTimeout armed) and fabric duplication (chaos
// layer installed) — so when neither is possible the cache would only
// accumulate dead weight. core.NewCluster arms RPCTimeout whenever it
// installs faults, which keeps this check a pure receiver-side
// optimization there; direct InstallFaults users are covered by the
// Lossy probe.
//
//fractos:hotpath
func (c *Controller) dedupArmed() bool {
	return c.cfg.RPCTimeout > 0 || c.net.Lossy()
}

// dropDedup forgets the at-most-once cache for a peer endpoint. Called
// when that peer is observed rebooted: replies minted for its previous
// incarnation must never answer tokens of the next one.
func (c *Controller) dropDedup(ep fabric.EndpointID) {
	delete(c.dedup, ep)
}

// call issues an inter-Controller request; cb runs exactly once, in
// simulation context, when the matching response arrives — or with a
// synthetic failure CtrlAck when the call cannot complete: the peer's
// endpoint is torn down (StatusNoProc), the peer is observed dead or
// rebooted (StatusAborted via abortPendingTo), this Controller itself
// crashes (StatusAborted via Crash), or, with cfg.RPCTimeout armed,
// every retransmission attempt times out (StatusAborted).
func (c *Controller) call(peer cap.ControllerID, build func(token uint64) wire.Message, cb func(wire.Message)) {
	ep, ok := c.peers[peer]
	if !ok {
		cb(&wire.CtrlAck{Status: wire.StatusUnknownObj})
		return
	}
	c.nextToken++
	token := c.nextToken
	c.pending[token] = pendingCall{peer: peer, cb: cb, build: build}
	if !c.net.Send(c.ep.ID, ep, build(token)) {
		// A torn-down endpoint is locally observable (unlike in-flight
		// loss): fail fast, no retransmission.
		delete(c.pending, token)
		cb(&wire.CtrlAck{Status: wire.StatusNoProc})
		return
	}
	if c.cfg.RPCTimeout > 0 {
		c.k.After(c.cfg.RPCTimeout, func() { c.resend(token, 0) })
	}
}

// resend fires when attempt's timeout expires: if the call is still
// unanswered, retransmit with the same token and double the timeout;
// after cfg.RPCRetries attempts resolve it as aborted. Stale timers
// (call answered, or already superseded by a later attempt) are
// no-ops, so arming them never perturbs a healthy exchange.
func (c *Controller) resend(token uint64, attempt int) {
	pc, ok := c.pending[token]
	if !ok || pc.attempt != attempt || c.down {
		return
	}
	if attempt+1 >= c.cfg.RPCRetries {
		c.metrics.RPCAborted++
		c.resolvePending(token, &wire.CtrlAck{Token: token, Status: wire.StatusAborted})
		return
	}
	pc.attempt = attempt + 1
	c.pending[token] = pc
	c.metrics.Retransmits++
	if !c.net.Send(c.ep.ID, c.peers[pc.peer], pc.build(token)) {
		c.resolvePending(token, &wire.CtrlAck{Token: token, Status: wire.StatusNoProc})
		return
	}
	c.k.After(c.cfg.RPCTimeout<<uint(pc.attempt), func() { c.resend(token, pc.attempt) })
}

// callF is call with a future, for spawned sub-tasks.
func (c *Controller) callF(peer cap.ControllerID, build func(token uint64) wire.Message) *sim.Future[wire.Message] {
	f := sim.NewFuture[wire.Message](c.k)
	c.call(peer, build, func(m wire.Message) { f.Set(m) })
	return f
}

func (c *Controller) resolvePending(token uint64, m wire.Message) {
	pc, ok := c.pending[token]
	if !ok {
		return
	}
	delete(c.pending, token)
	pc.cb(m)
}

// abortPendingTo fails every outstanding call addressed to a peer that
// has been observed dead or rebooted, so syscalls waiting on it
// complete with an error instead of hanging.
func (c *Controller) abortPendingTo(peer cap.ControllerID) {
	var tokens []uint64
	for tok, pc := range c.pending {
		if pc.peer == peer {
			tokens = append(tokens, tok)
		}
	}
	// Deterministic order.
	for i := 0; i < len(tokens); i++ {
		for j := i + 1; j < len(tokens); j++ {
			if tokens[j] < tokens[i] {
				tokens[i], tokens[j] = tokens[j], tokens[i]
			}
		}
	}
	for _, tok := range tokens {
		pc := c.pending[tok]
		delete(c.pending, tok)
		pc.cb(&wire.CtrlAck{Token: tok, Status: wire.StatusAborted})
	}
}

// abortAllPending fails every outstanding inter-Controller call, in
// ascending token order, with StatusAborted. Used by Crash so that a
// failing Controller deterministically unwinds its own in-flight RPCs
// instead of leaking their callbacks across the reboot.
func (c *Controller) abortAllPending() {
	if len(c.pending) == 0 {
		return
	}
	tokens := make([]uint64, 0, len(c.pending))
	for tok := range c.pending {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	for _, tok := range tokens {
		pc := c.pending[tok]
		delete(c.pending, tok)
		c.metrics.RPCAborted++
		pc.cb(&wire.CtrlAck{Token: tok, Status: wire.StatusAborted})
	}
}

// ref builds a Ref for an object owned by this Controller.
func (c *Controller) ref(obj cap.ObjectID) cap.Ref {
	return cap.Ref{Ctrl: c.id, Obj: obj, Epoch: c.epoch}
}

// Validate is the owner-side capability check on the syscall hot
// path: one epoch-fenced O(1) slab probe that answers "is this Ref a
// live object I own, conveying these rights" without allocating. The
// fast path is a single fused condition — slab probe, revocation flag,
// ownership, epoch fence — and, for Memory objects when need != 0, the
// rights mask; every failing case drops to validateMiss for precise
// status classification off the hot path. Every use of a capability
// funnels through here (§3.5: each use contacts the owner), so this
// is the operation the cap-scale experiment measures.
//
//fractos:hotpath
func (c *Controller) Validate(ref cap.Ref, need cap.Rights) (*cap.Node, wire.Status) {
	n := c.tree.Probe(ref.Obj)
	if n != nil && !n.Revoked && ref.Ctrl == c.id && ref.Epoch == c.epoch {
		if need != 0 {
			if mo, ok := n.Payload.(*memObject); ok && !mo.rights.Has(need) {
				return nil, wire.StatusPerm
			}
		}
		return n, wire.StatusOK
	}
	return nil, c.validateMiss(ref)
}

// validateMiss classifies a failed validation: wrong owner, stale
// epoch, or revoked/unknown object (unknown IDs report StatusRevoked
// too — a Ref that never existed here is indistinguishable from one
// whose stub was already erased, and must not leak more).
func (c *Controller) validateMiss(ref cap.Ref) wire.Status {
	if ref.Ctrl != c.id {
		return wire.StatusUnknownObj
	}
	if ref.Epoch != c.epoch {
		return wire.StatusStale
	}
	return wire.StatusRevoked
}

// resolveOwned returns the live node for a Ref owned by this
// Controller, checking epoch and revocation.
func (c *Controller) resolveOwned(ref cap.Ref) (*cap.Node, wire.Status) {
	return c.Validate(ref, 0)
}

// resolveEntry fetches a live capability-space entry with required
// rights and kind.
//
//fractos:hotpath
func (c *Controller) resolveEntry(ps *procState, cid cap.CapID, kind cap.Kind, need cap.Rights) (cap.Entry, wire.Status) {
	e, ok := ps.space.Lookup(cid)
	if !ok {
		return cap.Entry{}, wire.StatusNoCap
	}
	if kind != 0 && e.Kind != kind {
		return e, wire.StatusKind
	}
	if !e.Rights.Has(need) {
		return e, wire.StatusPerm
	}
	// Eager stale-epoch detection (§3.6): if we know the owner
	// rebooted past this entry's epoch, it is implicitly revoked.
	if e.Ref.Ctrl == c.id {
		if e.Ref.Epoch != c.epoch {
			c.metrics.StaleRejected++
			return e, wire.StatusStale
		}
	} else if known, ok := c.peerEpochs[e.Ref.Ctrl]; ok && e.Ref.Epoch < known {
		c.metrics.StaleRejected++
		return e, wire.StatusStale
	}
	return e, wire.StatusOK
}

// resolveCapSlots turns syscall capability arguments (cids) into
// transferable capability arguments, enforcing the Grant right.
func (c *Controller) resolveCapSlots(ps *procState, slots []wire.CapSlot) ([]capSlotArg, wire.Status) {
	args := make([]capSlotArg, 0, len(slots))
	for _, s := range slots {
		e, st := c.resolveEntry(ps, s.Cid, 0, cap.Grant)
		if st != wire.StatusOK {
			return nil, st
		}
		arg := capArg{ref: e.Ref, kind: e.Kind, rights: e.Rights, size: e.Size, monitored: e.Monitored}
		// Delegating a monitored capability creates a separately
		// revocable child at the owner so the delegator can observe
		// its destruction (§3.6). Monitored entries only exist at the
		// owner's own Controller (monitor_delegate is owner-local), so
		// this derivation is always local.
		if e.Monitored && e.Ref.Ctrl == c.id {
			child, st := c.deriveDelegatee(e.Ref)
			if st != wire.StatusOK {
				return nil, st
			}
			arg.ref = child
			arg.monitored = false
			arg.leased = true
		}
		args = append(args, capSlotArg{slot: s.Slot, arg: arg})
	}
	return args, wire.StatusOK
}

// deriveDelegatee creates a monitor_delegatee child of a monitored
// object.
func (c *Controller) deriveDelegatee(ref cap.Ref) (cap.Ref, wire.Status) {
	n, st := c.resolveOwned(ref)
	if st != wire.StatusOK {
		return cap.Ref{}, st
	}
	child := c.tree.Derive(n.ID, n.Payload)
	if child == nil {
		return cap.Ref{}, wire.StatusRevoked
	}
	child.MonitorDelegatee = true
	n.DelegateeCount++
	return c.ref(child.ID), wire.StatusOK
}

// xferToArgs converts on-wire capability transfers into capability
// arguments.
func xferToArgs(xs []wire.CapXfer) []capSlotArg {
	args := make([]capSlotArg, 0, len(xs))
	for _, x := range xs {
		args = append(args, capSlotArg{slot: x.Slot, arg: capArg{
			ref: x.Ref, kind: x.Kind, rights: x.Rights, size: x.Size,
			monitored: x.Monitored, leased: x.Leased,
		}})
	}
	return args
}

// argsToXfer converts capability arguments to on-wire form.
func argsToXfer(args []capSlotArg) []wire.CapXfer {
	xs := make([]wire.CapXfer, 0, len(args))
	for _, a := range args {
		xs = append(xs, wire.CapXfer{
			Slot: a.slot, Ref: a.arg.ref, Kind: a.arg.kind,
			Rights: a.arg.rights, Size: a.arg.size,
			Monitored: a.arg.monitored, Leased: a.arg.leased,
		})
	}
	return xs
}

// sortedPeers returns peer Controller ids in ascending order, so
// broadcasts are deterministic (map iteration order is not).
func (c *Controller) sortedPeers() []cap.ControllerID {
	ids := make([]cap.ControllerID, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedSlots returns the request's capability slots in ascending
// order for deterministic delivery.
func sortedSlots(caps map[uint16]capArg) []uint16 {
	slots := make([]uint16, 0, len(caps))
	for s := range caps {
		slots = append(slots, s)
	}
	// Insertion sort: requests carry a handful of slots at most, and
	// this avoids the sort.Slice closure allocation on the per-invoke
	// path.
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && slots[j] < slots[j-1]; j-- {
			slots[j], slots[j-1] = slots[j-1], slots[j]
		}
	}
	return slots
}

// discardObject rolls back a freshly created object that was never
// exposed through any capability (e.g. when the creating install hits
// the quota): revoke and erase it without cleanup traffic.
func (c *Controller) discardObject(id cap.ObjectID) {
	revoked := c.tree.Revoke(id)
	for i := len(revoked) - 1; i >= 0; i-- {
		c.tree.Remove(revoked[i].ID)
	}
}

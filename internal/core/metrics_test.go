package core_test

import (
	"strings"
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
)

// TestMetricsCountOperations drives one of each operation class and
// checks the Controller's counters.
func TestMetricsCountOperations(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		ctrl0 := cl.CtrlFor(0)
		a := proc.Attach(cl, 0, "a", 4096)
		b := proc.Attach(cl, 0, "b", 4096)

		if err := a.Null(tk); err != nil {
			t.Fatal(err)
		}
		src, _ := a.MemoryCreate(tk, 0, 256, cap.MemRights)
		dstB, _ := b.MemoryCreate(tk, 0, 256, cap.MemRights)
		dst, _ := proc.GrantCap(b, dstB, a)
		if err := a.MemoryCopy(tk, src, dst); err != nil {
			t.Fatal(err)
		}
		req, _ := a.RequestCreate(tk, 1, nil, nil)
		if err := a.Invoke(tk, req, nil, nil); err != nil {
			t.Fatal(err)
		}
		d, _ := a.Receive(tk)
		d.Done()
		lease, _ := a.Revtree(tk, src)
		if err := a.Revoke(tk, lease); err != nil {
			t.Fatal(err)
		}
		tk.Sleep(100 * 1000)

		m := ctrl0.Metrics()
		checks := map[string][2]int64{
			"NullOps":        {m.NullOps, 1},
			"MemOps":         {m.MemOps, 2},
			"Copies":         {m.Copies, 1},
			"CopyBytes":      {m.CopyBytes, 256},
			"ReqCreates":     {m.ReqCreates, 1},
			"Invokes":        {m.Invokes, 1},
			"DeliveriesSent": {m.DeliveriesSent, 1},
			"Revocations":    {m.Revocations, 1},
			"CleanupsSent":   {m.CleanupsSent, 1},
		}
		for name, v := range checks {
			if v[0] != v[1] {
				t.Errorf("%s = %d, want %d", name, v[0], v[1])
			}
		}
		// CapOps: revtree + revoke.
		if m.CapOps != 2 {
			t.Errorf("CapOps = %d, want 2", m.CapOps)
		}
		if !strings.Contains(m.String(), "copy=1(256B)") {
			t.Errorf("String() = %q", m.String())
		}
	})
}

// TestMetricsBackpressureAndQuota exercises the refusal counters.
func TestMetricsBackpressureAndQuota(t *testing.T) {
	cfg := core.ClusterConfig{Nodes: 1}
	cfg.Ctrl.Window = 1
	cfg.Ctrl.CapQuota = 2
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 4096)
		req, _ := srv.RequestCreate(tk, 1, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)
		for i := 0; i < 3; i++ {
			if err := cli.Invoke(tk, creq, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		tk.Sleep(50 * 1000)
		m := cl.CtrlFor(0).Metrics()
		if m.Backpressured != 2 {
			t.Errorf("Backpressured = %d, want 2 (window 1, 3 invokes)", m.Backpressured)
		}
		// Exhaust cli's quota (2 entries: creq + one create).
		if _, err := cli.MemoryCreate(tk, 0, 64, cap.MemRights); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.MemoryCreate(tk, 64, 64, cap.MemRights); err == nil {
			t.Fatal("expected quota error")
		}
		if m := cl.CtrlFor(0).Metrics(); m.QuotaRejected != 1 {
			t.Errorf("QuotaRejected = %d, want 1", m.QuotaRejected)
		}
	})
}

// TestMetricsStaleCounter: using a capability after its owner rebooted
// increments StaleRejected at the rejecting controller.
func TestMetricsStaleCounter(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 1, "srv", 0)
		cli := proc.Attach(cl, 0, "cli", 0)
		req, _ := srv.RequestCreate(tk, 1, nil, nil)
		creq, _ := proc.GrantCap(srv, req, cli)
		ctrl1 := cl.CtrlFor(1)
		ctrl1.Crash()
		ctrl1.Reboot()
		// Invoke immediately, racing the epoch broadcast: either the
		// eager purge removed the entry (NoCap) or the stale check
		// fired — both are §3.6-conformant.
		err := cli.Invoke(tk, creq, nil, nil)
		if err == nil {
			t.Fatal("stale invoke succeeded")
		}
		tk.Sleep(100 * 1000)
		m0 := cl.CtrlFor(0).Metrics()
		if m0.StaleRejected == 0 && m0.EntriesPurged == 0 {
			// The epoch purge path counts via PurgeRefs in peerEpoch,
			// which is not part of EntriesPurged; accept StaleRejected
			// or a vanished entry.
			if _, ok := cl.CtrlFor(0).EntryOf(cli.ID(), creq.ID()); ok {
				t.Error("stale entry survived with no rejection recorded")
			}
		}
	})
}

// TestFootprintBudget models §4's memory accounting: a Controller
// managing a handful of Processes fits comfortably in a BlueField's
// 16 GB.
func TestFootprintBudget(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 3, Placement: core.CtrlOnSNIC}, func(tk *sim.Task, cl *core.Cluster) {
		ctrl := cl.CtrlFor(0)
		for i := 0; i < 4; i++ {
			p := proc.Attach(cl, 0, "p", 4096)
			if _, err := p.MemoryCreate(tk, 0, 64, cap.MemRights); err != nil {
				t.Fatal(err)
			}
		}
		f := ctrl.Footprint()
		if f.ProcQueueBytes != 4*64<<20 {
			t.Errorf("proc queues = %d, want 4×64MB", f.ProcQueueBytes)
		}
		if f.PeerQueueBytes != 2*64<<20 {
			t.Errorf("peer queues = %d, want 2×64MB (two peers)", f.PeerQueueBytes)
		}
		if f.CapSpaceBytes != 4*40 {
			t.Errorf("cap space = %d, want 4 entries × 40B", f.CapSpaceBytes)
		}
		if f.ObjectBytes != 4*24 {
			t.Errorf("objects = %d, want 4 × 24B", f.ObjectBytes)
		}
		if total := f.Total(); total > 16<<30 {
			t.Errorf("footprint %d exceeds a BlueField's 16GB", total)
		}
	})
}

package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"fractos/internal/cap"
	"fractos/internal/wire"
)

func TestImmBufWriteOnce(t *testing.T) {
	var b immBuf
	if st := b.write(0, []byte("abcd")); st != wire.StatusOK {
		t.Fatalf("first write: %v", st)
	}
	if st := b.write(2, []byte("xy")); st != wire.StatusImmutable {
		t.Fatalf("overlapping write: %v, want immutable", st)
	}
	if st := b.write(4, []byte("efgh")); st != wire.StatusOK {
		t.Fatalf("adjacent write: %v", st)
	}
	if !bytes.Equal(b.bytes(), []byte("abcdefgh")) {
		t.Fatalf("bytes = %q", b.bytes())
	}
}

func TestImmBufSparseWrites(t *testing.T) {
	var b immBuf
	if st := b.write(8, []byte{0xff}); st != wire.StatusOK {
		t.Fatal(st)
	}
	// The gap is zero-filled and still writable.
	if b.bytes()[0] != 0 || len(b.bytes()) != 9 {
		t.Fatalf("bytes = %v", b.bytes())
	}
	if st := b.write(0, []byte{1}); st != wire.StatusOK {
		t.Fatalf("gap write: %v", st)
	}
}

func TestImmBufBounds(t *testing.T) {
	var b immBuf
	if st := b.write(-1, []byte{1}); st != wire.StatusBounds {
		t.Errorf("negative offset: %v", st)
	}
	if st := b.write(maxImmBuf, []byte{1}); st != wire.StatusBounds {
		t.Errorf("past cap: %v", st)
	}
	if st := b.write(0, nil); st != wire.StatusOK {
		t.Errorf("empty write: %v", st)
	}
}

// Property: whatever the sequence of writes, a byte that was ever
// written never changes value afterwards.
func TestImmBufNeverRewritesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b immBuf
		shadow := map[int]byte{}
		for i := 0; i < 50; i++ {
			off := rng.Intn(256)
			data := make([]byte, rng.Intn(16))
			rng.Read(data)
			st := b.write(off, data)
			if st == wire.StatusOK {
				for j, v := range data {
					shadow[off+j] = v
				}
			}
			for pos, want := range shadow {
				if b.bytes()[pos] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReqObjectCloneIsolation(t *testing.T) {
	orig := &reqObject{provider: 7, tag: 42, caps: map[uint16]capArg{
		1: {ref: cap.Ref{Ctrl: 1, Obj: 2}, kind: cap.KindMemory},
	}}
	orig.applyImms([]wire.ImmArg{{Offset: 0, Data: []byte("base")}})

	cl := orig.clone()
	if st := cl.applyImms([]wire.ImmArg{{Offset: 8, Data: []byte("more")}}); st != wire.StatusOK {
		t.Fatal(st)
	}
	if st := cl.applyCaps([]capSlotArg{{slot: 2, arg: capArg{kind: cap.KindRequest}}}); st != wire.StatusOK {
		t.Fatal(st)
	}
	// The original is untouched.
	if len(orig.imms.bytes()) != 4 || len(orig.caps) != 1 {
		t.Fatal("clone mutated the original")
	}
	if cl.provider != 7 || cl.tag != 42 {
		t.Fatal("clone lost identity")
	}
}

func TestReqObjectSlotImmutable(t *testing.T) {
	r := &reqObject{caps: map[uint16]capArg{}}
	if st := r.applyCaps([]capSlotArg{{slot: 3, arg: capArg{kind: cap.KindMemory}}}); st != wire.StatusOK {
		t.Fatal(st)
	}
	if st := r.applyCaps([]capSlotArg{{slot: 3, arg: capArg{kind: cap.KindRequest}}}); st != wire.StatusImmutable {
		t.Fatalf("slot overwrite: %v", st)
	}
}

func TestCostModelCoversAllMessages(t *testing.T) {
	c := &Controller{cfg: Config{}.withDefaults()} // cost() only reads cfg
	msgs := []wire.Message{
		&wire.Null{}, &wire.MemCreate{}, &wire.MemDiminish{}, &wire.MemCopy{},
		&wire.ReqCreate{Caps: make([]wire.CapSlot, 3)},
		&wire.ReqInvoke{}, &wire.CapRevtree{}, &wire.CapRevoke{}, &wire.CapDrop{},
		&wire.MonitorDelegate{}, &wire.MonitorReceive{}, &wire.DeliverDone{},
		&wire.ProcBye{}, &wire.CtrlInvoke{Caps: make([]wire.CapXfer, 2)},
		&wire.CtrlDeriveMem{}, &wire.CtrlDeriveReq{}, &wire.CtrlRevtree{},
		&wire.CtrlRevoke{}, &wire.CtrlValidate{}, &wire.CtrlAck{},
		&wire.CtrlValInfo{}, &wire.CtrlCleanup{}, &wire.CtrlWatch{},
		&wire.CtrlNotify{}, &wire.CtrlEpoch{},
	}
	for _, m := range msgs {
		if c.cost(m) <= 0 {
			t.Errorf("%T has zero processing cost", m)
		}
	}
	// Capability arguments add per-cap cost.
	with := c.cost(&wire.ReqInvoke{Caps: make([]wire.CapSlot, 4)})
	without := c.cost(&wire.ReqInvoke{})
	if with <= without {
		t.Error("per-capability cost not applied")
	}
}

func TestSNICCostsExceedCPU(t *testing.T) {
	cpu := DefaultPerf()
	for _, oc := range []OpCost{cpu.Null, cpu.ReqHandle, cpu.CtrlSerial, cpu.PerCap, cpu.MemOp, cpu.PerChunk, cpu.CapOp} {
		if oc.SNIC <= oc.CPU {
			t.Errorf("sNIC cost %v not above CPU cost %v", oc.SNIC, oc.CPU)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != DefaultWindow || c.BounceChunk != DefaultBounceChunk || c.BouncePairs != DefaultBouncePairs {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.Perf == (Perf{}) {
		t.Error("perf defaults not applied")
	}
	// Explicit values survive.
	c2 := Config{Window: 3, BounceChunk: 4096}.withDefaults()
	if c2.Window != 3 || c2.BounceChunk != 4096 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestPlacementString(t *testing.T) {
	if CtrlOnCPU.String() != "cpu" || CtrlOnSNIC.String() != "snic" || CtrlShared.String() != "shared" {
		t.Error("placement strings wrong")
	}
}

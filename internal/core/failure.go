package core

import (
	"fractos/internal/assert"
	"fractos/internal/cap"
	"fractos/internal/fabric"
	"fractos/internal/wire"
)

// fabricEP converts the on-wire endpoint representation back to a
// fabric endpoint id.
func fabricEP(v uint32) fabric.EndpointID { return fabric.EndpointID(v) }

// procFailed translates a Process failure into capability revocations
// (§3.6): every object the Process provides is revoked (cascading
// through revocation trees and firing monitor callbacks), every leased
// delegatee child it held is revoked so delegators notice, and its
// capability space is destroyed.
func (c *Controller) procFailed(ps *procState) {
	if ps.failed {
		return
	}
	ps.failed = true
	c.net.Disconnect(ps.ep.ID)

	// Revoke leased delegatee children held by the failed Process.
	ps.space.ForEach(func(_ cap.CapID, e cap.Entry) {
		if !e.Leased {
			return
		}
		if e.Ref.Ctrl == c.id {
			st := c.revokeLocal(e.Ref)
			// Already-revoked is fine during cascade cleanup; anything
			// else means the leased entry pointed at a ref this
			// controller no longer owns.
			assert.That(st == wire.StatusOK || st == wire.StatusRevoked,
				"core: leased-entry revocation failed with status %v", st)
			return
		}
		ref := e.Ref
		c.call(ref.Ctrl, func(t uint64) wire.Message {
			return &wire.CtrlRevoke{Token: t, Src: c.id, From: ref}
		}, func(wire.Message) {})
	})

	// Revoke every root object owned/provided by the failed Process.
	var roots []cap.ObjectID
	c.tree.ForEach(func(n *cap.Node) {
		if n.Revoked {
			return
		}
		var owner cap.ProcID
		switch p := n.Payload.(type) {
		case *memObject:
			owner = p.owner
		case *reqObject:
			owner = p.provider
		default:
			return
		}
		if owner != ps.id {
			return
		}
		// Only revoke subtree roots: descendants fall with them.
		if parent, ok := c.tree.GetAny(n.Parent); ok && !parent.Revoked {
			if sameOwner(parent.Payload, ps.id) {
				return
			}
		}
		roots = append(roots, n.ID)
	})
	for _, id := range roots {
		if revoked := c.tree.Revoke(id); revoked != nil {
			c.processRevocations(revoked)
		}
	}

	// Destroy the capability space and any queued deliveries.
	ps.space = cap.NewSpace()
	ps.queue = nil
	for seq := range ps.outstanding {
		delete(ps.outstanding, seq)
	}
}

// sameOwner reports whether an object payload belongs to pid.
func sameOwner(payload interface{}, pid cap.ProcID) bool {
	switch p := payload.(type) {
	case *memObject:
		return p.owner == pid
	case *reqObject:
		return p.provider == pid
	}
	return false
}

// FailProcess injects a Process failure, as the owner Controller would
// detect it when the Process's channel is severed. Exposed for the
// node-monitoring service and failure tests.
func (c *Controller) FailProcess(pid cap.ProcID) bool {
	ps, ok := c.procs[pid]
	if !ok || ps.failed {
		return false
	}
	c.procFailed(ps)
	return true
}

// Crash takes the Controller down abruptly: its endpoint is severed
// and all state is lost. Per §3.6, all its Processes are considered
// failed and their capabilities revoked; peers learn about it from the
// external node-monitoring service via AnnounceEpoch after Reboot.
//
// Every in-flight cross-Controller call this instance issued is
// resolved with StatusAborted, in ascending token order: a crash must
// not leak pending callbacks (continuations parked in sub-tasks would
// otherwise wait forever on futures nobody can resolve).
func (c *Controller) Crash() {
	if c.down {
		return
	}
	c.down = true
	c.net.Disconnect(c.ep.ID)
	for _, ps := range c.procs {
		if !ps.failed {
			ps.failed = true
			c.net.Disconnect(ps.ep.ID)
		}
	}
	c.abortAllPending()
}

// Reboot brings a crashed Controller back with a fresh epoch and empty
// state, and announces the new epoch to all peers. Capabilities minted
// under the previous epoch are now implicitly revoked everywhere:
// eagerly purged by peers, and rejected on use by the stale-epoch
// check (§3.6).
func (c *Controller) Reboot() {
	if !c.down {
		return
	}
	c.epoch++
	c.tree = cap.NewTree()
	c.procs = make(map[cap.ProcID]*procState)
	c.byEP = make(map[fabric.EndpointID]*procState)
	c.pending = make(map[uint64]pendingCall)
	// The at-most-once cache died with the instance: replies recorded
	// before the crash must not answer post-reboot retransmissions
	// (their tokens reference state that no longer exists — the sender
	// aborts them via the epoch announcement instead).
	c.dedup = make(map[fabric.EndpointID]*dedupState)
	c.down = false
	c.net.Reconnect(c.ep.ID)
	c.AnnounceEpoch()
}

// AnnounceEpoch broadcasts the Controller's current epoch, normally on
// behalf of the external monitoring service (Zookeeper in the paper).
// Epoch announcements are fire-and-forget but idempotent and
// monotonic; the heartbeat NodeWatch re-announces on every suspicion
// cycle, so a frame lost here is repaired by the detector.
func (c *Controller) AnnounceEpoch() {
	for _, peer := range c.sortedPeers() {
		if !c.net.Send(c.ep.ID, c.peers[peer], &wire.CtrlEpoch{Ctrl: c.id, Epoch: c.epoch}) {
			c.metrics.SendFailed++
		}
	}
}

// Down reports whether the Controller is crashed.
func (c *Controller) Down() bool { return c.down }

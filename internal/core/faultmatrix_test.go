package core_test

// Chaos matrix: the Controller RPC layer (retransmission + at-most-once
// dedup + stale-epoch rejection, docs/FAULTS.md) exercised over the
// fabric fault injector across a grid of loss rates, a partition that
// heals inside the retransmission window, and a Controller crash in
// the middle of a partition. Every scenario asserts liveness (bounded
// calls — the workload can never hang) and the whole matrix asserts
// determinism (double runs produce byte-identical traces).

import (
	"fmt"
	"testing"

	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

const fms = sim.Time(1000 * 1000) // 1 ms virtual

// echoRig is a client (node 0) + echo-service (svcNode) pair whose
// request path crosses the lossy Controller↔Controller hop twice per
// call (CtrlInvoke out, reply-Request CtrlInvoke back).
type echoRig struct {
	cl     *core.Cluster
	client *proc.Process
	svcP   *proc.Process
	svcReq proc.Cap
	creq   proc.Cap
}

func newEchoRig(tk *sim.Task, cl *core.Cluster, svcNode int, gen int) *echoRig {
	r := &echoRig{cl: cl}
	r.svcP = proc.Attach(cl, svcNode, fmt.Sprintf("echo-g%d", gen), 4096)
	var err error
	if r.svcReq, err = r.svcP.RequestCreate(tk, 1, nil, nil); err != nil {
		panic(err)
	}
	cl.K.Spawn("echo-loop", func(st *sim.Task) {
		for {
			d, ok := r.svcP.Receive(st)
			if !ok {
				return
			}
			if rep, okc := d.Cap(0); okc {
				//fractos:status-ok echo reply failure surfaces as the client's timeout
				r.svcP.Invoke(st, rep, []wire.ImmArg{proc.BytesArg(0, d.Imms)}, nil)
			}
			d.Done()
		}
	})
	r.client = proc.Attach(cl, 0, fmt.Sprintf("cli-g%d", gen), 8192)
	if r.creq, err = proc.GrantCap(r.svcP, r.svcReq, r.client); err != nil {
		panic(err)
	}
	return r
}

// call is a bounded echo round trip: it can fail (an aborted RPC, a
// timed-out reply) but can never hang past the deadline.
func (r *echoRig) call(tk *sim.Task, payload string, deadline sim.Time) error {
	reply, tag, err := r.client.ReplyRequest(tk)
	if err != nil {
		return err
	}
	f := r.client.WaitTag(tag)
	err = r.client.Invoke(tk, r.creq,
		[]wire.ImmArg{proc.BytesArg(0, []byte(payload))},
		[]proc.Arg{{Slot: 0, Cap: reply}})
	if err != nil {
		r.client.Drop(tk, reply)
		return err
	}
	d, err := f.WaitTimeout(tk, deadline)
	r.client.Drop(tk, reply)
	if err != nil {
		return err
	}
	d.Done()
	if string(d.Imms) != payload {
		return fmt.Errorf("echo corrupted: %q != %q", d.Imms, payload)
	}
	return nil
}

// TestCrashAbortsPendingPeerCalls pins the Crash/abortAllPending edge:
// an inter-Controller call parked with no retransmission armed (the
// frame was lost to a partition; RPCTimeout is zero) must be resolved
// with StatusAborted when the *issuing* Controller crashes, instead of
// leaking its callback across the reboot.
func TestCrashAbortsPendingPeerCalls(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2, Seed: 5}, func(tk *sim.Task, cl *core.Cluster) {
		r := newEchoRig(tk, cl, 1, 0)
		if err := r.call(tk, "warm", 20*fms); err != nil {
			t.Fatalf("healthy path: %v", err)
		}
		// Cut node 1. With no chaos config, retransmission is unarmed:
		// the forwarded CtrlInvoke is silently lost and nothing will
		// ever resolve the pending call on its own.
		cl.Net.PartitionNodes([]int{1})
		finished := false
		cl.K.Spawn("stuck-invoke", func(st *sim.Task) {
			_ = r.client.Invoke(st, r.creq, nil, nil)
			finished = true
		})
		tk.Sleep(50 * fms)
		if finished {
			t.Fatal("invoke resolved across a partition with retransmission unarmed")
		}
		if got := cl.CtrlFor(0).Metrics().RPCAborted; got != 0 {
			t.Fatalf("RPCAborted=%d before the crash, want 0", got)
		}
		cl.CtrlFor(0).Crash()
		if got := cl.CtrlFor(0).Metrics().RPCAborted; got != 1 {
			t.Errorf("RPCAborted=%d after Crash, want 1 (pending call leaked)", got)
		}
		// Reboot must start from a clean pending table: epoch bumped,
		// no stale callbacks left to fire.
		cl.Net.HealPartitions()
		cl.CtrlFor(0).Reboot()
		tk.Sleep(5 * fms)
		if got := cl.CtrlFor(0).Metrics().RPCAborted; got != 1 {
			t.Errorf("RPCAborted moved to %d across Reboot, want still 1", got)
		}
		if cl.CtrlFor(0).Epoch() != 2 {
			t.Errorf("epoch after reboot = %d, want 2", cl.CtrlFor(0).Epoch())
		}
	})
}

// TestChaosMatrixLoss: every call completes successfully under 0 %,
// 1 % and 5 % frame loss — the retransmission protocol masks the
// drops, the dedup cache absorbs the duplicated requests.
func TestChaosMatrixLoss(t *testing.T) {
	for _, tc := range []struct {
		name string
		drop float64
	}{
		{"drop-0", 0},
		{"drop-1pct", 0.01},
		{"drop-5pct", 0.05},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.ClusterConfig{
				Nodes:  2,
				Seed:   21,
				Faults: fabric.Faults{Drop: tc.drop, Dup: tc.drop / 2, Seed: 77},
			}
			run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
				r := newEchoRig(tk, cl, 1, 0)
				for i := 0; i < 40; i++ {
					if err := r.call(tk, fmt.Sprintf("m-%d", i), 500*fms); err != nil {
						t.Fatalf("call %d under %.0f%% loss: %v", i, tc.drop*100, err)
					}
					tk.Sleep(fms / 2)
				}
				m0, m1 := cl.CtrlFor(0).Metrics(), cl.CtrlFor(1).Metrics()
				fs := cl.Net.FaultStats()
				if tc.drop == 0 {
					if fs.Dropped != 0 || m0.Retransmits+m1.Retransmits != 0 {
						t.Errorf("fault-free run perturbed: %+v retx=%d/%d",
							fs, m0.Retransmits, m1.Retransmits)
					}
					return
				}
				if fs.Dropped == 0 {
					t.Error("no frames dropped — injector inert?")
				}
				if m0.Retransmits+m1.Retransmits == 0 {
					t.Error("frames were lost but nothing was retransmitted")
				}
			})
		})
	}
}

// TestChaosPartitionHeal: a partition shorter than the retransmission
// window is fully masked — every call issued across the outage still
// completes once the fabric heals, via retransmission and dedup.
func TestChaosPartitionHeal(t *testing.T) {
	cfg := core.ClusterConfig{
		Nodes: 2,
		Seed:  22,
		Faults: fabric.Faults{
			Drop: 0.01, Seed: 78,
			Plan: fabric.Plan{
				{At: 20 * fms, Kind: fabric.Partition, Group: []int{1}},
				{At: 45 * fms, Kind: fabric.Heal},
			},
		},
	}
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		r := newEchoRig(tk, cl, 1, 0)
		for i := 0; i < 50; i++ {
			if err := r.call(tk, fmt.Sprintf("p-%d", i), 1000*fms); err != nil {
				t.Fatalf("call %d across the partition window: %v", i, err)
			}
			tk.Sleep(fms)
		}
		fs := cl.Net.FaultStats()
		if fs.Cut == 0 {
			t.Error("no frames were cut — the plan never partitioned")
		}
		m0 := cl.CtrlFor(0).Metrics()
		if m0.Retransmits == 0 {
			t.Error("partition masked without retransmissions?")
		}
		if m0.RPCAborted != 0 {
			t.Errorf("RPCAborted=%d — a sub-window partition should be fully masked", m0.RPCAborted)
		}
	})
}

// TestChaosCrashMidPartition: the service-side Controller crashes while
// partitioned away. Calls during the outage fail in bounded time
// (retries exhaust → StatusAborted), the reboot announces a fresh
// epoch after the heal, stale capabilities are rejected, and a
// redeployed service restores end-to-end health.
func TestChaosCrashMidPartition(t *testing.T) {
	cfg := core.ClusterConfig{
		Nodes:  2,
		Seed:   23,
		Faults: fabric.Faults{Drop: 0.01, Seed: 79},
	}
	run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
		r := newEchoRig(tk, cl, 1, 0)
		if err := r.call(tk, "pre", 500*fms); err != nil {
			t.Fatalf("healthy path: %v", err)
		}

		cl.Net.PartitionNodes([]int{1})
		cl.CtrlFor(1).Crash()

		// Bounded failure during the outage: the retransmission window
		// (5 ms doubling × 6 attempts ≈ 315 ms) exhausts and the client
		// sees an error — never a hang.
		if err := r.call(tk, "mid", 1000*fms); err == nil {
			t.Fatal("call succeeded against a crashed, partitioned Controller")
		}

		cl.Net.HealPartitions()
		cl.CtrlFor(1).Reboot()
		tk.Sleep(10 * fms) // let the epoch announcement propagate

		if got := cl.CtrlFor(1).Epoch(); got != 2 {
			t.Fatalf("epoch after mid-partition reboot = %d, want 2", got)
		}
		// The old capability died with the epoch.
		if err := r.call(tk, "stale", 500*fms); err == nil {
			t.Fatal("stale pre-crash capability still usable after the epoch bump")
		}
		// Redeploy: fresh service, fresh grant, full health.
		r2 := newEchoRig(tk, cl, 1, 1)
		if err := r2.call(tk, "post", 500*fms); err != nil {
			t.Fatalf("redeployed service unusable: %v", err)
		}
	})
}

// TestChaosMatrixDeterministic: every faulty scenario in the matrix is
// reproducible — two runs with the same seeds yield byte-identical
// call traces, Controller metrics, and fault counters.
func TestChaosMatrixDeterministic(t *testing.T) {
	scenarios := []core.ClusterConfig{
		{Nodes: 2, Seed: 31, Faults: fabric.Faults{Drop: 0.05, Dup: 0.02, Seed: 90}},
		{Nodes: 2, Seed: 32, Faults: fabric.Faults{
			Drop: 0.02, Jitter: fms / 4, Seed: 91,
			Plan: fabric.Plan{
				{At: 10 * fms, Kind: fabric.Partition, Group: []int{1}},
				{At: 25 * fms, Kind: fabric.Heal},
			},
		}},
	}
	trace := func(cfg core.ClusterConfig) string {
		var out string
		run(t, cfg, func(tk *sim.Task, cl *core.Cluster) {
			r := newEchoRig(tk, cl, 1, 0)
			for i := 0; i < 30; i++ {
				err := r.call(tk, fmt.Sprintf("d-%d", i), 1000*fms)
				out += fmt.Sprintf("%d:%v@%d;", i, err == nil, tk.Now())
				tk.Sleep(fms / 2)
			}
			out += fmt.Sprintf("|m0=%v|m1=%v|f=%+v",
				cl.CtrlFor(0).Metrics(), cl.CtrlFor(1).Metrics(), cl.Net.FaultStats())
		})
		return out
	}
	for i, cfg := range scenarios {
		a, b := trace(cfg), trace(cfg)
		if a != b {
			t.Fatalf("scenario %d traces differ:\n%s\n%s", i, a, b)
		}
	}
}

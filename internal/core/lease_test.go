package core_test

// Lease GC tests: abandoned Leased entries (monitor_delegatee
// children, §3.6) are expired by the background virtual-time GC, which
// fires the same failure-translation path a holder crash would —
// without the holder crashing and without a revocation storm.

import (
	"testing"

	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
)

// leaseCluster is a deployment with the lease GC armed: leases expire
// 200 µs after installation, swept every 50 µs.
func leaseCluster(nodes int, placement core.Placement) core.ClusterConfig {
	return core.ClusterConfig{
		Nodes:     nodes,
		Placement: placement,
		Ctrl: core.Config{
			LeaseTTL:        us(200),
			LeaseGCInterval: us(50),
		},
	}
}

// delegateLease hands cli a leased capability for a monitored request
// owned by srv, returning the lease and a pointer to the fired flag.
func delegateLease(t *testing.T, tk *sim.Task, srv, cli *proc.Process) (proc.Cap, *bool) {
	t.Helper()
	req, err := srv.RequestCreate(tk, 11, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := new(bool)
	if err := srv.MonitorDelegate(tk, req, func() { *fired = true }); err != nil {
		t.Fatal(err)
	}
	carrier, err := cli.RequestCreate(tk, 12, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	carrierSrv, err := proc.GrantCap(cli, carrier, srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Invoke(tk, carrierSrv, nil, []proc.Arg{{Slot: 0, Cap: req}}); err != nil {
		t.Fatal(err)
	}
	d, ok := cli.Receive(tk)
	if !ok {
		t.Fatal("delegation delivery lost")
	}
	leased, ok := d.Cap(0)
	d.Done()
	if !ok {
		t.Fatal("no leased cap delivered")
	}
	return leased, fired
}

// TestLeaseGCExpiresAbandonedLease: a client that abandons its lease —
// alive, but never using or dropping it — is reaped by the GC: the
// delegator's monitor_delegate callback fires, the client's entry is
// purged, and the expiry is counted. Exercised in both deployment
// shapes: CtrlShared (owner-local lease, reaped by revokeLocal) and
// CtrlOnCPU across nodes (remote lease: local purge + CtrlRevoke to
// the owner).
func TestLeaseGCExpiresAbandonedLease(t *testing.T) {
	shapes := []struct {
		name      string
		placement core.Placement
	}{
		{"local", core.CtrlShared},
		{"remote", core.CtrlOnCPU},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			run(t, leaseCluster(2, shape.placement), func(tk *sim.Task, cl *core.Cluster) {
				srv := proc.Attach(cl, 0, "srv", 0)
				cli := proc.Attach(cl, 1, "cli", 0)
				leased, fired := delegateLease(t, tk, srv, cli)

				le, ok := cl.CtrlFor(1).EntryOf(cli.ID(), leased.ID())
				if !ok || !le.Leased || le.Expire == 0 {
					t.Fatalf("precondition: leased=%v expire=%d ok=%v", le.Leased, le.Expire, ok)
				}
				if *fired {
					t.Fatal("callback fired before the lease expired")
				}

				// Abandon the lease: TTL 200 µs + sweep slack.
				tk.Sleep(us(1000))
				if !*fired {
					t.Error("monitor_delegate callback did not fire on lease expiry")
				}
				if _, ok := cl.CtrlFor(1).EntryOf(cli.ID(), leased.ID()); ok {
					t.Error("expired lease entry still resolves")
				}
				expired := int64(0)
				for _, c := range cl.Ctrls {
					expired += c.Metrics().LeasesExpired
				}
				if expired != 1 {
					t.Errorf("LeasesExpired = %d, want 1", expired)
				}
			})
		})
	}
}

// TestLeaseGCSparesActiveLifecycle: a lease the holder drops before
// the deadline is a normal release — the delegator hears about it
// (delegatee count reaches zero through the drop-side revocation), but
// the GC itself must reap nothing, and with no leases left its timer
// must go quiet (the deployment still drains: RunT would hang on a
// perpetually re-arming timer).
func TestLeaseGCSparesActiveLifecycle(t *testing.T) {
	run(t, leaseCluster(2, core.CtrlShared), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 1, "cli", 0)
		leased, fired := delegateLease(t, tk, srv, cli)

		// Holder relinquishes the lease well within the TTL.
		tk.Sleep(us(50))
		if err := cli.Revoke(tk, leased); err != nil {
			t.Fatal(err)
		}
		tk.Sleep(us(1000))
		if !*fired {
			t.Error("delegator did not observe the voluntary release")
		}
		for _, c := range cl.Ctrls {
			if n := c.Metrics().LeasesExpired; n != 0 {
				t.Errorf("GC reaped %d leases despite voluntary release", n)
			}
		}
	})
}

// TestLeaseGCDisabledByDefault: with LeaseTTL unset, delegation
// installs no deadline and the GC never runs — the §3.6 translation
// then only fires through the failure detector, as before this
// subsystem existed.
func TestLeaseGCDisabledByDefault(t *testing.T) {
	run(t, core.ClusterConfig{Nodes: 2}, func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		cli := proc.Attach(cl, 1, "cli", 0)
		leased, fired := delegateLease(t, tk, srv, cli)

		le, ok := cl.CtrlFor(1).EntryOf(cli.ID(), leased.ID())
		if !ok || le.Expire != 0 {
			t.Fatalf("lease stamped expire=%d with GC disabled", le.Expire)
		}
		tk.Sleep(us(2000))
		if *fired {
			t.Error("callback fired with the lease GC disabled")
		}
		if _, ok := cl.CtrlFor(1).EntryOf(cli.ID(), leased.ID()); !ok {
			t.Error("lease entry vanished with the GC disabled")
		}
	})
}

// TestLeaseGCCoalescesCleanup: expiring a whole batch of abandoned
// leases in one deployment produces batched cleanup broadcasts, not
// one per lease — the "no revocation storm" property. Every lease is
// reaped, every delegator callback fires, and the number of cleanup
// broadcasts stays far below the number of revoked objects.
func TestLeaseGCCoalescesCleanup(t *testing.T) {
	const clients = 8
	run(t, leaseCluster(3, core.CtrlShared), func(tk *sim.Task, cl *core.Cluster) {
		srv := proc.Attach(cl, 0, "srv", 0)
		fired := 0
		var leases []proc.Cap
		cli := proc.Attach(cl, 1, "cli", 0)
		for i := 0; i < clients; i++ {
			req, err := srv.RequestCreate(tk, uint64(20+i), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.MonitorDelegate(tk, req, func() { fired++ }); err != nil {
				t.Fatal(err)
			}
			carrier, err := cli.RequestCreate(tk, uint64(120+i), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			carrierSrv, err := proc.GrantCap(cli, carrier, srv)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Invoke(tk, carrierSrv, nil, []proc.Arg{{Slot: 0, Cap: req}}); err != nil {
				t.Fatal(err)
			}
			d, ok := cli.Receive(tk)
			if !ok {
				t.Fatal("delegation delivery lost")
			}
			lease, ok := d.Cap(0)
			d.Done()
			if !ok {
				t.Fatal("no leased cap delivered")
			}
			leases = append(leases, lease)
		}

		// Abandon them all; the GC reaps the batch.
		tk.Sleep(us(2000))
		if fired != clients {
			t.Errorf("%d delegator callbacks fired, want %d", fired, clients)
		}
		ctrl := cl.CtrlFor(0)
		m := ctrl.Metrics()
		if m.LeasesExpired != clients {
			t.Errorf("LeasesExpired = %d, want %d", m.LeasesExpired, clients)
		}
		if m.CleanupsSent >= m.Revocations {
			t.Errorf("cleanup broadcasts (%d) not coalesced below revocations (%d)",
				m.CleanupsSent, m.Revocations)
		}
		for _, lease := range leases {
			if _, ok := ctrl.EntryOf(cli.ID(), lease.ID()); ok {
				t.Error("expired lease entry still resolves")
			}
		}
	})
}

package core

import (
	"fractos/internal/cap"
	"fractos/internal/fabric"
	"fractos/internal/wire"
)

// memObject is the owner-side record of a Memory object: a window into
// a Process's RDMA-registered arena.
type memObject struct {
	owner  cap.ProcID
	ep     fabric.EndpointID // endpoint whose arena holds the bytes
	base   uint64            // offset within the arena
	size   uint64
	rights cap.Rights
}

// capArg is a capability argument held inside a Request object.
type capArg struct {
	ref       cap.Ref
	kind      cap.Kind
	rights    cap.Rights
	size      uint64
	monitored bool
	leased    bool
}

// reqObject is the owner-side record of a Request object: an RPC
// endpoint with accumulated, write-once arguments (§3.4).
type reqObject struct {
	provider cap.ProcID
	tag      uint64
	imms     immBuf
	caps     map[uint16]capArg
}

// clone deep-copies the request for derivation.
func (r *reqObject) clone() *reqObject {
	n := &reqObject{provider: r.provider, tag: r.tag, imms: r.imms.clone(),
		caps: make(map[uint16]capArg, len(r.caps))}
	for k, v := range r.caps {
		n.caps[k] = v
	}
	return n
}

// applyImms refines the immediate buffer. Already-written bytes are
// immutable: overlap fails with StatusImmutable.
func (r *reqObject) applyImms(imms []wire.ImmArg) wire.Status {
	for _, a := range imms {
		if s := r.imms.write(int(a.Offset), a.Data); s != wire.StatusOK {
			return s
		}
	}
	return wire.StatusOK
}

// applyCaps refines the capability slots; occupied slots are
// immutable.
func (r *reqObject) applyCaps(args []capSlotArg) wire.Status {
	for _, a := range args {
		if _, taken := r.caps[a.slot]; taken {
			return wire.StatusImmutable
		}
		r.caps[a.slot] = a.arg
	}
	return wire.StatusOK
}

// capSlotArg pairs a slot index with a resolved capability argument.
type capSlotArg struct {
	slot uint16
	arg  capArg
}

// maxImmBuf bounds a Request's immediate-argument buffer.
const maxImmBuf = 1 << 20

// immBuf is a write-once byte buffer: each byte may be set exactly
// once (the §3.4 security property that initialized arguments cannot
// be changed, only extended).
type immBuf struct {
	data []byte
	set  []bool
}

func (b *immBuf) clone() immBuf {
	return immBuf{data: append([]byte(nil), b.data...), set: append([]bool(nil), b.set...)}
}

// write stores p at off, failing with StatusImmutable if any target
// byte was already written, or StatusBounds if the buffer would exceed
// maxImmBuf.
func (b *immBuf) write(off int, p []byte) wire.Status {
	if off < 0 || off+len(p) > maxImmBuf {
		return wire.StatusBounds
	}
	if need := off + len(p); need > len(b.data) {
		b.data = append(b.data, make([]byte, need-len(b.data))...)
		b.set = append(b.set, make([]bool, need-len(b.set))...)
	}
	for i := range p {
		if b.set[off+i] {
			return wire.StatusImmutable
		}
	}
	copy(b.data[off:], p)
	for i := range p {
		b.set[off+i] = true
	}
	return wire.StatusOK
}

// bytes returns the merged immediate buffer.
func (b *immBuf) bytes() []byte { return b.data }

package core

import "fmt"

// Metrics are a Controller's cumulative operation counters, for
// observability and resource accounting (the paper quotes per-object
// and per-connection memory budgets in §4; these counters are how an
// operator would watch them).
type Metrics struct {
	// Syscalls served, by group.
	NullOps    int64
	MemOps     int64 // memory_create/diminish
	Copies     int64 // memory_copy orchestrations
	CopyBytes  int64
	ReqCreates int64
	Invokes    int64 // request_invoke handled (local + forwarded)
	CapOps     int64 // revtree/revoke/drop/monitor

	// Revocation machinery.
	Revocations    int64 // objects invalidated here
	CleanupsSent   int64 // cleanup broadcasts issued
	EntriesPurged  int64 // capability-space entries purged by cleanup
	MonitorsFired  int64 // monitor callbacks delivered
	StaleRejected  int64 // uses rejected by the epoch check
	QuotaRejected  int64 // installs refused by the quota
	LeasesExpired  int64 // leased entries reaped by the lease GC
	DeliveriesSent int64 // request_receive descriptors delivered
	Backpressured  int64 // deliveries queued on a full window

	// Lossy-fabric resilience (docs/FAULTS.md).
	Retransmits int64 // inter-Controller requests resent on timeout
	RPCAborted  int64 // calls resolved StatusAborted (retries exhausted, peer epoch bump, own crash)
	DedupHits   int64 // retransmitted requests answered from the at-most-once cache
	SendFailed  int64 // sends to torn-down endpoints (observed, not silent)
}

// Metrics returns a snapshot of the Controller's counters.
func (c *Controller) Metrics() Metrics { return c.metrics }

// Footprint is the Controller's modeled memory budget, using the
// figures §4 quotes for the prototype: 64 MB of RoCE buffers per
// managed Process, 64 MB per peer Controller connection, the
// capability-space entries, the Controller's own bounce buffers, and
// 24 B per revocation-tree object. The paper sets these against the
// BlueField's 16 GB to argue SmartNIC deployment is viable.
type Footprint struct {
	ProcQueueBytes int64 // 64 MB × managed Processes
	PeerQueueBytes int64 // 64 MB × peer Controllers
	CapSpaceBytes  int64 // entries × sizeof(entry)
	BounceBytes    int64 // bounce-buffer pool
	ObjectBytes    int64 // 24 B × registered objects
}

// Total sums the footprint.
func (f Footprint) Total() int64 {
	return f.ProcQueueBytes + f.PeerQueueBytes + f.CapSpaceBytes + f.BounceBytes + f.ObjectBytes
}

// Per-item budgets from §4.
const (
	procQueueBudget = 64 << 20 // RoCE buffers per managed Process
	peerQueueBudget = 64 << 20 // per peer Controller connection
	capEntryBytes   = 40       // one capability-space entry (incl. lease deadline)
	revObjectBytes  = 24       // one revocation-tree object
)

// Footprint reports the Controller's modeled memory use.
func (c *Controller) Footprint() Footprint {
	entries := 0
	for _, ps := range c.procs {
		entries += ps.space.Len()
	}
	return Footprint{
		ProcQueueBytes: int64(len(c.procs)) * procQueueBudget,
		PeerQueueBytes: int64(len(c.peers)) * peerQueueBudget,
		CapSpaceBytes:  int64(entries) * capEntryBytes,
		BounceBytes:    int64(c.ep.ArenaSize()),
		ObjectBytes:    int64(c.tree.Len()) * revObjectBytes,
	}
}

// String renders the counters compactly.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"null=%d mem=%d copy=%d(%dB) reqcreate=%d invoke=%d capop=%d revoked=%d cleanup=%d purged=%d monitors=%d stale=%d quota=%d leasegc=%d deliver=%d backpressure=%d retx=%d rpcabort=%d dedup=%d sendfail=%d",
		m.NullOps, m.MemOps, m.Copies, m.CopyBytes, m.ReqCreates, m.Invokes, m.CapOps,
		m.Revocations, m.CleanupsSent, m.EntriesPurged, m.MonitorsFired,
		m.StaleRejected, m.QuotaRejected, m.LeasesExpired, m.DeliveriesSent, m.Backpressured,
		m.Retransmits, m.RPCAborted, m.DedupHits, m.SendFailed)
}

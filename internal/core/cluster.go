package core

import (
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/fabric"
	"fractos/internal/sim"
)

// Placement selects where Controllers run, the deployment axis §6
// evaluates.
type Placement uint8

const (
	// CtrlOnCPU: one Controller per node on the host CPU.
	CtrlOnCPU Placement = iota
	// CtrlOnSNIC: one Controller per node on the node's SmartNIC.
	CtrlOnSNIC
	// CtrlShared: a single Controller on node 0's host CPU serving
	// every Process ("Shared HAL" in Figures 12/13).
	CtrlShared
)

func (p Placement) String() string {
	switch p {
	case CtrlOnSNIC:
		return "snic"
	case CtrlShared:
		return "shared"
	default:
		return "cpu"
	}
}

// ClusterConfig parameterizes a test/benchmark deployment.
type ClusterConfig struct {
	Nodes     int
	Placement Placement
	Ctrl      Config // template; Loc is set per controller
	Profile   fabric.Profile
	Seed      int64

	// K, when non-nil, is the kernel to build the cluster on instead of
	// a fresh sim.New(Seed) — the partition-parallel testbed path hands
	// in shard 0 of a sim.Engine here. The caller keeps responsibility
	// for seeding it consistently with Seed.
	K *sim.Kernel

	// Faults, when Enabled, installs the fault-injection layer on the
	// fabric (docs/FAULTS.md) and — unless the Ctrl template already
	// sets one — arms the Controllers' retransmission protocol with
	// DefaultRPCTimeout. A zero Faults keeps the fabric and the
	// Controllers byte-identical to a fault-free deployment.
	Faults fabric.Faults
}

// Cluster is a convenience harness that assembles a kernel, a fabric,
// and a Controller deployment, mirroring the paper's 3-node testbed.
type Cluster struct {
	K     *sim.Kernel
	Net   *fabric.Net
	Ctrls []*Controller

	placement Placement
	nodes     int
	nextProc  cap.ProcID
}

// NewCluster builds and starts a deployment.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Profile == (fabric.Profile{}) {
		cfg.Profile = fabric.DefaultProfile()
	}
	k := cfg.K
	if k == nil {
		k = sim.New(cfg.Seed)
	}
	net := fabric.New(k, cfg.Profile)
	if cfg.Faults.Enabled() {
		net.InstallFaults(cfg.Faults)
		if cfg.Ctrl.RPCTimeout == 0 {
			cfg.Ctrl.RPCTimeout = DefaultRPCTimeout
		}
	}
	cl := &Cluster{K: k, Net: net, placement: cfg.Placement, nodes: cfg.Nodes}

	mk := func(id cap.ControllerID, loc fabric.Location) {
		c := cfg.Ctrl
		c.Loc = loc
		cl.Ctrls = append(cl.Ctrls, New(k, net, id, c))
	}
	switch cfg.Placement {
	case CtrlShared:
		mk(1, fabric.Location{Node: 0, Domain: fabric.Host})
	case CtrlOnSNIC:
		for i := 0; i < cfg.Nodes; i++ {
			mk(cap.ControllerID(i+1), fabric.Location{Node: i, Domain: fabric.SNIC})
		}
	default:
		for i := 0; i < cfg.Nodes; i++ {
			mk(cap.ControllerID(i+1), fabric.Location{Node: i, Domain: fabric.Host})
		}
	}
	for _, a := range cl.Ctrls {
		for _, b := range cl.Ctrls {
			if a != b {
				a.AddPeer(b.ID(), b.EndpointID())
			}
		}
		a.Start()
	}
	return cl
}

// Nodes returns the deployment's node count.
func (cl *Cluster) Nodes() int { return cl.nodes }

// CtrlFor returns the Controller managing Processes on a node.
func (cl *Cluster) CtrlFor(node int) *Controller {
	if cl.placement == CtrlShared {
		return cl.Ctrls[0]
	}
	return cl.Ctrls[node%len(cl.Ctrls)]
}

// NewProcID allocates a cluster-unique Process id.
func (cl *Cluster) NewProcID() cap.ProcID {
	cl.nextProc++
	return cl.nextProc
}

// Grant copies a capability entry from one Process to another through
// the trusted bootstrap path (the paper's key/value bootstrap
// service): fromCtrl must manage fromPid, toCtrl must manage toPid.
//
// The copy deliberately clears the Monitored and Leased flags (and the
// lease deadline that rides with Leased): they
// describe the *delegation edge* a capability travelled over
// (monitor_delegate callbacks fire when a monitored edge is revoked;
// leases die with their revtree node, §3.6), not the object itself.
// Bootstrap grants bypass the invocation path, so the copied entry
// starts a fresh, unmonitored edge — leaving the flags set would tie
// the recipient's bootstrap capability to some other client's lease
// lifetime and fire failure callbacks for edges the owner never
// registered on this recipient. The trusted path is only exercised at
// deployment time, before monitors exist, so no failure-notification
// obligations are lost. TestGrantClearsDelegationFlags pins this.
func Grant(fromCtrl *Controller, fromPid cap.ProcID, fromCid cap.CapID,
	toCtrl *Controller, toPid cap.ProcID) (cap.CapID, error) {
	e, ok := fromCtrl.EntryOf(fromPid, fromCid)
	if !ok {
		return cap.NilCap, fmt.Errorf("core: no entry %d at proc %d", fromCid, fromPid)
	}
	e.Monitored = false
	e.Leased = false
	e.Expire = 0
	cid, ok := toCtrl.GrantEntry(toPid, e)
	if !ok {
		return cap.NilCap, fmt.Errorf("core: grant target proc %d unavailable", toPid)
	}
	return cid, nil
}

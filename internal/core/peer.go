package core

import (
	"fractos/internal/cap"
	"fractos/internal/fabric"
	"fractos/internal/wire"
)

// peerDeriveMem serves a remote memory_diminish at the owner.
func (c *Controller) peerDeriveMem(from fabric.EndpointID, m *wire.CtrlDeriveMem) {
	ref, size, rights, st := c.deriveMemLocal(m.From, m.Offset, m.Size, m.Drop)
	c.reply(from, m.Token, &wire.CtrlAck{
		Token: m.Token, Status: st, Obj: ref.Obj, Epoch: ref.Epoch, Size: size, Rights: rights,
	})
}

// peerDeriveReq serves a remote request_create derivation at the owner.
func (c *Controller) peerDeriveReq(from fabric.EndpointID, m *wire.CtrlDeriveReq) {
	ref, st := c.deriveReqLocal(m.From, m.Imms, xferToArgs(m.Caps))
	c.reply(from, m.Token, &wire.CtrlAck{
		Token: m.Token, Status: st, Obj: ref.Obj, Epoch: ref.Epoch,
	})
}

// peerRevtree serves a remote cap_create_revtree at the owner.
func (c *Controller) peerRevtree(from fabric.EndpointID, m *wire.CtrlRevtree) {
	n, st := c.resolveOwned(m.From)
	if st != wire.StatusOK {
		c.reply(from, m.Token, &wire.CtrlAck{Token: m.Token, Status: st})
		return
	}
	child := c.tree.Derive(n.ID, n.Payload)
	if child == nil {
		c.reply(from, m.Token, &wire.CtrlAck{Token: m.Token, Status: wire.StatusRevoked})
		return
	}
	c.reply(from, m.Token, &wire.CtrlAck{
		Token: m.Token, Status: wire.StatusOK, Obj: child.ID, Epoch: c.epoch,
	})
}

// peerRevoke serves a remote cap_revoke at the owner.
func (c *Controller) peerRevoke(from fabric.EndpointID, m *wire.CtrlRevoke) {
	st := c.revokeLocal(m.From)
	c.reply(from, m.Token, &wire.CtrlAck{Token: m.Token, Status: st})
}

// peerValidate answers an owner-side validation: is the object live,
// does it convey the needed rights, and (for Memory) where do its
// bytes physically live. Every use of a capability contacts the owner,
// which is what makes revocation immediate (§3.5).
func (c *Controller) peerValidate(from fabric.EndpointID, m *wire.CtrlValidate) {
	n, st := c.Validate(m.Ref, m.Need)
	if st != wire.StatusOK {
		c.reply(from, m.Token, &wire.CtrlValInfo{Token: m.Token, Status: st})
		return
	}
	mo, ok := n.Payload.(*memObject)
	if !ok {
		c.reply(from, m.Token, &wire.CtrlValInfo{Token: m.Token, Status: wire.StatusKind})
		return
	}
	c.reply(from, m.Token, &wire.CtrlValInfo{
		Token: m.Token, Status: wire.StatusOK,
		Endpoint: uint32(mo.ep), Base: mo.base, Size: mo.size, Rights: mo.rights,
	})
}

// peerCleanup purges capability-space entries referencing revoked
// objects and acknowledges, so the owner can erase the revoked stubs
// (the asynchronous, off-critical-path cleanup of §3.5).
func (c *Controller) peerCleanup(from fabric.EndpointID, m *wire.CtrlCleanup) {
	dead := make(map[cap.Ref]bool, len(m.Refs))
	for _, r := range m.Refs {
		dead[r] = true
	}
	for _, ps := range c.procs {
		c.metrics.EntriesPurged += int64(len(ps.space.PurgeRefs(func(r cap.Ref) bool { return dead[r] })))
	}
	c.reply(from, m.Token, &wire.CtrlAck{Token: m.Token, Status: wire.StatusOK})
}

// peerWatch registers a remote monitor_receive watcher at the owner.
func (c *Controller) peerWatch(from fabric.EndpointID, m *wire.CtrlWatch) {
	n, st := c.resolveOwned(m.Ref)
	if st != wire.StatusOK {
		c.reply(from, m.Token, &wire.CtrlAck{Token: m.Token, Status: st})
		return
	}
	n.Watchers = append(n.Watchers, cap.Watcher{
		Proc: m.WatcherProc, Ctrl: m.WatcherCtrl, Callback: m.Callback,
	})
	c.reply(from, m.Token, &wire.CtrlAck{Token: m.Token, Status: wire.StatusOK})
}

// peerNotify forwards a monitor callback to a Process we manage.
func (c *Controller) peerNotify(m *wire.CtrlNotify) {
	ps, ok := c.procs[m.Proc]
	if !ok || ps.failed {
		return
	}
	if !c.net.Send(c.ep.ID, ps.ep.ID, &wire.MonitorCB{Callback: m.Callback, Kind: m.Kind}) {
		// Watcher's endpoint severed mid-failure: its own revocation
		// cascade is already in flight, the callback is moot.
		c.metrics.SendFailed++
	}
}

// peerEpoch records a peer's new epoch. Entries minted under older
// epochs of that Controller are implicitly revoked: purge them now and
// reject them on use (§3.6's failure-to-revocation translation).
// Outstanding calls to the peer abort, and the at-most-once cache for
// its endpoint is dropped — replies minted for the previous
// incarnation must never answer the next one.
func (c *Controller) peerEpoch(m *wire.CtrlEpoch) {
	if cur, ok := c.peerEpochs[m.Ctrl]; ok && m.Epoch <= cur {
		return
	}
	c.peerEpochs[m.Ctrl] = m.Epoch
	for _, ps := range c.procs {
		ps.space.PurgeRefs(func(r cap.Ref) bool {
			return r.Ctrl == m.Ctrl && r.Epoch < m.Epoch
		})
	}
	c.abortPendingTo(m.Ctrl)
	if ep, ok := c.peers[m.Ctrl]; ok {
		c.dropDedup(ep)
	}
}

// revokeLocal invalidates an object owned here and its whole
// revocation subtree, firing monitor callbacks, scheduling the cleanup
// broadcast, and finally erasing the revoked nodes.
func (c *Controller) revokeLocal(ref cap.Ref) wire.Status {
	if ref.Ctrl != c.id {
		return wire.StatusUnknownObj
	}
	if ref.Epoch != c.epoch {
		return wire.StatusStale
	}
	revoked := c.tree.Revoke(ref.Obj)
	if revoked == nil {
		return wire.StatusRevoked
	}
	c.processRevocations(revoked)
	return wire.StatusOK
}

// processRevocations fires monitors and purges local entries
// synchronously, then enqueues the revoked refs on the cleanup batch.
// The actual broadcast is deferred to flushCleanup so that a burst of
// revocations at one virtual instant — a Process failure cascading
// through every lease and owned subtree, or the lease GC expiring a
// sweep's worth of leases — coalesces into ONE CtrlCleanup message per
// peer instead of a per-subtree revocation storm.
func (c *Controller) processRevocations(revoked []*cap.Node) {
	c.metrics.Revocations += int64(len(revoked))
	refs := make([]cap.Ref, 0, len(revoked))
	for _, n := range revoked {
		refs = append(refs, c.ref(n.ID))
		// monitor_receive watchers.
		for _, w := range n.Watchers {
			c.notifyWatcher(w, wire.MonitorCBReceive)
		}
		n.Watchers = nil
		// monitor_delegate accounting: a delegatee child dying
		// decrements its parent's counter.
		if n.MonitorDelegatee {
			if p, ok := c.tree.GetAny(n.Parent); ok && p.MonitorDelegator {
				p.DelegateeCount--
				if p.DelegateeCount == 0 {
					c.notifyWatcher(cap.Watcher{
						Proc: p.DelegatorProc, Ctrl: c.id, Callback: p.DelegatorCB,
					}, wire.MonitorCBDelegate)
				}
			}
		}
	}

	// Purge local capability spaces now; remote ones via broadcast.
	dead := make(map[cap.Ref]bool, len(refs))
	for _, r := range refs {
		dead[r] = true
	}
	for _, ps := range c.procs {
		ps.space.PurgeRefs(func(r cap.Ref) bool { return dead[r] })
	}

	c.cleanupRefs = append(c.cleanupRefs, refs...)
	c.cleanupStubs = append(c.cleanupStubs, revoked...)
	if !c.cleanupArmed {
		c.cleanupArmed = true
		c.k.After(0, c.flushCleanup)
	}
}

// flushCleanup drains the cleanup batch accumulated at the current
// virtual instant: one coalesced CtrlCleanup per peer carrying every
// ref revoked since the last flush. The revoked stubs are erased only
// after every peer has confirmed it purged its references — until then
// the few-bytes stubs remain, exactly as §3.5 describes. Peers
// observed dead (epoch bump) resolve their outstanding calls as
// aborted, which also counts: their state is gone wholesale.
func (c *Controller) flushCleanup() {
	c.cleanupArmed = false
	refs, stubs := c.cleanupRefs, c.cleanupStubs
	c.cleanupRefs, c.cleanupStubs = nil, nil
	if c.down || len(stubs) == 0 {
		// A crash between enqueue and flush loses the batch with the
		// rest of the instance's state; the reboot's epoch announcement
		// purges peers wholesale instead.
		return
	}
	c.metrics.CleanupsSent++
	removeStubs := func() {
		for i := len(stubs) - 1; i >= 0; i-- {
			c.tree.Remove(stubs[i].ID)
		}
	}
	remaining := len(c.peers)
	if remaining == 0 {
		removeStubs()
		return
	}
	for _, peer := range c.sortedPeers() {
		c.call(peer, func(tok uint64) wire.Message {
			return &wire.CtrlCleanup{Token: tok, Refs: refs}
		}, func(wire.Message) {
			remaining--
			if remaining == 0 {
				removeStubs()
			}
		})
	}
}

// notifyWatcher routes a monitor callback to its Process, locally or
// via the managing Controller.
func (c *Controller) notifyWatcher(w cap.Watcher, kind uint8) {
	c.metrics.MonitorsFired++
	if w.Ctrl == c.id {
		if ps, ok := c.procs[w.Proc]; ok && !ps.failed {
			if !c.net.Send(c.ep.ID, ps.ep.ID, &wire.MonitorCB{Callback: w.Callback, Kind: kind}) {
				c.metrics.SendFailed++
			}
		}
		return
	}
	if ep, ok := c.peers[w.Ctrl]; ok {
		if !c.net.Send(c.ep.ID, ep, &wire.CtrlNotify{Proc: w.Proc, Callback: w.Callback, Kind: kind}) {
			// Peer crashed: its reboot announcement revokes the watched
			// object's world anyway.
			c.metrics.SendFailed++
		}
	}
}

package core

import (
	"fractos/internal/cap"
	"fractos/internal/wire"
)

// handleMemCreate registers part of the Process's arena as a Memory
// object (memory_create).
func (c *Controller) handleMemCreate(ps *procState, m *wire.MemCreate) {
	if m.Size == 0 || m.Base+m.Size > uint64(ps.ep.ArenaSize()) {
		c.complete(ps, m.Token, wire.StatusBounds, cap.NilCap, 0)
		return
	}
	rights := m.Perms & cap.MemRights
	node := c.tree.Create(&memObject{
		owner: ps.id, ep: ps.ep.ID, base: m.Base, size: m.Size, rights: rights,
	})
	cid, st := c.install(ps, cap.Entry{
		Ref: c.ref(node.ID), Kind: cap.KindMemory, Rights: rights, Size: m.Size,
	})
	if st != wire.StatusOK {
		c.discardObject(node.ID)
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	c.complete(ps, m.Token, wire.StatusOK, cid, m.Size)
}

// handleMemDiminish derives a narrower view of a Memory capability
// (memory_diminish). If the object lives at a peer, the derivation is
// one message to the owner.
func (c *Controller) handleMemDiminish(ps *procState, m *wire.MemDiminish) {
	e, st := c.resolveEntry(ps, m.Cid, cap.KindMemory, 0)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	entryRights := e.Rights.Diminish(m.Drop)
	if e.Ref.Ctrl == c.id {
		ref, size, rights, st := c.deriveMemLocal(e.Ref, m.Offset, m.Size, m.Drop)
		if st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		cid, st := c.install(ps, cap.Entry{
			Ref: ref, Kind: cap.KindMemory, Rights: entryRights & rights, Size: size,
		})
		if st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		c.complete(ps, m.Token, wire.StatusOK, cid, size)
		return
	}
	tok, off, size, drop := m.Token, m.Offset, m.Size, m.Drop
	c.call(e.Ref.Ctrl, func(t uint64) wire.Message {
		return &wire.CtrlDeriveMem{Token: t, Src: c.id, From: e.Ref, Offset: off, Size: size, Drop: drop}
	}, func(reply wire.Message) {
		ack, ok := reply.(*wire.CtrlAck)
		if !ok || ack.Status != wire.StatusOK {
			st := wire.StatusUnknownObj
			if ok {
				st = ack.Status
			}
			c.complete(ps, tok, st, cap.NilCap, 0)
			return
		}
		cid, st := c.install(ps, cap.Entry{
			Ref:    cap.Ref{Ctrl: e.Ref.Ctrl, Obj: ack.Obj, Epoch: ack.Epoch},
			Kind:   cap.KindMemory,
			Rights: entryRights & ack.Rights,
			Size:   ack.Size,
		})
		if st != wire.StatusOK {
			c.complete(ps, tok, st, cap.NilCap, 0)
			return
		}
		c.complete(ps, tok, wire.StatusOK, cid, ack.Size)
	})
}

// deriveMemLocal performs the owner-side memory derivation.
func (c *Controller) deriveMemLocal(ref cap.Ref, off, size uint64, drop cap.Rights) (cap.Ref, uint64, cap.Rights, wire.Status) {
	n, st := c.resolveOwned(ref)
	if st != wire.StatusOK {
		return cap.Ref{}, 0, 0, st
	}
	mo, ok := n.Payload.(*memObject)
	if !ok {
		return cap.Ref{}, 0, 0, wire.StatusKind
	}
	if size == 0 || off+size > mo.size {
		return cap.Ref{}, 0, 0, wire.StatusBounds
	}
	nmo := &memObject{
		owner: mo.owner, ep: mo.ep,
		base: mo.base + off, size: size,
		rights: mo.rights.Diminish(drop),
	}
	child := c.tree.Derive(n.ID, nmo)
	if child == nil {
		return cap.Ref{}, 0, 0, wire.StatusRevoked
	}
	return c.ref(child.ID), size, nmo.rights, wire.StatusOK
}

// handleReqCreate creates a new Request provided by the calling
// Process, or derives a refined Request from an existing one
// (request_create).
func (c *Controller) handleReqCreate(ps *procState, m *wire.ReqCreate) {
	capArgs, st := c.resolveCapSlots(ps, m.Caps)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	if m.Parent == cap.NilCap {
		// New Request: the caller is the provider.
		obj := &reqObject{provider: ps.id, tag: m.Tag, caps: make(map[uint16]capArg)}
		if st := obj.applyImms(m.Imms); st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		if st := obj.applyCaps(capArgs); st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		node := c.tree.Create(obj)
		cid, st := c.install(ps, cap.Entry{
			Ref: c.ref(node.ID), Kind: cap.KindRequest, Rights: cap.ReqRights,
		})
		if st != wire.StatusOK {
			c.discardObject(node.ID)
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		c.complete(ps, m.Token, wire.StatusOK, cid, 0)
		return
	}

	e, st := c.resolveEntry(ps, m.Parent, cap.KindRequest, cap.Grant)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	if e.Ref.Ctrl == c.id {
		ref, st := c.deriveReqLocal(e.Ref, m.Imms, capArgs)
		if st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		cid, st := c.install(ps, cap.Entry{
			Ref: ref, Kind: cap.KindRequest, Rights: e.Rights,
		})
		if st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		c.complete(ps, m.Token, wire.StatusOK, cid, 0)
		return
	}
	tok := m.Token
	imms := m.Imms
	c.call(e.Ref.Ctrl, func(t uint64) wire.Message {
		return &wire.CtrlDeriveReq{Token: t, Src: c.id, From: e.Ref, Imms: imms, Caps: argsToXfer(capArgs)}
	}, func(reply wire.Message) {
		ack, ok := reply.(*wire.CtrlAck)
		if !ok || ack.Status != wire.StatusOK {
			st := wire.StatusUnknownObj
			if ok {
				st = ack.Status
			}
			c.complete(ps, tok, st, cap.NilCap, 0)
			return
		}
		cid, st := c.install(ps, cap.Entry{
			Ref:    cap.Ref{Ctrl: e.Ref.Ctrl, Obj: ack.Obj, Epoch: ack.Epoch},
			Kind:   cap.KindRequest,
			Rights: e.Rights,
		})
		if st != wire.StatusOK {
			c.complete(ps, tok, st, cap.NilCap, 0)
			return
		}
		c.complete(ps, tok, wire.StatusOK, cid, 0)
	})
}

// deriveReqLocal performs the owner-side Request derivation: the child
// inherits all arguments and may only add new ones.
func (c *Controller) deriveReqLocal(ref cap.Ref, imms []wire.ImmArg, capArgs []capSlotArg) (cap.Ref, wire.Status) {
	n, st := c.resolveOwned(ref)
	if st != wire.StatusOK {
		return cap.Ref{}, st
	}
	ro, ok := n.Payload.(*reqObject)
	if !ok {
		return cap.Ref{}, wire.StatusKind
	}
	obj := ro.clone()
	if st := obj.applyImms(imms); st != wire.StatusOK {
		return cap.Ref{}, st
	}
	if st := obj.applyCaps(capArgs); st != wire.StatusOK {
		return cap.Ref{}, st
	}
	child := c.tree.Derive(n.ID, obj)
	if child == nil {
		return cap.Ref{}, wire.StatusRevoked
	}
	return c.ref(child.ID), wire.StatusOK
}

// handleCapRevtree creates a separately revocable child object
// (cap_create_revtree).
func (c *Controller) handleCapRevtree(ps *procState, m *wire.CapRevtree) {
	e, ok := ps.space.Lookup(m.Cid)
	if !ok {
		c.complete(ps, m.Token, wire.StatusNoCap, cap.NilCap, 0)
		return
	}
	if e.Ref.Ctrl == c.id {
		n, st := c.resolveOwned(e.Ref)
		if st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		child := c.tree.Derive(n.ID, n.Payload)
		if child == nil {
			c.complete(ps, m.Token, wire.StatusRevoked, cap.NilCap, 0)
			return
		}
		cid, st := c.install(ps, cap.Entry{
			Ref: c.ref(child.ID), Kind: e.Kind, Rights: e.Rights, Size: e.Size,
		})
		if st != wire.StatusOK {
			c.discardObject(child.ID)
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		c.complete(ps, m.Token, wire.StatusOK, cid, 0)
		return
	}
	tok := m.Token
	c.call(e.Ref.Ctrl, func(t uint64) wire.Message {
		return &wire.CtrlRevtree{Token: t, Src: c.id, From: e.Ref}
	}, func(reply wire.Message) {
		ack, ok := reply.(*wire.CtrlAck)
		if !ok || ack.Status != wire.StatusOK {
			st := wire.StatusUnknownObj
			if ok {
				st = ack.Status
			}
			c.complete(ps, tok, st, cap.NilCap, 0)
			return
		}
		cid, st := c.install(ps, cap.Entry{
			Ref:    cap.Ref{Ctrl: e.Ref.Ctrl, Obj: ack.Obj, Epoch: ack.Epoch},
			Kind:   e.Kind,
			Rights: e.Rights,
			Size:   e.Size,
		})
		if st != wire.StatusOK {
			c.complete(ps, tok, st, cap.NilCap, 0)
			return
		}
		c.complete(ps, tok, wire.StatusOK, cid, 0)
	})
}

// handleCapRevoke revokes a capability (cap_revoke): one message to
// the owner, which invalidates the object and its subtree immediately.
func (c *Controller) handleCapRevoke(ps *procState, m *wire.CapRevoke) {
	e, ok := ps.space.Lookup(m.Cid)
	if !ok {
		c.complete(ps, m.Token, wire.StatusNoCap, cap.NilCap, 0)
		return
	}
	if e.Ref.Ctrl == c.id {
		st := c.revokeLocal(e.Ref)
		ps.space.Drop(m.Cid)
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	tok, cid := m.Token, m.Cid
	c.call(e.Ref.Ctrl, func(t uint64) wire.Message {
		return &wire.CtrlRevoke{Token: t, Src: c.id, From: e.Ref}
	}, func(reply wire.Message) {
		ack, ok := reply.(*wire.CtrlAck)
		st := wire.StatusUnknownObj
		if ok {
			st = ack.Status
		}
		ps.space.Drop(cid)
		c.complete(ps, tok, st, cap.NilCap, 0)
	})
}

// handleCapDrop discards a capability-space entry without revoking.
func (c *Controller) handleCapDrop(ps *procState, m *wire.CapDrop) {
	if !ps.space.Drop(m.Cid) {
		c.complete(ps, m.Token, wire.StatusNoCap, cap.NilCap, 0)
		return
	}
	c.complete(ps, m.Token, wire.StatusOK, cap.NilCap, 0)
}

// handleMonitorDelegate registers a monitor_delegate callback (§3.6).
// The target object must be owned by this Controller (the caller is
// the resource owner monitoring its clients) and must not have
// children yet — the paper's stated simplification.
func (c *Controller) handleMonitorDelegate(ps *procState, m *wire.MonitorDelegate) {
	e, ok := ps.space.Lookup(m.Cid)
	if !ok {
		c.complete(ps, m.Token, wire.StatusNoCap, cap.NilCap, 0)
		return
	}
	if e.Ref.Ctrl != c.id {
		c.complete(ps, m.Token, wire.StatusBadArg, cap.NilCap, 0)
		return
	}
	n, st := c.resolveOwned(e.Ref)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	if n.HasChildren() {
		c.complete(ps, m.Token, wire.StatusBadArg, cap.NilCap, 0)
		return
	}
	n.MonitorDelegator = true
	n.DelegatorProc = ps.id
	n.DelegatorCB = m.Callback
	n.DelegateeCount = 0
	e.Monitored = true
	ps.space.Update(m.Cid, e)
	c.complete(ps, m.Token, wire.StatusOK, cap.NilCap, 0)
}

// handleMonitorReceive registers a monitor_receive callback: notify
// the caller when the capability's object is invalidated (§3.6).
func (c *Controller) handleMonitorReceive(ps *procState, m *wire.MonitorReceive) {
	e, ok := ps.space.Lookup(m.Cid)
	if !ok {
		c.complete(ps, m.Token, wire.StatusNoCap, cap.NilCap, 0)
		return
	}
	w := cap.Watcher{Proc: ps.id, Ctrl: c.id, Callback: m.Callback}
	if e.Ref.Ctrl == c.id {
		n, st := c.resolveOwned(e.Ref)
		if st != wire.StatusOK {
			c.complete(ps, m.Token, st, cap.NilCap, 0)
			return
		}
		n.Watchers = append(n.Watchers, w)
		c.complete(ps, m.Token, wire.StatusOK, cap.NilCap, 0)
		return
	}
	tok := m.Token
	c.call(e.Ref.Ctrl, func(t uint64) wire.Message {
		return &wire.CtrlWatch{Token: t, Src: c.id, Ref: e.Ref,
			WatcherProc: w.Proc, WatcherCtrl: w.Ctrl, Callback: w.Callback}
	}, func(reply wire.Message) {
		ack, ok := reply.(*wire.CtrlAck)
		st := wire.StatusUnknownObj
		if ok {
			st = ack.Status
		}
		c.complete(ps, tok, st, cap.NilCap, 0)
	})
}

// handleDeliverDone releases one congestion-window credit (§4).
func (c *Controller) handleDeliverDone(ps *procState, m *wire.DeliverDone) {
	if _, ok := ps.outstanding[m.Seq]; !ok {
		return
	}
	delete(ps.outstanding, m.Seq)
	ps.window++
	c.drainQueue(ps)
}

// drainQueue sends queued deliveries while window credits remain.
func (c *Controller) drainQueue(ps *procState) {
	for ps.window > 0 && len(ps.queue) > 0 {
		d := ps.queue[0]
		ps.queue = ps.queue[1:]
		c.sendDeliver(ps, d)
	}
}

// sendDeliver transmits a delivery, consuming a window credit.
func (c *Controller) sendDeliver(ps *procState, d *wire.Deliver) {
	if ps.failed {
		return
	}
	ps.window--
	ps.outstanding[d.Seq] = struct{}{}
	c.metrics.DeliveriesSent++
	if !c.net.Send(c.ep.ID, ps.ep.ID, d) {
		// Endpoint severed between the failed check and the send: the
		// Process-failure path revokes its window and queue wholesale.
		c.metrics.SendFailed++
	}
}

package core

import (
	"fractos/internal/cap"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// memLoc is the physical location of a validated Memory object.
type memLoc struct {
	ep   uint32 // fabric endpoint holding the bytes
	base uint64
	size uint64
}

// handleMemCopy orchestrates memory_copy (Table 1): copy all bytes of
// the source Memory object into the destination, wherever either
// lives. The invoking Process's Controller drives the copy.
//
// The prototype's RoCE NICs lack third-party RDMA (§4's limitation),
// so the default datapath stages data through bounce buffers in the
// Controller: RDMA-read a chunk from the source arena, RDMA-write it
// to the destination arena, double-buffered for copies larger than one
// chunk (§6.1). With cfg.HWCopies the Controller instead commands a
// direct third-party transfer ("HW copies" in Figure 5).
func (c *Controller) handleMemCopy(ps *procState, m *wire.MemCopy) {
	src, st := c.resolveEntry(ps, m.SrcCid, cap.KindMemory, cap.Read)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	dst, st := c.resolveEntry(ps, m.DstCid, cap.KindMemory, cap.Write)
	if st != wire.StatusOK {
		c.complete(ps, m.Token, st, cap.NilCap, 0)
		return
	}
	token := m.Token
	// The copy spans several network round trips; run it as a sub-task
	// so the Controller keeps serving.
	c.k.Spawn(c.ep.Name+".memcopy", func(t *sim.Task) {
		c.runCopy(t, ps, token, src, dst)
	})
}

func (c *Controller) runCopy(t *sim.Task, ps *procState, token uint64, src, dst cap.Entry) {
	srcLoc, st := c.locate(t, src.Ref, cap.Read)
	if st != wire.StatusOK {
		c.complete(ps, token, st, cap.NilCap, 0)
		return
	}
	dstLoc, st := c.locate(t, dst.Ref, cap.Write)
	if st != wire.StatusOK {
		c.complete(ps, token, st, cap.NilCap, 0)
		return
	}
	n := int(srcLoc.size)
	if dstLoc.size < srcLoc.size {
		c.complete(ps, token, wire.StatusBounds, cap.NilCap, 0)
		return
	}

	if c.cfg.HWCopies {
		// Third-party RDMA: one direct transfer, no staging.
		_, err := c.net.RDMACopy(c.ep.ID,
			fabricEP(srcLoc.ep), int(srcLoc.base),
			fabricEP(dstLoc.ep), int(dstLoc.base), n).Wait(t)
		if err != nil {
			c.complete(ps, token, wire.StatusAborted, cap.NilCap, 0)
			return
		}
		c.metrics.CopyBytes += int64(n)
		c.complete(ps, token, wire.StatusOK, cap.NilCap, uint64(n))
		return
	}

	// Bounce-buffer datapath.
	c.bounceSem.Acquire(t)
	bufs := [2]int{c.popBounce(), c.popBounce()}
	defer func() {
		c.pushBounce(bufs[0])
		c.pushBounce(bufs[1])
		c.bounceSem.Release()
	}()

	chunk := c.cfg.BounceChunk
	perChunk := c.cfg.Perf.PerChunk.On(c.cfg.Loc.Domain)
	var wf [2]*sim.Future[int] // outstanding write per bounce buffer
	for off, i := 0, 0; off < n; off, i = off+chunk, i+1 {
		cn := chunk
		if n-off < cn {
			cn = n - off
		}
		b := i % 2
		// Reusing a bounce buffer requires its previous write-out to
		// have drained.
		if wf[b] != nil {
			if _, err := wf[b].Wait(t); err != nil {
				c.complete(ps, token, wire.StatusAborted, cap.NilCap, 0)
				return
			}
			wf[b] = nil
		}
		t.Sleep(perChunk)
		if _, err := c.net.RDMARead(c.ep.ID, bufs[b], fabricEP(srcLoc.ep), int(srcLoc.base)+off, cn).Wait(t); err != nil {
			c.complete(ps, token, wire.StatusAborted, cap.NilCap, 0)
			return
		}
		// Write out asynchronously: the next chunk's read overlaps
		// with this write (double buffering).
		wf[b] = c.net.RDMAWrite(c.ep.ID, bufs[b], fabricEP(dstLoc.ep), int(dstLoc.base)+off, cn)
		if c.cfg.SingleBuffer {
			if _, err := wf[b].Wait(t); err != nil {
				c.complete(ps, token, wire.StatusAborted, cap.NilCap, 0)
				return
			}
			wf[b] = nil
		}
	}
	for b := 0; b < 2; b++ {
		if wf[b] != nil {
			if _, err := wf[b].Wait(t); err != nil {
				c.complete(ps, token, wire.StatusAborted, cap.NilCap, 0)
				return
			}
		}
	}
	c.metrics.CopyBytes += int64(n)
	c.complete(ps, token, wire.StatusOK, cap.NilCap, uint64(n))
}

// locate resolves a Memory reference to its physical location,
// contacting the owner for remote objects (every use validates at the
// owner, which is what makes revocation immediate, §3.5).
func (c *Controller) locate(t *sim.Task, ref cap.Ref, need cap.Rights) (memLoc, wire.Status) {
	if ref.Ctrl == c.id {
		n, st := c.Validate(ref, need)
		if st != wire.StatusOK {
			return memLoc{}, st
		}
		mo, ok := n.Payload.(*memObject)
		if !ok {
			return memLoc{}, wire.StatusKind
		}
		return memLoc{ep: uint32(mo.ep), base: mo.base, size: mo.size}, wire.StatusOK
	}
	reply, err := c.callF(ref.Ctrl, func(tok uint64) wire.Message {
		return &wire.CtrlValidate{Token: tok, Src: c.id, Ref: ref, Need: need}
	}).Wait(t)
	if err != nil {
		return memLoc{}, wire.StatusAborted
	}
	info, ok := reply.(*wire.CtrlValInfo)
	if !ok {
		// Aborted calls answer with a CtrlAck.
		if ack, isAck := reply.(*wire.CtrlAck); isAck {
			return memLoc{}, ack.Status
		}
		return memLoc{}, wire.StatusAborted
	}
	if info.Status != wire.StatusOK {
		return memLoc{}, info.Status
	}
	return memLoc{ep: info.Endpoint, base: info.Base, size: info.Size}, wire.StatusOK
}

func (c *Controller) popBounce() int {
	off := c.bounceFree[len(c.bounceFree)-1]
	c.bounceFree = c.bounceFree[:len(c.bounceFree)-1]
	return off
}

func (c *Controller) pushBounce(off int) {
	c.bounceFree = append(c.bounceFree, off)
}

package services

import (
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
)

func runCluster(t *testing.T, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) { fn(tk, cl); done = true })
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("test did not complete (deadlock?)")
	}
}

func TestRegisterThenLookup(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := NewRegistry(cl, 0)
		if err := reg.Start(tk); err != nil {
			t.Fatal(err)
		}
		// A service on node 1 registers its root Request.
		svc := proc.Attach(cl, 1, "svc", 0)
		svcReg, _, err := reg.GrantTo(svc)
		if err != nil {
			t.Fatal(err)
		}
		root, err := svc.RequestCreate(tk, 99, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := RegisterCap(tk, svc, svcReg, "svc.root", root); err != nil {
			t.Fatal(err)
		}

		// An app on node 2 looks it up and invokes it.
		app := proc.Attach(cl, 2, "app", 0)
		_, appLookup, err := reg.GrantTo(app)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LookupCap(tk, app, appLookup, "svc.root")
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Invoke(tk, got, nil, nil); err != nil {
			t.Fatalf("invoke looked-up cap: %v", err)
		}
		d, ok := svc.Receive(tk)
		if !ok || d.Tag != 99 {
			t.Fatalf("delivery = %+v ok=%v", d, ok)
		}
		d.Done()
	})
}

func TestLookupMissingName(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := NewRegistry(cl, 0)
		if err := reg.Start(tk); err != nil {
			t.Fatal(err)
		}
		app := proc.Attach(cl, 1, "app", 0)
		_, lookup, _ := reg.GrantTo(app)
		if _, err := LookupCap(tk, app, lookup, "ghost"); err == nil {
			t.Fatal("lookup of unregistered name succeeded")
		}
	})
}

func TestDuplicateRegisterRejected(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := NewRegistry(cl, 0)
		if err := reg.Start(tk); err != nil {
			t.Fatal(err)
		}
		svc := proc.Attach(cl, 1, "svc", 0)
		svcReg, _, _ := reg.GrantTo(svc)
		root, _ := svc.RequestCreate(tk, 1, nil, nil)
		if err := RegisterCap(tk, svc, svcReg, "dup", root); err != nil {
			t.Fatal(err)
		}
		if err := RegisterCap(tk, svc, svcReg, "dup", root); err == nil {
			t.Fatal("duplicate registration succeeded")
		}
	})
}

func TestNodeWatchFailsProcesses(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		w := NewNodeWatch(cl)
		victim := proc.Attach(cl, 1, "victim", 0)
		peer := proc.Attach(cl, 0, "peer", 0)
		req, _ := victim.RequestCreate(tk, 5, nil, nil)
		preq, _ := proc.GrantCap(victim, req, peer)

		w.NodeFailed(1, []cap.ProcID{victim.ID()})
		tk.Sleep(200 * 1000) // 200µs settle
		if err := peer.Invoke(tk, preq, nil, nil); err == nil {
			t.Fatal("invoke on failed node's service succeeded")
		}
	})
}

func TestNodeWatchControllerCrashRecover(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		w := NewNodeWatch(cl)
		svc := proc.Attach(cl, 1, "svc", 0)
		peer := proc.Attach(cl, 0, "peer", 0)
		req, _ := svc.RequestCreate(tk, 5, nil, nil)
		preq, _ := proc.GrantCap(svc, req, peer)

		w.ControllerFailed(1)
		w.ControllerRecovered(1)
		tk.Sleep(200 * 1000)
		if err := peer.Invoke(tk, preq, nil, nil); err == nil {
			t.Fatal("stale capability usable after controller recovery")
		}
		if cl.CtrlFor(1).Epoch() != 2 {
			t.Errorf("epoch = %d, want 2", cl.CtrlFor(1).Epoch())
		}
	})
}

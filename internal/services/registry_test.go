package services

import (
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

func runCluster(t *testing.T, fn func(tk *sim.Task, cl *core.Cluster)) {
	t.Helper()
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3})
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) { fn(tk, cl); done = true })
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("test did not complete (deadlock?)")
	}
}

func startRegistry(t *testing.T, tk *sim.Task, cl *core.Cluster) *Registry {
	t.Helper()
	reg := NewRegistry(cl, 0)
	if err := reg.Start(tk); err != nil {
		t.Fatal(err)
	}
	return reg
}

func connect(t *testing.T, tk *sim.Task, reg *Registry, p *proc.Process) *Client {
	t.Helper()
	c, err := reg.Connect(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterThenResolve(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := startRegistry(t, tk, cl)
		// A service on node 1 registers its root Request.
		svc := proc.Attach(cl, 1, "svc", 0)
		svcCl := connect(t, tk, reg, svc)
		root, err := svc.RequestCreate(tk, 99, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svcCl.Register(tk, "svc.root", root, 1); err != nil {
			t.Fatal(err)
		}

		// An app on node 2 resolves it and invokes it.
		app := proc.Attach(cl, 2, "app", 0)
		appCl := connect(t, tk, reg, app)
		got, err := appCl.Resolve(tk, "svc.root")
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Invoke(tk, got, nil, nil); err != nil {
			t.Fatalf("invoke resolved cap: %v", err)
		}
		d, ok := svc.Receive(tk)
		if !ok || d.Tag != 99 {
			t.Fatalf("delivery = %+v ok=%v", d, ok)
		}
		d.Done()
	})
}

func TestResolveMissingName(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := startRegistry(t, tk, cl)
		app := proc.Attach(cl, 1, "app", 0)
		appCl := connect(t, tk, reg, app)
		_, err := appCl.Resolve(tk, "ghost")
		if err == nil {
			t.Fatal("resolve of unregistered name succeeded")
		}
		if !wire.IsStatus(err, wire.StatusUnknownObj) {
			t.Fatalf("resolve error = %v, want StatusUnknownObj", err)
		}
		// An unknown name resolves to an *empty set*, not an error —
		// clients racing a service's first registration retry through
		// their balancer.
		s, err := appCl.ResolveSet(tk, "ghost")
		if err != nil {
			t.Fatalf("resolve-set of unknown name: %v", err)
		}
		if len(s.Members) != 0 {
			t.Fatalf("resolve-set of unknown name: %d members", len(s.Members))
		}
	})
}

func TestReplicaSetMembership(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := startRegistry(t, tk, cl)
		svc1 := proc.Attach(cl, 1, "svc1", 0)
		svc2 := proc.Attach(cl, 2, "svc2", 0)
		cl1 := connect(t, tk, reg, svc1)
		cl2 := connect(t, tk, reg, svc2)
		r1, _ := svc1.RequestCreate(tk, 7, nil, nil)
		r2, _ := svc2.RequestCreate(tk, 7, nil, nil)
		id1, err := cl1.Register(tk, "svc", r1, 1)
		if err != nil {
			t.Fatal(err)
		}
		id2, err := cl2.Register(tk, "svc", r2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if id1 == id2 {
			t.Fatalf("member ids collide: %d", id1)
		}

		app := proc.Attach(cl, 0, "app", 0)
		appCl := connect(t, tk, reg, app)
		s, err := appCl.ResolveSet(tk, "svc")
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Members) != 2 {
			t.Fatalf("members = %d, want 2", len(s.Members))
		}
		if s.Members[0].ID != id1 || s.Members[0].Node != 1 ||
			s.Members[1].ID != id2 || s.Members[1].Node != 2 {
			t.Fatalf("members = %+v", s.Members)
		}
		v1 := s.Version

		// Deregister removes the member and bumps the version.
		if err := cl1.Deregister(tk, "svc", id1); err != nil {
			t.Fatal(err)
		}
		s, err = appCl.ResolveSet(tk, "svc")
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Members) != 1 || s.Members[0].ID != id2 {
			t.Fatalf("after deregister: members = %+v", s.Members)
		}
		if s.Version <= v1 {
			t.Fatalf("version did not advance: %d -> %d", v1, s.Version)
		}

		// Double deregister is a permanent UnknownObj.
		err = cl1.Deregister(tk, "svc", id1)
		if !wire.IsStatus(err, wire.StatusUnknownObj) {
			t.Fatalf("double deregister = %v, want StatusUnknownObj", err)
		}
	})
}

// TestByePrunesMembership: a replica that exits gracefully disappears
// from its set without a Deregister round-trip, via the revocation
// monitor the registry installs at register time.
func TestByePrunesMembership(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := startRegistry(t, tk, cl)
		svc := proc.Attach(cl, 1, "svc", 0)
		svcCl := connect(t, tk, reg, svc)
		root, _ := svc.RequestCreate(tk, 7, nil, nil)
		if _, err := svcCl.Register(tk, "svc", root, 1); err != nil {
			t.Fatal(err)
		}
		svc.Bye()
		tk.Sleep(500 * 1000) // let the revocation propagate

		app := proc.Attach(cl, 0, "app", 0)
		appCl := connect(t, tk, reg, app)
		s, err := appCl.ResolveSet(tk, "svc")
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Members) != 0 {
			t.Fatalf("members after Bye = %+v, want none", s.Members)
		}
	})
}

// TestFencedReplicaPrunedFromSet is the regression test for the
// unbounded-names bug: a replica on a fenced node must disappear from
// ResolveSet (a crashed Controller's revocation trees die with it, so
// this is the NodeWatch-driven prune path, not the monitor path).
func TestFencedReplicaPrunedFromSet(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		reg := startRegistry(t, tk, cl)
		w := NewNodeWatch(cl)
		reg.BindWatch(w)

		svc1 := proc.Attach(cl, 1, "svc1", 0)
		svc2 := proc.Attach(cl, 2, "svc2", 0)
		cl1 := connect(t, tk, reg, svc1)
		cl2 := connect(t, tk, reg, svc2)
		r1, _ := svc1.RequestCreate(tk, 7, nil, nil)
		r2, _ := svc2.RequestCreate(tk, 7, nil, nil)
		if _, err := cl1.Register(tk, "svc", r1, 1); err != nil {
			t.Fatal(err)
		}
		id2, err := cl2.Register(tk, "svc", r2, 2)
		if err != nil {
			t.Fatal(err)
		}

		// Fence node 1 the way the heartbeat detector would.
		w.emit(WatchEvent{At: tk.Now(), Kind: WatchFenced, Ctrl: cl.CtrlFor(1).ID()})
		cl.CtrlFor(1).Crash()
		tk.Sleep(500 * 1000)

		app := proc.Attach(cl, 0, "app", 0)
		appCl := connect(t, tk, reg, app)
		s, err := appCl.ResolveSet(tk, "svc")
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Members) != 1 || s.Members[0].ID != id2 {
			t.Fatalf("members after fence = %+v, want only member %d", s.Members, id2)
		}
	})
}

func TestNodeWatchFailsProcesses(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		w := NewNodeWatch(cl)
		victim := proc.Attach(cl, 1, "victim", 0)
		peer := proc.Attach(cl, 0, "peer", 0)
		req, _ := victim.RequestCreate(tk, 5, nil, nil)
		preq, _ := proc.GrantCap(victim, req, peer)

		w.NodeFailed(1, []cap.ProcID{victim.ID()})
		tk.Sleep(200 * 1000) // 200µs settle
		if err := peer.Invoke(tk, preq, nil, nil); err == nil {
			t.Fatal("invoke on failed node's service succeeded")
		}
	})
}

func TestNodeWatchControllerCrashRecover(t *testing.T) {
	runCluster(t, func(tk *sim.Task, cl *core.Cluster) {
		w := NewNodeWatch(cl)
		svc := proc.Attach(cl, 1, "svc", 0)
		peer := proc.Attach(cl, 0, "peer", 0)
		req, _ := svc.RequestCreate(tk, 5, nil, nil)
		preq, _ := proc.GrantCap(svc, req, peer)

		w.ControllerFailed(1)
		w.ControllerRecovered(1)
		tk.Sleep(200 * 1000)
		if err := peer.Invoke(tk, preq, nil, nil); err == nil {
			t.Fatal("stale capability usable after controller recovery")
		}
		if cl.CtrlFor(1).Epoch() != 2 {
			t.Errorf("epoch = %d, want 2", cl.CtrlFor(1).Epoch())
		}
	})
}

package services

import (
	"testing"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
)

const ms = sim.Time(1000 * 1000)

// watchCluster builds a 3-node cluster with faults installed and a
// heartbeat NodeWatch, runs body inside the main task, and drains the
// kernel. The watch is stopped after body returns.
func watchCluster(t *testing.T, f fabric.Faults, wc WatchConfig, body func(tk *sim.Task, cl *core.Cluster, w *NodeWatch)) *NodeWatch {
	t.Helper()
	cl := core.NewCluster(core.ClusterConfig{Nodes: 3, Faults: f})
	w := NewNodeWatch(cl)
	w.StartHeartbeat(wc)
	done := false
	cl.K.Spawn("main", func(tk *sim.Task) {
		body(tk, cl, w)
		done = true
		w.Stop()
	})
	cl.K.Run()
	cl.K.Shutdown()
	if !done {
		t.Fatal("main task did not complete")
	}
	return w
}

// Healthy cluster: the detector stays quiet — no suspicions, no
// fences — over many rounds.
func TestHeartbeatQuietWhenHealthy(t *testing.T) {
	w := watchCluster(t, fabric.Faults{}, WatchConfig{Every: 2 * ms, Suspect: 3},
		func(tk *sim.Task, cl *core.Cluster, w *NodeWatch) {
			tk.Sleep(50 * ms)
		})
	for _, e := range w.Events() {
		t.Errorf("unexpected event on healthy cluster: %v", e)
	}
}

// A crashed Controller is suspected after Suspect missed rounds,
// fenced, auto-rebooted, and observed as recovered with a bumped
// epoch.
func TestHeartbeatDetectsCrashAndReboots(t *testing.T) {
	w := watchCluster(t, fabric.Faults{},
		WatchConfig{Every: 2 * ms, Suspect: 3, RebootAfter: 4 * ms},
		func(tk *sim.Task, cl *core.Cluster, w *NodeWatch) {
			tk.Sleep(5 * ms)
			cl.Ctrls[1].Crash()
			tk.Sleep(60 * ms)
			if cl.Ctrls[1].Down() {
				t.Error("controller not rebooted by the detector")
			}
			// Controllers boot at epoch 1; one reboot bumps to 2.
			if got := cl.Ctrls[1].Epoch(); got != 2 {
				t.Errorf("epoch after reboot = %d, want 2", got)
			}
		})
	var kinds []WatchEventKind
	for _, e := range w.Events() {
		if e.Ctrl == cap.ControllerID(2) && e.Kind != WatchSuspect {
			kinds = append(kinds, e.Kind)
		}
		if e.Ctrl != cap.ControllerID(2) {
			t.Errorf("event for healthy controller: %v", e)
		}
	}
	want := []WatchEventKind{WatchFenced, WatchRebooted, WatchRecovered}
	if len(kinds) != len(want) {
		t.Fatalf("transitions = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", kinds, want)
		}
	}
}

// A partitioned-but-alive Controller is fenced: silence from the
// monitor's side of the partition is indistinguishable from a crash,
// and fencing (out-of-band power-off) keeps the stale instance from
// acting after the heal.
func TestHeartbeatFencesPartitionedController(t *testing.T) {
	f := fabric.Faults{Seed: 1, Plan: fabric.Plan{
		{At: 10 * ms, Kind: fabric.Partition, Group: []int{2}},
	}}
	w := watchCluster(t, f, WatchConfig{Every: 2 * ms, Suspect: 3},
		func(tk *sim.Task, cl *core.Cluster, w *NodeWatch) {
			tk.Sleep(40 * ms)
			if !cl.Ctrls[2].Down() {
				t.Error("partitioned controller was not fenced")
			}
		})
	fenced := false
	for _, e := range w.Events() {
		if e.Kind == WatchFenced && e.Ctrl == cap.ControllerID(3) {
			fenced = true
		}
	}
	if !fenced {
		t.Error("no fence event for the partitioned controller")
	}
}

// Transient loss below the suspicion threshold must not fence anyone:
// misses reset on the next pong.
func TestHeartbeatToleratesTransientLoss(t *testing.T) {
	f := fabric.Faults{Drop: 0.05, Seed: 7}
	w := watchCluster(t, f, WatchConfig{Every: 2 * ms, Suspect: 4},
		func(tk *sim.Task, cl *core.Cluster, w *NodeWatch) {
			tk.Sleep(100 * ms)
		})
	for _, e := range w.Events() {
		if e.Kind != WatchSuspect {
			t.Errorf("5%% loss caused %v", e)
		}
	}
}

// Same seed, same schedule: the detector's event log is deterministic.
func TestHeartbeatDeterministic(t *testing.T) {
	run := func() []WatchEvent {
		f := fabric.Faults{Drop: 0.10, Seed: 3, Plan: fabric.Plan{
			{At: 8 * ms, Kind: fabric.Partition, Group: []int{1}},
			{At: 30 * ms, Kind: fabric.Heal},
		}}
		w := watchCluster(t, f, WatchConfig{Every: 2 * ms, Suspect: 3, RebootAfter: 6 * ms},
			func(tk *sim.Task, cl *core.Cluster, w *NodeWatch) {
				tk.Sleep(80 * ms)
			})
		return w.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

package services

import (
	"fractos/internal/cap"
	"fractos/internal/core"
)

// NodeWatch models the external monitoring service (Zookeeper in §3.6)
// that detects node and Controller failures. In the simulation it is
// driven explicitly by failure-injection code; its job is to translate
// observed failures into the FractOS protocol actions: failing a
// Controller's Processes and announcing epochs after reboots.
type NodeWatch struct {
	cl *core.Cluster
}

// NewNodeWatch creates the monitor for a cluster.
func NewNodeWatch(cl *core.Cluster) *NodeWatch {
	return &NodeWatch{cl: cl}
}

// NodeFailed reports a whole-node failure: the node's Controller is
// informed so it fails every Process running there (§3.6: "After a
// node failure, we inform the corresponding Controller to fail all
// Processes running in it"). Controllers on other nodes are untouched.
func (w *NodeWatch) NodeFailed(node int, pids []cap.ProcID) {
	ctrl := w.cl.CtrlFor(node)
	for _, pid := range pids {
		ctrl.FailProcess(pid)
	}
}

// ControllerFailed reports a Controller crash: all its Processes are
// considered failed; on reboot the new epoch is announced and every
// capability minted under the old epoch becomes stale (§3.6).
func (w *NodeWatch) ControllerFailed(node int) {
	w.cl.CtrlFor(node).Crash()
}

// ControllerRecovered reboots a crashed Controller and broadcasts its
// new epoch.
func (w *NodeWatch) ControllerRecovered(node int) {
	w.cl.CtrlFor(node).Reboot()
}

package services

import (
	"fmt"

	"fractos/internal/cap"
	"fractos/internal/core"
	"fractos/internal/fabric"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// NodeWatch models the external monitoring service (Zookeeper in §3.6)
// that detects node and Controller failures and translates them into
// the FractOS protocol actions: failing a Controller's Processes,
// fencing suspected Controllers, and announcing epochs after reboots.
//
// It operates in two modes:
//
//   - Driven: failure-injection code calls NodeFailed /
//     ControllerFailed / ControllerRecovered explicitly (the PR-3
//     behavior, still used by targeted tests).
//
//   - Heartbeat: StartHeartbeat attaches the monitor to the fabric and
//     spawns a prober that pings every Controller each round
//     (wire.WatchPing → wire.WatchPong). A Controller that misses
//     Suspect consecutive rounds is fenced (Crash — modeling the
//     out-of-band power-off the paper's monitor performs so a
//     partitioned-but-alive instance cannot act on stale state) and,
//     if RebootAfter is set, rebooted under a fresh epoch. Recovery is
//     observed through the pong's epoch and triggers a re-announce so
//     peers that lost the reboot's CtrlEpoch frame still converge.
//
// The prober draws no randomness and uses only virtual time, so runs
// are deterministic; suspicion latency is bounded by
// Every × (Suspect + 1).
type NodeWatch struct {
	cl *core.Cluster

	cfg  WatchConfig
	ep   *fabric.Endpoint
	byID map[cap.ControllerID]int

	seq     uint64
	missed  []int
	down    []bool
	stopped bool

	events []WatchEvent
	subs   []func(WatchEvent)
}

// WatchConfig parameterizes the heartbeat failure detector.
type WatchConfig struct {
	// Every is the probe period. 0 means DefaultWatchEvery.
	Every sim.Time
	// Suspect is the number of consecutive missed pongs after which a
	// Controller is declared failed and fenced. 0 means
	// DefaultWatchSuspect.
	Suspect int
	// RebootAfter, when >0, reboots a fenced Controller (new epoch,
	// announced to all peers) this long after fencing. 0 disables
	// automatic reboot; the driver may still call ControllerRecovered.
	RebootAfter sim.Time
	// Node is where the monitor attaches to the fabric. The paper runs
	// the monitoring service on a dedicated host; placing it on a node
	// inside a partition group determines which side it can see.
	Node int
	// OnEvent, when non-nil, is invoked synchronously for every
	// detector transition (suspicion, fence, reboot, recovery).
	OnEvent func(WatchEvent)
}

// Defaults for WatchConfig's zero fields.
const (
	DefaultWatchEvery   = 10 * sim.Time(1000*1000) // 10 ms
	DefaultWatchSuspect = 3
)

// WatchEventKind classifies detector transitions.
type WatchEventKind uint8

const (
	// WatchSuspect: a Controller missed a round (missed count in Aux).
	WatchSuspect WatchEventKind = iota
	// WatchFenced: the suspicion threshold was reached; the Controller
	// was crashed (fenced) by the monitor.
	WatchFenced
	// WatchRebooted: the monitor rebooted a fenced Controller.
	WatchRebooted
	// WatchRecovered: a previously fenced Controller answered a probe
	// again (its new epoch is in Epoch).
	WatchRecovered
)

func (k WatchEventKind) String() string {
	switch k {
	case WatchSuspect:
		return "suspect"
	case WatchFenced:
		return "fenced"
	case WatchRebooted:
		return "rebooted"
	case WatchRecovered:
		return "recovered"
	}
	return "watch(?)"
}

// WatchEvent is one detector transition, recorded for tests and logs.
type WatchEvent struct {
	At    sim.Time
	Kind  WatchEventKind
	Ctrl  cap.ControllerID
	Epoch cap.Epoch // valid for WatchRecovered
	Aux   int       // missed count for WatchSuspect
}

func (e WatchEvent) String() string {
	return fmt.Sprintf("%d %s ctrl=%d epoch=%d aux=%d", e.At, e.Kind, e.Ctrl, e.Epoch, e.Aux)
}

// NewNodeWatch creates the monitor for a cluster.
func NewNodeWatch(cl *core.Cluster) *NodeWatch {
	return &NodeWatch{cl: cl}
}

// NodeFailed reports a whole-node failure: the node's Controller is
// informed so it fails every Process running there (§3.6: "After a
// node failure, we inform the corresponding Controller to fail all
// Processes running in it"). Controllers on other nodes are untouched.
func (w *NodeWatch) NodeFailed(node int, pids []cap.ProcID) {
	ctrl := w.cl.CtrlFor(node)
	for _, pid := range pids {
		ctrl.FailProcess(pid)
	}
}

// ControllerFailed reports a Controller crash: all its Processes are
// considered failed; on reboot the new epoch is announced and every
// capability minted under the old epoch becomes stale (§3.6).
func (w *NodeWatch) ControllerFailed(node int) {
	w.cl.CtrlFor(node).Crash()
}

// ControllerRecovered reboots a crashed Controller and broadcasts its
// new epoch.
func (w *NodeWatch) ControllerRecovered(node int) {
	w.cl.CtrlFor(node).Reboot()
}

// Events returns the transitions recorded since StartHeartbeat.
func (w *NodeWatch) Events() []WatchEvent { return w.events }

// StartHeartbeat attaches the monitor to the fabric and spawns the
// probing task. Call Stop when the workload is done so the kernel's
// event loop can drain.
func (w *NodeWatch) StartHeartbeat(cfg WatchConfig) {
	if cfg.Every <= 0 {
		cfg.Every = DefaultWatchEvery
	}
	if cfg.Suspect <= 0 {
		cfg.Suspect = DefaultWatchSuspect
	}
	w.cfg = cfg
	w.ep = w.cl.Net.Attach("nodewatch", fabric.Location{Node: cfg.Node, Domain: fabric.Host}, 0)
	w.byID = make(map[cap.ControllerID]int, len(w.cl.Ctrls))
	for i, c := range w.cl.Ctrls {
		w.byID[c.ID()] = i
	}
	w.missed = make([]int, len(w.cl.Ctrls))
	w.down = make([]bool, len(w.cl.Ctrls))
	w.cl.K.Spawn("nodewatch", w.probe)
}

// Stop ends the heartbeat after the current round. Idempotent.
func (w *NodeWatch) Stop() { w.stopped = true }

// NodeOf maps a ControllerID from a WatchEvent to the node the
// Controller is deployed on.
func (w *NodeWatch) NodeOf(id cap.ControllerID) (int, bool) {
	return nodeOfCtrl(w.cl, id)
}

// Subscribe registers fn to run synchronously on every detector
// transition, after WatchConfig.OnEvent. Multiple subscribers fire in
// subscription order (the registry's fence-pruning and an autoscaler's
// repair can both observe one detector).
func (w *NodeWatch) Subscribe(fn func(WatchEvent)) {
	w.subs = append(w.subs, fn)
}

func (w *NodeWatch) emit(e WatchEvent) {
	w.events = append(w.events, e)
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(e)
	}
	for _, fn := range w.subs {
		fn(e)
	}
}

// probe runs one detector round per Every: ping every Controller, then
// collect pongs until the round closes. Misses accumulate per
// Controller and reset on any pong; pings to a fenced instance fail
// locally (its endpoint is disconnected) and are ignored until it
// answers again.
func (w *NodeWatch) probe(t *sim.Task) {
	for !w.stopped {
		w.seq++
		got := make([]bool, len(w.cl.Ctrls))
		for _, c := range w.cl.Ctrls {
			// A false Send means the endpoint is torn down (fenced or
			// crashed) — for the failure detector that is the same
			// evidence as a missed pong, so the boolean is deliberately
			// not branched on.
			//fractos:send-ok torn-down destination is silence by design for the prober
			w.cl.Net.Send(w.ep.ID, c.EndpointID(), &wire.WatchPing{Seq: w.seq})
		}
		deadline := t.Now() + w.cfg.Every
		for {
			remain := deadline - t.Now()
			if remain <= 0 {
				break
			}
			d, ok := w.ep.Inbox.RecvTimeout(t, remain)
			if !ok {
				break
			}
			pong, isPong := d.Msg.(*wire.WatchPong)
			if !isPong || pong.Seq != w.seq {
				continue // stale (delayed or duplicated) round
			}
			i, known := w.byID[pong.Ctrl]
			if !known {
				continue
			}
			got[i] = true
			w.missed[i] = 0
			if w.down[i] {
				w.down[i] = false
				w.emit(WatchEvent{At: t.Now(), Kind: WatchRecovered, Ctrl: pong.Ctrl, Epoch: pong.Epoch})
				// The reboot's own CtrlEpoch broadcast may have been
				// lost on the lossy fabric; re-announce so peers fence
				// stale capabilities (AnnounceEpoch is idempotent).
				w.cl.Ctrls[i].AnnounceEpoch()
			}
		}
		for i, c := range w.cl.Ctrls {
			if got[i] || w.down[i] {
				continue
			}
			w.missed[i]++
			w.emit(WatchEvent{At: t.Now(), Kind: WatchSuspect, Ctrl: c.ID(), Aux: w.missed[i]})
			if w.missed[i] < w.cfg.Suspect {
				continue
			}
			w.down[i] = true
			w.missed[i] = 0
			w.emit(WatchEvent{At: t.Now(), Kind: WatchFenced, Ctrl: c.ID()})
			c.Crash() // out-of-band fence; idempotent if already down
			if w.cfg.RebootAfter > 0 {
				ci := c
				id := c.ID()
				w.cl.K.After(w.cfg.RebootAfter, func() {
					w.emit(WatchEvent{At: w.cl.K.Now(), Kind: WatchRebooted, Ctrl: id})
					ci.Reboot()
				})
			}
		}
	}
	w.cl.Net.Disconnect(w.ep.ID)
}

// Package services provides the deployment-support services of §4:
// a name registry (the "key/value store to bootstrap capabilities on
// new Processes") and a node-monitoring service that translates
// Controller failures into epoch announcements (the paper delegates
// this to Zookeeper).
package services

import (
	"fmt"

	"fractos/internal/core"
	"fractos/internal/proc"
	"fractos/internal/sim"
	"fractos/internal/wire"
)

// Registry Request tags.
const (
	// TagRegister binds a name to a capability.
	// imm[8:16) = name length, [16:..) = name; caps: SlotCap = the
	// capability, SlotCont = reply (imm[0:8) = status).
	TagRegister uint64 = 0x40
	// TagLookup resolves a name.
	// imm[8:16) = name length, [16:..) = name; caps: SlotCont = reply
	// (imm[0:8) = status; caps SlotCap = the capability).
	TagLookup uint64 = 0x41
)

// Registry argument slots.
const (
	SlotCap  uint16 = 0
	SlotCont uint16 = 1
)

// Registry status codes.
const (
	StatusOK       uint64 = 0
	StatusNotFound uint64 = 1
	StatusExists   uint64 = 2
	StatusBadArg   uint64 = 3
)

// Registry is the capability name service. Services register their
// root Requests under well-known names; applications look them up —
// capability distribution happens through ordinary Request-argument
// delegation.
type Registry struct {
	P *proc.Process

	names map[string]proc.Cap

	// Register and Lookup are the registry's root Requests; grant them
	// to new Processes at attach time.
	Register proc.Cap
	Lookup   proc.Cap
}

// NewRegistry attaches the registry Process on a node.
func NewRegistry(cl *core.Cluster, node int) *Registry {
	return &Registry{
		P:     proc.Attach(cl, node, "registry", 0),
		names: make(map[string]proc.Cap),
	}
}

// Start creates the root Requests and spawns the serve loop.
func (r *Registry) Start(t *sim.Task) error {
	reg, err := r.P.RequestCreate(t, TagRegister, nil, nil)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	lk, err := r.P.RequestCreate(t, TagLookup, nil, nil)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	r.Register, r.Lookup = reg, lk
	r.P.Kernel().Spawn("registry", r.serve)
	return nil
}

// GrantTo hands a Process the registry's root Requests (the only
// GrantCap a deployment needs; everything else flows through the
// registry).
func (r *Registry) GrantTo(p *proc.Process) (reg, lookup proc.Cap, err error) {
	reg, err = proc.GrantCap(r.P, r.Register, p)
	if err != nil {
		return
	}
	lookup, err = proc.GrantCap(r.P, r.Lookup, p)
	return
}

func (r *Registry) serve(t *sim.Task) {
	for {
		d, ok := r.P.Receive(t)
		if !ok {
			return
		}
		r.handle(t, d)
		d.Done()
	}
}

func (r *Registry) handle(t *sim.Task, d *proc.Delivery) {
	cont, haveCont := d.Cap(SlotCont)
	reply := func(st uint64, args []proc.Arg) {
		if haveCont {
			r.P.Invoke(t, cont, []wire.ImmArg{proc.U64Arg(0, st)}, args)
		}
	}
	nameLen := int(d.U64(8))
	if nameLen <= 0 || 16+nameLen > len(d.Imms) {
		reply(StatusBadArg, nil)
		return
	}
	name := string(d.Imms[16 : 16+nameLen])
	switch d.Tag {
	case TagRegister:
		c, ok := d.Cap(SlotCap)
		if !ok {
			reply(StatusBadArg, nil)
			return
		}
		if _, dup := r.names[name]; dup {
			reply(StatusExists, nil)
			return
		}
		r.names[name] = c
		reply(StatusOK, nil)
	case TagLookup:
		c, ok := r.names[name]
		if !ok {
			reply(StatusNotFound, nil)
			return
		}
		reply(StatusOK, []proc.Arg{{Slot: SlotCap, Cap: c}})
	}
}

// nameArgs builds the immediate arguments for a name.
func nameArgs(name string) []wire.ImmArg {
	return []wire.ImmArg{
		proc.U64Arg(8, uint64(len(name))),
		proc.BytesArg(16, []byte(name)),
	}
}

// RegisterCap publishes a capability under a name via a Process's
// registry Request.
func RegisterCap(t *sim.Task, p *proc.Process, registerReq proc.Cap, name string, c proc.Cap) error {
	d, err := p.Call(t, registerReq, nameArgs(name), []proc.Arg{{Slot: SlotCap, Cap: c}}, SlotCont)
	if err != nil {
		return err
	}
	if st := d.U64(0); st != StatusOK {
		return fmt.Errorf("registry: register %q: status %d", name, st)
	}
	return nil
}

// LookupCap resolves a name via a Process's registry Request.
func LookupCap(t *sim.Task, p *proc.Process, lookupReq proc.Cap, name string) (proc.Cap, error) {
	d, err := p.Call(t, lookupReq, nameArgs(name), nil, SlotCont)
	if err != nil {
		return proc.Cap{}, err
	}
	if st := d.U64(0); st != StatusOK {
		return proc.Cap{}, fmt.Errorf("registry: lookup %q: status %d", name, st)
	}
	c, ok := d.Cap(SlotCap)
	if !ok {
		return proc.Cap{}, fmt.Errorf("registry: lookup %q: no capability in reply", name)
	}
	return c, nil
}
